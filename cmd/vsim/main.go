// Command vsim runs a configurable V kernel simulation scenario and
// prints measured operation times plus kernel/network statistics.
//
// Examples:
//
//	vsim -workload srr -mhz 8                       # Table 5-1 style exchange
//	vsim -workload page -mhz 10 -stations 4         # several page-reading clients
//	vsim -workload load -net 10mb -unit 16384       # program loading on 10 Mb
//	vsim -workload seq -disklat 15ms                # sequential reads, Table 6-2 style
package main

import (
	"flag"
	"fmt"
	"os"

	"vkernel/internal/core"
	"vkernel/internal/cost"
	"vkernel/internal/disk"
	"vkernel/internal/ether"
	"vkernel/internal/fsrv"
	"vkernel/internal/sim"
	"vkernel/internal/stats"
)

func main() {
	var (
		workload = flag.String("workload", "srr", "srr | page | seq | load")
		stations = flag.Int("stations", 1, "number of client workstations")
		mhz      = flag.Float64("mhz", 8, "processor clock (8 or 10 are calibrated)")
		netKind  = flag.String("net", "3mb", "3mb | 10mb")
		iters    = flag.Int("iters", 500, "operations per client")
		unit     = flag.Int("unit", 16384, "transfer unit for -workload load")
		diskLat  = flag.Duration("disklat", 0, "fixed disk latency (e.g. 15ms) for -workload seq")
		seed     = flag.Int64("seed", 1, "simulation seed")
		drop     = flag.Float64("drop", 0, "random packet drop probability")
		bug      = flag.Bool("bug", false, "enable the 3 Mb undetected-collision hardware bug")
	)
	flag.Parse()

	netCfg := ether.Ethernet3Mb()
	iface := cost.Iface3Mb
	if *netKind == "10mb" {
		netCfg = ether.Ethernet10Mb()
		iface = cost.Iface10Mb
	}
	netCfg.DropRate = *drop
	netCfg.HWCollisionBug = *bug
	prof := cost.MC68000(*mhz, iface)

	cluster := core.NewCluster(*seed, netCfg)
	kFS := cluster.AddWorkstation("server", prof, core.Config{})

	// Server side per workload.
	var serverPid core.Pid
	switch *workload {
	case "srr":
		serverPid = kFS.Spawn("echo", func(p *core.Process) {
			for {
				_, src, err := p.Receive()
				if err != nil {
					return
				}
				var m core.Message
				if err := p.Reply(&m, src); err != nil {
					return
				}
			}
		}).Pid()
	case "page", "seq", "load":
		drive := disk.New(cluster.Eng, disk.Fixed(512, maxDur(sim.Time(*diskLat), sim.Millisecond)))
		drive.Preload(1, make([]byte, 64*1024))
		srvCfg := fsrv.Config{TransferUnit: *unit}
		if *workload == "seq" && *diskLat > 0 {
			srvCfg.InterRequestDelay = sim.Time(*diskLat)
		}
		srv := fsrv.Start(kFS, drive, srvCfg)
		srv.WarmFile(1)
		serverPid = srv.Pid()
	default:
		fmt.Fprintf(os.Stderr, "vsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	var agg stats.Sample
	done := 0
	for i := 0; i < *stations; i++ {
		k := cluster.AddWorkstation(fmt.Sprintf("ws%d", i), prof, core.Config{})
		k.Spawn("client", func(p *core.Process) {
			defer func() {
				done++
				if done == *stations {
					cluster.Eng.Stop()
				}
			}()
			switch *workload {
			case "srr":
				for n := 0; n < *iters; n++ {
					t0 := p.GetTime()
					var m core.Message
					if err := p.Send(&m, serverPid); err != nil {
						return
					}
					agg.Add((p.GetTime() - t0).Milliseconds())
				}
			case "page", "seq":
				cl := fsrv.NewClient(p, serverPid, 4096)
				buf := make([]byte, 512)
				for n := 0; n < *iters; n++ {
					blk := uint32(n % 128)
					t0 := p.GetTime()
					if _, err := cl.ReadBlock(1, blk, buf); err != nil {
						return
					}
					agg.Add((p.GetTime() - t0).Milliseconds())
				}
			case "load":
				cl := fsrv.NewClient(p, serverPid, 64*1024)
				for n := 0; n < *iters/10+1; n++ {
					t0 := p.GetTime()
					if _, err := cl.ReadLarge(1, 0, 64*1024); err != nil {
						return
					}
					agg.Add((p.GetTime() - t0).Milliseconds())
				}
			}
		})
	}

	cluster.Eng.MaxSteps = 1_000_000_000
	if err := cluster.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "vsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s stations=%d profile=%s net=%s\n", *workload, *stations, prof.Name, netCfg.Name)
	fmt.Printf("ops=%d mean=%.3fms p90=%.3fms max=%.3fms\n",
		agg.N(), agg.Mean(), agg.Percentile(0.9), agg.Max())
	fmt.Printf("virtual time=%v server CPU=%v (%.1f%%)\n",
		cluster.Eng.Now(), kFS.CPU().Busy(),
		100*float64(kFS.CPU().Busy())/float64(cluster.Eng.Now()))
	ns := cluster.Net.Stats()
	fmt.Printf("network: frames=%d bytes=%d collisions=%d corrupted=%d drops=%d deferrals=%d\n",
		ns.Frames, ns.Bytes, ns.Collisions, ns.CorruptedDrops, ns.RandomDrops, ns.Deferrals)
	ks := kFS.Stats()
	fmt.Printf("server kernel: receives=%d remote-replies=%d retransmits=%d dups=%d reply-pendings=%d\n",
		ks.Receives, ks.RemoteReplies, ks.Retransmits, ks.DupsFiltered, ks.ReplyPendingsSent)
}

func maxDur(a sim.Time, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
