// Command vstat scrapes live metrics from every file server in a V
// cluster over the V IPC protocol itself: it enumerates the servers by
// broadcast (DiscoverAll), asks each which volumes it hosts
// (OpQueryVolumes), pulls each one's metrics snapshot (OpQueryStats, a
// MoveTo-streamed text snapshot into a client-granted segment) and
// renders per-shard and aggregate tables — request counters, cache
// occupancy and hit rates, replication lag and in-sync set sizes,
// kernel/transport counters, latency percentiles, and recent trace
// events. No side channel: a scrape is just another V message exchange,
// so whatever network reaches the servers reaches their stats.
//
// With -smoke it instead boots a two-shard replicated cluster
// in-process (once on the in-memory mesh, once on loopback UDP), runs
// traced traffic through it, scrapes twice, and asserts the expected
// metrics are present and monotonic — the CI obs-smoke target.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/obs"
	"vkernel/internal/rfs"
	"vkernel/internal/stats"
)

func main() {
	var peers peerList
	var (
		listen = flag.String("listen", "127.0.0.1:0", "UDP listen address for the scraper's own node")
		host   = flag.Int("host", 90, "logical host id for the scraper node")
		window = flag.Duration("window", 300*time.Millisecond, "discovery window for enumerating servers")
		grant  = flag.Int("bytes", 64*1024, "segment grant per scrape; snapshots larger than this are truncated at a line boundary")
		events = flag.Int("events", 12, "trace events to print per cluster, newest last (0 = none)")
		traceF = flag.Uint("trace", 0, "only print trace events with this 24-bit trace id")
		smoke  = flag.Bool("smoke", false, "self-test: boot a 2-shard replicated cluster in-process, run traffic, scrape, assert")
	)
	flag.Var(&peers, "peer", "host=addr of a server to scrape, repeatable or comma-separated (e.g. -peer 1=127.0.0.1:7001,2=127.0.0.1:7002)")
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "vstat smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("vstat smoke: OK")
		return
	}

	if len(peers) == 0 {
		fmt.Fprintln(os.Stderr, "vstat: at least one -peer is required (or -smoke)")
		os.Exit(2)
	}
	tr, err := ipc.NewUDPTransport(*listen)
	fatalIf(err)
	for _, p := range peers {
		tr.AddPeer(p.host, p.addr)
	}
	node := ipc.NewNode(ipc.LogicalHost(*host), tr, ipc.NodeConfig{})
	defer node.Close()
	proc, err := node.Attach("vstat")
	fatalIf(err)
	defer node.Detach(proc)

	vols, err := rfs.ClusterMap(proc, *window)
	fatalIf(err)
	snaps, volsByNode, err := scrapeAll(proc, vols, *grant)
	fatalIf(err)
	fmt.Print(render(snaps, volsByNode))
	fmt.Print(renderEvents(snaps, *events, uint32(*traceF)))
}

// scrapeAll pulls one snapshot per server and keys both the snapshots
// and the server's volume set by node label (servers label themselves;
// two servers claiming the same label get their pid suffixed so neither
// scrape is lost).
func scrapeAll(proc *ipc.Proc, vols map[ipc.Pid][]uint32, grant int) ([]*obs.Snapshot, map[string][]uint32, error) {
	var snaps []*obs.Snapshot
	byNode := make(map[string][]uint32)
	pids := make([]ipc.Pid, 0, len(vols))
	for pid := range vols {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		snap, err := scrapeOne(proc, pid, grant)
		if err != nil {
			return nil, nil, fmt.Errorf("scrape %v: %w", pid, err)
		}
		if _, dup := byNode[snap.Node]; dup {
			snap.Node = fmt.Sprintf("%s@%x", snap.Node, uint32(pid))
		}
		byNode[snap.Node] = vols[pid]
		snaps = append(snaps, snap)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Node < snaps[j].Node })
	return snaps, byNode, nil
}

// scrapeOne performs one OpQueryStats exchange and parses the result.
// A truncated snapshot (grant smaller than the server's state) is still
// parseable — the server cuts at a line boundary — but is reported so
// the operator knows to raise -bytes.
func scrapeOne(proc *ipc.Proc, pid ipc.Pid, grant int) (*obs.Snapshot, error) {
	buf := make([]byte, grant)
	streamed, total, err := rfs.NewClient(proc, pid).QueryStats(buf)
	if err != nil {
		return nil, err
	}
	if streamed < total {
		fmt.Fprintf(os.Stderr, "vstat: %v: snapshot truncated (%d of %d bytes; raise -bytes)\n", pid, streamed, total)
	}
	return obs.ParseSnapshot(buf[:streamed])
}

// render formats the cluster's scraped state as tables. Counters are
// totalled across shards; gauges and percentiles are inherently
// per-shard and stay that way.
func render(snaps []*obs.Snapshot, vols map[string][]uint32) string {
	var b strings.Builder

	req := stats.Table{ID: "vstat-1", Title: "file-service requests", Unit: "counts since server start",
		Columns: []string{"reqs", "pg_rd", "pg_wr", "lg_rd", "lg_wr", "sync", "bad", "scrapes"}}
	names := []string{"rfs.requests", "rfs.page_reads", "rfs.page_writes", "rfs.large_reads",
		"rfs.large_writes", "rfs.syncs", "rfs.bad_requests", "rfs.stat_scrapes"}
	total := make([]int64, len(names))
	for _, s := range snaps {
		cells := make([]stats.Cell, len(names))
		for i, n := range names {
			v := s.Counters[n]
			total[i] += v
			cells[i] = count(v)
		}
		req.AddRow(s.Node+" "+volList(vols[s.Node]), cells...)
	}
	if len(snaps) > 1 {
		cells := make([]stats.Cell, len(names))
		for i, v := range total {
			cells[i] = count(v)
		}
		req.AddRow("TOTAL", cells...)
	}
	b.WriteString(req.Render())
	b.WriteString("\n")

	volT := stats.Table{ID: "vstat-2", Title: "volumes: cache and replication", Unit: "hit% of reads; lag in records",
		Columns: []string{"role", "hits", "misses", "hit%", "dirty", "repl_seq", "insync", "lag"}}
	for _, s := range snaps {
		for _, vol := range volKeys(s) {
			pfx := fmt.Sprintf("rfs.vol%d.", vol)
			g := func(name string) int64 { return s.Gauges[pfx+name] }
			role := "primary"
			if g("role") != int64(rfs.RolePrimary) {
				role = "replica"
			}
			hits, misses := g("cache_hits"), g("cache_misses")
			hitPct := 0.0
			if hits+misses > 0 {
				hitPct = 100 * float64(hits) / float64(hits+misses)
			}
			row := []stats.Cell{stats.Txt(role), count(hits), count(misses), stats.M(hitPct), count(g("dirty_blocks"))}
			if role == "primary" {
				row = append(row, count(g("repl_seq")), count(g("repl_insync")), count(g("repl_lag")))
			} else {
				row = append(row, stats.Blank(), stats.Blank(), stats.Blank())
			}
			volT.AddRow(fmt.Sprintf("%s/vol%d", s.Node, vol), row...)
		}
	}
	b.WriteString(volT.Render())
	b.WriteString("\n")

	ker := stats.Table{ID: "vstat-3", Title: "kernel and transport", Unit: "srtt/rto in us",
		Columns: []string{"net_tx", "net_rx", "replies", "retrans", "dups", "nacks", "sheds", "srtt", "rto"}}
	for _, s := range snaps {
		ker.AddRow(s.Node,
			count(s.Counters["net.sends"]), count(s.Counters["net.recvs"]),
			count(s.Counters["ipc.remote_replies"]), count(s.Counters["ipc.retransmits"]),
			count(s.Counters["ipc.dups_filtered"]), count(s.Counters["ipc.nacks_sent"]),
			count(s.Counters["ipc.overload_sheds"]),
			stats.M(float64(s.Gauges["ipc.srtt_ns"])/1e3), stats.M(float64(s.Gauges["ipc.rto_ns"])/1e3))
	}
	b.WriteString(ker.Render())
	b.WriteString("\n")

	lat := stats.Table{ID: "vstat-4", Title: "operation latency", Unit: "us; empty when -timing is off on the server",
		Columns: []string{"count", "mean", "p50", "p95", "p99", "max"}}
	for _, s := range snaps {
		for _, name := range histKeys(s) {
			h := s.Hists[name]
			if h.Count == 0 {
				continue
			}
			lat.AddRow(s.Node+" "+strings.TrimPrefix(name, "rfs.op."),
				count(h.Count), us(h.Mean()), us(h.P50), us(h.P95), us(h.P99), us(h.Max))
		}
	}
	if len(lat.Rows) > 0 {
		b.WriteString(lat.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// renderEvents prints the newest trace events across all shards, merged
// into one cluster-wide timeline (every node timestamps its own spans;
// on one machine — or with synced clocks — the merge reads in causal
// order).
func renderEvents(snaps []*obs.Snapshot, max int, trace uint32) string {
	if max <= 0 {
		return ""
	}
	var all []obs.Event
	for _, s := range snaps {
		for _, e := range s.Events {
			if trace != 0 && e.Trace != trace {
				continue
			}
			all = append(all, e)
		}
	}
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].When.Before(all[j].When) })
	if len(all) > max {
		all = all[len(all)-max:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace events (newest %d):\n", len(all))
	for _, e := range all {
		fmt.Fprintf(&b, "  %s %-8s trace=%06x %-16s arg=%#x dur=%v\n",
			e.When.Format("15:04:05.000000"), e.Node, e.Trace, e.What, e.Arg, e.Dur)
	}
	return b.String()
}

// count renders an integer counter cell without decimal noise.
func count(v int64) stats.Cell {
	c := stats.M(float64(v))
	c.Decimals = 0
	return c
}

// us renders nanoseconds as microseconds.
func us(ns int64) stats.Cell {
	return stats.M(float64(ns) / 1e3)
}

// volKeys extracts the sorted volume ids present in a snapshot's
// per-volume gauges (rfs.vol<id>.*).
func volKeys(s *obs.Snapshot) []uint32 {
	seen := make(map[uint32]bool)
	for name := range s.Gauges {
		if !strings.HasPrefix(name, "rfs.vol") {
			continue
		}
		rest := strings.TrimPrefix(name, "rfs.vol")
		dot := strings.IndexByte(rest, '.')
		if dot <= 0 {
			continue
		}
		id, err := strconv.ParseUint(rest[:dot], 10, 32)
		if err != nil {
			continue
		}
		seen[uint32(id)] = true
	}
	vols := make([]uint32, 0, len(seen))
	for id := range seen {
		vols = append(vols, id)
	}
	sort.Slice(vols, func(i, j int) bool { return vols[i] < vols[j] })
	return vols
}

// histKeys returns the snapshot's histogram names, sorted.
func histKeys(s *obs.Snapshot) []string {
	names := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func volList(vols []uint32) string {
	if len(vols) == 0 {
		return ""
	}
	parts := make([]string, len(vols))
	for i, v := range vols {
		parts[i] = strconv.FormatUint(uint64(v), 10)
	}
	return "v" + strings.Join(parts, ",")
}

// peerList accumulates -peer flags: repeatable, each value one or more
// comma-separated host=addr entries (same syntax as vnode's -peer).
type peerList []peer

type peer struct {
	host ipc.LogicalHost
	addr *net.UDPAddr
}

func (p *peerList) String() string { return fmt.Sprintf("%d peers", len(*p)) }

func (p *peerList) Set(v string) error {
	for _, item := range strings.Split(v, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		eq := strings.IndexByte(item, '=')
		if eq <= 0 {
			return fmt.Errorf("bad peer %q (want host=addr)", item)
		}
		host, err := strconv.ParseUint(item[:eq], 10, 32)
		if err != nil {
			return fmt.Errorf("bad peer host %q: %v", item[:eq], err)
		}
		addr, err := net.ResolveUDPAddr("udp", item[eq+1:])
		if err != nil {
			return fmt.Errorf("bad peer addr %q: %v", item[eq+1:], err)
		}
		*p = append(*p, peer{host: ipc.LogicalHost(host), addr: addr})
	}
	return nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vstat:", err)
		os.Exit(1)
	}
}
