package main

import (
	"fmt"
	"time"

	"vkernel/internal/obs"
	"vkernel/internal/rfs"
)

// runSmoke is the CI obs-smoke target: boot a two-shard replicated
// cluster in-process — once on the in-memory mesh, once on loopback
// UDP — push traced traffic through it, scrape every shard over
// OpQueryStats, and assert the scraped state is sane: the expected
// metrics exist, counters only move forward between scrapes, and the
// traced writes left a multi-node span timeline (primary op + replica
// apply under one trace id).
func runSmoke() error {
	for _, udp := range []bool{false, true} {
		label := "mem"
		if udp {
			label = "udp"
		}
		if err := smokeCluster(udp); err != nil {
			return fmt.Errorf("%s cluster: %w", label, err)
		}
		fmt.Printf("vstat smoke: %s cluster OK\n", label)
	}
	return nil
}

func smokeCluster(udp bool) error {
	// SlowOp enables timing (so the op histograms fill) and arms slow-op
	// capture at a threshold nothing in a healthy in-process cluster hits
	// — every recorded span must therefore come from the traced client.
	cl, err := rfs.StartCluster(rfs.ClusterConfig{
		Shards:   2,
		Replicas: 1,
		UDP:      udp,
		Server:   rfs.Config{SlowOp: 2 * time.Second},
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	node, err := cl.ClientNode()
	if err != nil {
		return err
	}
	proc, err := node.Attach("vstat-smoke")
	if err != nil {
		return err
	}
	defer node.Detach(proc)
	router, err := rfs.NewRouter(node)
	if err != nil {
		return err
	}
	defer router.Close()

	trace := obs.NewTraceID()
	const file, blocks = 7, 4
	traffic := func() error {
		buf := make([]byte, 512)
		in := make([]byte, 512)
		for _, vol := range cl.Volumes {
			c := rfs.NewVolumeClient(proc, router, vol)
			c.SetTrace(trace)
			for i := range buf {
				buf[i] = byte(i + int(vol))
			}
			for blk := uint32(0); blk < blocks; blk++ {
				if err := c.WriteBlock(file, blk, buf); err != nil {
					return fmt.Errorf("vol %d write block %d: %w", vol, blk, err)
				}
			}
			for blk := uint32(0); blk < blocks; blk++ {
				if _, err := c.ReadBlock(file, blk, in); err != nil {
					return fmt.Errorf("vol %d read block %d: %w", vol, blk, err)
				}
			}
			if err := c.Sync(file); err != nil {
				return fmt.Errorf("vol %d sync: %w", vol, err)
			}
		}
		return nil
	}
	scrape := func() (map[string]*obs.Snapshot, error) {
		vols, err := rfs.ClusterMap(proc, 300*time.Millisecond)
		if err != nil {
			return nil, err
		}
		snaps := make(map[string]*obs.Snapshot, len(vols))
		for pid := range vols {
			snap, err := scrapeOne(proc, pid, 64*1024)
			if err != nil {
				return nil, err
			}
			snaps[snap.Node] = snap
		}
		return snaps, nil
	}

	if err := traffic(); err != nil {
		return err
	}
	first, err := scrape()
	if err != nil {
		return fmt.Errorf("first scrape: %w", err)
	}
	if len(first) != 2 {
		return fmt.Errorf("scraped %d shards, want 2", len(first))
	}
	if err := checkPresent(first, udp); err != nil {
		return err
	}
	if err := checkTimeline(first, trace); err != nil {
		return err
	}

	if err := traffic(); err != nil {
		return err
	}
	second, err := scrape()
	if err != nil {
		return fmt.Errorf("second scrape: %w", err)
	}
	return checkMonotonic(first, second)
}

// checkPresent asserts the metric families every layer should have
// registered are in the scrape with believable values.
func checkPresent(snaps map[string]*obs.Snapshot, udp bool) error {
	for node, s := range snaps {
		for _, name := range []string{"rfs.requests", "rfs.page_writes", "rfs.stat_scrapes", "ipc.remote_replies"} {
			if _, ok := s.Counters[name]; !ok {
				return fmt.Errorf("%s: counter %s missing from scrape", node, name)
			}
		}
		if s.Counters["rfs.requests"] == 0 {
			return fmt.Errorf("%s: rfs.requests is 0 after traffic", node)
		}
		if udp && s.Counters["net.sends"] == 0 {
			return fmt.Errorf("%s: net.sends is 0 on a UDP cluster", node)
		}
		vols := volKeys(s)
		if len(vols) == 0 {
			return fmt.Errorf("%s: no per-volume gauges in scrape", node)
		}
		// Each shard hosts one primary and one replica; the replica's
		// dirty/hit gauges exist too, so just require the role gauge.
		for _, vol := range vols {
			if _, ok := s.Gauges[fmt.Sprintf("rfs.vol%d.role", vol)]; !ok {
				return fmt.Errorf("%s: vol%d role gauge missing", node, vol)
			}
		}
		h, ok := s.Hists["rfs.op.write_block"]
		if !ok || h.Count == 0 {
			return fmt.Errorf("%s: rfs.op.write_block histogram empty (timing should be on via SlowOp)", node)
		}
		if h.P50 <= 0 || h.Max < h.P50 {
			return fmt.Errorf("%s: torn write_block histogram: %+v", node, h)
		}
	}
	return nil
}

// checkTimeline asserts the traced writes produced spans on more than
// one node under the one trace id: the primary's op span and the
// replica's apply span together are the cross-node timeline.
func checkTimeline(snaps map[string]*obs.Snapshot, trace uint32) error {
	whats := make(map[string]map[string]bool) // what -> set of nodes
	for node, s := range snaps {
		for _, e := range s.Events {
			if e.Trace != trace {
				continue
			}
			if whats[e.What] == nil {
				whats[e.What] = make(map[string]bool)
			}
			whats[e.What][node] = true
		}
	}
	for _, want := range []string{"rfs.write_block", "repl.push", "repl.apply"} {
		if len(whats[want]) == 0 {
			return fmt.Errorf("no %s span for trace %06x (saw %v)", want, trace, spanNames(whats))
		}
	}
	nodes := make(map[string]bool)
	for _, byNode := range whats {
		for n := range byNode {
			nodes[n] = true
		}
	}
	if len(nodes) < 2 {
		return fmt.Errorf("trace %06x spans confined to one node %v — replication should cross shards", trace, spanNames(whats))
	}
	return nil
}

func spanNames(whats map[string]map[string]bool) []string {
	names := make([]string, 0, len(whats))
	for w := range whats {
		names = append(names, w)
	}
	return names
}

// checkMonotonic asserts every counter seen in the first scrape is
// still present and has not gone backwards, and that the second round
// of traffic actually moved the request counter on every shard.
func checkMonotonic(first, second map[string]*obs.Snapshot) error {
	for node, a := range first {
		b, ok := second[node]
		if !ok {
			return fmt.Errorf("%s vanished between scrapes", node)
		}
		for name, v := range a.Counters {
			w, ok := b.Counters[name]
			if !ok {
				return fmt.Errorf("%s: counter %s vanished between scrapes", node, name)
			}
			if w < v {
				return fmt.Errorf("%s: counter %s went backwards: %d -> %d", node, name, v, w)
			}
		}
		if b.Counters["rfs.requests"] <= a.Counters["rfs.requests"] {
			return fmt.Errorf("%s: rfs.requests did not advance across traffic rounds", node)
		}
	}
	return nil
}
