// Command vlint runs the kernel's project-specific static-analysis
// suite over Go package patterns:
//
//	vlint ./...
//
// It loads and type-checks the module (stdlib-only: go/parser +
// go/types with gc export data), runs the bufref, lockorder,
// spawncheck, unlockpath, and wireword analyzers, and prints findings
// as file:line:col: analyzer: message. The exit status is 1 when
// anything is reported.
//
// Suppress a finding with a justified marker on (or directly above)
// the flagged line:
//
//	//vlint:ignore <analyzer> <reason>
//
// A marker without a reason is itself a finding.
//
// -lockgraph dumps the computed lock-order edge set instead of
// diagnostics, for declaring or revising suite.LockOrder.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vkernel/internal/analysis"
	"vkernel/internal/analysis/load"
	"vkernel/internal/analysis/lockorder"
	"vkernel/internal/analysis/suite"
)

func main() {
	lockgraph := flag.Bool("lockgraph", false, "dump the lock-order edge set and exit")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlint:", err)
		os.Exit(2)
	}
	prog, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlint:", err)
		os.Exit(2)
	}

	if *lockgraph {
		pass := &analysis.Pass{Fset: prog.Fset, Packages: prog.Packages}
		graph := lockorder.Graph(pass)
		var lines []string
		for from, tos := range graph {
			for to, pos := range tos {
				lines = append(lines, fmt.Sprintf("%s -> %s\t(%s)", from, to, prog.Fset.Position(pos)))
			}
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Println(l)
		}
		return
	}

	diags := analysis.Run(prog, suite.Analyzers())
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
