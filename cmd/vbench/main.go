// Command vbench regenerates every table and numeric section of the
// paper's evaluation and prints paper-vs-measured results.
//
// Usage:
//
//	vbench            # run everything
//	vbench -list      # list experiment ids
//	vbench table51    # run selected experiments
//	vbench -max-dev   # also print each table's max deviation from the paper
//	vbench -shard     # volume-sharding scaling benchmark (BENCH_shard.json)
//	vbench -replica   # replication read-scaling + failover-gap benchmark (BENCH_replica.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vkernel/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	maxDev := flag.Bool("max-dev", false, "print each table's maximum deviation from the paper")
	shard := flag.Bool("shard", false, "run the volume-sharding scaling benchmark instead of the paper tables")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "artifact path for -shard (empty: stdout only)")
	shardDur := flag.Duration("shard-duration", 1500*time.Millisecond, "per-phase window for -shard")
	shardClients := flag.Int("shard-clients", 16, "concurrent clients for -shard")
	shardDelay := flag.Duration("shard-delay", time.Millisecond, "per-op device service time for -shard")
	transport := flag.Bool("transport", false, "run the wire-transport batching benchmark instead of the paper tables")
	transportOut := flag.String("transport-out", "BENCH_transport.json", "artifact path for -transport (empty: stdout only)")
	transportDur := flag.Duration("transport-duration", time.Second, "per-phase window for -transport")
	transportTrials := flag.Int("transport-trials", 3, "trials per phase for -transport; the fastest is kept")
	replica := flag.Bool("replica", false, "run the replication read-scaling and failover benchmark instead of the paper tables")
	replicaOut := flag.String("replica-out", "BENCH_replica.json", "artifact path for -replica (empty: stdout only)")
	replicaDur := flag.Duration("replica-duration", 1500*time.Millisecond, "per-point read window for -replica")
	replicaClients := flag.Int("replica-clients", 16, "concurrent readers for -replica")
	replicaDelay := flag.Duration("replica-delay", time.Millisecond, "per-op device service time for -replica")
	replicaTrials := flag.Int("replica-trials", 3, "failover kill/promote trials for -replica")
	flag.Parse()

	if *replica {
		err := runReplica(replicaConfig{
			replicas: []int{0, 1, 2},
			clients:  *replicaClients,
			duration: *replicaDur,
			delay:    *replicaDelay,
			trials:   *replicaTrials,
			out:      *replicaOut,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vbench: replica benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *transport {
		err := runTransport(transportConfig{
			clients:  []int{1, 4, 16},
			duration: *transportDur,
			trials:   *transportTrials,
			out:      *transportOut,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vbench: transport benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *shard {
		err := runShard(shardConfig{
			shards:   []int{1, 2, 4},
			clients:  *shardClients,
			duration: *shardDur,
			delay:    *shardDelay,
			out:      *shardOut,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vbench: shard benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	selected := experiments.Registry
	if args := flag.Args(); len(args) > 0 {
		selected = nil
		for _, id := range args {
			e, ok := experiments.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "vbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		start := time.Now()
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		for _, t := range res.Tables {
			fmt.Println()
			fmt.Print(t.Render())
			if *maxDev {
				fmt.Printf("max deviation from paper: %.1f%%\n", 100*t.MaxDeviation())
			}
		}
		for _, n := range res.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
