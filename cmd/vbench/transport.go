package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/rfs"
)

// transportConfig parameterizes the wire-transport scenario matrix.
type transportConfig struct {
	clients  []int         // concurrent-client counts to sweep
	duration time.Duration // per-phase measurement window
	trials   int           // paired trials per scenario (median ratio reported)
	out      string        // JSON artifact path ("" → stdout only)
}

// transportResult is one (transport, client-count) cell of the matrix:
// the best trial per scenario, with that trial's allocation rate.
type transportResult struct {
	Transport       string  `json:"transport"`
	Clients         int     `json:"clients"`
	PageReadOps     float64 `json:"page_read_ops_per_s"`
	PageReadAllocs  float64 `json:"page_read_allocs_per_op"`
	PageWriteOps    float64 `json:"page_write_ops_per_s"`
	PageWriteAllocs float64 `json:"page_write_allocs_per_op"`
	Read64KOps      float64 `json:"read_large_64k_ops_per_s"`
	Read64KAllocs   float64 `json:"read_large_64k_allocs_per_op"`
}

// transportArtifact is the committed BENCH_transport.json shape.
// Speedup holds the batched/udp ratio per scenario at the largest
// client count — the headline the batching work is judged on. Each
// ratio is the median over paired trials (a udp window immediately
// followed by a batched window), so slow minutes on a shared host hit
// both transports rather than skewing one.
type transportArtifact struct {
	Bench     string             `json:"bench"`
	DurationS float64            `json:"duration_s"`
	Trials    int                `json:"trials"`
	Results   []transportResult  `json:"results"`
	Speedup   map[string]float64 `json:"speedup_at_max_clients"`
}

const (
	transportFile   = 1
	transportBlocks = 1024 // 512 KB file: covers 64 KB streamed reads with room for random pages
)

// transportWire is what both UDP transports provide beyond Transport:
// the bound address and static peer registration, needed to wire the
// client and server nodes to each other without a rendezvous service.
type transportWire interface {
	ipc.Transport
	Addr() *net.UDPAddr
	AddPeer(ipc.LogicalHost, *net.UDPAddr)
}

// transportScenario is one workload shape of the matrix.
type transportScenario struct {
	name string
	buf  int // per-worker scratch buffer size
	op   func(*rfs.Client, *rand.Rand, []byte) error
}

func transportScenarios() []transportScenario {
	return []transportScenario{
		{"page_read", 512, func(c *rfs.Client, rng *rand.Rand, buf []byte) error {
			_, err := c.ReadBlock(transportFile, uint32(rng.Intn(transportBlocks)), buf)
			return err
		}},
		{"page_write", 512, func(c *rfs.Client, rng *rand.Rand, buf []byte) error {
			return c.WriteBlock(transportFile, uint32(rng.Intn(transportBlocks)), buf)
		}},
		{"read_large_64k", 64 << 10, func(c *rfs.Client, rng *rand.Rand, buf []byte) error {
			// Random 64 KB-aligned offset within the file: streamed
			// MoveTo chunk trains, the densest burst the transport sees.
			off := uint32(rng.Intn(transportBlocks*512/len(buf))) * uint32(len(buf))
			_, err := c.ReadLarge(transportFile, off, buf)
			return err
		}},
	}
}

// runTransport sweeps the client counts, running plain and batched UDP
// side by side over the real loopback wire, and writes the artifact.
// Unlike -shard (device-bound by construction) this workload is
// deliberately transport-bound: the whole file fits in the server
// cache, so every op's cost is dominated by kernel crossings — exactly
// what recvmmsg/sendmmsg batching, the egress coalescer and hot-peer
// connected sockets are meant to cut.
func runTransport(cfg transportConfig) error {
	defer profileTo(os.Getenv("VBENCH_PROFILE"))()
	art := transportArtifact{
		Bench:     "udp-transport-batching",
		DurationS: cfg.duration.Seconds(),
		Trials:    max(cfg.trials, 1),
	}
	for _, n := range cfg.clients {
		udpRes, batRes, ratios, err := runTransportCell(n, cfg)
		if err != nil {
			return fmt.Errorf("%d clients: %w", n, err)
		}
		art.Results = append(art.Results, udpRes, batRes)
		art.Speedup = ratios // overwritten each sweep: the last (max) count stands
		for _, res := range []transportResult{udpRes, batRes} {
			fmt.Printf("%-8s clients=%-3d page-read %8.0f ops/s (%5.1f allocs/op)  page-write %8.0f ops/s (%5.1f)  64k-read %7.0f ops/s (%6.1f)\n",
				res.Transport, n, res.PageReadOps, res.PageReadAllocs,
				res.PageWriteOps, res.PageWriteAllocs,
				res.Read64KOps, res.Read64KAllocs)
		}
		fmt.Printf("  batched/udp median of %d paired trials: page-read %.2fx  page-write %.2fx  64k-read %.2fx\n",
			art.Trials, ratios["page_read"], ratios["page_write"], ratios["read_large_64k"])
	}
	if cfg.out == "" {
		return nil
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.out, append(data, '\n'), 0o644)
}

// runTransportCell measures one client count: both stacks stand up side
// by side (an idle transport is just parked goroutines), and every
// trial runs the plain window immediately followed by the batched
// window so host-level interference lands on both.
func runTransportCell(nClients int, cfg transportConfig) (udpRes, batRes transportResult, ratios map[string]float64, err error) {
	ue, err := newTransportEnv("udp", nClients)
	if err != nil {
		return udpRes, batRes, nil, err
	}
	defer ue.close()
	be, err := newTransportEnv("batched", nClients)
	if err != nil {
		return udpRes, batRes, nil, err
	}
	defer be.close()

	udpRes = transportResult{Transport: "udp", Clients: nClients}
	batRes = transportResult{Transport: "batched", Clients: nClients}
	ratios = make(map[string]float64)
	for _, sc := range transportScenarios() {
		var bestU, bestB int64
		var allocsU, allocsB uint64
		var rs []float64
		for trial := 0; trial < max(cfg.trials, 1); trial++ {
			// Alternate which transport goes first so ordering effects
			// (scheduler warmth, cache state) cancel across trials, and
			// settle the heap before each window so one phase's garbage
			// isn't collected on the next phase's clock.
			envs := [2]*transportEnv{ue, be}
			if trial%2 == 1 {
				envs[0], envs[1] = be, ue
			}
			var ops [2]int64
			var allocs [2]uint64
			for i, env := range envs {
				runtime.GC()
				o, a, err := transportPhase(env.clients, cfg.duration, sc.buf, sc.op)
				if err != nil {
					return udpRes, batRes, nil, fmt.Errorf("%s %s: %w", env.kind, sc.name, err)
				}
				ops[i], allocs[i] = o, a
			}
			ou, au, ob, ab := ops[0], allocs[0], ops[1], allocs[1]
			if trial%2 == 1 {
				ou, au, ob, ab = ob, ab, ou, au
			}
			if ou > bestU {
				bestU, allocsU = ou, au
			}
			if ob > bestB {
				bestB, allocsB = ob, ab
			}
			rs = append(rs, float64(ob)/float64(max(ou, 1)))
		}
		secs := cfg.duration.Seconds()
		udpRes.set(sc.name, float64(bestU)/secs, float64(allocsU)/float64(max(bestU, 1)))
		batRes.set(sc.name, float64(bestB)/secs, float64(allocsB)/float64(max(bestB, 1)))
		ratios[sc.name] = median(rs)
	}
	_ = ue.clients[0].Sync(0)
	_ = be.clients[0].Sync(0)

	if bt, ok := be.srvWire.(*ipc.BatchedUDPTransport); ok {
		ss, cs := bt.Stats(), be.cliWire.(*ipc.BatchedUDPTransport).Stats()
		fmt.Printf("  batched occupancy: srv rx %.2f/batch tx %.2f/batch | cli rx %.2f/batch tx %.2f/batch\n",
			float64(ss.Recvs)/float64(max(ss.RecvBatches, 1)),
			float64(ss.Sends)/float64(max(ss.SendBatches, 1)),
			float64(cs.Recvs)/float64(max(cs.RecvBatches, 1)),
			float64(cs.Sends)/float64(max(cs.SendBatches, 1)))
	}
	return udpRes, batRes, ratios, nil
}

// set fills the scenario's columns in the result row.
func (r *transportResult) set(scenario string, ops, allocs float64) {
	switch scenario {
	case "page_read":
		r.PageReadOps, r.PageReadAllocs = ops, allocs
	case "page_write":
		r.PageWriteOps, r.PageWriteAllocs = ops, allocs
	case "read_large_64k":
		r.Read64KOps, r.Read64KAllocs = ops, allocs
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// transportEnv is one full client/server stack over one transport kind.
type transportEnv struct {
	kind             string
	srvWire, cliWire transportWire
	srvNode, cliNode *ipc.Node
	srv              *rfs.Server
	procs            []*ipc.Proc
	clients          []*rfs.Client
}

// newTransportWire builds one endpoint of the given kind on loopback.
func newTransportWire(kind string) (transportWire, error) {
	switch kind {
	case "udp":
		return ipc.NewUDPTransport("127.0.0.1:0")
	case "batched":
		return ipc.NewBatchedUDPTransport("127.0.0.1:0", ipc.BatchConfig{})
	}
	return nil, fmt.Errorf("unknown transport %q", kind)
}

// newTransportEnv stands up a server node and a client node on the
// given transport kind, attaches nClients client processes, and warms
// the server cache (and the batched transport's hot-peer promotion) so
// measurement windows see steady state.
func newTransportEnv(kind string, nClients int) (*transportEnv, error) {
	e := &transportEnv{kind: kind}
	fail := func(err error) (*transportEnv, error) {
		e.close()
		return nil, err
	}
	var err error
	if e.srvWire, err = newTransportWire(kind); err != nil {
		return fail(err)
	}
	e.srvNode = ipc.NewNode(2, e.srvWire, ipc.NodeConfig{})

	ms := rfs.NewMemStore()
	if err := ms.Create(transportFile, transportBlocks*512); err != nil {
		return fail(err)
	}
	// Cache larger than the file: after warmup no op touches the store,
	// leaving the wire as the only cost. The worker pool is sized to the
	// offered load (not the CPU count) so a whole receive batch can be in
	// service at once — which is also what lets the batched transport's
	// reply coalescing see the requests of one batch as one gang.
	if e.srv, err = rfs.Start(e.srvNode, ms, rfs.Config{CacheBlocks: 2 * transportBlocks, Workers: 16}); err != nil {
		return fail(err)
	}

	if e.cliWire, err = newTransportWire(kind); err != nil {
		return fail(err)
	}
	e.cliNode = ipc.NewNode(1, e.cliWire, ipc.NodeConfig{})
	e.cliWire.AddPeer(2, e.srvWire.Addr())
	e.srvWire.AddPeer(1, e.cliWire.Addr())

	for i := 0; i < nClients; i++ {
		p, err := e.cliNode.Attach(fmt.Sprintf("tbench%d", i))
		if err != nil {
			return fail(err)
		}
		e.procs = append(e.procs, p)
		e.clients = append(e.clients, rfs.NewClient(p, e.srv.Pid()))
	}

	page := make([]byte, 512)
	for b := 0; b < transportBlocks; b += 8 {
		if _, err := e.clients[0].ReadBlock(transportFile, uint32(b), page); err != nil {
			return fail(err)
		}
	}
	return e, nil
}

func (e *transportEnv) close() {
	if e.cliNode != nil {
		for _, p := range e.procs {
			e.cliNode.Detach(p)
		}
		_ = e.cliNode.Close()
	}
	if e.srv != nil {
		e.srv.Close()
	}
	if e.srvNode != nil {
		_ = e.srvNode.Close()
	}
}

// transportPhase drives every client in a goroutine for the window with
// a per-worker scratch buffer of bufSize bytes, returning total
// completed ops and the process-wide allocation delta.
func transportPhase(clients []*rfs.Client, window time.Duration, bufSize int, op func(*rfs.Client, *rand.Rand, []byte) error) (int64, uint64, error) {
	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *rfs.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			buf := make([]byte, bufSize)
			for !stop.Load() {
				if err := op(c, rng, buf); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				total.Add(1)
			}
		}(i, c)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	runtime.ReadMemStats(&after)
	return total.Load(), after.Mallocs - before.Mallocs, first
}

// profileTo is a development hook: set VBENCH_PROFILE to a path to
// capture a CPU profile of the benchmark run. A profile that can't be
// started is reported, not swallowed — a silent no-op here means a run
// you thought was profiled wasn't.
func profileTo(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vbench: profile disabled: %v\n", err)
		return func() {}
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "vbench: profile disabled: %v\n", err)
		f.Close()
		return func() {}
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "vbench: profile write: %v\n", err)
		}
	}
}
