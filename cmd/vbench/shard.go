package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vkernel/internal/rfs"
)

// shardConfig parameterizes the volume-sharding scaling benchmark.
type shardConfig struct {
	shards   []int         // shard counts to sweep
	clients  int           // concurrent clients, split round-robin over volumes
	duration time.Duration // per-phase measurement window
	delay    time.Duration // per-operation device service time
	out      string        // JSON artifact path ("" → stdout only)
}

// shardResult is one shard count's aggregate throughput.
type shardResult struct {
	Shards           int     `json:"shards"`
	ReadOpsPerSec    float64 `json:"read_ops_per_s"`
	WriteOpsPerSec   float64 `json:"write_ops_per_s"`
	ReadAllocsPerOp  float64 `json:"read_allocs_per_op"`
	WriteAllocsPerOp float64 `json:"write_allocs_per_op"`
}

// shardArtifact is the committed BENCH_shard.json shape.
type shardArtifact struct {
	Bench         string        `json:"bench"`
	Clients       int           `json:"clients"`
	DeviceDelayMS float64       `json:"device_delay_ms"`
	DurationS     float64       `json:"duration_s"`
	Results       []shardResult `json:"results"`
}

const (
	shardFile   = 1    // the one file every volume serves
	shardBlocks = 4096 // blocks per file: large vs. the server cache, so reads miss
)

// runShard sweeps the shard counts and writes the artifact. The workload
// is deliberately device-bound: every volume's store is a DelayStore —
// one operation in service at a time, like one disk — so a single-CPU
// host still shows the capacity story (each extra shard adds a device,
// and aggregate ops/s should scale with the shard count until the
// clients, not the devices, are the bottleneck).
func runShard(cfg shardConfig) error {
	art := shardArtifact{
		Bench:         "rfs-volume-shard-scaling",
		Clients:       cfg.clients,
		DeviceDelayMS: float64(cfg.delay) / float64(time.Millisecond),
		DurationS:     cfg.duration.Seconds(),
	}
	for _, k := range cfg.shards {
		res, err := runShardOnce(k, cfg)
		if err != nil {
			return fmt.Errorf("%d shards: %w", k, err)
		}
		art.Results = append(art.Results, res)
		fmt.Printf("shards=%d  reads %8.0f ops/s (%5.1f allocs/op)   writes %8.0f ops/s (%5.1f allocs/op)\n",
			k, res.ReadOpsPerSec, res.ReadAllocsPerOp, res.WriteOpsPerSec, res.WriteAllocsPerOp)
	}
	if len(art.Results) >= 2 {
		first, last := art.Results[0], art.Results[len(art.Results)-1]
		fmt.Printf("read scaling %dx->%dx shards: %.2fx  write scaling: %.2fx\n",
			first.Shards, last.Shards,
			last.ReadOpsPerSec/first.ReadOpsPerSec, last.WriteOpsPerSec/first.WriteOpsPerSec)
	}
	if cfg.out == "" {
		return nil
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.out, append(data, '\n'), 0o644)
}

// runShardOnce measures one cluster size: a read phase then a write
// phase, each cfg.duration long, 16 (cfg.clients) concurrent clients
// spread round-robin over the volumes.
func runShardOnce(k int, cfg shardConfig) (shardResult, error) {
	cluster, err := rfs.StartCluster(rfs.ClusterConfig{
		Shards: k,
		Server: rfs.Config{CacheBlocks: 16}, // tiny server cache: reads go to the device
		NewStore: func(vol uint32) rfs.Store {
			// Seed the file before wrapping in the device model, so setup
			// does not pay (or skew) the per-op delay.
			ms := rfs.NewMemStore()
			if err := ms.Create(shardFile, shardBlocks*512); err != nil {
				panic(err)
			}
			return rfs.NewDelayStore(ms, cfg.delay)
		},
	})
	if err != nil {
		return shardResult{}, err
	}
	defer cluster.Close()

	node, err := cluster.ClientNode()
	if err != nil {
		return shardResult{}, err
	}
	router, err := rfs.NewRouter(node)
	if err != nil {
		return shardResult{}, err
	}
	defer router.Close()

	clients := make([]*rfs.Client, cfg.clients)
	for i := range clients {
		p, err := node.Attach(fmt.Sprintf("bench%d", i))
		if err != nil {
			return shardResult{}, err
		}
		defer node.Detach(p)
		vol := cluster.Volumes[i%len(cluster.Volumes)]
		clients[i] = rfs.NewVolumeClient(p, router, vol)
	}

	readOps, readAllocs, err := shardPhase(clients, cfg.duration, func(c *rfs.Client, rng *rand.Rand, page []byte) error {
		_, err := c.ReadBlock(shardFile, uint32(rng.Intn(shardBlocks)), page)
		return err
	})
	if err != nil {
		return shardResult{}, err
	}
	writeOps, writeAllocs, err := shardPhase(clients, cfg.duration, func(c *rfs.Client, rng *rand.Rand, page []byte) error {
		return c.WriteBlock(shardFile, uint32(rng.Intn(shardBlocks)), page)
	})
	if err != nil {
		return shardResult{}, err
	}
	// Drain the write-behind caches so teardown is clean.
	for _, c := range clients[:min(len(clients), len(cluster.Volumes))] {
		_ = c.Sync(0)
	}

	secs := cfg.duration.Seconds()
	return shardResult{
		Shards:           k,
		ReadOpsPerSec:    float64(readOps) / secs,
		WriteOpsPerSec:   float64(writeOps) / secs,
		ReadAllocsPerOp:  float64(readAllocs) / float64(max(readOps, 1)),
		WriteAllocsPerOp: float64(writeAllocs) / float64(max(writeOps, 1)),
	}, nil
}

// shardPhase drives every client in a goroutine for the window and
// returns total completed ops plus the process-wide allocation delta.
func shardPhase(clients []*rfs.Client, window time.Duration, op func(*rfs.Client, *rand.Rand, []byte) error) (int64, uint64, error) {
	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *rfs.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			page := make([]byte, 512)
			for !stop.Load() {
				if err := op(c, rng, page); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				total.Add(1)
			}
		}(i, c)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	runtime.ReadMemStats(&after)
	return total.Load(), after.Mallocs - before.Mallocs, first
}
