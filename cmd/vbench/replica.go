package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/rfs"
)

// replicaConfig parameterizes the replication benchmark: the read-
// scaling sweep over replica counts and the failover-gap trials.
type replicaConfig struct {
	replicas []int         // replica counts to sweep (copies = replicas+1)
	clients  int           // concurrent readers for the scaling sweep
	duration time.Duration // per-point measurement window
	delay    time.Duration // per-operation device service time
	trials   int           // failover kill/promote measurements
	out      string        // JSON artifact path ("" → stdout only)
}

// replicaScalePoint is one replica count's aggregate read throughput.
type replicaScalePoint struct {
	Replicas      int     `json:"replicas"`
	Copies        int     `json:"copies"`
	ReadOpsPerSec float64 `json:"read_ops_per_s"`
}

// replicaTrial is one kill-the-primary measurement: the gap from the
// kill to the first successful routed operation of each kind.
type replicaTrial struct {
	ReadGapMS  float64 `json:"read_gap_ms"`
	WriteGapMS float64 `json:"write_gap_ms"`
}

// replicaFailover aggregates the failover trials.
type replicaFailover struct {
	LeaseMS          float64        `json:"lease_ms"`
	Trials           []replicaTrial `json:"trials"`
	MedianReadGapMS  float64        `json:"median_read_gap_ms"`
	MedianWriteGapMS float64        `json:"median_write_gap_ms"`
}

// replicaArtifact is the committed BENCH_replica.json shape.
type replicaArtifact struct {
	Bench         string              `json:"bench"`
	Clients       int                 `json:"clients"`
	DeviceDelayMS float64             `json:"device_delay_ms"`
	DurationS     float64             `json:"duration_s"`
	ReadScaling   []replicaScalePoint `json:"read_scaling"`
	Failover      replicaFailover     `json:"failover"`
}

const (
	replicaFile   = 1
	replicaBlocks = 4096 // large vs. the server cache, so reads hit the device
	// replicaLease is the failover trials' heartbeat lease: the promotion
	// detection time, and so the dominant term of the write gap.
	replicaLease = 150 * time.Millisecond
)

// runReplica measures what replication buys and what failover costs.
//
// Read scaling: one volume, r read replicas, every store a DelayStore
// (one op in service at a time — one disk), clients round-robining
// reads over the in-sync set via SpreadReads. Each extra copy adds a
// device, so device-bound read throughput should scale with copies
// until the clients stop being able to saturate the devices.
//
// Failover: kill the primary under a routed client and time the gap to
// the first successful read (a surviving replica serves it as soon as
// the router's read set falls back) and the first successful write
// (needs the replica to detect the lapsed lease and promote).
func runReplica(cfg replicaConfig) error {
	art := replicaArtifact{
		Bench:         "rfs-replication",
		Clients:       cfg.clients,
		DeviceDelayMS: float64(cfg.delay) / float64(time.Millisecond),
		DurationS:     cfg.duration.Seconds(),
	}
	for _, r := range cfg.replicas {
		pt, err := runReplicaScaleOnce(r, cfg)
		if err != nil {
			return fmt.Errorf("%d replicas: %w", r, err)
		}
		art.ReadScaling = append(art.ReadScaling, pt)
		fmt.Printf("replicas=%d (copies=%d)  reads %8.0f ops/s\n", pt.Replicas, pt.Copies, pt.ReadOpsPerSec)
	}
	if len(art.ReadScaling) >= 2 {
		first, last := art.ReadScaling[0], art.ReadScaling[len(art.ReadScaling)-1]
		fmt.Printf("read scaling %d->%d copies: %.2fx\n",
			first.Copies, last.Copies, last.ReadOpsPerSec/first.ReadOpsPerSec)
	}

	art.Failover.LeaseMS = float64(replicaLease) / float64(time.Millisecond)
	for i := 0; i < cfg.trials; i++ {
		tr, err := runReplicaFailoverOnce()
		if err != nil {
			return fmt.Errorf("failover trial %d: %w", i, err)
		}
		art.Failover.Trials = append(art.Failover.Trials, tr)
		fmt.Printf("failover trial %d: first read %.1fms, first write %.1fms after kill\n",
			i, tr.ReadGapMS, tr.WriteGapMS)
	}
	art.Failover.MedianReadGapMS = medianOf(art.Failover.Trials, func(t replicaTrial) float64 { return t.ReadGapMS })
	art.Failover.MedianWriteGapMS = medianOf(art.Failover.Trials, func(t replicaTrial) float64 { return t.WriteGapMS })
	fmt.Printf("failover median: read %.1fms, write %.1fms (lease %v)\n",
		art.Failover.MedianReadGapMS, art.Failover.MedianWriteGapMS, replicaLease)

	if cfg.out == "" {
		return nil
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.out, append(data, '\n'), 0o644)
}

// startReplicaCluster boots one replicated volume: primary on shard 0,
// replica r on shard r, every copy's store seeded with the benchmark
// file and wrapped in the one-op-at-a-time device model. The workload
// is device-bound, so a host per copy does not skew the scaling story —
// the devices, not the hosts, are the capacity being added.
func startReplicaCluster(shards, replicas int, cfg replicaConfig) (*rfs.Cluster, error) {
	return rfs.StartCluster(rfs.ClusterConfig{
		Shards:   shards,
		Volumes:  []uint32{replicaFile},
		Replicas: replicas,
		Node: ipc.NodeConfig{
			RetransmitTimeout: 5 * time.Millisecond,
			Retries:           5,
			GetPidTimeout:     10 * time.Millisecond,
			GetPidRetries:     5,
		},
		Server: rfs.Config{
			CacheBlocks:       16, // tiny server cache: reads go to the device
			ReplicaLease:      replicaLease,
			ReplicaAckTimeout: 50 * time.Millisecond,
		},
		NewStore: func(vol uint32) rfs.Store {
			ms := rfs.NewMemStore()
			if err := ms.Create(replicaFile, replicaBlocks*512); err != nil {
				panic(err)
			}
			return rfs.NewDelayStore(ms, cfg.delay)
		},
	})
}

// awaitReplication writes a marker block through the routed client and
// waits until every replica has caught up to it — via an applied push
// record when the replica joined before the write, via a snapshot
// resync when it joined after — so the copy set is proven live before
// measurement starts.
func awaitReplication(cluster *rfs.Cluster, client *rfs.Client, replicas int) error {
	page := make([]byte, 512)
	if err := client.WriteBlock(replicaFile, 0, page); err != nil {
		return fmt.Errorf("seed write: %w", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		caughtUp := 0
		for _, cs := range cluster.Servers {
			if cs.Srv == nil {
				continue
			}
			if st := cs.Srv.Stats(); st.ReplicaRecords > 0 || st.ReplicaResyncs > 0 {
				caughtUp++
			}
		}
		if caughtUp >= replicas {
			// One more lease quarter so the heartbeats mark everyone
			// in-sync and the read set includes the full copy set.
			time.Sleep(replicaLease / 2)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas never caught up (%d/%d)", caughtUp, replicas)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runReplicaScaleOnce measures one copy count's aggregate device-bound
// read throughput.
func runReplicaScaleOnce(replicas int, cfg replicaConfig) (replicaScalePoint, error) {
	cluster, err := startReplicaCluster(replicas+1, replicas, cfg)
	if err != nil {
		return replicaScalePoint{}, err
	}
	defer cluster.Close()

	node, err := cluster.ClientNode()
	if err != nil {
		return replicaScalePoint{}, err
	}
	router, err := rfs.NewRouter(node)
	if err != nil {
		return replicaScalePoint{}, err
	}
	defer router.Close()

	clients := make([]*rfs.Client, cfg.clients)
	for i := range clients {
		p, err := node.Attach(fmt.Sprintf("bench%d", i))
		if err != nil {
			return replicaScalePoint{}, err
		}
		defer node.Detach(p)
		clients[i] = rfs.NewVolumeClient(p, router, replicaFile)
		clients[i].SpreadReads(true)
	}
	if err := awaitReplication(cluster, clients[0], replicas); err != nil {
		return replicaScalePoint{}, err
	}

	// Warm-up primes the router's read set; block 0 carries the
	// replication marker, so reads stay on blocks 1+.
	readOp := func(c *rfs.Client, rng *rand.Rand, page []byte) error {
		_, err := c.ReadBlock(replicaFile, 1+uint32(rng.Intn(replicaBlocks-1)), page)
		return err
	}
	if _, _, err := shardPhase(clients, 100*time.Millisecond, readOp); err != nil {
		return replicaScalePoint{}, err
	}
	ops, _, err := shardPhase(clients, cfg.duration, readOp)
	if err != nil {
		return replicaScalePoint{}, err
	}
	return replicaScalePoint{
		Replicas:      replicas,
		Copies:        replicas + 1,
		ReadOpsPerSec: float64(ops) / cfg.duration.Seconds(),
	}, nil
}

// runReplicaFailoverOnce kills a fresh pair's primary and times the gap
// to the first successful routed read and write.
func runReplicaFailoverOnce() (replicaTrial, error) {
	cluster, err := startReplicaCluster(2, 1, replicaConfig{delay: 0})
	if err != nil {
		return replicaTrial{}, err
	}
	defer cluster.Close()

	node, err := cluster.ClientNode()
	if err != nil {
		return replicaTrial{}, err
	}
	router, err := rfs.NewRouter(node)
	if err != nil {
		return replicaTrial{}, err
	}
	defer router.Close()

	attach := func(name string, spread bool) (*rfs.Client, error) {
		p, err := node.Attach(name)
		if err != nil {
			return nil, err
		}
		c := rfs.NewVolumeClient(p, router, replicaFile)
		c.SpreadReads(spread)
		return c, nil
	}
	reader, err := attach("reader", true)
	if err != nil {
		return replicaTrial{}, err
	}
	writer, err := attach("writer", false)
	if err != nil {
		return replicaTrial{}, err
	}
	if err := awaitReplication(cluster, writer, 1); err != nil {
		return replicaTrial{}, err
	}
	page := make([]byte, 512)
	if _, err := reader.ReadBlock(replicaFile, 1, page); err != nil { // prime the read set
		return replicaTrial{}, err
	}

	cluster.Kill(0) // the primary's shard
	t0 := time.Now()
	deadline := t0.Add(10 * time.Second)
	var tr replicaTrial
	for {
		if _, err := reader.ReadBlock(replicaFile, 1, page); err == nil {
			tr.ReadGapMS = float64(time.Since(t0)) / float64(time.Millisecond)
			break
		}
		if time.Now().After(deadline) {
			return tr, fmt.Errorf("no successful read within %v of the kill", time.Since(t0))
		}
	}
	for {
		if err := writer.WriteBlock(replicaFile, 2, page); err == nil {
			tr.WriteGapMS = float64(time.Since(t0)) / float64(time.Millisecond)
			break
		}
		if time.Now().After(deadline) {
			return tr, fmt.Errorf("no successful write within %v of the kill", time.Since(t0))
		}
	}
	return tr, nil
}

// medianOf extracts one gap from every trial and returns the median.
func medianOf(trials []replicaTrial, get func(replicaTrial) float64) float64 {
	if len(trials) == 0 {
		return 0
	}
	vals := make([]float64, len(trials))
	for i, t := range trials {
		vals[i] = get(t)
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}
