// Command vnode runs a real V IPC node over UDP: either the V file
// server (internal/rfs, registered under the well-known fileserver
// logical id) or a diskless client that locates the server and exercises
// page reads, page writes and streamed large reads against it.
//
// Server, in-memory store:
//
//	vnode -host 2 -listen 127.0.0.1:4040 -serve
//
// Server, file-backed store with read-ahead:
//
//	vnode -host 2 -listen 127.0.0.1:4040 -serve -store /var/lib/vnode -readahead
//
// Server hosting two volumes of a sharded cluster:
//
//	vnode -host 2 -listen 127.0.0.1:4040 -serve -volumes 1,3
//
// Replicated pair: host 2 is volume 1's primary keeping one replica in
// sync, host 3 hosts that replica (volume:replica-id syntax) and
// promotes itself if the primary's lease lapses:
//
//	vnode -host 2 -listen 127.0.0.1:4040 -serve -volumes 1 -replicas 1
//	vnode -host 3 -listen 127.0.0.1:4041 -peer 2=127.0.0.1:4040 -serve -volumes 1:1
//
// Restarting a crashed primary into a cluster where a replica may have
// promoted (-rejoin demotes it to a replica instead of split-braining):
//
//	vnode -host 2 -listen 127.0.0.1:4040 -peer 3=127.0.0.1:4041 -serve -volumes 1 -replicas 1 -rejoin
//
// Client:
//
//	vnode -host 1 -listen 127.0.0.1:0 -peer 2=127.0.0.1:4040 -reads 1000 -large 65536
//
// Client addressing a specific volume through the name-service router:
//
//	vnode -host 1 -listen 127.0.0.1:0 -peer 2=127.0.0.1:4040 -peer 3=127.0.0.1:4041 -volume 3
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/obs"
	"vkernel/internal/rfs"
)

func main() {
	var (
		host         = flag.Int("host", 1, "logical host id of this node")
		listen       = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		peers        peerList
		transport    = flag.String("transport", "udp", "wire transport: udp (per-datagram) or batched (recvmmsg/sendmmsg, reuseport shards, hot-peer sockets)")
		rxshards     = flag.Int("rxshards", 0, "batched: SO_REUSEPORT rx shard sockets (0 = per-CPU default, capped at 4)")
		udpqueue     = flag.Int("udpqueue", 0, "dispatch queue depth between socket reads and handler workers (0 = default 512)")
		udpworkers   = flag.Int("udpworkers", 0, "packet-dispatch worker goroutines (0 = per-CPU default, capped at 16)")
		adaptiveRTO  = flag.Bool("adaptiverto", false, "per-peer adaptive retransmission timing (smoothed RTT/RTTVAR) instead of the fixed timeout")
		metricsAddr  = flag.String("metrics", "", "serve the node's metrics registry over HTTP at this address (expvar JSON at /debug/vars, pprof under /debug/pprof/); empty = off")
		timing       = flag.Bool("timing", false, "enable latency timing (per-op histograms); off by default so the hot paths cost one atomic load")
		slowOp       = flag.Duration("slowop", 0, "server: auto-capture a trace span for any request slower than this (implies -timing); 0 = off")
		serve        = flag.Bool("serve", false, "run the file server")
		volumes      = flag.String("volumes", "", "server: comma-separated volumes to host — 'id' for a primary, 'id:rid' for read replica rid of volume id (empty = the single default volume)")
		nreplicas    = flag.Int("replicas", 0, "server: read replicas each hosted primary keeps in sync (0 = replication off)")
		rejoin       = flag.Bool("rejoin", false, "server: primaries probe the name service first and demote to replicas if another server already owns the volume (restart after failover)")
		storeDir     = flag.String("store", "", "server: directory for the file-backed store (empty = in-memory)")
		cacheBlks    = flag.Int("cache", 1024, "server: block-cache capacity in blocks")
		readahead    = flag.Bool("readahead", false, "server: prefetch the next block after each page read")
		writeThrough = flag.Bool("writethrough", false, "server: synchronous write-through instead of write-behind")
		dirtyBudget  = flag.Int("dirtybudget", 0, "server: max staged-but-unflushed blocks (0 = default)")
		flushers     = flag.Int("flushers", 0, "server: write-behind flusher goroutines (0 = default)")
		maxDirtyAge  = flag.Duration("maxdirtyage", 0, "server: scheduled flushing — flush blocks dirty longer than this (0 = eager flushers)")
		lease        = flag.Duration("lease", 0, "server: client-cache registration lease (0 = default 2s)")
		fileID       = flag.Uint("file", 1, "client: file id to exercise")
		reads        = flag.Int("reads", 100, "client: number of page reads")
		writes       = flag.Int("writes", 0, "client: also time this many page writes (ends with a sync)")
		large        = flag.Int("large", 0, "client: also stream a large read of this many bytes")
		clientCache  = flag.Bool("clientcache", false, "client: enable the local block cache with server-driven invalidation")
		ccBlocks     = flag.Int("ccblocks", 0, "client: local cache capacity in blocks (0 = default 256)")
		volumeID     = flag.Int("volume", -1, "client: route to this volume id via the name service (-1 = legacy single-server discovery)")
		spreadReads  = flag.Bool("spreadreads", false, "client: round-robin reads over the volume's in-sync replica set (requires -volume)")
	)
	flag.Var(&peers, "peer", "host=addr peer entry; repeatable, and each may be a comma-separated list")
	flag.Parse()

	// One registry labels the whole node: transport, kernel and (when
	// serving) the file server all record into it, so one scrape — HTTP
	// expvar or a remote OpQueryStats — covers every layer.
	reg := obs.New()
	reg.SetNode(fmt.Sprintf("host%d", *host))
	if *timing {
		reg.SetTiming(true)
	}

	// Both wire transports register peers and expose their bound address
	// the same way; everything past construction is Transport-agnostic.
	type wireTransport interface {
		ipc.Transport
		Addr() *net.UDPAddr
		AddPeer(ipc.LogicalHost, *net.UDPAddr)
	}
	var tr wireTransport
	var err error
	switch *transport {
	case "udp":
		tr, err = ipc.NewUDPTransportConfig(*listen, ipc.UDPConfig{
			Metrics:    reg,
			QueueDepth: *udpqueue,
			Workers:    *udpworkers,
		})
	case "batched":
		tr, err = ipc.NewBatchedUDPTransport(*listen, ipc.BatchConfig{
			Metrics:    reg,
			Shards:     *rxshards,
			QueueDepth: *udpqueue,
			Workers:    *udpworkers,
		})
	default:
		err = fmt.Errorf("unknown -transport %q (want udp or batched)", *transport)
	}
	fatalIf(err)
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, reg)
	}
	for _, spec := range peers {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatalIf(fmt.Errorf("bad -peer entry %q", spec))
		}
		h, err := strconv.Atoi(parts[0])
		fatalIf(err)
		addr, err := net.ResolveUDPAddr("udp", parts[1])
		fatalIf(err)
		tr.AddPeer(ipc.LogicalHost(h), addr)
	}
	node := ipc.NewNode(ipc.LogicalHost(*host), tr, ipc.NodeConfig{AdaptiveRTO: *adaptiveRTO, Metrics: reg})
	defer node.Close()
	fmt.Printf("vnode: host %d listening on %v (%s transport)\n", *host, tr.Addr(), *transport)

	if *serve {
		runServer(node, *volumes, *storeDir, *nreplicas, *rejoin, rfs.Config{
			Metrics:      reg,
			SlowOp:       *slowOp,
			CacheBlocks:  *cacheBlks,
			ReadAhead:    *readahead,
			WriteThrough: *writeThrough,
			DirtyBudget:  *dirtyBudget,
			Flushers:     *flushers,
			MaxDirtyAge:  *maxDirtyAge,
			CacheLease:   *lease,
		})
		return
	}
	runClient(node, uint32(*fileID), *reads, *writes, *large, *clientCache, *ccBlocks, *volumeID, *spreadReads)
}

// serveMetrics exposes the registry over HTTP: expvar JSON at
// /debug/vars (the registry published as "vkernel", plus the stdlib
// memstats/cmdline vars) and the pprof profiling endpoints under
// /debug/pprof/. A dedicated mux keeps the node off http.DefaultServeMux
// side effects.
func serveMetrics(addr string, reg *obs.Registry) {
	obs.Publish("vkernel", reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	fatalIf(err)
	fmt.Printf("vnode: metrics at http://%v/debug/vars (pprof under /debug/pprof/)\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
}

// peerList accumulates -peer flags: the flag is repeatable (the usage
// examples above pass it once per peer) and each occurrence may itself
// be a comma-separated host=addr list.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	for _, e := range strings.Split(v, ",") {
		if e = strings.TrimSpace(e); e != "" {
			*p = append(*p, e)
		}
	}
	return nil
}

// volEntry is one parsed -volumes entry: a primary ('7') or a read
// replica ('7:2' — replica id 2 of volume 7).
type volEntry struct {
	id  uint32
	rid uint32 // 0 = primary
}

// parseVolumes turns the -volumes flag into volume entries. An empty
// flag means the pre-sharding shape: one server, one DefaultVolume.
func parseVolumes(spec string) []volEntry {
	if spec == "" {
		return []volEntry{{id: rfs.DefaultVolume}}
	}
	var out []volEntry
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		var e volEntry
		idPart, ridPart, isReplica := strings.Cut(f, ":")
		id, err := strconv.ParseUint(idPart, 10, 32)
		if err != nil {
			fatalIf(fmt.Errorf("bad -volumes entry %q: %w", f, err))
		}
		e.id = uint32(id)
		if isReplica {
			rid, err := strconv.ParseUint(ridPart, 10, 32)
			if err != nil || rid == 0 {
				fatalIf(fmt.Errorf("bad -volumes replica entry %q (want vol:rid with rid >= 1)", f))
			}
			e.rid = uint32(rid)
		}
		out = append(out, e)
	}
	return out
}

func runServer(node *ipc.Node, volumeSpec, storeDir string, nreplicas int, rejoin bool, cfg rfs.Config) {
	entries := parseVolumes(volumeSpec)
	vols := make([]rfs.VolumeSpec, 0, len(entries))
	var ids []uint32
	for _, e := range entries {
		ids = append(ids, e.id)
		var store rfs.Store
		if storeDir == "" {
			store = rfs.NewMemStore()
		} else {
			// Each copy is its own "disk": a subdirectory so two volumes
			// (or a primary and a replica of different volumes) never
			// alias the same backing files.
			name := fmt.Sprintf("vol%d", e.id)
			if e.rid != 0 {
				name = fmt.Sprintf("vol%d.r%d", e.id, e.rid)
			}
			fs, err := rfs.NewFileStore(filepath.Join(storeDir, name))
			fatalIf(err)
			store = fs
		}
		defer store.Close()
		spec := rfs.VolumeSpec{ID: e.id, Store: store}
		if e.rid != 0 {
			spec.Role = rfs.RoleReplica
			spec.ReplicaID = e.rid
		} else {
			spec.Replicas = nreplicas
			spec.Rejoin = rejoin && nreplicas > 0
		}
		vols = append(vols, spec)
	}
	if storeDir == "" {
		fmt.Printf("vnode: serving volumes %v from in-memory stores\n", ids)
	} else {
		fmt.Printf("vnode: serving volumes %v from per-volume stores under %s\n", ids, storeDir)
	}

	srv, err := rfs.StartVolumes(node, vols, cfg)
	fatalIf(err)
	defer srv.Close()
	mode := "write-behind"
	if cfg.WriteThrough {
		mode = "write-through"
	}
	fmt.Printf("vnode: file server %v registered as logical id %d, volumes at %d+id (%s)\n",
		srv.Pid(), rfs.LogicalFileServer, rfs.LogicalVolumeBase, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Printf("vnode: shutting down; stats: %+v\n", srv.Stats())
}

func runClient(node *ipc.Node, file uint32, reads, writes, large int, clientCache bool, ccBlocks, volumeID int, spreadReads bool) {
	proc, err := node.Attach("client")
	fatalIf(err)
	defer node.Detach(proc)

	// -volume routes through the name service (GetPid on the volume's
	// logical id, cached, re-resolved on failure); without it the client
	// binds to whichever single server Discover finds, as before.
	var client *rfs.Client
	var router *rfs.Router
	if volumeID >= 0 {
		router, err = rfs.NewRouter(node)
		fatalIf(err)
		defer router.Close()
		server, err := router.Resolve(uint32(volumeID))
		fatalIf(err)
		client = rfs.NewVolumeClient(proc, router, uint32(volumeID))
		if spreadReads {
			client.SpreadReads(true)
			fmt.Println("vnode: reads round-robin over the volume's replica set")
		}
		fmt.Printf("vnode: routed volume %d -> %v\n", volumeID, server)
	} else {
		if spreadReads {
			fatalIf(fmt.Errorf("-spreadreads requires -volume routing"))
		}
		client, err = rfs.Discover(proc)
		fatalIf(err)
		fmt.Printf("vnode: resolved file server -> %v\n", client.Server())
	}

	// The page-op entry points: the plain stubs, or the caching client's
	// (local cache + invalidation callback process) with -clientcache.
	readPage, writePage := client.ReadBlock, client.WriteBlock
	var cc *rfs.CachingClient
	if clientCache {
		ccCfg := rfs.CacheClientConfig{Blocks: ccBlocks}
		if router != nil {
			cc, err = rfs.NewVolumeCachingClient(proc, router, uint32(volumeID), ccCfg)
		} else {
			cc, err = rfs.NewCachingClient(proc, client.Server(), ccCfg)
		}
		fatalIf(err)
		defer cc.Close()
		readPage, writePage = cc.ReadBlock, cc.WriteBlock
		fmt.Println("vnode: client block cache enabled (server-driven invalidation)")
	}

	// Seed one page so reads have something to hit, then time the page
	// fast path: one Send/Reply exchange per read (or a local cache hit
	// after the first miss with -clientcache).
	out := make([]byte, 512)
	for i := range out {
		out[i] = byte(i)
	}
	fatalIf(writePage(file, 0, out))

	in := make([]byte, 512)
	start := time.Now()
	for i := 0; i < reads; i++ {
		if _, err := readPage(file, 0, in); err != nil {
			fatalIf(err)
		}
	}
	per := time.Since(start) / time.Duration(max(reads, 1))
	fmt.Printf("vnode: %d page reads, %v/page\n", reads, per)

	if writes > 0 {
		start = time.Now()
		for i := 0; i < writes; i++ {
			fatalIf(writePage(file, uint32(i%256), out))
		}
		acked := time.Since(start)
		fatalIf(client.Sync(0))
		fmt.Printf("vnode: %d page writes acked in %v (%v/page), synced after %v\n",
			writes, acked, acked/time.Duration(writes), time.Since(start))
	}

	if large > 0 {
		image := make([]byte, large)
		for i := range image {
			image[i] = byte(i * 13)
		}
		fatalIf(client.WriteLarge(file, 0, image))
		buf := make([]byte, large)
		start = time.Now()
		n, err := client.ReadLarge(file, 0, buf)
		fatalIf(err)
		elapsed := time.Since(start)
		fmt.Printf("vnode: streamed %d-byte read in %v (%.1f MB/s)\n",
			n, elapsed, float64(n)/(1<<20)/elapsed.Seconds())
	}
	if cc != nil {
		fmt.Printf("vnode: client cache stats: %+v\n", cc.Stats())
	}
	fmt.Printf("vnode: node stats: %+v\n", node.Stats())
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "vnode: %v\n", err)
		os.Exit(1)
	}
}
