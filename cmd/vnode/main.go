// Command vnode runs a real V IPC node over UDP: either a page server
// (registering the well-known fileserver logical id) or a client that
// locates the server and exercises page reads and writes.
//
// Server:  vnode -host 2 -listen 127.0.0.1:4040 -serve
// Client:  vnode -host 1 -listen 127.0.0.1:0 -peer 2=127.0.0.1:4040 -reads 1000
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"vkernel/internal/ipc"
)

const pageSize = 512

func main() {
	var (
		host   = flag.Int("host", 1, "logical host id of this node")
		listen = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		peers  = flag.String("peer", "", "comma-separated host=addr peer list")
		serve  = flag.Bool("serve", false, "run the page server")
		reads  = flag.Int("reads", 100, "client: number of page reads")
	)
	flag.Parse()

	tr, err := ipc.NewUDPTransport(*listen)
	fatalIf(err)
	for _, spec := range strings.Split(*peers, ",") {
		if spec == "" {
			continue
		}
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatalIf(fmt.Errorf("bad -peer entry %q", spec))
		}
		h, err := strconv.Atoi(parts[0])
		fatalIf(err)
		addr, err := net.ResolveUDPAddr("udp", parts[1])
		fatalIf(err)
		tr.AddPeer(ipc.LogicalHost(h), addr)
	}
	node := ipc.NewNode(ipc.LogicalHost(*host), tr, ipc.NodeConfig{})
	defer node.Close()
	fmt.Printf("vnode: host %d listening on %v\n", *host, tr.Addr())

	if *serve {
		runServer(node)
		return
	}
	runClient(node, *reads)
}

func runServer(node *ipc.Node) {
	done := make(chan struct{})
	node.Spawn("pageserver", func(p *ipc.Proc) {
		defer close(done)
		store := make([]byte, 128*pageSize)
		p.SetPid(1, p.Pid(), ipc.ScopeBoth)
		fmt.Printf("vnode: page server %v registered as logical id 1\n", p.Pid())
		buf := make([]byte, pageSize)
		for {
			msg, src, n, err := p.ReceiveWithSegment(buf)
			if err != nil {
				return
			}
			page := int(msg.Word(2)) % 128
			var reply ipc.Message
			switch msg.Word(1) {
			case 1:
				err = p.ReplyWithSegment(&reply, src, 0, store[page*pageSize:(page+1)*pageSize])
			case 2:
				copy(store[page*pageSize:], buf[:n])
				err = p.Reply(&reply, src)
			default:
				reply.SetWord(1, 1)
				err = p.Reply(&reply, src)
			}
			if err != nil {
				return
			}
		}
	})
	<-done
}

func runClient(node *ipc.Node, reads int) {
	client := node.Attach("client")
	defer node.Detach(client)
	server := client.GetPid(1, ipc.ScopeBoth)
	if server == 0 {
		fatalIf(fmt.Errorf("page server not resolved; is -serve running and -peer set?"))
	}
	fmt.Printf("vnode: resolved page server -> %v\n", server)

	out := make([]byte, pageSize)
	for i := range out {
		out[i] = byte(i)
	}
	var w ipc.Message
	w.SetWord(1, 2)
	w.SetWord(2, 3)
	fatalIf(client.Send(&w, server, &ipc.Segment{Data: out, Access: ipc.SegRead}))

	in := make([]byte, pageSize)
	start := time.Now()
	for i := 0; i < reads; i++ {
		var m ipc.Message
		m.SetWord(1, 1)
		m.SetWord(2, uint32(i))
		fatalIf(client.Send(&m, server, &ipc.Segment{Data: in, Access: ipc.SegWrite}))
	}
	per := time.Since(start) / time.Duration(reads)
	fmt.Printf("vnode: %d page reads, %v/page\n", reads, per)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "vnode: %v\n", err)
		os.Exit(1)
	}
}
