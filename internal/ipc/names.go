package ipc

import (
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

// SetPid associates pid with a well-known logical id in the given scope
// (§2.1). Any process on the node may register names.
func (p *Proc) SetPid(logicalID uint32, pid Pid, scope Scope) {
	t := &p.node.names
	t.mu.Lock()
	t.names[logicalID] = nameEntry{pid: pid, scope: scope}
	t.mu.Unlock()
}

// GetPid resolves a logical id, broadcasting on the network when the
// mapping is not known locally (§3.1); it returns vproto.Nil when the
// lookup fails.
func (p *Proc) GetPid(logicalID uint32, scope Scope) Pid {
	n := p.node
	t := &n.names
	t.mu.Lock()
	if e, ok := t.names[logicalID]; ok && e.scope&scope != 0 {
		t.mu.Unlock()
		return e.pid
	}
	if scope&ScopeRemote == 0 || n.closed.Load() {
		t.mu.Unlock()
		return vproto.Nil
	}
	ch := make(chan Pid, 1)
	t.lookups[logicalID] = append(t.lookups[logicalID], ch)
	t.mu.Unlock()

	pkt := &vproto.Packet{
		Kind:  vproto.KindGetPid,
		Seq:   n.nextSeq(),
		Src:   p.pid,
		Flags: vproto.FlagScopeRemote,
	}
	pkt.Msg.SetWord(wordNameID, logicalID)
	f := bufpool.Get(pkt.WireSize())
	if _, err := pkt.EncodeInto(f.Data); err != nil {
		f.Release()
		return vproto.Nil
	}
	defer f.Release()

	defer func() {
		// Remove the waiter (if it is still registered).
		t.mu.Lock()
		ws := t.lookups[logicalID]
		for i, w := range ws {
			if w == ch {
				t.lookups[logicalID] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(t.lookups[logicalID]) == 0 {
			delete(t.lookups, logicalID)
		}
		t.mu.Unlock()
	}()

	for attempt := 0; attempt <= n.cfg.GetPidRetries; attempt++ {
		_ = n.transport.Broadcast(f.Data)
		select {
		case pid := <-ch:
			return pid
		case <-time.After(n.cfg.GetPidTimeout):
		}
	}
	return vproto.Nil
}

// handleGetPid answers broadcast lookups this node can resolve.
func (n *Node) handleGetPid(pkt *vproto.Packet) {
	id := pkt.Msg.Word(wordNameID)
	t := &n.names
	t.mu.Lock()
	e, ok := t.names[id]
	t.mu.Unlock()
	if !ok || e.scope&ScopeRemote == 0 {
		return
	}
	out := &vproto.Packet{
		Kind: vproto.KindGetPidReply,
		Seq:  pkt.Seq,
		Dst:  pkt.Src,
	}
	out.Msg.SetWord(wordNameID, id)
	out.Msg.SetWord(wordNamePid, uint32(e.pid))
	n.send(out, pkt.Src.Host())
}

// GetPidAll resolves every holder of a logical id reachable within a
// bounded window — the enumeration primitive behind rfs.DiscoverAll. Where
// GetPid returns on the first responder, GetPidAll keeps broadcasting one
// lookup round per GetPidTimeout until the window closes and collects
// every distinct pid that answered (a locally registered mapping is
// included without a broadcast). A window of zero selects the same
// patience GetPid has: (GetPidRetries+1) rounds. Lossy networks are the
// point of the repeated rounds — each round re-solicits the responders
// whose earlier replies (or our earlier requests) were dropped.
func (p *Proc) GetPidAll(logicalID uint32, scope Scope, window time.Duration) []Pid {
	n := p.node
	t := &n.names
	var pids []Pid
	seen := make(map[Pid]bool)
	t.mu.Lock()
	if e, ok := t.names[logicalID]; ok && e.scope&scope != 0 {
		seen[e.pid] = true
		pids = append(pids, e.pid)
	}
	if scope&ScopeRemote == 0 || n.closed.Load() {
		t.mu.Unlock()
		return pids
	}
	// Buffered generously: replies beyond the buffer are dropped by the
	// non-blocking send in handleGetPidReply, and the next round
	// re-solicits them.
	ch := make(chan Pid, 128)
	t.lookups[logicalID] = append(t.lookups[logicalID], ch)
	t.mu.Unlock()

	pkt := &vproto.Packet{
		Kind:  vproto.KindGetPid,
		Seq:   n.nextSeq(),
		Src:   p.pid,
		Flags: vproto.FlagScopeRemote,
	}
	pkt.Msg.SetWord(wordNameID, logicalID)
	f := bufpool.Get(pkt.WireSize())
	if _, err := pkt.EncodeInto(f.Data); err != nil {
		f.Release()
		return pids
	}
	defer f.Release()

	defer func() {
		t.mu.Lock()
		ws := t.lookups[logicalID]
		for i, w := range ws {
			if w == ch {
				t.lookups[logicalID] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(t.lookups[logicalID]) == 0 {
			delete(t.lookups, logicalID)
		}
		t.mu.Unlock()
	}()

	if window <= 0 {
		window = time.Duration(n.cfg.GetPidRetries+1) * n.cfg.GetPidTimeout
	}
	deadline := time.Now().Add(window)
	for {
		_ = n.transport.Broadcast(f.Data)
		round := time.NewTimer(n.cfg.GetPidTimeout)
	collect:
		for {
			select {
			case pid := <-ch:
				if !seen[pid] {
					seen[pid] = true
					pids = append(pids, pid)
				}
			case <-round.C:
				break collect
			}
		}
		if !time.Now().Before(deadline) {
			return pids
		}
	}
}

// handleGetPidReply wakes outstanding lookups. Waiters stay registered —
// each removes itself when it is done — so an all-responders collection
// (GetPidAll) keeps receiving after the first reply; GetPid waiters
// simply return on the first pid delivered and deregister themselves.
func (n *Node) handleGetPidReply(pkt *vproto.Packet) {
	id := pkt.Msg.Word(wordNameID)
	pid := Pid(pkt.Msg.Word(wordNamePid))
	t := &n.names
	t.mu.Lock()
	ws := append([]chan Pid(nil), t.lookups[id]...)
	t.mu.Unlock()
	for _, ch := range ws {
		select {
		case ch <- pid:
		default:
		}
	}
}
