package ipc

import (
	"sync"
	"time"
)

// Per-peer adaptive retransmission timing (NodeConfig.AdaptiveRTO).
//
// The paper ran on one Ethernet, where a fixed retransmission interval
// is fine; spread the same protocol across links of very different
// latency and a single knob is always wrong — too short for the WAN
// peer (spurious retransmissions that the duplicate filter then has to
// absorb), too long for the LAN peer (slow loss recovery). So each peer
// gets the classic Jacobson/Karn treatment:
//
//   - observe: clean Send→Reply round trips (never retransmitted
//     exchanges — Karn's rule, since a reply to a retransmitted Send is
//     ambiguous about which copy it answers) update the smoothed RTT
//     and its variance with the standard 1/8 and 1/4 gains.
//   - rto: srtt + 4·rttvar, clamped to [MinRTO, MaxRTO], doubled per
//     backoff step. Before the first sample the configured
//     RetransmitTimeout serves as the initial estimate.
//   - bump: each timeout retransmission doubles the peer's timeout
//     (capped) until a clean sample resets it. Without this, an initial
//     estimate below the peer's true RTT would retransmit every
//     exchange forever and — by Karn's rule — never sample at all; the
//     backoff climbs above the true RTT in a few exchanges, a clean
//     round trip gets through, and the estimator takes over.

// rtoBackoffMax caps the exponential backoff at 2^6 = 64× so a loss
// burst cannot push the timeout into minutes.
const rtoBackoffMax = 6

// rttEstimator is one peer's timing state, guarded by rttTable.mu.
type rttEstimator struct {
	srtt    time.Duration
	rttvar  time.Duration
	backoff uint
	samples int64
}

// rttTable maps peers to their estimators. It is a leaf lock: nothing
// is acquired under it.
type rttTable struct {
	mu sync.Mutex
	m  map[LogicalHost]*rttEstimator
}

func (t *rttTable) init() { t.m = make(map[LogicalHost]*rttEstimator) }

func (t *rttTable) estimatorLocked(host LogicalHost) *rttEstimator {
	e := t.m[host]
	if e == nil {
		e = &rttEstimator{}
		t.m[host] = e
	}
	return e
}

// observe folds in one clean round-trip sample and clears the backoff.
func (t *rttTable) observe(host LogicalHost, rtt time.Duration) {
	t.mu.Lock()
	e := t.estimatorLocked(host)
	if e.samples == 0 {
		e.srtt = rtt
		e.rttvar = rtt / 2
	} else {
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	e.samples++
	e.backoff = 0
	t.mu.Unlock()
}

// bump doubles the peer's timeout after a timeout retransmission.
func (t *rttTable) bump(host LogicalHost) {
	t.mu.Lock()
	e := t.estimatorLocked(host)
	if e.backoff < rtoBackoffMax {
		e.backoff++
	}
	t.mu.Unlock()
}

// rto computes the peer's current retransmission timeout.
func (t *rttTable) rto(host LogicalHost, initial, floor, ceil time.Duration) time.Duration {
	t.mu.Lock()
	e := t.m[host]
	d := initial
	var backoff uint
	if e != nil {
		backoff = e.backoff
		if e.samples > 0 {
			d = e.srtt + 4*e.rttvar
		}
	}
	t.mu.Unlock()
	if d < floor {
		d = floor
	}
	d <<= backoff
	if d > ceil {
		d = ceil
	}
	return d
}

// snapshot reports a peer's current estimate (for tests and stats).
func (t *rttTable) snapshot(host LogicalHost) (srtt, rttvar time.Duration, samples int64) {
	t.mu.Lock()
	if e := t.m[host]; e != nil {
		srtt, rttvar, samples = e.srtt, e.rttvar, e.samples
	}
	t.mu.Unlock()
	return
}

// rtoFor is the timeout to arm for the next (re)transmission to host.
func (n *Node) rtoFor(host LogicalHost) time.Duration {
	if !n.cfg.AdaptiveRTO {
		return n.cfg.RetransmitTimeout
	}
	return n.rtt.rto(host, n.cfg.RetransmitTimeout, n.cfg.MinRTO, n.cfg.MaxRTO)
}

// observeRTT feeds one clean Send→Reply round trip into host's estimator.
func (n *Node) observeRTT(host LogicalHost, rtt time.Duration) {
	if !n.cfg.AdaptiveRTO {
		return
	}
	n.stats.rttSamples.Add(1)
	n.rtt.observe(host, rtt)
}

// bumpRTO backs off host's timeout after a timeout retransmission.
func (n *Node) bumpRTO(host LogicalHost) {
	if !n.cfg.AdaptiveRTO {
		return
	}
	n.rtt.bump(host)
}

// PeerRTT reports the smoothed round-trip estimate for a peer host and
// how many clean samples back it (zero values before the first sample).
func (n *Node) PeerRTT(host LogicalHost) (srtt, rttvar time.Duration, samples int64) {
	return n.rtt.snapshot(host)
}

// avg reports the mean srtt and mean current timeout (srtt + 4·rttvar,
// before backoff/clamping) across peers with at least one sample.
func (t *rttTable) avg() (srtt, rto int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var peers int64
	for _, e := range t.m {
		if e.samples == 0 {
			continue
		}
		peers++
		srtt += int64(e.srtt)
		rto += int64(e.srtt + 4*e.rttvar)
	}
	if peers == 0 {
		return 0, 0
	}
	return srtt / peers, rto / peers
}

// registerRTTGauges publishes the adaptive-timing estimates as
// pull-time gauges: the mean smoothed RTT and mean retransmission
// timeout across sampled peers (0 before any sample; with AdaptiveRTO
// off, rto reports the fixed configured timeout).
func (n *Node) registerRTTGauges() {
	n.metrics.GaugeFunc("ipc.srtt_ns", func() int64 {
		srtt, _ := n.rtt.avg()
		return srtt
	})
	n.metrics.GaugeFunc("ipc.rto_ns", func() int64 {
		if !n.cfg.AdaptiveRTO {
			return int64(n.cfg.RetransmitTimeout)
		}
		_, rto := n.rtt.avg()
		if rto == 0 {
			return int64(n.cfg.RetransmitTimeout)
		}
		return rto
	})
}
