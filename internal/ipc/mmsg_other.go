//go:build !(linux && (amd64 || 386 || arm || arm64 || riscv64 || loong64))

// Portable fallback for BatchedUDPTransport: without recvmmsg/sendmmsg
// and SO_REUSEPORT the transport degrades to one socket doing
// per-datagram I/O — semantically identical to UDPTransport, so the
// tree builds and behaves the same everywhere.

package ipc

import (
	"errors"
	"net"
)

const batchingAvailable = false

type mmsgState struct{}

func (st *mmsgState) init(conn *net.UDPConn, batch int, connected bool) {}

func listenBatch(listen string, shards int) ([]*net.UDPConn, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	return []*net.UDPConn{conn}, nil
}

func dialHot(local, peer *net.UDPAddr) (*net.UDPConn, error) {
	return nil, errors.New("ipc: connected hot-peer sockets require linux")
}

func (s *batchSock) readBatch(scratch [][]byte, lens []int, peers *peerTable) (int, error) {
	return s.readOne(scratch, lens, peers)
}

func (s *batchSock) writeBatch(msgs []txMsg) {
	for _, m := range msgs {
		_ = s.writeOne(m.frame.Data, m.addr)
	}
}
