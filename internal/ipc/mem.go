package ipc

import (
	"math/rand"
	"sync"
	"time"
)

// FaultConfig injects datagram pathologies into a MemNetwork, for testing
// the protocol's reliability machinery.
type FaultConfig struct {
	DropProb    float64       // lose the packet
	DupProb     float64       // deliver it twice
	CorruptProb float64       // flip a byte (caught by the packet checksum)
	MaxDelay    time.Duration // uniform random delivery delay (reorders)
}

// MemNetwork is an in-process datagram mesh connecting Nodes, with
// deterministic-seeded fault injection. It is the test double for the UDP
// transport.
type MemNetwork struct {
	mu     sync.Mutex
	cfg    FaultConfig
	rng    *rand.Rand
	ports  map[LogicalHost]*memPort
	closed bool
	wg     sync.WaitGroup
}

type memPort struct {
	net     *MemNetwork
	host    LogicalHost
	mu      sync.Mutex
	handler func([]byte)
	closed  bool
}

// NewMemNetwork creates a mesh with the given fault configuration.
func NewMemNetwork(seed int64, cfg FaultConfig) *MemNetwork {
	return &MemNetwork{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		ports: make(map[LogicalHost]*memPort),
	}
}

// Transport attaches a new port for the given host.
func (m *MemNetwork) Transport(host LogicalHost) Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := &memPort{net: m, host: host}
	m.ports[host] = p
	return p
}

// Wait blocks until all in-flight deliveries complete (test helper).
func (m *MemNetwork) Wait() { m.wg.Wait() }

// Close tears the mesh down.
func (m *MemNetwork) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.wg.Wait()
}

// deliver applies fault injection and hands the packet to the target.
func (m *MemNetwork) deliver(to LogicalHost, pkt []byte) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	port := m.ports[to]
	if port == nil {
		m.mu.Unlock()
		return
	}
	copies := 1
	if m.cfg.DropProb > 0 && m.rng.Float64() < m.cfg.DropProb {
		copies = 0
	} else if m.cfg.DupProb > 0 && m.rng.Float64() < m.cfg.DupProb {
		copies = 2
	}
	type shipment struct {
		buf   []byte
		delay time.Duration
	}
	ships := make([]shipment, 0, copies)
	for i := 0; i < copies; i++ {
		buf := append([]byte(nil), pkt...)
		if m.cfg.CorruptProb > 0 && m.rng.Float64() < m.cfg.CorruptProb {
			buf[m.rng.Intn(len(buf))] ^= 0xA5
		}
		var d time.Duration
		if m.cfg.MaxDelay > 0 {
			d = time.Duration(m.rng.Int63n(int64(m.cfg.MaxDelay)))
		}
		ships = append(ships, shipment{buf: buf, delay: d})
	}
	m.wg.Add(len(ships))
	m.mu.Unlock()

	for _, s := range ships {
		s := s
		go func() {
			defer m.wg.Done()
			if s.delay > 0 {
				time.Sleep(s.delay)
			}
			port.mu.Lock()
			h := port.handler
			closed := port.closed
			port.mu.Unlock()
			if h != nil && !closed {
				h(s.buf)
			}
		}()
	}
}

// Send implements Transport.
func (p *memPort) Send(to LogicalHost, pkt []byte) error {
	p.net.deliver(to, pkt)
	return nil
}

// Broadcast implements Transport.
func (p *memPort) Broadcast(pkt []byte) error {
	p.net.mu.Lock()
	hosts := make([]LogicalHost, 0, len(p.net.ports))
	for h := range p.net.ports {
		if h != p.host {
			hosts = append(hosts, h)
		}
	}
	p.net.mu.Unlock()
	for _, h := range hosts {
		p.net.deliver(h, pkt)
	}
	return nil
}

// SetHandler implements Transport.
func (p *memPort) SetHandler(h func([]byte)) {
	p.mu.Lock()
	p.handler = h
	p.mu.Unlock()
}

// Close implements Transport.
func (p *memPort) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}
