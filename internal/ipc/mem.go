package ipc

import (
	"math/rand"
	"sync"
	"time"

	"vkernel/internal/bufpool"
)

// FaultConfig injects datagram pathologies into a MemNetwork, for testing
// the protocol's reliability machinery.
type FaultConfig struct {
	DropProb    float64       // lose the packet
	DupProb     float64       // deliver it twice
	CorruptProb float64       // flip a byte (caught by the packet checksum)
	Delay       time.Duration // fixed delivery delay (one-way link latency)
	MaxDelay    time.Duration // uniform random delivery delay on top (reorders)
}

// MemNetwork is an in-process datagram mesh connecting Nodes, with
// deterministic-seeded fault injection. It is the test double for the UDP
// transport.
//
// Deliveries run on a bounded pool of worker goroutines (instead of one
// goroutine per packet), so handlers are invoked concurrently — as the UDP
// transport's worker pool does — without unbounded goroutine growth under
// load. The queue feeding the pool is unbounded because handlers send
// packets themselves (replies, acks): a worker blocking on a full queue
// while every other worker does the same would deadlock the mesh.
type MemNetwork struct {
	mu     sync.Mutex
	cfg    FaultConfig
	links  map[memLink]FaultConfig // per-directed-link overrides
	rng    *rand.Rand
	ports  map[LogicalHost]*memPort
	closed bool
	wg     sync.WaitGroup // in-flight deliveries, Done after the handler returns

	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   ringQueue
	stopped bool
	workers sync.WaitGroup
}

// ringQueue is a growable circular buffer of deliveries. The steady-state
// enqueue/dequeue cycle reuses one backing array instead of appending to
// (and re-allocating) a slice whose consumed front can never be reclaimed
// — the mesh's per-packet allocation cost is zero once warmed.
type ringQueue struct {
	buf  []memDelivery
	head int
	n    int
}

func (q *ringQueue) push(d memDelivery) {
	if q.n == len(q.buf) {
		grown := make([]memDelivery, max(64, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = d
	q.n++
}

func (q *ringQueue) pop() memDelivery {
	d := q.buf[q.head]
	q.buf[q.head] = memDelivery{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return d
}

type memDelivery struct {
	port *memPort
	buf  *bufpool.Buf // the queue's reference, released after handling
}

// memLink names one direction of a host pair, so fault profiles can be
// asymmetric (a lossy slow uplink against a clean return path).
type memLink struct {
	from, to LogicalHost
}

type memPort struct {
	net     *MemNetwork
	host    LogicalHost
	mu      sync.Mutex
	handler func(*bufpool.Buf)
	closed  bool
}

// NewMemNetwork creates a mesh with the given fault configuration.
func NewMemNetwork(seed int64, cfg FaultConfig) *MemNetwork {
	m := &MemNetwork{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		ports: make(map[LogicalHost]*memPort),
	}
	m.qcond = sync.NewCond(&m.qmu)
	workers := dispatchWorkers(0) // uncapped: meshes are per-test
	m.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// SetLinkFault overrides the mesh-wide fault profile for the directed
// link from→to. Asymmetric WAN conditions — say 100 ms and 12 % loss
// toward a far server but a clean return path — are two calls with
// different configs. A zero config makes the link ideal.
func (m *MemNetwork) SetLinkFault(from, to LogicalHost, cfg FaultConfig) {
	m.mu.Lock()
	if m.links == nil {
		m.links = make(map[memLink]FaultConfig)
	}
	m.links[memLink{from, to}] = cfg
	m.mu.Unlock()
}

// Transport attaches a new port for the given host.
func (m *MemNetwork) Transport(host LogicalHost) Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := &memPort{net: m, host: host}
	m.ports[host] = p
	return p
}

// Wait blocks until all in-flight deliveries complete (test helper).
func (m *MemNetwork) Wait() { m.wg.Wait() }

// Close tears the mesh down: it waits for in-flight deliveries, then
// stops the worker pool.
func (m *MemNetwork) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.wg.Wait()
	m.qmu.Lock()
	m.stopped = true
	m.qcond.Broadcast()
	m.qmu.Unlock()
	m.workers.Wait()
}

// worker drains the delivery queue, handing packets to their ports.
func (m *MemNetwork) worker() {
	defer m.workers.Done()
	for {
		m.qmu.Lock()
		for m.queue.n == 0 && !m.stopped {
			m.qcond.Wait()
		}
		if m.queue.n == 0 && m.stopped {
			m.qmu.Unlock()
			return
		}
		d := m.queue.pop()
		m.qmu.Unlock()
		d.port.handle(d.buf)
		d.buf.Release()
		m.wg.Done()
	}
}

// enqueue appends one delivery for the worker pool.
func (m *MemNetwork) enqueue(d memDelivery) {
	m.qmu.Lock()
	m.queue.push(d)
	m.qcond.Signal()
	m.qmu.Unlock()
}

// deliver applies fault injection and schedules the packet for the target.
func (m *MemNetwork) deliver(from, to LogicalHost, pkt []byte) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	port := m.ports[to]
	if port == nil {
		m.mu.Unlock()
		return
	}
	cfg := m.cfg
	if m.links != nil {
		if override, ok := m.links[memLink{from, to}]; ok {
			cfg = override
		}
	}
	if cfg == (FaultConfig{}) {
		// Fault-free fast path (the benchmark configuration): one pooled
		// copy, scheduled directly, no shipment bookkeeping.
		buf := bufpool.Get(len(pkt))
		copy(buf.Data, pkt)
		m.wg.Add(1)
		m.mu.Unlock()
		m.enqueue(memDelivery{port: port, buf: buf})
		return
	}
	copies := 1
	if cfg.DropProb > 0 && m.rng.Float64() < cfg.DropProb {
		copies = 0
	} else if cfg.DupProb > 0 && m.rng.Float64() < cfg.DupProb {
		copies = 2
	}
	type shipment struct {
		buf   *bufpool.Buf
		delay time.Duration
	}
	ships := make([]shipment, 0, copies)
	for i := 0; i < copies; i++ {
		// Each delivery gets its own pooled copy (Send only borrows pkt,
		// and fault injection mutates per copy), recycled after dispatch.
		buf := bufpool.Get(len(pkt))
		copy(buf.Data, pkt)
		if cfg.CorruptProb > 0 && m.rng.Float64() < cfg.CorruptProb {
			buf.Data[m.rng.Intn(len(buf.Data))] ^= 0xA5
		}
		d := cfg.Delay
		if cfg.MaxDelay > 0 {
			d += time.Duration(m.rng.Int63n(int64(cfg.MaxDelay)))
		}
		ships = append(ships, shipment{buf: buf, delay: d})
	}
	m.wg.Add(len(ships))
	m.mu.Unlock()

	for _, s := range ships {
		d := memDelivery{port: port, buf: s.buf}
		if s.delay > 0 {
			// Delayed packets hold a timer, not a worker, so a small pool
			// cannot be starved by sleeps.
			time.AfterFunc(s.delay, func() { m.enqueue(d) })
		} else {
			m.enqueue(d)
		}
	}
}

// handle invokes the port's handler, if attached and open.
func (p *memPort) handle(f *bufpool.Buf) {
	p.mu.Lock()
	h := p.handler
	closed := p.closed
	p.mu.Unlock()
	if h != nil && !closed {
		h(f)
	}
}

// Send implements Transport.
func (p *memPort) Send(to LogicalHost, pkt []byte) error {
	p.net.deliver(p.host, to, pkt)
	return nil
}

// Broadcast implements Transport.
func (p *memPort) Broadcast(pkt []byte) error {
	p.net.mu.Lock()
	hosts := make([]LogicalHost, 0, len(p.net.ports))
	for h := range p.net.ports {
		if h != p.host {
			hosts = append(hosts, h)
		}
	}
	p.net.mu.Unlock()
	for _, h := range hosts {
		p.net.deliver(p.host, h, pkt)
	}
	return nil
}

// SetHandler implements Transport.
func (p *memPort) SetHandler(h func(*bufpool.Buf)) {
	p.mu.Lock()
	p.handler = h
	p.mu.Unlock()
}

// Close implements Transport.
func (p *memPort) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}
