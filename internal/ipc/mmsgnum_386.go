//go:build linux && 386

package ipc

// recvmmsg/sendmmsg syscall numbers for the x86-32 ABI.
const (
	sysRecvmmsg = 337
	sysSendmmsg = 345
)
