package ipc

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

// batchedPair builds two nodes talking over batched loopback UDP
// transports, with small knobs so the tests also exercise hot-peer
// promotion.
func batchedPair(t *testing.T, cfg BatchConfig) (*Node, *Node, *BatchedUDPTransport, *BatchedUDPTransport) {
	t.Helper()
	ta, err := NewBatchedUDPTransport("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewBatchedUDPTransport("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ta.AddPeer(2, tb.Addr())
	tb.AddPeer(1, ta.Addr())
	na := NewNode(1, ta, NodeConfig{RetransmitTimeout: 20 * time.Millisecond, Retries: 20})
	nb := NewNode(2, tb, NodeConfig{RetransmitTimeout: 20 * time.Millisecond, Retries: 20})
	t.Cleanup(func() {
		_ = na.Close()
		_ = nb.Close()
	})
	return na, nb, ta, tb
}

func TestBatchedExchange(t *testing.T) {
	na, nb, _, _ := batchedPair(t, BatchConfig{})
	server := echoOn(nb, 5)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	for i := uint32(1); i <= 5; i++ {
		var m Message
		m.SetWord(1, i)
		if err := client.Send(&m, server, nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if m.Word(1) != i*2 {
			t.Fatalf("reply %d = %d", i, m.Word(1))
		}
	}
}

func TestBatchedPageReadAndWrite(t *testing.T) {
	na, nb, _, _ := batchedPair(t, BatchConfig{})
	store := make([]byte, 512)
	fs := mustSpawn(nb, "fs", func(p *Proc) {
		buf := make([]byte, 1024)
		for {
			msg, src, n, err := p.ReceiveWithSegment(buf)
			if err != nil {
				return
			}
			var reply Message
			if msg.Word(1) == 1 {
				_ = p.ReplyWithSegment(&reply, src, 0, store)
			} else {
				copy(store, buf[:n])
				_ = p.Reply(&reply, src)
			}
		}
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)

	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(i ^ 0xA5)
	}
	var wm Message
	wm.SetWord(1, 2)
	if err := client.Send(&wm, fs.Pid(), &Segment{Data: page, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	var rm Message
	rm.SetWord(1, 1)
	if err := client.Send(&rm, fs.Pid(), &Segment{Data: got, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page did not survive the batched round trip")
	}
}

// TestBatchedLargeMoveTo pushes a 256 KB MoveTo chunk train — the
// workload the egress coalescer exists for — and checks both integrity
// and that the transport actually batched some of the train (Linux).
func TestBatchedLargeMoveTo(t *testing.T) {
	// A low hot threshold also drives the sender onto a connected
	// socket partway through the train.
	na, nb, _, tb := batchedPair(t, BatchConfig{HotThreshold: 8})
	const size = 256 * 1024
	img := make([]byte, size)
	for i := range img {
		img[i] = byte(i * 13)
	}
	loader := mustSpawn(nb, "loader", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.MoveTo(src, 0, img); err != nil {
			t.Errorf("MoveTo: %v", err)
		}
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	buf := make([]byte, size)
	var m Message
	if err := client.Send(&m, loader.Pid(), &Segment{Data: buf, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("256 KB image corrupted over batched UDP")
	}
	if batchingAvailable {
		st := tb.Stats()
		if st.RecvBatches == 0 || st.Recvs < st.RecvBatches {
			t.Fatalf("no batched receives recorded: %+v", st)
		}
		if st.HotPromotion == 0 {
			t.Fatalf("expected a hot-peer promotion at threshold 8: %+v", st)
		}
	}
}

// TestBatchedCoalesce pins the egress coalescer's contract: sends that
// arrive while a flusher holds the socket are queued, and the flusher
// then moves the whole backlog in Batch-sized sendmmsg vectors — far
// fewer kernel crossings than datagrams. Timing-based concurrency can't
// force that overlap deterministically (on one CPU a solo send always
// completes first, which is exactly the no-added-latency guarantee), so
// the test holds the flushing flag itself, queues a burst, and drains.
func TestBatchedCoalesce(t *testing.T) {
	ta, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{HotPeers: -1, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	tb, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ta.AddPeer(2, tb.Addr())

	var got atomic.Int32
	tb.SetHandler(func(f *bufpool.Buf) { got.Add(1) })

	const burst = 100
	pkt := &vproto.Packet{Kind: vproto.KindMoveToData, Seq: 1, Dst: vproto.MakePid(2, 1),
		Src: vproto.MakePid(1, 1), Count: 256, Data: make([]byte, 256)}
	wire, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Pose as an in-flight flusher so every Send queues behind us.
	s := ta.socks[0]
	s.mu.Lock()
	s.flushing = true
	s.mu.Unlock()
	for i := 0; i < burst; i++ {
		if err := ta.Send(2, wire); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	queued := len(s.pending)
	s.mu.Unlock()
	if queued != burst {
		t.Fatalf("queued %d of %d sends behind the flusher", queued, burst)
	}
	s.drain() // what the real flusher runs after its own write

	st := ta.Stats()
	if st.Sends != burst {
		t.Fatalf("coalescer accounted %d sends, want %d", st.Sends, burst)
	}
	if want := int64((burst + 31) / 32); st.SendBatches != want {
		t.Fatalf("burst of %d took %d kernel crossings, want %d", burst, st.SendBatches, want)
	}
	deadline := time.Now().Add(3 * time.Second)
	for got.Load() < burst/2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() < burst/2 {
		t.Fatalf("receiver saw only %d/%d datagrams", got.Load(), burst)
	}
	_ = tb.Close()
}

// TestBatchedConcurrentSends hammers Send from many goroutines purely
// for the race detector and for conservation: every datagram must be
// accounted as coalesced or inline, whichever path it took.
func TestBatchedConcurrentSends(t *testing.T) {
	ta, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{HotPeers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	tb, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tb.Close() }()
	ta.AddPeer(2, tb.Addr())
	tb.SetHandler(func(f *bufpool.Buf) {})

	const senders = 16
	const perSender = 64
	pkt := &vproto.Packet{Kind: vproto.KindMoveToData, Seq: 1, Dst: vproto.MakePid(2, 1),
		Src: vproto.MakePid(1, 1), Count: 256, Data: make([]byte, 256)}
	wire, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(senders)
	for s := 0; s < senders; s++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				_ = ta.Send(2, wire)
			}
		}()
	}
	wg.Wait()
	st := ta.Stats()
	if want := int64(senders * perSender); st.Sends+st.InlineSends != want {
		t.Fatalf("sends accounted %d+%d, want %d", st.Sends, st.InlineSends, want)
	}
}

// TestBatchedDispatchBufferLifetime is TestUDPDispatchBufferLifetime
// for the mmsg rx path: frames handed to the dispatch queue from a
// recvmmsg vector must not be recycled while a worker (or anyone it
// lent the frame to) still reads them.
func TestBatchedDispatchBufferLifetime(t *testing.T) {
	ta, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	tb, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ta.AddPeer(2, tb.Addr())

	const packets = 300
	const payload = 512
	var verified, corrupted atomic.Int32
	var wg sync.WaitGroup
	tb.SetHandler(func(f *bufpool.Buf) {
		var pkt vproto.Packet
		if err := vproto.DecodeInto(&pkt, f.Data); err != nil {
			return
		}
		seq := pkt.Seq
		data := pkt.Data // aliases the pooled frame
		f.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.Release()
			time.Sleep(2 * time.Millisecond)
			for i, b := range data {
				if b != byte(int(seq)*7+i) {
					corrupted.Add(1)
					return
				}
			}
			verified.Add(1)
		}()
	})

	for seq := uint32(1); seq <= packets; seq++ {
		pkt := &vproto.Packet{Kind: vproto.KindMoveToData, Seq: seq, Dst: vproto.MakePid(2, 1),
			Count: payload, Data: make([]byte, payload)}
		for i := range pkt.Data {
			pkt.Data[i] = byte(int(seq)*7 + i)
		}
		buf, err := pkt.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := ta.Send(2, buf); err != nil {
			t.Fatal(err)
		}
		if seq%32 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for verified.Load()+corrupted.Load() < packets && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	_ = tb.Close()
	wg.Wait()
	if corrupted.Load() > 0 {
		t.Fatalf("%d frames were recycled while still lent out", corrupted.Load())
	}
	if verified.Load() < packets/2 {
		t.Fatalf("only %d/%d packets verified; transport lost too much", verified.Load(), packets)
	}
}

// TestBatchedRxShards verifies that several SO_REUSEPORT shard sockets
// together cover many distinct peer flows: every client transport binds
// its own source port, so the kernel hash spreads them, and every
// datagram must still reach the one logical handler.
func TestBatchedRxShards(t *testing.T) {
	if !batchingAvailable {
		t.Skip("reuseport sharding requires the linux fast path")
	}
	srv, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	var got atomic.Int32
	srv.SetHandler(func(f *bufpool.Buf) { got.Add(1) })

	const clients = 8
	const perClient = 25
	for c := 0; c < clients; c++ {
		ct, err := NewUDPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ct.AddPeer(9, srv.Addr())
		pkt := &vproto.Packet{Kind: vproto.KindMoveToData, Seq: uint32(c + 1),
			Dst: vproto.MakePid(9, 1), Src: vproto.MakePid(vproto.LogicalHost(c+10), 1),
			Count: 64, Data: make([]byte, 64)}
		wire, err := pkt.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perClient; i++ {
			if err := ct.Send(9, wire); err != nil {
				t.Fatal(err)
			}
		}
		_ = ct.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for got.Load() < clients*perClient/2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() < clients*perClient/2 {
		t.Fatalf("shards saw only %d/%d datagrams", got.Load(), clients*perClient)
	}
	// The server should also have learned each client's address.
	learned := 0
	for c := 0; c < clients; c++ {
		if srv.peers.get(vproto.LogicalHost(c+10)) != nil {
			learned++
		}
	}
	if learned < clients/2 {
		t.Fatalf("learned only %d/%d client addresses", learned, clients)
	}
}

// TestBatchedBroadcast checks best-effort fan-out over the cached peer
// snapshot, continuing past unreachable peers.
func TestBatchedBroadcast(t *testing.T) {
	ta, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	var sinks []*BatchedUDPTransport
	var counts [3]atomic.Int32
	for i := 0; i < 3; i++ {
		s, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, s)
		i := i
		s.SetHandler(func(f *bufpool.Buf) { counts[i].Add(1) })
		ta.AddPeer(LogicalHost(i+2), s.Addr())
	}
	defer func() {
		for _, s := range sinks {
			_ = s.Close()
		}
	}()
	pkt := &vproto.Packet{Kind: vproto.KindMoveToData, Seq: 1, Dst: vproto.MakePid(0, 0),
		Src: vproto.MakePid(1, 1), Count: 32, Data: make([]byte, 32)}
	wire, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ta.Broadcast(wire); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if counts[0].Load() > 0 && counts[1].Load() > 0 && counts[2].Load() > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("broadcast reached %d/%d/%d", counts[0].Load(), counts[1].Load(), counts[2].Load())
}

// TestBatchedHotPeerRebind checks that a hot connected socket is
// demoted when its peer rebinds: traffic must follow the peer to the
// new address instead of wedging on the dead connected socket.
func TestBatchedHotPeerRebind(t *testing.T) {
	if !batchingAvailable {
		t.Skip("hot-peer sockets require the linux fast path")
	}
	ta, err := NewBatchedUDPTransport("127.0.0.1:0", BatchConfig{HotThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	ta.SetHandler(func(f *bufpool.Buf) {})

	sink1, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var got1 atomic.Int32
	sink1.SetHandler(func(f *bufpool.Buf) { got1.Add(1) })
	ta.AddPeer(2, sink1.Addr())

	pkt := &vproto.Packet{Kind: vproto.KindMoveToData, Seq: 1, Dst: vproto.MakePid(2, 1),
		Src: vproto.MakePid(1, 1), Count: 32, Data: make([]byte, 32)}
	wire, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		_ = ta.Send(2, wire)
	}
	if ta.Stats().HotPromotion == 0 {
		t.Fatal("peer was not promoted")
	}

	// The "server" reboots on a fresh port.
	_ = sink1.Close()
	sink2, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sink2.Close() }()
	var got2 atomic.Int32
	sink2.SetHandler(func(f *bufpool.Buf) { got2.Add(1) })
	ta.AddPeer(2, sink2.Addr())

	for i := 0; i < 16; i++ {
		_ = ta.Send(2, wire)
	}
	deadline := time.Now().Add(3 * time.Second)
	for got2.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got2.Load() == 0 {
		t.Fatal("sends never followed the peer to its new address")
	}
}
