package ipc

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"vkernel/internal/bufpool"
	"vkernel/internal/obs"
	"vkernel/internal/vproto"
)

// BatchConfig tunes a BatchedUDPTransport; the zero value gets defaults.
type BatchConfig struct {
	// Metrics is the observability registry for the transport's net.*
	// counters. Nil gets the transport a private registry; pass the
	// node's registry to scrape transport and node as one unit.
	Metrics *obs.Registry
	// Shards is the number of SO_REUSEPORT sockets sharing the listen
	// port; the kernel hashes inbound flows across them so receive
	// processing scales over cores (0 = one per CPU, capped at 4).
	// Only Linux can bind several sockets to one port this way;
	// elsewhere a single socket is used.
	Shards int
	// Batch bounds the recvmmsg/sendmmsg vector length: how many
	// datagrams one kernel crossing can move (0 = 32).
	Batch int
	// QueueDepth bounds receive batches buffered between the rx loops
	// and the handler workers (0 = 512, as for UDPTransport).
	QueueDepth int
	// Workers sizes the packet-dispatch pool (0 = one per CPU, min 2,
	// capped at 16).
	Workers int
	// HotPeers bounds the connected per-peer sockets: a peer promoted
	// to "hot" gets its own connect()ed socket, which skips the kernel
	// route/peer lookup per send and steers that peer's inbound flow to
	// a dedicated socket (0 = 4, negative disables). Linux only.
	HotPeers int
	// HotThreshold is the number of unicast sends to one peer before it
	// is promoted (0 = 64).
	HotThreshold int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.Shards <= 0 {
		c.Shards = dispatchWorkers(4)
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = udpQueueDepth
	}
	if c.Workers <= 0 {
		c.Workers = dispatchWorkers(16)
	}
	switch {
	case c.HotPeers < 0:
		c.HotPeers = 0
	case c.HotPeers == 0:
		c.HotPeers = 4
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 64
	}
	if !batchingAvailable {
		// Degraded mode: one socket, per-datagram I/O, no connected
		// peers — semantically identical, just without the batching.
		c.Shards = 1
		c.HotPeers = 0
	}
	return c
}

// txPendingMax bounds the egress coalescer's backlog per socket. A
// sender finding the backlog full pays the per-datagram syscall inline
// instead of queueing unboundedly — natural backpressure with no drop.
const txPendingMax = 1024

// BatchStats counts the transport's batching activity, so benchmarks
// and tests can verify that coalescing actually happens.
type BatchStats struct {
	Recvs        int64 // datagrams received
	RecvBatches  int64 // recvmmsg kernel crossings that produced them
	Sends        int64 // datagrams sent through the coalescer
	SendBatches  int64 // send kernel crossings (batched + solo)
	InlineSends  int64 // sends that bypassed a saturated coalescer
	HotPromotion int64 // peers promoted to connected sockets
}

// BatchedUDPTransport is UDPTransport with the kernel crossings
// amortized (Linux; elsewhere it degrades to the per-datagram path):
//
//   - Receive: each of Shards SO_REUSEPORT sockets runs an rx loop
//     pulling up to Batch datagrams per recvmmsg call into pooled
//     frames, dispatched to the shared worker pool exactly like
//     UDPTransport's (same ownership rules: one reference rides the
//     queue; the handler must Retain to keep bytes past its return).
//   - Send: concurrent Sends coalesce into sendmmsg vectors. A Send
//     that finds the socket idle transmits immediately — solo traffic
//     pays no added latency — and then drains whatever queued behind it
//     while it held the socket, so bursts (retransmissions, MoveTo
//     chunk trains from many streams, invalidation fan-out) collapse
//     into a few kernel crossings. Queued sends are fire-and-forget:
//     their write errors are dropped, as datagram loss is — the
//     protocol's retransmission machinery recovers.
//   - Hot peers: after HotThreshold sends to one peer, the peer gets a
//     connect()ed socket (SO_REUSEPORT-bound to the same local port),
//     skipping the per-send peer lookup in the kernel and steering that
//     peer's inbound flow to a dedicated socket outside the shard hash.
type BatchedUDPTransport struct {
	cfg     BatchConfig
	addr    *net.UDPAddr
	socks   []*batchSock // socks[0] is the default tx socket; all are rx shards
	handler atomic.Pointer[func(*bufpool.Buf)]
	peers   peerTable
	stats   batchCounters
	rxBurst atomic.Int32 // decaying ingress-burstiness gauge, fed by the rx loops

	mu       sync.Mutex
	closed   bool
	started  bool
	hot      map[LogicalHost]*batchSock
	sendsTo  map[LogicalHost]int
	hotOff   bool // hot-socket dialing failed; stop trying
	queue    chan []*bufpool.Buf
	rxWG     sync.WaitGroup
	workerWG sync.WaitGroup
}

// batchCounters are the transport's batching statistics, named net.*
// in the registry (the node layer's protocol counters are ipc.*; the
// two namespaces never overlap, so NodeStats and BatchStats cannot
// disagree about what a number counts).
type batchCounters struct {
	recvs        *obs.Counter
	recvBatches  *obs.Counter
	sends        *obs.Counter
	sendBatches  *obs.Counter
	inlineSends  *obs.Counter
	hotPromotion *obs.Counter
}

func newBatchCounters(r *obs.Registry) batchCounters {
	return batchCounters{
		recvs:        r.Counter("net.recvs"),
		recvBatches:  r.Counter("net.recv_batches"),
		sends:        r.Counter("net.sends"),
		sendBatches:  r.Counter("net.send_batches"),
		inlineSends:  r.Counter("net.inline_sends"),
		hotPromotion: r.Counter("net.hot_promotions"),
	}
}

// batchSock is one socket of the transport: a shard of the shared port,
// or a connected hot-peer socket. Each has its own egress coalescer; the
// platform-specific mmsg vectors live in mm.
type batchSock struct {
	t    *BatchedUDPTransport
	conn *net.UDPConn
	peer *net.UDPAddr // non-nil: connected to this peer
	mm   mmsgState

	mu       sync.Mutex
	pending  []txMsg
	flushing bool
}

// txMsg is one coalesced outbound datagram. The frame is the
// coalescer's reference, released after the transmit; addr is nil on
// connected sockets.
type txMsg struct {
	frame *bufpool.Buf
	addr  *net.UDPAddr
}

// NewBatchedUDPTransport opens the shard sockets on the given address.
// As with UDPTransport, the rx machinery starts on SetHandler.
func NewBatchedUDPTransport(listen string, cfg BatchConfig) (*BatchedUDPTransport, error) {
	cfg = cfg.withDefaults()
	conns, err := listenBatch(listen, cfg.Shards)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	t := &BatchedUDPTransport{
		cfg:     cfg,
		addr:    conns[0].LocalAddr().(*net.UDPAddr),
		hot:     make(map[LogicalHost]*batchSock),
		sendsTo: make(map[LogicalHost]int),
		queue:   make(chan []*bufpool.Buf, cfg.QueueDepth),
		stats:   newBatchCounters(reg),
	}
	t.peers.init()
	for _, c := range conns {
		t.socks = append(t.socks, newBatchSock(t, c, nil))
	}
	return t, nil
}

func newBatchSock(t *BatchedUDPTransport, conn *net.UDPConn, peer *net.UDPAddr) *batchSock {
	s := &batchSock{t: t, conn: conn, peer: peer}
	s.mm.init(conn, t.cfg.Batch, peer != nil)
	return s
}

// Addr returns the transport's bound UDP address (shared by all shards).
func (t *BatchedUDPTransport) Addr() *net.UDPAddr { return t.addr }

// Stats returns a snapshot of the transport's batching counters.
func (t *BatchedUDPTransport) Stats() BatchStats {
	return BatchStats{
		Recvs:        t.stats.recvs.Load(),
		RecvBatches:  t.stats.recvBatches.Load(),
		Sends:        t.stats.sends.Load(),
		SendBatches:  t.stats.sendBatches.Load(),
		InlineSends:  t.stats.inlineSends.Load(),
		HotPromotion: t.stats.hotPromotion.Load(),
	}
}

// AddPeer registers the network address of a logical host.
func (t *BatchedUDPTransport) AddPeer(host LogicalHost, addr *net.UDPAddr) {
	t.peers.add(host, addr)
}

// Send implements Transport: the packet is coalesced with whatever else
// is in flight toward the same socket, copied into a pooled frame if it
// has to wait for a flusher.
func (t *BatchedUDPTransport) Send(to LogicalHost, pkt []byte) error {
	return t.sendPkt(to, pkt, nil)
}

// SendBuf implements BufSender: like Send, but a deferred transmit
// retains the caller's pooled frame across the egress queue instead of
// copying the bytes — the zero-copy path for reply and bulk-chunk
// frames that already live in the pool.
func (t *BatchedUDPTransport) SendBuf(to LogicalHost, f *bufpool.Buf) error {
	return t.sendPkt(to, f.Data, f)
}

func (t *BatchedUDPTransport) sendPkt(to LogicalHost, pkt []byte, f *bufpool.Buf) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	addr := t.peers.get(to)
	if addr == nil {
		// Unknown host: broadcast, as the kernel does (§3.1).
		return t.Broadcast(pkt)
	}
	s := t.sockFor(to, addr)
	if s.peer != nil {
		addr = nil // connected socket: the kernel already knows the peer
	}
	return s.send(pkt, f, addr)
}

// sockFor picks the socket for a peer, promoting it to a connected
// socket once it has seen HotThreshold sends (and demoting a hot socket
// whose peer rebound to a different address).
func (t *BatchedUDPTransport) sockFor(to LogicalHost, addr *net.UDPAddr) *batchSock {
	t.mu.Lock()
	if s := t.hot[to]; s != nil {
		if sameUDPAddr(s.peer, addr) {
			t.mu.Unlock()
			return s
		}
		// The peer rebound: the connected socket points at a dead
		// address. Drop it; the peer can earn a fresh one.
		delete(t.hot, to)
		t.sendsTo[to] = 0
		t.mu.Unlock()
		_ = s.conn.Close() // its rx loop exits; rxWG accounts for it
		return t.socks[0]
	}
	if t.cfg.HotPeers == 0 || t.hotOff || len(t.hot) >= t.cfg.HotPeers {
		t.mu.Unlock()
		return t.socks[0]
	}
	t.sendsTo[to]++
	if t.sendsTo[to] < t.cfg.HotThreshold {
		t.mu.Unlock()
		return t.socks[0]
	}
	// Reserve the slot before dialing outside the lock; a losing racer
	// just keeps using the shard socket.
	t.hot[to] = nil
	t.mu.Unlock()

	conn, err := dialHot(t.addr, addr)
	t.mu.Lock()
	if err != nil || t.closed {
		delete(t.hot, to)
		if err != nil {
			t.hotOff = true // e.g. unsupported platform: stop retrying
		}
		t.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		}
		return t.socks[0]
	}
	s := newBatchSock(t, conn, addr)
	t.hot[to] = s
	started := t.started
	if started {
		t.rxWG.Add(1)
	}
	t.mu.Unlock()
	t.stats.hotPromotion.Add(1)
	if started {
		go t.rxLoop(s)
	}
	return s
}

// send coalesces one datagram onto the socket. If the socket is idle
// the caller becomes the flusher: it transmits immediately (no batching
// latency when traffic is sparse) and then drains anything that queued
// behind it. Otherwise the datagram is left for the active flusher —
// retaining the caller's pooled frame f when it has one (zero-copy),
// copying the bytes into a fresh frame when it doesn't. A saturated
// backlog falls back to an inline per-datagram write — backpressure,
// not loss.
//
// When the transport's own ingress is arriving in multi-datagram
// batches (rxBurst), traffic is gang-scheduled, not sparse — and on few
// cores the goroutines holding the response datagrams are runnable but
// not yet run, so a flusher that transmitted at once would ship a
// vector of one. The flusher instead yields the processor once; the
// other senders run, find the socket busy, and queue — and the whole
// gang leaves in one sendmmsg. Sparse traffic never sees the yield:
// solo receives decay the gauge to zero.
func (s *batchSock) send(pkt []byte, f *bufpool.Buf, addr *net.UDPAddr) error {
	s.mu.Lock()
	if !s.flushing {
		s.flushing = true
		s.mu.Unlock()
		if s.t.rxBurst.Load() > 1 {
			runtime.Gosched()
			s.mu.Lock()
			if len(s.pending) > 0 {
				// A gang did queue behind the yield: join it (the whole
				// batch becomes fire-and-forget, like any queued send).
				s.pending = append(s.pending, queuedTx(pkt, f, addr))
				s.mu.Unlock()
				s.drain()
				return nil
			}
			s.mu.Unlock()
		}
		s.t.stats.sends.Add(1)
		s.t.stats.sendBatches.Add(1)
		err := s.writeOne(pkt, addr) // direct: borrows pkt, no copy
		s.drain()
		return err
	}
	if len(s.pending) >= txPendingMax {
		s.mu.Unlock()
		s.t.stats.inlineSends.Add(1)
		return s.writeOne(pkt, addr)
	}
	s.pending = append(s.pending, queuedTx(pkt, f, addr))
	s.mu.Unlock()
	return nil
}

// queuedTx builds the backlog entry for a deferred transmit: callers
// that hand over a pooled frame lend a reference (released by drain);
// bare byte slices are only valid until send returns, so they are
// copied into a frame the backlog owns.
func queuedTx(pkt []byte, f *bufpool.Buf, addr *net.UDPAddr) txMsg {
	if f != nil {
		return txMsg{frame: f.Retain(), addr: addr}
	}
	c := bufpool.Get(len(pkt))
	copy(c.Data, pkt)
	return txMsg{frame: c, addr: addr}
}

// drain flushes the backlog that accumulated while the caller held the
// socket, batch by batch, and clears the flushing flag only once the
// backlog is observed empty under the lock — so no txMsg is ever left
// behind without a flusher responsible for it.
func (s *batchSock) drain() {
	for {
		s.mu.Lock()
		batch := s.pending
		s.pending = nil
		if len(batch) == 0 {
			s.flushing = false
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		max := s.t.cfg.Batch
		for len(batch) > 0 {
			n := min(len(batch), max)
			s.t.stats.sends.Add(int64(n))
			s.t.stats.sendBatches.Add(1)
			s.writeBatch(batch[:n]) // best effort; errors are datagram loss
			for i := 0; i < n; i++ {
				batch[i].frame.Release()
				batch[i] = txMsg{}
			}
			batch = batch[n:]
		}
	}
}

// Broadcast implements Transport: best effort to every known peer,
// continuing past per-peer errors (first one reported), over the cached
// peer snapshot. Broadcasts are rare (name lookups), so they bypass the
// coalescer — concurrent datagram writes on one socket are safe.
func (t *BatchedUDPTransport) Broadcast(pkt []byte) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var first error
	for _, a := range t.peers.snapshot() {
		if err := t.socks[0].writeOne(pkt, a); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeOne transmits a single datagram, bypassing the batch vectors.
func (s *batchSock) writeOne(pkt []byte, addr *net.UDPAddr) error {
	if addr == nil {
		_, err := s.conn.Write(pkt)
		return err
	}
	_, err := s.conn.WriteToUDP(pkt, addr)
	return err
}

// readOne is the per-datagram receive shared by the non-Linux build and
// the fallback when the raw descriptor is unavailable: fill scratch[0],
// record its length, learn the sender, report one datagram.
func (s *batchSock) readOne(scratch [][]byte, lens []int, peers *peerTable) (int, error) {
	n, from, err := s.conn.ReadFromUDP(scratch[0])
	if err != nil {
		return 0, err
	}
	lens[0] = n
	peers.learn(scratch[0][:n], from)
	return 1, nil
}

// rxLoop drives one socket: each iteration pulls up to Batch datagrams
// in one kernel crossing into loop-owned scratch slabs, wraps each in a
// right-sized pooled frame, and hands the frames' single references to
// the dispatch queue as one batch (one channel operation per kernel
// crossing, not per datagram). The recvmmsg vector is backed by the
// scratch slabs, not pooled frames: recvmmsg needs its buffers posted
// before the blocking read, and a pooled vector posted that way would
// stay checked out of the pool for as long as the socket sits idle —
// Batch frames pinned per socket, reading as a leak to anything
// auditing bufpool.Outstanding. Pool frames are taken only for
// datagrams that actually arrived.
func (t *BatchedUDPTransport) rxLoop(s *batchSock) {
	defer t.rxWG.Done()
	scratch := make([][]byte, t.cfg.Batch)
	for i := range scratch {
		scratch[i] = make([]byte, vproto.MaxWireSize)
	}
	lens := make([]int, t.cfg.Batch)
	for {
		n, err := s.readBatch(scratch, lens, &t.peers)
		if err != nil {
			return // closed
		}
		t.stats.recvs.Add(int64(n))
		t.stats.recvBatches.Add(1)
		// Feed the burstiness gauge: a multi-datagram batch arms the
		// egress gang-coalescing, solo batches decay it back off.
		if n > 1 {
			t.rxBurst.Store(int32(n))
		} else if v := t.rxBurst.Load(); v > 0 {
			t.rxBurst.Store(v - 1)
		}
		batch := make([]*bufpool.Buf, n)
		for i := 0; i < n; i++ {
			f := bufpool.Get(lens[i])
			copy(f.Data, scratch[i][:lens[i]])
			batch[i] = f
		}
		t.queue <- batch
	}
}

// worker drains the queue batch by batch: upcall and release each
// frame, as UDPTransport's workers do — but around a multi-datagram
// batch the tx sockets are corked, so the replies the handlers generate
// coalesce into sendmmsg vectors instead of paying one kernel crossing
// each. Request traffic arriving in batches is exactly the traffic
// whose responses leave in batches.
func (t *BatchedUDPTransport) worker() {
	defer t.workerWG.Done()
	var corked []*batchSock
	for batch := range t.queue {
		if len(batch) > 1 {
			corked = t.cork(corked[:0])
		}
		for _, f := range batch {
			if h := t.handler.Load(); h != nil {
				(*h)(f)
			}
			f.Release()
		}
		for _, s := range corked {
			s.drain()
		}
		corked = corked[:0]
	}
}

// cork claims flusher duty on every socket that has no active flusher,
// appending the claimed sockets to dst. Sends issued while a socket is
// corked queue onto its backlog; the caller must drain each claimed
// socket afterwards. Sockets already mid-flush are skipped — their
// active flusher's drain loop will pick up anything queued behind it.
func (t *BatchedUDPTransport) cork(dst []*batchSock) []*batchSock {
	t.mu.Lock()
	all := append(dst, t.socks...)
	for _, s := range t.hot {
		if s != nil {
			all = append(all, s)
		}
	}
	t.mu.Unlock()
	n := 0
	for _, s := range all {
		s.mu.Lock()
		if !s.flushing {
			s.flushing = true
			all[n] = s
			n++
		}
		s.mu.Unlock()
	}
	return all[:n]
}

// SetHandler implements Transport; the first call starts the rx loops
// and worker pool.
func (t *BatchedUDPTransport) SetHandler(h func(*bufpool.Buf)) {
	if h == nil {
		t.handler.Store(nil)
	} else {
		t.handler.Store(&h)
	}
	t.mu.Lock()
	start := !t.started && !t.closed
	var socks []*batchSock
	if start {
		t.started = true
		socks = append(socks, t.socks...)
		for _, s := range t.hot {
			if s != nil {
				socks = append(socks, s)
			}
		}
		t.rxWG.Add(len(socks))
		t.workerWG.Add(t.cfg.Workers)
	}
	t.mu.Unlock()
	if start {
		for _, s := range socks {
			go t.rxLoop(s)
		}
		for i := 0; i < t.cfg.Workers; i++ {
			go t.worker()
		}
	}
}

// Close implements Transport: close every socket (shards and hot
// peers), wait for the rx loops, then drain and stop the workers.
func (t *BatchedUDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	started := t.started
	conns := make([]*net.UDPConn, 0, len(t.socks)+len(t.hot))
	for _, s := range t.socks {
		conns = append(conns, s.conn)
	}
	for _, s := range t.hot {
		if s != nil {
			conns = append(conns, s.conn)
		}
	}
	t.mu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.rxWG.Wait()
	if started {
		close(t.queue)
	}
	t.workerWG.Wait()
	return first
}
