package ipc

import (
	"sync"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

// Bulk data transfer (§3.3): back-to-back maximally-sized data packets, a
// single completion acknowledgement, and retransmission that resumes from
// the last correctly received byte.
//
// Concurrency: outgoing operations live in the node's moveTable (lifecycle
// under its lock, buffer writes under the per-op lock); inbound MoveTo
// streams reassemble under a per-stream lock so transfers from different
// peers land in their granted segments in parallel.

type moveKind int

const (
	moveTo moveKind = iota
	moveFrom
)

type moveOp struct {
	kind moveKind
	seq  uint32
	proc *Proc
	peer Pid
	// vec is the transfer's slice list: for moveTo the gather list of
	// source slices streamed in order, for moveFrom the scatter list of
	// destination slices filled in order.
	vec   [][]byte
	size  uint32 // total transfer size in bytes
	base  uint32 // offset within the peer's granted segment
	ackCh chan moveResult
	timer *time.Timer

	// Guarded by the moveTable lock.
	retries int
	done    bool

	// io orders data-buffer access against result delivery, exactly as
	// pendingSend.io does for Send exchanges: handlers pin the buffer
	// with io.RLock while holding the table lock (after checking the op
	// is live), and completers barrier() after removing the op, so no
	// handler can touch the slices once the owner has resumed.
	io sync.RWMutex

	// mu guards got and, for moveFrom, writes into vec.
	mu  sync.Mutex
	got uint32 // moveFrom: contiguously received bytes
}

// barrier orders in-flight buffer access before result delivery; see
// pendingSend.barrier.
func (op *moveOp) barrier() {
	op.io.Lock()
	op.io.Unlock()
}

type moveResult struct {
	err error
}

// moveRxState reassembles one inbound MoveTo stream; mu serializes the
// contiguity check and the copy into the granted segment per stream.
type moveRxState struct {
	mu       sync.Mutex
	expected uint32
}

// MoveTo copies data into the granted segment of dst at destOff. dst must
// be awaiting a reply from this process and must have granted write access
// (§2.1). The data is borrowed for the duration of the call only: MoveTo
// blocks until the transfer completes (or fails), after which the kernel
// holds no reference to it — so callers may lend slices of long-lived
// structures (pooled cache blocks) as long as they keep them alive across
// the call.
func (p *Proc) MoveTo(dst Pid, destOff uint32, data []byte) error {
	return p.MoveToVec(dst, destOff, data)
}

// MoveToVec is MoveTo over a gather list: the concatenation of srcs is
// moved into the granted segment of dst at destOff. Data packets are
// assembled straight from the source slices into pooled wire frames, so
// a bulk read served from several cached blocks needs no intermediate
// staging copy. Borrowing rules are those of MoveTo.
func (p *Proc) MoveToVec(dst Pid, destOff uint32, srcs ...[]byte) error {
	total := 0
	for _, s := range srcs {
		total += len(s)
	}
	p.mu.Lock()
	env, ok := p.received[dst]
	p.mu.Unlock()
	if !ok {
		return ErrNotAwaitingReply
	}
	if env.local != nil {
		seg := env.local.seg
		if seg == nil || seg.Access&SegWrite == 0 {
			return ErrNoAccess
		}
		if int(destOff)+total > len(seg.Data) {
			return ErrBadAddress
		}
		at := destOff
		for _, s := range srcs {
			copy(seg.Data[at:], s)
			at += uint32(len(s))
		}
		return nil
	}
	// Remote: validate against the alien's message grant, then stream.
	if _, size, access, ok := env.alien.msg.Segment(); !ok || access&SegWrite == 0 {
		return ErrNoAccess
	} else if uint64(destOff)+uint64(total) > uint64(size) {
		return ErrBadAddress
	}
	op := &moveOp{
		kind:  moveTo,
		proc:  p,
		peer:  dst,
		vec:   srcs,
		size:  uint32(total),
		base:  destOff,
		ackCh: make(chan moveResult, 1),
	}
	return p.node.runMove(op)
}

// MoveFrom copies len(buf) bytes from the granted segment of src at
// srcOff into buf. src must be awaiting a reply from this process and must
// have granted read access (§2.1).
func (p *Proc) MoveFrom(src Pid, srcOff uint32, buf []byte) error {
	return p.MoveFromVec(src, srcOff, buf)
}

// MoveFromVec is MoveFrom over a scatter list: the pulled bytes land in
// the destination slices in order, directly off the wire — a bulk write
// landing in several block-aligned cache buffers needs no intermediate
// staging copy. The slices are borrowed for the duration of the call
// only (MoveFromVec blocks until the transfer completes or fails), and
// the §3.3 resume semantics are unchanged: after packet loss the puller
// re-requests from the last contiguously received byte, so every slice
// is filled exactly once, in order.
func (p *Proc) MoveFromVec(src Pid, srcOff uint32, dsts ...[]byte) error {
	total := 0
	for _, d := range dsts {
		total += len(d)
	}
	p.mu.Lock()
	env, ok := p.received[src]
	p.mu.Unlock()
	if !ok {
		return ErrNotAwaitingReply
	}
	if env.local != nil {
		seg := env.local.seg
		if seg == nil || seg.Access&SegRead == 0 {
			return ErrNoAccess
		}
		if int(srcOff)+total > len(seg.Data) {
			return ErrBadAddress
		}
		at := srcOff
		for _, d := range dsts {
			copy(d, seg.Data[at:int(at)+len(d)])
			at += uint32(len(d))
		}
		return nil
	}
	if _, size, access, ok := env.alien.msg.Segment(); !ok || access&SegRead == 0 {
		return ErrNoAccess
	} else if uint64(srcOff)+uint64(total) > uint64(size) {
		return ErrBadAddress
	}
	op := &moveOp{
		kind:  moveFrom,
		proc:  p,
		peer:  src,
		vec:   dsts,
		size:  uint32(total),
		base:  srcOff,
		ackCh: make(chan moveResult, 1),
	}
	return p.node.runMove(op)
}

// runMove drives one remote bulk transfer to completion.
func (n *Node) runMove(op *moveOp) error {
	if op.size == 0 {
		return nil
	}
	op.seq = n.nextSeq()
	err := n.moves.add(op, func() *time.Timer {
		return time.AfterFunc(n.rtoFor(op.peer.Host()), func() { n.moveTimeout(op) })
	})
	if err != nil {
		return err
	}
	n.stats.moveOps.Add(1)
	n.stats.moveBytes.Add(int64(op.size))

	if op.kind == moveTo {
		n.streamMoveTo(op, 0)
	} else {
		n.sendMoveFromReq(op, 0)
	}
	res := <-op.ackCh
	return res.err
}

// gatherCopy fills dst from the concatenation of vec starting at byte
// offset off (off + len(dst) must lie within the gather list).
func gatherCopy(dst []byte, vec [][]byte, off uint32) {
	skip := int(off)
	for _, s := range vec {
		if skip >= len(s) {
			skip -= len(s)
			continue
		}
		n := copy(dst, s[skip:])
		dst = dst[n:]
		skip = 0
		if len(dst) == 0 {
			return
		}
	}
}

// scatterCopy is gatherCopy's inverse: it spreads src across the scatter
// list starting at byte offset off within the list's concatenation.
func scatterCopy(vec [][]byte, off uint32, src []byte) {
	skip := int(off)
	for _, d := range vec {
		if skip >= len(d) {
			skip -= len(d)
			continue
		}
		n := copy(d[skip:], src)
		src = src[n:]
		skip = 0
		if len(src) == 0 {
			return
		}
	}
}

// streamMoveTo transmits data packets from offset from. Each packet is
// assembled once: source bytes are gathered straight into a pooled wire
// frame around which the header is then written (EncodePrefilled), so the
// only copy between the caller's memory and the transport is the wire
// serialization itself.
func (n *Node) streamMoveTo(op *moveOp, from uint32) {
	chunk := uint32(n.cfg.ChunkSize)
	count := op.size
	for off := from; off < count; off += chunk {
		m := count - off
		if m > chunk {
			m = chunk
		}
		f := bufpool.Get(vproto.HeaderSize + vproto.MessageSize + int(m))
		gatherCopy(f.Data[vproto.HeaderSize+vproto.MessageSize:], op.vec, off)
		pkt := &vproto.Packet{
			Kind:   vproto.KindMoveToData,
			Seq:    op.seq,
			Src:    op.proc.pid,
			Dst:    op.peer,
			Offset: off,
			Count:  count,
		}
		pkt.Msg.SetWord(wordMoveBase, op.base)
		if off+m == count {
			pkt.Flags |= vproto.FlagLast
		}
		if _, err := pkt.EncodePrefilled(f.Data, int(m)); err != nil {
			f.Release()
			panic("ipc: " + err.Error())
		}
		n.xmit(op.peer.Host(), f)
		f.Release()
	}
}

// sendMoveFromReq requests the remainder of a pull transfer, starting at
// the got bytes already received contiguously.
func (n *Node) sendMoveFromReq(op *moveOp, got uint32) {
	pkt := &vproto.Packet{
		Kind:   vproto.KindMoveFromReq,
		Seq:    op.seq,
		Src:    op.proc.pid,
		Dst:    op.peer,
		Offset: got,
		Count:  op.size,
	}
	pkt.Msg.SetWord(wordMoveBase, op.base)
	n.send(pkt, op.peer.Host())
}

func (n *Node) moveTimeout(op *moveOp) {
	t := &n.moves
	t.mu.Lock()
	if t.closed || t.m[op.seq] != op || op.done {
		t.mu.Unlock()
		return
	}
	op.retries++
	if op.retries > n.cfg.Retries {
		op.done = true
		delete(t.m, op.seq)
		t.mu.Unlock()
		op.barrier()
		op.ackCh <- moveResult{err: ErrTimeout}
		return
	}
	op.io.RLock()
	t.mu.Unlock()
	n.stats.retransmits.Add(1)
	if op.kind == moveTo {
		// Resend only the final packet to re-elicit a progress ack.
		chunk := uint32(n.cfg.ChunkSize)
		last := (op.size - 1) / chunk * chunk
		n.streamMoveTo(op, last)
	} else {
		op.mu.Lock()
		got := op.got
		op.mu.Unlock()
		n.sendMoveFromReq(op, got)
	}
	op.io.RUnlock()
	n.bumpRTO(op.peer.Host())
	op.timer.Reset(n.rtoFor(op.peer.Host()))
}

// moveToTargetLocked locates the pending Send whose process granted the
// segment an inbound transfer writes to (or reads from). Caller holds the
// pendingTable lock.
func (n *Node) moveToTargetLocked(dst, src Pid) *pendingSend {
	for _, ps := range n.pending.m {
		if !ps.done && ps.proc.pid == dst && ps.dst == src {
			return ps
		}
	}
	return nil
}

// handleMoveToData runs on the node of the process receiving a MoveTo:
// data lands directly in the granted segment.
func (n *Node) handleMoveToData(pkt *vproto.Packet) {
	pt := &n.pending
	pt.mu.Lock()
	ps := n.moveToTargetLocked(pkt.Dst, pkt.Src)
	if ps == nil || ps.seg == nil || ps.seg.Access&SegWrite == 0 {
		pt.mu.Unlock()
		n.stats.badPackets.Add(1)
		return
	}
	base := pkt.Msg.Word(wordMoveBase)
	if uint64(base)+uint64(pkt.Count) > uint64(len(ps.seg.Data)) ||
		uint64(pkt.Offset)+uint64(len(pkt.Data)) > uint64(pkt.Count) {
		pt.mu.Unlock()
		n.stats.badPackets.Add(1)
		return
	}
	// Pin the segment for writing before the exchange can complete (see
	// pendingSend.barrier).
	ps.io.RLock()
	pt.mu.Unlock()
	defer ps.io.RUnlock()

	mt := &n.moves
	key := moveKey{src: pkt.Src, seq: pkt.Seq}
	mt.rxMu.Lock()
	st := mt.rx[key]
	if st == nil {
		if d, ok := mt.done[pkt.Src]; ok && d.seq == pkt.Seq {
			mt.rxMu.Unlock()
			if pkt.Flags&vproto.FlagLast != 0 {
				n.sendMoveAck(pkt, d.count, true)
			}
			return
		}
		st = &moveRxState{}
		mt.rx[key] = st
	}
	mt.rxMu.Unlock()

	st.mu.Lock()
	if pkt.Offset == st.expected {
		copy(ps.seg.Data[base+pkt.Offset:], pkt.Data)
		st.expected += uint32(len(pkt.Data))
	}
	last := pkt.Flags&vproto.FlagLast != 0
	complete := st.expected >= pkt.Count
	received := st.expected
	st.mu.Unlock()

	if last && complete {
		mt.rxMu.Lock()
		mt.done[pkt.Src] = doneTransfer{seq: pkt.Seq, count: pkt.Count}
		delete(mt.rx, key)
		mt.rxMu.Unlock()
	}
	if last {
		n.sendMoveAck(pkt, received, complete)
	}
}

func (n *Node) sendMoveAck(pkt *vproto.Packet, received uint32, complete bool) {
	ack := &vproto.Packet{
		Kind:   vproto.KindMoveToAck,
		Seq:    pkt.Seq,
		Src:    pkt.Dst,
		Dst:    pkt.Src,
		Offset: received,
	}
	if complete {
		ack.Flags |= vproto.FlagLast
	}
	n.send(ack, pkt.Src.Host())
}

// handleMoveAck completes or resumes an outstanding MoveTo.
func (n *Node) handleMoveAck(pkt *vproto.Packet) {
	t := &n.moves
	t.mu.Lock()
	op, ok := t.m[pkt.Seq]
	if !ok || op.kind != moveTo || op.done {
		t.mu.Unlock()
		return
	}
	if pkt.Flags&vproto.FlagLast != 0 && pkt.Offset >= op.size {
		op.done = true
		delete(t.m, op.seq)
		t.mu.Unlock()
		op.timer.Stop()
		op.barrier()
		op.ackCh <- moveResult{}
		return
	}
	op.retries = 0
	resume := pkt.Offset
	op.io.RLock()
	t.mu.Unlock()
	n.streamMoveTo(op, resume)
	op.io.RUnlock()
	op.timer.Reset(n.rtoFor(op.peer.Host()))
}

// handleMoveFromReq streams the requested range back; the data packets
// acknowledge the request (§3.3).
func (n *Node) handleMoveFromReq(pkt *vproto.Packet) {
	pt := &n.pending
	pt.mu.Lock()
	ps := n.moveToTargetLocked(pkt.Dst, pkt.Src)
	if ps == nil || ps.seg == nil || ps.seg.Access&SegRead == 0 {
		pt.mu.Unlock()
		n.stats.badPackets.Add(1)
		return
	}
	base := pkt.Msg.Word(wordMoveBase)
	if uint64(base)+uint64(pkt.Count) > uint64(len(ps.seg.Data)) {
		pt.mu.Unlock()
		n.stats.badPackets.Add(1)
		return
	}
	// Pin the segment for reading until streaming completes (see
	// pendingSend.barrier).
	ps.io.RLock()
	pt.mu.Unlock()
	defer ps.io.RUnlock()
	src := ps.seg.Data[base : base+pkt.Count]

	chunk := uint32(n.cfg.ChunkSize)
	for off := pkt.Offset; off < pkt.Count; off += chunk {
		m := pkt.Count - off
		if m > chunk {
			m = chunk
		}
		out := &vproto.Packet{
			Kind:   vproto.KindMoveFromData,
			Seq:    pkt.Seq,
			Src:    pkt.Dst,
			Dst:    pkt.Src,
			Offset: off,
			Count:  pkt.Count,
			Data:   src[off : off+m],
		}
		if off+m == pkt.Count {
			out.Flags |= vproto.FlagLast
		}
		n.send(out, pkt.Src.Host())
	}
}

// handleMoveFromData accumulates streamed bytes into the requester's
// scatter list. The copy runs under the per-op lock, so chunks of
// different transfers land concurrently; completion is single-shot under
// the table lock.
func (n *Node) handleMoveFromData(pkt *vproto.Packet) {
	t := &n.moves
	t.mu.Lock()
	op, ok := t.m[pkt.Seq]
	if !ok || op.kind != moveFrom || op.done {
		t.mu.Unlock()
		return
	}
	// Pin the destination slices before the op can complete (see
	// moveOp.barrier).
	op.io.RLock()
	t.mu.Unlock()

	op.mu.Lock()
	if pkt.Offset == op.got && uint64(pkt.Offset)+uint64(len(pkt.Data)) <= uint64(op.size) {
		scatterCopy(op.vec, pkt.Offset, pkt.Data)
		op.got += uint32(len(pkt.Data))
	}
	got := op.got
	op.mu.Unlock()
	op.io.RUnlock()

	if got >= op.size {
		if n.moves.complete(op) {
			op.timer.Stop()
			op.barrier()
			op.ackCh <- moveResult{}
		}
		return
	}
	if pkt.Flags&vproto.FlagLast != 0 {
		t.mu.Lock()
		if t.m[pkt.Seq] != op || op.done {
			t.mu.Unlock()
			return
		}
		op.retries = 0
		t.mu.Unlock()
		// Gap at end of stream: re-request from the last received byte.
		n.sendMoveFromReq(op, got)
		op.timer.Reset(n.rtoFor(op.peer.Host()))
	}
}
