package ipc

import (
	"time"

	"vkernel/internal/vproto"
)

// Bulk data transfer (§3.3): back-to-back maximally-sized data packets, a
// single completion acknowledgement, and retransmission that resumes from
// the last correctly received byte.

type moveKind int

const (
	moveTo moveKind = iota
	moveFrom
)

type moveOp struct {
	kind    moveKind
	seq     uint32
	proc    *Proc
	peer    Pid
	data    []byte // moveTo: source; moveFrom: destination buffer
	base    uint32 // offset within the peer's granted segment
	got     uint32 // moveFrom: contiguously received bytes
	ackCh   chan moveResult
	timer   *time.Timer
	retries int
	done    bool
}

type moveResult struct {
	err error
}

type moveRxState struct {
	expected uint32
}

func newRetransmitTimer(n *Node, ps *pendingSend) *time.Timer {
	return time.AfterFunc(n.cfg.RetransmitTimeout, func() { n.retransmit(ps) })
}

// MoveTo copies data into the granted segment of dst at destOff. dst must
// be awaiting a reply from this process and must have granted write access
// (§2.1).
func (p *Proc) MoveTo(dst Pid, destOff uint32, data []byte) error {
	p.mu.Lock()
	env, ok := p.received[dst]
	p.mu.Unlock()
	if !ok {
		return ErrNotAwaitingReply
	}
	if env.local != nil {
		seg := env.local.seg
		if seg == nil || seg.Access&SegWrite == 0 {
			return ErrNoAccess
		}
		if int(destOff)+len(data) > len(seg.Data) {
			return ErrBadAddress
		}
		copy(seg.Data[destOff:], data)
		return nil
	}
	// Remote: validate against the alien's message grant, then stream.
	if _, size, access, ok := env.alien.msg.Segment(); !ok || access&SegWrite == 0 {
		return ErrNoAccess
	} else if uint64(destOff)+uint64(len(data)) > uint64(size) {
		return ErrBadAddress
	}
	return p.node.runMove(p, moveTo, dst, destOff, data)
}

// MoveFrom copies len(buf) bytes from the granted segment of src at
// srcOff into buf. src must be awaiting a reply from this process and must
// have granted read access (§2.1).
func (p *Proc) MoveFrom(src Pid, srcOff uint32, buf []byte) error {
	p.mu.Lock()
	env, ok := p.received[src]
	p.mu.Unlock()
	if !ok {
		return ErrNotAwaitingReply
	}
	if env.local != nil {
		seg := env.local.seg
		if seg == nil || seg.Access&SegRead == 0 {
			return ErrNoAccess
		}
		if int(srcOff)+len(buf) > len(seg.Data) {
			return ErrBadAddress
		}
		copy(buf, seg.Data[srcOff:int(srcOff)+len(buf)])
		return nil
	}
	if _, size, access, ok := env.alien.msg.Segment(); !ok || access&SegRead == 0 {
		return ErrNoAccess
	} else if uint64(srcOff)+uint64(len(buf)) > uint64(size) {
		return ErrBadAddress
	}
	return p.node.runMove(p, moveFrom, src, srcOff, buf)
}

// runMove drives one remote bulk transfer to completion.
func (n *Node) runMove(p *Proc, kind moveKind, peer Pid, base uint32, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.stats.MoveOps++
	n.stats.MoveBytes += int64(len(data))
	op := &moveOp{
		kind:  kind,
		seq:   n.nextSeqLocked(),
		proc:  p,
		peer:  peer,
		data:  data,
		base:  base,
		ackCh: make(chan moveResult, 1),
	}
	n.moves[op.seq] = op
	op.timer = time.AfterFunc(n.cfg.RetransmitTimeout, func() { n.moveTimeout(op) })
	n.mu.Unlock()

	if kind == moveTo {
		n.streamMoveTo(op, 0)
	} else {
		n.sendMoveFromReq(op)
	}
	res := <-op.ackCh
	return res.err
}

// streamMoveTo transmits data packets from offset from.
func (n *Node) streamMoveTo(op *moveOp, from uint32) {
	chunk := uint32(n.cfg.ChunkSize)
	count := uint32(len(op.data))
	for off := from; off < count; off += chunk {
		m := count - off
		if m > chunk {
			m = chunk
		}
		pkt := &vproto.Packet{
			Kind:   vproto.KindMoveToData,
			Seq:    op.seq,
			Src:    op.proc.pid,
			Dst:    op.peer,
			Offset: off,
			Count:  count,
			Data:   op.data[off : off+m],
		}
		pkt.Msg.SetWord(1, op.base)
		if off+m == count {
			pkt.Flags |= vproto.FlagLast
		}
		n.send(pkt, op.peer.Host())
	}
}

func (n *Node) sendMoveFromReq(op *moveOp) {
	pkt := &vproto.Packet{
		Kind:   vproto.KindMoveFromReq,
		Seq:    op.seq,
		Src:    op.proc.pid,
		Dst:    op.peer,
		Offset: op.got,
		Count:  uint32(len(op.data)),
	}
	pkt.Msg.SetWord(1, op.base)
	n.send(pkt, op.peer.Host())
}

func (n *Node) moveTimeout(op *moveOp) {
	n.mu.Lock()
	if n.closed || n.moves[op.seq] != op || op.done {
		n.mu.Unlock()
		return
	}
	op.retries++
	if op.retries > n.cfg.Retries {
		op.done = true
		delete(n.moves, op.seq)
		n.mu.Unlock()
		op.ackCh <- moveResult{err: ErrTimeout}
		return
	}
	n.stats.Retransmits++
	kind := op.kind
	n.mu.Unlock()
	if kind == moveTo {
		// Resend only the final packet to re-elicit a progress ack.
		chunk := uint32(n.cfg.ChunkSize)
		count := uint32(len(op.data))
		last := (count - 1) / chunk * chunk
		n.streamMoveTo(op, last)
	} else {
		n.sendMoveFromReq(op)
	}
	op.timer.Reset(n.cfg.RetransmitTimeout)
}

// moveToTarget locates the pending Send whose process granted the segment
// an inbound transfer writes to (or reads from). Caller holds n.mu.
func (n *Node) moveToTargetLocked(dst, src Pid) *pendingSend {
	for _, ps := range n.pending {
		if !ps.done && ps.proc.pid == dst && ps.dst == src {
			return ps
		}
	}
	return nil
}

// handleMoveToData runs on the node of the process receiving a MoveTo:
// data lands directly in the granted segment.
func (n *Node) handleMoveToData(pkt *vproto.Packet) {
	n.mu.Lock()
	ps := n.moveToTargetLocked(pkt.Dst, pkt.Src)
	if ps == nil || ps.seg == nil || ps.seg.Access&SegWrite == 0 {
		n.stats.BadPackets++
		n.mu.Unlock()
		return
	}
	base := pkt.Msg.Word(1)
	if uint64(base)+uint64(pkt.Count) > uint64(len(ps.seg.Data)) {
		n.stats.BadPackets++
		n.mu.Unlock()
		return
	}
	key := moveKey{src: pkt.Src, seq: pkt.Seq}
	st := n.moveRx[key]
	if st == nil {
		if d, ok := n.moveDone[pkt.Src]; ok && d.seq == pkt.Seq {
			n.mu.Unlock()
			if pkt.Flags&vproto.FlagLast != 0 {
				n.sendMoveAck(pkt, d.count, true)
			}
			return
		}
		st = &moveRxState{}
		n.moveRx[key] = st
	}
	if pkt.Offset == st.expected {
		copy(ps.seg.Data[base+pkt.Offset:], pkt.Data)
		st.expected += uint32(len(pkt.Data))
	}
	last := pkt.Flags&vproto.FlagLast != 0
	complete := st.expected >= pkt.Count
	received := st.expected
	if last && complete {
		n.moveDone[pkt.Src] = doneTransfer{seq: pkt.Seq, count: pkt.Count}
		delete(n.moveRx, key)
	}
	n.mu.Unlock()
	if last {
		n.sendMoveAck(pkt, received, complete)
	}
}

func (n *Node) sendMoveAck(pkt *vproto.Packet, received uint32, complete bool) {
	ack := &vproto.Packet{
		Kind:   vproto.KindMoveToAck,
		Seq:    pkt.Seq,
		Src:    pkt.Dst,
		Dst:    pkt.Src,
		Offset: received,
	}
	if complete {
		ack.Flags |= vproto.FlagLast
	}
	n.send(ack, pkt.Src.Host())
}

// handleMoveAck completes or resumes an outstanding MoveTo.
func (n *Node) handleMoveAck(pkt *vproto.Packet) {
	n.mu.Lock()
	op, ok := n.moves[pkt.Seq]
	if !ok || op.kind != moveTo || op.done {
		n.mu.Unlock()
		return
	}
	if pkt.Flags&vproto.FlagLast != 0 && pkt.Offset >= uint32(len(op.data)) {
		op.done = true
		delete(n.moves, op.seq)
		n.mu.Unlock()
		op.timer.Stop()
		op.ackCh <- moveResult{}
		return
	}
	op.retries = 0
	resume := pkt.Offset
	n.mu.Unlock()
	n.streamMoveTo(op, resume)
	op.timer.Reset(n.cfg.RetransmitTimeout)
}

// handleMoveFromReq streams the requested range back; the data packets
// acknowledge the request (§3.3).
func (n *Node) handleMoveFromReq(pkt *vproto.Packet) {
	n.mu.Lock()
	ps := n.moveToTargetLocked(pkt.Dst, pkt.Src)
	if ps == nil || ps.seg == nil || ps.seg.Access&SegRead == 0 {
		n.stats.BadPackets++
		n.mu.Unlock()
		return
	}
	base := pkt.Msg.Word(1)
	if uint64(base)+uint64(pkt.Count) > uint64(len(ps.seg.Data)) {
		n.stats.BadPackets++
		n.mu.Unlock()
		return
	}
	src := ps.seg.Data[base : base+pkt.Count]
	n.mu.Unlock()

	chunk := uint32(n.cfg.ChunkSize)
	for off := pkt.Offset; off < pkt.Count; off += chunk {
		m := pkt.Count - off
		if m > chunk {
			m = chunk
		}
		out := &vproto.Packet{
			Kind:   vproto.KindMoveFromData,
			Seq:    pkt.Seq,
			Src:    pkt.Dst,
			Dst:    pkt.Src,
			Offset: off,
			Count:  pkt.Count,
			Data:   src[off : off+m],
		}
		if off+m == pkt.Count {
			out.Flags |= vproto.FlagLast
		}
		n.send(out, pkt.Src.Host())
	}
}

// handleMoveFromData accumulates streamed bytes into the requester's buffer.
func (n *Node) handleMoveFromData(pkt *vproto.Packet) {
	n.mu.Lock()
	op, ok := n.moves[pkt.Seq]
	if !ok || op.kind != moveFrom || op.done {
		n.mu.Unlock()
		return
	}
	if pkt.Offset == op.got {
		copy(op.data[pkt.Offset:], pkt.Data)
		op.got += uint32(len(pkt.Data))
	}
	if op.got >= uint32(len(op.data)) {
		op.done = true
		delete(n.moves, op.seq)
		n.mu.Unlock()
		op.timer.Stop()
		op.ackCh <- moveResult{}
		return
	}
	last := pkt.Flags&vproto.FlagLast != 0
	if last {
		op.retries = 0
	}
	n.mu.Unlock()
	if last {
		// Gap at end of stream: re-request from the last received byte.
		n.sendMoveFromReq(op)
		op.timer.Reset(n.cfg.RetransmitTimeout)
	}
}
