package ipc

import (
	"encoding/binary"
	"net"
	"sync"

	"vkernel/internal/vproto"
)

// peerTable maps logical hosts to their UDP network addresses — the
// runtime form of the paper's §3.1 logical-host-to-network-address
// cache. Both UDP transports share it: entries are seeded explicitly
// with AddPeer and refined by learning from received packets.
//
// Broadcast iterates every address on every call, so the table keeps a
// cached address snapshot, invalidated only when the address set
// actually changes (a new host, or a host rebinding to a new address).
// learn runs once per received datagram; the common case — the sender
// is already known at that address — must not churn the snapshot or
// take a write path at all beyond the lookup.
type peerTable struct {
	mu    sync.Mutex
	peers map[LogicalHost]*net.UDPAddr
	snap  []*net.UDPAddr // cached Broadcast snapshot; nil = stale
}

func (pt *peerTable) init() { pt.peers = make(map[LogicalHost]*net.UDPAddr) }

// add registers (or rebinds) the network address of a logical host.
func (pt *peerTable) add(host LogicalHost, addr *net.UDPAddr) {
	pt.mu.Lock()
	if !sameUDPAddr(pt.peers[host], addr) {
		pt.peers[host] = addr
		pt.snap = nil
	}
	pt.mu.Unlock()
}

// get returns the known address of host, or nil.
func (pt *peerTable) get(host LogicalHost) *net.UDPAddr {
	pt.mu.Lock()
	addr := pt.peers[host]
	pt.mu.Unlock()
	return addr
}

// snapshot returns the current address list for Broadcast. The returned
// slice is shared and must be treated as immutable; a fresh one is built
// only after the peer set changed.
func (pt *peerTable) snapshot() []*net.UDPAddr {
	pt.mu.Lock()
	if pt.snap == nil {
		pt.snap = make([]*net.UDPAddr, 0, len(pt.peers))
		for _, a := range pt.peers {
			pt.snap = append(pt.snap, a)
		}
	}
	s := pt.snap
	pt.mu.Unlock()
	return s
}

// learn discovers logical-host-to-network-address correspondences from
// received packets (§3.1), so replies to broadcast lookups and messages
// from previously unknown peers can be unicast — and so a peer that
// rebound (a rebooted server on a fresh ephemeral port) overrides its
// stale AddPeer entry. Packets too short to carry a header, packets of
// a different protocol version, and host-0 sources (an unset pid field
// in a malformed packet) teach nothing.
func (pt *peerTable) learn(pkt []byte, from *net.UDPAddr) {
	if len(pkt) < 12 || pkt[1] != vproto.Version {
		return
	}
	src := vproto.Pid(binary.BigEndian.Uint32(pkt[8:12]))
	host := src.Host()
	if host == 0 {
		return
	}
	pt.add(host, from)
}

// sameUDPAddr reports whether two addresses name the same endpoint.
func sameUDPAddr(a, b *net.UDPAddr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Port == b.Port && a.IP.Equal(b.IP) && a.Zone == b.Zone
}
