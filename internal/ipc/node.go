package ipc

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/obs"
	"vkernel/internal/vproto"
)

// Node is one V "kernel" instance: it owns local processes, represents
// remote senders with alien descriptors, and speaks the interkernel
// protocol through a Transport.
//
// Node state is decomposed into independently locked subsystems (see
// tables.go and proctable.go) so that concurrent transactions — Sends from
// many client processes, inbound packets dispatched by a transport worker
// pool, bulk transfers — proceed in parallel instead of funnelling through
// one global mutex. Every packet handler is safe to invoke concurrently.
type Node struct {
	host      LogicalHost
	cfg       NodeConfig
	transport Transport
	// sendBuf is the transport's zero-copy frame path, nil when the
	// transport only takes byte slices (resolved once at construction).
	sendBuf BufSender

	closed    atomic.Bool
	nextLocal atomic.Uint32
	seq       atomic.Uint32

	procs   procTable
	aliens  alienTable
	pending pendingTable
	moves   moveTable
	names   nameTable
	rtt     rttTable

	// metrics is the node's registry (NodeConfig.Metrics, or a private
	// one); stats are its ipc.* counters, exchangeNs the Send→Reply
	// latency histogram (recorded only while the registry has timing
	// enabled).
	metrics    *obs.Registry
	stats      nodeCounters
	exchangeNs *obs.Histogram
}

// NodeStats counts protocol activity (snapshot via Stats).
type NodeStats struct {
	RemoteSends       int
	RemoteReplies     int
	Retransmits       int
	DupsFiltered      int
	ReplyPendingsSent int
	ReplyPendingsSeen int
	NacksSent         int
	// OverloadSheds counts inbound Sends refused by receive-queue
	// backpressure (each remote shed also sends one overload Nack,
	// counted in NacksSent; local sheds appear only here).
	OverloadSheds int
	BadPackets    int
	MoveOps       int
	MoveBytes     int64
	RTTSamples    int
}

type nameEntry struct {
	pid   Pid
	scope Scope
}

// alien is the descriptor for a remote sending process (§3.2). Its
// mutable fields are guarded by the node's alienTable lock.
type alien struct {
	src      Pid
	seq      uint32
	msg      Message
	awaiting Pid // local process that received the message
	received bool
	replied  bool
	// shed marks a message refused by receive-queue backpressure. The
	// descriptor stays in the table (evictable) so duplicates of the shed
	// Send keep being answered with the overload Nack instead of being
	// delivered — ErrOverloaded promises the exchange never executed, and
	// a late transport duplicate must not break that.
	shed bool
	// replyFrame is the encoded reply packet, cached so duplicate
	// retransmissions are answered without re-executing the request. The
	// table owns one reference, dropped when the descriptor is removed;
	// senders of the cached frame retain around the transmit.
	replyFrame *bufpool.Buf

	// Intrusive LRU links. Only replied descriptors — the evictable ones —
	// are on the list, ordered least- to most-recently touched; guarded by
	// the alienTable lock.
	lruPrev, lruNext *alien
	onLRU            bool

	// env is the delivery envelope for this descriptor's message,
	// embedded so one Send costs one allocation instead of two. The
	// envelope's lifecycle (receiver queue → received map → consumed) is
	// never longer than the descriptor's reachability, and its fields are
	// owned by the receiving process, not the table lock.
	env envelope
}

// pendingSend is an outstanding remote Send from this node. Lifecycle
// fields (done, retries, map membership) are guarded by the pendingTable
// lock; io orders segment-data copies against result delivery (see
// barrier).
type pendingSend struct {
	seq     uint32
	proc    *Proc
	dst     Pid
	frame   *bufpool.Buf // the encoded Send, held for retransmission; owned by the sending goroutine, released after the result
	seg     *Segment
	io      sync.RWMutex
	replyCh chan sendResult
	retries int
	timer   *time.Timer
	done    bool
	// sentAt stamps the first transmission for RTT sampling (zero when
	// the node is not doing adaptive timing). retransmitted marks the
	// exchange tainted for Karn's rule: unlike retries, it is never
	// reset by ReplyPending, so a reply to an exchange that was ever
	// retransmitted — ambiguous about which copy it answers — is never
	// sampled. Guarded by the pendingTable lock; the owner reads them
	// race-free after the exchange completes.
	sentAt        time.Time
	retransmitted bool
}

// barrier orders in-flight segment copies (inbound MoveTo data landing in
// the granted segment, MoveFrom reads of it) before the exchange result
// is delivered: writers hold io.RLock across the copy after validating
// the entry under the table lock, so write-locking once after removing
// the entry is a full fence.
func (ps *pendingSend) barrier() {
	ps.io.Lock()
	ps.io.Unlock()
}

type sendResult struct {
	msg   Message
	err   error
	data  []byte // ReplyWithSegment payload (aliases frame)
	off   uint32
	frame *bufpool.Buf // retained receive frame backing data; receiver releases
}

type moveKey struct {
	src Pid
	seq uint32
}

type doneTransfer struct {
	seq   uint32
	count uint32
}

// NewNode creates a node with the given logical host id on a transport.
func NewNode(host LogicalHost, tr Transport, cfg NodeConfig) *Node {
	n := &Node{
		host:      host,
		cfg:       cfg.withDefaults(),
		transport: tr,
	}
	n.metrics = cfg.Metrics
	if n.metrics == nil {
		n.metrics = obs.New()
	}
	n.stats = newNodeCounters(n.metrics)
	n.exchangeNs = n.metrics.Histogram("ipc.exchange_ns")
	n.registerRTTGauges()
	n.sendBuf, _ = tr.(BufSender)
	n.procs.init()
	n.aliens.init()
	n.pending.init()
	n.moves.init()
	n.names.init()
	n.rtt.init()
	// Local ids start at a random point in the 16-bit space, so a node
	// rebooted on the same logical host is unlikely to mint the pids its
	// previous incarnation held (§3.1's "unlikely to be reused soon").
	// Without this, a Send addressed to a dead incarnation's process
	// would silently reach an unrelated process on the new one; with it,
	// the stale pid draws a Nack (ErrNoProcess) and the sender — the
	// volume router in particular — knows to re-resolve.
	n.nextLocal.Store(rand.Uint32())
	tr.SetHandler(n.handlePacket)
	return n
}

// Host returns the node's logical host id.
func (n *Node) Host() LogicalHost { return n.host }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats { return n.stats.snapshot() }

// Metrics returns the node's observability registry (the one from
// NodeConfig.Metrics, or the private registry the node made for
// itself). Embedding servers adopt it so one scrape covers both the
// IPC layer and the service built on it.
func (n *Node) Metrics() *obs.Registry { return n.metrics }

// Close shuts the node down: outstanding operations fail with ErrClosed
// and blocked receivers are released.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	for _, ps := range n.pending.drain() {
		ps.timer.Stop()
		ps.barrier()
		ps.replyCh <- sendResult{err: ErrClosed}
	}
	for _, op := range n.moves.drain() {
		op.timer.Stop()
		op.barrier()
		op.ackCh <- moveResult{err: ErrClosed}
	}
	for _, p := range n.procs.drain() {
		p.close()
	}
	err := n.transport.Close()
	// The transport has quiesced (no handler can run), so the cached
	// reply frames can be returned to the pool; the table's closed flag
	// keeps any straggling replier from caching new ones.
	n.aliens.drainRelease()
	return err
}

// nextSeq issues a fresh nonzero interkernel sequence number.
func (n *Node) nextSeq() uint32 {
	for {
		if s := n.seq.Add(1); s != 0 {
			return s
		}
	}
}

// allocProc mints a locally unique pid and registers a new process under
// it. Local ids come from a wrapping 16-bit counter, so on a long-lived
// node an id can come around again while its original holder is still
// alive; ids still present in the process table are skipped (registration
// is an atomic check-and-insert) rather than silently overwritten, which
// would hijack the live process's messages. When every local id is in use
// the node is out of pids and the caller gets ErrPidsExhausted.
func (n *Node) allocProc(name string) (*Proc, error) {
	// One full wrap of the 16-bit space (plus the skipped zero) proves
	// exhaustion: ids are minted from the shared counter, so even racing
	// allocators never probe the same id twice in one wrap.
	for tries := 0; tries < 1<<16+1; tries++ {
		local := uint16(n.nextLocal.Add(1))
		if local == 0 {
			continue // local id 0 is reserved (vproto.Nil convention)
		}
		pid := vproto.MakePid(n.host, local)
		p := newProc(n, pid, name)
		if n.procs.putIfAbsent(pid, p) {
			return p, nil
		}
	}
	return nil, ErrPidsExhausted
}

// Spawn creates a process on this node and runs body on its own goroutine.
// The body's return ends the process. It fails with ErrPidsExhausted when
// all 2^16-1 local ids name live processes.
func (n *Node) Spawn(name string, body func(p *Proc)) (*Proc, error) {
	p, err := n.allocProc(name)
	if err != nil {
		return nil, err
	}
	go func() {
		defer n.removeProc(p.pid)
		body(p)
	}()
	return p, nil
}

// Attach creates a process handle without spawning a goroutine — the
// caller's goroutine is the process (useful in tests and servers embedded
// in larger programs). Release it with Detach.
func (n *Node) Attach(name string) (*Proc, error) {
	return n.allocProc(name)
}

// Detach removes a process created with Attach.
func (n *Node) Detach(p *Proc) { n.removeProc(p.pid) }

func (n *Node) removeProc(pid Pid) {
	if p, ok := n.procs.remove(pid); ok {
		p.close()
	}
}

// lookupProc returns a local process.
func (n *Node) lookupProc(pid Pid) (*Proc, bool) { return n.procs.get(pid) }

// send encodes into a pooled frame and transmits it to the destination
// host; the frame is recycled as soon as the transport hands it back
// (both transmit paths borrow — a coalescing transport retains its own
// reference if it queues the frame).
func (n *Node) send(pkt *vproto.Packet, to LogicalHost) {
	f := bufpool.Get(pkt.WireSize())
	if _, err := pkt.EncodeInto(f.Data); err != nil {
		f.Release()
		panic("ipc: " + err.Error())
	}
	n.xmit(to, f)
	f.Release()
}

// xmit transmits an encoded pooled frame, taking the transport's
// zero-copy frame path when it offers one. The frame is borrowed either
// way; the caller keeps (and eventually releases) its reference.
func (n *Node) xmit(to LogicalHost, f *bufpool.Buf) {
	if n.sendBuf != nil {
		_ = n.sendBuf.SendBuf(to, f)
		return
	}
	_ = n.transport.Send(to, f.Data)
}

// handlePacket is the transport upcall. Transports may invoke it from
// many worker goroutines at once; every branch locks only the subsystem
// it touches. Decoding is zero-copy: pkt.Data aliases the pooled frame,
// which the transport recycles when this call returns — handlers that
// need payload bytes past their return (delivered inline segments, reply
// data handed to a blocked sender) retain f and release at last use.
func (n *Node) handlePacket(f *bufpool.Buf) {
	var pkt vproto.Packet
	if err := vproto.DecodeInto(&pkt, f.Data); err != nil {
		n.stats.badPackets.Add(1)
		return
	}
	if pkt.Kind != vproto.KindGetPid && pkt.Dst.Host() != n.host {
		return // broadcast fallback reached the wrong node
	}
	switch pkt.Kind {
	case vproto.KindSend:
		n.handleSend(&pkt, f)
	case vproto.KindReply:
		n.handleReply(&pkt, f)
	case vproto.KindReplyPending:
		n.handleReplyPending(&pkt)
	case vproto.KindNack:
		n.handleNack(&pkt)
	case vproto.KindMoveToData:
		n.handleMoveToData(&pkt)
	case vproto.KindMoveToAck:
		n.handleMoveAck(&pkt)
	case vproto.KindMoveFromReq:
		n.handleMoveFromReq(&pkt)
	case vproto.KindMoveFromData:
		n.handleMoveFromData(&pkt)
	case vproto.KindGetPid:
		n.handleGetPid(&pkt)
	case vproto.KindGetPidReply:
		n.handleGetPidReply(&pkt)
	default:
		n.stats.badPackets.Add(1)
	}
}

// handleSend implements §3.2 delivery with duplicate filtering. The
// check-and-insert against the alien table is atomic under its lock, so
// concurrent workers processing a duplicated Send cannot both deliver it.
func (n *Node) handleSend(pkt *vproto.Packet, f *bufpool.Buf) {
	t := &n.aliens
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if a, ok := t.m[pkt.Src]; ok {
		switch {
		case pkt.Seq == a.seq:
			n.stats.dupsFiltered.Add(1)
			if a.shed {
				// Duplicate of a message we refused under overload: shed
				// it again (the first Nack may have been lost).
				t.mu.Unlock()
				n.stats.overloadSheds.Add(1)
				n.stats.nacksSent.Add(1)
				n.send(&vproto.Packet{
					Kind:  vproto.KindNack,
					Flags: vproto.FlagOverload,
					Seq:   pkt.Seq,
					Dst:   pkt.Src,
				}, pkt.Src.Host())
				return
			}
			if a.replied {
				if reply := a.replyFrame; reply != nil {
					reply.Retain() // keep valid across the transmit even if evicted now
					t.lruTouchLocked(a)
					t.mu.Unlock()
					n.stats.remoteReplies.Add(1)
					n.xmit(pkt.Src.Host(), reply)
					reply.Release()
					return
				}
				t.mu.Unlock()
				return
			}
			t.mu.Unlock()
			n.stats.replyPendingsSent.Add(1)
			n.sendReplyPending(pkt)
			return
		case pkt.Seq-a.seq > 1<<31:
			n.stats.dupsFiltered.Add(1)
			t.mu.Unlock()
			return
		default:
			// Newer message: reuse the descriptor. An unconsumed or
			// unreplied older message is orphaned — its sender has moved
			// on (§3.2 timeout semantics).
			t.removeLocked(a)
		}
	}
	if len(t.m) >= n.cfg.AlienDescriptors && !t.evictLocked() {
		t.mu.Unlock()
		n.stats.replyPendingsSent.Add(1)
		n.sendReplyPending(pkt)
		return
	}
	// Resolve the receiver before publishing the descriptor, so a
	// concurrently processed duplicate of a Send to a nonexistent process
	// cannot observe an unreplied alien and answer ReplyPending where a
	// Nack is due. (Proc shards are leaf locks; this nesting is safe.)
	rcv, ok := n.procs.get(pkt.Dst)
	if !ok {
		t.mu.Unlock()
		n.stats.nacksSent.Add(1)
		n.send(&vproto.Packet{Kind: vproto.KindNack, Seq: pkt.Seq, Dst: pkt.Src}, pkt.Src.Host())
		return
	}
	a := &alien{
		src: pkt.Src,
		seq: pkt.Seq,
		msg: pkt.Msg,
	}
	a.env = envelope{from: pkt.Src, msg: pkt.Msg, alien: a}
	env := &a.env
	if len(pkt.Data) > 0 {
		// The inline segment prefix aliases the receive frame; pin the
		// frame until the exchange consumes it (zero-copy delivery).
		env.inline = pkt.Data
		env.frame = f.Retain()
	}
	t.m[pkt.Src] = a
	t.mu.Unlock()
	switch rcv.enqueue(env) {
	case enqOK:
	case enqClosed:
		// Drop the descriptor so the sender's retransmission is Nacked
		// rather than answered reply-pending.
		env.releaseFrame()
		n.aliens.drop(a)
	case enqOverflow:
		// Backpressure: shed the message and tell the sender it may
		// retry (§3.2 Nack machinery with the overload flag). The
		// descriptor is kept, marked shed and evictable, so a transport
		// duplicate of this Send is shed too rather than delivered after
		// the sender was already told the exchange never happened. A
		// retry is a new Send with a higher seq and replaces it.
		env.releaseFrame()
		n.aliens.markShed(a)
		n.stats.overloadSheds.Add(1)
		n.stats.nacksSent.Add(1)
		n.send(&vproto.Packet{
			Kind:  vproto.KindNack,
			Flags: vproto.FlagOverload,
			Seq:   pkt.Seq,
			Dst:   pkt.Src,
		}, pkt.Src.Host())
	}
}

func (n *Node) sendReplyPending(pkt *vproto.Packet) {
	n.send(&vproto.Packet{
		Kind: vproto.KindReplyPending,
		Seq:  pkt.Seq,
		Src:  pkt.Dst,
		Dst:  pkt.Src,
	}, pkt.Src.Host())
}

// handleReply completes an outstanding remote Send. Reply data is not
// copied here: the receive frame is retained and handed to the blocked
// sender, which copies straight into its granted segment and releases.
func (n *Node) handleReply(pkt *vproto.Packet, f *bufpool.Buf) {
	ps, ok := n.pending.take(pkt.Seq, pkt.Dst)
	if !ok {
		n.stats.dupsFiltered.Add(1)
		return
	}
	ps.timer.Stop()
	ps.barrier()
	res := sendResult{msg: pkt.Msg, data: pkt.Data, off: pkt.Offset}
	if len(pkt.Data) > 0 {
		res.frame = f.Retain()
	}
	ps.replyCh <- res
}

// handleReplyPending resets the retransmission budget (§3.2).
func (n *Node) handleReplyPending(pkt *vproto.Packet) {
	n.stats.replyPendingsSeen.Add(1)
	t := &n.pending
	t.mu.Lock()
	defer t.mu.Unlock()
	ps, ok := t.m[pkt.Seq]
	if !ok || ps.done {
		return
	}
	ps.retries = 0
}

// handleNack fails an outstanding Send: ErrNoProcess for a dead
// destination, ErrOverloaded (retryable) when the receiver shed the
// message under queue pressure.
func (n *Node) handleNack(pkt *vproto.Packet) {
	ps, ok := n.pending.take(pkt.Seq, pkt.Dst)
	if !ok {
		return
	}
	ps.timer.Stop()
	ps.barrier()
	err := ErrNoProcess
	if pkt.Flags&vproto.FlagOverload != 0 {
		err = ErrOverloaded
	}
	ps.replyCh <- sendResult{err: err}
}

// retransmit drives the §3.2 timeout machinery for one pending Send.
func (n *Node) retransmit(ps *pendingSend) {
	t := &n.pending
	t.mu.Lock()
	if t.closed || t.m[ps.seq] != ps || ps.done {
		t.mu.Unlock()
		return
	}
	ps.retries++
	if ps.retries > n.cfg.Retries {
		ps.done = true
		delete(t.m, ps.seq)
		t.mu.Unlock()
		ps.barrier()
		ps.replyCh <- sendResult{err: ErrTimeout}
		return
	}
	ps.retransmitted = true
	// Pin the encoded frame across the transmit, and snapshot the fields
	// used after the unlock: the owner releases the frame — and, since
	// descriptors are reused, may re-initialize the whole pendingSend for
	// its next exchange — as soon as this one completes, which can race
	// everything below.
	f := ps.frame.Retain()
	dst := ps.dst
	timer := ps.timer
	t.mu.Unlock()
	n.stats.retransmits.Add(1)
	n.bumpRTO(dst.Host())
	n.xmit(dst.Host(), f)
	f.Release()
	timer.Reset(n.rtoFor(dst.Host()))
}

func (n *Node) String() string {
	return fmt.Sprintf("node(%d)", n.host)
}
