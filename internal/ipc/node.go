package ipc

import (
	"fmt"
	"sync"
	"time"

	"vkernel/internal/vproto"
)

// Node is one V "kernel" instance: it owns local processes, represents
// remote senders with alien descriptors, and speaks the interkernel
// protocol through a Transport.
type Node struct {
	host      LogicalHost
	cfg       NodeConfig
	transport Transport

	mu        sync.Mutex
	closed    bool
	nextLocal uint16
	seq       uint32
	procs     map[Pid]*Proc
	aliens    map[Pid]*alien
	alienLRU  int64
	pending   map[uint32]*pendingSend
	moves     map[uint32]*moveOp
	moveRx    map[moveKey]*moveRxState
	moveDone  map[Pid]doneTransfer
	names     map[uint32]nameEntry
	lookups   map[uint32][]chan Pid

	stats NodeStats
}

// NodeStats counts protocol activity (snapshot via Stats).
type NodeStats struct {
	RemoteSends       int
	RemoteReplies     int
	Retransmits       int
	DupsFiltered      int
	ReplyPendingsSent int
	ReplyPendingsSeen int
	NacksSent         int
	BadPackets        int
	MoveOps           int
	MoveBytes         int64
}

type nameEntry struct {
	pid   Pid
	scope Scope
}

// alien is the descriptor for a remote sending process (§3.2).
type alien struct {
	src      Pid
	seq      uint32
	msg      Message
	inline   []byte
	awaiting Pid // local process that received the message
	received bool
	replied  bool
	replyPkt []byte
	lru      int64
}

// pendingSend is an outstanding remote Send from this node.
type pendingSend struct {
	seq     uint32
	proc    *Proc
	dst     Pid
	pkt     []byte // encoded, for retransmission
	seg     *Segment
	replyCh chan sendResult
	retries int
	timer   *time.Timer
	done    bool
}

type sendResult struct {
	msg  Message
	err  error
	data []byte // ReplyWithSegment payload
	off  uint32
}

type moveKey struct {
	src Pid
	seq uint32
}

type doneTransfer struct {
	seq   uint32
	count uint32
}

// NewNode creates a node with the given logical host id on a transport.
func NewNode(host LogicalHost, tr Transport, cfg NodeConfig) *Node {
	n := &Node{
		host:      host,
		cfg:       cfg.withDefaults(),
		transport: tr,
		procs:     make(map[Pid]*Proc),
		aliens:    make(map[Pid]*alien),
		pending:   make(map[uint32]*pendingSend),
		moves:     make(map[uint32]*moveOp),
		moveRx:    make(map[moveKey]*moveRxState),
		moveDone:  make(map[Pid]doneTransfer),
		names:     make(map[uint32]nameEntry),
		lookups:   make(map[uint32][]chan Pid),
	}
	tr.SetHandler(n.handlePacket)
	return n
}

// Host returns the node's logical host id.
func (n *Node) Host() LogicalHost { return n.host }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the node down: outstanding operations fail with ErrClosed
// and blocked receivers are released.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	pend := make([]*pendingSend, 0, len(n.pending))
	for _, ps := range n.pending {
		pend = append(pend, ps)
	}
	n.pending = map[uint32]*pendingSend{}
	mv := make([]*moveOp, 0, len(n.moves))
	for _, op := range n.moves {
		mv = append(mv, op)
	}
	n.moves = map[uint32]*moveOp{}
	procs := make([]*Proc, 0, len(n.procs))
	for _, p := range n.procs {
		procs = append(procs, p)
	}
	n.mu.Unlock()

	for _, ps := range pend {
		ps.timer.Stop()
		ps.replyCh <- sendResult{err: ErrClosed}
	}
	for _, op := range mv {
		op.timer.Stop()
		op.ackCh <- moveResult{err: ErrClosed}
	}
	for _, p := range procs {
		p.close()
	}
	return n.transport.Close()
}

// nextSeq issues a fresh interkernel sequence number. Caller holds n.mu.
func (n *Node) nextSeqLocked() uint32 {
	n.seq++
	if n.seq == 0 {
		n.seq++
	}
	return n.seq
}

// Spawn creates a process on this node and runs body on its own goroutine.
// The body's return ends the process.
func (n *Node) Spawn(name string, body func(p *Proc)) *Proc {
	n.mu.Lock()
	n.nextLocal++
	pid := vproto.MakePid(n.host, n.nextLocal)
	p := newProc(n, pid, name)
	n.procs[pid] = p
	n.mu.Unlock()
	go func() {
		defer n.removeProc(pid)
		body(p)
	}()
	return p
}

// Attach creates a process handle without spawning a goroutine — the
// caller's goroutine is the process (useful in tests and servers embedded
// in larger programs). Release it with Detach.
func (n *Node) Attach(name string) *Proc {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextLocal++
	pid := vproto.MakePid(n.host, n.nextLocal)
	p := newProc(n, pid, name)
	n.procs[pid] = p
	return p
}

// Detach removes a process created with Attach.
func (n *Node) Detach(p *Proc) { n.removeProc(p.pid) }

func (n *Node) removeProc(pid Pid) {
	n.mu.Lock()
	p, ok := n.procs[pid]
	if ok {
		delete(n.procs, pid)
	}
	n.mu.Unlock()
	if ok {
		p.close()
	}
}

// lookupProc returns a local process.
func (n *Node) lookupProc(pid Pid) (*Proc, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.procs[pid]
	return p, ok
}

// send encodes and transmits a packet to the destination host.
func (n *Node) send(pkt *vproto.Packet, to LogicalHost) {
	buf, err := pkt.Encode()
	if err != nil {
		panic("ipc: " + err.Error())
	}
	_ = n.transport.Send(to, buf)
}

// handlePacket is the transport upcall.
func (n *Node) handlePacket(buf []byte) {
	pkt, err := vproto.Decode(buf)
	if err != nil {
		n.mu.Lock()
		n.stats.BadPackets++
		n.mu.Unlock()
		return
	}
	if pkt.Kind != vproto.KindGetPid && pkt.Dst.Host() != n.host {
		return // broadcast fallback reached the wrong node
	}
	switch pkt.Kind {
	case vproto.KindSend:
		n.handleSend(pkt)
	case vproto.KindReply:
		n.handleReply(pkt)
	case vproto.KindReplyPending:
		n.handleReplyPending(pkt)
	case vproto.KindNack:
		n.handleNack(pkt)
	case vproto.KindMoveToData:
		n.handleMoveToData(pkt)
	case vproto.KindMoveToAck:
		n.handleMoveAck(pkt)
	case vproto.KindMoveFromReq:
		n.handleMoveFromReq(pkt)
	case vproto.KindMoveFromData:
		n.handleMoveFromData(pkt)
	case vproto.KindGetPid:
		n.handleGetPid(pkt)
	case vproto.KindGetPidReply:
		n.handleGetPidReply(pkt)
	default:
		n.mu.Lock()
		n.stats.BadPackets++
		n.mu.Unlock()
	}
}

// handleSend implements §3.2 delivery with duplicate filtering.
func (n *Node) handleSend(pkt *vproto.Packet) {
	n.mu.Lock()
	if a, ok := n.aliens[pkt.Src]; ok {
		switch {
		case pkt.Seq == a.seq:
			n.stats.DupsFiltered++
			if a.replied {
				n.stats.RemoteReplies++
				reply := a.replyPkt
				n.mu.Unlock()
				_ = n.transport.Send(pkt.Src.Host(), reply)
				return
			}
			n.mu.Unlock()
			n.sendReplyPending(pkt)
			return
		case pkt.Seq-a.seq > 1<<31:
			n.stats.DupsFiltered++
			n.mu.Unlock()
			return
		default:
			// Newer message: reuse the descriptor. An unconsumed or
			// unreplied older message is orphaned — its sender has moved
			// on (§3.2 timeout semantics).
			delete(n.aliens, pkt.Src)
		}
	}
	if len(n.aliens) >= n.cfg.AlienDescriptors && !n.evictAlienLocked() {
		n.stats.ReplyPendingsSent++
		n.mu.Unlock()
		n.sendReplyPendingRaw(pkt)
		return
	}
	n.alienLRU++
	a := &alien{
		src:    pkt.Src,
		seq:    pkt.Seq,
		msg:    pkt.Msg,
		inline: pkt.Data,
		lru:    n.alienLRU,
	}
	n.aliens[pkt.Src] = a
	rcv, ok := n.procs[pkt.Dst]
	if !ok {
		delete(n.aliens, pkt.Src)
		n.stats.NacksSent++
		n.mu.Unlock()
		n.send(&vproto.Packet{Kind: vproto.KindNack, Seq: pkt.Seq, Dst: pkt.Src}, pkt.Src.Host())
		return
	}
	n.mu.Unlock()
	rcv.enqueue(&envelope{from: pkt.Src, msg: pkt.Msg, inline: pkt.Data, alien: a})
}

// evictAlienLocked reclaims the LRU replied alien; caller holds n.mu.
func (n *Node) evictAlienLocked() bool {
	var victim *alien
	for _, a := range n.aliens {
		if !a.replied {
			continue
		}
		if victim == nil || a.lru < victim.lru {
			victim = a
		}
	}
	if victim == nil {
		return false
	}
	delete(n.aliens, victim.src)
	return true
}

func (n *Node) sendReplyPending(pkt *vproto.Packet) {
	n.mu.Lock()
	n.stats.ReplyPendingsSent++
	n.mu.Unlock()
	n.sendReplyPendingRaw(pkt)
}

func (n *Node) sendReplyPendingRaw(pkt *vproto.Packet) {
	n.send(&vproto.Packet{
		Kind: vproto.KindReplyPending,
		Seq:  pkt.Seq,
		Src:  pkt.Dst,
		Dst:  pkt.Src,
	}, pkt.Src.Host())
}

// handleReply completes an outstanding remote Send.
func (n *Node) handleReply(pkt *vproto.Packet) {
	n.mu.Lock()
	ps, ok := n.pending[pkt.Seq]
	if !ok || ps.proc.pid != pkt.Dst || ps.done {
		n.stats.DupsFiltered++
		n.mu.Unlock()
		return
	}
	ps.done = true
	delete(n.pending, pkt.Seq)
	n.mu.Unlock()
	ps.timer.Stop()
	ps.replyCh <- sendResult{msg: pkt.Msg, data: pkt.Data, off: pkt.Offset}
}

// handleReplyPending resets the retransmission budget (§3.2).
func (n *Node) handleReplyPending(pkt *vproto.Packet) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.ReplyPendingsSeen++
	ps, ok := n.pending[pkt.Seq]
	if !ok || ps.done {
		return
	}
	ps.retries = 0
}

// handleNack fails an outstanding Send.
func (n *Node) handleNack(pkt *vproto.Packet) {
	n.mu.Lock()
	ps, ok := n.pending[pkt.Seq]
	if !ok || ps.proc.pid != pkt.Dst || ps.done {
		n.mu.Unlock()
		return
	}
	ps.done = true
	delete(n.pending, pkt.Seq)
	n.mu.Unlock()
	ps.timer.Stop()
	ps.replyCh <- sendResult{err: ErrNoProcess}
}

// retransmit drives the §3.2 timeout machinery for one pending Send.
func (n *Node) retransmit(ps *pendingSend) {
	n.mu.Lock()
	if n.closed || n.pending[ps.seq] != ps || ps.done {
		n.mu.Unlock()
		return
	}
	ps.retries++
	if ps.retries > n.cfg.Retries {
		ps.done = true
		delete(n.pending, ps.seq)
		n.mu.Unlock()
		ps.replyCh <- sendResult{err: ErrTimeout}
		return
	}
	n.stats.Retransmits++
	buf := ps.pkt
	dst := ps.dst
	n.mu.Unlock()
	_ = n.transport.Send(dst.Host(), buf)
	ps.timer.Reset(n.cfg.RetransmitTimeout)
}

func (n *Node) String() string {
	return fmt.Sprintf("node(%d)", n.host)
}
