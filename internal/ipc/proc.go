package ipc

import (
	"sync"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

// envelope is a delivered message waiting in a receiver's FCFS queue.
type envelope struct {
	from   Pid
	msg    Message
	inline []byte       // segment prefix that travelled with a remote Send (aliases frame)
	frame  *bufpool.Buf // pinned receive frame backing inline; nil when no inline data
	local  *sendCtx     // local sender context (nil for remote senders)
	alien  *alien       // remote sender descriptor (nil for local senders)
}

// releaseFrame returns the pinned receive frame, if any. Called exactly
// once per envelope, when the exchange is consumed (reply), superseded,
// or dropped (shed, process death).
func (env *envelope) releaseFrame() {
	env.frame.Release()
	env.frame = nil
	env.inline = nil
}

// enqueue results.
type enqStatus int

const (
	enqOK       enqStatus = iota
	enqClosed             // receiver is gone
	enqOverflow           // FCFS queue at its configured bound; message shed
)

// sendCtx is a blocked local sender.
type sendCtx struct {
	from    Pid
	seg     *Segment
	replyCh chan sendResult
}

// Proc is one V process: a goroutine-owned handle for the IPC primitives.
type Proc struct {
	node *Node
	pid  Pid
	name string

	mu         sync.Mutex
	queue      []*envelope
	queueLimit int  // max queued envelopes; 0 = unbounded
	waiting    bool // a Receive is blocked on wake
	wake       chan *envelope
	received   map[Pid]*envelope
	closed     bool

	// sendRes is the per-process exchange-result channel, reused across
	// Sends: a process has at most one outstanding Send (the primitive
	// blocks its goroutine), so a single one-slot channel serves them all
	// without a per-exchange allocation. The single-delivery discipline
	// around pendingSend (take/drain/timeout mark done exactly once)
	// guarantees no stale result can linger into the next Send.
	sendRes chan sendResult

	// resendTimer is the per-process retransmit timer, reused across
	// Sends for the same at-most-one-outstanding reason as sendRes: a
	// fresh time.AfterFunc per Send costs a runtime timer plus a closure
	// allocation on every remote exchange. resendPS names the Send the
	// next fire should drive; both are guarded by resendMu. A stale fire
	// — the callback racing a Stop/re-arm and reading the next Send's
	// pendingSend — at worst retransmits that Send early, which the
	// duplicate filter on the receiver absorbs; retransmit itself
	// re-checks liveness under the pending-table lock, so a fire for a
	// completed exchange is a no-op.
	resendMu    sync.Mutex
	resendTimer *time.Timer
	resendPS    *pendingSend

	// psend is the per-process exchange descriptor, reused across Sends
	// for the same at-most-one-outstanding reason as sendRes and
	// resendTimer: a fresh heap pendingSend per remote Send is an
	// allocation on the page-exchange fast path. Its per-exchange fields
	// are rewritten only inside pendingTable.add's critical section, and
	// concurrent consumers (retransmit, reply dispatch, move handlers)
	// only touch a descriptor they validated as live under that same
	// lock — so no straggler from a finished exchange can observe the
	// next exchange's re-initialization. A stale retransmit-timer fire
	// that validates after the descriptor was re-registered retransmits
	// the new exchange early, which the receiver's duplicate filter
	// absorbs (and Karn's rule then skips the RTT sample).
	psend pendingSend
}

func newProc(n *Node, pid Pid, name string) *Proc {
	p := &Proc{
		node:       n,
		pid:        pid,
		name:       name,
		queueLimit: n.cfg.ReceiveQueueDepth,
		wake:       make(chan *envelope, 1),
		received:   make(map[Pid]*envelope),
		sendRes:    make(chan sendResult, 1),
	}
	p.psend.proc = p
	p.psend.replyCh = p.sendRes
	return p
}

// SetQueueLimit overrides the node-wide FCFS receive-queue bound for this
// process (0 disables the bound). Sends past the bound are shed with
// ErrOverloaded — see NodeConfig.ReceiveQueueDepth.
func (p *Proc) SetQueueLimit(n int) {
	p.mu.Lock()
	p.queueLimit = n
	p.mu.Unlock()
}

// armResend points the process's reusable retransmit timer at ps and
// arms it, creating the timer on the first remote Send. It returns the
// timer so completion paths can Stop it through ps.timer as before.
func (p *Proc) armResend(ps *pendingSend) *time.Timer {
	rto := p.node.rtoFor(ps.dst.Host())
	p.resendMu.Lock()
	p.resendPS = ps
	if p.resendTimer == nil {
		p.resendTimer = time.AfterFunc(rto, p.resendFire)
	} else {
		p.resendTimer.Reset(rto)
	}
	t := p.resendTimer
	p.resendMu.Unlock()
	return t
}

func (p *Proc) resendFire() {
	p.resendMu.Lock()
	ps := p.resendPS
	p.resendMu.Unlock()
	if ps != nil {
		p.node.retransmit(ps)
	}
}

// Pid returns the process identifier.
func (p *Proc) Pid() Pid { return p.pid }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Node returns the owning node.
func (p *Proc) Node() *Node { return p.node }

// close releases a blocked receiver, fails queued local senders, and
// orphans remote senders' descriptors so their retransmissions are
// Nacked (§3.2 process-death semantics). Pinned receive frames of
// undelivered and unreplied exchanges go back to the pool.
func (p *Proc) close() {
	p.resendMu.Lock()
	if p.resendTimer != nil {
		p.resendTimer.Stop()
	}
	p.resendPS = nil
	p.resendMu.Unlock()
	p.mu.Lock()
	p.closed = true
	wasWaiting := p.waiting
	p.waiting = false
	q := p.queue
	p.queue = nil
	rcvd := make([]*envelope, 0, len(p.received))
	for from, env := range p.received {
		delete(p.received, from)
		rcvd = append(rcvd, env)
	}
	p.mu.Unlock()
	if wasWaiting {
		p.wake <- nil // nil envelope: closed
	}
	for _, env := range q {
		if env.local != nil {
			env.local.replyCh <- sendResult{err: ErrNoProcess}
		} else if env.alien != nil {
			p.node.aliens.drop(env.alien)
		}
		env.releaseFrame()
	}
	for _, env := range rcvd {
		env.releaseFrame()
	}
	// Received-but-unreplied exchanges can never complete now; without
	// their descriptors the senders' retransmissions turn into Nacks
	// instead of being held reply-pending forever.
	p.node.aliens.dropAwaiting(p.pid)
}

// enqueue delivers an envelope, waking a blocked receiver if any. The
// caller handles non-OK statuses (sender notification, descriptor and
// frame cleanup) — enqueue itself takes ownership only on enqOK.
func (p *Proc) enqueue(env *envelope) enqStatus {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return enqClosed
	}
	if p.waiting {
		p.waiting = false
		p.mu.Unlock()
		p.wake <- env
		return enqOK
	}
	if p.queueLimit > 0 && len(p.queue) >= p.queueLimit {
		p.mu.Unlock()
		return enqOverflow
	}
	p.queue = append(p.queue, env)
	p.mu.Unlock()
	return enqOK
}

// Send sends msg to dst and blocks until the receiver replies; the reply
// overwrites *msg (§2.1). seg, if non-nil, is the segment the message
// grants; for remote destinations with read access, its first
// InlineSegMax bytes travel inside the Send packet (§3.4).
func (p *Proc) Send(msg *Message, dst Pid, seg *Segment) error {
	if seg != nil {
		msg.SetSegment(0, uint32(len(seg.Data)), seg.Access)
	}
	if dst.Host() != p.node.host {
		return p.remoteSend(msg, dst, seg)
	}
	target, ok := p.node.lookupProc(dst)
	if !ok {
		return ErrNoProcess
	}
	ctx := &sendCtx{from: p.pid, seg: seg, replyCh: p.sendRes}
	switch target.enqueue(&envelope{from: p.pid, msg: *msg, local: ctx}) {
	case enqClosed:
		return ErrNoProcess
	case enqOverflow:
		p.node.stats.overloadSheds.Add(1)
		return ErrOverloaded
	}
	res := <-ctx.replyCh
	if res.err != nil {
		return res.err
	}
	*msg = res.msg
	return nil
}

// remoteSend implements the non-local Send path (§3.2). The Send packet
// is encoded once into a pooled frame that lives for the whole exchange
// (retransmissions pin it); the inline segment prefix is copied straight
// from the granted segment into the frame, with no intermediate buffer.
func (p *Proc) remoteSend(msg *Message, dst Pid, seg *Segment) error {
	n := p.node
	pkt := &vproto.Packet{
		Kind: vproto.KindSend,
		Seq:  n.nextSeq(),
		Src:  p.pid,
		Dst:  dst,
		Msg:  *msg,
	}
	if seg != nil && seg.Access&SegRead != 0 && n.cfg.InlineSegMax > 0 {
		m := len(seg.Data)
		if m > n.cfg.InlineSegMax {
			m = n.cfg.InlineSegMax
		}
		pkt.Data = seg.Data[:m] // borrowed for the encode below only
		pkt.Count = uint32(m)
	}
	f := bufpool.Get(pkt.WireSize())
	if _, err := pkt.EncodeInto(f.Data); err != nil {
		f.Release()
		return err
	}
	// The process's reusable exchange descriptor (see the psend field
	// comment). Its per-exchange fields are (re)written inside add's
	// critical section: a stale timer fire validates the descriptor by
	// reading ps.seq under the same lock, so initializing outside it
	// would race.
	var sentAt time.Time
	if n.cfg.AdaptiveRTO {
		sentAt = time.Now()
	}
	ps := &p.psend
	if err := n.pending.add(ps, func() *time.Timer {
		ps.seq = pkt.Seq
		ps.dst = dst
		ps.frame = f
		ps.seg = seg
		ps.retries = 0
		ps.done = false
		ps.sentAt = sentAt
		ps.retransmitted = false
		return p.armResend(ps)
	}); err != nil {
		f.Release()
		return err
	}
	n.stats.remoteSends.Add(1)

	t0 := n.metrics.Start()
	n.xmit(dst.Host(), f)
	res := <-ps.replyCh
	f.Release() // exchange over; in-flight retransmits hold their own refs
	if res.err == nil {
		n.exchangeNs.Since(t0)
	}
	// A clean (never retransmitted — Karn) completed round trip is an
	// RTT sample for this peer. Reading ps.retransmitted here is
	// race-free: it only changes under the pendingTable lock before the
	// exchange is taken, and the result-channel receive orders that
	// before this read.
	if res.err == nil && !ps.sentAt.IsZero() && !ps.retransmitted {
		n.observeRTT(dst.Host(), time.Since(ps.sentAt))
	}
	// ReplyWithSegment data lands in the granted segment straight from
	// the retained receive frame.
	if res.err == nil && len(res.data) > 0 && seg != nil && seg.Access&SegWrite != 0 {
		if int(res.off)+len(res.data) <= len(seg.Data) {
			copy(seg.Data[res.off:], res.data)
		}
	}
	res.frame.Release()
	if res.err != nil {
		return res.err
	}
	*msg = res.msg
	return nil
}

// Receive blocks until a message arrives; FCFS order (§2.1).
func (p *Proc) Receive() (Message, Pid, error) {
	msg, src, _, err := p.receive(nil)
	return msg, src, err
}

// ReceiveWithSegment is Receive but also transfers up to len(buf) bytes of
// a read-access segment declared in the arriving message (the inline
// prefix for remote senders, a direct copy for local ones); it returns the
// transferred byte count (§2.1).
func (p *Proc) ReceiveWithSegment(buf []byte) (Message, Pid, int, error) {
	return p.receive(buf)
}

func (p *Proc) receive(buf []byte) (Message, Pid, int, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Message{}, vproto.Nil, 0, ErrClosed
	}
	var env *envelope
	if len(p.queue) > 0 {
		env = p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
	} else {
		// Block on the reusable wake channel: exactly one producer (the
		// enqueue or close that flips waiting back off under the lock)
		// hands over per wait cycle, so the one-slot channel never blocks
		// a sender and never carries stale envelopes.
		p.waiting = true
		p.mu.Unlock()
		env = <-p.wake
		if env == nil {
			return Message{}, vproto.Nil, 0, ErrClosed
		}
	}
	p.mu.Lock()
	if p.closed {
		// The process died between the handoff and here; the exchange can
		// never be replied. Settle it exactly as close() settles queued
		// envelopes — fail a local sender, drop a remote sender's
		// descriptor so its retransmission is Nacked instead of answered
		// reply-pending forever — and return the pinned frame.
		p.mu.Unlock()
		if env.local != nil {
			env.local.replyCh <- sendResult{err: ErrNoProcess}
		} else if env.alien != nil {
			p.node.aliens.drop(env.alien)
		}
		env.releaseFrame()
		return Message{}, vproto.Nil, 0, ErrClosed
	}
	old := p.received[env.from]
	p.received[env.from] = env
	p.mu.Unlock()
	if old != nil {
		// A newer message from the same sender superseded an exchange
		// that was never replied; the orphaned envelope's frame is done.
		old.releaseFrame()
	}
	if env.alien != nil {
		p.node.aliens.markReceived(env.alien, p.pid)
	}
	count := 0
	if buf != nil {
		count = p.consumeSegment(env, buf)
	}
	return env.msg, env.from, count, nil
}

func (p *Proc) consumeSegment(env *envelope, buf []byte) int {
	_, size, access, ok := env.msg.Segment()
	if !ok || access&SegRead == 0 {
		return 0
	}
	if env.alien != nil {
		return copy(buf, env.inline)
	}
	n := int(size)
	if n > len(buf) {
		n = len(buf)
	}
	if env.local.seg == nil {
		return 0
	}
	return copy(buf[:n], env.local.seg.Data)
}

// Reply sends the reply to dst, which must be awaiting one from this
// process; the replier does not block (§2.1).
func (p *Proc) Reply(msg *Message, dst Pid) error {
	return p.reply(msg, dst, 0, nil)
}

// ReplyWithSegment replies and carries data into the destination's granted
// write segment at destOff (§2.1). The data must fit one packet for remote
// destinations.
func (p *Proc) ReplyWithSegment(msg *Message, dst Pid, destOff uint32, data []byte) error {
	return p.reply(msg, dst, destOff, data)
}

func (p *Proc) reply(msg *Message, dst Pid, destOff uint32, data []byte) error {
	p.mu.Lock()
	env, ok := p.received[dst]
	p.mu.Unlock()
	if !ok {
		return ErrNotAwaitingReply
	}
	// Validate the data grant before consuming the exchange: a failed
	// Reply must leave the sender awaiting, so the replier can answer
	// again (say, with an error-status message) instead of stranding the
	// sender in reply-pending limbo with its descriptor pinned.
	if len(data) > 0 {
		if env.local != nil {
			seg := env.local.seg
			if seg == nil || seg.Access&SegWrite == 0 {
				return ErrNoAccess
			}
			if int(destOff)+len(data) > len(seg.Data) {
				return ErrBadAddress
			}
		} else {
			if len(data) > vproto.MaxData {
				return ErrSegTooBig
			}
			if _, size, access, ok := env.alien.msg.Segment(); !ok || access&SegWrite == 0 {
				return ErrNoAccess
			} else if uint64(destOff)+uint64(len(data)) > uint64(size) {
				return ErrBadAddress
			}
		}
	}
	// Commit: consume the exchange, re-checking it is still ours — a
	// concurrent Reply to the same sender may have won the race.
	p.mu.Lock()
	if p.received[dst] != env {
		p.mu.Unlock()
		return ErrNotAwaitingReply
	}
	delete(p.received, dst)
	p.mu.Unlock()
	env.releaseFrame() // the inline prefix can't be consumed anymore
	if env.local != nil {
		if len(data) > 0 {
			copy(env.local.seg.Data[destOff:], data)
		}
		env.local.replyCh <- sendResult{msg: *msg}
		return nil
	}
	return p.node.remoteReply(p, msg, env.alien, destOff, data)
}

// remoteReply transmits and caches the reply packet (§3.2, §3.4). The
// caller's data is borrowed only for the encode — it is copied exactly
// once, into the pooled reply frame — so repliers can hand segments of
// long-lived structures (a server's block cache) without defensive
// copies. The frame itself stays alive in the reply cache until the
// descriptor is evicted.
func (n *Node) remoteReply(p *Proc, msg *Message, a *alien, destOff uint32, data []byte) error {
	if len(data) > vproto.MaxData {
		return ErrSegTooBig
	}
	if len(data) > 0 {
		if _, size, access, ok := a.msg.Segment(); !ok || access&SegWrite == 0 {
			return ErrNoAccess
		} else if uint64(destOff)+uint64(len(data)) > uint64(size) {
			return ErrBadAddress
		}
	}
	pkt := &vproto.Packet{
		Kind:   vproto.KindReply,
		Seq:    a.seq,
		Src:    p.pid,
		Dst:    a.src,
		Offset: destOff,
		Count:  uint32(len(data)),
		Msg:    *msg,
		Data:   data, // borrowed for the encode below only
	}
	f := bufpool.Get(pkt.WireSize())
	if _, err := pkt.EncodeInto(f.Data); err != nil {
		f.Release()
		return err
	}
	n.aliens.cacheReply(a, f)
	n.stats.remoteReplies.Add(1)
	n.xmit(a.src.Host(), f)
	f.Release()
	return nil
}
