package ipc

import (
	"sync"
	"time"

	"vkernel/internal/vproto"
)

// envelope is a delivered message waiting in a receiver's FCFS queue.
type envelope struct {
	from   Pid
	msg    Message
	inline []byte   // segment prefix that travelled with a remote Send
	local  *sendCtx // local sender context (nil for remote senders)
	alien  *alien   // remote sender descriptor (nil for local senders)
}

// sendCtx is a blocked local sender.
type sendCtx struct {
	from    Pid
	seg     *Segment
	replyCh chan sendResult
}

// Proc is one V process: a goroutine-owned handle for the IPC primitives.
type Proc struct {
	node *Node
	pid  Pid
	name string

	mu       sync.Mutex
	queue    []*envelope
	waiting  chan *envelope // non-nil while a Receive is blocked
	received map[Pid]*envelope
	closed   bool
}

func newProc(n *Node, pid Pid, name string) *Proc {
	return &Proc{
		node:     n,
		pid:      pid,
		name:     name,
		received: make(map[Pid]*envelope),
	}
}

// Pid returns the process identifier.
func (p *Proc) Pid() Pid { return p.pid }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Node returns the owning node.
func (p *Proc) Node() *Node { return p.node }

// close releases a blocked receiver, fails queued local senders, and
// orphans remote senders' descriptors so their retransmissions are
// Nacked (§3.2 process-death semantics).
func (p *Proc) close() {
	p.mu.Lock()
	p.closed = true
	w := p.waiting
	p.waiting = nil
	q := p.queue
	p.queue = nil
	p.mu.Unlock()
	if w != nil {
		close(w)
	}
	for _, env := range q {
		if env.local != nil {
			env.local.replyCh <- sendResult{err: ErrNoProcess}
		} else if env.alien != nil {
			p.node.aliens.drop(env.alien)
		}
	}
	// Received-but-unreplied exchanges can never complete now; without
	// their descriptors the senders' retransmissions turn into Nacks
	// instead of being held reply-pending forever.
	p.node.aliens.dropAwaiting(p.pid)
}

// enqueue delivers an envelope, waking a blocked receiver if any.
func (p *Proc) enqueue(env *envelope) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if env.local != nil {
			env.local.replyCh <- sendResult{err: ErrNoProcess}
		} else if env.alien != nil {
			// Drop the descriptor so the sender's retransmission is
			// Nacked rather than answered reply-pending.
			p.node.aliens.drop(env.alien)
		}
		return
	}
	if p.waiting != nil {
		w := p.waiting
		p.waiting = nil
		p.mu.Unlock()
		w <- env
		return
	}
	p.queue = append(p.queue, env)
	p.mu.Unlock()
}

// Send sends msg to dst and blocks until the receiver replies; the reply
// overwrites *msg (§2.1). seg, if non-nil, is the segment the message
// grants; for remote destinations with read access, its first
// InlineSegMax bytes travel inside the Send packet (§3.4).
func (p *Proc) Send(msg *Message, dst Pid, seg *Segment) error {
	if seg != nil {
		msg.SetSegment(0, uint32(len(seg.Data)), seg.Access)
	}
	if dst.Host() != p.node.host {
		return p.remoteSend(msg, dst, seg)
	}
	target, ok := p.node.lookupProc(dst)
	if !ok {
		return ErrNoProcess
	}
	ctx := &sendCtx{from: p.pid, seg: seg, replyCh: make(chan sendResult, 1)}
	target.enqueue(&envelope{from: p.pid, msg: *msg, local: ctx})
	res := <-ctx.replyCh
	if res.err != nil {
		return res.err
	}
	*msg = res.msg
	return nil
}

// remoteSend implements the non-local Send path (§3.2).
func (p *Proc) remoteSend(msg *Message, dst Pid, seg *Segment) error {
	n := p.node
	pkt := &vproto.Packet{
		Kind: vproto.KindSend,
		Seq:  n.nextSeq(),
		Src:  p.pid,
		Dst:  dst,
		Msg:  *msg,
	}
	if seg != nil && seg.Access&SegRead != 0 && n.cfg.InlineSegMax > 0 {
		m := len(seg.Data)
		if m > n.cfg.InlineSegMax {
			m = n.cfg.InlineSegMax
		}
		pkt.Data = append([]byte(nil), seg.Data[:m]...)
		pkt.Count = uint32(m)
	}
	buf, err := pkt.Encode()
	if err != nil {
		return err
	}
	ps := &pendingSend{
		seq:     pkt.Seq,
		proc:    p,
		dst:     dst,
		pkt:     buf,
		seg:     seg,
		replyCh: make(chan sendResult, 1),
	}
	if err := n.pending.add(ps, func() *time.Timer { return newRetransmitTimer(n, ps) }); err != nil {
		return err
	}
	n.stats.remoteSends.Add(1)

	_ = n.transport.Send(dst.Host(), buf)
	res := <-ps.replyCh
	if res.err != nil {
		return res.err
	}
	// ReplyWithSegment data lands in the granted segment.
	if len(res.data) > 0 && seg != nil && seg.Access&SegWrite != 0 {
		if int(res.off)+len(res.data) <= len(seg.Data) {
			copy(seg.Data[res.off:], res.data)
		}
	}
	*msg = res.msg
	return nil
}

// Receive blocks until a message arrives; FCFS order (§2.1).
func (p *Proc) Receive() (Message, Pid, error) {
	msg, src, _, err := p.receive(nil)
	return msg, src, err
}

// ReceiveWithSegment is Receive but also transfers up to len(buf) bytes of
// a read-access segment declared in the arriving message (the inline
// prefix for remote senders, a direct copy for local ones); it returns the
// transferred byte count (§2.1).
func (p *Proc) ReceiveWithSegment(buf []byte) (Message, Pid, int, error) {
	return p.receive(buf)
}

func (p *Proc) receive(buf []byte) (Message, Pid, int, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Message{}, vproto.Nil, 0, ErrClosed
	}
	var env *envelope
	if len(p.queue) > 0 {
		env = p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
	} else {
		w := make(chan *envelope, 1)
		p.waiting = w
		p.mu.Unlock()
		var ok bool
		env, ok = <-w
		if !ok {
			return Message{}, vproto.Nil, 0, ErrClosed
		}
	}
	p.mu.Lock()
	p.received[env.from] = env
	p.mu.Unlock()
	if env.alien != nil {
		p.node.aliens.markReceived(env.alien, p.pid)
	}
	count := 0
	if buf != nil {
		count = p.consumeSegment(env, buf)
	}
	return env.msg, env.from, count, nil
}

func (p *Proc) consumeSegment(env *envelope, buf []byte) int {
	_, size, access, ok := env.msg.Segment()
	if !ok || access&SegRead == 0 {
		return 0
	}
	if env.alien != nil {
		return copy(buf, env.inline)
	}
	n := int(size)
	if n > len(buf) {
		n = len(buf)
	}
	if env.local.seg == nil {
		return 0
	}
	return copy(buf[:n], env.local.seg.Data)
}

// Reply sends the reply to dst, which must be awaiting one from this
// process; the replier does not block (§2.1).
func (p *Proc) Reply(msg *Message, dst Pid) error {
	return p.reply(msg, dst, 0, nil)
}

// ReplyWithSegment replies and carries data into the destination's granted
// write segment at destOff (§2.1). The data must fit one packet for remote
// destinations.
func (p *Proc) ReplyWithSegment(msg *Message, dst Pid, destOff uint32, data []byte) error {
	return p.reply(msg, dst, destOff, data)
}

func (p *Proc) reply(msg *Message, dst Pid, destOff uint32, data []byte) error {
	p.mu.Lock()
	env, ok := p.received[dst]
	p.mu.Unlock()
	if !ok {
		return ErrNotAwaitingReply
	}
	// Validate the data grant before consuming the exchange: a failed
	// Reply must leave the sender awaiting, so the replier can answer
	// again (say, with an error-status message) instead of stranding the
	// sender in reply-pending limbo with its descriptor pinned.
	if len(data) > 0 {
		if env.local != nil {
			seg := env.local.seg
			if seg == nil || seg.Access&SegWrite == 0 {
				return ErrNoAccess
			}
			if int(destOff)+len(data) > len(seg.Data) {
				return ErrBadAddress
			}
		} else {
			if len(data) > vproto.MaxData {
				return ErrSegTooBig
			}
			if _, size, access, ok := env.alien.msg.Segment(); !ok || access&SegWrite == 0 {
				return ErrNoAccess
			} else if uint64(destOff)+uint64(len(data)) > uint64(size) {
				return ErrBadAddress
			}
		}
	}
	// Commit: consume the exchange, re-checking it is still ours — a
	// concurrent Reply to the same sender may have won the race.
	p.mu.Lock()
	if p.received[dst] != env {
		p.mu.Unlock()
		return ErrNotAwaitingReply
	}
	delete(p.received, dst)
	p.mu.Unlock()
	if env.local != nil {
		if len(data) > 0 {
			copy(env.local.seg.Data[destOff:], data)
		}
		env.local.replyCh <- sendResult{msg: *msg}
		return nil
	}
	return p.node.remoteReply(p, msg, env.alien, destOff, data)
}

// remoteReply transmits and caches the reply packet (§3.2, §3.4).
func (n *Node) remoteReply(p *Proc, msg *Message, a *alien, destOff uint32, data []byte) error {
	if len(data) > vproto.MaxData {
		return ErrSegTooBig
	}
	if len(data) > 0 {
		if _, size, access, ok := a.msg.Segment(); !ok || access&SegWrite == 0 {
			return ErrNoAccess
		} else if uint64(destOff)+uint64(len(data)) > uint64(size) {
			return ErrBadAddress
		}
	}
	pkt := &vproto.Packet{
		Kind:   vproto.KindReply,
		Seq:    a.seq,
		Src:    p.pid,
		Dst:    a.src,
		Offset: destOff,
		Count:  uint32(len(data)),
		Msg:    *msg,
	}
	if len(data) > 0 {
		pkt.Data = append([]byte(nil), data...)
	}
	buf, err := pkt.Encode()
	if err != nil {
		return err
	}
	n.aliens.cacheReply(a, buf)
	n.stats.remoteReplies.Add(1)
	_ = n.transport.Send(a.src.Host(), buf)
	return nil
}
