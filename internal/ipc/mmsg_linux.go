//go:build linux && (amd64 || 386 || arm || arm64 || riscv64 || loong64)

// Linux fast path for BatchedUDPTransport: recvmmsg/sendmmsg vectors
// over SO_REUSEPORT-sharded sockets, raw syscalls driven through the
// runtime netpoller via syscall.RawConn so blocking still parks the
// goroutine instead of a thread. Stdlib only — SO_REUSEPORT and the
// mmsghdr layout are declared here because the frozen syscall package
// predates them.
//
// The vectors and syscall callbacks are built once per socket and
// reused: a batch of one (the sparse-traffic common case) must not cost
// more than the plain transport's per-datagram path, so the steady
// state re-initializes only the header slots the previous call
// consumed and allocates nothing.

package ipc

import (
	"context"
	"fmt"
	"net"
	"syscall"
	"unsafe"
)

const batchingAvailable = true

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package.
const soReusePort = 0xf

// reusePortControl marks a socket SO_REUSEPORT before bind, so several
// sockets can share one port with the kernel hashing inbound flows
// across them.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}

// listenBatch binds shards sockets to the same address; the first bind
// resolves ":0" and the rest pin its concrete port.
func listenBatch(listen string, shards int) ([]*net.UDPConn, error) {
	lc := net.ListenConfig{Control: reusePortControl}
	conns := make([]*net.UDPConn, 0, shards)
	addr := listen
	for i := 0; i < shards; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("ipc: listen %q shard %d: %w", listen, i, err)
		}
		conn := pc.(*net.UDPConn)
		conns = append(conns, conn)
		if i == 0 {
			addr = conn.LocalAddr().String()
		}
	}
	return conns, nil
}

// dialHot opens a connected socket to one peer, SO_REUSEPORT-bound to
// the transport's local address so the peer keeps seeing the shared
// source port. The connected 4-tuple outranks the reuseport group in
// the kernel's socket lookup, so the peer's inbound flow steers here.
func dialHot(local, peer *net.UDPAddr) (*net.UDPConn, error) {
	d := net.Dialer{LocalAddr: local, Control: reusePortControl}
	c, err := d.Dial("udp", peer.String())
	if err != nil {
		return nil, err
	}
	return c.(*net.UDPConn), nil
}

// mmsghdr mirrors the kernel's struct mmsghdr. Go inserts the same
// trailing padding after msgLen that C does (Msghdr is pointer-aligned),
// so the vector stride matches the kernel's on every Linux arch.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
}

// mmsgState holds one socket's reusable syscall vectors and callbacks,
// sized and wired once so the steady state allocates nothing. Only the
// rx loop touches the r* state and only the egress flusher (serialized
// by batchSock.flushing) touches the w* state. On a connected socket
// the kernel already knows both endpoints, so no sockaddr slots are
// exchanged at all (connected == true).
type mmsgState struct {
	raw       syscall.RawConn
	connected bool

	riovs    []syscall.Iovec
	rhdrs    []mmsghdr
	rnames   []syscall.RawSockaddrInet6
	rDirty   int // header slots consumed by the previous call, to re-arm
	rN       int
	rGot     int
	rErrno   syscall.Errno
	readCB   func(fd uintptr) bool
	lastName syscall.RawSockaddrInet6 // last sender, to skip repeated learns

	wiovs   []syscall.Iovec
	whdrs   []mmsghdr
	wnames  []syscall.RawSockaddrInet6
	wOff    int
	wCnt    int
	wDone   int
	wErrno  syscall.Errno
	writeCB func(fd uintptr) bool
}

func (st *mmsgState) init(conn *net.UDPConn, batch int, connected bool) {
	st.raw, _ = conn.SyscallConn()
	st.connected = connected
	st.riovs = make([]syscall.Iovec, batch)
	st.rhdrs = make([]mmsghdr, batch)
	st.rnames = make([]syscall.RawSockaddrInet6, batch)
	st.wiovs = make([]syscall.Iovec, batch)
	st.whdrs = make([]mmsghdr, batch)
	st.wnames = make([]syscall.RawSockaddrInet6, batch)
	for i := 0; i < batch; i++ {
		st.rhdrs[i].hdr = syscall.Msghdr{Iov: &st.riovs[i], Iovlen: 1}
		st.whdrs[i].hdr = syscall.Msghdr{Iov: &st.wiovs[i], Iovlen: 1}
		if !connected {
			st.rhdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&st.rnames[i]))
			st.rhdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(st.rnames[i]))
			st.whdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&st.wnames[i]))
		}
	}
	st.rDirty = batch
	// The callbacks close over st alone and are reused for every kernel
	// crossing; per-call inputs and results travel through st fields.
	st.readCB = func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&st.rhdrs[0])), uintptr(st.rN), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park on the netpoller until readable
		}
		st.rErrno = errno
		st.rGot = int(r)
		if errno != 0 {
			st.rGot = 0
		}
		return true
	}
	st.writeCB = func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&st.whdrs[st.wOff])), uintptr(st.wCnt), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false
		}
		st.wErrno = errno
		st.wDone = int(r)
		if errno != 0 {
			st.wDone = 0
		}
		return true
	}
}

// readBatch pulls up to len(scratch) datagrams in one recvmmsg crossing
// into the caller's scratch slabs, recording each datagram's length in
// lens and learning senders. Slots beyond the returned count are
// untouched, and their header slots are still armed from the previous
// call.
func (s *batchSock) readBatch(scratch [][]byte, lens []int, peers *peerTable) (int, error) {
	st := &s.mm
	if st.raw == nil {
		return s.readOne(scratch, lens, peers)
	}
	for i := 0; i < st.rDirty; i++ {
		st.riovs[i].Base = &scratch[i][0]
		st.riovs[i].SetLen(len(scratch[i]))
		if !st.connected {
			// The kernel rewrote Namelen on fill; re-arm the full size.
			st.rhdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(st.rnames[i]))
		}
	}
	st.rN = len(scratch)
	st.rErrno = 0
	if err := st.raw.Read(st.readCB); err != nil {
		return 0, err // socket closed
	}
	if st.rErrno != 0 {
		return 0, st.rErrno
	}
	got := st.rGot
	st.rDirty = got
	for i := 0; i < got; i++ {
		lens[i] = int(st.rhdrs[i].msgLen)
		// Consecutive datagrams overwhelmingly share a sender; converting
		// and learning only when the raw sockaddr changes keeps the hot
		// path allocation-free. (A transport address carries one logical
		// host, so skipping a repeat sender never skips a new peer.)
		if !st.connected && !sameRawName(&st.rnames[i], &st.lastName) {
			st.lastName = st.rnames[i]
			if from := rawToUDPAddr(&st.rnames[i]); from != nil {
				peers.learn(scratch[i][:lens[i]], from)
			}
		}
	}
	return got, nil
}

// writeBatch pushes the vector out in as few sendmmsg crossings as the
// kernel allows. Best effort, like any datagram transmit: a failing
// head datagram (say ECONNREFUSED bounced back on a connected socket)
// is skipped so it cannot wedge the rest of the batch, and a closed
// socket abandons the remainder — the protocol's retransmission
// machinery recovers either way.
func (s *batchSock) writeBatch(msgs []txMsg) {
	st := &s.mm
	if st.raw == nil {
		for _, m := range msgs {
			_ = s.writeOne(m.frame.Data, m.addr)
		}
		return
	}
	n := len(msgs)
	for i, m := range msgs {
		st.wiovs[i].Base = &m.frame.Data[0]
		st.wiovs[i].SetLen(len(m.frame.Data))
		if !st.connected {
			if m.addr != nil {
				st.whdrs[i].hdr.Namelen = putRawSockaddr(&st.wnames[i], m.addr)
			} else {
				st.whdrs[i].hdr.Namelen = 0 // no destination: the kernel rejects it
			}
		}
	}
	sent := 0
	for sent < n {
		st.wOff, st.wCnt, st.wErrno = sent, n-sent, 0
		if err := st.raw.Write(st.writeCB); err != nil {
			return
		}
		if st.wErrno != 0 || st.wDone == 0 {
			sent++ // skip the datagram the kernel refused
			continue
		}
		sent += st.wDone
	}
}

// sameRawName reports whether two raw sockaddrs name the same endpoint,
// comparing only the bytes their family defines.
func sameRawName(a, b *syscall.RawSockaddrInet6) bool {
	if a.Family != b.Family {
		return false
	}
	switch a.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(a))
		sb := (*syscall.RawSockaddrInet4)(unsafe.Pointer(b))
		return sa.Port == sb.Port && sa.Addr == sb.Addr
	case syscall.AF_INET6:
		return a.Port == b.Port && a.Addr == b.Addr
	}
	return false
}

// rawToUDPAddr converts a filled sockaddr slot to a net.UDPAddr,
// byte-wise on the port so it is endianness-correct everywhere.
func rawToUDPAddr(rsa *syscall.RawSockaddrInet6) *net.UDPAddr {
	switch rsa.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		ip := make(net.IP, 4)
		copy(ip, sa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
	case syscall.AF_INET6:
		p := (*[2]byte)(unsafe.Pointer(&rsa.Port))
		ip := make(net.IP, 16)
		copy(ip, rsa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
	}
	return nil
}

// putRawSockaddr fills a sockaddr slot from a net.UDPAddr and returns
// the length the kernel expects for its family. (Zones are not carried:
// peers here are addressed numerically, not via link-local scopes.)
func putRawSockaddr(dst *syscall.RawSockaddrInet6, a *net.UDPAddr) uint32 {
	if ip4 := a.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(dst))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port)
		copy(sa.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4
	}
	*dst = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	p := (*[2]byte)(unsafe.Pointer(&dst.Port))
	p[0], p[1] = byte(a.Port>>8), byte(a.Port)
	copy(dst.Addr[:], a.IP.To16())
	return syscall.SizeofSockaddrInet6
}
