package ipc

import (
	"testing"
	"time"
)

// TestPidWrapSkipsLiveProcesses forces the 16-bit local-id counter around
// its wrap and checks that an id still naming a live process is skipped
// rather than reissued. Before the fix, the wrapped Attach overwrote the
// long-lived process's table entry, silently hijacking its messages.
func TestPidWrapSkipsLiveProcesses(t *testing.T) {
	mesh := NewMemNetwork(1, FaultConfig{})
	n := NewNode(1, mesh.Transport(1), NodeConfig{})
	defer func() {
		_ = n.Close()
		mesh.Close()
	}()

	// Pin the randomized boot offset so the wrap probes known ids.
	n.nextLocal.Store(0)
	long := mustAttach(n, "long-lived")
	if long.Pid().Local() != 1 {
		t.Fatalf("first local id = %d, want 1", long.Pid().Local())
	}

	// Wind the counter to just before the wrap: the next allocations probe
	// local id 0 (reserved), then 1 (live — must be skipped), then 2.
	n.nextLocal.Store(^uint32(0))
	p, err := n.Attach("wrapped")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Detach(p)
	if p.Pid() == long.Pid() {
		t.Fatalf("wrapped allocation reissued live pid %v", long.Pid())
	}
	if p.Pid().Local() != 2 {
		t.Fatalf("wrapped local id = %d, want 2", p.Pid().Local())
	}
	if got, ok := n.lookupProc(long.Pid()); !ok || got != long {
		t.Fatal("live process displaced from the table by pid wrap")
	}

	// The long-lived process must still receive messages sent to its pid.
	done := make(chan error, 1)
	go func() {
		_, src, err := long.Receive()
		if err != nil {
			done <- err
			return
		}
		var reply Message
		done <- long.Reply(&reply, src)
	}()
	var m Message
	if err := p.Send(&m, long.Pid(), nil); err != nil {
		t.Fatalf("send to long-lived pid: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("long-lived process never saw the message")
	}
}

// TestPidExhaustionSurfacesError fills every usable local id and checks
// that the next allocation fails with ErrPidsExhausted instead of
// colliding, then succeeds again once an id is released.
func TestPidExhaustionSurfacesError(t *testing.T) {
	mesh := NewMemNetwork(1, FaultConfig{})
	n := NewNode(1, mesh.Transport(1), NodeConfig{})
	defer func() {
		_ = n.Close()
		mesh.Close()
	}()

	first := mustAttach(n, "filler")
	for i := 1; i < 1<<16-1; i++ {
		if _, err := n.Attach("filler"); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
	}
	if _, err := n.Attach("overflow"); err != ErrPidsExhausted {
		t.Fatalf("err = %v, want ErrPidsExhausted", err)
	}

	n.Detach(first)
	p, err := n.Attach("replacement")
	if err != nil {
		t.Fatalf("attach after release: %v", err)
	}
	if p.Pid() != first.Pid() {
		t.Fatalf("released id not reused: got %v, want %v", p.Pid(), first.Pid())
	}
}
