package ipc

import (
	"testing"
	"time"
)

func TestRTTEstimatorConverges(t *testing.T) {
	var tbl rttTable
	tbl.init()
	initial := 50 * time.Millisecond
	floor, ceil := time.Millisecond, 3*time.Second

	if got := tbl.rto(7, initial, floor, ceil); got != initial {
		t.Fatalf("pre-sample rto = %v, want initial %v", got, initial)
	}
	for i := 0; i < 50; i++ {
		tbl.observe(7, 100*time.Millisecond)
	}
	srtt, rttvar, samples := tbl.snapshot(7)
	if samples != 50 {
		t.Fatalf("samples = %d", samples)
	}
	if srtt < 95*time.Millisecond || srtt > 105*time.Millisecond {
		t.Fatalf("srtt = %v, want ~100ms", srtt)
	}
	rto := tbl.rto(7, initial, floor, ceil)
	if rto < srtt || rto > ceil {
		t.Fatalf("rto = %v outside [srtt, ceil]", rto)
	}
	// Steady samples drive the variance term down: the timeout should
	// approach srtt rather than stay at the first-sample srtt + 4·(rtt/2).
	if rto > 2*srtt {
		t.Fatalf("rto = %v did not tighten toward srtt %v (rttvar %v)", rto, srtt, rttvar)
	}
}

func TestRTTBackoffDoublesAndResets(t *testing.T) {
	var tbl rttTable
	tbl.init()
	initial := 20 * time.Millisecond
	floor, ceil := time.Millisecond, 3*time.Second

	tbl.bump(3)
	tbl.bump(3)
	if got, want := tbl.rto(3, initial, floor, ceil), 80*time.Millisecond; got != want {
		t.Fatalf("rto after 2 bumps = %v, want %v", got, want)
	}
	for i := 0; i < 20; i++ {
		tbl.bump(3)
	}
	// The shift count is capped at rtoBackoffMax, so many bumps land at
	// initial << rtoBackoffMax…
	if got, want := tbl.rto(3, initial, floor, ceil), initial<<rtoBackoffMax; got != want {
		t.Fatalf("rto after many bumps = %v, want %v", got, want)
	}
	// …and the ceiling clamps whatever the shift produces.
	if got := tbl.rto(3, initial, floor, time.Second); got != time.Second {
		t.Fatalf("rto = %v, want clamped to 1s ceiling", got)
	}
	tbl.observe(3, 10*time.Millisecond) // clean sample clears the backoff
	if got := tbl.rto(3, initial, floor, ceil); got >= 80*time.Millisecond {
		t.Fatalf("rto after clean sample = %v, backoff not reset", got)
	}
}

func TestRTTFloorClamp(t *testing.T) {
	var tbl rttTable
	tbl.init()
	tbl.observe(9, 20*time.Microsecond) // loopback-scale sample
	if got, want := tbl.rto(9, 50*time.Millisecond, time.Millisecond, time.Second), time.Millisecond; got != want {
		t.Fatalf("rto = %v, want floored at %v", got, want)
	}
}

// wanPair builds a client/server node pair over a mesh with an
// asymmetric WAN profile: the client→server link is slow and lossy, the
// return path slow but clean — the shape where one fixed retransmission
// timeout is always wrong for someone.
func wanPair(t *testing.T, seed int64, adaptive bool) (*Node, *Node, *MemNetwork) {
	t.Helper()
	mesh := NewMemNetwork(seed, FaultConfig{})
	mesh.SetLinkFault(1, 2, FaultConfig{Delay: 50 * time.Millisecond, DropProb: 0.12})
	mesh.SetLinkFault(2, 1, FaultConfig{Delay: 50 * time.Millisecond})
	cfg := NodeConfig{
		RetransmitTimeout: 20 * time.Millisecond, // well under the ~100ms RTT
		Retries:           30,
		AdaptiveRTO:       adaptive,
	}
	na := NewNode(1, mesh.Transport(1), cfg)
	nb := NewNode(2, mesh.Transport(2), cfg)
	t.Cleanup(func() {
		_ = na.Close()
		_ = nb.Close()
		mesh.Close()
	})
	return na, nb, mesh
}

// TestAdaptiveRTOUnderAsymmetricWAN is the acceptance experiment: with
// a fixed timeout far below the true RTT every exchange retransmits
// several times; the adaptive estimator must learn the ~100ms RTT after
// its first backed-off exchanges and cut retransmissions drastically.
func TestAdaptiveRTOUnderAsymmetricWAN(t *testing.T) {
	const exchanges = 15
	run := func(adaptive bool) (retransmits int) {
		na, nb, _ := wanPair(t, 42, adaptive)
		server := echoOn(nb, exchanges)
		client := mustAttach(na, "client")
		defer na.Detach(client)
		for i := uint32(1); i <= exchanges; i++ {
			var m Message
			m.SetWord(1, i)
			if err := client.Send(&m, server, nil); err != nil {
				t.Fatalf("adaptive=%v send %d: %v", adaptive, i, err)
			}
			if m.Word(1) != i*2 {
				t.Fatalf("adaptive=%v reply %d = %d", adaptive, i, m.Word(1))
			}
		}
		return na.Stats().Retransmits
	}

	fixed := run(false)
	adaptive := run(true)
	t.Logf("retransmits over %d exchanges: fixed=%d adaptive=%d", exchanges, fixed, adaptive)
	// Fixed 20ms against a 100ms RTT retransmits ~4-5× per exchange;
	// adaptive pays a few during its initial backoff and then only for
	// genuine loss. Require at least a 2× drop to stay noise-proof.
	if adaptive*2 >= fixed {
		t.Fatalf("adaptive retransmits %d not under half of fixed %d", adaptive, fixed)
	}
}

// TestAdaptiveRTOLearnsEstimate checks the estimator is actually fed
// from live Send→Reply timing and lands near the true RTT.
func TestAdaptiveRTOLearnsEstimate(t *testing.T) {
	const exchanges = 10
	na, nb, _ := wanPair(t, 7, true)
	server := echoOn(nb, exchanges)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	for i := uint32(1); i <= exchanges; i++ {
		var m Message
		m.SetWord(1, i)
		if err := client.Send(&m, server, nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	srtt, _, samples := na.PeerRTT(2)
	if samples == 0 {
		t.Fatal("no clean RTT samples recorded")
	}
	if na.Stats().RTTSamples != int(samples) {
		t.Fatalf("stats RTTSamples %d != table samples %d", na.Stats().RTTSamples, samples)
	}
	if srtt < 80*time.Millisecond || srtt > 250*time.Millisecond {
		t.Fatalf("srtt = %v, want near the 100ms link RTT", srtt)
	}
}

// TestAdaptiveRTOCleanPathStaysQuiet: on a fault-free mesh the adaptive
// node must behave like the fixed one — no retransmissions, and the
// estimator simply tracks the (tiny) in-memory RTT.
func TestAdaptiveRTOCleanPathStaysQuiet(t *testing.T) {
	mesh := NewMemNetwork(1, FaultConfig{})
	defer mesh.Close()
	cfg := NodeConfig{RetransmitTimeout: 20 * time.Millisecond, Retries: 5, AdaptiveRTO: true}
	na := NewNode(1, mesh.Transport(1), cfg)
	nb := NewNode(2, mesh.Transport(2), cfg)
	defer func() { _ = na.Close(); _ = nb.Close() }()
	const exchanges = 50
	server := echoOn(nb, exchanges)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	for i := uint32(1); i <= exchanges; i++ {
		var m Message
		m.SetWord(1, i)
		if err := client.Send(&m, server, nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if r := na.Stats().Retransmits; r != 0 {
		t.Fatalf("clean path retransmitted %d times", r)
	}
	if s := na.Stats().RTTSamples; s != exchanges {
		t.Fatalf("sampled %d of %d clean exchanges", s, exchanges)
	}
}
