// Package ipc is a real, runnable user-space implementation of the
// distributed V kernel's interprocess communication for Go programs:
// processes are goroutines, a Node plays the role of one workstation's
// kernel, and nodes exchange the same interkernel packets
// (vkernel/internal/vproto) as the paper's kernels — over UDP sockets or
// an in-memory transport with fault injection.
//
// The protocol machinery matches §3.2–§3.4 of the paper: synchronous
// Send/Receive/Reply with 32-byte messages; reliable exchanges built
// directly on unreliable datagrams with the reply as the acknowledgement;
// alien descriptors for duplicate filtering and reply caching;
// reply-pending packets; negative acknowledgements; segment grants with
// inline prefixes (ReceiveWithSegment / ReplyWithSegment); and MoveTo /
// MoveFrom bulk transfer with a single completion acknowledgement and
// resume-from-last-received retransmission.
package ipc

import (
	"errors"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/obs"
	"vkernel/internal/vproto"
)

// Protocol types shared with the simulation.
type (
	// Pid is a 32-bit process identifier; the high 16 bits name the node.
	Pid = vproto.Pid
	// LogicalHost identifies a node.
	LogicalHost = vproto.LogicalHost
	// Message is the fixed 32-byte V message.
	Message = vproto.Message
)

// Segment access bits, re-exported for callers.
const (
	SegRead  = vproto.SegFlagRead
	SegWrite = vproto.SegFlagWrite
)

// Segment is the memory a sender grants to the receiver of a message for
// the duration of the exchange (§2.1). Data is aliased, not copied: the
// receiver's MoveTo writes land in it directly, as they do between address
// spaces in the kernel.
type Segment struct {
	Data   []byte
	Access byte // SegRead and/or SegWrite
}

// Errors returned by IPC operations.
var (
	ErrNoProcess        = errors.New("ipc: no such process")
	ErrTimeout          = errors.New("ipc: retransmission limit exceeded")
	ErrNotAwaitingReply = errors.New("ipc: process not awaiting reply from replier")
	ErrBadAddress       = errors.New("ipc: range outside granted segment")
	ErrNoAccess         = errors.New("ipc: segment access not granted")
	ErrSegTooBig        = errors.New("ipc: segment exceeds one packet")
	ErrClosed           = errors.New("ipc: node closed")
	ErrNameUnknown      = errors.New("ipc: logical name not resolved")
	ErrPidsExhausted    = errors.New("ipc: all local process ids in use")
	// ErrOverloaded reports that the receiver shed the message because its
	// FCFS receive queue was full (backpressure Nack). The exchange was
	// never delivered; the operation is safe to retry after backoff.
	ErrOverloaded = errors.New("ipc: receiver overloaded (retryable)")
)

// Scope selects name-service visibility (§2.1).
type Scope int

// Name-service scopes.
const (
	ScopeLocal Scope = 1 << iota
	ScopeRemote
	ScopeBoth Scope = ScopeLocal | ScopeRemote
)

// NodeConfig tunes a node; the zero value gets defaults.
type NodeConfig struct {
	// Metrics is the observability registry the node registers its
	// ipc.* counters, gauges and histograms in. Nil gets the node a
	// private registry (reachable via Node.Metrics), so counting always
	// works; share one registry between the transport, the node and any
	// embedded server to scrape them as a unit. Latency histograms are
	// recorded only while the registry has timing enabled.
	Metrics *obs.Registry
	// RetransmitTimeout is the kernel-level retransmission period. With
	// AdaptiveRTO it is the initial per-peer timeout, used until the
	// first clean round-trip sample.
	RetransmitTimeout time.Duration
	// AdaptiveRTO replaces the fixed retransmission period with
	// per-peer Jacobson/Karn timing: clean Send→Reply round trips feed
	// a smoothed RTT/RTTVAR per peer, the timeout is srtt + 4·rttvar
	// clamped to [MinRTO, MaxRTO], and timeout retransmissions back the
	// peer off exponentially until a clean sample lands (see rtt.go).
	AdaptiveRTO bool
	// MinRTO floors the adaptive timeout (0 = 1ms) so a microsecond
	// loopback estimate cannot arm degenerate timers.
	MinRTO time.Duration
	// MaxRTO caps the adaptive timeout and its backoff (0 = 3s).
	MaxRTO time.Duration
	// Retries bounds retransmissions before a Send fails (§3.2's N).
	Retries int
	// AlienDescriptors bounds the remote-sender descriptor pool.
	AlienDescriptors int
	// InlineSegMax bounds the read-segment prefix carried in a Send
	// packet; negative disables the §3.4 extension.
	InlineSegMax int
	// ChunkSize bounds bulk-transfer data packets.
	ChunkSize int
	// GetPidTimeout bounds one broadcast name-lookup round.
	GetPidTimeout time.Duration
	// GetPidRetries bounds lookup rounds.
	GetPidRetries int
	// ReceiveQueueDepth bounds each process's FCFS receive queue. A Send
	// to a process whose queue is full is shed: remote senders get a Nack
	// carrying the overload flag (their Send fails with ErrOverloaded,
	// retryable), local senders get ErrOverloaded directly. 0 selects the
	// generous default (1024); negative disables the bound. Individual
	// processes can override with Proc.SetQueueLimit.
	ReceiveQueueDepth int
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 50 * time.Millisecond
	}
	if c.MinRTO == 0 {
		c.MinRTO = time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 3 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 5
	}
	if c.AlienDescriptors == 0 {
		c.AlienDescriptors = 256
	}
	switch {
	case c.InlineSegMax < 0:
		c.InlineSegMax = 0
	case c.InlineSegMax == 0 || c.InlineSegMax > vproto.MaxData:
		c.InlineSegMax = vproto.MaxData
	}
	if c.ChunkSize <= 0 || c.ChunkSize > vproto.MaxData {
		c.ChunkSize = vproto.MaxData
	}
	if c.GetPidTimeout == 0 {
		c.GetPidTimeout = 100 * time.Millisecond
	}
	if c.GetPidRetries == 0 {
		c.GetPidRetries = 3
	}
	switch {
	case c.ReceiveQueueDepth < 0:
		c.ReceiveQueueDepth = 0 // unbounded
	case c.ReceiveQueueDepth == 0:
		c.ReceiveQueueDepth = 1024
	}
	return c
}

// Transport moves encoded interkernel packets between nodes. Delivery may
// drop, duplicate or reorder packets; the protocol recovers.
//
// Buffer ownership: Send and Broadcast borrow pkt only for the duration
// of the call — the caller may recycle it as soon as they return. On the
// receive side the transport owns each frame: it holds one reference
// across the handler upcall and releases it when the handler returns, so
// a handler that needs frame bytes past its return (zero-copy dispatch)
// must Retain the frame and Release it at last use.
type Transport interface {
	// Send transmits to one node, best effort.
	Send(to LogicalHost, pkt []byte) error
	// Broadcast transmits to all nodes, best effort.
	Broadcast(pkt []byte) error
	// SetHandler installs the receive upcall. The transport may call it
	// serially or concurrently; the node handles its own locking. The
	// frame is valid for the duration of the call unless retained.
	SetHandler(h func(frame *bufpool.Buf))
	// Close releases transport resources.
	Close() error
}

// BufSender is an optional Transport fast path for senders whose frames
// already live in pooled buffers. SendBuf borrows f for the duration of
// the call exactly like Send borrows its slice — the caller keeps its
// reference and releases it on its own schedule — but a transport that
// defers the transmit (egress coalescing) retains f across the queue
// instead of copying the bytes into a fresh frame. For bulk-transfer
// chunk trains that removes a full payload copy per datagram.
type BufSender interface {
	SendBuf(to LogicalHost, f *bufpool.Buf) error
}
