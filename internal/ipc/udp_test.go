package ipc

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

// udpPair builds two nodes talking over real loopback UDP sockets.
func udpPair(t *testing.T) (*Node, *Node) {
	t.Helper()
	ta, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ta.AddPeer(2, tb.Addr())
	tb.AddPeer(1, ta.Addr())
	na := NewNode(1, ta, NodeConfig{RetransmitTimeout: 20 * time.Millisecond, Retries: 20})
	nb := NewNode(2, tb, NodeConfig{RetransmitTimeout: 20 * time.Millisecond, Retries: 20})
	t.Cleanup(func() {
		_ = na.Close()
		_ = nb.Close()
	})
	return na, nb
}

func TestUDPExchange(t *testing.T) {
	na, nb := udpPair(t)
	server := echoOn(nb, 5)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	for i := uint32(1); i <= 5; i++ {
		var m Message
		m.SetWord(1, i)
		if err := client.Send(&m, server, nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if m.Word(1) != i*2 {
			t.Fatalf("reply %d = %d", i, m.Word(1))
		}
	}
}

func TestUDPPageReadAndWrite(t *testing.T) {
	na, nb := udpPair(t)
	store := make([]byte, 512)
	fs := mustSpawn(nb, "fs", func(p *Proc) {
		buf := make([]byte, 1024)
		for {
			msg, src, n, err := p.ReceiveWithSegment(buf)
			if err != nil {
				return
			}
			var reply Message
			if msg.Word(1) == 1 { // read
				_ = p.ReplyWithSegment(&reply, src, 0, store)
			} else { // write
				copy(store, buf[:n])
				_ = p.Reply(&reply, src)
			}
		}
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)

	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(i ^ 0x5A)
	}
	var wm Message
	wm.SetWord(1, 2)
	if err := client.Send(&wm, fs.Pid(), &Segment{Data: page, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	var rm Message
	rm.SetWord(1, 1)
	if err := client.Send(&rm, fs.Pid(), &Segment{Data: got, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page did not survive the UDP round trip")
	}
}

func TestUDPProgramLoadSizedMoveTo(t *testing.T) {
	na, nb := udpPair(t)
	const size = 256 * 1024
	img := make([]byte, size)
	for i := range img {
		img[i] = byte(i * 31)
	}
	loader := mustSpawn(nb, "loader", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.MoveTo(src, 0, img); err != nil {
			t.Errorf("MoveTo: %v", err)
		}
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	buf := make([]byte, size)
	var m Message
	if err := client.Send(&m, loader.Pid(), &Segment{Data: buf, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("256 KB image corrupted over UDP")
	}
}

// TestUDPDispatchBufferLifetime guards the pooled receive path's
// ownership rule: a dispatched frame must not be recycled while a worker
// — or anyone the worker lent it to — still reads it. The handler holds
// each frame past its return (Retain) and verifies the payload from a
// separate goroutine after a delay; if the read loop reused frames it had
// already handed off, the delayed readers would observe bytes of newer
// datagrams (corruption below) or race the socket read (caught by -race).
func TestUDPDispatchBufferLifetime(t *testing.T) {
	ta, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	tb, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ta.AddPeer(2, tb.Addr())

	const packets = 300
	const payload = 512
	var verified, corrupted atomic.Int32
	var wg sync.WaitGroup
	tb.SetHandler(func(f *bufpool.Buf) {
		var pkt vproto.Packet
		if err := vproto.DecodeInto(&pkt, f.Data); err != nil {
			return // startup noise or truncation: not what this test checks
		}
		seq := pkt.Seq
		data := pkt.Data // aliases the pooled frame
		f.Retain()       // keep the frame alive past the handler's return
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.Release()
			time.Sleep(2 * time.Millisecond) // let the read loop run far ahead
			for i, b := range data {
				if b != byte(int(seq)*7+i) {
					corrupted.Add(1)
					return
				}
			}
			verified.Add(1)
		}()
	})

	for seq := uint32(1); seq <= packets; seq++ {
		pkt := &vproto.Packet{Kind: vproto.KindMoveToData, Seq: seq, Dst: vproto.MakePid(2, 1),
			Count: payload, Data: make([]byte, payload)}
		for i := range pkt.Data {
			pkt.Data[i] = byte(int(seq)*7 + i)
		}
		buf, err := pkt.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := ta.Send(2, buf); err != nil {
			t.Fatal(err)
		}
		if seq%32 == 0 {
			time.Sleep(time.Millisecond) // pace to keep loopback loss low
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for verified.Load()+corrupted.Load() < packets && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	_ = tb.Close() // quiesce workers before counting
	wg.Wait()
	if corrupted.Load() > 0 {
		t.Fatalf("%d frames were recycled while still lent out", corrupted.Load())
	}
	// Loopback UDP may drop under burst; corruption is the failure mode,
	// loss is not. Still require most packets to have made it through.
	if verified.Load() < packets/2 {
		t.Fatalf("only %d/%d packets verified; transport lost too much", verified.Load(), packets)
	}
}

func TestUDPNameService(t *testing.T) {
	na, nb := udpPair(t)
	server := echoOn(nb, 1)
	reg := mustAttach(nb, "registrar")
	reg.SetPid(42, server, ScopeBoth)
	nb.Detach(reg)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	if got := client.GetPid(42, ScopeBoth); got != server {
		t.Fatalf("GetPid over UDP = %v, want %v", got, server)
	}
}

func TestUDPServerLearnsClientAddress(t *testing.T) {
	// Only the client knows the server's address (as when a workstation
	// boots against a well-known file server). The server must discover
	// the client's address from received packets (§3.1) to reply.
	ta, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ta.AddPeer(2, tb.Addr()) // one-directional knowledge
	na := NewNode(1, ta, NodeConfig{RetransmitTimeout: 20 * time.Millisecond})
	nb := NewNode(2, tb, NodeConfig{RetransmitTimeout: 20 * time.Millisecond})
	defer func() { _ = na.Close(); _ = nb.Close() }()

	server := echoOn(nb, 1)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	m.SetWord(1, 4)
	if err := client.Send(&m, server, nil); err != nil {
		t.Fatal(err)
	}
	if m.Word(1) != 8 {
		t.Fatalf("reply = %d", m.Word(1))
	}
}

func TestUDPUnknownPeerBroadcastFallback(t *testing.T) {
	// A node with no unicast mapping for the destination host must fall
	// back to broadcast (§3.1) and still complete the exchange.
	ta, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// a knows b only as "some peer", not as host 2's unicast address:
	// register b under a bogus host so Send(2) misses and broadcasts.
	ta.AddPeer(77, tb.Addr())
	tb.AddPeer(1, ta.Addr())
	na := NewNode(1, ta, NodeConfig{RetransmitTimeout: 20 * time.Millisecond})
	nb := NewNode(2, tb, NodeConfig{RetransmitTimeout: 20 * time.Millisecond})
	defer func() { _ = na.Close(); _ = nb.Close() }()

	server := echoOn(nb, 1)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	m.SetWord(1, 3)
	if err := client.Send(&m, server, nil); err != nil {
		t.Fatal(err)
	}
	if m.Word(1) != 6 {
		t.Fatalf("reply = %d", m.Word(1))
	}
}
