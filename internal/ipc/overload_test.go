package ipc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

// TestRemoteOverloadNack: Sends past a process's FCFS queue bound must be
// shed with an overload Nack that the sender surfaces as ErrOverloaded
// (retryable), while the queued exchanges stay intact — bounded memory
// under overload instead of unbounded queue growth.
func TestRemoteOverloadNack(t *testing.T) {
	mesh := NewMemNetwork(3, FaultConfig{})
	server := NewNode(1, mesh.Transport(1), NodeConfig{ReceiveQueueDepth: 2})
	client := NewNode(2, mesh.Transport(2), NodeConfig{})

	// A receiver that never receives: every Send parks in its FCFS queue.
	rcv := mustAttach(server, "swamped")

	const senders = 5
	errCh := make(chan error, senders)
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := mustAttach(client, "sender")
			defer client.Detach(p)
			var m Message
			errCh <- p.Send(&m, rcv.Pid(), nil)
		}()
	}

	// Exactly queue-depth Sends fit; the rest must fail fast with
	// ErrOverloaded (not hang, not ErrNoProcess).
	overloaded := 0
	for i := 0; i < senders-2; i++ {
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("shed send returned %v, want ErrOverloaded", err)
			}
			overloaded++
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d sends were shed; overload Nack not delivered", overloaded)
		}
	}
	// The two queued exchanges are still live (held by reply-pending);
	// closing the client fails them with ErrClosed, not ErrOverloaded.
	_ = client.Close()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("queued send returned %v, want ErrClosed", err)
		}
	}
	_ = server.Close()
	mesh.Close()
}

// TestLocalOverload: the bound applies to same-node Sends too.
func TestLocalOverload(t *testing.T) {
	mesh := NewMemNetwork(3, FaultConfig{})
	n := NewNode(1, mesh.Transport(1), NodeConfig{})
	defer func() { _ = n.Close(); mesh.Close() }()

	rcv := mustAttach(n, "swamped")
	rcv.SetQueueLimit(1)

	first := make(chan error, 1)
	go func() {
		p := mustAttach(n, "sender1")
		defer n.Detach(p)
		var m Message
		first <- p.Send(&m, rcv.Pid(), nil)
	}()
	// Wait until the first Send is queued.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rcv.mu.Lock()
		queued := len(rcv.queue)
		rcv.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first send never queued")
		}
		time.Sleep(time.Millisecond)
	}
	p := mustAttach(n, "sender2")
	defer n.Detach(p)
	var m Message
	if err := p.Send(&m, rcv.Pid(), nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second send returned %v, want ErrOverloaded", err)
	}
	n.Detach(rcv) // fail the queued sender
	if err := <-first; !errors.Is(err, ErrNoProcess) {
		t.Fatalf("queued send returned %v, want ErrNoProcess", err)
	}
}

// TestShedDuplicateNotDelivered: ErrOverloaded promises the exchange was
// never executed, so a transport duplicate of a shed Send arriving after
// the queue drains must be shed again (same-seq filtering via the kept
// descriptor), not delivered.
func TestShedDuplicateNotDelivered(t *testing.T) {
	mesh := NewMemNetwork(3, FaultConfig{})
	server := NewNode(1, mesh.Transport(1), NodeConfig{ReceiveQueueDepth: 1})
	client := NewNode(2, mesh.Transport(2), NodeConfig{})
	defer func() { _ = client.Close(); _ = server.Close(); mesh.Close() }()

	rcv := mustAttach(server, "slow")
	blocker := mustAttach(client, "blocker")
	defer client.Detach(blocker)
	blocked := make(chan error, 1)
	go func() {
		var m Message
		blocked <- blocker.Send(&m, rcv.Pid(), nil)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		rcv.mu.Lock()
		queued := len(rcv.queue)
		rcv.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never queued")
		}
		time.Sleep(time.Millisecond)
	}

	shedder := mustAttach(client, "shedder")
	defer client.Detach(shedder)
	var m Message
	m.SetWord(2, 0xBEEF)
	if err := shedder.Send(&m, rcv.Pid(), nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("send returned %v, want ErrOverloaded", err)
	}

	// Drain the queue, then replay a duplicate of the shed Send (the
	// shedder's was the client node's second seq).
	if _, src, err := rcv.Receive(); err != nil {
		t.Fatal(err)
	} else {
		var reply Message
		if err := rcv.Reply(&reply, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	dup := &vproto.Packet{Kind: vproto.KindSend, Seq: 2, Src: shedder.Pid(), Dst: rcv.Pid(), Msg: m}
	buf, err := dup.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f := bufpool.Get(len(buf))
	copy(f.Data, buf)
	server.handlePacket(f)
	f.Release()

	got := make(chan Pid, 1)
	go func() {
		if _, src, err := rcv.Receive(); err == nil {
			got <- src
		}
	}()
	select {
	case src := <-got:
		t.Fatalf("duplicate of a shed Send was delivered (from %v)", src)
	case <-time.After(150 * time.Millisecond):
	}
	if nacks := server.Stats().NacksSent; nacks < 2 {
		t.Fatalf("NacksSent = %d, want ≥2 (original shed + duplicate)", nacks)
	}
	server.Detach(rcv)
}

// TestOverloadedSendIsRetryable: after the receiver drains its queue, a
// retry of a shed Send succeeds — the Nack sheds the message without
// poisoning the sender/receiver pair.
func TestOverloadedSendIsRetryable(t *testing.T) {
	mesh := NewMemNetwork(3, FaultConfig{})
	server := NewNode(1, mesh.Transport(1), NodeConfig{ReceiveQueueDepth: 1})
	client := NewNode(2, mesh.Transport(2), NodeConfig{})
	defer func() { _ = client.Close(); _ = server.Close(); mesh.Close() }()

	rcv := mustAttach(server, "slow")
	blocker := mustAttach(client, "blocker")
	defer client.Detach(blocker)

	blocked := make(chan error, 1)
	go func() {
		var m Message
		blocked <- blocker.Send(&m, rcv.Pid(), nil)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		rcv.mu.Lock()
		queued := len(rcv.queue)
		rcv.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never queued")
		}
		time.Sleep(time.Millisecond)
	}

	p := mustAttach(client, "retrier")
	defer client.Detach(p)
	var m Message
	if err := p.Send(&m, rcv.Pid(), nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded send returned %v", err)
	}
	// Drain: receive and reply to the blocker, then retry.
	if _, src, err := rcv.Receive(); err != nil {
		t.Fatal(err)
	} else {
		var reply Message
		if err := rcv.Reply(&reply, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	retryDone := make(chan error, 1)
	go func() {
		var rm Message
		retryDone <- p.Send(&rm, rcv.Pid(), nil)
	}()
	if _, src, err := rcv.Receive(); err != nil {
		t.Fatal(err)
	} else {
		var reply Message
		if err := rcv.Reply(&reply, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-retryDone; err != nil {
		t.Fatalf("retry after overload failed: %v", err)
	}
	server.Detach(rcv)
}
