//go:build linux && arm

package ipc

// recvmmsg/sendmmsg syscall numbers for the 32-bit ARM EABI.
const (
	sysRecvmmsg = 365
	sysSendmmsg = 374
)
