package ipc

import (
	"net"
	"testing"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

func encodeFrom(t *testing.T, src Pid) []byte {
	t.Helper()
	pkt := &vproto.Packet{Kind: vproto.KindSend, Seq: 1, Src: src, Dst: vproto.MakePid(9, 1)}
	wire, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func addrOf(t *testing.T, s string) *net.UDPAddr {
	t.Helper()
	a, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLearnRejectsGarbage(t *testing.T) {
	var pt peerTable
	pt.init()
	from := addrOf(t, "127.0.0.1:9000")

	pt.learn(nil, from)                                 // empty
	pt.learn([]byte{1, 2, 3}, from)                     // truncated: no header
	pt.learn(make([]byte, 11), from)                    // one byte short of the src pid
	pt.learn(encodeFrom(t, vproto.MakePid(0, 5)), from) // host-0 source

	wrongVersion := encodeFrom(t, vproto.MakePid(3, 5))
	wrongVersion[1] ^= 0x7F
	pt.learn(wrongVersion, from)

	if len(pt.snapshot()) != 0 {
		t.Fatalf("garbage datagrams taught %d peers", len(pt.snapshot()))
	}
}

func TestLearnAddsPeer(t *testing.T) {
	var pt peerTable
	pt.init()
	from := addrOf(t, "127.0.0.1:9001")
	pt.learn(encodeFrom(t, vproto.MakePid(3, 5)), from)
	if got := pt.get(3); !sameUDPAddr(got, from) {
		t.Fatalf("get(3) = %v, want %v", got, from)
	}
}

// TestLearnOverridesStaleAddPeer is the server-rebind case: a client
// still holds the old AddPeer address, the server comes back on a fresh
// port, and the first packet it sends must re-point the client.
func TestLearnOverridesStaleAddPeer(t *testing.T) {
	var pt peerTable
	pt.init()
	stale := addrOf(t, "127.0.0.1:9002")
	fresh := addrOf(t, "127.0.0.1:9003")
	pt.add(3, stale)
	pt.learn(encodeFrom(t, vproto.MakePid(3, 5)), fresh)
	if got := pt.get(3); !sameUDPAddr(got, fresh) {
		t.Fatalf("get(3) = %v, want rebound address %v", got, fresh)
	}
	if n := len(pt.snapshot()); n != 1 {
		t.Fatalf("snapshot has %d entries, want 1", n)
	}
}

// TestSnapshotCaching pins the Broadcast-path contract: the snapshot is
// rebuilt only when the peer set actually changes; re-learning a known
// peer at its known address must not churn it.
func TestSnapshotCaching(t *testing.T) {
	var pt peerTable
	pt.init()
	a3 := addrOf(t, "127.0.0.1:9004")
	pt.add(3, a3)

	s1 := pt.snapshot()
	pt.learn(encodeFrom(t, vproto.MakePid(3, 5)), addrOf(t, "127.0.0.1:9004"))
	s2 := pt.snapshot()
	if &s1[0] != &s2[0] {
		t.Fatal("re-learning a known peer invalidated the snapshot")
	}

	pt.add(4, addrOf(t, "127.0.0.1:9005"))
	s3 := pt.snapshot()
	if len(s3) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(s3))
	}
	if &s3[0] == &s1[0] && cap(s3) == cap(s1) && len(s1) == len(s3) {
		t.Fatal("adding a peer did not rebuild the snapshot")
	}

	// Rebinding an existing peer invalidates too.
	s4 := pt.snapshot()
	pt.add(3, addrOf(t, "127.0.0.1:9006"))
	s5 := pt.snapshot()
	same := len(s4) == len(s5) && &s4[0] == &s5[0]
	if same {
		t.Fatal("rebinding a peer did not rebuild the snapshot")
	}
}

// TestBroadcastSurvivesBadPeer: a peer whose address cannot be sent to
// must not starve the rest of the mesh, and the first error surfaces.
func TestBroadcastSurvivesBadPeer(t *testing.T) {
	ta, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ta.Close() }()
	good, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = good.Close() }()

	// An IPv4-mapped address with port 0 draws an immediate error from
	// the stack; list it first so the good peer exercises the
	// continue-past-error path. (Map iteration order is random, so run
	// the broadcast repeatedly — every run must reach the good peer.)
	ta.AddPeer(2, &net.UDPAddr{IP: net.IPv4zero, Port: 0})
	ta.AddPeer(3, good.Addr())

	recv := make(chan struct{}, 64)
	good.SetHandler(func(f *bufpool.Buf) { recv <- struct{}{} })

	pkt := encodeFrom(t, vproto.MakePid(1, 1))
	for i := 0; i < 8; i++ {
		// An error from the bad peer may surface (stack-dependent), but
		// the sweep must keep going either way.
		_ = ta.Broadcast(pkt)
	}
	select {
	case <-recv:
	case <-time.After(3 * time.Second):
		t.Fatal("broadcast never reached the healthy peer")
	}
}
