package ipc

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Parallel throughput benchmarks for the node's sharded-lock design:
// Send/Receive/Reply transactions and MoveTo bulk transfers driven by 1,
// 4 and 16 concurrent client processes against one server node. The
// custom ops/s metric is the figure of merit — on a multi-core host it
// must grow with client count, since the subsystems no longer serialize
// on one global mutex.
//
// Run: go test -bench=Parallel -benchmem ./internal/ipc/

// benchPair builds a fault-free client/server node pair on a mesh.
func benchPair(b *testing.B) (client, server *Node) {
	b.Helper()
	mesh := NewMemNetwork(1, FaultConfig{})
	server = NewNode(1, mesh.Transport(1), NodeConfig{})
	client = NewNode(2, mesh.Transport(2), NodeConfig{})
	b.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
		mesh.Close()
	})
	return client, server
}

func benchmarkParallelSendReply(b *testing.B, clients int) {
	clientNode, serverNode := benchPair(b)
	pids := make([]Pid, clients)
	for i := range pids {
		pids[i] = echoOn(serverNode, 0)
	}
	per := b.N/clients + 1
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := mustAttach(clientNode, "bench-client")
			defer clientNode.Detach(p)
			for j := 0; j < per; j++ {
				var m Message
				m.SetWord(1, uint32(j))
				if err := p.Send(&m, pids[c], nil); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.ReportMetric(float64(per*clients)/elapsed.Seconds(), "ops/s")
}

// BenchmarkParallelSendReply measures remote Send-Receive-Reply
// transaction throughput versus client concurrency.
func BenchmarkParallelSendReply(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchmarkParallelSendReply(b, clients)
		})
	}
}

// moverOn spawns a server process that answers each rendezvous by moving
// size bytes into the client's granted segment and replying.
func moverOn(n *Node, size int) Pid {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	ready := make(chan Pid, 1)
	mustSpawn(n, "mover", func(p *Proc) {
		ready <- p.Pid()
		for {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			if err := p.MoveTo(src, 0, data); err != nil {
				return
			}
			var reply Message
			if err := p.Reply(&reply, src); err != nil {
				return
			}
		}
	})
	return <-ready
}

func benchmarkParallelMoveTo(b *testing.B, clients, size int) {
	clientNode, serverNode := benchPair(b)
	pids := make([]Pid, clients)
	for i := range pids {
		pids[i] = moverOn(serverNode, size)
	}
	per := b.N/clients + 1
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := mustAttach(clientNode, "bench-client")
			defer clientNode.Detach(p)
			buf := make([]byte, size)
			for j := 0; j < per; j++ {
				var m Message
				if err := p.Send(&m, pids[c], &Segment{Data: buf, Access: SegWrite}); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := float64(per * clients)
	b.ReportMetric(ops/elapsed.Seconds(), "ops/s")
	b.ReportMetric(ops*float64(size)/(1<<20)/elapsed.Seconds(), "MB/s")
}

// BenchmarkParallelMoveTo measures bulk-transfer throughput (32 KB MoveTo
// per transaction) versus client concurrency.
func BenchmarkParallelMoveTo(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchmarkParallelMoveTo(b, clients, 32*1024)
		})
	}
}
