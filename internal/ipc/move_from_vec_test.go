package ipc

import (
	"bytes"
	"testing"
	"time"
)

// pullServer spawns a process on n that, for each received message,
// pulls the sender's granted segment into the given scatter list and
// replies. Returns the puller's pid.
func pullServer(t *testing.T, n *Node, vec [][]byte) Pid {
	t.Helper()
	return mustSpawn(n, "puller", func(p *Proc) {
		for {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			if err := p.MoveFromVec(src, 0, vec...); err != nil {
				t.Errorf("MoveFromVec: %v", err)
			}
			var reply Message
			_ = p.Reply(&reply, src)
		}
	}).Pid()
}

// TestMoveFromVecScatter: a scatter MoveFrom must land the pulled bytes
// across its destination slices in order, with packet boundaries that do
// not line up with slice boundaries (slices smaller, equal to, and larger
// than the chunk size), both remotely and locally.
func TestMoveFromVecScatter(t *testing.T) {
	mesh := NewMemNetwork(11, FaultConfig{})
	na := NewNode(1, mesh.Transport(1), NodeConfig{})
	nb := NewNode(2, mesh.Transport(2), NodeConfig{ChunkSize: 300})
	defer func() { _ = na.Close(); _ = nb.Close(); mesh.Close() }()

	// 7 slices of awkward sizes, 4221 bytes total: packets of 300 bytes
	// straddle slice boundaries everywhere.
	sizes := []int{1, 299, 300, 301, 512, 1024, 1784}
	total := 0
	vec := make([][]byte, 0, len(sizes))
	for _, n := range sizes {
		vec = append(vec, make([]byte, n))
		total += n
	}
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i*13 + 7)
	}

	puller := pullServer(t, nb, vec)

	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, puller, &Segment{Data: src, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, d := range vec {
		got = append(got, d...)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("remote scatter MoveFrom corrupted the data")
	}

	// Local path: a sender on the same node lands the same bytes.
	for _, d := range vec {
		for i := range d {
			d[i] = 0
		}
	}
	local := mustAttach(nb, "local-client")
	defer nb.Detach(local)
	var lm Message
	if err := local.Send(&lm, puller, &Segment{Data: src, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	for _, d := range vec {
		got = append(got, d...)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("local scatter MoveFrom corrupted the data")
	}
}

// TestMoveFromVecOffset: a scatter pull from a nonzero offset within the
// granted segment lands the right range.
func TestMoveFromVecOffset(t *testing.T) {
	mesh := NewMemNetwork(13, FaultConfig{})
	na := NewNode(1, mesh.Transport(1), NodeConfig{})
	nb := NewNode(2, mesh.Transport(2), NodeConfig{ChunkSize: 128})
	defer func() { _ = na.Close(); _ = nb.Close(); mesh.Close() }()

	a, b := make([]byte, 200), make([]byte, 300)
	puller := mustSpawn(nb, "puller", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.MoveFromVec(src, 1000, a, b); err != nil {
			t.Errorf("MoveFromVec at offset: %v", err)
		}
		var reply Message
		_ = p.Reply(&reply, src)
	})

	src := make([]byte, 2048)
	for i := range src {
		src[i] = byte(i * 31)
	}
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, puller.Pid(), &Segment{Data: src, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, src[1000:1200]) || !bytes.Equal(b, src[1200:1500]) {
		t.Fatal("offset scatter MoveFrom landed the wrong range")
	}
}

// TestMoveFromVecLossy: scatter pulls must survive drops and duplication
// — the §3.3 resume re-requests from the last contiguously received byte
// and the retransmitted stream lands in the right slices.
func TestMoveFromVecLossy(t *testing.T) {
	mesh := NewMemNetwork(23, FaultConfig{DropProb: 0.15, DupProb: 0.1})
	cfg := NodeConfig{RetransmitTimeout: 10 * time.Millisecond, Retries: 50, ChunkSize: 256}
	na := NewNode(1, mesh.Transport(1), cfg)
	nb := NewNode(2, mesh.Transport(2), cfg)
	defer func() { _ = na.Close(); _ = nb.Close(); mesh.Close() }()

	vec := make([][]byte, 8)
	for si := range vec {
		vec[si] = make([]byte, 777)
	}
	src := make([]byte, 8*777)
	for i := range src {
		src[i] = byte(i ^ (i >> 7))
	}
	puller := pullServer(t, nb, vec)

	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, puller, &Segment{Data: src, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, d := range vec {
		got = append(got, d...)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("lossy scatter MoveFrom corrupted the data")
	}
	if na.Stats().Retransmits+nb.Stats().Retransmits == 0 {
		t.Log("note: fault seed produced no retransmissions this run")
	}
}
