// Word layout of the kernel-internal interkernel messages (name
// lookups and data-move streams). Application payloads own all eight
// message words; these constants cover only the packet kinds the
// kernel itself originates, and every raw index into them lives here
// (the wireword analyzer flags bare indices anywhere else).
package ipc

const (
	// KindGetPid / KindGetPidReply: word 1 names the logical id being
	// resolved; the reply adds the holder's pid in word 2.
	wordNameID  = 1
	wordNamePid = 2

	// KindMoveToData / KindMoveFromReq: word 1 carries the transfer's
	// base byte offset within the target segment; each fragment's own
	// offset rides in the packet header and is applied relative to it.
	wordMoveBase = 1
)
