package ipc

import "sync"

// The process table is striped across independently locked shards so that
// packet handlers running on different worker goroutines only contend when
// two pids hash to the same stripe.
const (
	procTableBits   = 4
	procTableShards = 1 << procTableBits
)

// procShard is one stripe of the process table. The pad brings the
// stride to 64 bytes so adjacent shards' mutexes sit on separate cache
// lines.
type procShard struct {
	mu sync.Mutex
	m  map[Pid]*Proc
	_  [48]byte
}

// procTable is a striped Pid -> *Proc map.
type procTable struct {
	shards [procTableShards]procShard
}

func (t *procTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[Pid]*Proc)
	}
}

// shard spreads pids with a Fibonacci hash: local indexes are sequential
// and host ids occupy the high half, so masking the raw pid would pile
// every local process of one node onto a few stripes.
func (t *procTable) shard(pid Pid) *procShard {
	h := uint32(pid) * 2654435761
	return &t.shards[h>>(32-procTableBits)]
}

func (t *procTable) get(pid Pid) (*Proc, bool) {
	s := t.shard(pid)
	s.mu.Lock()
	p, ok := s.m[pid]
	s.mu.Unlock()
	return p, ok
}

// putIfAbsent registers p under pid unless the id already names a live
// process; the check-and-insert is atomic under the shard lock, so a
// wrapped id allocator can never displace a live registration.
func (t *procTable) putIfAbsent(pid Pid, p *Proc) bool {
	s := t.shard(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[pid]; ok {
		return false
	}
	s.m[pid] = p
	return true
}

func (t *procTable) remove(pid Pid) (*Proc, bool) {
	s := t.shard(pid)
	s.mu.Lock()
	p, ok := s.m[pid]
	if ok {
		delete(s.m, pid)
	}
	s.mu.Unlock()
	return p, ok
}

// drain empties every shard and returns the removed processes.
func (t *procTable) drain() []*Proc {
	var all []*Proc
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, p := range s.m {
			all = append(all, p)
		}
		s.m = make(map[Pid]*Proc)
		s.mu.Unlock()
	}
	return all
}
