package ipc

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

// lossy returns a node pair on a mesh that drops, duplicates, corrupts and
// reorders packets.
func lossyPair(t *testing.T, seed int64) (*Node, *Node) {
	t.Helper()
	mesh := NewMemNetwork(seed, FaultConfig{
		DropProb:    0.15,
		DupProb:     0.10,
		CorruptProb: 0.05,
		MaxDelay:    2 * time.Millisecond,
	})
	cfg := NodeConfig{RetransmitTimeout: 10 * time.Millisecond, Retries: 50}
	na := NewNode(1, mesh.Transport(1), cfg)
	nb := NewNode(2, mesh.Transport(2), cfg)
	t.Cleanup(func() {
		_ = na.Close()
		_ = nb.Close()
		mesh.Close()
	})
	return na, nb
}

// TestExactlyOnceUnderFaults is the §3.2 reliability property: with the
// reply as the acknowledgement and alien-based duplicate filtering, every
// exchange completes exactly once at the server despite drops, duplicates,
// corruption and reordering.
func TestExactlyOnceUnderFaults(t *testing.T) {
	na, nb := lossyPair(t, 99)
	const n = 60
	var mu sync.Mutex
	seen := make(map[uint32]int)
	srv := mustSpawn(nb, "server", func(p *Proc) {
		for {
			msg, src, err := p.Receive()
			if err != nil {
				return
			}
			mu.Lock()
			seen[msg.Word(1)]++
			mu.Unlock()
			var reply Message
			reply.SetWord(1, msg.Word(1)+1000)
			if err := p.Reply(&reply, src); err != nil {
				return
			}
		}
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	for i := uint32(1); i <= n; i++ {
		var m Message
		m.SetWord(1, i)
		if err := client.Send(&m, srv.Pid(), nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if m.Word(1) != i+1000 {
			t.Fatalf("reply %d = %d", i, m.Word(1))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := uint32(1); i <= n; i++ {
		if seen[i] != 1 {
			t.Fatalf("message %d delivered %d times", i, seen[i])
		}
	}
	if na.Stats().Retransmits == 0 {
		t.Fatal("fault injection produced no retransmissions; test is vacuous")
	}
}

// TestMoveToUnderFaults checks bulk-transfer integrity with resume-from-
// last-received retransmission.
func TestMoveToUnderFaults(t *testing.T) {
	na, nb := lossyPair(t, 123)
	const size = 30_000
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 233)
	}
	srv := mustSpawn(nb, "server", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.MoveTo(src, 0, data); err != nil {
			t.Errorf("MoveTo: %v", err)
		}
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	buf := make([]byte, size)
	var m Message
	if err := client.Send(&m, srv.Pid(), &Segment{Data: buf, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("MoveTo under faults corrupted data")
	}
}

// TestMoveFromUnderFaults checks the pull direction.
func TestMoveFromUnderFaults(t *testing.T) {
	na, nb := lossyPair(t, 321)
	const size = 25_000
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 51)
	}
	got := make(chan []byte, 1)
	srv := mustSpawn(nb, "server", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		buf := make([]byte, size)
		if err := p.MoveFrom(src, 0, buf); err != nil {
			t.Errorf("MoveFrom: %v", err)
		}
		got <- buf
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, srv.Pid(), &Segment{Data: data, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	if g := <-got; !bytes.Equal(g, data) {
		t.Fatal("MoveFrom under faults corrupted data")
	}
}

// TestReplyCacheAnswersDuplicates: a retransmitted request after the reply
// was sent must be answered from the alien's cached reply, not re-executed.
func TestReplyCacheAnswersDuplicates(t *testing.T) {
	mesh := NewMemNetwork(5, FaultConfig{})
	cfg := NodeConfig{RetransmitTimeout: 10 * time.Millisecond, Retries: 10}
	na := NewNode(1, mesh.Transport(1), cfg)
	nb := NewNode(2, mesh.Transport(2), cfg)
	defer func() { _ = na.Close(); _ = nb.Close(); mesh.Close() }()

	execs := 0
	var mu sync.Mutex
	srv := mustSpawn(nb, "server", func(p *Proc) {
		for {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			mu.Lock()
			execs++
			mu.Unlock()
			var reply Message
			_ = p.Reply(&reply, src)
		}
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, srv.Pid(), nil); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a duplicate of the Send the client just completed
	// (same seq), as if the reply had been lost.
	dup := &vproto.Packet{
		Kind: vproto.KindSend,
		Seq:  1, // first seq issued by node a
		Src:  client.Pid(),
		Dst:  srv.Pid(),
	}
	buf, err := dup.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f := bufpool.Get(len(buf))
	copy(f.Data, buf)
	nb.handlePacket(f)
	f.Release()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if execs != 1 {
		t.Fatalf("request executed %d times; duplicate not filtered", execs)
	}
	if nb.Stats().DupsFiltered == 0 {
		t.Fatal("duplicate not counted")
	}
}

// TestReplyPendingSuppressesFailure: a slow server must hold the client in
// the exchange via reply-pending packets well beyond Retries x timeout.
func TestReplyPendingSuppressesFailure(t *testing.T) {
	mesh := NewMemNetwork(5, FaultConfig{})
	cfg := NodeConfig{RetransmitTimeout: 5 * time.Millisecond, Retries: 3}
	na := NewNode(1, mesh.Transport(1), cfg)
	nb := NewNode(2, mesh.Transport(2), cfg)
	defer func() { _ = na.Close(); _ = nb.Close(); mesh.Close() }()

	srv := mustSpawn(nb, "slow", func(p *Proc) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		_ = msg
		time.Sleep(100 * time.Millisecond) // >> Retries x timeout
		var reply Message
		reply.SetWord(1, 1)
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, srv.Pid(), nil); err != nil {
		t.Fatalf("slow exchange failed: %v", err)
	}
	if m.Word(1) != 1 {
		t.Fatal("wrong reply")
	}
	if na.Stats().ReplyPendingsSeen == 0 {
		t.Fatal("no reply-pending packets observed; test is vacuous")
	}
}

// TestAlienExhaustionRecovery: more concurrent remote clients than alien
// descriptors still complete, via reply-pending + retransmission.
func TestAlienExhaustionRecovery(t *testing.T) {
	mesh := NewMemNetwork(5, FaultConfig{})
	cfg := NodeConfig{RetransmitTimeout: 5 * time.Millisecond, Retries: 100, AlienDescriptors: 2}
	nb := NewNode(1, mesh.Transport(1), cfg)
	defer func() { _ = nb.Close(); mesh.Close() }()

	server := echoOn(nb, 0)
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	nodes := make([]*Node, clients)
	for i := 0; i < clients; i++ {
		nodes[i] = NewNode(LogicalHost(10+i), mesh.Transport(LogicalHost(10+i)), cfg)
		defer nodes[i].Close()
		wg.Add(1)
		mustSpawn(nodes[i], "client", func(p *Proc) {
			defer wg.Done()
			var m Message
			m.SetWord(1, 5)
			if err := p.Send(&m, server, nil); err != nil {
				errs <- err
			}
		})
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
