package ipc

import "vkernel/internal/obs"

// nodeCounters holds the node's protocol statistics as named counters in
// the node's obs registry — independent atomics, so hot paths on
// different subsystems never contend on a stats lock, and one uniform
// namespace (`ipc.*`) that OpQueryStats/vstat scrape alongside every
// other subsystem. NodeStats remains as a thin snapshot view.
type nodeCounters struct {
	remoteSends       *obs.Counter
	remoteReplies     *obs.Counter
	retransmits       *obs.Counter
	dupsFiltered      *obs.Counter
	replyPendingsSent *obs.Counter
	replyPendingsSeen *obs.Counter
	nacksSent         *obs.Counter
	overloadSheds     *obs.Counter
	badPackets        *obs.Counter
	moveOps           *obs.Counter
	moveBytes         *obs.Counter
	rttSamples        *obs.Counter
}

// newNodeCounters registers the node counters under their wire-visible
// names. Every name the batched transport also touches (retransmits,
// nacks, sheds are node-layer; batching is transport-layer `net.*`)
// lives here exactly once, so NodeStats and scrapes can never disagree
// about what a counter means.
func newNodeCounters(r *obs.Registry) nodeCounters {
	return nodeCounters{
		remoteSends:       r.Counter("ipc.remote_sends"),
		remoteReplies:     r.Counter("ipc.remote_replies"),
		retransmits:       r.Counter("ipc.retransmits"),
		dupsFiltered:      r.Counter("ipc.dups_filtered"),
		replyPendingsSent: r.Counter("ipc.reply_pendings_sent"),
		replyPendingsSeen: r.Counter("ipc.reply_pendings_seen"),
		nacksSent:         r.Counter("ipc.nacks_sent"),
		overloadSheds:     r.Counter("ipc.overload_sheds"),
		badPackets:        r.Counter("ipc.bad_packets"),
		moveOps:           r.Counter("ipc.move_ops"),
		moveBytes:         r.Counter("ipc.move_bytes"),
		rttSamples:        r.Counter("ipc.rtt_samples"),
	}
}

// snapshot materializes the exported NodeStats view.
func (c *nodeCounters) snapshot() NodeStats {
	return NodeStats{
		RemoteSends:       int(c.remoteSends.Load()),
		RemoteReplies:     int(c.remoteReplies.Load()),
		Retransmits:       int(c.retransmits.Load()),
		DupsFiltered:      int(c.dupsFiltered.Load()),
		ReplyPendingsSent: int(c.replyPendingsSent.Load()),
		ReplyPendingsSeen: int(c.replyPendingsSeen.Load()),
		NacksSent:         int(c.nacksSent.Load()),
		OverloadSheds:     int(c.overloadSheds.Load()),
		BadPackets:        int(c.badPackets.Load()),
		MoveOps:           int(c.moveOps.Load()),
		MoveBytes:         c.moveBytes.Load(),
		RTTSamples:        int(c.rttSamples.Load()),
	}
}
