package ipc

import "sync/atomic"

// nodeCounters holds the node's protocol statistics as independent atomic
// counters, so hot paths on different subsystems never contend on a stats
// lock.
type nodeCounters struct {
	remoteSends       atomic.Int64
	remoteReplies     atomic.Int64
	retransmits       atomic.Int64
	dupsFiltered      atomic.Int64
	replyPendingsSent atomic.Int64
	replyPendingsSeen atomic.Int64
	nacksSent         atomic.Int64
	badPackets        atomic.Int64
	moveOps           atomic.Int64
	moveBytes         atomic.Int64
	rttSamples        atomic.Int64
}

// snapshot materializes the exported NodeStats view.
func (c *nodeCounters) snapshot() NodeStats {
	return NodeStats{
		RemoteSends:       int(c.remoteSends.Load()),
		RemoteReplies:     int(c.remoteReplies.Load()),
		Retransmits:       int(c.retransmits.Load()),
		DupsFiltered:      int(c.dupsFiltered.Load()),
		ReplyPendingsSent: int(c.replyPendingsSent.Load()),
		ReplyPendingsSeen: int(c.replyPendingsSeen.Load()),
		NacksSent:         int(c.nacksSent.Load()),
		BadPackets:        int(c.badPackets.Load()),
		MoveOps:           int(c.moveOps.Load()),
		MoveBytes:         c.moveBytes.Load(),
		RTTSamples:        int(c.rttSamples.Load()),
	}
}
