package ipc

import (
	"testing"

	"vkernel/internal/bufpool"
)

// TestAlienLRUEvictionOrder drives the alien table directly: eviction must
// reclaim the least-recently-touched replied descriptor in order, never an
// unreplied one, and answering a duplicate from the reply cache counts as
// a touch.
func TestAlienLRUEvictionOrder(t *testing.T) {
	var tab alienTable
	tab.init()

	mk := func(src Pid) *alien {
		a := &alien{src: src, seq: 1}
		tab.mu.Lock()
		tab.m[src] = a
		tab.mu.Unlock()
		return a
	}
	a1, a2, a3 := mk(1), mk(2), mk(3)

	tab.mu.Lock()
	if tab.evictLocked() {
		t.Fatal("evicted with no replied descriptors")
	}
	tab.mu.Unlock()

	for _, a := range []*alien{a1, a2, a3} {
		f := bufpool.Get(8)
		tab.cacheReply(a, f)
		f.Release() // the table holds its own reference now
	}

	// Touch a1 (as answering a duplicate from the cache does): eviction
	// order becomes a2, a3, a1.
	tab.mu.Lock()
	tab.lruTouchLocked(a1)
	tab.mu.Unlock()

	for _, want := range []Pid{2, 3, 1} {
		tab.mu.Lock()
		before := len(tab.m)
		if !tab.evictLocked() {
			tab.mu.Unlock()
			t.Fatalf("eviction of %v failed", want)
		}
		if len(tab.m) != before-1 {
			tab.mu.Unlock()
			t.Fatal("eviction did not shrink the table")
		}
		_, still := tab.m[want]
		tab.mu.Unlock()
		if still {
			t.Fatalf("expected %v to be the eviction victim", want)
		}
	}
}

// TestAlienLRUDropUnlinks: a dropped descriptor must leave the eviction
// list; a descriptor orphaned by a newer message must not be pushed onto
// it by a late cacheReply (evicting a stale entry would delete the new
// descriptor under the same source key).
func TestAlienLRUDropUnlinks(t *testing.T) {
	var tab alienTable
	tab.init()

	old := &alien{src: 7, seq: 1}
	tab.mu.Lock()
	tab.m[7] = old
	tab.mu.Unlock()
	f := bufpool.Get(8)
	tab.cacheReply(old, f)
	f.Release()
	tab.drop(old)
	tab.mu.Lock()
	if tab.lruHead != nil || tab.lruTail != nil {
		tab.mu.Unlock()
		t.Fatal("dropped descriptor left on the eviction list")
	}
	tab.mu.Unlock()

	// Orphaned descriptor: replaced in the map before its reply lands.
	stale := &alien{src: 9, seq: 1}
	tab.mu.Lock()
	tab.m[9] = stale
	tab.removeLocked(stale)
	fresh := &alien{src: 9, seq: 2}
	tab.m[9] = fresh
	tab.mu.Unlock()
	late := bufpool.Get(8)
	tab.cacheReply(stale, late)
	late.Release() // not stored: the stale descriptor is no longer current
	tab.mu.Lock()
	defer tab.mu.Unlock()
	if stale.onLRU {
		t.Fatal("orphaned descriptor pushed onto the eviction list")
	}
	if tab.m[9] != fresh {
		t.Fatal("fresh descriptor displaced")
	}
}
