package ipc

import (
	"bytes"
	"testing"
	"time"
)

// TestMoveToVecGather: a gather MoveTo must deliver the concatenation of
// its source slices, across packet boundaries that do not line up with
// slice boundaries (slices smaller, equal to, and larger than the chunk
// size), both remotely and locally.
func TestMoveToVecGather(t *testing.T) {
	mesh := NewMemNetwork(11, FaultConfig{})
	na := NewNode(1, mesh.Transport(1), NodeConfig{})
	nb := NewNode(2, mesh.Transport(2), NodeConfig{ChunkSize: 300})
	defer func() { _ = na.Close(); _ = nb.Close(); mesh.Close() }()

	// 7 slices of awkward sizes, 4221 bytes total: packets of 300 bytes
	// straddle slice boundaries everywhere.
	sizes := []int{1, 299, 300, 301, 512, 1024, 1784}
	var want []byte
	vec := make([][]byte, 0, len(sizes))
	for si, n := range sizes {
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(si*131 + i*7)
		}
		vec = append(vec, s)
		want = append(want, s...)
	}

	srv := mustSpawn(nb, "gatherer", func(p *Proc) {
		for {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			if err := p.MoveToVec(src, 0, vec...); err != nil {
				t.Errorf("MoveToVec: %v", err)
			}
			var reply Message
			_ = p.Reply(&reply, src)
		}
	})
	gatherer := Pid(0)
	// Resolve the spawned process's pid via the name service.
	reg := mustAttach(nb, "registrar")
	reg.SetPid(99, srv.Pid(), ScopeBoth)
	nb.Detach(reg)

	client := mustAttach(na, "client")
	defer na.Detach(client)
	gatherer = client.GetPid(99, ScopeBoth)
	if gatherer == 0 {
		t.Fatal("gatherer not resolved")
	}
	buf := make([]byte, len(want))
	var m Message
	if err := client.Send(&m, gatherer, &Segment{Data: buf, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("remote gather MoveTo corrupted the data")
	}

	// Local path: a receiver on the same node gets the same bytes.
	local := mustAttach(nb, "local-client")
	defer nb.Detach(local)
	lbuf := make([]byte, len(want))
	var lm Message
	if err := local.Send(&lm, gatherer, &Segment{Data: lbuf, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lbuf, want) {
		t.Fatal("local gather MoveTo corrupted the data")
	}
}

// TestMoveToVecLossy: gather streaming must survive drops and
// duplication — retransmission re-gathers the resume packet from the
// source slices.
func TestMoveToVecLossy(t *testing.T) {
	mesh := NewMemNetwork(23, FaultConfig{DropProb: 0.15, DupProb: 0.1})
	cfg := NodeConfig{RetransmitTimeout: 10 * time.Millisecond, Retries: 50, ChunkSize: 256}
	na := NewNode(1, mesh.Transport(1), cfg)
	nb := NewNode(2, mesh.Transport(2), cfg)
	defer func() { _ = na.Close(); _ = nb.Close(); mesh.Close() }()

	vec := make([][]byte, 8)
	var want []byte
	for si := range vec {
		s := make([]byte, 777)
		for i := range s {
			s[i] = byte(si ^ i)
		}
		vec[si] = s
		want = append(want, s...)
	}
	srv := mustSpawn(nb, "gatherer", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.MoveToVec(src, 0, vec...); err != nil {
			t.Errorf("MoveToVec under loss: %v", err)
		}
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	buf := make([]byte, len(want))
	var m Message
	if err := client.Send(&m, srv.Pid(), &Segment{Data: buf, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("lossy gather MoveTo corrupted the data")
	}
}
