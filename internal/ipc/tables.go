package ipc

import (
	"sync"
	"time"

	"vkernel/internal/bufpool"
)

// The node's state is decomposed into independently locked subsystems so
// that concurrent transactions only serialize where V semantics require
// it: alien descriptors (duplicate filtering), outstanding Sends, bulk
// transfers, and the name registry each have their own lock, and the
// process table is striped (see proctable.go).

// alienTable owns the remote-sender descriptors (§3.2). Its mutex also
// guards every alien's mutable fields, so the check-and-insert in
// handleSend — the duplicate filter — is atomic.
//
// Replied descriptors — the only evictable ones — are threaded on an
// intrusive doubly-linked LRU list, maintained on every touch (reply,
// duplicate answered from the reply cache), so eviction under descriptor
// pressure is O(1) instead of a full-map scan under the table lock.
type alienTable struct {
	mu      sync.Mutex
	m       map[Pid]*alien
	lruHead *alien // least recently touched replied descriptor
	lruTail *alien // most recently touched
	closed  bool   // set by drainRelease; no descriptors or frames after
}

func (t *alienTable) init() { t.m = make(map[Pid]*alien) }

// lruPushLocked appends a as the most recently touched evictable
// descriptor; caller holds t.mu and a is not on the list.
func (t *alienTable) lruPushLocked(a *alien) {
	a.onLRU = true
	a.lruPrev = t.lruTail
	a.lruNext = nil
	if t.lruTail != nil {
		t.lruTail.lruNext = a
	} else {
		t.lruHead = a
	}
	t.lruTail = a
}

// lruUnlinkLocked removes a from the eviction list if present; caller
// holds t.mu.
func (t *alienTable) lruUnlinkLocked(a *alien) {
	if !a.onLRU {
		return
	}
	if a.lruPrev != nil {
		a.lruPrev.lruNext = a.lruNext
	} else {
		t.lruHead = a.lruNext
	}
	if a.lruNext != nil {
		a.lruNext.lruPrev = a.lruPrev
	} else {
		t.lruTail = a.lruPrev
	}
	a.lruPrev, a.lruNext = nil, nil
	a.onLRU = false
}

// lruTouchLocked moves a to the most-recently-touched end; caller holds
// t.mu and a is on the list.
func (t *alienTable) lruTouchLocked(a *alien) {
	if a.lruNext == nil {
		return // already the tail
	}
	t.lruUnlinkLocked(a)
	t.lruPushLocked(a)
}

// evictLocked reclaims the least-recently-touched replied alien in O(1);
// caller holds t.mu. Unreplied descriptors represent exchanges still in
// progress and are never on the list.
func (t *alienTable) evictLocked() bool {
	victim := t.lruHead
	if victim == nil {
		return false
	}
	t.removeLocked(victim)
	return true
}

// removeLocked deletes a's map entry and eviction-list membership and
// returns the table's reference on the cached reply frame; caller holds
// t.mu. In-flight transmitters of the frame hold their own references.
func (t *alienTable) removeLocked(a *alien) {
	t.lruUnlinkLocked(a)
	delete(t.m, a.src)
	a.replyFrame.Release()
	a.replyFrame = nil
}

// markReceived records delivery of the alien's message to a local process.
func (t *alienTable) markReceived(a *alien, by Pid) {
	t.mu.Lock()
	a.received = true
	a.awaiting = by
	t.mu.Unlock()
}

// cacheReply stores the encoded reply frame so duplicate retransmissions
// are answered without re-executing the request, and makes the descriptor
// evictable. The table takes its own reference on the frame — dropped
// when the descriptor goes — unless the descriptor was already replaced
// or the table has shut down, in which case the frame is left to the
// caller alone.
func (t *alienTable) cacheReply(a *alien, f *bufpool.Buf) {
	t.mu.Lock()
	a.replied = true
	if !t.closed && t.m[a.src] == a {
		a.replyFrame = f.Retain()
		if !a.onLRU {
			t.lruPushLocked(a)
		}
	}
	t.mu.Unlock()
}

// markShed flags the descriptor's message as refused by backpressure and
// makes the descriptor evictable: it only exists to keep filtering
// duplicates of the shed Send, so it must not pin table capacity.
func (t *alienTable) markShed(a *alien) {
	t.mu.Lock()
	if t.m[a.src] == a {
		a.shed = true
		if !a.onLRU {
			t.lruPushLocked(a)
		}
	}
	t.mu.Unlock()
}

// drop removes the descriptor if it is still the current one for its
// source (a newer message may have replaced it meanwhile).
func (t *alienTable) drop(a *alien) {
	t.mu.Lock()
	if t.m[a.src] == a {
		t.removeLocked(a)
	}
	t.mu.Unlock()
}

// dropAwaiting removes every unreplied descriptor whose message was
// received by pid. When that process dies without replying, the sender's
// retransmissions must find no descriptor — and so be Nacked — rather
// than be answered reply-pending forever.
func (t *alienTable) dropAwaiting(pid Pid) {
	t.mu.Lock()
	for _, a := range t.m {
		if a.received && !a.replied && a.awaiting == pid {
			t.removeLocked(a)
		}
	}
	t.mu.Unlock()
}

// drainRelease closes the table, returning every cached reply frame to
// the pool. Called once, after the node's transport has quiesced.
func (t *alienTable) drainRelease() {
	t.mu.Lock()
	t.closed = true
	for _, a := range t.m {
		a.replyFrame.Release()
		a.replyFrame = nil
	}
	t.m = map[Pid]*alien{}
	t.lruHead, t.lruTail = nil, nil
	t.mu.Unlock()
}

// pendingTable owns the outstanding remote Sends, keyed by interkernel
// sequence number.
type pendingTable struct {
	mu     sync.Mutex
	m      map[uint32]*pendingSend
	closed bool
}

func (t *pendingTable) init() { t.m = make(map[uint32]*pendingSend) }

// add registers ps and arms its retransmission timer atomically, so a
// reply processed concurrently can never observe a nil timer. The arm
// callback runs inside the critical section and is also where the caller
// (re)initializes the descriptor's per-exchange fields: processes reuse
// one pendingSend across Sends, and every concurrent consumer validates
// a descriptor under this lock before touching it, so the re-init must
// be ordered by the same lock.
func (t *pendingTable) add(ps *pendingSend, arm func() *time.Timer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	ps.timer = arm() // first: arm initializes ps.seq before the insert reads it
	t.m[ps.seq] = ps
	return nil
}

// take removes and returns the live entry for seq addressed to dst,
// marking it done; the caller then owns result delivery.
func (t *pendingTable) take(seq uint32, dst Pid) (*pendingSend, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps, ok := t.m[seq]
	if !ok || ps.proc.pid != dst || ps.done {
		return nil, false
	}
	ps.done = true
	delete(t.m, seq)
	return ps, true
}

// drain closes the table and returns every live entry, marked done.
func (t *pendingTable) drain() []*pendingSend {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	out := make([]*pendingSend, 0, len(t.m))
	for _, ps := range t.m {
		ps.done = true
		out = append(out, ps)
	}
	t.m = map[uint32]*pendingSend{}
	return out
}

// moveTable owns the outgoing bulk-transfer operations and, under a
// separate lock, the receive-side stream-reassembly state, so inbound
// data packets never contend with outbound transfers.
type moveTable struct {
	mu     sync.Mutex
	m      map[uint32]*moveOp
	closed bool

	rxMu sync.Mutex
	rx   map[moveKey]*moveRxState
	done map[Pid]doneTransfer
}

func (t *moveTable) init() {
	t.m = make(map[uint32]*moveOp)
	t.rx = make(map[moveKey]*moveRxState)
	t.done = make(map[Pid]doneTransfer)
}

// add registers op and arms its timeout atomically (see pendingTable.add).
func (t *moveTable) add(op *moveOp, arm func() *time.Timer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	t.m[op.seq] = op
	op.timer = arm()
	return nil
}

// complete removes op if it is still current and not done; the caller
// then owns delivery on ackCh.
func (t *moveTable) complete(op *moveOp) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m[op.seq] != op || op.done {
		return false
	}
	op.done = true
	delete(t.m, op.seq)
	return true
}

// drain closes the table and returns every live entry, marked done.
func (t *moveTable) drain() []*moveOp {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	out := make([]*moveOp, 0, len(t.m))
	for _, op := range t.m {
		op.done = true
		out = append(out, op)
	}
	t.m = map[uint32]*moveOp{}
	return out
}

// nameTable owns the logical-name registry and the outstanding broadcast
// lookups (§3.1).
type nameTable struct {
	mu      sync.Mutex
	names   map[uint32]nameEntry
	lookups map[uint32][]chan Pid
}

func (t *nameTable) init() {
	t.names = make(map[uint32]nameEntry)
	t.lookups = make(map[uint32][]chan Pid)
}
