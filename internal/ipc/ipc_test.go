package ipc

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"vkernel/internal/vproto"
)

// mustSpawn / mustAttach panic on pid exhaustion, which test-sized
// workloads never hit.
func mustSpawn(n *Node, name string, body func(p *Proc)) *Proc {
	p, err := n.Spawn(name, body)
	if err != nil {
		panic(err)
	}
	return p
}

func mustAttach(n *Node, name string) *Proc {
	p, err := n.Attach(name)
	if err != nil {
		panic(err)
	}
	return p
}

// pairOnMesh builds two nodes connected by an in-memory mesh.
func pairOnMesh(t *testing.T, faults FaultConfig, cfg NodeConfig) (*Node, *Node, *MemNetwork) {
	t.Helper()
	mesh := NewMemNetwork(1, faults)
	na := NewNode(1, mesh.Transport(1), cfg)
	nb := NewNode(2, mesh.Transport(2), cfg)
	t.Cleanup(func() {
		_ = na.Close()
		_ = nb.Close()
		mesh.Close()
	})
	return na, nb, mesh
}

// echoOn spawns a Receive/Reply echo server that doubles word 1.
func echoOn(n *Node, iterations int) Pid {
	ready := make(chan Pid, 1)
	mustSpawn(n, "echo", func(p *Proc) {
		ready <- p.Pid()
		for i := 0; iterations <= 0 || i < iterations; i++ {
			msg, src, err := p.Receive()
			if err != nil {
				return
			}
			var reply Message
			reply.SetWord(1, msg.Word(1)*2)
			if err := p.Reply(&reply, src); err != nil {
				return
			}
		}
	})
	return <-ready
}

func TestLocalExchange(t *testing.T) {
	na, _, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	server := echoOn(na, 1)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	m.SetWord(1, 21)
	if err := client.Send(&m, server, nil); err != nil {
		t.Fatal(err)
	}
	if m.Word(1) != 42 {
		t.Fatalf("reply word = %d", m.Word(1))
	}
}

func TestRemoteExchange(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	server := echoOn(nb, 1)
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	m.SetWord(1, 7)
	if err := client.Send(&m, server, nil); err != nil {
		t.Fatal(err)
	}
	if m.Word(1) != 14 {
		t.Fatalf("reply word = %d", m.Word(1))
	}
	if na.Stats().RemoteSends != 1 {
		t.Fatalf("stats: %+v", na.Stats())
	}
}

func TestSendToMissingProcessNacks(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	err := client.Send(&m, vproto.MakePid(nb.Host(), 999), nil)
	if err != ErrNoProcess {
		t.Fatalf("err = %v", err)
	}
}

func TestSendToDeadHostTimesOut(t *testing.T) {
	na, _, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{
		RetransmitTimeout: 5 * time.Millisecond,
		Retries:           3,
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	start := time.Now()
	err := client.Send(&m, vproto.MakePid(55, 1), nil)
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("gave up after %v, want >= 3 retries x 5ms", elapsed)
	}
}

func TestFCFSOrderLocal(t *testing.T) {
	na, _, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	var order []uint32
	var mu sync.Mutex
	done := make(chan struct{})
	srv := mustAttach(na, "server")
	defer na.Detach(srv)

	// Wall-clock staggering: gaps must be wide enough that OS scheduling
	// jitter cannot reorder the arrivals (the simulator's deterministic
	// FCFS test lives in internal/core).
	const n = 5
	var wg sync.WaitGroup
	for i := uint32(1); i <= n; i++ {
		i := i
		wg.Add(1)
		mustSpawn(na, "client", func(p *Proc) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 60 * time.Millisecond)
			var m Message
			m.SetWord(1, i)
			_ = p.Send(&m, srv.Pid(), nil)
		})
	}
	go func() {
		for i := 0; i < n; i++ {
			msg, src, err := srv.Receive()
			if err != nil {
				return
			}
			mu.Lock()
			order = append(order, msg.Word(1))
			mu.Unlock()
			var reply Message
			_ = srv.Reply(&reply, src)
		}
		close(done)
	}()
	wg.Wait()
	<-done
	for i := 0; i < n; i++ {
		if order[i] != uint32(i+1) {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPageReadViaReplyWithSegment(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(i * 3)
	}
	srv := mustSpawn(nb, "fs", func(p *Proc) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		if _, size, access, ok := msg.Segment(); !ok || access&SegWrite == 0 || size != 512 {
			t.Errorf("bad grant")
		}
		var reply Message
		if err := p.ReplyWithSegment(&reply, src, 0, page); err != nil {
			t.Error(err)
		}
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	buf := make([]byte, 512)
	var m Message
	if err := client.Send(&m, srv.Pid(), &Segment{Data: buf, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page) {
		t.Fatal("page corrupted")
	}
}

func TestPageWriteViaInlineSegment(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(200 - i)
	}
	got := make(chan []byte, 1)
	srv := mustSpawn(nb, "fs", func(p *Proc) {
		buf := make([]byte, 1024)
		_, src, n, err := p.ReceiveWithSegment(buf)
		if err != nil {
			return
		}
		got <- append([]byte(nil), buf[:n]...)
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, srv.Pid(), &Segment{Data: page, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	if g := <-got; !bytes.Equal(g, page) {
		t.Fatal("inline write corrupted")
	}
}

func TestMoveToRemote(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	const size = 10_000
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 119)
	}
	srv := mustSpawn(nb, "server", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.MoveTo(src, 0, data); err != nil {
			t.Error(err)
		}
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	buf := make([]byte, size)
	var m Message
	if err := client.Send(&m, srv.Pid(), &Segment{Data: buf, Access: SegWrite}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("MoveTo corrupted data")
	}
}

func TestMoveFromRemote(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	const size = 7_000
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 101)
	}
	got := make(chan []byte, 1)
	srv := mustSpawn(nb, "server", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		buf := make([]byte, size)
		if err := p.MoveFrom(src, 0, buf); err != nil {
			t.Error(err)
		}
		got <- buf
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, srv.Pid(), &Segment{Data: data, Access: SegRead}); err != nil {
		t.Fatal(err)
	}
	if g := <-got; !bytes.Equal(g, data) {
		t.Fatal("MoveFrom corrupted data")
	}
}

func TestMoveWithoutGrantFails(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	errs := make(chan error, 2)
	srv := mustSpawn(nb, "server", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		errs <- p.MoveTo(src, 0, make([]byte, 64))
		errs <- p.MoveFrom(src, 0, make([]byte, 64))
		var reply Message
		_ = p.Reply(&reply, src)
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, srv.Pid(), nil); err != nil {
		t.Fatal(err)
	}
	if e := <-errs; e != ErrNoAccess {
		t.Fatalf("MoveTo err = %v", e)
	}
	if e := <-errs; e != ErrNoAccess {
		t.Fatalf("MoveFrom err = %v", e)
	}
}

func TestReplyWithoutReceiveFails(t *testing.T) {
	na, _, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	p := mustAttach(na, "p")
	defer na.Detach(p)
	var m Message
	if err := p.Reply(&m, vproto.MakePid(1, 99)); err != ErrNotAwaitingReply {
		t.Fatalf("err = %v", err)
	}
}

func TestNameService(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{GetPidTimeout: 20 * time.Millisecond})
	server := echoOn(nb, 1)
	reg := mustAttach(nb, "registrar")
	reg.SetPid(7, server, ScopeBoth)
	nb.Detach(reg)

	client := mustAttach(na, "client")
	defer na.Detach(client)
	got := client.GetPid(7, ScopeBoth)
	if got != server {
		t.Fatalf("GetPid = %v, want %v", got, server)
	}
	if unknown := client.GetPid(99, ScopeBoth); unknown != vproto.Nil {
		t.Fatalf("unknown id resolved to %v", unknown)
	}
	// Local-only scope must not broadcast.
	if localOnly := client.GetPid(7, ScopeLocal); localOnly != vproto.Nil {
		t.Fatalf("local lookup found remote registration: %v", localOnly)
	}
}

func TestManyConcurrentClients(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	server := echoOn(nb, 200)
	const clients = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		mustSpawn(na, "client", func(p *Proc) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var m Message
				m.SetWord(1, uint32(c*100+i))
				if err := p.Send(&m, server, nil); err != nil {
					errs <- err
					return
				}
				if m.Word(1) != uint32(c*100+i)*2 {
					errs <- ErrBadAddress
					return
				}
			}
		})
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestReceiverDeathAfterReceiveNacks: a process that receives a remote
// message and dies without replying must not hold the sender in
// reply-pending forever — its alien descriptor is dropped, so the next
// retransmission is Nacked and the Send fails with ErrNoProcess.
func TestReceiverDeathAfterReceiveNacks(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{
		RetransmitTimeout: 5 * time.Millisecond,
		Retries:           50,
	})
	started := make(chan Pid, 1)
	mustSpawn(nb, "doomed", func(p *Proc) {
		started <- p.Pid()
		_, _, _ = p.Receive()
		// Exit without replying.
	})
	server := <-started
	client := mustAttach(na, "client")
	defer na.Detach(client)
	var m Message
	if err := client.Send(&m, server, nil); err != ErrNoProcess {
		t.Fatalf("err = %v, want ErrNoProcess", err)
	}
}

func TestNodeCloseReleasesBlockedOps(t *testing.T) {
	mesh := NewMemNetwork(1, FaultConfig{})
	na := NewNode(1, mesh.Transport(1), NodeConfig{RetransmitTimeout: time.Hour})
	client := mustAttach(na, "client")
	done := make(chan error, 1)
	go func() {
		var m Message
		done <- client.Send(&m, vproto.MakePid(9, 1), nil)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := na.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Send not released by Close")
	}
	mesh.Close()
}

// TestFailedReplyLeavesSenderAwaiting: a Reply whose segment data fails
// validation (no grant, too big) must not consume the exchange — the
// replier answers again and the sender completes, instead of being
// stranded in reply-pending limbo with its alien descriptor pinned.
func TestFailedReplyLeavesSenderAwaiting(t *testing.T) {
	na, nb, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	srv := mustSpawn(nb, "server", func(p *Proc) {
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		var reply Message
		// The client granted 64 bytes; 512 must fail without consuming.
		if err := p.ReplyWithSegment(&reply, src, 0, make([]byte, 512)); err != ErrBadAddress {
			t.Errorf("oversized ReplyWithSegment err = %v, want ErrBadAddress", err)
		}
		reply.SetWord(1, 9)
		if err := p.Reply(&reply, src); err != nil {
			t.Errorf("recovery Reply failed: %v", err)
		}
	})
	client := mustAttach(na, "client")
	defer na.Detach(client)
	buf := make([]byte, 64)
	var m Message
	if err := client.Send(&m, srv.Pid(), &Segment{Data: buf, Access: SegWrite}); err != nil {
		t.Fatalf("sender stranded by failed reply: %v", err)
	}
	if m.Word(1) != 9 {
		t.Fatalf("reply word = %d", m.Word(1))
	}
}

// TestFailedLocalReplyLeavesSenderAwaiting is the same property on the
// local (same-node) fast path.
func TestFailedLocalReplyLeavesSenderAwaiting(t *testing.T) {
	na, _, _ := pairOnMesh(t, FaultConfig{}, NodeConfig{})
	srv := mustAttach(na, "server")
	defer na.Detach(srv)
	done := make(chan error, 1)
	mustSpawn(na, "client", func(p *Proc) {
		var m Message
		done <- p.Send(&m, srv.Pid(), nil) // no grant at all
	})
	_, src, err := srv.Receive()
	if err != nil {
		t.Fatal(err)
	}
	var reply Message
	if err := srv.ReplyWithSegment(&reply, src, 0, []byte("x")); err != ErrNoAccess {
		t.Fatalf("ungranted ReplyWithSegment err = %v, want ErrNoAccess", err)
	}
	if err := srv.Reply(&reply, src); err != nil {
		t.Fatalf("recovery Reply failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("sender stranded: %v", err)
	}
}
