//go:build linux && (arm64 || riscv64 || loong64)

package ipc

// recvmmsg/sendmmsg syscall numbers from the asm-generic table, shared
// by every Linux architecture added after it existed (arm64, riscv64,
// loong64). Legacy ABIs with their own tables (mips, ppc64, s390x) are
// excluded from the fast path by mmsg_linux.go's build tags and take
// the portable per-datagram fallback instead.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
