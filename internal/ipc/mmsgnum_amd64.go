//go:build linux && amd64

package ipc

// recvmmsg/sendmmsg syscall numbers for the x86-64 ABI; the frozen
// syscall package predates sendmmsg, so they are declared here.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
