package ipc

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"vkernel/internal/bufpool"
	"vkernel/internal/vproto"
)

// udpQueueDepth bounds datagrams buffered between the socket read loop
// and the handler workers; when full, the read loop blocks and further
// arrivals spill into the kernel socket buffer (and are eventually
// dropped — the protocol recovers by retransmission, as it does for any
// datagram loss).
const udpQueueDepth = 512

// dispatchWorkers sizes a packet-dispatch pool: one worker per available
// CPU, at least 2, and at most limit when limit > 0 (so a large host does
// not hold dozens of idle goroutines per transport).
func dispatchWorkers(limit int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	if limit > 0 && w > limit {
		w = limit
	}
	return w
}

// UDPTransport carries interkernel packets in UDP datagrams — the modern
// stand-in for the paper's "raw Ethernet data link level": an unreliable,
// unordered datagram service with no transport layer on top. Peers are
// registered explicitly (the analogue of the §3.1 logical-host-to-network
// address table); Broadcast sends to every registered peer.
//
// Received datagrams are dispatched to a bounded worker pool rather than
// handled inline in the single socket read loop, so one host's packet
// processing scales across cores; the handler must therefore be safe for
// concurrent invocation (Node is).
//
// Receive buffers are pooled and reference counted. The read loop fills a
// fresh pooled frame per datagram and transfers its single reference to
// the queue; the worker that dequeues it owns that reference across the
// handler upcall and releases it when the handler returns. The read loop
// never touches a frame after handing it off, so a worker can never
// observe a recycled buffer mid-dispatch — the lifetime audit is the ref
// count.
type UDPTransport struct {
	conn    *net.UDPConn
	handler atomic.Pointer[func(*bufpool.Buf)]

	mu      sync.Mutex
	peers   map[LogicalHost]*net.UDPAddr
	closed  bool
	started bool
	queue   chan *bufpool.Buf
	wg      sync.WaitGroup
}

// NewUDPTransport opens a UDP socket on the given address (use
// "127.0.0.1:0" for tests). The read loop starts when SetHandler installs
// the upcall, so no packet can arrive before there is a handler for it.
func NewUDPTransport(listen string) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("ipc: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen %q: %w", listen, err)
	}
	return &UDPTransport{
		conn:  conn,
		peers: make(map[LogicalHost]*net.UDPAddr),
		queue: make(chan *bufpool.Buf, udpQueueDepth),
	}, nil
}

// Addr returns the transport's bound UDP address.
func (t *UDPTransport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer registers the network address of a logical host.
func (t *UDPTransport) AddPeer(host LogicalHost, addr *net.UDPAddr) {
	t.mu.Lock()
	t.peers[host] = addr
	t.mu.Unlock()
}

// readLoop pulls datagrams off the socket and feeds the worker pool. It
// owns the queue and closes it on socket shutdown. Each datagram lands
// in its own pooled frame whose single reference rides the queue to a
// worker — no copy, and no reuse until that worker's release. Datagrams
// larger than a maximal interkernel packet are truncated and fail the
// decode checksum, as any non-protocol traffic does.
func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	defer close(t.queue)
	for {
		f := bufpool.Get(vproto.MaxWireSize)
		n, from, err := t.conn.ReadFromUDP(f.Data)
		if err != nil {
			f.Release()
			return // closed
		}
		f.Data = f.Data[:n]
		t.learn(f.Data, from)
		t.queue <- f
	}
}

// worker drains the queue, invoking the handler on each frame and
// returning the queue's reference afterwards. The handler is an atomic
// pointer rather than a field under t.mu, so dispatch never contends on
// the transport mutex and later SetHandler calls still take effect.
func (t *UDPTransport) worker() {
	defer t.wg.Done()
	for f := range t.queue {
		if h := t.handler.Load(); h != nil {
			(*h)(f)
		}
		f.Release()
	}
}

// learn discovers logical-host-to-network-address correspondences from
// received packets (§3.1), so replies to broadcast lookups and messages
// from previously unknown peers can be unicast.
func (t *UDPTransport) learn(pkt []byte, from *net.UDPAddr) {
	if len(pkt) < 12 || pkt[1] != vproto.Version {
		return
	}
	src := vproto.Pid(binary.BigEndian.Uint32(pkt[8:12]))
	host := src.Host()
	if host == 0 {
		return
	}
	t.mu.Lock()
	t.peers[host] = from
	t.mu.Unlock()
}

// Send implements Transport.
func (t *UDPTransport) Send(to LogicalHost, pkt []byte) error {
	t.mu.Lock()
	addr := t.peers[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if addr == nil {
		// Unknown host: broadcast, as the kernel does (§3.1).
		return t.Broadcast(pkt)
	}
	_, err := t.conn.WriteToUDP(pkt, addr)
	return err
}

// Broadcast implements Transport.
func (t *UDPTransport) Broadcast(pkt []byte) error {
	t.mu.Lock()
	addrs := make([]*net.UDPAddr, 0, len(t.peers))
	for _, a := range t.peers {
		addrs = append(addrs, a)
	}
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for _, a := range addrs {
		if _, err := t.conn.WriteToUDP(pkt, a); err != nil {
			return err
		}
	}
	return nil
}

// SetHandler implements Transport. The first call starts the read loop
// and worker pool; installing the handler before any packet can be read
// closes the seed's startup race where early datagrams were dropped.
func (t *UDPTransport) SetHandler(h func(*bufpool.Buf)) {
	if h == nil {
		t.handler.Store(nil)
	} else {
		t.handler.Store(&h)
	}
	workers := dispatchWorkers(16)
	t.mu.Lock()
	start := !t.started && !t.closed
	if start {
		t.started = true
		t.wg.Add(1 + workers)
	}
	t.mu.Unlock()
	if start {
		go t.readLoop()
		for i := 0; i < workers; i++ {
			go t.worker()
		}
	}
}

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	t.wg.Wait() // read loop exits on the closed socket; workers drain
	return err
}
