package ipc

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"vkernel/internal/vproto"
)

// UDPTransport carries interkernel packets in UDP datagrams — the modern
// stand-in for the paper's "raw Ethernet data link level": an unreliable,
// unordered datagram service with no transport layer on top. Peers are
// registered explicitly (the analogue of the §3.1 logical-host-to-network
// address table); Broadcast sends to every registered peer.
type UDPTransport struct {
	conn *net.UDPConn

	mu      sync.Mutex
	peers   map[LogicalHost]*net.UDPAddr
	handler func([]byte)
	closed  bool
	done    chan struct{}
}

// NewUDPTransport opens a UDP socket on the given address (use
// "127.0.0.1:0" for tests).
func NewUDPTransport(listen string) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("ipc: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen %q: %w", listen, err)
	}
	t := &UDPTransport{
		conn:  conn,
		peers: make(map[LogicalHost]*net.UDPAddr),
		done:  make(chan struct{}),
	}
	go t.readLoop()
	return t, nil
}

// Addr returns the transport's bound UDP address.
func (t *UDPTransport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer registers the network address of a logical host.
func (t *UDPTransport) AddPeer(host LogicalHost, addr *net.UDPAddr) {
	t.mu.Lock()
	t.peers[host] = addr
	t.mu.Unlock()
}

func (t *UDPTransport) readLoop() {
	defer close(t.done)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		t.learn(buf[:n], from)
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			pkt := make([]byte, n)
			copy(pkt, buf[:n])
			h(pkt)
		}
	}
}

// learn discovers logical-host-to-network-address correspondences from
// received packets (§3.1), so replies to broadcast lookups and messages
// from previously unknown peers can be unicast.
func (t *UDPTransport) learn(pkt []byte, from *net.UDPAddr) {
	if len(pkt) < 12 || pkt[1] != vproto.Version {
		return
	}
	src := vproto.Pid(binary.BigEndian.Uint32(pkt[8:12]))
	host := src.Host()
	if host == 0 {
		return
	}
	t.mu.Lock()
	t.peers[host] = from
	t.mu.Unlock()
}

// Send implements Transport.
func (t *UDPTransport) Send(to LogicalHost, pkt []byte) error {
	t.mu.Lock()
	addr := t.peers[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if addr == nil {
		// Unknown host: broadcast, as the kernel does (§3.1).
		return t.Broadcast(pkt)
	}
	_, err := t.conn.WriteToUDP(pkt, addr)
	return err
}

// Broadcast implements Transport.
func (t *UDPTransport) Broadcast(pkt []byte) error {
	t.mu.Lock()
	addrs := make([]*net.UDPAddr, 0, len(t.peers))
	for _, a := range t.peers {
		addrs = append(addrs, a)
	}
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for _, a := range addrs {
		if _, err := t.conn.WriteToUDP(pkt, a); err != nil {
			return err
		}
	}
	return nil
}

// SetHandler implements Transport.
func (t *UDPTransport) SetHandler(h func([]byte)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	return err
}
