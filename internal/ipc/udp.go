package ipc

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"vkernel/internal/bufpool"
	"vkernel/internal/obs"
	"vkernel/internal/vproto"
)

// udpQueueDepth bounds datagrams buffered between the socket read loop
// and the handler workers; when full, the read loop blocks and further
// arrivals spill into the kernel socket buffer (and are eventually
// dropped — the protocol recovers by retransmission, as it does for any
// datagram loss).
const udpQueueDepth = 512

// UDPConfig tunes a UDPTransport; the zero value gets the defaults that
// used to be compile-time constants.
type UDPConfig struct {
	// Metrics is the observability registry for the transport's net.*
	// counters (same names as BatchedUDPTransport's, minus the batching
	// ones — this transport moves one datagram per kernel crossing).
	// Nil gets a private registry.
	Metrics *obs.Registry
	// QueueDepth bounds datagrams buffered between the socket read loop
	// and the handler workers (0 = 512).
	QueueDepth int
	// Workers sizes the packet-dispatch pool (0 = one per CPU, min 2,
	// capped at 16).
	Workers int
}

func (c UDPConfig) withDefaults() UDPConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = udpQueueDepth
	}
	if c.Workers <= 0 {
		c.Workers = dispatchWorkers(16)
	}
	return c
}

// dispatchWorkers sizes a packet-dispatch pool: one worker per available
// CPU, at least 2, and at most limit when limit > 0 (so a large host does
// not hold dozens of idle goroutines per transport).
func dispatchWorkers(limit int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	if limit > 0 && w > limit {
		w = limit
	}
	return w
}

// UDPTransport carries interkernel packets in UDP datagrams — the modern
// stand-in for the paper's "raw Ethernet data link level": an unreliable,
// unordered datagram service with no transport layer on top. Peers are
// registered explicitly (the analogue of the §3.1 logical-host-to-network
// address table); Broadcast sends to every registered peer.
//
// Received datagrams are dispatched to a bounded worker pool rather than
// handled inline in the single socket read loop, so one host's packet
// processing scales across cores; the handler must therefore be safe for
// concurrent invocation (Node is).
//
// Receive buffers are pooled and reference counted. The read loop fills a
// fresh pooled frame per datagram and transfers its single reference to
// the queue; the worker that dequeues it owns that reference across the
// handler upcall and releases it when the handler returns. The read loop
// never touches a frame after handing it off, so a worker can never
// observe a recycled buffer mid-dispatch — the lifetime audit is the ref
// count.
//
// This transport pays one kernel crossing per datagram in each
// direction; BatchedUDPTransport amortizes those crossings with
// recvmmsg/sendmmsg vectors on Linux.
type UDPTransport struct {
	conn    *net.UDPConn
	cfg     UDPConfig
	handler atomic.Pointer[func(*bufpool.Buf)]
	peers   peerTable

	sends *obs.Counter // set once at construction
	recvs *obs.Counter

	mu      sync.Mutex
	closed  bool
	started bool
	queue   chan *bufpool.Buf
	wg      sync.WaitGroup
}

// NewUDPTransport opens a UDP socket on the given address (use
// "127.0.0.1:0" for tests) with default tuning. The read loop starts when
// SetHandler installs the upcall, so no packet can arrive before there is
// a handler for it.
func NewUDPTransport(listen string) (*UDPTransport, error) {
	return NewUDPTransportConfig(listen, UDPConfig{})
}

// NewUDPTransportConfig is NewUDPTransport with explicit queue and
// worker-pool tuning.
func NewUDPTransportConfig(listen string, cfg UDPConfig) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("ipc: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen %q: %w", listen, err)
	}
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	t := &UDPTransport{
		conn:  conn,
		cfg:   cfg,
		queue: make(chan *bufpool.Buf, cfg.QueueDepth),
		sends: reg.Counter("net.sends"),
		recvs: reg.Counter("net.recvs"),
	}
	t.peers.init()
	return t, nil
}

// Addr returns the transport's bound UDP address.
func (t *UDPTransport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer registers the network address of a logical host.
func (t *UDPTransport) AddPeer(host LogicalHost, addr *net.UDPAddr) {
	t.peers.add(host, addr)
}

// readLoop pulls datagrams off the socket and feeds the worker pool. It
// owns the queue and closes it on socket shutdown. The socket read lands
// in a loop-owned scratch buffer, not a pooled frame: a pooled frame
// posted before the blocking read would stay checked out for as long as
// the socket sits idle, so an idle transport would pin pool memory
// forever (and read as a leak to anything auditing Outstanding). Only
// once a datagram has actually arrived is a pooled frame taken — sized
// to the datagram, so small packets draw from the small size classes —
// and its single reference rides the queue to a worker, with no reuse
// until that worker's release. Datagrams larger than a maximal
// interkernel packet are truncated and fail the decode checksum, as any
// non-protocol traffic does.
func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	defer close(t.queue)
	scratch := make([]byte, vproto.MaxWireSize)
	for {
		n, from, err := t.conn.ReadFromUDP(scratch)
		if err != nil {
			return // closed
		}
		f := bufpool.Get(n)
		copy(f.Data, scratch[:n])
		t.peers.learn(f.Data, from)
		t.recvs.Add(1)
		t.queue <- f
	}
}

// worker drains the queue, invoking the handler on each frame and
// returning the queue's reference afterwards. The handler is an atomic
// pointer rather than a field under t.mu, so dispatch never contends on
// the transport mutex and later SetHandler calls still take effect.
func (t *UDPTransport) worker() {
	defer t.wg.Done()
	for f := range t.queue {
		if h := t.handler.Load(); h != nil {
			(*h)(f)
		}
		f.Release()
	}
}

// Send implements Transport.
func (t *UDPTransport) Send(to LogicalHost, pkt []byte) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	addr := t.peers.get(to)
	if addr == nil {
		// Unknown host: broadcast, as the kernel does (§3.1).
		return t.Broadcast(pkt)
	}
	t.sends.Add(1)
	_, err := t.conn.WriteToUDP(pkt, addr)
	return err
}

// Broadcast implements Transport. Delivery is best effort per peer: one
// unreachable address must not starve the rest of the mesh (a broadcast
// name lookup still has to reach the peers that can answer), so errors
// are collected rather than aborting the sweep, and the first one is
// returned. The address snapshot is cached in the peer table and reused
// until AddPeer or learning actually changes the peer set.
func (t *UDPTransport) Broadcast(pkt []byte) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var first error
	for _, a := range t.peers.snapshot() {
		if _, err := t.conn.WriteToUDP(pkt, a); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetHandler implements Transport. The first call starts the read loop
// and worker pool; installing the handler before any packet can be read
// closes the seed's startup race where early datagrams were dropped.
func (t *UDPTransport) SetHandler(h func(*bufpool.Buf)) {
	if h == nil {
		t.handler.Store(nil)
	} else {
		t.handler.Store(&h)
	}
	workers := t.cfg.Workers
	t.mu.Lock()
	start := !t.started && !t.closed
	if start {
		t.started = true
		t.wg.Add(1 + workers)
	}
	t.mu.Unlock()
	if start {
		go t.readLoop()
		for i := 0; i < workers; i++ {
			go t.worker()
		}
	}
}

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	t.wg.Wait() // read loop exits on the closed socket; workers drain
	return err
}
