package netpenalty

import (
	"testing"

	"vkernel/internal/cost"
	"vkernel/internal/ether"
	"vkernel/internal/nic"
)

// Table 4-1 of the paper: 3 Mb Ethernet SUN network penalty, in ms.
var table41 = []struct {
	bytes   int
	want8   float64
	want10  float64
	netTime float64
}{
	{64, 0.80, 0.65, .174},
	{128, 1.20, 0.96, .348},
	{256, 2.00, 1.62, .696},
	{512, 3.65, 3.00, 1.392},
	{1024, 6.95, 5.83, 2.784},
}

func TestMeasureMatchesTable41(t *testing.T) {
	net := ether.Ethernet3Mb()
	for _, row := range table41 {
		for _, mhz := range []float64{8, 10} {
			prof := cost.MC68000(mhz, cost.Iface3Mb)
			got, err := Measure(prof, net, nic.Config{}, row.bytes, 200)
			if err != nil {
				t.Fatal(err)
			}
			want := row.want8
			if mhz == 10 {
				want = row.want10
			}
			g := got.Milliseconds()
			if g < want*0.93 || g > want*1.07 {
				t.Errorf("%d bytes @ %v MHz: penalty %.3f ms, paper %.2f", row.bytes, mhz, g, want)
			}
		}
	}
}

func TestMeasureAgreesWithAnalytic(t *testing.T) {
	net := ether.Ethernet3Mb()
	prof := cost.MC68000(8, cost.Iface3Mb)
	for _, n := range []int{64, 256, 1024} {
		m, err := Measure(prof, net, nic.Config{}, n, 100)
		if err != nil {
			t.Fatal(err)
		}
		a := Analytic(prof, net, n)
		diff := (m - a).Milliseconds()
		if diff < -0.01 || diff > 0.01 {
			t.Errorf("n=%d: measured %v, analytic %v", n, m, a)
		}
	}
}

// The linear fit the paper quotes: P(n) ≈ .0064 n + .390 ms at 8 MHz.
func TestPenaltyLinearFit(t *testing.T) {
	net := ether.Ethernet3Mb()
	prof := cost.MC68000(8, cost.Iface3Mb)
	for _, n := range []int{100, 300, 700, 1000} {
		got := Analytic(prof, net, n).Milliseconds()
		want := 0.0064*float64(n) + 0.390
		if got < want*0.97 || got > want*1.03 {
			t.Errorf("P(%d) = %.3f, fit %.3f", n, got, want)
		}
	}
}

// DMA ablation (§4): elapsed penalty gets slightly worse, processor time
// per packet drops — offloading, not speedup.
func TestDMAOffloadsButDoesNotSpeedUp(t *testing.T) {
	net := ether.Ethernet3Mb()
	prof := cost.MC68000(8, cost.Iface3Mb)
	pio, err := Measure(prof, net, nic.Config{}, 1024, 100)
	if err != nil {
		t.Fatal(err)
	}
	dma, err := Measure(prof, net, nic.Config{DMA: true}, 1024, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dma < pio {
		t.Errorf("DMA elapsed %v beat PIO %v; paper predicts no elapsed gain", dma, pio)
	}
	// CPU per leg: PIO pays TxCost+RxCost; DMA pays assembly+placement.
	pioCPU := prof.TxCost(1024) + prof.RxCost(1024)
	dmaCPU := 2 * (180*1000 + prof.LocalCopy(1024))
	if dmaCPU >= pioCPU {
		t.Errorf("DMA CPU %v not less than PIO %v", dmaCPU, pioCPU)
	}
}
