// Package netpenalty measures the paper's §4 "network penalty": the time
// to move n bytes from the main memory of one workstation to another in a
// single datagram on an idle, error-free network. The measurement is done
// at the data link layer and at interrupt level — two bare interfaces
// ping-ponging frames with no kernel, protocol, or process-switching
// overhead — exactly the paper's methodology (total round-trip time over
// many iterations, divided by two).
package netpenalty

import (
	"fmt"

	"vkernel/internal/cost"
	"vkernel/internal/cpu"
	"vkernel/internal/ether"
	"vkernel/internal/nic"
	"vkernel/internal/sim"
)

// Analytic returns the model's closed-form penalty for an n-byte frame:
// sender copy-in + wire time + latency + receiver copy-out.
func Analytic(prof cost.Profile, netCfg ether.Config, n int) sim.Time {
	return prof.TxCost(n) + netCfg.WireTime(n) + netCfg.Latency + prof.RxCost(n)
}

// Measure runs the ping-pong experiment for frames of n bytes and returns
// the measured one-way penalty.
func Measure(prof cost.Profile, netCfg ether.Config, nicCfg nic.Config, n, iterations int) (sim.Time, error) {
	if iterations <= 0 {
		iterations = 1000
	}
	eng := sim.NewEngine(1)
	net := ether.New(eng, netCfg)
	cpuA := cpu.New(eng, "a")
	cpuB := cpu.New(eng, "b")

	var nicA, nicB *nic.NIC
	var start, end sim.Time
	legs := 0
	want := 2 * iterations

	frame := func() ether.Frame {
		// The payload content is irrelevant at this layer; only the wire
		// size matters.
		return ether.Frame{Bytes: n, Payload: make([]byte, 0)}
	}

	nicA = nic.New(eng, cpuA, prof, nicCfg, net, 1, func(f ether.Frame) {
		legs++
		if legs >= want {
			end = eng.Now()
			return
		}
		g := frame()
		g.Dst = 2
		nicA.Send(g)
	})
	nicB = nic.New(eng, cpuB, prof, nicCfg, net, 2, func(f ether.Frame) {
		legs++
		g := frame()
		g.Dst = 1
		nicB.Send(g)
	})

	eng.Schedule(0, "start", func() {
		start = eng.Now()
		g := frame()
		g.Dst = 2
		nicA.Send(g)
	})
	eng.MaxSteps = uint64(want)*16 + 1000
	if err := eng.Run(); err != nil {
		return 0, err
	}
	if legs < want {
		return 0, fmt.Errorf("netpenalty: only %d/%d legs completed", legs, want)
	}
	return (end - start) / sim.Time(want), nil
}
