package rfs

import (
	"runtime"
	"sync"
	"sync/atomic"

	"vkernel/internal/bufpool"
	"vkernel/internal/ipc"
	"vkernel/internal/vproto"
)

// Config tunes the file server; the zero value gets defaults.
type Config struct {
	// BlockSize is the page size in bytes (0 → 512, the paper's page).
	// Pages travel in one reply packet, so it is capped at vproto.MaxData.
	BlockSize int
	// CacheBlocks is the block-cache capacity in blocks (0 → 1024).
	CacheBlocks int
	// ReadAhead prefetches block N+1 after serving block N of a file.
	ReadAhead bool
	// TransferUnit bounds each MoveTo/MoveFrom chunk of a large transfer
	// (§6.3; the paper's VAX server moved at most 4 KB at a time). 0 → 4096.
	TransferUnit int
	// Workers sizes the request worker pool (0 → one per CPU, 2..16).
	Workers int
	// QueueDepth bounds requests buffered between the receive loop and
	// the workers (0 → 128). A full queue blocks the receive loop; waiting
	// clients are held in their exchanges by reply-pending packets.
	QueueDepth int
	// ReceiveQueueDepth bounds the server process's FCFS receive queue —
	// the exchanges that pile up behind a blocked receive loop. Past the
	// bound the kernel sheds new Sends with an overload Nack, which the
	// client stub surfaces as ipc.ErrOverloaded (retryable), instead of
	// growing memory without limit. 0 → a generous 1024; negative
	// disables the bound.
	ReceiveQueueDepth int
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 512
	}
	if c.BlockSize > vproto.MaxData {
		c.BlockSize = vproto.MaxData
	}
	if c.CacheBlocks <= 0 {
		c.CacheBlocks = 1024
	}
	if c.TransferUnit <= 0 {
		c.TransferUnit = 4096
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
		if c.Workers > 16 {
			c.Workers = 16
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	switch {
	case c.ReceiveQueueDepth < 0:
		c.ReceiveQueueDepth = 0 // unbounded
	case c.ReceiveQueueDepth == 0:
		c.ReceiveQueueDepth = 1024
	}
	return c
}

// Stats is a snapshot of server activity.
type Stats struct {
	Requests     int64
	PageReads    int64
	PageWrites   int64
	LargeReads   int64
	LargeWrites  int64
	Queries      int64
	Creates      int64
	BadRequests  int64
	BytesRead    int64
	BytesWritten int64
	CacheHits    int64
	CacheMisses  int64
	Prefetches   int64
}

type serverCounters struct {
	requests    atomic.Int64
	pageReads   atomic.Int64
	pageWrites  atomic.Int64
	largeReads  atomic.Int64
	largeWrites atomic.Int64
	queries     atomic.Int64
	creates     atomic.Int64
	badRequests atomic.Int64
	bytesRead   atomic.Int64
	bytesWrite  atomic.Int64
	prefetches  atomic.Int64
}

// request is one received exchange awaiting a worker. Requests are
// pooled: the receive loop takes one per exchange, the handling worker
// returns it.
type request struct {
	msg    ipc.Message
	src    ipc.Pid
	frame  *bufpool.Buf // pooled staging buffer backing buf; released after handling
	buf    []byte       // staging: holds the inline segment prefix, reused for MoveFrom pulls
	inline int          // bytes of buf filled by the Send's inline prefix
}

var requestPool = sync.Pool{New: func() any { return new(request) }}

// Server is a real networked V file server: one V process receiving the
// Verex I/O protocol, a bounded worker pool executing requests, an LRU
// block cache over a Store.
//
// The receive loop and the workers share the server process: Receive
// records which client each exchange came from, so any worker may Reply,
// MoveTo or MoveFrom on that client's behalf while the loop blocks in the
// next Receive — requests from independent clients proceed in parallel.
type Server struct {
	node  *ipc.Node
	store Store
	cfg   Config
	cache *blockCache
	proc  *ipc.Proc

	queue   chan *request
	workers sync.WaitGroup
	closed  sync.Once

	raMu       sync.Mutex
	raWG       sync.WaitGroup // outstanding read-ahead goroutines
	raInflight map[blockID]bool

	stats serverCounters
}

// Start spawns the file-server process on node and registers it under
// LogicalFileServer with network-wide scope. The caller retains ownership
// of store until Close.
func Start(node *ipc.Node, store Store, cfg Config) (*Server, error) {
	s := &Server{
		node:       node,
		store:      store,
		cfg:        cfg.withDefaults(),
		raInflight: make(map[blockID]bool),
	}
	s.cache = newBlockCache(s.cfg.CacheBlocks)
	s.queue = make(chan *request, s.cfg.QueueDepth)
	proc, err := node.Spawn("fileserver", s.serve)
	if err != nil {
		return nil, err
	}
	s.proc = proc
	proc.SetQueueLimit(s.cfg.ReceiveQueueDepth)
	proc.SetPid(LogicalFileServer, proc.Pid(), ipc.ScopeBoth)
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Pid returns the server process id.
func (s *Server) Pid() ipc.Pid { return s.proc.Pid() }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:     s.stats.requests.Load(),
		PageReads:    s.stats.pageReads.Load(),
		PageWrites:   s.stats.pageWrites.Load(),
		LargeReads:   s.stats.largeReads.Load(),
		LargeWrites:  s.stats.largeWrites.Load(),
		Queries:      s.stats.queries.Load(),
		Creates:      s.stats.creates.Load(),
		BadRequests:  s.stats.badRequests.Load(),
		BytesRead:    s.stats.bytesRead.Load(),
		BytesWritten: s.stats.bytesWrite.Load(),
		CacheHits:    s.cache.hits.Load(),
		CacheMisses:  s.cache.misses.Load(),
		Prefetches:   s.stats.prefetches.Load(),
	}
}

// Close stops the server: the receive loop unblocks, queued requests
// drain, the workers exit, in-flight read-aheads land, and the block
// cache returns its buffers to the pool. The backing store is not closed.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.node.Detach(s.proc)
		s.workers.Wait()
		s.raWG.Wait()
		s.cache.clear()
	})
}

// serve is the receive loop: it pulls exchanges off the process queue and
// hands them to the worker pool. Each request gets its own pooled staging
// buffer because workers process them concurrently; the worker returns it
// after handling.
func (s *Server) serve(p *ipc.Proc) {
	defer close(s.queue)
	for {
		f := bufpool.Get(vproto.MaxData)
		msg, src, n, err := p.ReceiveWithSegment(f.Data)
		if err != nil {
			f.Release()
			return
		}
		req := requestPool.Get().(*request)
		*req = request{msg: msg, src: src, frame: f, buf: f.Data, inline: n}
		s.queue <- req
	}
}

func (s *Server) worker() {
	defer s.workers.Done()
	for req := range s.queue {
		s.handle(req)
		req.frame.Release()
		*req = request{}
		requestPool.Put(req)
	}
}

func (s *Server) handle(req *request) {
	s.stats.requests.Add(1)
	op, file, arg, count := parseRequest(&req.msg)
	switch op {
	case OpReadBlock:
		s.pageRead(req, file, arg, count)
	case OpWriteBlock:
		s.pageWrite(req, file, arg, count)
	case OpReadLarge:
		s.largeRead(req, file, arg, count)
	case OpWriteLarge:
		s.largeWrite(req, file, arg, count)
	case OpQueryFile:
		s.stats.queries.Add(1)
		size, err := s.store.Size(file)
		if err != nil {
			s.replyStatus(req.src, statusFor(err), 0)
			return
		}
		s.replyStatus(req.src, StatusOK, uint32(size))
	case OpCreateFile:
		s.stats.creates.Add(1)
		if err := s.store.Create(file, int64(arg)); err != nil {
			s.replyStatus(req.src, StatusIOError, 0)
			return
		}
		s.cache.invalidateFile(file)
		s.replyStatus(req.src, StatusOK, 0)
	default:
		s.replyStatus(req.src, StatusBadRequest, 0)
	}
}

// replyStatus answers an exchange with a bare status reply.
func (s *Server) replyStatus(src ipc.Pid, status, count uint32) {
	if status == StatusBadRequest {
		s.stats.badRequests.Add(1)
	}
	m := buildReply(status, count)
	_ = s.proc.Reply(&m, src)
}

func statusFor(err error) uint32 {
	if err == ErrNoFile {
		return StatusNoFile
	}
	return StatusIOError
}

// getBlock returns the block through the cache, zero-padded to a full
// block, with a reference for the caller (Release when done). The block's
// bytes are shared and must not be written. The miss fill is
// generation-stamped so a write-through racing the store read cannot
// leave stale bytes cached (see blockCache).
func (s *Server) getBlock(file, block uint32) (*bufpool.Buf, error) {
	id := blockID{file: file, block: block}
	if b, ok := s.cache.get(id); ok {
		return b, nil
	}
	gen := s.cache.snapshot(id)
	b := bufpool.Get(s.cfg.BlockSize)
	if _, err := s.store.ReadAt(file, b.Data, int64(block)*int64(s.cfg.BlockSize)); err != nil {
		b.Release()
		return nil, err
	}
	s.cache.put(id, b, gen)
	return b, nil
}

// readAhead prefetches a block asynchronously (§6.2's read-ahead).
func (s *Server) readAhead(file, block uint32) {
	id := blockID{file: file, block: block}
	if s.cache.contains(id) {
		return
	}
	if size, err := s.store.Size(file); err != nil || int64(block)*int64(s.cfg.BlockSize) >= size {
		return // past EOF
	}
	s.raMu.Lock()
	if s.raInflight[id] {
		s.raMu.Unlock()
		return
	}
	s.raInflight[id] = true
	s.raWG.Add(1)
	s.raMu.Unlock()
	go func() {
		defer func() {
			s.raMu.Lock()
			delete(s.raInflight, id)
			s.raMu.Unlock()
			s.raWG.Done()
		}()
		gen := s.cache.snapshot(id)
		b := bufpool.Get(s.cfg.BlockSize)
		defer b.Release()
		if _, err := s.store.ReadAt(file, b.Data, int64(block)*int64(s.cfg.BlockSize)); err == nil {
			s.cache.put(id, b, gen)
			s.stats.prefetches.Add(1)
		}
	}()
}

// pageRead serves OpReadBlock: the page travels in the reply packet
// (ReplyWithSegment), one Send/Reply exchange total. The cache block is
// lent for the reply encode — the page is copied exactly once, from
// cache memory into the pooled wire frame.
func (s *Server) pageRead(req *request, file, block, count uint32) {
	s.stats.pageReads.Add(1)
	if count > uint32(s.cfg.BlockSize) {
		s.replyStatus(req.src, StatusBadRequest, 0)
		return
	}
	b, err := s.getBlock(file, block)
	if err != nil {
		s.replyStatus(req.src, statusFor(err), 0)
		return
	}
	if s.cfg.ReadAhead {
		s.readAhead(file, block+1)
	}
	s.stats.bytesRead.Add(int64(count))
	reply := buildReply(StatusOK, count)
	err = s.proc.ReplyWithSegment(&reply, req.src, 0, b.Data[:count])
	b.Release()
	if err != nil {
		// The client's grant was missing or too small: answer without data.
		s.replyStatus(req.src, StatusBadRequest, 0)
	}
}

// pageWrite serves OpWriteBlock: the data arrived inline with the Send
// (§3.4); any remainder beyond the inline allowance is pulled with
// MoveFrom before the write goes through to the store.
func (s *Server) pageWrite(req *request, file, block, count uint32) {
	s.stats.pageWrites.Add(1)
	if count > uint32(s.cfg.BlockSize) || int(count) > len(req.buf) {
		s.replyStatus(req.src, StatusBadRequest, 0)
		return
	}
	got := uint32(req.inline)
	if got > count {
		got = count
	}
	if got < count {
		if err := s.proc.MoveFrom(req.src, got, req.buf[got:count]); err != nil {
			s.replyStatus(req.src, StatusBadRequest, 0)
			return
		}
	}
	if err := s.store.WriteAt(file, req.buf[:count], int64(block)*int64(s.cfg.BlockSize)); err != nil {
		s.replyStatus(req.src, StatusIOError, 0)
		return
	}
	s.cache.invalidate(blockID{file: file, block: block})
	s.stats.bytesWrite.Add(int64(count))
	s.replyStatus(req.src, StatusOK, count)
}

// largeRead serves OpReadLarge: count bytes from byte offset off, moved
// into the client's granted buffer in TransferUnit chunks (§6.3 program
// loading). Each chunk is streamed directly from cache memory: the
// cached blocks covering it are lent to a gather MoveTo (MoveToVec), so
// the bytes are copied exactly once — from the cache into the wire
// frames — with no staging buffer. The blocks stay referenced until the
// transfer completes; a concurrent write invalidates the cache entry but
// cannot recycle a lent block. The reply reports how many bytes the file
// actually held.
func (s *Server) largeRead(req *request, file, off, count uint32) {
	s.stats.largeReads.Add(1)
	size, err := s.store.Size(file)
	if err != nil {
		s.replyStatus(req.src, statusFor(err), 0)
		return
	}
	n := count
	if int64(off) >= size {
		n = 0
	} else if int64(off)+int64(n) > size {
		n = uint32(size - int64(off))
	}
	bs := uint32(s.cfg.BlockSize)
	unit := uint32(s.cfg.TransferUnit)
	blocks := make([]*bufpool.Buf, 0, unit/bs+2)
	parts := make([][]byte, 0, unit/bs+2)
	release := func() {
		for _, b := range blocks {
			b.Release()
		}
		blocks = blocks[:0]
		parts = parts[:0]
	}
	for done := uint32(0); done < n; {
		m := n - done
		if m > unit {
			m = unit
		}
		// Gather the chunk as views into cached blocks.
		for fill := uint32(0); fill < m; {
			pos := off + done + fill
			blk := pos / bs
			in := pos % bs
			c := bs - in
			if c > m-fill {
				c = m - fill
			}
			b, err := s.getBlock(file, blk)
			if err != nil {
				release()
				s.replyStatus(req.src, statusFor(err), done)
				return
			}
			blocks = append(blocks, b)
			parts = append(parts, b.Data[in:in+c])
			fill += c
		}
		if s.cfg.ReadAhead {
			s.readAhead(file, (off+done+m)/bs)
		}
		err := s.proc.MoveToVec(req.src, done, parts...)
		release() // MoveToVec borrows only for the duration of the call
		if err != nil {
			s.replyStatus(req.src, StatusBadRequest, done)
			return
		}
		done += m
	}
	s.stats.bytesRead.Add(int64(n))
	s.replyStatus(req.src, StatusOK, n)
}

// largeWrite serves OpWriteLarge: count bytes pulled from the client's
// granted buffer in TransferUnit chunks and written through to the store.
// The first bytes arrived inline with the Send (§3.4) and are not pulled
// again.
func (s *Server) largeWrite(req *request, file, off, count uint32) {
	s.stats.largeWrites.Add(1)
	bs := uint32(s.cfg.BlockSize)
	pre := uint32(req.inline)
	if pre > count {
		pre = count
	}
	if pre > 0 {
		if err := s.store.WriteAt(file, req.buf[:pre], int64(off)); err != nil {
			s.replyStatus(req.src, StatusIOError, 0)
			return
		}
	}
	unit := uint32(s.cfg.TransferUnit)
	staging := bufpool.Get(int(unit))
	defer staging.Release()
	for done := pre; done < count; {
		m := count - done
		if m > unit {
			m = unit
		}
		if err := s.proc.MoveFrom(req.src, done, staging.Data[:m]); err != nil {
			s.replyStatus(req.src, StatusBadRequest, done)
			return
		}
		if err := s.store.WriteAt(file, staging.Data[:m], int64(off)+int64(done)); err != nil {
			s.replyStatus(req.src, StatusIOError, done)
			return
		}
		done += m
	}
	if count > 0 {
		for blk := off / bs; blk <= (off+count-1)/bs; blk++ {
			s.cache.invalidate(blockID{file: file, block: blk})
		}
	}
	s.stats.bytesWrite.Add(int64(count))
	s.replyStatus(req.src, StatusOK, count)
}
