package rfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/ipc"
	"vkernel/internal/obs"
	"vkernel/internal/vproto"
)

// Config tunes the file server; the zero value gets defaults. Cache
// sizing (CacheBlocks, DirtyBudget, Flushers, MaxDirtyAge) is per
// volume: each volume a server hosts gets its own block cache, dirty
// budget and flusher pool, so one volume's write backlog never starves
// another's.
type Config struct {
	// Metrics is the observability registry the server registers its
	// rfs.* counters, per-op latency histograms and per-volume gauges
	// with. Nil defaults to the node's registry, so one OpQueryStats
	// scrape covers the ipc, net and rfs layers together.
	Metrics *obs.Registry
	// SlowOp, when positive, captures a trace-ring span for any request
	// slower than the threshold — traced or not — and enables latency
	// timing on the registry. Zero leaves span capture to explicitly
	// traced requests.
	SlowOp time.Duration
	// BlockSize is the page size in bytes (0 → 512, the paper's page).
	// Pages travel in one reply packet, so it is capped at vproto.MaxData.
	BlockSize int
	// CacheBlocks is the block-cache capacity in blocks (0 → 1024).
	CacheBlocks int
	// ReadAhead prefetches block N+1 after serving block N of a file.
	ReadAhead bool
	// TransferUnit bounds each MoveTo/MoveFrom chunk of a large transfer
	// (§6.3; the paper's VAX server moved at most 4 KB at a time). 0 → 4096.
	TransferUnit int
	// Workers sizes the request worker pool (0 → one per CPU, 2..16).
	Workers int
	// QueueDepth bounds requests buffered between the receive loop and
	// the workers (0 → 128). A full queue blocks the receive loop; waiting
	// clients are held in their exchanges by reply-pending packets.
	QueueDepth int
	// ReceiveQueueDepth bounds the server process's FCFS receive queue —
	// the exchanges that pile up behind a blocked receive loop. Past the
	// bound the kernel sheds new Sends with an overload Nack, which the
	// client stub surfaces as ipc.ErrOverloaded (retryable), instead of
	// growing memory without limit. 0 → a generous 1024; negative
	// disables the bound.
	ReceiveQueueDepth int
	// WriteThrough disables write-behind: page and large writes go
	// synchronously to the Store and invalidate cached blocks before the
	// reply, the pre-overhaul baseline the §6.2 comparison measures
	// against. Default off: writes are staged as dirty cache blocks,
	// acknowledged immediately, and flushed asynchronously (OpSync /
	// Server.Flush force the write-back).
	WriteThrough bool
	// DirtyBudget bounds the staged-but-unflushed blocks a write-behind
	// server will hold; writers past the bound block until the flushers
	// catch up (backpressure). 0 → 256, capped at CacheBlocks; negative
	// → 1 (effectively synchronous, but still off the request path).
	DirtyBudget int
	// Flushers sizes the write-behind flusher pool (0 → 2). Each flusher
	// claims runs of consecutive dirty blocks of one file and writes a
	// run back with a single store write.
	Flushers int
	// MaxDirtyAge, when positive, switches the flushers from eager to
	// scheduled: dirty blocks are held for coalescing until half the
	// dirty budget fills, a sync drains them, or they have been dirty
	// longer than MaxDirtyAge — the age trickle that bounds the
	// data-loss window under light load. 0 (the default) keeps the
	// flushers eager: every staged block is claimed as soon as a flusher
	// is free.
	MaxDirtyAge time.Duration
	// CacheLease bounds a client-cache registration (0 → 2s). It is also
	// the staleness bound of the consistency protocol: a client whose
	// invalidation callbacks are lost can serve stale cached bytes for at
	// most one lease before the forced re-registration's version check
	// purges them.
	CacheLease time.Duration
	// Invalidators sizes the invalidation-callback worker pool (0 → 4):
	// the processes that Send OpInvalidate to registered caching clients
	// while a write waits for their acknowledgements.
	Invalidators int
	// CallbackTimeout bounds one write's whole invalidation fan-out
	// (0 → 1s). Registrations that have not acknowledged by then are
	// revoked and the write acknowledged anyway — a misbehaving callback
	// process must not stall the write path; the revoked client falls
	// back to the lease/version staleness bound.
	CallbackTimeout time.Duration
	// ReplicaLease is the replication heartbeat lease (0 → 2s). Replicas
	// renew at a quarter lease; a primary silent for a whole lease is
	// presumed dead and the promotion rule runs (see replica.go). The
	// primary prunes members silent for two leases.
	ReplicaLease time.Duration
	// ReplicaAckTimeout bounds one write's wait for its in-sync replica
	// acks (0 → 1s). Replicas still lagging when it fires are dropped
	// from the in-sync set, so a dead replica costs the write path one
	// timeout, once, instead of wedging it.
	ReplicaAckTimeout time.Duration
	// ReplicaLogMax and ReplicaLogMaxBytes bound the per-volume catch-up
	// log in records and bytes (0 → 1024 / 4 MiB). A replica trimmed out
	// of the log resyncs from a snapshot instead.
	ReplicaLogMax      int
	ReplicaLogMaxBytes int
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 512
	}
	if c.BlockSize > vproto.MaxData {
		c.BlockSize = vproto.MaxData
	}
	if c.CacheBlocks <= 0 {
		c.CacheBlocks = 1024
	}
	if c.TransferUnit <= 0 {
		c.TransferUnit = 4096
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
		if c.Workers > 16 {
			c.Workers = 16
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	switch {
	case c.ReceiveQueueDepth < 0:
		c.ReceiveQueueDepth = 0 // unbounded
	case c.ReceiveQueueDepth == 0:
		c.ReceiveQueueDepth = 1024
	}
	switch {
	case c.DirtyBudget < 0:
		c.DirtyBudget = 1
	case c.DirtyBudget == 0:
		c.DirtyBudget = 256
	}
	if c.DirtyBudget > c.CacheBlocks {
		c.DirtyBudget = c.CacheBlocks
	}
	if c.Flushers <= 0 {
		c.Flushers = 2
	}
	if c.CacheLease <= 0 {
		c.CacheLease = 2 * time.Second
	}
	if c.Invalidators <= 0 {
		c.Invalidators = 4
	}
	if c.CallbackTimeout <= 0 {
		c.CallbackTimeout = time.Second
	}
	if c.ReplicaLease <= 0 {
		c.ReplicaLease = 2 * time.Second
	}
	if c.ReplicaAckTimeout <= 0 {
		c.ReplicaAckTimeout = time.Second
	}
	if c.ReplicaLogMax <= 0 {
		c.ReplicaLogMax = 1024
	}
	if c.ReplicaLogMaxBytes <= 0 {
		c.ReplicaLogMaxBytes = 4 << 20
	}
	return c
}

// Stats is a snapshot of server activity.
type Stats struct {
	Requests     int64
	PageReads    int64
	PageWrites   int64
	LargeReads   int64
	LargeWrites  int64
	Queries      int64
	Creates      int64
	Syncs        int64
	BadRequests  int64
	BytesRead    int64
	BytesWritten int64
	CacheHits    int64
	CacheMisses  int64
	Prefetches   int64
	// Write-behind activity: blocks currently staged, flush writes
	// issued (each covering a coalesced run), blocks those runs covered,
	// and store errors the flushers absorbed.
	DirtyBlocks   int64
	FlushRuns     int64
	FlushedBlocks int64
	FlushErrors   int64
	// Client-cache consistency protocol activity: registrations
	// processed (including renewals), live registrations, invalidation
	// callbacks sent, callbacks that failed (registration revoked),
	// fan-outs cut short by CallbackTimeout, and registrations reaped at
	// lease expiry.
	CacheRegistrations    int64
	CacheWatchers         int64
	CacheCallbacks        int64
	CacheCallbackErrs     int64
	CacheCallbackTimeouts int64
	CacheLeaseExpiries    int64
	// Replication activity: replica volumes promoted to primary, records
	// applied while in replica role, and snapshot resyncs run.
	Promotions     int64
	ReplicaRecords int64
	ReplicaResyncs int64
	// StatScrapes counts OpQueryStats exchanges served.
	StatScrapes int64
}

// serverCounters are the server's rfs.* registry counters, held as
// direct pointers so the hot paths skip the registry's name lookup.
// The names below ARE the scrape schema: Stats() is a thin view over
// them and cmd/vstat renders them by name.
type serverCounters struct {
	requests    *obs.Counter
	pageReads   *obs.Counter
	pageWrites  *obs.Counter
	largeReads  *obs.Counter
	largeWrites *obs.Counter
	queries     *obs.Counter
	creates     *obs.Counter
	syncs       *obs.Counter
	badRequests *obs.Counter
	bytesRead   *obs.Counter
	bytesWrite  *obs.Counter
	prefetches  *obs.Counter
	promotions  *obs.Counter
	replApplied *obs.Counter
	replResyncs *obs.Counter
	statScrapes *obs.Counter
}

func newServerCounters(reg *obs.Registry) serverCounters {
	return serverCounters{
		requests:    reg.Counter("rfs.requests"),
		pageReads:   reg.Counter("rfs.page_reads"),
		pageWrites:  reg.Counter("rfs.page_writes"),
		largeReads:  reg.Counter("rfs.large_reads"),
		largeWrites: reg.Counter("rfs.large_writes"),
		queries:     reg.Counter("rfs.queries"),
		creates:     reg.Counter("rfs.creates"),
		syncs:       reg.Counter("rfs.syncs"),
		badRequests: reg.Counter("rfs.bad_requests"),
		bytesRead:   reg.Counter("rfs.bytes_read"),
		bytesWrite:  reg.Counter("rfs.bytes_written"),
		prefetches:  reg.Counter("rfs.prefetches"),
		promotions:  reg.Counter("rfs.promotions"),
		replApplied: reg.Counter("rfs.repl_applied"),
		replResyncs: reg.Counter("rfs.repl_resyncs"),
		statScrapes: reg.Counter("rfs.stat_scrapes"),
	}
}

// opName is the metric and span suffix for a protocol opcode.
func opName(op uint32) string {
	switch op {
	case OpReadBlock:
		return "read_block"
	case OpWriteBlock:
		return "write_block"
	case OpReadLarge:
		return "read_large"
	case OpWriteLarge:
		return "write_large"
	case OpQueryFile:
		return "query_file"
	case OpCreateFile:
		return "create_file"
	case OpSync:
		return "sync"
	case OpRegisterCache:
		return "register_cache"
	case OpReleaseCache:
		return "release_cache"
	case OpQueryVolumes:
		return "query_volumes"
	case OpQueryStats:
		return "query_stats"
	case OpRepJoin, OpRepPull, OpRepFiles, OpRepHeartbeat, OpQueryReplicas:
		return "repl_control"
	default:
		return "other"
	}
}

// request is one received exchange awaiting a worker. Requests are
// pooled: the receive loop takes one per exchange, the handling worker
// returns it.
type request struct {
	msg    ipc.Message
	src    ipc.Pid
	frame  *bufpool.Buf // pooled staging buffer backing buf; released after handling
	buf    []byte       // staging: holds the inline segment prefix, reused for MoveFrom pulls
	inline int          // bytes of buf filled by the Send's inline prefix
	trace  uint32       // the request message's 24-bit trace id (0 = untraced)
}

var requestPool = sync.Pool{New: func() any { return new(request) }}

// VolumeRole is a hosted volume's replication role.
type VolumeRole int32

const (
	// RolePrimary (the zero value, so unreplicated specs are unchanged)
	// owns the volume: it registers the volume's logical name, serves
	// writes and fans acked mutations out to its replicas.
	RolePrimary VolumeRole = iota
	// RoleReplica mirrors a primary: it applies the primary's record
	// stream, serves reads while in-sync, and promotes itself if the
	// primary dies (see replica.go).
	RoleReplica
)

// Internal int32 forms for the volume's atomic role word.
const (
	rolePrimary = int32(RolePrimary)
	roleReplica = int32(RoleReplica)
)

// rejoinReplicaBase offsets the replica ids a Rejoin demotion
// synthesizes, so a restarted ex-primary never outranks a configured
// replica in the promotion order (lowest id wins).
const rejoinReplicaBase uint32 = 1 << 12

// VolumeSpec names one volume a server hosts and the store backing it.
type VolumeSpec struct {
	ID    uint32
	Store Store
	// Role picks primary (default) or replica; StartCluster assigns it.
	Role VolumeRole
	// Replicas is the read-replica count a primary expects; > 0 enables
	// the replication engine for the volume (zero keeps the pre-
	// replication single-copy behavior, with no write-path overhead).
	Replicas int
	// ReplicaID identifies a replica within its volume's replica set
	// (1..N; required for RoleReplica — 0 is reserved). It is also the
	// promotion rank: the lowest in-sync id promotes first.
	ReplicaID uint32
	// Rejoin makes a primary spec probe the name service before
	// registering: if another server already advertises the volume (a
	// replica promoted while this server was down), the spec demotes
	// itself to a replica of the new primary instead of fighting it —
	// the restart half of the kill/promote/restart cycle.
	Rejoin bool
}

// volume is one hosted volume: an independent store behind an
// independent block cache (own LRU, own dirty budget, own flushers), so
// volumes are isolated sharding units — same file ids in two volumes are
// different files, and one volume's flush backlog cannot block another's
// writers.
type volume struct {
	id    uint32
	store Store
	cache *blockCache
	// role is the volume's current replication role; promotion flips a
	// replica to primary at runtime (role is the acquire/release gate:
	// repl is published before the primary role is stored).
	role atomic.Int32
	// repl is the primary-side replication state (nil when the volume is
	// a replica or replication is off).
	repl *replState
	// rv is the replica-side machinery (nil on primaries; it survives a
	// promotion with its run loop stopped).
	rv *replicaVol
}

// readable reports whether the volume may answer reads: a primary
// always may; a replica only while its primary counts it in-sync.
func (v *volume) readable() bool {
	if v.role.Load() == rolePrimary {
		return true
	}
	return v.rv != nil && v.rv.serving.Load()
}

// volBlock keys per-(volume, block) server state (read-ahead dedup).
type volBlock struct {
	vol uint32
	id  blockID
}

// Server is a real networked V file server: one V process receiving the
// Verex I/O protocol, a bounded worker pool executing requests, and N
// hosted volumes, each an LRU block cache over a Store.
//
// The receive loop and the workers share the server process: Receive
// records which client each exchange came from, so any worker may Reply,
// MoveTo or MoveFrom on that client's behalf while the loop blocks in the
// next Receive — requests from independent clients proceed in parallel.
//
// Every hosted volume is advertised through the broadcast name service
// as LogicalVolumeBase+id, which is the cluster's routing table: an
// rfs.Router resolves a volume to the server pid currently advertising
// it. The volume set is fixed at Start.
type Server struct {
	node     *ipc.Node
	cfg      Config
	volumes  map[uint32]*volume
	registry *cacheRegistry
	proc     *ipc.Proc

	queue   chan *request
	workers sync.WaitGroup
	closed  sync.Once

	raMu       sync.Mutex
	raWG       sync.WaitGroup // outstanding read-ahead goroutines
	raInflight map[volBlock]bool

	// metrics is the server's observability registry (never nil; defaults
	// to the node's, so ipc/net/rfs share one scrape). opHists holds the
	// per-op latency histograms indexed by opcode; gaugeNames lists the
	// per-volume pull-time gauges Close must unregister.
	metrics    *obs.Registry
	opHists    [OpQueryStats + 1]*obs.Histogram
	gaugeNames []string

	stats serverCounters
}

// Start spawns a single-volume file server: store becomes DefaultVolume,
// which is what legacy clients (whose requests carry a zero volume word)
// address. The caller retains ownership of store until Close.
func Start(node *ipc.Node, store Store, cfg Config) (*Server, error) {
	return StartVolumes(node, []VolumeSpec{{ID: DefaultVolume, Store: store}}, cfg)
}

// StartVolumes spawns the file-server process on node hosting the given
// volume set. The server registers LogicalFileServer (cluster
// enumeration) and one LogicalVolumeBase+id name per volume (routing),
// all with network-wide scope. The caller retains ownership of the
// stores until Close.
func StartVolumes(node *ipc.Node, vols []VolumeSpec, cfg Config) (*Server, error) {
	if len(vols) == 0 {
		return nil, errors.New("rfs: no volumes")
	}
	s := &Server{
		node:       node,
		cfg:        cfg.withDefaults(),
		volumes:    make(map[uint32]*volume, len(vols)),
		raInflight: make(map[volBlock]bool),
	}
	s.metrics = s.cfg.Metrics
	if s.metrics == nil {
		s.metrics = node.Metrics()
	}
	s.stats = newServerCounters(s.metrics)
	if s.cfg.SlowOp > 0 {
		s.metrics.SetSlowOp(s.cfg.SlowOp)
	}
	for op := OpReadBlock; op <= OpSync; op++ {
		s.opHists[op] = s.metrics.Histogram("rfs.op." + opName(op))
	}
	flushers := s.cfg.Flushers
	if s.cfg.WriteThrough {
		flushers = 0 // write-behind machinery idle; writes invalidate instead
	}
	cleanup := func() {
		for _, v := range s.volumes {
			if v.rv != nil {
				v.rv.close()
			}
			v.cache.close()
		}
	}
	specs := make([]VolumeSpec, len(vols))
	copy(specs, vols)
	for i := range specs {
		spec := &specs[i]
		if _, dup := s.volumes[spec.ID]; dup {
			cleanup()
			return nil, fmt.Errorf("rfs: duplicate volume %d", spec.ID)
		}
		if spec.Store == nil {
			cleanup()
			return nil, fmt.Errorf("rfs: volume %d has no store", spec.ID)
		}
		if spec.Role == RoleReplica && spec.ReplicaID == 0 {
			cleanup()
			return nil, fmt.Errorf("rfs: replica volume %d needs a replica id", spec.ID)
		}
		v := &volume{id: spec.ID, store: spec.Store}
		v.role.Store(int32(spec.Role))
		v.cache = newBlockCache(s.cfg.CacheBlocks, s.cfg.BlockSize, s.cfg.DirtyBudget, flushers,
			s.cfg.MaxDirtyAge,
			func(file uint32, off int64, p []byte) error { return v.store.WriteAt(file, p, off) })
		v.cache.ring = s.metrics.Trace()
		s.volumes[spec.ID] = v
		s.registerVolumeGauges(v)
	}
	registry, err := newCacheRegistry(node, s.cfg.CacheLease, s.cfg.CallbackTimeout, s.cfg.Invalidators, s.metrics)
	if err != nil {
		cleanup()
		return nil, err
	}
	s.registry = registry
	s.metrics.GaugeFunc("rfs.cache_watchers", func() int64 { return int64(registry.watcherCount()) })
	s.gaugeNames = append(s.gaugeNames, "rfs.cache_watchers")

	// Rejoin probes: a restarting ex-primary asks the name service first
	// whether another server took its volume over while it was down (a
	// replica promoted), and if so demotes the spec to a replica of the
	// new primary — synthesizing a replica id above every configured one
	// so it never jumps the promotion queue.
	rejoin := false
	for i := range specs {
		if specs[i].Rejoin && specs[i].Role == RolePrimary {
			rejoin = true
		}
	}
	if rejoin {
		probe, err := node.Attach("rfs-rejoin-probe")
		if err != nil {
			s.registry.close()
			cleanup()
			return nil, err
		}
		for i := range specs {
			spec := &specs[i]
			if !spec.Rejoin || spec.Role != RolePrimary {
				continue
			}
			if probe.GetPid(LogicalVolumeBase+spec.ID, ipc.ScopeRemote) != vproto.Nil {
				spec.Role = RoleReplica
				spec.ReplicaID = rejoinReplicaBase + uint32(probe.Pid())>>16
				s.volumes[spec.ID].role.Store(roleReplica)
			}
		}
		node.Detach(probe)
	}

	for i := range specs {
		spec := &specs[i]
		v := s.volumes[spec.ID]
		if v.role.Load() != roleReplica {
			continue
		}
		rv, err := s.startReplica(v, spec.ReplicaID)
		if err != nil {
			s.registry.close()
			cleanup()
			return nil, err
		}
		v.rv = rv
	}

	s.queue = make(chan *request, s.cfg.QueueDepth)
	proc, err := node.Spawn("fileserver", s.serve)
	if err != nil {
		s.registry.close()
		cleanup()
		return nil, err
	}
	s.proc = proc
	proc.SetQueueLimit(s.cfg.ReceiveQueueDepth)
	proc.SetPid(LogicalFileServer, proc.Pid(), ipc.ScopeBoth)
	for i := range specs {
		spec := &specs[i]
		v := s.volumes[spec.ID]
		if v.role.Load() != rolePrimary {
			continue
		}
		if spec.Replicas > 0 {
			v.repl = newReplState(s, spec.ID, 0)
		}
		// Only primaries advertise the volume's logical name — the name
		// service doubles as the routing table, and writes pin here.
		proc.SetPid(LogicalVolumeBase+spec.ID, proc.Pid(), ipc.ScopeBoth)
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	// Control loops start last: a replica's join carries the server pid,
	// so the server process must exist first.
	for _, v := range s.volumes {
		if v.rv != nil {
			v.rv.start()
		}
	}
	return s, nil
}

// registerVolumeGauges publishes one volume's pull-time gauges under
// rfs.vol<id>.*. The closures gate every v.repl dereference on the
// primary role word — promotion publishes repl before storing the role,
// so the atomic load orders the reads. Close unregisters the names so a
// stopped server's closures never outlive it in a shared registry.
func (s *Server) registerVolumeGauges(v *volume) {
	pfx := fmt.Sprintf("rfs.vol%d.", v.id)
	add := func(name string, f func() int64) {
		s.metrics.GaugeFunc(pfx+name, f)
		s.gaugeNames = append(s.gaugeNames, pfx+name)
	}
	add("cache_hits", func() int64 { return v.cache.hits.Load() })
	add("cache_misses", func() int64 { return v.cache.misses.Load() })
	add("dirty_blocks", func() int64 { return int64(v.cache.dirtyBlocks()) })
	add("flush_runs", func() int64 { return v.cache.flushRuns.Load() })
	add("flushed_blocks", func() int64 { return v.cache.flushedBlocks.Load() })
	add("flush_errs", func() int64 { return v.cache.flushErrs.Load() })
	add("role", func() int64 { return int64(v.role.Load()) })
	add("repl_seq", func() int64 {
		if v.role.Load() == rolePrimary && v.repl != nil {
			return int64(v.repl.current())
		}
		return 0
	})
	add("repl_insync", func() int64 {
		if v.role.Load() == rolePrimary && v.repl != nil {
			return int64(v.repl.insyncCount())
		}
		return 0
	})
	add("repl_lag", func() int64 {
		if v.role.Load() == rolePrimary && v.repl != nil {
			return int64(v.repl.lag())
		}
		return 0
	})
}

// Metrics returns the server's observability registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Role returns a hosted volume's current replication role; promotion
// flips a replica to RolePrimary at runtime.
func (s *Server) Role(vol uint32) (VolumeRole, bool) {
	v := s.volumes[vol]
	if v == nil {
		return 0, false
	}
	return VolumeRole(v.role.Load()), true
}

// Pid returns the server process id.
func (s *Server) Pid() ipc.Pid { return s.proc.Pid() }

// Volumes returns the hosted volume ids in ascending order.
func (s *Server) Volumes() []uint32 {
	ids := make([]uint32, 0, len(s.volumes))
	for id := range s.volumes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats returns a snapshot of the server counters; cache and
// write-behind figures are aggregated across the hosted volumes.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:     s.stats.requests.Load(),
		PageReads:    s.stats.pageReads.Load(),
		PageWrites:   s.stats.pageWrites.Load(),
		LargeReads:   s.stats.largeReads.Load(),
		LargeWrites:  s.stats.largeWrites.Load(),
		Queries:      s.stats.queries.Load(),
		Creates:      s.stats.creates.Load(),
		Syncs:        s.stats.syncs.Load(),
		BadRequests:  s.stats.badRequests.Load(),
		BytesRead:    s.stats.bytesRead.Load(),
		BytesWritten: s.stats.bytesWrite.Load(),
		Prefetches:   s.stats.prefetches.Load(),

		CacheRegistrations:    s.registry.registrations.Load(),
		CacheWatchers:         int64(s.registry.watcherCount()),
		CacheCallbacks:        s.registry.callbacks.Load(),
		CacheCallbackErrs:     s.registry.callbackErrs.Load(),
		CacheCallbackTimeouts: s.registry.callbackTimeouts.Load(),
		CacheLeaseExpiries:    s.registry.leaseExpiries.Load(),

		Promotions:     s.stats.promotions.Load(),
		ReplicaRecords: s.stats.replApplied.Load(),
		ReplicaResyncs: s.stats.replResyncs.Load(),
		StatScrapes:    s.stats.statScrapes.Load(),
	}
	for _, v := range s.volumes {
		st.CacheHits += v.cache.hits.Load()
		st.CacheMisses += v.cache.misses.Load()
		st.DirtyBlocks += int64(v.cache.dirtyBlocks())
		st.FlushRuns += v.cache.flushRuns.Load()
		st.FlushedBlocks += v.cache.flushedBlocks.Load()
		st.FlushErrors += v.cache.flushErrs.Load()
	}
	return st
}

// Flush drains every volume's staged writes to its store (write-behind's
// sync point; OpSync is the protocol's way to request it). It returns
// the first store error the flushers hit since the previous drain.
func (s *Server) Flush() error {
	var first error
	for _, v := range s.volumes {
		if err := v.cache.flushAll(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the server: the receive loop unblocks, queued requests
// drain, the workers exit, in-flight read-aheads land, staged writes
// flush to the stores, and the block caches return their buffers to the
// pool. The backing stores are not closed.
func (s *Server) Close() {
	s.closed.Do(func() {
		// Replica control loops stop first: a promotion racing the
		// teardown would re-register a name this server is abandoning.
		// After close a promotion either happened (v.repl is set and torn
		// down below) or never will.
		for _, v := range s.volumes {
			if v.rv != nil {
				v.rv.close()
			}
		}
		s.node.Detach(s.proc)
		s.workers.Wait()
		// Workers are quiesced, so no write can fan out callbacks anymore;
		// the invalidator pool can go.
		s.registry.close()
		for _, v := range s.volumes {
			if v.repl != nil {
				v.repl.close()
			}
		}
		s.raWG.Wait()
		for _, v := range s.volumes {
			v.cache.close()
		}
		for _, name := range s.gaugeNames {
			s.metrics.Unregister(name)
		}
	})
}

// serve is the receive loop: it pulls exchanges off the process queue and
// hands them to the worker pool. Each request gets its own pooled staging
// buffer because workers process them concurrently; the worker returns it
// after handling. The most common exchange — a cache-hit page read — is
// answered inline instead, without the queue hop.
func (s *Server) serve(p *ipc.Proc) {
	defer close(s.queue)
	for {
		f := bufpool.Get(vproto.MaxData)
		msg, src, n, err := p.ReceiveWithSegment(f.Data)
		if err != nil {
			f.Release()
			return
		}
		if n == 0 && s.fastRead(&msg, src) {
			f.Release()
			continue
		}
		req := requestPool.Get().(*request)
		*req = request{msg: msg, src: src, frame: f, buf: f.Data, inline: n}
		s.queue <- req
	}
}

// fastRead serves a cache-hit OpReadBlock directly from the receive
// loop, the way the V kernel handles its dominant exchange in the
// packet-reception path rather than waking a server process (§6's
// page-transfer special casing). The saving is one queue hop and one
// goroutine wakeup per hot read. Everything on this path must be
// non-blocking: one cache mutex and the reply transmit. Anything
// else — a miss that needs the store, an unknown volume, a malformed
// count, or a ReadAhead config whose prefetch probes store sizes
// synchronously — returns false and takes the worker path.
func (s *Server) fastRead(msg *ipc.Message, src ipc.Pid) bool {
	op, file, block, count := parseRequest(msg)
	if op != OpReadBlock || count > uint32(s.cfg.BlockSize) || s.cfg.ReadAhead {
		return false
	}
	v := s.volumes[reqVolume(msg)]
	if v == nil || !v.readable() {
		return false
	}
	b, _, ok := v.cache.getEnd(blockID{file: file, block: block})
	if !ok {
		return false
	}
	s.stats.requests.Add(1)
	s.stats.pageReads.Add(1)
	s.stats.bytesRead.Add(int64(count))
	reply := buildReply(StatusOK, count)
	err := s.proc.ReplyWithSegment(&reply, src, 0, b.Data[:count])
	b.Release()
	if err != nil {
		// The client's grant was missing or too small: answer without data.
		s.replyStatus(src, StatusBadRequest, 0)
	}
	if trace := msg.Trace(); trace != 0 {
		s.metrics.Trace().Record(trace, "rfs.fast_read", uint64(file)<<32|uint64(block), 0)
	}
	return true
}

func (s *Server) worker() {
	defer s.workers.Done()
	for req := range s.queue {
		s.handle(req)
		req.frame.Release()
		*req = request{}
		requestPool.Put(req)
	}
}

// handle instruments one queued request around dispatch: when timing is
// on (or the request is traced, which forces a measurement) the
// request's latency lands in the per-op rfs.op.* histogram, and a span
// is recorded for traced requests and for untraced ones that crossed
// the slow-op threshold — the auto-capture that makes an anomalous
// request visible after the fact without tracing everything.
func (s *Server) handle(req *request) {
	req.trace = req.msg.Trace()
	t0 := s.metrics.Start()
	if t0.IsZero() && req.trace != 0 {
		t0 = time.Now()
	}
	op := s.dispatch(req)
	if t0.IsZero() {
		return
	}
	dur := time.Since(t0)
	if s.metrics.TimingEnabled() {
		if op < uint32(len(s.opHists)) && s.opHists[op] != nil {
			s.opHists[op].Observe(int64(dur))
		}
	}
	slow := s.metrics.SlowOpNs()
	if req.trace != 0 || (slow > 0 && int64(dur) >= slow) {
		s.metrics.Trace().Record(req.trace, "rfs."+opName(op), uint64(op), dur)
	}
}

func (s *Server) dispatch(req *request) uint32 {
	s.stats.requests.Add(1)
	op, file, arg, count := parseRequest(&req.msg)
	switch op {
	case OpQueryVolumes:
		// Volume-agnostic: part of cluster discovery, answered by every
		// server regardless of the request's volume word.
		s.queryVolumes(req, count)
		return op
	case OpQueryStats:
		// Volume-agnostic too: the scrape covers the whole server (and
		// its node), not one volume.
		s.queryStats(req, count)
		return op
	}
	v := s.volumes[reqVolume(&req.msg)]
	if v == nil {
		s.replyStatus(req.src, StatusNoVolume, 0)
		return op
	}
	switch op {
	case OpRepJoin:
		s.handleRepJoin(v, req)
		return op
	case OpRepPull:
		s.handleRepPull(v, req)
		return op
	case OpRepFiles:
		s.handleRepFiles(v, req)
		return op
	case OpRepHeartbeat:
		s.handleRepHeartbeat(v, req)
		return op
	case OpQueryReplicas:
		s.handleQueryReplicas(v, req)
		return op
	}
	if v.role.Load() != rolePrimary {
		switch op {
		case OpReadBlock, OpReadLarge, OpQueryFile:
			// A replica answers reads only while its primary counts it
			// in-sync — then its copy holds every acked write.
			if !v.readable() {
				s.replyStatus(req.src, StatusNoVolume, 0)
				return op
			}
		default:
			// Mutations and cache registrations pin to the primary; the
			// NoVolume reply makes the routed client re-resolve.
			s.replyStatus(req.src, StatusNoVolume, 0)
			return op
		}
	}
	switch op {
	case OpReadBlock:
		s.pageRead(v, req, file, arg, count)
	case OpWriteBlock:
		s.pageWrite(v, req, file, arg, count)
	case OpReadLarge:
		s.largeRead(v, req, file, arg, count)
	case OpWriteLarge:
		s.largeWrite(v, req, file, arg, count)
	case OpQueryFile:
		s.stats.queries.Add(1)
		size, err := s.sizeOf(v, file)
		if err != nil {
			s.replyStatus(req.src, statusFor(err), 0)
			return op
		}
		s.replyStatus(req.src, StatusOK, uint32(size))
	case OpCreateFile:
		s.stats.creates.Add(1)
		err := v.cache.truncate(file, func() error {
			return v.store.Create(file, int64(arg))
		})
		if err != nil {
			s.replyStatus(req.src, StatusIOError, 0)
			return op
		}
		s.replicate(v, repKindCreate, file, arg, req.trace)
		ver, tracked := s.registry.invalidate(v.id, file, 0, InvalidateAll, req.src, req.trace)
		s.replyWritten(req.src, 0, ver, tracked)
	case OpSync:
		// Word 2 selects the file to drain; zero drains the volume.
		s.stats.syncs.Add(1)
		var err error
		if file == 0 {
			err = v.cache.flushAll()
		} else {
			err = v.cache.flushFile(file)
		}
		if err != nil {
			s.replyStatus(req.src, StatusIOError, 0)
			return op
		}
		s.replyStatus(req.src, StatusOK, 0)
	case OpRegisterCache:
		// arg is the client's callback pid; the reply carries the file's
		// current version and the registration lease in milliseconds.
		version := s.registry.register(v.id, file, req.src, ipc.Pid(arg))
		m := buildReply(StatusOK, version)
		stampRegisterLease(&m, uint32(s.cfg.CacheLease/time.Millisecond))
		_ = s.proc.Reply(&m, req.src)
	case OpReleaseCache:
		s.registry.release(v.id, file, ipc.Pid(arg))
		s.replyStatus(req.src, StatusOK, 0)
	default:
		s.replyStatus(req.src, StatusBadRequest, 0)
	}
	return op
}

// queryStats answers OpQueryStats: the server's whole registry —
// counters, gauges (per-volume ones included) and histogram summaries —
// serialized to the obs text wire format and streamed into the client's
// granted buffer with MoveTo. count is the grant size. The reply
// carries streamed bytes in word 2 and the full snapshot size in word
// 3, so an undersized grant is detectable (streamed < total): the
// snapshot is cut at a line boundary, never mid-metric.
func (s *Server) queryStats(req *request, count uint32) {
	s.stats.statScrapes.Add(1)
	snap := s.metrics.Serialize()
	total := uint32(len(snap))
	if uint32(len(snap)) > count {
		cut := int(count)
		for cut > 0 && snap[cut-1] != '\n' {
			cut--
		}
		snap = snap[:cut]
	}
	if len(snap) > 0 {
		if err := s.proc.MoveTo(req.src, 0, snap); err != nil {
			s.replyStatus(req.src, StatusBadRequest, 0)
			return
		}
	}
	m := buildReply(StatusOK, uint32(len(snap)))
	stampStatsReply(&m, uint32(len(snap)), total)
	_ = s.proc.Reply(&m, req.src)
}

// queryVolumes answers OpQueryVolumes: the volume ids this server OWNS
// (is primary for) as big-endian uint32s in the reply segment, count in
// reply word 2 — replica-hosted volumes are not ownership, so the
// cluster map stays one-server-per-volume. The set is capped by the
// client's grant and by one reply packet.
func (s *Server) queryVolumes(req *request, count uint32) {
	ids := make([]uint32, 0, len(s.volumes))
	for id, v := range s.volumes {
		if v.role.Load() == rolePrimary {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	limit := int(count) / 4
	if limit > vproto.MaxData/4 {
		limit = vproto.MaxData / 4
	}
	if len(ids) > limit {
		ids = ids[:limit]
	}
	if len(ids) == 0 {
		s.replyStatus(req.src, StatusOK, 0)
		return
	}
	buf := make([]byte, len(ids)*4)
	for i, id := range ids {
		binary.BigEndian.PutUint32(buf[i*4:], id)
	}
	reply := buildReply(StatusOK, uint32(len(ids)))
	if err := s.proc.ReplyWithSegment(&reply, req.src, 0, buf); err != nil {
		s.replyStatus(req.src, StatusBadRequest, 0)
	}
}

// replyStatus answers an exchange with a bare status reply.
func (s *Server) replyStatus(src ipc.Pid, status, count uint32) {
	if status == StatusBadRequest {
		s.stats.badRequests.Add(1)
	}
	m := buildReply(status, count)
	_ = s.proc.Reply(&m, src)
}

// replyWritten acknowledges a successful write, carrying the post-write
// cache version when the file is version-tracked so a caching writer
// keeps its own view current (see proto.go).
func (s *Server) replyWritten(src ipc.Pid, count, version uint32, tracked bool) {
	m := buildReply(StatusOK, count)
	if tracked {
		stampWriteVersion(&m, version)
	}
	_ = s.proc.Reply(&m, src)
}

func statusFor(err error) uint32 {
	if err == ErrNoFile {
		return StatusNoFile
	}
	return StatusIOError
}

// getBlock returns the block through the cache, zero-padded to a full
// block, with a reference for the caller (Release when done) and the
// block's valid-byte extent. The block's bytes are shared and must not be
// written. The miss fill is generation-stamped so a concurrent write
// racing the store read cannot leave stale (pre-write, pre-flush) bytes
// cached (see blockCache). A file that exists only as staged,
// still-unflushed blocks reads as zeros outside them — those blocks are
// holes the flusher has not yet materialized.
func (s *Server) getBlock(v *volume, file, block uint32) (*bufpool.Buf, int, error) {
	id := blockID{file: file, block: block}
	if b, end, ok := v.cache.getEnd(id); ok {
		return b, end, nil
	}
	gen := v.cache.snapshot(id)
	// Snapshot the staged size BEFORE the store read: if the file exists
	// only as staged blocks and its first flush creates the store file
	// mid-read, checking afterwards would see ErrNoFile from the store
	// and no staged bytes either — a spurious no-such-file for a file
	// that existed throughout.
	staged := v.cache.stagedSize(file)
	b := bufpool.Get(s.cfg.BlockSize)
	n, err := v.store.ReadAt(file, b.Data, int64(block)*int64(s.cfg.BlockSize))
	if err != nil {
		if err == ErrNoFile && staged > 0 {
			for i := range b.Data {
				b.Data[i] = 0
			}
			n = 0
		} else {
			b.Release()
			return nil, 0, err
		}
	}
	v.cache.put(id, b, gen, n)
	return b, n, nil
}

// sizeOf is the file size as clients must observe it: the store size
// raised to the staged write high-water mark, so unflushed write-behind
// extensions are visible to queries and reads immediately.
func (s *Server) sizeOf(v *volume, file uint32) (int64, error) {
	staged := v.cache.stagedSize(file)
	size, err := v.store.Size(file)
	if err != nil {
		if err == ErrNoFile && staged > 0 {
			return staged, nil
		}
		return 0, err
	}
	if staged > size {
		size = staged
	}
	return size, nil
}

// readAhead prefetches a block asynchronously (§6.2's read-ahead).
func (s *Server) readAhead(v *volume, file, block uint32) {
	id := blockID{file: file, block: block}
	if v.cache.contains(id) {
		return
	}
	if size, err := s.sizeOf(v, file); err != nil || int64(block)*int64(s.cfg.BlockSize) >= size {
		return // past EOF
	}
	key := volBlock{vol: v.id, id: id}
	s.raMu.Lock()
	if s.raInflight[key] {
		s.raMu.Unlock()
		return
	}
	s.raInflight[key] = true
	s.raWG.Add(1)
	s.raMu.Unlock()
	go func() {
		defer func() {
			s.raMu.Lock()
			delete(s.raInflight, key)
			s.raMu.Unlock()
			s.raWG.Done()
		}()
		gen := v.cache.snapshot(id)
		b := bufpool.Get(s.cfg.BlockSize)
		defer b.Release()
		if n, err := v.store.ReadAt(file, b.Data, int64(block)*int64(s.cfg.BlockSize)); err == nil {
			v.cache.put(id, b, gen, n)
			s.stats.prefetches.Add(1)
		}
	}()
}

// pageRead serves OpReadBlock: the page travels in the reply packet
// (ReplyWithSegment), one Send/Reply exchange total. The cache block is
// lent for the reply encode — the page is copied exactly once, from
// cache memory into the pooled wire frame.
func (s *Server) pageRead(v *volume, req *request, file, block, count uint32) {
	s.stats.pageReads.Add(1)
	if count > uint32(s.cfg.BlockSize) {
		s.replyStatus(req.src, StatusBadRequest, 0)
		return
	}
	b, _, err := s.getBlock(v, file, block)
	if err != nil {
		s.replyStatus(req.src, statusFor(err), 0)
		return
	}
	if s.cfg.ReadAhead {
		s.readAhead(v, file, block+1)
	}
	s.stats.bytesRead.Add(int64(count))
	reply := buildReply(StatusOK, count)
	err = s.proc.ReplyWithSegment(&reply, req.src, 0, b.Data[:count])
	b.Release()
	if err != nil {
		// The client's grant was missing or too small: answer without data.
		s.replyStatus(req.src, StatusBadRequest, 0)
	}
}

// pageWrite serves OpWriteBlock: the data arrived inline with the Send
// (§3.4); any remainder beyond the inline allowance is pulled with
// MoveFrom. Write-behind (the default) lands the page in a fresh block
// buffer — the pull scatters straight into it, no staging — stages it
// dirty in the cache and acknowledges immediately; the flushers write it
// back asynchronously (§6.2's server-side write buffering). With
// Config.WriteThrough the write goes synchronously to the store and
// invalidates the cached block before the reply, as before.
func (s *Server) pageWrite(v *volume, req *request, file, block, count uint32) {
	s.stats.pageWrites.Add(1)
	bs := uint32(s.cfg.BlockSize)
	if count > bs || int(count) > len(req.buf) {
		s.replyStatus(req.src, StatusBadRequest, 0)
		return
	}
	got := uint32(req.inline)
	if got > count {
		got = count
	}
	if s.cfg.WriteThrough {
		if got < count {
			if err := s.proc.MoveFrom(req.src, got, req.buf[got:count]); err != nil {
				s.replyStatus(req.src, StatusBadRequest, 0)
				return
			}
		}
		if err := v.store.WriteAt(file, req.buf[:count], int64(block)*int64(s.cfg.BlockSize)); err != nil {
			s.replyStatus(req.src, StatusIOError, 0)
			return
		}
		v.cache.invalidate(blockID{file: file, block: block})
		s.replicate(v, repKindWrite, file, block*bs, req.trace, req.buf[:count])
		s.stats.bytesWrite.Add(int64(count))
		ver, tracked := s.registry.invalidate(v.id, file, block, 1, req.src, req.trace)
		s.replyWritten(req.src, count, ver, tracked)
		return
	}

	if count == 0 {
		// Degenerate zero-length write: nothing to defer. Write through
		// so the file is created/extended exactly as the write-through
		// path would — staging an empty dirty block would raise the
		// staged size only until its (empty) flush pruned it again.
		if err := v.store.WriteAt(file, nil, int64(block)*int64(s.cfg.BlockSize)); err != nil {
			s.replyStatus(req.src, StatusIOError, 0)
			return
		}
		s.replicate(v, repKindWrite, file, block*bs, req.trace)
		ver, tracked := s.registry.invalidate(v.id, file, block, 0, req.src, req.trace)
		s.replyWritten(req.src, 0, ver, tracked)
		return
	}
	buf := bufpool.Get(s.cfg.BlockSize)
	copy(buf.Data, req.buf[:got])
	if got < count {
		if err := s.proc.MoveFrom(req.src, got, buf.Data[got:count]); err != nil {
			buf.Release()
			s.replyStatus(req.src, StatusBadRequest, 0)
			return
		}
	}
	err := s.stageBlock(v, blockID{file: file, block: block}, buf, 0, int(count), req.trace)
	if err != nil {
		buf.Release()
		s.replyStatus(req.src, StatusIOError, 0)
		return
	}
	// Replicate from the staged payload before returning the buffer:
	// append copies the data into the log under the replication lock.
	s.replicate(v, repKindWrite, file, block*bs, req.trace, buf.Data[:count])
	buf.Release()
	s.stats.bytesWrite.Add(int64(count))
	// The page is staged (readable by everyone through this server), so
	// other clients' cached copies go stale NOW: call them back before
	// the writer learns its write completed.
	ver, tracked := s.registry.invalidate(v.id, file, block, 1, req.src, req.trace)
	s.replyWritten(req.src, count, ver, tracked)
}

// stageBlock stages buf as block id's newest contents. When the payload
// does not cover the whole block, the old image is fetched so the staged
// block preserves the rest: its generation is snapshotted before the
// fetch and stage retries if a concurrent write invalidated the image
// (errStaleSpare). A store read failure other than ErrNoFile fails the
// write — zero-filling over unknown-but-existing bytes would let a
// transient read error destroy store data on the next flush. Plain
// ErrNoFile means the block genuinely has no prior contents and zeros
// are correct.
func (s *Server) stageBlock(v *volume, id blockID, buf *bufpool.Buf, payStart, payEnd int, trace uint32) error {
	bs := s.cfg.BlockSize
	for {
		var spareBuf *bufpool.Buf
		var spare []byte
		spareEnd := 0
		var gen uint64
		if payStart > 0 || payEnd < bs {
			gen = v.cache.snapshot(id)
			b, end, err := s.getBlock(v, id.file, id.block)
			switch {
			case err == nil:
				spareBuf, spare, spareEnd = b, b.Data, end
			case err == ErrNoFile:
				// no prior contents; the gaps are zeros
			default:
				return err
			}
		}
		err := v.cache.stage(id, buf, payStart, payEnd, spare, spareEnd, gen, trace)
		spareBuf.Release()
		if err != errStaleSpare {
			return err
		}
	}
}

// largeRead serves OpReadLarge: count bytes from byte offset off, moved
// into the client's granted buffer in TransferUnit chunks (§6.3 program
// loading). Each chunk is streamed directly from cache memory: the
// cached blocks covering it are lent to a gather MoveTo (MoveToVec), so
// the bytes are copied exactly once — from the cache into the wire
// frames — with no staging buffer. The blocks stay referenced until the
// transfer completes; a concurrent write invalidates the cache entry but
// cannot recycle a lent block. The reply reports how many bytes the file
// actually held.
func (s *Server) largeRead(v *volume, req *request, file, off, count uint32) {
	s.stats.largeReads.Add(1)
	size, err := s.sizeOf(v, file)
	if err != nil {
		s.replyStatus(req.src, statusFor(err), 0)
		return
	}
	n := count
	if int64(off) >= size {
		n = 0
	} else if int64(off)+int64(n) > size {
		n = uint32(size - int64(off))
	}
	bs := uint32(s.cfg.BlockSize)
	unit := uint32(s.cfg.TransferUnit)
	blocks := make([]*bufpool.Buf, 0, unit/bs+2)
	parts := make([][]byte, 0, unit/bs+2)
	release := func() {
		for _, b := range blocks {
			b.Release()
		}
		blocks = blocks[:0]
		parts = parts[:0]
	}
	for done := uint32(0); done < n; {
		m := n - done
		if m > unit {
			m = unit
		}
		// Gather the chunk as views into cached blocks.
		for fill := uint32(0); fill < m; {
			pos := off + done + fill
			blk := pos / bs
			in := pos % bs
			c := bs - in
			if c > m-fill {
				c = m - fill
			}
			b, _, err := s.getBlock(v, file, blk)
			if err != nil {
				release()
				s.replyStatus(req.src, statusFor(err), done)
				return
			}
			blocks = append(blocks, b)
			parts = append(parts, b.Data[in:in+c])
			fill += c
		}
		if s.cfg.ReadAhead {
			s.readAhead(v, file, (off+done+m)/bs)
		}
		err := s.proc.MoveToVec(req.src, done, parts...)
		release() // MoveToVec borrows only for the duration of the call
		if err != nil {
			s.replyStatus(req.src, StatusBadRequest, done)
			return
		}
		done += m
	}
	s.stats.bytesRead.Add(int64(n))
	s.replyStatus(req.src, StatusOK, n)
}

// span is one block-aligned landing slot of a large-write chunk: a fresh
// pooled block buffer whose window [payStart:payEnd) receives payload
// bytes (scattered off the wire or copied from the inline prefix) before
// the buffer is staged dirty in the cache.
type span struct {
	id       blockID
	buf      *bufpool.Buf
	payStart int
	payEnd   int
}

// buildSpans appends fresh spans covering the m bytes at absolute file
// position pos to spans, and the scatter slices aliasing their payload
// windows to slices (both reset to length zero first, so callers can
// recycle backing arrays chunk over chunk).
func (s *Server) buildSpans(file, pos, m uint32, spans []span, slices [][]byte) ([]span, [][]byte) {
	bs := uint32(s.cfg.BlockSize)
	spans, slices = spans[:0], slices[:0]
	for fill := uint32(0); fill < m; {
		p := pos + fill
		in := p % bs
		c := bs - in
		if c > m-fill {
			c = m - fill
		}
		b := bufpool.Get(s.cfg.BlockSize)
		spans = append(spans, span{
			id:       blockID{file: file, block: p / bs},
			buf:      b,
			payStart: int(in),
			payEnd:   int(in + c),
		})
		slices = append(slices, b.Data[in:in+c])
		fill += c
	}
	return spans, slices
}

// absorbSpans stages one chunk's filled block buffers into the cache as
// dirty blocks (completing partial head/tail blocks from the old image)
// and releases them. It runs on its own goroutine so the next chunk's
// MoveFromVec overlaps it — the WriteLarge pipeline. Absorbs of one
// write are strictly serialized (the pipeline waits for the previous
// absorb before launching the next), so the per-chunk replication
// records it appends land in chunk order; the write path commits them
// all at once at the end (replicateSync). pos is the chunk's absolute
// byte offset; file its file id.
func (s *Server) absorbSpans(v *volume, file, pos uint32, spans []span, trace uint32) error {
	var err error
	for _, sp := range spans {
		if err == nil {
			err = s.stageBlock(v, sp.id, sp.buf, sp.payStart, sp.payEnd, trace)
		}
	}
	if err == nil {
		parts := make([][]byte, len(spans))
		for i, sp := range spans {
			parts[i] = sp.buf.Data[sp.payStart:sp.payEnd]
		}
		s.replicateAppend(v, repKindWrite, file, pos, trace, parts...)
	}
	releaseSpans(spans)
	return err
}

func releaseSpans(spans []span) {
	for _, sp := range spans {
		sp.buf.Release()
	}
}

// largeWrite serves OpWriteLarge: count bytes pulled from the client's
// granted buffer in TransferUnit chunks. The first bytes arrived inline
// with the Send (§3.4) and are not pulled again.
//
// Write-behind (the default) scatters each chunk straight into
// block-aligned cache buffers with MoveFromVec — zero staging copies —
// and pipelines: while one chunk's blocks are absorbed into the cache
// (which may block on the dirty budget or, transitively, the store), the
// next chunk's pull is already on the wire. With Config.WriteThrough the
// old serial pull-then-write-through loop runs instead, as the baseline.
func (s *Server) largeWrite(v *volume, req *request, file, off, count uint32) {
	s.stats.largeWrites.Add(1)
	if s.cfg.WriteThrough {
		s.largeWriteThrough(v, req, file, off, count)
		return
	}
	pre := uint32(req.inline)
	if pre > count {
		pre = count
	}
	unit := uint32(s.cfg.TransferUnit)

	// At most one absorb is in flight, so two span/slice buffers
	// alternate between the chunk being pulled and the chunk being
	// absorbed, and one reusable channel carries the handoff.
	var spanBuf [2][]span
	var sliceBuf [2][][]byte
	which := 0
	ch := make(chan error, 1)
	inflight := false
	wait := func() error {
		if !inflight {
			return nil
		}
		inflight = false
		return <-ch
	}
	launch := func(spans []span, pos uint32) {
		inflight = true
		go func() { ch <- s.absorbSpans(v, file, pos, spans, req.trace) }()
	}

	done := uint32(0)
	if pre > 0 {
		spans, slices := s.buildSpans(file, off, pre, spanBuf[which], sliceBuf[which])
		spanBuf[which], sliceBuf[which] = spans, slices
		rest := req.buf[:pre]
		for _, sl := range slices {
			n := copy(sl, rest)
			rest = rest[n:]
		}
		launch(spans, off)
		which ^= 1
		done = pre
	}
	for done < count {
		m := count - done
		if m > unit {
			m = unit
		}
		spans, slices := s.buildSpans(file, off+done, m, spanBuf[which], sliceBuf[which])
		spanBuf[which], sliceBuf[which] = spans, slices
		if err := s.proc.MoveFromVec(req.src, done, slices...); err != nil {
			releaseSpans(spans)
			_ = wait()
			s.replyStatus(req.src, StatusBadRequest, done)
			return
		}
		if err := wait(); err != nil {
			releaseSpans(spans)
			s.replyStatus(req.src, StatusIOError, done)
			return
		}
		launch(spans, off+done)
		which ^= 1
		done += m
	}
	if err := wait(); err != nil {
		s.replyStatus(req.src, StatusIOError, done)
		return
	}
	// All chunks are staged and their records appended; one commit waits
	// for the in-sync replicas to ack the lot.
	s.replicateSync(v)
	s.stats.bytesWrite.Add(int64(count))
	ver, tracked := s.invalidateRange(v, req.src, file, off, count, req.trace)
	s.replyWritten(req.src, count, ver, tracked)
}

// invalidateRange runs the client-cache fan-out for a byte-range write;
// both large-write modes share its block-range arithmetic. The returned
// version/tracked pair feeds replyWritten.
func (s *Server) invalidateRange(v *volume, src ipc.Pid, file, off, count uint32, trace uint32) (uint32, bool) {
	bs := uint32(s.cfg.BlockSize)
	first := off / bs
	nblocks := uint32(0)
	if count > 0 {
		nblocks = (off+count-1)/bs - first + 1
	}
	return s.registry.invalidate(v.id, file, first, nblocks, src, trace)
}

// largeWriteThrough is the pre-overhaul §6.2 baseline: chunks pulled
// serially into one staging buffer with MoveFrom, each written through
// to the store before the next pull, cached blocks invalidated at the
// end. Kept runnable (Config.WriteThrough) so the write-behind win stays
// measurable.
func (s *Server) largeWriteThrough(v *volume, req *request, file, off, count uint32) {
	bs := uint32(s.cfg.BlockSize)
	pre := uint32(req.inline)
	if pre > count {
		pre = count
	}
	if pre > 0 {
		if err := v.store.WriteAt(file, req.buf[:pre], int64(off)); err != nil {
			s.replyStatus(req.src, StatusIOError, 0)
			return
		}
		s.replicateAppend(v, repKindWrite, file, off, req.trace, req.buf[:pre])
	}
	unit := uint32(s.cfg.TransferUnit)
	staging := bufpool.Get(int(unit))
	defer staging.Release()
	for done := pre; done < count; {
		m := count - done
		if m > unit {
			m = unit
		}
		if err := s.proc.MoveFrom(req.src, done, staging.Data[:m]); err != nil {
			s.replyStatus(req.src, StatusBadRequest, done)
			return
		}
		if err := v.store.WriteAt(file, staging.Data[:m], int64(off)+int64(done)); err != nil {
			s.replyStatus(req.src, StatusIOError, done)
			return
		}
		s.replicateAppend(v, repKindWrite, file, off+done, req.trace, staging.Data[:m])
		done += m
	}
	if count > 0 {
		for blk := off / bs; blk <= (off+count-1)/bs; blk++ {
			v.cache.invalidate(blockID{file: file, block: blk})
		}
	}
	s.replicateSync(v)
	s.stats.bytesWrite.Add(int64(count))
	ver, tracked := s.invalidateRange(v, req.src, file, off, count, req.trace)
	s.replyWritten(req.src, count, ver, tracked)
}
