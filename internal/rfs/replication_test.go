package rfs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vkernel/internal/ipc"
)

// replConfig is the two-shard, one-replica fixture the replication
// tests share: volume 1's primary on shard 0, its replica on shard 1,
// with a lease short enough that failover completes in milliseconds.
func replConfig(udp bool) ClusterConfig {
	return ClusterConfig{
		Shards:   2,
		Volumes:  []uint32{1},
		Replicas: 1,
		UDP:      udp,
		Node:     tightNode(),
		Server: Config{
			ReplicaLease:      150 * time.Millisecond,
			ReplicaAckTimeout: 50 * time.Millisecond,
		},
	}
}

// waitUntil polls cond until it holds or the deadline kills the test.
func waitUntil(t testing.TB, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// shardWithRole finds the live shard holding vol in the given role.
func shardWithRole(c *Cluster, vol uint32, role VolumeRole) *ClusterServer {
	for _, cs := range c.Servers {
		if cs.Srv == nil {
			continue
		}
		if r, ok := cs.Srv.Role(vol); ok && r == role {
			return cs
		}
	}
	return nil
}

// pageVersion decodes the version a versionedPage write stamped.
func pageVersion(page []byte) uint32 {
	return binary.BigEndian.Uint32(page) & 0xffff
}

// directClient builds an unrouted client pinned to one server and one
// volume — the probe the tests use to ask a specific replica what it
// would serve.
func directClient(p *ipc.Proc, server ipc.Pid, vol uint32) *Client {
	return &Client{p: p, server: server, vol: vol, retry: DefaultRetryPolicy, sleep: time.Sleep}
}

// waitReplicaServing polls a direct (unrouted) read against the replica
// server until it serves the expected bytes: serving implies the primary
// counted the replica in-sync on its last heartbeat, and the matching
// payload implies the record stream caught up through that write.
var probeSeq atomic.Int32

func waitReplicaServing(t testing.TB, node *ipc.Node, replica ipc.Pid, file, block uint32, want []byte) {
	t.Helper()
	p := attach(t, node, fmt.Sprintf("direct-probe-%d", probeSeq.Add(1)))
	cl := directClient(p, replica, 1)
	page := make([]byte, len(want))
	waitUntil(t, 5*time.Second, "replica to serve the replicated bytes", func() bool {
		n, err := cl.ReadBlock(file, block, page)
		return err == nil && n == len(want) && bytes.Equal(page[:n], want)
	})
}

// TestReplicatedReadFanOut: acked writes stream to the replica, and a
// SpreadReads client round-robins reads over the primary and the
// in-sync replica while its writes stay pinned to the primary.
func TestReplicatedReadFanOut(t *testing.T) {
	c := startCluster(t, replConfig(false))
	node := clientNode(t, c)
	r := newRouter(t, node)
	w := NewVolumeClient(attach(t, node, "writer"), r, 1)

	for b := uint32(0); b < 4; b++ {
		if err := w.WriteBlock(9, b, versionedPage(b, 1)); err != nil {
			t.Fatal(err)
		}
	}
	primary := shardWithRole(c, 1, RolePrimary)
	replica := shardWithRole(c, 1, RoleReplica)
	if primary == nil || replica == nil || primary == replica {
		t.Fatalf("bad role assignment: primary=%v replica=%v", primary, replica)
	}
	if primary.Index != 0 || replica.Index != 1 {
		t.Fatalf("volume 1 placed primary=%d replica=%d, want 0/1", primary.Index, replica.Index)
	}
	waitReplicaServing(t, node, replica.Srv.Pid(), 9, 3, versionedPage(3, 1))

	rd := NewVolumeClient(attach(t, node, "reader"), r, 1)
	rd.SpreadReads(true)
	pReads := primary.Srv.Stats().PageReads
	rReads := replica.Srv.Stats().PageReads
	page := make([]byte, 512)
	for i := 0; i < 10; i++ {
		b := uint32(i % 4)
		if _, err := rd.ReadBlock(9, b, page); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(page, versionedPage(b, 1)) {
			t.Fatalf("spread read %d returned wrong bytes", i)
		}
	}
	if got := replica.Srv.Stats().PageReads - rReads; got == 0 {
		t.Fatal("replica served no reads under SpreadReads")
	} else if primary.Srv.Stats().PageReads == pReads {
		t.Fatal("primary served no reads under SpreadReads")
	}

	// Writes from the spreading client still pin to the primary.
	pWrites := primary.Srv.Stats().PageWrites
	if err := rd.WriteBlock(9, 0, versionedPage(0, 2)); err != nil {
		t.Fatal(err)
	}
	if primary.Srv.Stats().PageWrites == pWrites {
		t.Fatal("write from a SpreadReads client did not reach the primary")
	}
	if got := replica.Srv.Stats().PageWrites; got != 0 {
		t.Fatalf("replica took %d direct writes", got)
	}
}

// TestReplicaKillPrimaryMidWriteBurst: the primary dies in the middle
// of a write burst; the replica promotes within the lease, the routed
// writer reroutes to it, and every write acked before or during the
// crash is still readable afterwards — synchronous commit means an ack
// implies the replica had the bytes before the primary could die.
func TestReplicaKillPrimaryMidWriteBurst(t *testing.T) {
	c := startCluster(t, replConfig(false))
	node := clientNode(t, c)
	r := newRouter(t, node)
	w := NewVolumeClient(attach(t, node, "burst-writer"), r, 1)

	rv := c.Servers[1].Srv.volumes[1].rv
	const blocks = 8
	var acked [blocks]uint32
	version := uint32(1)
	write := func() error {
		b := version % blocks
		err := w.WriteBlock(9, b, versionedPage(b, version))
		if err == nil {
			acked[b] = version
			version++
		}
		return err
	}

	// Enroll first: promotion eligibility requires the replica to have
	// been in-sync at last contact, and synchronous commit only covers
	// replicas that have joined.
	waitUntil(t, 5*time.Second, "replica to enroll in-sync", func() bool { return rv.eligible.Load() })
	for i := 0; i < 40; i++ {
		if err := write(); err != nil {
			t.Fatalf("pre-kill write %d: %v", i, err)
		}
	}

	var killOnce sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(2 * time.Millisecond)
		killOnce.Do(func() { c.Kill(0) })
	}()
	// Keep writing through the crash; count acks that land after the
	// kill has definitely finished.
	postKill := 0
	deadline := time.Now().Add(10 * time.Second)
	for postKill < 10 {
		if time.Now().After(deadline) {
			t.Fatal("writer never recovered after the primary was killed")
		}
		err := write()
		select {
		case <-done:
			if err == nil {
				postKill++
			}
		default:
		}
	}

	// The survivor promoted exactly once and now owns the volume.
	srv := c.Servers[1].Srv
	if got := srv.Stats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
	if role, ok := srv.Role(1); !ok || role != RolePrimary {
		t.Fatalf("survivor role = %v, %v; want promoted primary", role, ok)
	}

	// No acked write lost: each block reads back at least its last acked
	// version, untorn.
	rd := NewVolumeClient(attach(t, node, "burst-reader"), r, 1)
	page := make([]byte, 512)
	for b := uint32(0); b < blocks; b++ {
		if acked[b] == 0 {
			continue
		}
		if _, err := rd.ReadBlock(9, b, page); err != nil {
			t.Fatalf("read block %d after failover: %v", b, err)
		}
		if err := checkVersionedPage(b, page); err != nil {
			t.Fatalf("block %d torn after failover: %v", b, err)
		}
		if got := pageVersion(page); got < acked[b] {
			t.Fatalf("block %d lost acked write: version %d < acked %d", b, got, acked[b])
		}
	}
}

// TestReplicaFailoverUDP is the kill/promote/reroute cycle over real
// loopback sockets — exercising the server-to-server UDP peer wiring
// the replica's name lookups and join exchanges depend on.
func TestReplicaFailoverUDP(t *testing.T) {
	c := startCluster(t, replConfig(true))
	node := clientNode(t, c)
	r := newRouter(t, node)
	w := NewVolumeClient(attach(t, node, "writer"), r, 1)

	if err := w.WriteBlock(9, 0, versionedPage(0, 1)); err != nil {
		t.Fatal(err)
	}
	waitReplicaServing(t, node, c.Servers[1].Srv.Pid(), 9, 0, versionedPage(0, 1))

	c.Kill(0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := w.WriteBlock(9, 0, versionedPage(0, 2)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never recovered after killing the primary over UDP")
		}
	}
	srv := c.Servers[1].Srv
	if got := srv.Stats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
	page := make([]byte, 512)
	rd := NewVolumeClient(attach(t, node, "reader"), r, 1)
	if _, err := rd.ReadBlock(9, 0, page); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, versionedPage(0, 2)) {
		t.Fatal("promoted replica served stale bytes")
	}
}

// TestReplicaKillDuringCatchUp: with two replicas, one dies, misses a
// few hundred writes (past the push slack, so its rejoin must pull the
// backlog — the surviving member keeps the log alive), and dies again
// mid-pull. The primary must shrug twice — writes stay fast once the
// laggard is dropped — and the third incarnation still converges to
// the full data set.
func TestReplicaKillDuringCatchUp(t *testing.T) {
	cfg := replConfig(false)
	cfg.Shards = 3
	cfg.Replicas = 2
	// A 1ms-per-op store stretches the catch-up so the test can reliably
	// kill the replica while the pull is in progress.
	cfg.NewStore = func(uint32) Store { return NewDelayStore(NewMemStore(), time.Millisecond) }
	c := startCluster(t, cfg)
	node := clientNode(t, c)
	r := newRouter(t, node)
	w := NewVolumeClient(attach(t, node, "writer"), r, 1)

	if err := w.WriteBlock(9, 0, versionedPage(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Replica 2 lives on shard 2; wait for it to enroll and serve.
	waitReplicaServing(t, node, c.Servers[2].Srv.Pid(), 9, 0, versionedPage(0, 1))

	// Crash replica 2 and build a backlog past the push slack. Replica 1
	// stays enrolled, so every write commits synchronously to it and the
	// log is retained for the rejoin.
	c.Kill(2)
	const backlog = 300
	for i := 1; i <= backlog; i++ {
		if err := w.WriteBlock(9, uint32(i), versionedPage(uint32(i), 1)); err != nil {
			t.Fatalf("write %d with replica 2 down: %v", i, err)
		}
	}

	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	// Kill it again once the pull is demonstrably in progress.
	waitUntil(t, 10*time.Second, "pull catch-up to start", func() bool {
		n := c.Servers[2].Srv.Stats().ReplicaRecords
		return n > 0 && n < backlog
	})
	c.Kill(2)

	// The primary must not wedge on the vanished puller: a run of writes
	// completes promptly (replica 1 acks; the dead puller is not in the
	// in-sync wait).
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := w.WriteBlock(9, uint32(i), versionedPage(uint32(i), 2)); err != nil {
			t.Fatalf("write %d after replica 2 vanished: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("writes wedged behind dead replica: 20 writes took %v", elapsed)
	}

	// Third incarnation converges: once it serves reads it has caught up
	// through the whole history, including the post-crash overwrites.
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	waitReplicaServing(t, node, c.Servers[2].Srv.Pid(), 9, backlog, versionedPage(backlog, 1))
	waitReplicaServing(t, node, c.Servers[2].Srv.Pid(), 9, 5, versionedPage(5, 2))
}

// TestReplicaPromotionUnderLoss: failover must complete through 40%
// packet loss — heartbeats, the lease-expiry detection, the promotion
// name registration and the client's re-resolution all ride retries.
func TestReplicaPromotionUnderLoss(t *testing.T) {
	cfg := replConfig(false)
	cfg.Faults = ipc.FaultConfig{DropProb: 0.4}
	cfg.Node = ipc.NodeConfig{
		RetransmitTimeout: 5 * time.Millisecond,
		Retries:           15,
		GetPidTimeout:     10 * time.Millisecond,
		GetPidRetries:     15,
	}
	cfg.Server.ReplicaLease = 300 * time.Millisecond
	c := startCluster(t, cfg)
	node := clientNode(t, c)
	r := newRouter(t, node)
	w := NewVolumeClient(attach(t, node, "writer"), r, 1)

	var lastAcked uint32
	for v := uint32(1); v <= 5; v++ {
		if err := w.WriteBlock(9, 0, versionedPage(0, v)); err != nil {
			t.Fatalf("write v%d under loss: %v", v, err)
		}
		lastAcked = v
	}
	rv := c.Servers[1].Srv.volumes[1].rv
	waitUntil(t, 10*time.Second, "replica to enroll in-sync under loss", func() bool {
		return rv.eligible.Load()
	})

	c.Kill(0)
	deadline := time.Now().Add(20 * time.Second)
	page := make([]byte, 512)
	for {
		if _, err := w.ReadBlock(9, 0, page); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reads never recovered through 40% loss after killing the primary")
		}
	}
	if got := pageVersion(page); got < lastAcked {
		t.Fatalf("promoted replica lost acked writes under loss: v%d < v%d", got, lastAcked)
	}
	if got := c.Servers[1].Srv.Stats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
	// And it takes writes.
	waitUntil(t, 10*time.Second, "writes to recover under loss", func() bool {
		return w.WriteBlock(9, 0, versionedPage(0, lastAcked+1)) == nil
	})
}

// TestReplicaFullCycle: kill the primary, let the replica promote and
// take writes, then restart the dead shard — whose Rejoin probe finds
// the promoted primary and demotes the restarted server to a replica
// (snapshot-resyncing the writes it slept through) instead of
// split-braining the volume.
func TestReplicaFullCycle(t *testing.T) {
	c := startCluster(t, replConfig(false))
	node := clientNode(t, c)
	r := newRouter(t, node)
	w := NewVolumeClient(attach(t, node, "writer"), r, 1)

	if err := w.WriteBlock(9, 0, versionedPage(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLarge(10, 0, pattern(10, 4096)); err != nil {
		t.Fatal(err)
	}
	waitReplicaServing(t, node, c.Servers[1].Srv.Pid(), 9, 0, versionedPage(0, 1))

	c.Kill(0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := w.WriteBlock(9, 0, versionedPage(0, 2)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never failed over to the replica")
		}
	}
	if got := c.Servers[1].Srv.Stats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}

	// Restart the ex-primary: it must come back as a replica of the
	// promoted server, not a second primary.
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "restarted ex-primary to demote itself", func() bool {
		role, ok := c.Servers[0].Srv.Role(1)
		return ok && role == RoleReplica
	})
	if role, _ := c.Servers[1].Srv.Role(1); role != RolePrimary {
		t.Fatal("promoted server lost the primary role after the old one rejoined")
	}

	// The demoted rejoiner resyncs and serves the post-crash write it
	// slept through — plus the large file from before the crash.
	waitReplicaServing(t, node, c.Servers[0].Srv.Pid(), 9, 0, versionedPage(0, 2))
	p := attach(t, node, "cycle-probe")
	direct := directClient(p, c.Servers[0].Srv.Pid(), 1)
	got := make([]byte, 4096)
	if _, err := direct.ReadLarge(10, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(10, 4096)) {
		t.Fatal("rejoined replica resynced wrong bytes for file 10")
	}

	// New writes replicate to the rejoiner: read-your-writes via the
	// demoted server once the stream delivers.
	if err := w.WriteBlock(9, 0, versionedPage(0, 3)); err != nil {
		t.Fatal(err)
	}
	waitReplicaServing(t, node, c.Servers[0].Srv.Pid(), 9, 0, versionedPage(0, 3))
}

// TestReplicaFailoverCachingReadYourWrites: promotion-flavored twin of
// the restart failover test — caching clients must purge and
// re-register against the promoted replica so cross-client
// read-your-writes holds across the primary's death.
func TestReplicaFailoverCachingReadYourWrites(t *testing.T) {
	c := startCluster(t, replConfig(false))
	node := clientNode(t, c)
	r := newRouter(t, node)
	a, err := NewVolumeCachingClient(attach(t, node, "writer"), r, 1, CacheClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := NewVolumeCachingClient(attach(t, node, "reader"), r, 1, CacheClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	var mu sync.Mutex
	var skew time.Duration
	b.setNow(func() time.Time { mu.Lock(); defer mu.Unlock(); return time.Now().Add(skew) })

	page := make([]byte, 512)
	read := func(who *CachingClient) []byte {
		t.Helper()
		if _, err := who.ReadBlock(9, 0, page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	if err := a.WriteBlock(9, 0, versionedPage(0, 1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read(b), versionedPage(0, 1)) {
		t.Fatal("reader missed v1 before the crash")
	}
	waitReplicaServing(t, node, c.Servers[1].Srv.Pid(), 9, 0, versionedPage(0, 1))

	c.Kill(0)

	// The writer's next successful op lands on the promoted replica,
	// purging its cache and registering there.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err = a.WriteBlock(9, 0, versionedPage(0, 2)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("caching writer never failed over: %v", err)
		}
	}
	if a.Stats().Purges == 0 {
		t.Fatal("writer never purged on reroute to the promoted replica")
	}

	// The reader's registration died with the old primary; after its
	// lease runs out it re-registers — with the new primary — purges,
	// and reads the post-promotion write.
	mu.Lock()
	skew = 10 * time.Second
	mu.Unlock()
	if !bytes.Equal(read(b), versionedPage(0, 2)) {
		t.Fatal("reader served stale bytes after promotion + lease expiry")
	}
	if b.Stats().Purges == 0 {
		t.Fatal("reader never purged on reroute")
	}
	// Fully re-established: the invalidation protocol carries the next
	// write synchronously.
	if err := a.WriteBlock(9, 0, versionedPage(0, 3)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read(b), versionedPage(0, 3)) {
		t.Fatal("read-your-writes broken after promotion")
	}
}
