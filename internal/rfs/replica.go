package rfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/ipc"
	"vkernel/internal/vproto"
)

// This file is the replica side of volume replication: the apply
// process the primary pushes records to, the control loop that joins a
// primary, pulls catch-up batches or snapshot-resyncs, heartbeats a
// lease on the primary, and — on lease expiry — promotes the
// deterministic candidate (lowest in-sync replica id) to primary.
//
// A replica serves reads only while its primary counts it in-sync (the
// last heartbeat reply said so); everything mutating is answered with
// StatusNoVolume so the existing reroute machinery pins writers to the
// primary. The staleness bound follows: a replica cut from its primary
// serves reads for at most one heartbeat lease before it stops
// answering, and in-sync replicas are never stale at all — the primary
// acks a write only after they applied it.

// repPullGrant sizes the catch-up pull and snapshot-resync buffers.
const repPullGrant = 64 << 10

// errReplicaStopped reports the control loop was asked to shut down.
var errReplicaStopped = errors.New("rfs: replica stopped")

// heartbeatLoop results.
type hbResult int

const (
	hbStop    hbResult = iota // server closing
	hbRejoin                  // primary disowned us (or the volume); rejoin
	hbExpired                 // lease lapsed: the primary is presumed dead
)

// replicaVol runs one volume in replica role.
type replicaVol struct {
	s   *Server
	v   *volume
	rid uint32

	apply *ipc.Proc // receives OpReplicate/OpRepCreate pushes
	ctl   *ipc.Proc // the control loop's join/pull/heartbeat endpoint

	// applyMu orders record application: the push path (applyLoop) and
	// the pull/resync path (control loop) both go through applyRecord.
	applyMu     sync.Mutex
	lastApplied atomic.Uint32
	// serving: the primary's last heartbeat counted us in-sync, so reads
	// may be answered from the replicated store.
	serving atomic.Bool
	// eligible: we were in-sync at last contact — the precondition for
	// promoting (promoting from behind would lose acked writes).
	eligible atomic.Bool
	// candidate is the promotion candidate rid from the last heartbeat.
	candidate atomic.Uint32
	promoted  atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// startReplica spawns the volume's apply process and control endpoint.
// The control loop itself starts later (start), once the server process
// exists — the join message names it as the read-set member.
func (s *Server) startReplica(v *volume, rid uint32) (*replicaVol, error) {
	rv := &replicaVol{s: s, v: v, rid: rid, stop: make(chan struct{})}
	apply, err := s.node.Spawn(fmt.Sprintf("rfs-apply-v%d", v.id), rv.applyLoop)
	if err != nil {
		return nil, err
	}
	rv.apply = apply
	ctl, err := s.node.Attach(fmt.Sprintf("rfs-replica-v%d", v.id))
	if err != nil {
		s.node.Detach(apply)
		return nil, err
	}
	rv.ctl = ctl
	return rv, nil
}

// start launches the control loop.
func (rv *replicaVol) start() {
	rv.wg.Add(1)
	go rv.run()
}

// close stops the control loop and releases the replica's processes.
// Blocked exchanges bound the wait (one retransmit budget at worst).
func (rv *replicaVol) close() {
	rv.stopOnce.Do(func() { close(rv.stop) })
	rv.wg.Wait()
	rv.s.node.Detach(rv.ctl)
	rv.s.node.Detach(rv.apply)
}

// stopped reports whether close was requested.
func (rv *replicaVol) stopped() bool {
	select {
	case <-rv.stop:
		return true
	default:
		return false
	}
}

// sleepStop sleeps d unless close is requested first; it reports
// whether the loop should keep running.
func (rv *replicaVol) sleepStop(d time.Duration) bool {
	select {
	case <-rv.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// applyLoop receives pushed records from the primary's sender. Each
// push is one exchange: data inline with the Send, remainder pulled
// with MoveFrom (the page-write pattern), applied in sequence order,
// acked with the replica's last applied sequence.
func (rv *replicaVol) applyLoop(p *ipc.Proc) {
	for {
		f := bufpool.Get(rv.s.cfg.TransferUnit)
		msg, src, n, err := p.ReceiveWithSegment(f.Data)
		if err != nil {
			f.Release()
			return
		}
		op, file, offOrSize, count := parseRequest(&msg)
		seq := replicateSeq(&msg)
		trace := msg.Trace()
		status := uint32(StatusBadRequest)
		switch {
		case rv.promoted.Load():
			// We are the primary now; a push means a stale ex-primary is
			// still alive. Refuse so its sender drops the connection.
			status = StatusNoVolume
		case op == OpReplicate && int(count) <= len(f.Data):
			got := uint32(n)
			if got > count {
				got = count
			}
			status = StatusOK
			if got < count {
				if err := p.MoveFrom(src, got, f.Data[got:count]); err != nil {
					status = StatusBadRequest
				}
			}
			if status == StatusOK {
				status = rv.applyRecord(repKindWrite, file, offOrSize, f.Data[:count], seq, trace)
			}
		case op == OpRepCreate:
			status = rv.applyRecord(repKindCreate, file, offOrSize, nil, seq, trace)
		}
		f.Release()
		m := buildReply(status, rv.lastApplied.Load())
		_ = p.Reply(&m, src)
	}
}

// applyRecord applies one record to the replicated store: writes go
// store-first then invalidate the cached blocks (the write-through
// pattern; the cache's generation stamps keep a racing read fill from
// caching pre-write bytes), creates truncate through the cache.
// Duplicates (a retransmitted push) ack silently; a sequence gap is
// refused — the primary drops the connection and the replica pulls.
// A traced record logs a span event on the replica's own trace ring —
// the remote leg of a multi-node write timeline.
func (rv *replicaVol) applyRecord(kind byte, file, off uint32, data []byte, seq, trace uint32) uint32 {
	rv.applyMu.Lock()
	defer rv.applyMu.Unlock()
	last := rv.lastApplied.Load()
	if seq <= last {
		return StatusOK
	}
	if seq != last+1 {
		return StatusRepGap
	}
	v := rv.v
	switch kind {
	case repKindWrite:
		if err := v.store.WriteAt(file, data, int64(off)); err != nil {
			return StatusIOError
		}
		bs := uint32(rv.s.cfg.BlockSize)
		end := off
		if len(data) > 0 {
			end = off + uint32(len(data)) - 1
		}
		for blk := off / bs; blk <= end/bs; blk++ {
			v.cache.invalidate(blockID{file: file, block: blk})
		}
	case repKindCreate:
		err := v.cache.truncate(file, func() error {
			return v.store.Create(file, int64(off))
		})
		if err != nil {
			return StatusIOError
		}
	default:
		return StatusBadRequest
	}
	rv.lastApplied.Store(seq)
	rv.s.stats.replApplied.Add(1)
	if trace != 0 {
		rv.s.metrics.Trace().Record(trace, "repl.apply", uint64(seq), 0)
	}
	return StatusOK
}

// run is the control loop: resolve the volume's primary through the
// name service, enroll (catching up by pull or snapshot as the primary
// directs), then heartbeat until the lease lapses or we are disowned.
// When nobody advertises the volume and the lease has lapsed, the
// promotion rule runs (see shouldPromote).
func (rv *replicaVol) run() {
	defer rv.wg.Done()
	lease := rv.s.cfg.ReplicaLease
	hb := lease / 4
	lastSeen := time.Now()
	for !rv.stopped() {
		pid := rv.ctl.GetPid(LogicalVolumeBase+rv.v.id, ipc.ScopeRemote)
		if rv.stopped() {
			return
		}
		if pid == vproto.Nil {
			if rv.shouldPromote(lastSeen, lease) {
				rv.promote()
				return
			}
			if !rv.sleepStop(hb) {
				return
			}
			continue
		}
		seq, flags, status, err := rv.joinPrimary(pid)
		if err != nil || (status != StatusOK && status != StatusRepSnapshot) {
			// Dead between resolve and join, or a stale advertiser.
			if !rv.sleepStop(hb) {
				return
			}
			continue
		}
		lastSeen = time.Now()
		switch {
		case status == StatusRepSnapshot:
			if err := rv.resync(pid); err != nil {
				if !rv.sleepStop(hb) {
					return
				}
			}
		case flags&repJoinPull != 0:
			if err := rv.pullLoop(pid, &lastSeen); err != nil && err != errReplicaStopped {
				if !rv.sleepStop(hb) {
					return
				}
			}
		case flags&repJoinPush != 0:
			if seq == rv.lastApplied.Load() {
				rv.serving.Store(true)
				rv.eligible.Store(true)
			}
			switch rv.heartbeatLoop(pid, &lastSeen, lease, hb) {
			case hbStop:
				return
			case hbRejoin:
				// loop: re-resolve and rejoin
			case hbExpired:
				// loop: the resolve-fails branch runs the promotion rule
			}
		default:
			if !rv.sleepStop(hb) {
				return
			}
		}
	}
}

// joinPrimary sends OpRepJoin, granting the 8-byte pid pair.
func (rv *replicaVol) joinPrimary(primary ipc.Pid) (seq, flags, status uint32, err error) {
	var pids [8]byte
	binary.BigEndian.PutUint32(pids[0:], uint32(rv.apply.Pid()))
	binary.BigEndian.PutUint32(pids[4:], uint32(rv.s.proc.Pid()))
	m := buildRequest(rv.v.id, OpRepJoin, rv.rid, rv.lastApplied.Load(), 8)
	seg := ipc.Segment{Data: pids[:], Access: ipc.SegRead}
	if err := rv.ctl.Send(&m, primary, &seg); err != nil {
		return 0, 0, 0, err
	}
	status, _ = parseReply(&m)
	seq, flags = repJoinReply(&m)
	return seq, flags, status, nil
}

// heartbeatLoop renews the lease every hb until it lapses (the primary
// stopped answering for a whole lease) or the primary disowns us.
func (rv *replicaVol) heartbeatLoop(primary ipc.Pid, lastSeen *time.Time, lease, hb time.Duration) hbResult {
	for {
		if !rv.sleepStop(hb) {
			return hbStop
		}
		m := buildRequest(rv.v.id, OpRepHeartbeat, rv.rid, rv.lastApplied.Load(), 0)
		err := rv.ctl.Send(&m, primary, nil)
		if err == nil {
			status, _ := parseReply(&m)
			if status == StatusOK {
				*lastSeen = time.Now()
				_, cand, flags := repHeartbeatReply(&m)
				rv.candidate.Store(cand)
				if flags&repHBUnknown != 0 {
					rv.serving.Store(false)
					rv.eligible.Store(false)
					return hbRejoin
				}
				inSync := flags&repHBInSync != 0
				rv.serving.Store(inSync)
				rv.eligible.Store(inSync)
				continue
			}
			// StatusNoVolume: the advertiser is no longer this volume's
			// primary (demoted, or a stale route) — re-resolve.
			rv.serving.Store(false)
			return hbRejoin
		}
		if time.Since(*lastSeen) > lease {
			// Presumed dead. Stop serving reads — from here our copy may
			// go stale if a peer promotes and takes writes.
			rv.serving.Store(false)
			return hbExpired
		}
	}
}

// shouldPromote is the failover rule. Only a replica that was in-sync
// at last contact may promote (promoting from behind would lose acked
// writes). The heartbeat-announced candidate (lowest in-sync rid)
// promotes as soon as the lease lapses; everyone else waits rid-scaled
// extra leases while probing for a new primary, so exactly one replica
// moves first and the others find it through the name service.
func (rv *replicaVol) shouldPromote(lastSeen time.Time, lease time.Duration) bool {
	if !rv.eligible.Load() {
		return false
	}
	idle := time.Since(lastSeen)
	if idle <= lease {
		return false
	}
	if rv.candidate.Load() == rv.rid {
		return true
	}
	rank := time.Duration(rv.rid)
	if rank > 8 {
		rank = 8
	}
	return idle > lease+rank*lease
}

// promote flips the volume to primary: fresh replication state seeded
// at our last applied sequence, role flipped (the write path starts
// accepting), and the volume's logical name re-registered so routed
// clients — whose cached routes to the dead primary draw Nacks — find
// us on their next broadcast resolve.
func (rv *replicaVol) promote() {
	s, v := rv.s, rv.v
	rv.promoted.Store(true)
	v.repl = newReplState(s, v.id, rv.lastApplied.Load())
	v.role.Store(rolePrimary)
	rv.serving.Store(true)
	s.proc.SetPid(LogicalVolumeBase+v.id, s.proc.Pid(), ipc.ScopeBoth)
	s.stats.promotions.Add(1)
}

// pullLoop drains the catch-up gap with OpRepPull batches, applying
// each streamed record, until the replica has the primary's current
// sequence (then returns nil: the caller rejoins, this time in push
// mode) or the primary directs a snapshot resync.
func (rv *replicaVol) pullLoop(primary ipc.Pid, lastSeen *time.Time) error {
	grant := make([]byte, repPullGrant)
	for {
		if rv.stopped() {
			return errReplicaStopped
		}
		m := buildRequest(rv.v.id, OpRepPull, rv.rid, rv.lastApplied.Load()+1, uint32(len(grant)))
		seg := ipc.Segment{Data: grant, Access: ipc.SegWrite}
		if err := rv.ctl.Send(&m, primary, &seg); err != nil {
			return err
		}
		status, _ := parseReply(&m)
		switch status {
		case StatusOK:
		case StatusRepSnapshot:
			return rv.resync(primary)
		default:
			return fmt.Errorf("%w: pull status %d", ErrBadStatus, status)
		}
		*lastSeen = time.Now()
		nbytes, records, cur := repPullReply(&m)
		data := grant[:nbytes]
		for i := uint32(0); i < records; i++ {
			rec, n, ok := decodeRepRecord(data)
			if !ok {
				return errors.New("rfs: truncated pull record")
			}
			data = data[n:]
			if st := rv.applyRecord(rec.kind, rec.file, rec.off, rec.data, rec.seq, rec.trace); st != StatusOK {
				return fmt.Errorf("%w: pull apply status %d", ErrBadStatus, st)
			}
		}
		if rv.lastApplied.Load() >= cur || records == 0 {
			return nil
		}
	}
}

// resync rebuilds the replicated store from a primary snapshot: the
// catch-up log no longer reaches our position, so enumerate the
// primary's files (OpRepFiles — which flushes its staged writes and
// stamps the snapshot sequence first, so anything newer is replayed on
// top), stream each one over with large reads, drop local files the
// primary no longer has, and adopt the snapshot sequence.
func (rv *replicaVol) resync(primary ipc.Pid) error {
	rv.s.stats.replResyncs.Add(1)
	grant := make([]byte, repPullGrant)
	m := buildRequest(rv.v.id, OpRepFiles, 0, 0, uint32(len(grant)))
	seg := ipc.Segment{Data: grant, Access: ipc.SegWrite}
	if err := rv.ctl.Send(&m, primary, &seg); err != nil {
		return err
	}
	if status, _ := parseReply(&m); status != StatusOK {
		return fmt.Errorf("%w: files status %d", ErrBadStatus, status)
	}
	entries, snapSeq := repFilesReply(&m)
	if int(entries)*repFileEntry > len(grant) {
		return errors.New("rfs: oversized file catalog")
	}

	rv.applyMu.Lock()
	defer rv.applyMu.Unlock()
	v := rv.v
	cl := &Client{p: rv.ctl, server: primary, vol: v.id, retry: DefaultRetryPolicy, sleep: time.Sleep}
	want := make(map[uint32]bool, entries)
	buf := make([]byte, repPullGrant)
	for i := uint32(0); i < entries; i++ {
		ent := grant[int(i)*repFileEntry:]
		file := binary.BigEndian.Uint32(ent)
		size := int64(binary.BigEndian.Uint64(ent[4:]))
		want[file] = true
		err := v.cache.truncate(file, func() error {
			return v.store.Create(file, size)
		})
		if err != nil {
			return err
		}
		for off := int64(0); off < size; {
			n := size - off
			if n > int64(len(buf)) {
				n = int64(len(buf))
			}
			got, err := cl.ReadLarge(file, uint32(off), buf[:n])
			if err != nil {
				return err
			}
			if got > 0 {
				if err := v.store.WriteAt(file, buf[:got], off); err != nil {
					return err
				}
			}
			if int64(got) < n {
				break // the file shrank mid-copy; newer records fix it up
			}
			off += int64(got)
		}
		if rv.stopped() {
			return errReplicaStopped
		}
	}
	local, err := v.store.Files()
	if err != nil {
		return err
	}
	for _, file := range local {
		if !want[file] {
			err := v.cache.truncate(file, func() error {
				return v.store.Create(file, 0)
			})
			if err != nil {
				return err
			}
		}
	}
	rv.lastApplied.Store(snapSeq)
	return nil
}
