package rfs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vkernel/internal/obs"
)

// TestTracedWriteMultiNodeTimeline: a client-stamped trace id follows a
// write through every hop it fans out to — the primary's request span,
// the replication push, the replica's apply, and the write-behind flush
// that eventually persists the block — each recorded in its own node's
// trace ring, together forming a cross-node timeline for one request.
// Timing stays disabled throughout: tracing alone must be enough to get
// spans (with real durations), while the latency histograms stay empty.
func TestTracedWriteMultiNodeTimeline(t *testing.T) {
	c := startCluster(t, replConfig(false))
	node := clientNode(t, c)
	p := attach(t, node, "traced-writer")
	router := newRouter(t, node)

	cl := NewVolumeClient(p, router, 1)
	trace := obs.NewTraceID()
	cl.SetTrace(trace)

	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(i)
	}
	for blk := uint32(0); blk < 4; blk++ {
		if err := cl.WriteBlock(7, blk, page); err != nil {
			t.Fatalf("write block %d: %v", blk, err)
		}
	}

	primary := shardWithRole(c, 1, RolePrimary)
	replica := shardWithRole(c, 1, RoleReplica)
	if primary == nil || replica == nil {
		t.Fatal("cluster did not come up with a primary and a replica for volume 1")
	}

	// The request span is synchronous with the reply; replication and
	// the write-behind flush land asynchronously, so poll for them.
	has := func(cs *ClusterServer, what string) bool {
		for _, e := range cs.Srv.Metrics().Trace().EventsFor(trace) {
			if e.What == what {
				return true
			}
		}
		return false
	}
	if !has(primary, "rfs.write_block") {
		t.Fatalf("primary ring has no rfs.write_block span for trace %06x: %+v",
			trace, primary.Srv.Metrics().Trace().Events())
	}
	waitUntil(t, 5*time.Second, "replication push span on the primary", func() bool {
		return has(primary, "repl.push")
	})
	waitUntil(t, 5*time.Second, "apply span on the replica", func() bool {
		return has(replica, "repl.apply")
	})
	waitUntil(t, 5*time.Second, "write-behind flush span on the primary", func() bool {
		return has(primary, "rfs.flush")
	})

	// Spans must carry real durations even though timing is off: a
	// traced request forces the clock on for itself alone.
	for _, e := range primary.Srv.Metrics().Trace().EventsFor(trace) {
		if e.What == "rfs.write_block" && e.Dur <= 0 {
			t.Fatalf("traced write span has no duration: %+v", e)
		}
	}
	if primary.Srv.Metrics().TimingEnabled() {
		t.Fatal("tracing a request must not flip global timing on")
	}
	if h := primary.Srv.Metrics().Histogram("rfs.op.write_block").Stat(); h.Count != 0 {
		t.Fatalf("latency histogram filled with timing disabled: %+v", h)
	}
}

// TestScrapeDuringFailover: stats scraping is a bystander. Concurrent
// OpQueryStats scrapes and in-process Stats() reads keep running while
// the primary is killed and the replica promotes, without blocking the
// data path, erroring on live servers, or ever returning a torn
// snapshot (histograms with impossible shapes, counters running
// backwards). The cluster fixture's leak check then proves the
// scrapers' grant buffers all went back to the pool.
func TestScrapeDuringFailover(t *testing.T) {
	cfg := replConfig(false)
	cfg.Server.SlowOp = 2 * time.Second // enables timing → histograms fill
	c := startCluster(t, cfg)
	node := clientNode(t, c)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 4)

	// One scraper per shard, each with its own proc and pinned client:
	// a dead shard's scrape may fail (it is a remote exchange like any
	// other), but a live shard's must parse and be monotonic.
	servers := make([]*Server, len(c.Servers))
	for _, cs := range c.Servers {
		cs := cs
		servers[cs.Index] = cs.Srv
		pid := cs.Srv.Pid()
		p := attach(t, node, fmt.Sprintf("scraper-%d", cs.Index))
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := directClient(p, pid, 1)
			buf := make([]byte, 64*1024)
			last := make(map[string]int64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				streamed, _, err := cl.QueryStats(buf)
				if err != nil {
					continue // shard may be dead or mid-restart
				}
				snap, err := obs.ParseSnapshot(buf[:streamed])
				if err != nil {
					errc <- fmt.Errorf("shard %d: unparseable snapshot: %v", cs.Index, err)
					return
				}
				for name, h := range snap.Hists {
					if h.Count < 0 || h.Sum < 0 || (h.Count > 0 && h.Max <= 0) {
						errc <- fmt.Errorf("shard %d: torn histogram %s: %+v", cs.Index, name, h)
						return
					}
				}
				for name, v := range snap.Counters {
					if prev, ok := last[name]; ok && v < prev {
						errc <- fmt.Errorf("shard %d: counter %s went backwards: %d -> %d", cs.Index, name, prev, v)
						return
					}
					last[name] = v
				}
			}
		}()
	}

	// In-process Stats() reader, the path vnode's shutdown print uses.
	// It keeps polling both servers — including the one that gets killed
	// mid-run: Stats() on a closed server reads frozen counters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, srv := range servers {
				_ = srv.Stats()
			}
		}
	}()

	// Data path under the scrapers: write, kill the primary once the
	// replica is promotion-eligible, keep writing through the promotion,
	// then read everything back. Writes during the gap fail and retry —
	// the loop counts post-kill acks like the burst failover test does.
	p := attach(t, node, "failover-writer")
	router := newRouter(t, node)
	cl := NewVolumeClient(p, router, 1)
	page := make([]byte, 512)
	for blk := uint32(0); blk < 8; blk++ {
		page[0] = byte(blk)
		if err := cl.WriteBlock(3, blk, page); err != nil {
			t.Fatalf("pre-kill write %d: %v", blk, err)
		}
	}

	rv := c.Servers[1].Srv.volumes[1].rv
	waitUntil(t, 5*time.Second, "replica to enroll in-sync", func() bool { return rv.eligible.Load() })
	c.Kill(0)

	acked := 0
	deadline := time.Now().Add(10 * time.Second)
	for acked < 8 {
		if time.Now().After(deadline) {
			t.Fatal("writer never recovered after the primary was killed")
		}
		page[0] = byte(8 + acked)
		if err := cl.WriteBlock(3, uint32(8+acked), page); err == nil {
			acked++
		}
	}
	if role, ok := c.Servers[1].Srv.Role(1); !ok || role != RolePrimary {
		t.Fatalf("survivor role = %v, %v; want promoted primary", role, ok)
	}
	in := make([]byte, 512)
	for blk := uint32(8); blk < 16; blk++ {
		if _, err := cl.ReadBlock(3, blk, in); err != nil {
			t.Fatalf("post-failover read %d: %v", blk, err)
		}
		if in[0] != byte(blk) {
			t.Fatalf("post-failover read %d: got tag %d", blk, in[0])
		}
	}

	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The survivor must have answered scrapes during the storm.
	survivor := shardWithRole(c, 1, RolePrimary)
	if n := survivor.Srv.Stats().StatScrapes; n == 0 {
		t.Fatal("no stats scrapes recorded on the surviving shard")
	}
}
