package rfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"vkernel/internal/ipc"
)

// lossyEnv builds the server/client pair on a mesh that drops, duplicates,
// corrupts and reorders packets, with a retransmission budget large enough
// to ride out the losses.
func lossyEnv(t *testing.T) *env {
	t.Helper()
	return memEnv(t,
		ipc.FaultConfig{
			DropProb:    0.12,
			DupProb:     0.10,
			CorruptProb: 0.05,
			MaxDelay:    2 * time.Millisecond,
		},
		ipc.NodeConfig{RetransmitTimeout: 10 * time.Millisecond, Retries: 100},
		Config{},
	)
}

// TestReadLargeUnderFaults is the §3.3 property end-to-end through the
// file service: a streamed ReadLarge over a lossy, duplicating, reordering
// network must deliver the file intact, with the kernels resuming each
// transfer from the last correctly received byte (visible as
// retransmissions, not corruption).
func TestReadLargeUnderFaults(t *testing.T) {
	e := lossyEnv(t)
	c := e.client(t, "app")

	const size = 64 * 1024
	image := pattern(8, size)
	if err := c.WriteLarge(8, 0, image); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	n, err := c.ReadLarge(8, 0, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != size {
		t.Fatalf("short read: %d", n)
	}
	if !bytes.Equal(got, image) {
		t.Fatal("ReadLarge under faults corrupted data")
	}

	// The MoveTo stream runs server→client, so its resume machinery shows
	// up in the server node's retransmission counter (the client node
	// retransmits Sends). With ~12% loss over ≥64 data packets the run is
	// vacuous if nothing was retransmitted.
	retrans := e.serverNode.Stats().Retransmits + e.clientNode.Stats().Retransmits
	if retrans == 0 {
		t.Fatal("no retransmissions under fault injection; test is vacuous")
	}
}

// TestWritesApplyExactlyOnceUnderFaults: page writes whose requests and
// replies are being dropped and duplicated must each execute exactly once
// at the server — duplicate Sends are answered from the alien reply cache,
// never re-applied.
func TestWritesApplyExactlyOnceUnderFaults(t *testing.T) {
	e := lossyEnv(t)
	c := e.client(t, "app")

	const writes = 40
	for i := 0; i < writes; i++ {
		page := pattern(uint32(i), 512)
		if err := c.WriteBlock(20, uint32(i), page); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Every page arrived intact...
	buf := make([]byte, 512)
	for i := 0; i < writes; i++ {
		if _, err := c.ReadBlock(20, uint32(i), buf); err != nil {
			t.Fatalf("read back %d: %v", i, err)
		}
		if !bytes.Equal(buf, pattern(uint32(i), 512)) {
			t.Fatalf("block %d corrupted", i)
		}
	}
	// ...and each write executed exactly once despite duplicate requests
	// reaching the server (DupsFiltered counts them).
	if st := e.srv.Stats(); st.PageWrites != writes {
		t.Fatalf("server applied %d page writes, want exactly %d (%+v)", st.PageWrites, writes, st)
	}
	if e.serverNode.Stats().DupsFiltered == 0 {
		t.Log("note: fault seed produced no duplicate Sends this run")
	}
}

// TestConcurrentLargeReadsUnderFaults overlays four concurrent streamed
// reads on the lossy mesh; per-stream reassembly must keep them isolated.
func TestConcurrentLargeReadsUnderFaults(t *testing.T) {
	e := lossyEnv(t)
	seed := e.client(t, "seeder")
	const size = 24 * 1024
	files := []uint32{41, 42, 43, 44}
	for _, f := range files {
		if err := seed.WriteLarge(f, 0, pattern(f, size)); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, len(files))
	for i, f := range files {
		c := e.client(t, fmt.Sprintf("app%d", i))
		f := f
		go func() {
			got := make([]byte, size)
			if n, err := c.ReadLarge(f, 0, got); err != nil || n != size {
				errs <- fmt.Errorf("file %d: n=%d err=%v", f, n, err)
				return
			}
			if !bytes.Equal(got, pattern(f, size)) {
				errs <- fmt.Errorf("file %d corrupted", f)
				return
			}
			errs <- nil
		}()
	}
	for range files {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
