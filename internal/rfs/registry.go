package rfs

import (
	"errors"
	"sync"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/obs"
)

// cacheRegistry is the server half of the client-cache consistency
// protocol: per-file registrations of caching clients plus a per-file
// version counter.
//
// Invariant the protocol rests on: a write to a file is acknowledged only
// after every other registered (and unexpired) client has acknowledged an
// OpInvalidate callback for the written blocks — so once a writer sees
// its ack, no client cache anywhere can serve the pre-write bytes. The
// callbacks are still best-effort: a client whose callback process is
// unreachable has its registration dropped (never retried forever), and
// the bounded lease plus the version check on re-registration cap how
// long such a client can serve stale bytes from cache (one lease).
//
// Registrations are keyed by callback pid; the owner pid (the client
// process issuing reads and writes) is recorded so a writer is never
// called back about its own write.
//
// Versions and watcher sets are per-(volume, file): the same file id in
// two volumes is two different files, each with its own counter and its
// own invalidation domain — a write in one volume never calls back, or
// version-bumps, the other's clients.
type cacheRegistry struct {
	mu       sync.Mutex
	files    map[volFile]*fileReg
	lease    time.Duration
	timeout  time.Duration    // bound on one write's whole callback fan-out
	now      func() time.Time // test hook (fake clocks for lease expiry)
	nextReap time.Time        // earliest next registry-wide expired-watcher sweep

	node     *ipc.Node
	jobs     chan invJob
	poolSize int
	workers  sync.WaitGroup

	registrations    *obs.Counter
	callbacks        *obs.Counter
	callbackErrs     *obs.Counter
	callbackTimeouts *obs.Counter
	leaseExpiries    *obs.Counter
	abandoned        *obs.Counter // callback exchanges left parked past their deadline
}

// volFile names one file within one volume — the registry's key.
type volFile struct {
	vol  uint32
	file uint32
}

// fileReg is one (volume, file)'s version counter and watcher set. The
// version survives the watchers: it keeps counting writes after every
// registration is dropped, which is what lets a re-registering client
// detect the writes it missed. (That is also why the reap sweep removes
// watchers but never the fileReg itself.)
type fileReg struct {
	version  uint32
	watchers map[ipc.Pid]*watcher // keyed by callback pid
}

type watcher struct {
	cb      ipc.Pid // callback process on the client's node
	owner   ipc.Pid // client process whose writes must NOT call back
	expires time.Time
}

// invJob is one invalidation callback for the pool: Send OpInvalidate to
// cb and deliver the outcome on done.
type invJob struct {
	cb                               ipc.Pid
	vol, file, first, count, version uint32
	trace                            uint32 // the triggering write's trace id, re-stamped on the callback
	done                             chan<- invResult
}

type invResult struct {
	cb  ipc.Pid
	err error
}

// errCallbackTimeout reports a callback exchange abandoned at its
// deadline (the registration is revoked like any other failure).
var errCallbackTimeout = errors.New("rfs: invalidation callback timed out")

// newCacheRegistry starts the registry with a pool of invalidator
// workers. Each callback exchange runs on a throwaway process attached
// for the job and is abandoned — never waited on — past its deadline,
// so a callback pid that is alive but never in Receive (whose Send the
// reply-pending machinery parks indefinitely) wedges one disposable
// goroutine, not a pool worker, and close never deadlocks behind it.
// Abandoned exchanges self-clean when the Send finally fails (at the
// latest when the node closes).
func newCacheRegistry(node *ipc.Node, lease, timeout time.Duration, workers int, reg *obs.Registry) (*cacheRegistry, error) {
	r := &cacheRegistry{
		files:    make(map[volFile]*fileReg),
		lease:    lease,
		timeout:  timeout,
		now:      time.Now,
		node:     node,
		jobs:     make(chan invJob),
		poolSize: workers,

		registrations:    reg.Counter("rfs.cache_registrations"),
		callbacks:        reg.Counter("rfs.cache_callbacks"),
		callbackErrs:     reg.Counter("rfs.cache_callback_errs"),
		callbackTimeouts: reg.Counter("rfs.cache_callback_timeouts"),
		leaseExpiries:    reg.Counter("rfs.cache_lease_expiries"),
		abandoned:        reg.Counter("rfs.cache_callbacks_abandoned"),
	}
	for i := 0; i < workers; i++ {
		r.workers.Add(1)
		go r.invalidator()
	}
	return r, nil
}

// close stops the invalidator pool. Abandoned callback exchanges are
// deliberately not waited for.
func (r *cacheRegistry) close() {
	close(r.jobs)
	r.workers.Wait()
}

// invalidator is one pool worker: it dispatches each job's exchange on
// its own goroutine + throwaway process and waits at most the deadline,
// so the worker itself always returns to the pool.
func (r *cacheRegistry) invalidator() {
	defer r.workers.Done()
	timer := time.NewTimer(r.timeout)
	if !timer.Stop() {
		<-timer.C
	}
	for job := range r.jobs {
		resCh := make(chan invResult, 1)
		go r.callbackExchange(job, resCh)
		timer.Reset(r.timeout)
		var res invResult
		select {
		case res = <-resCh:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
			r.abandoned.Add(1)
			r.callbackTimeouts.Add(1)
			res = invResult{cb: job.cb, err: errCallbackTimeout}
		}
		r.callbacks.Add(1)
		if res.err != nil {
			r.callbackErrs.Add(1)
		}
		job.done <- res
	}
}

// callbackExchange runs one OpInvalidate Send/Reply on a process
// attached for the job. An overload shed (the callback process's
// receive queue was momentarily full) is retried with the same capped
// backoff the client stubs use — shedding is the kernel's normal burst
// behavior and must not cost a healthy client its registration; any
// other error is final.
func (r *cacheRegistry) callbackExchange(job invJob, resCh chan<- invResult) {
	p, err := r.node.Attach("inval")
	if err != nil {
		resCh <- invResult{cb: job.cb, err: err}
		return
	}
	defer r.node.Detach(p)
	delay := 200 * time.Microsecond
	for attempt := 0; ; attempt++ {
		m := buildInvalidate(job.vol, job.file, job.first, job.count, job.version)
		m.SetTrace(job.trace)
		err = p.Send(&m, job.cb, nil)
		if err == nil {
			if status, _ := parseReply(&m); status != StatusOK {
				err = ErrBadStatus
			}
			break
		}
		if !errors.Is(err, ipc.ErrOverloaded) || attempt >= 8 {
			break
		}
		time.Sleep(delay)
		if delay *= 2; delay > 10*time.Millisecond {
			delay = 10 * time.Millisecond
		}
	}
	resCh <- invResult{cb: job.cb, err: err}
}

// register adds (or renews) a registration and returns the file's current
// version. Renewal by the same callback pid refreshes the lease in place.
// Registration is also the registry's reap point: without it, a watcher
// on a file nobody ever writes again would only be removed by a write's
// fan-out — write-time reaping alone lets idle-file registrations pin
// memory indefinitely.
func (r *cacheRegistry) register(vol, file uint32, owner, cb ipc.Pid) (version uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.reapLocked(now)
	k := volFile{vol: vol, file: file}
	fr := r.files[k]
	if fr == nil {
		fr = &fileReg{watchers: make(map[ipc.Pid]*watcher)}
		r.files[k] = fr
	}
	fr.watchers[cb] = &watcher{cb: cb, owner: owner, expires: now.Add(r.lease)}
	r.registrations.Add(1)
	return fr.version
}

// reapLocked sweeps lease-expired watchers registry-wide, at most once
// per lease period (the sweep is O(watchers); amortizing it over a lease
// keeps the registration path cheap). fileReg entries stay — their
// version counters must outlive the watchers. Caller holds r.mu.
func (r *cacheRegistry) reapLocked(now time.Time) {
	if now.Before(r.nextReap) {
		return
	}
	r.nextReap = now.Add(r.lease)
	for _, fr := range r.files {
		for cb, w := range fr.watchers {
			if !now.Before(w.expires) {
				delete(fr.watchers, cb)
				r.leaseExpiries.Add(1)
			}
		}
	}
}

// release drops a registration (client shutdown or cache disable).
func (r *cacheRegistry) release(vol, file uint32, cb ipc.Pid) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fr := r.files[volFile{vol: vol, file: file}]; fr != nil {
		delete(fr.watchers, cb)
	}
}

// dropInstance revokes a registration after a failed or abandoned
// callback — but only the exact watcher instance the fan-out snapshotted.
// A client that re-registered (renewed) while the fan-out ran installed a
// fresh instance; deleting by pid alone would silently revoke that
// renewal even though its register() reply already carried the post-write
// version (the bump precedes the fan-out), i.e. the renewed client is
// fully consistent and must stay registered.
func (r *cacheRegistry) dropInstance(k volFile, w *watcher) {
	if w == nil {
		return
	}
	r.mu.Lock()
	if fr := r.files[k]; fr != nil && fr.watchers[w.cb] == w {
		delete(fr.watchers, w.cb)
	}
	r.mu.Unlock()
}

// watchers returns the current live registration count (diagnostics).
func (r *cacheRegistry) watcherCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, fr := range r.files {
		n += len(fr.watchers)
	}
	return n
}

// invalidate records a write of [first, first+count) by owner: it bumps
// the file's version and calls back every other registered client,
// blocking until each callback is acknowledged or fails (failed
// registrations are dropped). It returns the post-write version and
// whether the file is version-tracked at all — untracked files (no
// registration ever) skip the counter so the registry stays empty for
// cache-less workloads and the write path costs one mutex acquisition.
func (r *cacheRegistry) invalidate(vol, file, first, count uint32, owner ipc.Pid, trace uint32) (version uint32, tracked bool) {
	k := volFile{vol: vol, file: file}
	r.mu.Lock()
	fr := r.files[k]
	if fr == nil {
		r.mu.Unlock()
		return 0, false
	}
	fr.version++
	version = fr.version
	var targets []*watcher
	if len(fr.watchers) > 0 {
		now := r.now()
		for cb, w := range fr.watchers {
			if !now.Before(w.expires) {
				// Lease ran out without a renewal: the client already
				// refuses cache hits for this file, so no callback is owed.
				delete(fr.watchers, cb)
				r.leaseExpiries.Add(1)
				continue
			}
			if w.owner == owner {
				continue
			}
			targets = append(targets, w)
		}
	}
	r.mu.Unlock()
	if len(targets) == 0 {
		return version, true
	}
	// The whole fan-out runs under a deadline: liveness of the write
	// path must not hinge on every callback process behaving. Each
	// worker already bounds its job by timeout, so the fan-out as a
	// whole needs at most ceil(targets/pool) worker rounds (plus slack);
	// a callback that neither acks nor fails by then — a pid that is
	// alive but never in Receive keeps the Send parked in reply-pending
	// forever — gets its registration revoked and the write proceeds;
	// the revoked client's staleness is bounded by the lease + version
	// machinery. done is buffered so a late worker never blocks on it.
	done := make(chan invResult, len(targets))
	rounds := (len(targets) + r.poolSize - 1) / r.poolSize
	timer := time.NewTimer(time.Duration(rounds)*r.timeout + r.timeout/4)
	defer timer.Stop()
	byCb := make(map[ipc.Pid]*watcher, len(targets))
	for _, w := range targets {
		byCb[w.cb] = w
	}
	answered := make(map[ipc.Pid]bool, len(targets))
	settle := func(res invResult) {
		answered[res.cb] = true
		if res.err != nil {
			// Unreachable callback process: revoke the registration
			// rather than retry forever; the lease/version fallback
			// bounds the staleness this client can now observe.
			r.dropInstance(k, byCb[res.cb])
		}
	}
	sent, timedOut := 0, false
feed:
	for _, w := range targets {
		job := invJob{cb: w.cb, vol: vol, file: file, first: first, count: count, version: version, trace: trace, done: done}
		for {
			select {
			case r.jobs <- job:
				sent++
				continue feed
			case res := <-done:
				settle(res)
			case <-timer.C:
				timedOut = true
				break feed
			}
		}
	}
	for len(answered) < sent && !timedOut {
		select {
		case res := <-done:
			settle(res)
		case <-timer.C:
			timedOut = true
		}
	}
	if timedOut {
		r.callbackTimeouts.Add(1)
		for _, w := range targets {
			if !answered[w.cb] {
				r.dropInstance(k, w)
			}
		}
	}
	return version, true
}
