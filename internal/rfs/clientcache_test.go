package rfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"vkernel/internal/ipc"
)

// cachingClient attaches a fresh process on the client node and binds a
// caching client to the server.
func (e *env) cachingClient(t testing.TB, name string, cfg CacheClientConfig) *CachingClient {
	t.Helper()
	p, err := e.clientNode.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCachingClient(p, e.srv.Pid(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		e.clientNode.Detach(p)
	})
	return c
}

// setNow installs a fake clock on a caching client (staleness-bound
// tests age the lease without sleeping).
func (c *CachingClient) setNow(f func() time.Time) {
	c.mu.Lock()
	c.now = f
	c.mu.Unlock()
}

// setNow installs a fake clock on the server-side registry.
func (r *cacheRegistry) setNow(f func() time.Time) {
	r.mu.Lock()
	r.now = f
	r.mu.Unlock()
}

// TestClientCacheWarmHits: repeated page reads must be served from the
// client cache — the server sees each block once — and the bytes must
// stay correct.
func TestClientCacheWarmHits(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.cachingClient(t, "app", CacheClientConfig{})

	const blocks = 8
	data := pattern(1, blocks*512)
	if err := e.store.WriteAt(1, data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for round := 0; round < 5; round++ {
		for b := uint32(0); b < blocks; b++ {
			if _, err := c.ReadBlock(1, b, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data[b*512:(b+1)*512]) {
				t.Fatalf("round %d block %d corrupted", round, b)
			}
		}
	}
	if got := e.srv.Stats().PageReads; got != blocks {
		t.Fatalf("server saw %d page reads, want %d (one per block)", got, blocks)
	}
	st := c.Stats()
	if st.Hits != 4*blocks || st.Misses != blocks {
		t.Fatalf("client cache stats: %+v", st)
	}

	// Partial reads are served from the cached page without a server trip.
	small := make([]byte, 64)
	if n, err := c.ReadBlock(1, 2, small); err != nil || n != 64 {
		t.Fatalf("partial read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(small, data[2*512:2*512+64]) {
		t.Fatal("partial read from cache corrupted")
	}
	if got := e.srv.Stats().PageReads; got != blocks {
		t.Fatalf("partial read went to the server (%d reads)", got)
	}
}

// checkInvalidationConsistency drives the acceptance scenario: a reader
// with a warm client cache and a writer on the same file; after every
// acknowledged write the reader must observe the new bytes
// (read-your-writes across clients), because the server calls the
// reader's cache back before acknowledging the writer.
func checkInvalidationConsistency(t *testing.T, e *env) {
	t.Helper()
	reader := e.cachingClient(t, "reader", CacheClientConfig{})
	writer := e.cachingClient(t, "writer", CacheClientConfig{})

	const blocks = 4
	for b := uint32(0); b < blocks; b++ {
		if err := writer.WriteBlock(40, b, versionedPage(b, 0)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 512)
	for _, c := range []*CachingClient{reader, writer} {
		for b := uint32(0); b < blocks; b++ {
			if _, err := c.ReadBlock(40, b, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := uint32(1); round <= 8; round++ {
		b := round % blocks
		want := versionedPage(b, round)
		if err := writer.WriteBlock(40, b, want); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		// The write is acknowledged: the reader's cached copy must be gone.
		if _, err := reader.ReadBlock(40, b, buf); err != nil {
			t.Fatalf("round %d read: %v", round, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("round %d: reader served stale bytes after the write was acked", round)
		}
		// And the writer's own copy stayed current too.
		if _, err := writer.ReadBlock(40, b, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("round %d: writer's own cache went stale", round)
		}
	}
	if st := e.srv.Stats(); st.CacheCallbacks == 0 {
		t.Fatalf("no invalidation callbacks sent: %+v", st)
	}
	if st := reader.Stats(); st.Callbacks == 0 {
		t.Fatalf("reader never received a callback: %+v", st)
	}
}

func TestClientCacheInvalidation(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	checkInvalidationConsistency(t, e)
}

// TestClientCacheInvalidationUnderFaults is the same consistency bar
// over a lossy, duplicating, reordering mesh: callbacks ride the same
// reliable exchange machinery, so consistency must hold as long as the
// retransmission budget does — and the run is vacuous without
// retransmissions actually happening.
func TestClientCacheInvalidationUnderFaults(t *testing.T) {
	e := memEnv(t,
		ipc.FaultConfig{
			DropProb:    0.12,
			DupProb:     0.10,
			CorruptProb: 0.05,
			MaxDelay:    2 * time.Millisecond,
		},
		ipc.NodeConfig{RetransmitTimeout: 10 * time.Millisecond, Retries: 100},
		Config{},
	)
	checkInvalidationConsistency(t, e)
	if e.serverNode.Stats().Retransmits+e.clientNode.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions under fault injection; test is vacuous")
	}
}

func TestClientCacheInvalidationUDP(t *testing.T) {
	e := udpEnv(t, Config{})
	checkInvalidationConsistency(t, e)
}

// TestClientCacheLargeWriteInvalidates: a streamed WriteLarge must drop
// every touched block in other clients' caches before it is acked.
func TestClientCacheLargeWriteInvalidates(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	reader := e.cachingClient(t, "reader", CacheClientConfig{})
	writer := e.client(t, "writer") // plain client: invalidation must not depend on the writer caching

	base := pattern(50, 16*512)
	if err := writer.WriteLarge(50, 0, base); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for b := uint32(0); b < 16; b++ {
		if _, err := reader.ReadBlock(50, b, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a span straddling blocks 3..6, unaligned on both ends.
	patch := pattern(51, 1800)
	if err := writer.WriteLarge(50, 3*512+100, patch); err != nil {
		t.Fatal(err)
	}
	copy(base[3*512+100:], patch)
	for b := uint32(0); b < 16; b++ {
		if _, err := reader.ReadBlock(50, b, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, base[b*512:(b+1)*512]) {
			t.Fatalf("block %d stale after acked WriteLarge", b)
		}
	}

	// Truncation drops the whole file from the reader's cache.
	if err := writer.CreateFile(50, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.ReadBlock(50, 0, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("byte %d nonzero after acked truncate", i)
		}
	}
}

// TestClientCacheStalenessBound is the lost-callback case: a client
// whose callback process died keeps serving its cached (now stale)
// bytes — but only until its lease runs out. The forced re-registration
// returns the file's current version, the mismatch purges the cache,
// and the next read is fresh. The staleness window is exactly bounded
// by the lease.
func TestClientCacheStalenessBound(t *testing.T) {
	const lease = 10 * time.Second
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{CacheLease: lease})
	reader := e.cachingClient(t, "reader", CacheClientConfig{})
	writer := e.client(t, "writer")

	base := time.Now()
	reader.setNow(func() time.Time { return base })

	old := versionedPage(0, 1)
	if err := writer.WriteBlock(60, 0, old); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := reader.ReadBlock(60, 0, buf); err != nil {
		t.Fatal(err)
	}

	// The reader loses its callback channel (process death stands in for
	// any persistently lost callback).
	e.clientNode.Detach(reader.cb)

	// The writer's update goes through; the server's callback fails and
	// the registration is revoked.
	want := versionedPage(0, 2)
	if err := writer.WriteBlock(60, 0, want); err != nil {
		t.Fatal(err)
	}
	if st := e.srv.Stats(); st.CacheCallbackErrs == 0 {
		t.Fatalf("callback to the dead process did not fail: %+v", st)
	}

	// Within the lease the reader serves the stale page — this IS the
	// documented window, assert it exists so the bound is meaningful.
	if _, err := reader.ReadBlock(60, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, old) {
		t.Fatal("expected the stale page inside the lease window")
	}

	// Past the lease the hit path must renew, spot the version bump and
	// purge: the read comes back fresh.
	reader.setNow(func() time.Time { return base.Add(lease) })
	if _, err := reader.ReadBlock(60, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("stale page survived past the lease")
	}
	if st := reader.Stats(); st.Purges == 0 {
		t.Fatalf("renewal did not purge: %+v", st)
	}
}

// TestClientCacheServerLeaseExpiry is the other half of the lease
// machinery: once a registration expires server-side, writes stop
// paying for callbacks to it — and the client still converges because
// its own (strictly shorter) lease forces the renewal-and-purge first.
func TestClientCacheServerLeaseExpiry(t *testing.T) {
	const lease = 10 * time.Second
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{CacheLease: lease})
	reader := e.cachingClient(t, "reader", CacheClientConfig{})
	writer := e.client(t, "writer")

	base := time.Now()
	reader.setNow(func() time.Time { return base })
	e.srv.registry.setNow(func() time.Time { return base })

	if err := writer.WriteBlock(61, 0, versionedPage(0, 1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := reader.ReadBlock(61, 0, buf); err != nil {
		t.Fatal(err)
	}

	// Both clocks jump past the lease. The write must sail through
	// without a callback (the registration is reaped instead).
	reader.setNow(func() time.Time { return base.Add(2 * lease) })
	e.srv.registry.setNow(func() time.Time { return base.Add(2 * lease) })
	before := e.srv.Stats().CacheCallbacks
	want := versionedPage(0, 2)
	if err := writer.WriteBlock(61, 0, want); err != nil {
		t.Fatal(err)
	}
	st := e.srv.Stats()
	if st.CacheCallbacks != before {
		t.Fatalf("write called back an expired registration: %+v", st)
	}
	if st.CacheLeaseExpiries == 0 {
		t.Fatalf("expired registration not reaped: %+v", st)
	}

	// The reader's own lease expired too, so the next read renews,
	// purges on the version mismatch and returns fresh bytes.
	if _, err := reader.ReadBlock(61, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("reader served stale bytes after both leases expired")
	}
}

// TestClientCacheVersionGapPurges closes the write-reply loophole in
// the staleness bound: a client whose registration was silently revoked
// (its callback process died) misses an invalidation, then writes a
// DIFFERENT block of the same file. The write reply's version skips
// ahead of the client's last known version — proof of the missed
// invalidation — and must purge the cached blocks immediately, even
// though the client's lease is still fresh. Without the contiguity
// check the reply would blindly re-sync the version, the next renewal
// would find no mismatch, and the stale block would be served forever.
func TestClientCacheVersionGapPurges(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{CacheLease: time.Hour})
	reader := e.cachingClient(t, "reader", CacheClientConfig{})
	writer := e.client(t, "writer")

	old := versionedPage(2, 1)
	if err := writer.WriteBlock(80, 2, old); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := reader.ReadBlock(80, 2, buf); err != nil { // caches block 2
		t.Fatal(err)
	}
	e.clientNode.Detach(reader.cb) // registration will be revoked on the next callback

	want := versionedPage(2, 2)
	if err := writer.WriteBlock(80, 2, want); err != nil { // reader misses this
		t.Fatal(err)
	}
	// The reader's own write to another block carries a gapped version.
	if err := reader.WriteBlock(80, 5, versionedPage(5, 1)); err != nil {
		t.Fatal(err)
	}
	if st := reader.Stats(); st.Purges == 0 {
		t.Fatalf("version gap in a write reply did not purge: %+v", st)
	}
	// Block 2 must now be refetched — fresh bytes, lease still valid.
	if _, err := reader.ReadBlock(80, 2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("stale block served after a version-gap write reply")
	}
}

// failingFileStore fails every write of one file (the write-back error
// path) and passes the rest through.
type failingFileStore struct {
	Store
	badFile uint32
}

var errBadDevice = fmt.Errorf("rfs test: device write failed")

func (f *failingFileStore) WriteAt(file uint32, p []byte, off int64) error {
	if file == f.badFile {
		return errBadDevice
	}
	return f.Store.WriteAt(file, p, off)
}

// TestPerFileSyncErrorIsolation: a per-file sync must report — and
// clear — only its own file's write-back failures. A sync of a healthy
// file must not steal the failing file's error, and the failing file's
// own sync must still see it.
func TestPerFileSyncErrorIsolation(t *testing.T) {
	failing := &failingFileStore{Store: NewMemStore(), badFile: 8}
	e := memEnvStore(t, failing, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.client(t, "app")

	if err := c.WriteBlock(8, 0, pattern(8, 512)); err != nil {
		t.Fatal(err)
	}
	// Wait for the eager flusher to hit the failing device.
	deadline := time.Now().Add(2 * time.Second)
	for e.srv.Stats().FlushErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flush error never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.WriteBlock(9, 0, pattern(9, 512)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(9); err != nil {
		t.Fatalf("healthy file's sync reported another file's error: %v", err)
	}
	if err := c.Sync(8); err == nil {
		t.Fatal("failing file's sync reported success for lost bytes")
	}
	if err := c.Sync(8); err != nil {
		t.Fatalf("flush error not cleared by the failing file's own sync: %v", err)
	}
}

// TestCallbackTimeoutUnblocksWrites: a registered callback pid that is
// alive but never calls Receive would park the invalidation Send in
// reply-pending forever; the fan-out deadline must revoke it and let
// the write through.
func TestCallbackTimeoutUnblocksWrites(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{CallbackTimeout: 100 * time.Millisecond})
	c := e.client(t, "app")

	// A process that never receives, registered as file 77's callback.
	wedged, err := e.clientNode.Attach("wedged-cb")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.clientNode.Detach(wedged) })
	m := buildRequest(DefaultVolume, OpRegisterCache, 77, uint32(wedged.Pid()), 0)
	if err := c.exchange(&m, nil); err != nil {
		t.Fatal(err)
	}

	writer := e.client(t, "writer")
	start := time.Now()
	if err := writer.WriteBlock(77, 0, pattern(77, 512)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("write stalled %v behind a wedged callback", elapsed)
	}
	if st := e.srv.Stats(); st.CacheCallbackTimeouts == 0 {
		t.Fatalf("fan-out deadline never fired: %+v", st)
	}
	// The registration is revoked: the next write is full speed again.
	start = time.Now()
	if err := writer.WriteBlock(77, 1, pattern(78, 512)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("second write still paid for the revoked callback (%v)", elapsed)
	}
	// The abandoned exchange is still parked in its Send (reply-pending
	// keeps resetting its retries); Server.Close must not wait for it —
	// the wedge costs a disposable goroutine, not the shutdown path.
	closed := make(chan struct{})
	go func() { e.srv.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close deadlocked behind an abandoned callback exchange")
	}
}

// TestClientCacheConcurrentSharedFile races caching readers against
// writers on one file under the race detector: every read must observe
// some complete write of the block (versionedPage), never a torn or
// resurrected mix, and a final quiesced read must be exactly the last
// write.
func TestClientCacheConcurrentSharedFile(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	seed := e.client(t, "seeder")
	const blocks = 8
	for b := uint32(0); b < blocks; b++ {
		if err := seed.WriteBlock(70, b, versionedPage(b, 0)); err != nil {
			t.Fatal(err)
		}
	}
	const writers, readers, rounds = 2, 3, 30
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		c := e.cachingClient(t, fmt.Sprintf("cwriter%d", w), CacheClientConfig{})
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				b := uint32((w*rounds + r) % blocks)
				v := uint32(w*rounds + r)
				if err := c.WriteBlock(70, b, versionedPage(b, v)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		c := e.cachingClient(t, fmt.Sprintf("creader%d", rd), CacheClientConfig{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			page := make([]byte, 512)
			for r := 0; r < rounds*2; r++ {
				b := uint32(r % blocks)
				if _, err := c.ReadBlock(70, b, page); err != nil {
					errs <- err
					return
				}
				if err := checkVersionedPage(b, page); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Quiesced: one known write per block must now win everywhere — a
	// fresh caching client and a racing-era one agree on it exactly.
	seed2 := e.client(t, "sealer")
	for b := uint32(0); b < blocks; b++ {
		if err := seed2.WriteBlock(70, b, versionedPage(b, 9999)); err != nil {
			t.Fatal(err)
		}
	}
	c := e.cachingClient(t, "checker", CacheClientConfig{})
	page := make([]byte, 512)
	for b := uint32(0); b < blocks; b++ {
		if _, err := c.ReadBlock(70, b, page); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(page, versionedPage(b, 9999)) {
			t.Fatalf("block %d: quiesced read is not the sealing write", b)
		}
	}
}

// TestDiscoverUnderLoss: broadcast name-service resolution must retry
// through heavy packet loss until the server answers.
func TestDiscoverUnderLoss(t *testing.T) {
	e := memEnv(t,
		ipc.FaultConfig{DropProb: 0.4},
		ipc.NodeConfig{GetPidTimeout: 5 * time.Millisecond, GetPidRetries: 100},
		Config{},
	)
	p, err := e.clientNode.Attach("seeker")
	if err != nil {
		t.Fatal(err)
	}
	defer e.clientNode.Detach(p)
	c, err := Discover(p)
	if err != nil {
		t.Fatalf("Discover failed through 40%% loss: %v", err)
	}
	if c.Server() != e.srv.Pid() {
		t.Fatalf("resolved %v, want %v", c.Server(), e.srv.Pid())
	}
}

// TestDiscoverBoundedFailure: with no server anywhere, Discover must
// give up after the configured attempt budget instead of spinning.
func TestDiscoverBoundedFailure(t *testing.T) {
	leakCheck(t)
	mesh := ipc.NewMemNetwork(7, ipc.FaultConfig{DropProb: 0.4})
	node := ipc.NewNode(2, mesh.Transport(2), ipc.NodeConfig{GetPidTimeout: 2 * time.Millisecond, GetPidRetries: 3})
	t.Cleanup(func() {
		_ = node.Close()
		mesh.Close()
	})
	p, err := node.Attach("seeker")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Detach(p)
	start := time.Now()
	if _, err := Discover(p); err != ErrNoServer {
		t.Fatalf("Discover with no server: err=%v, want ErrNoServer", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Discover failure not bounded: took %v", elapsed)
	}
}
