package rfs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vkernel/internal/ipc"
)

// Throughput benchmarks for the real file service: §3.4 page reads (one
// Send/Reply exchange, page in the reply packet) and §6.3 64 KB streamed
// reads (MoveTo in transfer-unit chunks) at 1, 4 and 16 concurrent
// clients, over both the in-memory mesh and loopback UDP sockets. The
// custom ops/s metric is the figure of merit — on a multi-core host it
// must grow with client count, since the server handles requests on a
// worker pool and the node's subsystems are independently locked.
//
// Run: go test -run=- -bench=. -benchmem ./internal/rfs/

const benchFile = 1

// benchEnv builds a warmed server/client pair on the given transport
// flavor with a file large enough for the access patterns below.
func benchEnv(b *testing.B, flavor string) *env {
	b.Helper()
	var e *env
	switch flavor {
	case "mem":
		e = memEnv(b, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	case "udp":
		e = udpEnv(b, Config{})
	default:
		b.Fatalf("unknown flavor %q", flavor)
	}
	const size = 256 * 1024
	if err := e.store.Create(benchFile, size); err != nil {
		b.Fatal(err)
	}
	if err := e.store.WriteAt(benchFile, pattern(benchFile, size), 0); err != nil {
		b.Fatal(err)
	}
	return e
}

// run drives clients goroutines, each looping op until the shared
// iteration budget is spent, and reports ops/s. Each goroutine gets one
// reusable scratch buffer (the page/image buffer a real program would own)
// so that ReportAllocs measures the data path itself — client stubs, both
// nodes, transport, server, cache — as allocs/op and B/op, the figure of
// merit for the pooled zero-copy path.
func run(b *testing.B, e *env, clients int, bytesPer int, op func(c *Client, scratch []byte, i int) error) {
	per := b.N/clients + 1
	if bytesPer > 0 {
		b.SetBytes(int64(bytesPer))
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		c := e.client(b, fmt.Sprintf("bench%d", g))
		scratch := make([]byte, bytesPer)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := op(c, scratch, i); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := float64(per * clients)
	b.ReportMetric(ops/elapsed.Seconds(), "ops/s")
	if bytesPer > 0 {
		b.ReportMetric(ops*float64(bytesPer)/(1<<20)/elapsed.Seconds(), "MB/s")
	}
}

// BenchmarkPageRead measures §3.4 page-read throughput (512 B in the
// reply packet) versus client concurrency.
func BenchmarkPageRead(b *testing.B) {
	for _, flavor := range []string{"mem", "udp"} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", flavor, clients), func(b *testing.B) {
				e := benchEnv(b, flavor)
				run(b, e, clients, 512, func(c *Client, scratch []byte, i int) error {
					_, err := c.ReadBlock(benchFile, uint32(i%256), scratch)
					return err
				})
			})
		}
	}
}

// BenchmarkPageWrite measures §3.4 page-write throughput (data inline
// with the Send packet) versus client concurrency.
func BenchmarkPageWrite(b *testing.B) {
	for _, flavor := range []string{"mem", "udp"} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", flavor, clients), func(b *testing.B) {
				e := benchEnv(b, flavor)
				page := pattern(3, 512)
				run(b, e, clients, 512, func(c *Client, _ []byte, i int) error {
					return c.WriteBlock(benchFile, uint32(i%256), page)
				})
			})
		}
	}
}

// BenchmarkReadLarge64K measures §6.3 program-load-sized streamed reads
// (64 KB via MoveTo) versus client concurrency.
func BenchmarkReadLarge64K(b *testing.B) {
	const size = 64 * 1024
	for _, flavor := range []string{"mem", "udp"} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", flavor, clients), func(b *testing.B) {
				e := benchEnv(b, flavor)
				run(b, e, clients, size, func(c *Client, scratch []byte, i int) error {
					n, err := c.ReadLarge(benchFile, 0, scratch)
					if err == nil && n != size {
						return fmt.Errorf("short read: %d", n)
					}
					return err
				})
			})
		}
	}
}
