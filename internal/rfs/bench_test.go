package rfs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vkernel/internal/ipc"
)

// Throughput benchmarks for the real file service: §3.4 page reads (one
// Send/Reply exchange, page in the reply packet) and §6.3 64 KB streamed
// reads (MoveTo in transfer-unit chunks) at 1, 4 and 16 concurrent
// clients, over both the in-memory mesh and loopback UDP sockets. The
// custom ops/s metric is the figure of merit — on a multi-core host it
// must grow with client count, since the server handles requests on a
// worker pool and the node's subsystems are independently locked.
//
// Run: go test -run=- -bench=. -benchmem ./internal/rfs/

const benchFile = 1

// benchStoreDelay is the simulated device-write latency behind the
// write benchmarks: §6.2's write path exists to keep the client from
// waiting on the server's disk, so the store the two write modes are
// compared against must actually cost something to write. One
// millisecond models a disk-class device (generous by the paper's
// standards, and safely above this kernel's sleep granularity, so the
// modeled latency is the real one). Reads stay instant — the read
// benches measure the RPC path against pure memory.
const benchStoreDelay = time.Millisecond

// benchEnv builds a warmed server/client pair on the given transport
// flavor with a file large enough for the access patterns below.
func benchEnv(b *testing.B, flavor string) *env {
	return benchEnvCfg(b, flavor, Config{}, nil)
}

func benchEnvCfg(b *testing.B, flavor string, cfg Config, store Store) *env {
	b.Helper()
	if store == nil {
		store = NewMemStore()
	}
	var e *env
	switch flavor {
	case "mem":
		e = memEnvStore(b, store, ipc.FaultConfig{}, ipc.NodeConfig{}, cfg)
	case "udp":
		e = udpEnvStore(b, store, cfg)
	default:
		b.Fatalf("unknown flavor %q", flavor)
	}
	const size = 256 * 1024
	if err := e.store.Create(benchFile, size); err != nil {
		b.Fatal(err)
	}
	if err := e.store.WriteAt(benchFile, pattern(benchFile, size), 0); err != nil {
		b.Fatal(err)
	}
	return e
}

// run drives clients goroutines, each looping op until the shared
// iteration budget is spent, and reports ops/s. Each goroutine gets one
// reusable scratch buffer (the page/image buffer a real program would own)
// so that ReportAllocs measures the data path itself — client stubs, both
// nodes, transport, server, cache — as allocs/op and B/op, the figure of
// merit for the pooled zero-copy path.
func run(b *testing.B, e *env, clients int, bytesPer int, op func(c *Client, g int, scratch []byte, i int) error) {
	per := b.N/clients + 1
	if bytesPer > 0 {
		b.SetBytes(int64(bytesPer))
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		c := e.client(b, fmt.Sprintf("bench%d", g))
		scratch := make([]byte, bytesPer)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := op(c, g, scratch, i); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := float64(per * clients)
	b.ReportMetric(ops/elapsed.Seconds(), "ops/s")
	if bytesPer > 0 {
		b.ReportMetric(ops*float64(bytesPer)/(1<<20)/elapsed.Seconds(), "MB/s")
	}
}

// writeModes names the two write-path configurations the §6.2
// comparison measures: wb = write-behind (dirty staging + async flush,
// the default), wt = write-through (the synchronous baseline).
var writeModes = []struct {
	name string
	cfg  Config
}{
	{"wb", Config{}},
	{"wt", Config{WriteThrough: true}},
}

// BenchmarkPageRead measures §3.4 page-read throughput (512 B in the
// reply packet) versus client concurrency.
func BenchmarkPageRead(b *testing.B) {
	for _, flavor := range []string{"mem", "udp"} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", flavor, clients), func(b *testing.B) {
				e := benchEnv(b, flavor)
				run(b, e, clients, 512, func(c *Client, _ int, scratch []byte, i int) error {
					_, err := c.ReadBlock(benchFile, uint32(i%256), scratch)
					return err
				})
			})
		}
	}
}

// BenchmarkPageWrite measures §3.4 page-write throughput (data inline
// with the Send packet) versus client concurrency, in both write-behind
// and write-through modes.
func BenchmarkPageWrite(b *testing.B) {
	for _, flavor := range []string{"mem", "udp"} {
		for _, mode := range writeModes {
			for _, clients := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/clients=%d", flavor, mode.name, clients), func(b *testing.B) {
					e := benchEnvCfg(b, flavor, mode.cfg, &slowStore{Store: NewMemStore(), delay: benchStoreDelay})
					page := pattern(3, 512)
					run(b, e, clients, 512, func(c *Client, _ int, _ []byte, i int) error {
						return c.WriteBlock(benchFile, uint32(i%256), page)
					})
				})
			}
		}
	}
}

// BenchmarkReadLarge64K measures §6.3 program-load-sized streamed reads
// (64 KB via MoveTo) versus client concurrency.
func BenchmarkReadLarge64K(b *testing.B) {
	const size = 64 * 1024
	for _, flavor := range []string{"mem", "udp"} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", flavor, clients), func(b *testing.B) {
				e := benchEnv(b, flavor)
				run(b, e, clients, size, func(c *Client, _ int, scratch []byte, i int) error {
					n, err := c.ReadLarge(benchFile, 0, scratch)
					if err == nil && n != size {
						return fmt.Errorf("short read: %d", n)
					}
					return err
				})
			})
		}
	}
}

// BenchmarkWriteLarge64K measures streamed 64 KB writes (pulled by the
// server in transfer-unit chunks) versus client concurrency, in both
// modes: write-behind scatters each chunk straight into cache blocks
// with MoveFromVec and overlaps the pull of chunk N+1 with absorbing
// chunk N; write-through is the serial pull-then-store baseline. Each
// client writes its own file, the program-installation shape of §6.3.
func BenchmarkWriteLarge64K(b *testing.B) {
	const size = 64 * 1024
	for _, flavor := range []string{"mem", "udp"} {
		for _, mode := range writeModes {
			for _, clients := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/clients=%d", flavor, mode.name, clients), func(b *testing.B) {
					e := benchEnvCfg(b, flavor, mode.cfg, &slowStore{Store: NewMemStore(), delay: benchStoreDelay})
					image := pattern(9, size)
					run(b, e, clients, size, func(c *Client, g int, _ []byte, i int) error {
						return c.WriteLarge(uint32(1000+g), 0, image)
					})
				})
			}
		}
	}
}
