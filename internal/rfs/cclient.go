package rfs

import (
	"sync"
	"sync/atomic"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/rfs/ccache"
)

// CacheClientConfig tunes a CachingClient; the zero value gets defaults.
type CacheClientConfig struct {
	// Blocks bounds the local cache (0 → 256 blocks).
	Blocks int
	// BlockSize must match the server's page size (0 → 512).
	BlockSize int
}

// CacheClientStats snapshots a caching client's activity.
type CacheClientStats struct {
	Hits      int64 // page reads served from the local cache
	Misses    int64 // page reads that went to the server
	Renewals  int64 // registrations sent (first registrations + lease renewals)
	Purges    int64 // whole-file drops after a version mismatch on renewal
	Callbacks int64 // invalidation callbacks received from the server
}

// CachingClient is a diskless workstation's file client with a local
// block cache — the configuration the paper's §6.2 argues against. It
// wraps the plain stub Client and layers the cache-consistency protocol
// over it:
//
//   - Before the first cached access to a file (and again when the lease
//     runs low) the client registers with the server (OpRegisterCache),
//     naming the callback process it runs for invalidations, and learns
//     the file's version.
//   - Page reads check the cache first; misses fill it with a
//     generation-stamped insert (an invalidation racing the fill wins).
//   - On any other client's write the server Sends an OpInvalidate
//     callback before acknowledging the writer, and the callback process
//     drops the named blocks — so a read issued after any write's ack
//     never sees pre-write bytes (read-your-writes across clients).
//   - Writes go through to the server; the reply carries the post-write
//     version, and the local copy is refreshed (full pages) or dropped
//     (partial and large writes).
//   - Lost callbacks cannot serve stale bytes forever: cache hits are
//     refused once the lease runs out, the forced re-registration
//     returns the current version, and a mismatch purges the file's
//     cached blocks. The staleness window is bounded by one lease.
//
// Like Client, a CachingClient's request path is not safe for concurrent
// use; the callback process runs concurrently and shares only the
// internally locked state.
type CachingClient struct {
	*Client
	node  *ipc.Node
	cache *ccache.Cache
	cb    *ipc.Proc

	mu    sync.Mutex
	files map[uint32]*cachedFile
	now   func() time.Time // test hook (fake clock for the staleness bound)

	renewals  atomic.Int64
	purges    atomic.Int64
	callbacks atomic.Int64

	closed sync.Once
}

// cachedFile is the client's consistency state for one file.
type cachedFile struct {
	version    uint32
	versioned  bool // version field is meaningful (at least one registration completed)
	expires    time.Time
	registered bool
}

// NewCachingClient binds caching stubs for process p to the server (and
// DefaultVolume), spawning the invalidation-callback process on p's
// node. Close releases it.
func NewCachingClient(p *ipc.Proc, server ipc.Pid, cfg CacheClientConfig) (*CachingClient, error) {
	return newCachingClient(p, NewClient(p, server), cfg)
}

// NewVolumeCachingClient binds caching stubs for process p to one volume,
// routing every operation (and registration) to the server the router
// resolves. If the volume fails over to a different server, the whole
// local cache and every registration are discarded before the first
// exchange reaches the new server: its registry knows nothing about this
// client and its version counters restart, so nothing cached under the
// old server may survive — within a volume the PR 5 consistency protocol
// then holds exactly as before.
func NewVolumeCachingClient(p *ipc.Proc, router *Router, vol uint32, cfg CacheClientConfig) (*CachingClient, error) {
	return newCachingClient(p, NewVolumeClient(p, router, vol), cfg)
}

func newCachingClient(p *ipc.Proc, cl *Client, cfg CacheClientConfig) (*CachingClient, error) {
	c := &CachingClient{
		Client: cl,
		node:   p.Node(),
		cache:  ccache.New(ccache.Config{Blocks: cfg.Blocks, BlockSize: cfg.BlockSize}),
		files:  make(map[uint32]*cachedFile),
		now:    time.Now,
	}
	cl.onReroute = c.rerouted
	cb, err := c.node.Spawn(p.Name()+"-ccb", c.callbackLoop)
	if err != nil {
		c.cache.Close()
		return nil, err
	}
	c.cb = cb
	return c, nil
}

// rerouted runs when the routed client observes the volume on a new
// server pid: the previous server's registrations and version baselines
// mean nothing there, so the cache is purged wholesale and every file's
// consistency state reset (the next access re-registers from scratch).
// The purge bumps every generation stamp, so fills and write refreshes
// already in flight against the old server cannot resurrect their bytes.
func (c *CachingClient) rerouted(ipc.Pid) {
	c.purges.Add(1)
	c.mu.Lock()
	c.files = make(map[uint32]*cachedFile)
	c.mu.Unlock()
	c.cache.Purge()
}

// CallbackPid returns the invalidation-callback process id (tests kill it
// to simulate a client that lost its callback channel).
func (c *CachingClient) CallbackPid() ipc.Pid { return c.cb.Pid() }

// Cache exposes the underlying block cache (stats, tests).
func (c *CachingClient) Cache() *ccache.Cache { return c.cache }

// Stats snapshots the client-cache counters.
func (c *CachingClient) Stats() CacheClientStats {
	cs := c.cache.Stats()
	return CacheClientStats{
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Renewals:  c.renewals.Load(),
		Purges:    c.purges.Load(),
		Callbacks: c.callbacks.Load(),
	}
}

// Close releases the client's registrations (best effort), stops the
// callback process and drops the cache.
func (c *CachingClient) Close() {
	c.closed.Do(func() {
		c.mu.Lock()
		var regs []uint32
		for file, fs := range c.files {
			if fs.registered {
				regs = append(regs, file)
			}
		}
		c.mu.Unlock()
		for _, file := range regs {
			m := c.request(OpReleaseCache, file, uint32(c.cb.Pid()), 0)
			_ = c.exchange(&m, nil)
		}
		c.node.Detach(c.cb)
		c.cache.Close()
	})
}

// callbackLoop is the invalidation-callback process: it receives
// OpInvalidate Sends from the server, drops the named blocks, records the
// new version and replies. The server withholds the writer's ack until
// this reply, so the drop happens-before any post-ack read anywhere.
func (c *CachingClient) callbackLoop(p *ipc.Proc) {
	for {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		op, file, first, count := parseRequest(&msg)
		if op != OpInvalidate {
			reply := buildReply(StatusBadRequest, 0)
			_ = p.Reply(&reply, src)
			continue
		}
		version, vol := parseInvalidate(&msg)
		if vol != c.vol {
			// Another volume's callback (a registration left behind on a
			// server this client failed away from): acknowledge so the
			// writer is not held up, but touch nothing — this client's
			// cache holds only its own volume's blocks.
			reply := buildReply(StatusOK, 0)
			_ = p.Reply(&reply, src)
			continue
		}
		c.callbacks.Add(1)
		if count == InvalidateAll {
			c.cache.InvalidateFile(file)
		} else {
			c.cache.Invalidate(file, first, count)
		}
		c.mu.Lock()
		if fs := c.files[file]; fs != nil {
			c.advanceVersion(fs, version)
		}
		c.mu.Unlock()
		reply := buildReply(StatusOK, 0)
		_ = p.Reply(&reply, src)
	}
}

// versionNewer reports whether v is ahead of cur in wrapping uint32
// arithmetic (the version counter is monotonic at the server, but
// callbacks and write replies can arrive out of order).
func versionNewer(v, cur uint32) bool {
	return v != cur && v-cur < 1<<31
}

// advanceVersion moves the file's version forward, never backward; caller
// holds c.mu.
func (c *CachingClient) advanceVersion(fs *cachedFile, v uint32) {
	if !fs.versioned || versionNewer(v, fs.version) {
		fs.version = v
		fs.versioned = true
	}
}

// ensure makes the file's registration fresh, re-registering when the
// lease has run low. It returns false — serve this access without the
// cache — when registration fails. A version mismatch on renewal means
// callbacks were missed (lost, or the registration was dropped): the
// file's cached blocks are purged before any of them can be served.
func (c *CachingClient) ensure(file uint32) bool {
	c.mu.Lock()
	fs := c.files[file]
	if fs == nil {
		fs = &cachedFile{}
		c.files[file] = fs
	}
	if fs.registered && c.now().Before(fs.expires) {
		c.mu.Unlock()
		return true
	}
	c.mu.Unlock()

	c.renewals.Add(1)
	m := c.request(OpRegisterCache, file, uint32(c.cb.Pid()), 0)
	if err := c.exchangeOp(&m, nil); err != nil {
		return false
	}
	_, version := parseReply(&m)
	lease := time.Duration(registerLease(&m)) * time.Millisecond

	c.mu.Lock()
	defer c.mu.Unlock()
	if fs.versioned && version != fs.version && !versionNewer(fs.version, version) {
		// The server counted writes we never heard about: every cached
		// block of the file is suspect.
		c.purges.Add(1)
		c.cache.InvalidateFile(file)
	}
	c.advanceVersion(fs, version)
	fs.registered = true
	// Renew at ¾ of the server's lease: the client-side window must sit
	// strictly inside the server's, or a write could skip the callback
	// (expired server-side) while a hit is still served (fresh
	// client-side).
	fs.expires = c.now().Add(lease * 3 / 4)
	return true
}

// ReadBlock reads up to len(dst) bytes of the file block, serving
// whole-page reads from the local cache when possible. Partial reads are
// served from a cached page but never fill the cache themselves.
func (c *CachingClient) ReadBlock(file, block uint32, dst []byte) (int, error) {
	if !c.ensure(file) {
		return c.Client.ReadBlock(file, block, dst)
	}
	if b, ok := c.cache.Get(file, block); ok {
		n := copy(dst, b.Data)
		b.Release()
		return n, nil
	}
	gen := c.cache.Snapshot(file, block)
	n, err := c.Client.ReadBlock(file, block, dst)
	if err == nil {
		c.cache.Insert(file, block, dst[:n], gen) // no-op unless a whole page
	}
	return n, err
}

// WriteBlock writes the block through to the server, keeps the local copy
// current (whole pages refresh it in place, partial writes drop it) and
// records the post-write version from the reply.
func (c *CachingClient) WriteBlock(file, block uint32, data []byte) error {
	// The local copy may only be refreshed under a live registration —
	// an unregistered cache entry would never hear about other clients'
	// writes and could serve stale bytes forever.
	registered := c.ensure(file)
	gen := c.cache.Snapshot(file, block)
	m := c.request(OpWriteBlock, file, block, uint32(len(data)))
	if err := c.exchangeOp(&m, c.segment(data, ipc.SegRead)); err != nil {
		return err
	}
	c.noteWriteVersion(file, &m)
	if registered && len(data) == c.cache.BlockSize() {
		c.cache.Insert(file, block, data, gen)
	} else {
		c.cache.Invalidate(file, block, 1)
	}
	return nil
}

// WriteLarge writes through and drops the local copies of every touched
// block.
func (c *CachingClient) WriteLarge(file, off uint32, data []byte) error {
	c.ensure(file)
	m := c.request(OpWriteLarge, file, off, uint32(len(data)))
	if err := c.exchangeOp(&m, c.segment(data, ipc.SegRead)); err != nil {
		return err
	}
	c.noteWriteVersion(file, &m)
	if len(data) > 0 {
		bs := uint32(c.cache.BlockSize())
		first := off / bs
		last := (off + uint32(len(data)) - 1) / bs
		c.cache.Invalidate(file, first, last-first+1)
	}
	return nil
}

// CreateFile creates or truncates the file and drops every local block.
func (c *CachingClient) CreateFile(file uint32, size uint32) error {
	m := c.request(OpCreateFile, file, size, 0)
	if err := c.exchangeOp(&m, nil); err != nil {
		return err
	}
	c.noteWriteVersion(file, &m)
	c.cache.InvalidateFile(file)
	return nil
}

// noteWriteVersion records the post-write version a write reply carried
// (word 3, valid when word 4 is set), keeping the client's view current
// without a callback for its own writes.
//
// The advance must be CONTIGUOUS (exactly our last known version + 1):
// the server mints one version per write, so a reply that skips ahead
// proves versions were minted that we never heard about — invalidations
// lost or a registration silently revoked. Blindly adopting the newer
// number would let the next renewal's equality check pass over the gap
// and the staleness bound would quietly become unbounded; instead the
// gap purges the file's cached blocks immediately. (Callback-delivered
// versions may skip — two callbacks can arrive out of order — but every
// callback also drops its blocks unconditionally, so gaps there are
// harmless; only this no-callback path needs the contiguity proof.)
func (c *CachingClient) noteWriteVersion(file uint32, m *ipc.Message) {
	v, tracked := writeVersion(m)
	if !tracked {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.files[file]
	if fs == nil || !fs.versioned {
		// Never synced with a registration: nothing cached, nothing to
		// track — the first successful registration establishes the
		// baseline.
		return
	}
	switch {
	case !versionNewer(v, fs.version):
		// A stale reply racing callbacks that already advanced us.
	case v == fs.version+1:
		fs.version = v
	default:
		c.purges.Add(1)
		c.cache.InvalidateFile(file)
		fs.version = v
	}
}
