package rfs

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"vkernel/internal/ipc"
)

// This file is the primary side of volume replication: the sequenced
// record log, the per-replica push senders, the synchronous commit the
// write path waits on, and the OpRep* control-op handlers.
//
// Ordering and durability contract: every mutation a primary
// acknowledges is (1) assigned the next per-volume sequence under the
// replication lock, (2) pushed — in sequence order, one exchange in
// flight per replica — to every in-sync replica, and (3) acknowledged
// to the client only after all in-sync replicas acked it (or were
// dropped from the in-sync set at ReplicaAckTimeout). A promoted
// replica therefore holds every write any client ever saw acknowledged,
// which is the no-acked-write-lost half of failover; the drop-on-
// timeout half keeps a dead replica from wedging the write path.

// repRecord is one logged mutation. data is an owned copy (nil for
// creates) and immutable once logged, so senders and pulls may stream
// it outside the lock. trace is the originating client's 24-bit trace
// id (0 = untraced): it rides the push message's trace word and the
// pull stream's record header, so a traced write's span timeline
// continues on every replica that applies it.
type repRecord struct {
	kind  byte
	file  uint32
	off   uint32 // byte offset (write) or size (create)
	seq   uint32
	trace uint32
	data  []byte
}

// encodedLen is the record's wire size in a pull stream.
func (r *repRecord) encodedLen() int { return repRecordHeader + len(r.data) }

// encodeRepRecord writes r at dst and returns the bytes written.
func encodeRepRecord(dst []byte, r *repRecord) int {
	dst[0] = r.kind
	binary.BigEndian.PutUint32(dst[1:], r.file)
	binary.BigEndian.PutUint32(dst[5:], r.off)
	binary.BigEndian.PutUint32(dst[9:], uint32(len(r.data)))
	binary.BigEndian.PutUint32(dst[13:], r.seq)
	binary.BigEndian.PutUint32(dst[17:], r.trace)
	copy(dst[repRecordHeader:], r.data)
	return r.encodedLen()
}

// decodeRepRecord reads one record from src; the returned record's data
// aliases src. ok is false when src is truncated.
func decodeRepRecord(src []byte) (r repRecord, n int, ok bool) {
	if len(src) < repRecordHeader {
		return r, 0, false
	}
	r.kind = src[0]
	r.file = binary.BigEndian.Uint32(src[1:])
	r.off = binary.BigEndian.Uint32(src[5:])
	dlen := int(binary.BigEndian.Uint32(src[9:]))
	r.seq = binary.BigEndian.Uint32(src[13:])
	r.trace = binary.BigEndian.Uint32(src[17:])
	if len(src) < repRecordHeader+dlen {
		return r, 0, false
	}
	r.data = src[repRecordHeader : repRecordHeader+dlen]
	return r, repRecordHeader + dlen, true
}

// replicaConn is the primary's state for one enrolled replica.
type replicaConn struct {
	rid    uint32
	apply  ipc.Pid // the replica's per-volume apply process
	server ipc.Pid // the replica's server process (read-set member)
	// acked is the highest sequence the replica has proven applied
	// (push acks; pull requests prove everything before them).
	acked uint32
	// push: a sender goroutine streams records; inSync then means the
	// commit path waits for this replica. A pull-mode conn (push false)
	// is membership only — it keeps the log retained while the replica
	// drives its own catch-up.
	push   bool
	inSync bool
	gone   bool
	lastHB time.Time
}

// replState is one primary volume's replication state.
type replState struct {
	s   *Server
	vol uint32

	mu   sync.Mutex
	cond *sync.Cond
	// seq is the last assigned sequence; the log covers
	// [logStart, seq] (empty when logStart == seq+1).
	seq      uint32
	logStart uint32
	log      []repRecord
	logBytes int
	replicas map[uint32]*replicaConn
	closed   bool

	senders sync.WaitGroup
}

// repPushSlack is how far behind a joining replica may be and still be
// accepted straight into push mode (the sender drains the small gap);
// farther back it pulls first, so a long catch-up never holds writes.
const repPushSlack = 256

func newReplState(s *Server, vol, seq uint32) *replState {
	rs := &replState{
		s:        s,
		vol:      vol,
		seq:      seq,
		logStart: seq + 1,
		replicas: make(map[uint32]*replicaConn),
	}
	rs.cond = sync.NewCond(&rs.mu)
	return rs
}

// current returns the last assigned sequence.
func (rs *replState) current() uint32 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.seq
}

// append assigns the next sequence to one mutation and logs it when any
// replica is enrolled (the log only exists for catch-up; with no
// members it stays empty and a later joiner resyncs from a snapshot).
// parts are gathered into one owned copy.
func (rs *replState) append(kind byte, file, off, trace uint32, parts ...[]byte) uint32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	rs.mu.Lock()
	rs.seq++
	seq := rs.seq
	if len(rs.replicas) == 0 {
		rs.logStart = seq + 1
	} else {
		var data []byte
		if total > 0 {
			data = make([]byte, 0, total)
			for _, p := range parts {
				data = append(data, p...)
			}
		}
		rs.log = append(rs.log, repRecord{kind: kind, file: file, off: off, seq: seq, trace: trace, data: data})
		rs.logBytes += total
		rs.trimLocked()
	}
	rs.cond.Broadcast()
	rs.mu.Unlock()
	return seq
}

// trimLocked bounds the log by record count and bytes. Trimming past a
// lagging member's position is allowed — its next pull draws
// StatusRepSnapshot and it resyncs.
func (rs *replState) trimLocked() {
	max := rs.s.cfg.ReplicaLogMax
	maxBytes := rs.s.cfg.ReplicaLogMaxBytes
	for len(rs.log) > max || rs.logBytes > maxBytes {
		rs.logBytes -= len(rs.log[0].data)
		rs.log = rs.log[1:]
		rs.logStart++
	}
}

// commit blocks until every in-sync replica has acked seq, dropping
// replicas still lagging at ReplicaAckTimeout from the in-sync set (a
// dead or wedged replica costs the write path one timeout, once; the
// dropped replica rejoins through the catch-up path when it recovers).
func (rs *replState) commit(seq uint32) {
	rs.mu.Lock()
	if !rs.waitingOnLocked(seq) {
		rs.mu.Unlock()
		return
	}
	rs.mu.Unlock()

	timedOut := false
	t := time.AfterFunc(rs.s.cfg.ReplicaAckTimeout, func() {
		rs.mu.Lock()
		timedOut = true
		rs.cond.Broadcast()
		rs.mu.Unlock()
	})
	defer t.Stop()

	rs.mu.Lock()
	for {
		if !rs.waitingOnLocked(seq) {
			rs.mu.Unlock()
			return
		}
		if timedOut {
			for _, conn := range rs.replicas {
				if conn.push && conn.inSync && conn.acked < seq {
					rs.dropLocked(conn)
				}
			}
			rs.mu.Unlock()
			return
		}
		rs.cond.Wait()
	}
}

// waitingOnLocked reports whether any in-sync replica has not acked seq.
func (rs *replState) waitingOnLocked(seq uint32) bool {
	if rs.closed {
		return false
	}
	for _, conn := range rs.replicas {
		if conn.push && conn.inSync && !conn.gone && conn.acked < seq {
			return true
		}
	}
	return false
}

// dropLocked removes a replica from membership; its sender (if any)
// wakes, sees gone, and exits.
func (rs *replState) dropLocked(conn *replicaConn) {
	conn.gone = true
	conn.inSync = false
	if rs.replicas[conn.rid] == conn {
		delete(rs.replicas, conn.rid)
	}
	rs.cond.Broadcast()
}

// pruneLocked drops members whose heartbeat lease has lapsed: a replica
// that stopped heartbeating is dead (or partitioned) and must not pin
// the log or the in-sync wait.
func (rs *replState) pruneLocked() {
	cutoff := time.Now().Add(-2 * rs.s.cfg.ReplicaLease)
	for _, conn := range rs.replicas {
		if conn.lastHB.Before(cutoff) {
			rs.dropLocked(conn)
		}
	}
}

// join enrolls (or re-enrolls) a replica and decides its catch-up mode:
// within repPushSlack of the head and covered by the log → push (the
// sender drains the gap); covered by the log but farther back → pull;
// past the log's tail → snapshot resync. Pull and snapshot joiners are
// members too, so the log is retained for them while they catch up.
func (rs *replState) join(rid uint32, applyPid, serverPid ipc.Pid, lastApplied uint32) (seq, flags, status uint32) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return 0, 0, StatusNoVolume
	}
	if old := rs.replicas[rid]; old != nil {
		rs.dropLocked(old)
	}
	conn := &replicaConn{
		rid:    rid,
		apply:  applyPid,
		server: serverPid,
		acked:  lastApplied,
		lastHB: time.Now(),
	}
	covered := lastApplied+1 >= rs.logStart && lastApplied <= rs.seq
	switch {
	case lastApplied == rs.seq || (covered && rs.seq-lastApplied <= repPushSlack):
		conn.push = true
		conn.inSync = lastApplied == rs.seq
		rs.replicas[rid] = conn
		rs.senders.Add(1)
		go rs.sender(conn)
		return rs.seq, repJoinPush, StatusOK
	case covered:
		rs.replicas[rid] = conn
		return rs.seq, repJoinPull, StatusOK
	default:
		rs.replicas[rid] = conn
		return rs.seq, 0, StatusRepSnapshot
	}
}

// sender streams the log to one push-mode replica, in order, one
// exchange in flight. A sender that drains the backlog flips its
// replica in-sync (commit then waits on it); any push failure or
// non-OK reply drops the replica — it rejoins through catch-up.
func (rs *replState) sender(conn *replicaConn) {
	defer rs.senders.Done()
	p, err := rs.s.node.Attach(fmt.Sprintf("repl-send-v%d-r%d", rs.vol, conn.rid))
	if err != nil {
		rs.mu.Lock()
		rs.dropLocked(conn)
		rs.mu.Unlock()
		return
	}
	defer rs.s.node.Detach(p)
	for {
		rs.mu.Lock()
		for !rs.closed && !conn.gone && conn.acked == rs.seq {
			if !conn.inSync {
				// Backlog drained: join the in-sync set (and the read set).
				conn.inSync = true
				rs.cond.Broadcast()
			}
			rs.cond.Wait()
		}
		if rs.closed || conn.gone {
			rs.mu.Unlock()
			return
		}
		next := conn.acked + 1
		if next < rs.logStart {
			// Trimmed out from under a lagging push conn; force a rejoin.
			rs.dropLocked(conn)
			rs.mu.Unlock()
			return
		}
		rec := rs.log[next-rs.logStart]
		rs.mu.Unlock()

		var m ipc.Message
		var seg *ipc.Segment
		if rec.kind == repKindCreate {
			m = buildReplicate(OpRepCreate, rec.file, rec.off, 0, rec.seq)
		} else {
			m = buildReplicate(OpReplicate, rec.file, rec.off, uint32(len(rec.data)), rec.seq)
			seg = &ipc.Segment{Data: rec.data, Access: ipc.SegRead}
		}
		// A traced record's push carries the trace id on the wire (the
		// fan-out half of request tracing) and logs a span event on the
		// primary covering the push exchange.
		var t0 time.Time
		if rec.trace != 0 {
			m.SetTrace(rec.trace)
			t0 = time.Now()
		}
		err := p.Send(&m, conn.apply, seg)
		ok := err == nil
		if ok {
			status, _ := parseReply(&m)
			ok = status == StatusOK
		}
		if rec.trace != 0 {
			rs.s.metrics.Trace().Record(rec.trace, "repl.push", uint64(rec.seq), time.Since(t0))
		}
		rs.mu.Lock()
		if !ok {
			rs.dropLocked(conn)
			rs.mu.Unlock()
			return
		}
		if conn.acked < rec.seq {
			conn.acked = rec.seq
			rs.cond.Broadcast()
		}
		rs.mu.Unlock()
	}
}

// pullRecords copies out up to maxBytes of encoded records starting at
// from, for the pull handler to stream outside the lock. ok is false
// when the log no longer reaches from (snapshot needed). A pull at
// sequence from proves everything before it is applied, so the member's
// acked position advances.
func (rs *replState) pullRecords(rid, from uint32, maxBytes int) (recs []repRecord, cur uint32, ok bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if conn := rs.replicas[rid]; conn != nil {
		conn.lastHB = time.Now()
		if from > 0 && conn.acked < from-1 {
			conn.acked = from - 1
			rs.cond.Broadcast()
		}
	}
	if from > rs.seq {
		return nil, rs.seq, true // caught up: empty batch
	}
	if from < rs.logStart {
		return nil, rs.seq, false
	}
	total := 0
	for i := int(from - rs.logStart); i < len(rs.log); i++ {
		rec := rs.log[i]
		if total+rec.encodedLen() > maxBytes && len(recs) > 0 {
			break
		}
		if total+rec.encodedLen() > maxBytes {
			break // first record alone exceeds the grant
		}
		total += rec.encodedLen()
		recs = append(recs, rec)
	}
	return recs, rs.seq, true
}

// heartbeat renews a member's lease and answers with the promotion
// candidate (lowest in-sync replica id). Unknown members are told to
// rejoin; stale members are pruned while we are here.
func (rs *replState) heartbeat(rid, lastApplied uint32) (seq, candidate, flags uint32) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.pruneLocked()
	conn := rs.replicas[rid]
	if conn == nil {
		return rs.seq, rs.candidateLocked(), repHBUnknown
	}
	conn.lastHB = time.Now()
	if conn.acked < lastApplied {
		conn.acked = lastApplied
		rs.cond.Broadcast()
	}
	if conn.push && conn.inSync {
		flags |= repHBInSync
	}
	return rs.seq, rs.candidateLocked(), flags
}

// candidateLocked is the deterministic promotion candidate: the lowest
// in-sync replica id (0 when there is none).
func (rs *replState) candidateLocked() uint32 {
	var c uint32
	for rid, conn := range rs.replicas {
		if conn.push && conn.inSync && (c == 0 || rid < c) {
			c = rid
		}
	}
	return c
}

// insyncCount reports how many replicas the commit path currently waits
// on (the in-sync set, excluding the primary itself). Feeds the
// rfs.vol<id>.repl_insync gauge.
func (rs *replState) insyncCount() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := 0
	for _, conn := range rs.replicas {
		if conn.push && conn.inSync {
			n++
		}
	}
	return n
}

// lag reports how many sequenced records the furthest-behind member has
// not yet proven applied (0 with no members). Feeds the
// rfs.vol<id>.repl_lag gauge — the live replication-lag figure vstat
// aggregates cluster-wide.
func (rs *replState) lag() uint32 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var worst uint32
	for _, conn := range rs.replicas {
		if lag := rs.seq - conn.acked; lag > worst {
			worst = lag
		}
	}
	return worst
}

// readSet is the live read fan-out set: the primary's own server pid
// followed by every in-sync replica's server pid.
func (rs *replState) readSet(self ipc.Pid) []ipc.Pid {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.pruneLocked()
	pids := []ipc.Pid{self}
	for _, conn := range rs.replicas {
		if conn.push && conn.inSync {
			pids = append(pids, conn.server)
		}
	}
	return pids
}

// close stops the senders and releases any committing writers.
func (rs *replState) close() {
	rs.mu.Lock()
	rs.closed = true
	for _, conn := range rs.replicas {
		conn.gone = true
	}
	rs.replicas = make(map[uint32]*replicaConn)
	rs.cond.Broadcast()
	rs.mu.Unlock()
	rs.senders.Wait()
}

// replicate sequences one mutation of a primary volume and waits for
// the in-sync replicas to ack it — the write path calls it after the
// mutation is applied locally and before the registry fan-out/reply.
// On replicas and unreplicated configurations it is a no-op beyond the
// sequence bump.
// Ordering caveat: the record is appended after the local mutation
// lands, and the two are not atomic — two clients racing writes to the
// same bytes may be logged in the other order than the cache applied
// them, exactly as their unsynchronized writes already race on the
// primary itself. Writes serialized by an ack (the read-your-writes
// cases the failover tests check) are logged in ack order.
func (s *Server) replicate(v *volume, kind byte, file, off, trace uint32, parts ...[]byte) {
	if v.role.Load() != rolePrimary {
		return
	}
	rs := v.repl
	if rs == nil {
		return
	}
	rs.commit(rs.append(kind, file, off, trace, parts...))
}

// replicateAppend logs one record without waiting for acks — the
// multi-chunk write paths append per chunk and commit once at the end.
func (s *Server) replicateAppend(v *volume, kind byte, file, off, trace uint32, parts ...[]byte) {
	if v.role.Load() != rolePrimary {
		return
	}
	if rs := v.repl; rs != nil {
		rs.append(kind, file, off, trace, parts...)
	}
}

// replicateSync waits for the in-sync replicas to ack everything
// appended so far (the commit half of replicateAppend).
func (s *Server) replicateSync(v *volume) {
	if v.role.Load() != rolePrimary {
		return
	}
	if rs := v.repl; rs != nil {
		rs.commit(rs.current())
	}
}

// handleRepJoin serves OpRepJoin (see replState.join). The 8-byte
// segment names the replica's apply and server pids.
func (s *Server) handleRepJoin(v *volume, req *request) {
	rs := s.primaryRepl(v)
	if rs == nil {
		s.replyStatus(req.src, StatusNoVolume, 0)
		return
	}
	_, rid, lastApplied, segLen := parseRequest(&req.msg)
	if segLen < 8 || len(req.buf) < 8 {
		s.replyStatus(req.src, StatusBadRequest, 0)
		return
	}
	if req.inline < 8 {
		if err := s.proc.MoveFrom(req.src, uint32(req.inline), req.buf[req.inline:8]); err != nil {
			s.replyStatus(req.src, StatusBadRequest, 0)
			return
		}
	}
	applyPid := ipc.Pid(binary.BigEndian.Uint32(req.buf[0:4]))
	serverPid := ipc.Pid(binary.BigEndian.Uint32(req.buf[4:8]))
	seq, flags, status := rs.join(rid, applyPid, serverPid, lastApplied)
	m := buildReply(status, 0)
	stampRepJoin(&m, seq, flags)
	_ = s.proc.Reply(&m, req.src)
}

// handleRepPull serves OpRepPull: encoded records MoveTo-streamed into
// the replica's grant, batch bounded by the grant size.
func (s *Server) handleRepPull(v *volume, req *request) {
	rs := s.primaryRepl(v)
	if rs == nil {
		s.replyStatus(req.src, StatusNoVolume, 0)
		return
	}
	_, rid, from, grant := parseRequest(&req.msg)
	recs, cur, ok := rs.pullRecords(rid, from, int(grant))
	if !ok {
		m := buildReply(StatusRepSnapshot, 0)
		stampRepPull(&m, 0, 0, cur)
		_ = s.proc.Reply(&m, req.src)
		return
	}
	total := 0
	for i := range recs {
		total += recs[i].encodedLen()
	}
	if total > 0 {
		buf := make([]byte, total)
		n := 0
		for i := range recs {
			n += encodeRepRecord(buf[n:], &recs[i])
		}
		if err := s.proc.MoveTo(req.src, 0, buf); err != nil {
			s.replyStatus(req.src, StatusBadRequest, 0)
			return
		}
	}
	m := buildReply(StatusOK, 0)
	stampRepPull(&m, uint32(total), uint32(len(recs)), cur)
	_ = s.proc.Reply(&m, req.src)
}

// handleRepFiles serves OpRepFiles, the snapshot enumeration: staged
// writes are flushed first so the store holds every acked byte, the
// snapshot sequence is read before the walk so any racing write is
// replayed on top of the snapshot, and the (file, size) entries are
// streamed into the replica's grant.
func (s *Server) handleRepFiles(v *volume, req *request) {
	rs := s.primaryRepl(v)
	if rs == nil {
		s.replyStatus(req.src, StatusNoVolume, 0)
		return
	}
	_, _, _, grant := parseRequest(&req.msg)
	if err := v.cache.flushAll(); err != nil {
		s.replyStatus(req.src, StatusIOError, 0)
		return
	}
	snapSeq := rs.current()
	ids, err := v.store.Files()
	if err != nil {
		s.replyStatus(req.src, StatusIOError, 0)
		return
	}
	if len(ids)*repFileEntry > int(grant) {
		// The replica's grant cannot hold the catalog; a larger grant is
		// the fix, not a silently partial snapshot.
		s.replyStatus(req.src, StatusBadRequest, 0)
		return
	}
	buf := make([]byte, len(ids)*repFileEntry)
	n := 0
	for _, id := range ids {
		size, err := v.store.Size(id)
		if err != nil {
			if err == ErrNoFile {
				continue
			}
			s.replyStatus(req.src, StatusIOError, 0)
			return
		}
		binary.BigEndian.PutUint32(buf[n:], id)
		binary.BigEndian.PutUint64(buf[n+4:], uint64(size))
		n += repFileEntry
	}
	if n > 0 {
		if err := s.proc.MoveTo(req.src, 0, buf[:n]); err != nil {
			s.replyStatus(req.src, StatusBadRequest, 0)
			return
		}
	}
	m := buildReply(StatusOK, 0)
	stampRepFiles(&m, uint32(n/repFileEntry), snapSeq)
	_ = s.proc.Reply(&m, req.src)
}

// handleRepHeartbeat serves OpRepHeartbeat (see replState.heartbeat).
func (s *Server) handleRepHeartbeat(v *volume, req *request) {
	rs := s.primaryRepl(v)
	if rs == nil {
		s.replyStatus(req.src, StatusNoVolume, 0)
		return
	}
	_, rid, lastApplied, _ := parseRequest(&req.msg)
	seq, candidate, flags := rs.heartbeat(rid, lastApplied)
	m := buildReply(StatusOK, 0)
	stampRepHeartbeat(&m, seq, candidate, flags)
	_ = s.proc.Reply(&m, req.src)
}

// handleQueryReplicas serves OpQueryReplicas: the read set as pids in
// the reply segment, primary first. An unreplicated primary answers
// with itself alone, so spread-reads clients work against any cluster.
func (s *Server) handleQueryReplicas(v *volume, req *request) {
	if v.role.Load() != rolePrimary {
		s.replyStatus(req.src, StatusNoVolume, 0)
		return
	}
	_, _, _, grant := parseRequest(&req.msg)
	pids := []ipc.Pid{s.proc.Pid()}
	if rs := v.repl; rs != nil {
		pids = rs.readSet(s.proc.Pid())
	}
	if limit := int(grant) / 4; len(pids) > limit {
		pids = pids[:limit]
	}
	if len(pids) == 0 {
		s.replyStatus(req.src, StatusOK, 0)
		return
	}
	buf := make([]byte, len(pids)*4)
	for i, pid := range pids {
		binary.BigEndian.PutUint32(buf[i*4:], uint32(pid))
	}
	reply := buildReply(StatusOK, uint32(len(pids)))
	if err := s.proc.ReplyWithSegment(&reply, req.src, 0, buf); err != nil {
		s.replyStatus(req.src, StatusBadRequest, 0)
	}
}

// primaryRepl returns v's replication state when v is currently a
// primary, nil otherwise (the caller answers StatusNoVolume, steering
// the sender at the real primary).
func (s *Server) primaryRepl(v *volume) *replState {
	if v.role.Load() != rolePrimary {
		return nil
	}
	return v.repl
}
