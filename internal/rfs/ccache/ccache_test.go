package ccache

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"vkernel/internal/bufpool"
)

func leakCheck(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for bufpool.Outstanding() != 0 {
			if time.Now().After(deadline) {
				t.Errorf("bufpool leak: %d buffers outstanding", bufpool.Outstanding())
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
}

func page(tag byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = tag ^ byte(i)
	}
	return p
}

func TestInsertGetAndLRUBound(t *testing.T) {
	leakCheck(t)
	c := New(Config{Blocks: 4, BlockSize: 64})
	defer c.Close()
	for b := uint32(0); b < 6; b++ {
		gen := c.Snapshot(1, b)
		c.Insert(1, b, page(byte(b), 64), gen)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", c.Len())
	}
	// The two oldest inserts were evicted.
	for b := uint32(0); b < 2; b++ {
		if _, ok := c.Get(1, b); ok {
			t.Fatalf("block %d survived past capacity", b)
		}
	}
	for b := uint32(2); b < 6; b++ {
		buf, ok := c.Get(1, b)
		if !ok {
			t.Fatalf("block %d missing", b)
		}
		if !bytes.Equal(buf.Data, page(byte(b), 64)) {
			t.Fatalf("block %d corrupted", b)
		}
		buf.Release()
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 2 || st.Inserts != 6 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPartialInsertRefused(t *testing.T) {
	leakCheck(t)
	c := New(Config{Blocks: 4, BlockSize: 64})
	defer c.Close()
	c.Insert(1, 0, page(1, 32), c.Snapshot(1, 0)) // not a whole page
	if c.Len() != 0 {
		t.Fatal("partial page was cached")
	}
}

// TestStaleInsertDropped is the fill-vs-invalidation race: an insert
// whose generation predates an invalidation must be refused, or a read
// that raced a write would resurrect pre-write bytes.
func TestStaleInsertDropped(t *testing.T) {
	leakCheck(t)
	c := New(Config{Blocks: 4, BlockSize: 64})
	defer c.Close()
	gen := c.Snapshot(7, 3)
	c.Invalidate(7, 3, 1) // the write's callback lands mid-fill
	c.Insert(7, 3, page(9, 64), gen)
	if _, ok := c.Get(7, 3); ok {
		t.Fatal("stale fill was inserted after an invalidation")
	}
	if st := c.Stats(); st.StaleDrops != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A fresh snapshot taken after the invalidation inserts fine.
	c.Insert(7, 3, page(9, 64), c.Snapshot(7, 3))
	b, ok := c.Get(7, 3)
	if !ok {
		t.Fatal("fresh fill refused")
	}
	b.Release()
}

func TestInvalidateRangeAndFile(t *testing.T) {
	leakCheck(t)
	c := New(Config{Blocks: 32, BlockSize: 64})
	defer c.Close()
	for b := uint32(0); b < 8; b++ {
		c.Insert(1, b, page(byte(b), 64), c.Snapshot(1, b))
		c.Insert(2, b, page(byte(b+100), 64), c.Snapshot(2, b))
	}
	c.Invalidate(1, 2, 3) // blocks 2,3,4 of file 1
	for b := uint32(0); b < 8; b++ {
		buf, ok := c.Get(1, b)
		buf.Release()
		if want := b < 2 || b > 4; ok != want {
			t.Fatalf("file 1 block %d present=%v want %v", b, ok, want)
		}
	}
	c.InvalidateFile(2)
	for b := uint32(0); b < 8; b++ {
		if _, ok := c.Get(2, b); ok {
			t.Fatalf("file 2 block %d survived InvalidateFile", b)
		}
	}
	// A wide range degrades to the whole-file scan.
	c.Insert(1, 0, page(1, 64), c.Snapshot(1, 0))
	c.Invalidate(1, 0, ^uint32(0))
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("wide-range invalidate missed a block")
	}
}

// TestGetSurvivesInvalidation: a block lent out by Get stays readable
// after the cache drops it (the ref count protects the borrower).
func TestGetSurvivesInvalidation(t *testing.T) {
	leakCheck(t)
	c := New(Config{Blocks: 4, BlockSize: 64})
	defer c.Close()
	want := page(5, 64)
	c.Insert(3, 0, want, c.Snapshot(3, 0))
	buf, ok := c.Get(3, 0)
	if !ok {
		t.Fatal("missing block")
	}
	c.InvalidateFile(3)
	if !bytes.Equal(buf.Data, want) {
		t.Fatal("lent block recycled under the borrower")
	}
	buf.Release()
}

func TestCloseReleasesAndRefuses(t *testing.T) {
	leakCheck(t)
	c := New(Config{Blocks: 4, BlockSize: 64})
	c.Insert(1, 0, page(1, 64), c.Snapshot(1, 0))
	c.Close()
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("Get hit after Close")
	}
	c.Insert(1, 1, page(2, 64), c.Snapshot(1, 1))
	if c.Len() != 0 {
		t.Fatal("Insert accepted after Close")
	}
}

// TestConcurrentAccess races fills, hits and invalidations (run under
// -race); the invariant checked is only that Get never returns a freed
// or torn buffer.
func TestConcurrentAccess(t *testing.T) {
	leakCheck(t)
	c := New(Config{Blocks: 16, BlockSize: 64})
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := uint32(i % 8)
				switch i % 3 {
				case 0:
					gen := c.Snapshot(1, b)
					c.Insert(1, b, page(byte(b), 64), gen)
				case 1:
					if buf, ok := c.Get(1, b); ok {
						if !bytes.Equal(buf.Data, page(byte(b), 64)) {
							t.Errorf("torn read of block %d", b)
						}
						buf.Release()
					}
				case 2:
					c.Invalidate(1, b, 1)
				}
			}
		}(g)
	}
	wg.Wait()
}
