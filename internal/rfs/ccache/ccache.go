// Package ccache is the client-side block cache of the V file service:
// the workstation-local page cache the paper's §6.2 argues a fast IPC
// path makes unnecessary. It is deliberately dumb about consistency —
// it only stores, looks up and drops blocks — so the consistency
// protocol (registration, server-driven invalidation callbacks, lease
// renewal) lives entirely in rfs.CachingClient and the cache itself
// stays reusable and independently testable.
//
// Blocks are pooled, reference-counted buffers (vkernel/internal/bufpool)
// with LRU replacement and a bounded capacity, exactly like the server's
// block cache. Get hands the caller a retained reference, so a block
// being copied out survives a concurrent invalidation; Insert copies the
// caller's bytes into a fresh pooled block (the caller keeps its buffer).
//
// Fills race invalidations: the client reads a block from the server,
// loses the CPU, an invalidation callback for a newer write arrives, and
// only then does the fill insert — resurrecting pre-write bytes. As in
// the server cache, every invalidation bumps a generation counter
// (sharded by block id); a fill snapshots the generation before issuing
// the remote read and Insert refuses when it moved. The conservative
// direction is always a dropped insert (a wasted fill), never a stale
// hit.
package ccache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"vkernel/internal/bufpool"
)

// Config sizes the cache; the zero value gets defaults.
type Config struct {
	// Blocks bounds the cached block count (0 → 256).
	Blocks int
	// BlockSize is the server's page size in bytes (0 → 512). Only reads
	// of exactly this size are cacheable — partial reads pass through.
	BlockSize int
}

func (c Config) withDefaults() Config {
	if c.Blocks <= 0 {
		c.Blocks = 256
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 512
	}
	return c
}

// Stats is a snapshot of cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Inserts       int64
	StaleDrops    int64 // fills refused because the block was invalidated mid-fill
	Invalidations int64 // blocks dropped by Invalidate/InvalidateFile
}

// key names one cached block.
type key struct {
	file  uint32
	block uint32
}

type entry struct {
	k   key
	buf *bufpool.Buf
}

// Cache is a bounded LRU block cache over pooled buffers. All methods are
// safe for concurrent use (the owning client's request path and its
// invalidation-callback process share it).
type Cache struct {
	mu      sync.Mutex
	cfg     Config
	entries map[key]*list.Element
	lru     *list.List // front = most recently used
	closed  bool

	gens [64]atomic.Uint64 // invalidation stamps, sharded by block id

	hits       atomic.Int64
	misses     atomic.Int64
	inserts    atomic.Int64
	staleDrops atomic.Int64
	invals     atomic.Int64
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	c := &Cache{
		cfg:     cfg.withDefaults(),
		entries: make(map[key]*list.Element),
		lru:     list.New(),
	}
	return c
}

// BlockSize returns the configured page size.
func (c *Cache) BlockSize() int { return c.cfg.BlockSize }

// genOf returns the invalidation-stamp shard for a block id.
func (c *Cache) genOf(k key) *atomic.Uint64 {
	h := (k.file*2654435761 + k.block) * 2654435761
	return &c.gens[h>>26&0x3f]
}

// Snapshot returns the block's current invalidation stamp; take it before
// the remote read of a fill and pass it to Insert.
func (c *Cache) Snapshot(file, block uint32) uint64 {
	return c.genOf(key{file, block}).Load()
}

// Get returns the cached block with a reference for the caller (Release
// when done), marking it most recently used. The block's bytes are shared
// and must not be written; they are always a full BlockSize page.
func (c *Cache) Get(file, block uint32) (*bufpool.Buf, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key{file, block}]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.lru.MoveToFront(el)
	return el.Value.(*entry).buf.Retain(), true
}

// Contains reports presence without touching recency or hit counters.
func (c *Cache) Contains(file, block uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key{file, block}]
	return ok
}

// Insert caches a full page read (or written) at the given block: data is
// copied into a fresh pooled block, so the caller keeps its buffer. The
// insert is refused when data is not a whole page, when the cache is
// closed, or when the block was invalidated since gen was snapshotted —
// the bytes predate a concurrent write and would be a stale resurrection.
func (c *Cache) Insert(file, block uint32, data []byte, gen uint64) {
	if len(data) != c.cfg.BlockSize {
		return
	}
	k := key{file, block}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.genOf(k).Load() != gen {
		c.staleDrops.Add(1)
		return
	}
	c.inserts.Add(1)
	if el, ok := c.entries[k]; ok {
		// Copy-on-write replace: a fresh buffer swaps in so a reader that
		// Got the old one mid-copy keeps a consistent snapshot.
		e := el.Value.(*entry)
		b := bufpool.Get(c.cfg.BlockSize)
		copy(b.Data, data)
		e.buf.Release()
		e.buf = b
		c.lru.MoveToFront(el)
		return
	}
	b := bufpool.Get(c.cfg.BlockSize)
	copy(b.Data, data)
	c.entries[k] = c.lru.PushFront(&entry{k: k, buf: b})
	for c.lru.Len() > c.cfg.Blocks {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.k)
		e.buf.Release()
	}
}

// Invalidate drops count blocks starting at first (a remote write made
// them stale) and stamps the invalidation so in-flight fills cannot
// resurrect them. Borrowers of a dropped block are unaffected — only the
// cache's reference is released. A range wider than the cache capacity
// degrades to a whole-file scan instead of touching every block id.
func (c *Cache) Invalidate(file, first, count uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if count > uint32(c.cfg.Blocks) {
		c.invalidateFileLocked(file)
		return
	}
	for i := uint32(0); i < count; i++ {
		k := key{file, first + i}
		c.genOf(k).Add(1)
		if el, ok := c.entries[k]; ok {
			c.removeLocked(el)
		}
	}
}

// Purge drops every cached block and stamps every generation shard, so
// in-flight fills cannot resurrect pre-purge bytes. It is the failover
// reset: when a volume moves to a new server, nothing cached under the
// old server's consistency protocol may be served again.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.gens {
		c.gens[i].Add(1)
	}
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		c.removeLocked(el)
		el = next
	}
}

// InvalidateFile drops every cached block of the file (truncate, lease
// renewal that found a version mismatch).
func (c *Cache) InvalidateFile(file uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidateFileLocked(file)
}

func (c *Cache) invalidateFileLocked(file uint32) {
	// Blocks of the file may be mid-fill without being cached yet; bump
	// every shard so those inserts drop.
	for i := range c.gens {
		c.gens[i].Add(1)
	}
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).k.file == file {
			c.removeLocked(el)
		}
		el = next
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.k)
	c.invals.Add(1)
	e.buf.Release()
}

// Len returns the cached block count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Inserts:       c.inserts.Load(),
		StaleDrops:    c.staleDrops.Load(),
		Invalidations: c.invals.Load(),
	}
}

// Close releases every cached block and refuses further inserts; Get
// misses from here on. Blocks lent out by Get stay valid until their
// borrowers release them.
func (c *Cache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for el := c.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*entry).buf.Release()
	}
	c.lru.Init()
	c.entries = make(map[key]*list.Element)
}
