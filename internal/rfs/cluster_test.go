package rfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/ipc"
)

// startCluster boots a cluster fixture with leak checking and teardown.
func startCluster(t testing.TB, cfg ClusterConfig) *Cluster {
	t.Helper()
	leakCheck(t)
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// clientNode adds a client node to the cluster.
func clientNode(t testing.TB, c *Cluster) *ipc.Node {
	t.Helper()
	node, err := c.ClientNode()
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// attach binds a fresh process on node.
func attach(t testing.TB, node *ipc.Node, name string) *ipc.Proc {
	t.Helper()
	p, err := node.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Detach(p) })
	return p
}

// router builds a Router on node.
func newRouter(t testing.TB, node *ipc.Node) *Router {
	t.Helper()
	r, err := NewRouter(node)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// tightNode is a node config with short timeouts, so failover tests
// observe bounded errors in milliseconds instead of seconds.
func tightNode() ipc.NodeConfig {
	return ipc.NodeConfig{
		RetransmitTimeout: 5 * time.Millisecond,
		Retries:           3,
		GetPidTimeout:     10 * time.Millisecond,
		GetPidRetries:     3,
	}
}

// TestRegistryReapOnRegister: an idle file's lease-expired registration
// must be reaped by any later registration traffic — not only by a write
// to that same file. (Regression: reaping used to happen solely on the
// write path, so a watcher on a never-written-again file pinned registry
// memory forever.)
func TestRegistryReapOnRegister(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{CacheLease: time.Second})
	r := e.srv.registry

	var mu sync.Mutex
	now := time.Now()
	r.setNow(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	// A watcher on file 1 that will never be touched again.
	r.register(DefaultVolume, 1, ipc.Pid(0x100), ipc.Pid(0x101))
	if got := r.watcherCount(); got != 1 {
		t.Fatalf("watchers after first register: %d", got)
	}
	// Within the lease, registration on another file must not reap it.
	advance(500 * time.Millisecond)
	r.register(DefaultVolume, 2, ipc.Pid(0x200), ipc.Pid(0x201))
	if got := r.watcherCount(); got != 2 {
		t.Fatalf("watchers before expiry: %d, want 2", got)
	}
	// Both leases run out with no writes anywhere. The next registration —
	// a renewal on file 2 — must sweep the expired watchers out.
	advance(1600 * time.Millisecond)
	r.register(DefaultVolume, 2, ipc.Pid(0x200), ipc.Pid(0x201))
	if got := r.watcherCount(); got != 1 {
		t.Fatalf("watchers after reap: %d, want 1 (the renewal)", got)
	}
	if got := r.leaseExpiries.Load(); got != 2 {
		t.Fatalf("lease expiries: %d, want 2", got)
	}
	// The sweep removes watchers, never the version counters.
	r.mu.Lock()
	_, ok := r.files[volFile{vol: DefaultVolume, file: 1}]
	r.mu.Unlock()
	if !ok {
		t.Fatal("reap dropped file 1's version state")
	}
}

// TestDiscoverAllUnderLoss: cluster enumeration must find every shard
// through 40% packet loss — the repeated broadcast rounds inside the
// window re-solicit servers whose replies were dropped.
func TestDiscoverAllUnderLoss(t *testing.T) {
	c := startCluster(t, ClusterConfig{
		Shards: 3,
		Faults: ipc.FaultConfig{DropProb: 0.4},
		Node:   ipc.NodeConfig{GetPidTimeout: 5 * time.Millisecond, GetPidRetries: 100},
	})
	p := attach(t, clientNode(t, c), "seeker")
	pids, err := DiscoverAll(p, 750*time.Millisecond)
	if err != nil {
		t.Fatalf("DiscoverAll through 40%% loss: %v", err)
	}
	want := make(map[ipc.Pid]bool)
	for _, cs := range c.Servers {
		want[cs.Srv.Pid()] = true
	}
	if len(pids) != len(want) {
		t.Fatalf("found %d servers %v, want %d", len(pids), pids, len(want))
	}
	for _, pid := range pids {
		if !want[pid] {
			t.Fatalf("unknown server %v in %v", pid, pids)
		}
	}
}

// TestDiscoverAllBoundedFailure: with nobody answering, enumeration must
// return ErrNoServer when the window closes instead of spinning.
func TestDiscoverAllBoundedFailure(t *testing.T) {
	leakCheck(t)
	mesh := ipc.NewMemNetwork(7, ipc.FaultConfig{})
	node := ipc.NewNode(2, mesh.Transport(2), ipc.NodeConfig{GetPidTimeout: 2 * time.Millisecond})
	t.Cleanup(func() {
		_ = node.Close()
		mesh.Close()
	})
	p := attach(t, node, "seeker")
	start := time.Now()
	if _, err := DiscoverAll(p, 50*time.Millisecond); err != ErrNoServer {
		t.Fatalf("DiscoverAll with no servers: err=%v, want ErrNoServer", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DiscoverAll failure not bounded: took %v", elapsed)
	}
}

// TestClusterMapAndRouterRefresh: the cluster map must report each
// shard's exact volume set, and Router.Refresh must turn it into a full
// volume → server table.
func TestClusterMapAndRouterRefresh(t *testing.T) {
	c := startCluster(t, ClusterConfig{
		Shards:  2,
		Volumes: []uint32{1, 2, 3, 4},
		Node:    ipc.NodeConfig{GetPidTimeout: 20 * time.Millisecond},
	})
	node := clientNode(t, c)
	p := attach(t, node, "mapper")

	cm, err := ClusterMap(p, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	wantVols := map[int][]uint32{0: {1, 3}, 1: {2, 4}} // round-robin assignment
	if len(cm) != len(c.Servers) {
		t.Fatalf("cluster map has %d servers, want %d: %v", len(cm), len(c.Servers), cm)
	}
	for i, cs := range c.Servers {
		got, ok := cm[cs.Srv.Pid()]
		if !ok {
			t.Fatalf("shard %d missing from cluster map %v", i, cm)
		}
		if fmt.Sprint(got) != fmt.Sprint(wantVols[i]) {
			t.Fatalf("shard %d volumes = %v, want %v", i, got, wantVols[i])
		}
	}

	r := newRouter(t, node)
	if _, err := r.Refresh(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	routes := r.Routes()
	if len(routes) != 4 {
		t.Fatalf("refreshed routes: %v", routes)
	}
	for i, cs := range c.Servers {
		for _, vol := range wantVols[i] {
			if routes[vol] != cs.Srv.Pid() {
				t.Fatalf("volume %d routed to %v, want shard %d (%v)", vol, routes[vol], i, cs.Srv.Pid())
			}
		}
	}
	// A volume nobody hosts resolves to ErrNoVolume, not a hang.
	if _, err := r.Resolve(99); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("Resolve(99) err = %v, want ErrNoVolume", err)
	}
}

// TestVolumeIsolation: the same file id in two volumes is two files with
// independent bytes and independent invalidation domains — a write in
// one volume never disturbs the other volume's client caches.
func TestVolumeIsolation(t *testing.T) {
	c := startCluster(t, ClusterConfig{Shards: 2}) // volumes 1 and 2
	node := clientNode(t, c)
	r := newRouter(t, node)

	c1 := NewVolumeClient(attach(t, node, "app1"), r, 1)
	c2 := NewVolumeClient(attach(t, node, "app2"), r, 2)

	d1, d2 := pattern(101, 2048), pattern(202, 2048)
	if err := c1.WriteLarge(7, 0, d1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteLarge(7, 0, d2); err != nil {
		t.Fatal(err)
	}
	// Each volume landed on its own shard.
	if c1.Server() == c2.Server() {
		t.Fatalf("volumes 1 and 2 both routed to %v", c1.Server())
	}
	got := make([]byte, 2048)
	if _, err := c1.ReadLarge(7, 0, got); err != nil || !bytes.Equal(got, d1) {
		t.Fatalf("volume 1 file 7 corrupted (err=%v)", err)
	}
	if _, err := c2.ReadLarge(7, 0, got); err != nil || !bytes.Equal(got, d2) {
		t.Fatalf("volume 2 file 7 corrupted (err=%v)", err)
	}

	// Warm a caching client per volume on file 7 block 0.
	a1, err := NewVolumeCachingClient(attach(t, node, "cache1"), r, 1, CacheClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a1.Close)
	a2, err := NewVolumeCachingClient(attach(t, node, "cache2"), r, 2, CacheClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a2.Close)
	page := make([]byte, 512)
	if _, err := a1.ReadBlock(7, 0, page); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.ReadBlock(7, 0, page); err != nil {
		t.Fatal(err)
	}

	// A write in volume 1 must invalidate a1 (read-your-writes across
	// clients within the volume) and must not touch a2's cache at all.
	fresh := pattern(303, 512)
	if err := c1.WriteBlock(7, 0, fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := a1.ReadBlock(7, 0, page); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, fresh) {
		t.Fatal("volume 1 caching client served stale bytes after the write's ack")
	}
	if got := a2.Cache().Stats().Invalidations; got != 0 {
		t.Fatalf("volume 1 write invalidated %d blocks in volume 2's client cache", got)
	}
	if _, err := a2.ReadBlock(7, 0, page); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, d2[:512]) {
		t.Fatal("volume 2 bytes disturbed by volume 1 write")
	}
}

// failoverScenario drives the kill/recover sequence shared by the mesh
// and UDP failover tests: with one shard down, its volume fails fast and
// retryably while the other volume keeps serving; after restart the
// routed client re-resolves and the volume's data is intact.
func failoverScenario(t *testing.T, c *Cluster) {
	t.Helper()
	node := clientNode(t, c)
	r := newRouter(t, node)
	c1 := NewVolumeClient(attach(t, node, "app1"), r, 1)
	c2 := NewVolumeClient(attach(t, node, "app2"), r, 2)

	p1, p2 := pattern(1, 512), pattern(2, 512)
	if err := c1.WriteBlock(3, 0, p1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteBlock(3, 0, p2); err != nil {
		t.Fatal(err)
	}
	// Push volume 1's dirty blocks to its store so they survive the kill.
	if err := c1.Sync(0); err != nil {
		t.Fatal(err)
	}

	c.Kill(0) // shard 0 hosts volume 1

	// Volume 2 is unaffected.
	page := make([]byte, 512)
	if _, err := c2.ReadBlock(3, 0, page); err != nil {
		t.Fatalf("surviving volume failed during the outage: %v", err)
	}
	if !bytes.Equal(page, p2) {
		t.Fatal("surviving volume corrupted during the outage")
	}

	// Volume 1 fails within a bounded budget, with a retryable error:
	// the route is dropped, re-resolution finds no owner, ErrNoVolume.
	start := time.Now()
	_, err := c1.ReadBlock(3, 0, page)
	if err == nil {
		t.Fatal("read from the killed shard's volume succeeded")
	}
	if !errors.Is(err, ErrNoVolume) && !errors.Is(err, ipc.ErrTimeout) {
		t.Fatalf("outage error = %v, want ErrNoVolume or ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("outage error not bounded: took %v", elapsed)
	}

	// Recovery: the revived server re-advertises volume 1 and the same
	// client re-routes to it. The data written before the crash is there.
	restart := func() error { return c.Restart(0) }
	if err := restart(); err != nil {
		// A UDP rebind can transiently lose the race with the old socket.
		time.Sleep(50 * time.Millisecond)
		if err := restart(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = c1.ReadBlock(3, 0, page); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("volume 1 never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Equal(page, p1) {
		t.Fatal("volume 1 data lost across the crash")
	}
	if c1.Server() != c.Servers[0].Srv.Pid() {
		t.Fatalf("client routed to %v, want the revived server %v", c1.Server(), c.Servers[0].Srv.Pid())
	}
	// And the recovered volume takes new writes.
	if err := c1.WriteBlock(3, 1, pattern(9, 512)); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

func TestRouterFailoverMem(t *testing.T) {
	failoverScenario(t, startCluster(t, ClusterConfig{Shards: 2, Node: tightNode()}))
}

func TestRouterFailoverUDP(t *testing.T) {
	failoverScenario(t, startCluster(t, ClusterConfig{Shards: 2, UDP: true, Node: tightNode()}))
}

// TestClusterKillRestartLeakUDP: killing a shard under UDP must release
// every pooled frame the dead server, its node and its transport held —
// while the rest of the cluster (including a replica promoting itself
// and clients churning retries against the dead address) keeps running.
// The mid-test drain check catches leaks Kill would otherwise park
// until Close; the startCluster leak check covers final teardown.
func TestClusterKillRestartLeakUDP(t *testing.T) {
	c := startCluster(t, ClusterConfig{
		Shards:   2,
		UDP:      true,
		Replicas: 1,
		Node:     tightNode(),
		Server: Config{
			ReplicaLease:      150 * time.Millisecond,
			ReplicaAckTimeout: 50 * time.Millisecond,
		},
	})
	node := clientNode(t, c)
	r := newRouter(t, node)
	c1 := NewVolumeClient(attach(t, node, "app1"), r, 1)
	c2 := NewVolumeClient(attach(t, node, "app2"), r, 2)
	for b := uint32(0); b < 8; b++ {
		if err := c1.WriteBlock(3, b, pattern(b, 512)); err != nil {
			t.Fatal(err)
		}
		if err := c2.WriteBlock(3, b, pattern(b+8, 512)); err != nil {
			t.Fatal(err)
		}
	}
	// Volume 1's replica (shard 1) must be enrolled in-sync before the
	// kills, so the later failover pass has something eligible to promote.
	waitReplicaServing(t, node, c.Servers[1].Srv.Pid(), 3, 7, pattern(7, 512))

	// Kill every shard. With only idle clients left alive, every pooled
	// frame the dead servers held — block caches, replication logs'
	// senders, transport read loops, in-flight requests — must come
	// back to the pool. This is the per-kill leak check; accumulating
	// frames here would leak once per crash/recovery cycle.
	c.Kill(0)
	c.Kill(1)
	drainDeadline := time.Now().Add(5 * time.Second)
	for bufpool.Outstanding() != 0 {
		if time.Now().After(drainDeadline) {
			t.Fatalf("bufpool leak after kill: %d frames outstanding", bufpool.Outstanding())
		}
		time.Sleep(time.Millisecond)
	}

	// Both shards come back on their old addresses with their old
	// stores; the Rejoin probes find no promoted usurper (everyone was
	// down) so the primaries stay primaries, and the data survived.
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 512)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c1.WriteBlock(3, 0, pattern(42, 512)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("volume 1 writes never recovered after restart")
		}
	}
	if _, err := c2.ReadBlock(3, 1, page); err != nil {
		t.Fatalf("volume 2 after restart: %v", err)
	}
	if !bytes.Equal(page, pattern(9, 512)) {
		t.Fatal("volume 2 corrupted across the kill/restart cycle")
	}

	// Second cycle, this time a failover: kill volume 1's primary under
	// an established replica and let the replica promote; the teardown
	// leak check (startCluster) covers this path's frames.
	waitReplicaServing(t, node, c.Servers[1].Srv.Pid(), 3, 0, pattern(42, 512))
	c.Kill(0)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, err := c1.ReadBlock(3, 0, page); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("volume 1 never failed over to its replica")
		}
	}
	if !bytes.Equal(page, pattern(42, 512)) {
		t.Fatal("promoted replica served wrong bytes")
	}
}

// writerCrashFanOutScenario: a caching client crashes while its write's
// invalidation fan-out is in flight. The registry must not wedge its
// invalidator pool on the dead client's watcher registration — later
// writes complete promptly, revoking the unreachable registration —
// and a surviving client that misses callbacks converges once its
// lease runs out (fake clocks on both the server registry and the
// surviving client).
func writerCrashFanOutScenario(t *testing.T, udp bool) {
	t.Helper()
	c := startCluster(t, ClusterConfig{
		Shards: 1,
		UDP:    udp,
		Node:   tightNode(),
		Server: Config{CacheLease: time.Second},
	})
	srv := c.Servers[0].Srv

	// Shared fake clock: the server registry's lease sweeps and the
	// surviving reader's renewals both follow it.
	var mu sync.Mutex
	var skew time.Duration
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return time.Now().Add(skew) }
	srv.registry.setNow(clock)

	doomedNode := clientNode(t, c)
	liveNode := clientNode(t, c)
	liveRouter := newRouter(t, liveNode)
	doomedRouter := newRouter(t, doomedNode)

	w, err := NewVolumeCachingClient(attach(t, doomedNode, "doomed-writer"), doomedRouter, 1, CacheClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The crash is the node dying, not an orderly shutdown — but the
	// client object itself still owns pooled cache buffers, so release
	// them at test end (the exchanges inside fail fast on the dead node).
	t.Cleanup(w.Close)
	reader, err := NewVolumeCachingClient(attach(t, liveNode, "survivor"), liveRouter, 1, CacheClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reader.Close)
	reader.setNow(clock)
	p := NewVolumeClient(attach(t, liveNode, "plain-writer"), liveRouter, 1)

	page := make([]byte, 512)
	if err := p.WriteBlock(9, 0, versionedPage(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Both caching clients read v1 and register as watchers.
	if _, err := w.ReadBlock(9, 0, page); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.ReadBlock(9, 0, page); err != nil {
		t.Fatal(err)
	}
	if got := srv.registry.watcherCount(); got != 2 {
		t.Fatalf("watchers before the crash: %d, want 2", got)
	}

	// The doomed writer writes v2 and its node dies while the write —
	// and the server's invalidation fan-out it triggers — is in flight.
	var crashWG sync.WaitGroup
	crashWG.Add(1)
	go func() {
		defer crashWG.Done()
		time.Sleep(time.Millisecond)
		_ = doomedNode.Close()
	}()
	_ = w.WriteBlock(9, 0, versionedPage(0, 2)) // may fail: the node is dying under it
	crashWG.Wait()

	// The next write's fan-out hits the dead writer's registration. It
	// must complete promptly — the pool bounds the dead callback and
	// revokes the registration — and the survivor, whose callback
	// arrived, converges immediately.
	start := time.Now()
	if err := p.WriteBlock(9, 0, versionedPage(0, 3)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("write wedged behind the crashed writer's watcher: %v", elapsed)
	}
	if _, err := reader.ReadBlock(9, 0, page); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, versionedPage(0, 3)) {
		t.Fatal("survivor served stale bytes after the writer crashed")
	}
	if got := srv.Stats().CacheCallbackErrs; got == 0 {
		t.Fatal("fan-out to the dead writer reported no callback error")
	}
	// The pool is not wedged: a burst of further writes stays prompt.
	start = time.Now()
	for v := uint32(4); v < 9; v++ {
		if err := p.WriteBlock(9, 0, versionedPage(0, v)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("invalidator pool wedged: 5 writes took %v", elapsed)
	}

	// Lease-expiry convergence: the survivor goes quiet past its lease,
	// the registry sweeps its registration, and a write it never hears
	// about lands. Its next read must renew, purge, and see fresh bytes
	// instead of trusting its stale cache.
	mu.Lock()
	skew = 10 * time.Second
	mu.Unlock()
	if err := p.WriteBlock(9, 0, versionedPage(0, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.ReadBlock(9, 0, page); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, versionedPage(0, 9)) {
		t.Fatal("survivor failed to converge via lease expiry")
	}
	if got := srv.Stats().CacheLeaseExpiries; got == 0 {
		t.Fatal("registry never swept an expired registration")
	}
}

func TestWriterCrashFanOutMem(t *testing.T) { writerCrashFanOutScenario(t, false) }
func TestWriterCrashFanOutUDP(t *testing.T) { writerCrashFanOutScenario(t, true) }

// TestRoutedCachingFailoverReadYourWrites: within a volume, cross-client
// read-your-writes must hold through a server crash and recovery. Before
// the crash the invalidation callbacks carry it; after failover the
// writer's client purges wholesale on reroute, and the reader — whose
// registration died with the old server — re-registers once its lease
// runs out, re-routes, purges, and refills from the new server.
func TestRoutedCachingFailoverReadYourWrites(t *testing.T) {
	c := startCluster(t, ClusterConfig{Shards: 2, Node: tightNode()})
	node := clientNode(t, c)
	r := newRouter(t, node)
	a, err := NewVolumeCachingClient(attach(t, node, "writer"), r, 1, CacheClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := NewVolumeCachingClient(attach(t, node, "reader"), r, 1, CacheClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	// The reader's lease clock is fake so the test ages it without
	// sleeping through a real lease.
	var mu sync.Mutex
	var skew time.Duration
	b.setNow(func() time.Time { mu.Lock(); defer mu.Unlock(); return time.Now().Add(skew) })

	page := make([]byte, 512)
	read := func(who *CachingClient) []byte {
		t.Helper()
		if _, err := who.ReadBlock(9, 0, page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	// Pre-crash: every write's ack happens after the reader's cached copy
	// is invalidated, so the next read sees the write.
	if err := a.WriteBlock(9, 0, versionedPage(0, 1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read(b), versionedPage(0, 1)) {
		t.Fatal("reader missed write v1")
	}
	if err := a.WriteBlock(9, 0, versionedPage(0, 2)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read(b), versionedPage(0, 2)) {
		t.Fatal("reader served stale v1 after v2's ack")
	}

	// Crash and revive volume 1's shard. The revived server has the
	// volume's store but an empty registry with reset version counters.
	if err := a.Sync(0); err != nil {
		t.Fatal(err)
	}
	c.Kill(0)
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}

	// The writer's next op re-routes (purging its cache and consistency
	// state), registers with the new server and writes v3.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = a.WriteBlock(9, 0, versionedPage(0, 3)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if a.Stats().Purges == 0 {
		t.Fatal("writer never purged on reroute")
	}

	// The reader's registration died with the old server, so its
	// staleness is bounded by the lease: once the lease runs out it must
	// re-register — with the new server — purge, and read v3.
	mu.Lock()
	skew = 10 * time.Second
	mu.Unlock()
	if !bytes.Equal(read(b), versionedPage(0, 3)) {
		t.Fatal("reader served stale bytes after failover + lease expiry")
	}
	if b.Stats().Purges == 0 {
		t.Fatal("reader never purged on reroute")
	}
	// From here the protocol is fully re-established on the new server.
	if err := a.WriteBlock(9, 0, versionedPage(0, 4)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read(b), versionedPage(0, 4)) {
		t.Fatal("read-your-writes broken after recovery")
	}
}
