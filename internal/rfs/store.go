package rfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrNoFile is returned by stores for unknown file ids.
var ErrNoFile = errors.New("rfs: no such file")

// Store is the server's backing block store: a flat namespace of
// byte-addressed files keyed by 32-bit id. Implementations must be safe
// for concurrent use — the server's worker pool reads and writes from
// many goroutines.
type Store interface {
	// ReadAt fills p from the file at off, zero-filling any part past
	// end-of-file, and returns the number of in-file bytes copied.
	ReadAt(file uint32, p []byte, off int64) (int, error)
	// WriteAt stores p at off, creating or extending the file as needed.
	WriteAt(file uint32, p []byte, off int64) error
	// Size returns the file's length in bytes.
	Size(file uint32) (int64, error)
	// Create makes an empty file of the given size (truncating any
	// existing content).
	Create(file uint32, size int64) error
	// Files enumerates the ids of every file the store holds, in no
	// particular order (snapshot resync walks it to mirror a primary).
	Files() ([]uint32, error)
	// Close releases store resources.
	Close() error
}

// MemStore is an in-memory Store: the server-resident "disk" for
// benchmarks and for the diskless demos where the server's memory is the
// backing store.
type MemStore struct {
	mu    sync.RWMutex
	files map[uint32][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{files: make(map[uint32][]byte)}
}

// ReadAt implements Store. The copy happens under the read lock: WriteAt
// mutates the backing array in place when the file does not grow.
func (s *MemStore) ReadAt(file uint32, p []byte, off int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[file]
	if !ok {
		return 0, ErrNoFile
	}
	for i := range p {
		p[i] = 0
	}
	if off >= int64(len(data)) {
		return 0, nil
	}
	return copy(p, data[off:]), nil
}

// WriteAt implements Store; it creates or extends the file as needed.
func (s *MemStore) WriteAt(file uint32, p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data := s.files[file]
	if need := off + int64(len(p)); need > int64(len(data)) {
		grown := make([]byte, need)
		copy(grown, data)
		data = grown
	}
	copy(data[off:], p)
	s.files[file] = data
	return nil
}

// Size implements Store.
func (s *MemStore) Size(file uint32) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[file]
	if !ok {
		return 0, ErrNoFile
	}
	return int64(len(data)), nil
}

// Create implements Store.
func (s *MemStore) Create(file uint32, size int64) error {
	s.mu.Lock()
	s.files[file] = make([]byte, size)
	s.mu.Unlock()
	return nil
}

// Files implements Store.
func (s *MemStore) Files() ([]uint32, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]uint32, 0, len(s.files))
	for id := range s.files {
		ids = append(ids, id)
	}
	return ids, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// DelayStore wraps a Store as a model of one disk: every read, write and
// create holds the (single) device for a fixed service time before the
// inner operation runs, so at most one operation is in service at once
// and sustained throughput is bounded by 1/delay regardless of how many
// server workers pile in. The shard-scaling benchmark gives each volume
// its own DelayStore — aggregate device bandwidth then grows with the
// shard count, which is exactly the capacity story volume sharding is
// for (and it keeps the benchmark honest on a single-CPU host, where
// extra servers cannot add compute, only devices). Size is served
// without delay, like a cached inode.
type DelayStore struct {
	inner Store
	delay time.Duration
	mu    sync.Mutex // the device: one op in service at a time
}

// NewDelayStore wraps inner with a per-operation device latency.
func NewDelayStore(inner Store, delay time.Duration) *DelayStore {
	return &DelayStore{inner: inner, delay: delay}
}

// occupy holds the device for one service time.
func (s *DelayStore) occupy() {
	s.mu.Lock()
	time.Sleep(s.delay)
	s.mu.Unlock()
}

// ReadAt implements Store.
func (s *DelayStore) ReadAt(file uint32, p []byte, off int64) (int, error) {
	s.occupy()
	return s.inner.ReadAt(file, p, off)
}

// WriteAt implements Store.
func (s *DelayStore) WriteAt(file uint32, p []byte, off int64) error {
	s.occupy()
	return s.inner.WriteAt(file, p, off)
}

// Size implements Store.
func (s *DelayStore) Size(file uint32) (int64, error) { return s.inner.Size(file) }

// Create implements Store.
func (s *DelayStore) Create(file uint32, size int64) error {
	s.occupy()
	return s.inner.Create(file, size)
}

// Files implements Store; like Size it is served without delay.
func (s *DelayStore) Files() ([]uint32, error) { return s.inner.Files() }

// Close implements Store.
func (s *DelayStore) Close() error { return s.inner.Close() }

// FileStore is a Store backed by one OS file per file id inside a
// directory — the durable variant for a real server. Files are opened
// lazily and kept open; os.File ReadAt/WriteAt are safe for concurrent
// use, so only the handle map is locked.
type FileStore struct {
	dir string

	mu    sync.Mutex
	files map[uint32]*os.File
}

// NewFileStore creates (if needed) and opens the backing directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rfs: store dir: %w", err)
	}
	return &FileStore{dir: dir, files: make(map[uint32]*os.File)}, nil
}

func (s *FileStore) path(file uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("f%08x.dat", file))
}

// open returns the handle for file, opening or (when create is set)
// creating it on first use.
func (s *FileStore) open(file uint32, create bool) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[file]; ok {
		return f, nil
	}
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(s.path(file), flags, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoFile
		}
		return nil, err
	}
	s.files[file] = f
	return f, nil
}

// ReadAt implements Store.
func (s *FileStore) ReadAt(file uint32, p []byte, off int64) (int, error) {
	f, err := s.open(file, false)
	if err != nil {
		return 0, err
	}
	n, err := f.ReadAt(p, off)
	if err != nil && err != io.EOF {
		return n, err
	}
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	return n, nil
}

// WriteAt implements Store.
func (s *FileStore) WriteAt(file uint32, p []byte, off int64) error {
	f, err := s.open(file, true)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(p, off)
	return err
}

// Size implements Store.
func (s *FileStore) Size(file uint32) (int64, error) {
	f, err := s.open(file, false)
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create implements Store.
func (s *FileStore) Create(file uint32, size int64) error {
	f, err := s.open(file, true)
	if err != nil {
		return err
	}
	return f.Truncate(size)
}

// Files implements Store: the backing directory's f%08x.dat entries.
func (s *FileStore) Files() ([]uint32, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []uint32
	for _, e := range ents {
		var id uint32
		if _, err := fmt.Sscanf(e.Name(), "f%08x.dat", &id); err == nil {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, id)
	}
	return first
}
