package rfs

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vkernel/internal/ipc"
)

// gatedStore blocks every WriteAt until the gate opens, so tests can pin
// staged blocks in the dirty state and observe the pre-flush world.
type gatedStore struct {
	Store
	gate     chan struct{}
	openOnce sync.Once
	writes   atomic.Int64
}

func newGatedStore(inner Store) *gatedStore {
	return &gatedStore{Store: inner, gate: make(chan struct{})}
}

func (g *gatedStore) open() { g.openOnce.Do(func() { close(g.gate) }) }

func (g *gatedStore) WriteAt(file uint32, p []byte, off int64) error {
	<-g.gate
	g.writes.Add(1)
	return g.Store.WriteAt(file, p, off)
}

// slowStore delays every WriteAt, simulating a store slow enough to
// saturate the server's worker pool.
type slowStore struct {
	Store
	delay time.Duration
}

func (s *slowStore) WriteAt(file uint32, p []byte, off int64) error {
	time.Sleep(s.delay)
	return s.Store.WriteAt(file, p, off)
}

// TestWriteBehindReadYourWrites: with the store gated shut, acknowledged
// writes must be readable (pages, streamed reads and size queries) purely
// from staged cache blocks — and the store must provably not have them
// yet. Opening the gate and syncing makes them durable.
func TestWriteBehindReadYourWrites(t *testing.T) {
	mem := NewMemStore()
	gated := newGatedStore(mem)
	e := memEnvStore(t, gated, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	t.Cleanup(gated.open) // never strand the flushers if an assert fails
	c := e.client(t, "app")

	page := pattern(7, 512)
	if err := c.WriteBlock(9, 3, page); err != nil {
		t.Fatal(err)
	}
	image := pattern(8, 10_000)
	if err := c.WriteLarge(9, 4*512, image); err != nil {
		t.Fatal(err)
	}

	// Nothing reached the store...
	if n := gated.writes.Load(); n != 0 {
		t.Fatalf("store saw %d writes before the gate opened", n)
	}
	if _, err := mem.Size(9); err != ErrNoFile {
		t.Fatalf("store has the file before flush (err=%v)", err)
	}
	// ...yet every acknowledged byte reads back, and the size query sees
	// the staged extension.
	got := make([]byte, 512)
	if _, err := c.ReadBlock(9, 3, got); err != nil || !bytes.Equal(got, page) {
		t.Fatalf("read-your-writes page: err=%v", err)
	}
	large := make([]byte, len(image))
	if n, err := c.ReadLarge(9, 4*512, large); err != nil || n != len(image) || !bytes.Equal(large, image) {
		t.Fatalf("read-your-writes large: n=%d err=%v", n, err)
	}
	wantSize := 4*512 + len(image)
	if size, err := c.QueryFile(9); err != nil || size != wantSize {
		t.Fatalf("staged size = %d (err=%v), want %d", size, err, wantSize)
	}
	if st := e.srv.Stats(); st.DirtyBlocks == 0 {
		t.Fatalf("no dirty blocks while the gate is shut: %+v", st)
	}

	// Open the gate, sync, and verify durability straight off the store.
	gated.open()
	if err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	if st := e.srv.Stats(); st.DirtyBlocks != 0 || st.FlushedBlocks == 0 {
		t.Fatalf("sync left dirty blocks: %+v", st)
	}
	back := make([]byte, wantSize)
	if _, err := mem.ReadAt(9, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[3*512:4*512], page) || !bytes.Equal(back[4*512:], image) {
		t.Fatal("flushed store bytes differ from acknowledged writes")
	}
}

// TestWriteBehindPartialPageMerge: partial page writes and unaligned
// large writes staged before any flush must merge with older staged
// bytes in write order, and the merged image must survive the flush.
func TestWriteBehindPartialPageMerge(t *testing.T) {
	mem := NewMemStore()
	gated := newGatedStore(mem)
	e := memEnvStore(t, gated, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	t.Cleanup(gated.open)
	c := e.client(t, "app")

	base := pattern(1, 512)
	if err := c.WriteBlock(5, 0, base); err != nil {
		t.Fatal(err)
	}
	// Partial page over the staged block: head replaced, tail preserved.
	head := pattern(2, 100)
	if err := c.WriteBlock(5, 0, head); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, head...), base[100:]...)
	got := make([]byte, 512)
	if _, err := c.ReadBlock(5, 0, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("staged merge wrong before flush (err=%v)", err)
	}
	// Unaligned large write straddling the block boundary merges too.
	patch := pattern(3, 700)
	if err := c.WriteLarge(5, 300, patch); err != nil {
		t.Fatal(err)
	}
	want = append(want[:300], patch...)
	gated.open()
	if err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(want))
	if _, err := mem.ReadAt(5, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, want) {
		t.Fatal("flushed bytes lost a staged partial write")
	}
}

// TestWriteBehindBackpressure: with the store gated shut, a writer can
// run ahead of the flushers by at most DirtyBudget blocks; the budget
// must hold while writes stall, and opening the gate must land every
// acknowledged byte.
func TestWriteBehindBackpressure(t *testing.T) {
	mem := NewMemStore()
	gated := newGatedStore(mem)
	const budget = 4
	e := memEnvStore(t, gated, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{DirtyBudget: budget})
	t.Cleanup(gated.open)
	c := e.client(t, "app")

	const blocks = 24
	done := make(chan error, 1)
	go func() {
		var err error
		for b := uint32(0); b < blocks && err == nil; b++ {
			err = c.WriteBlock(11, b, pattern(b, 512))
		}
		done <- err
	}()

	// The writer must stall: the dirty count may never exceed the
	// budget, and the write stream cannot finish while the gate is shut.
	deadline := time.Now().Add(200 * time.Millisecond)
	sawBudget := false
	for time.Now().Before(deadline) {
		if n := e.srv.Stats().DirtyBlocks; n > budget {
			t.Fatalf("dirty blocks %d exceed budget %d", n, budget)
		} else if n == budget {
			sawBudget = true
		}
		select {
		case err := <-done:
			t.Fatalf("writer finished through a closed gate (err=%v)", err)
		default:
		}
		time.Sleep(time.Millisecond)
	}
	if !sawBudget {
		t.Fatal("writer never filled the dirty budget")
	}
	gated.open()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	for b := uint32(0); b < blocks; b++ {
		back := make([]byte, 512)
		if _, err := mem.ReadAt(11, back, int64(b)*512); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pattern(b, 512)) {
			t.Fatalf("block %d lost through backpressure", b)
		}
	}
}

// TestWriteBehindExactlyOnceUnderFaults: page writes over a lossy,
// duplicating network with write-behind on must execute exactly once at
// the server, read back correctly before any sync, and land intact in
// the store after one.
func TestWriteBehindExactlyOnceUnderFaults(t *testing.T) {
	mem := NewMemStore()
	e := memEnvStore(t, mem,
		ipc.FaultConfig{
			DropProb:    0.12,
			DupProb:     0.10,
			CorruptProb: 0.05,
			MaxDelay:    2 * time.Millisecond,
		},
		ipc.NodeConfig{RetransmitTimeout: 10 * time.Millisecond, Retries: 100},
		Config{},
	)
	c := e.client(t, "app")

	const writes = 40
	for i := 0; i < writes; i++ {
		if err := c.WriteBlock(21, uint32(i), pattern(uint32(i), 512)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if st := e.srv.Stats(); st.PageWrites != writes {
		t.Fatalf("server applied %d page writes, want exactly %d", st.PageWrites, writes)
	}
	buf := make([]byte, 512)
	for i := 0; i < writes; i++ {
		if _, err := c.ReadBlock(21, uint32(i), buf); err != nil {
			t.Fatalf("read back %d: %v", i, err)
		}
		if !bytes.Equal(buf, pattern(uint32(i), 512)) {
			t.Fatalf("block %d corrupted before sync", i)
		}
	}
	if err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 512)
	for i := 0; i < writes; i++ {
		if _, err := mem.ReadAt(21, back, int64(i)*512); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pattern(uint32(i), 512)) {
			t.Fatalf("block %d corrupted in the store after sync", i)
		}
	}
}

// TestWriteLargeScatterUnderFaults: a streamed WriteLarge over a lossy,
// duplicating network scatters chunks into cache blocks with MoveFromVec;
// the §3.3 resume must deliver every byte exactly where it belongs, with
// retransmissions actually exercised.
func TestWriteLargeScatterUnderFaults(t *testing.T) {
	mem := NewMemStore()
	e := memEnvStore(t, mem,
		ipc.FaultConfig{
			DropProb: 0.12,
			DupProb:  0.10,
			MaxDelay: 2 * time.Millisecond,
		},
		ipc.NodeConfig{RetransmitTimeout: 10 * time.Millisecond, Retries: 100},
		Config{},
	)
	c := e.client(t, "app")

	const size = 64 * 1024
	image := pattern(31, size)
	if err := c.WriteLarge(31, 0, image); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if n, err := c.ReadLarge(31, 0, got); err != nil || n != size {
		t.Fatalf("read back: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, image) {
		t.Fatal("scattered WriteLarge corrupted data before sync")
	}
	if err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, size)
	if _, err := mem.ReadAt(31, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, image) {
		t.Fatal("scattered WriteLarge corrupted data in the store")
	}
	// The MoveFrom stream runs client→server on the server's pull, so
	// its resume machinery shows up in the retransmission counters; with
	// ~12% loss over ≥64 data packets the run is vacuous without any.
	if e.serverNode.Stats().Retransmits+e.clientNode.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions under fault injection; test is vacuous")
	}
}

// TestWriteBehindDurabilityAcrossReopen: acknowledged write-behind data
// must survive Server.Close (which drains the dirty blocks) and a full
// FileStore reopen.
func TestWriteBehindDurabilityAcrossReopen(t *testing.T) {
	leakCheck(t)
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mesh := ipc.NewMemNetwork(7, ipc.FaultConfig{})
	serverNode := ipc.NewNode(1, mesh.Transport(1), ipc.NodeConfig{})
	clientNode := ipc.NewNode(2, mesh.Transport(2), ipc.NodeConfig{})
	srv, err := Start(serverNode, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := clientNode.Attach("app")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(p, srv.Pid())

	data := pattern(16, 20_000)
	if err := c.WriteLarge(16, 0, data); err != nil {
		t.Fatal(err)
	}
	page := pattern(17, 512)
	if err := c.WriteBlock(16, 50, page); err != nil {
		t.Fatal(err)
	}
	// 50*512 = 25600 > 20000: the page write extended the file past the
	// large write, leaving a zero hole between them.
	want := make([]byte, 51*512)
	copy(want, data)
	copy(want[50*512:], page)

	// Close WITHOUT an explicit Sync: Close itself must drain.
	_ = clientNode.Close()
	_ = serverNode.Close()
	srv.Close()
	mesh.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	size, err := store2.Size(16)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(want)) {
		t.Fatalf("reopened size = %d, want %d", size, len(want))
	}
	back := make([]byte, len(want))
	if _, err := store2.ReadAt(16, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, want) {
		t.Fatal("write-behind data lost across Close + reopen")
	}
}

// TestStagedPartialPageTailIsZero: a partial page staged into a recycled
// pooled buffer must read back zero-padded — never another tenant's
// bytes. The pool is deliberately polluted first: full pages written and
// flushed, then the file truncated so its buffers recycle.
func TestStagedPartialPageTailIsZero(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.client(t, "app")

	dirty := bytes.Repeat([]byte{0xEE}, 512)
	for b := uint32(0); b < 64; b++ {
		if err := c.WriteBlock(1, b, dirty); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(0); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateFile(1, 0); err != nil {
		t.Fatal(err)
	}

	// A 5-byte page write into a fresh file lands in a recycled buffer.
	if err := c.WriteBlock(2, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if _, err := c.ReadBlock(2, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("hello")) {
		t.Fatal("payload corrupted")
	}
	for i := 5; i < 512; i++ {
		if got[i] != 0 {
			t.Fatalf("staged page leaked recycled buffer bytes at %d (%#x)", i, got[i])
		}
	}
}

// TestTruncateOrderedAfterInflightFlush: a truncate acknowledged while
// an older write's flush is parked inside the store must not be undone
// when that flush lands — the create waits out in-flight flushes of the
// file before truncating.
func TestTruncateOrderedAfterInflightFlush(t *testing.T) {
	mem := NewMemStore()
	gated := newGatedStore(mem)
	e := memEnvStore(t, gated, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	t.Cleanup(gated.open)
	c := e.client(t, "app")

	if err := c.WriteBlock(9, 0, pattern(9, 512)); err != nil {
		t.Fatal(err)
	}
	// Let a flusher claim the block and park inside the gated WriteAt
	// (claiming follows the stage broadcast within microseconds).
	time.Sleep(10 * time.Millisecond)
	// Truncate concurrently with the parked flush; open the gate shortly
	// after so the create's drain can complete.
	go func() {
		time.Sleep(20 * time.Millisecond)
		gated.open()
	}()
	if err := c.CreateFile(9, 0); err != nil {
		t.Fatal(err)
	}
	if size, err := c.QueryFile(9); err != nil || size != 0 {
		t.Fatalf("truncated file regrew: size=%d err=%v", size, err)
	}
	if size, err := mem.Size(9); err != nil || size != 0 {
		t.Fatalf("store-level truncate undone by in-flight flush: size=%d err=%v", size, err)
	}
}

// stepStore admits one WriteAt per token, so tests can sequence
// individual flush writes; closing tokens lets everything through.
type stepStore struct {
	Store
	tokens chan struct{}
}

func (s *stepStore) WriteAt(file uint32, p []byte, off int64) error {
	<-s.tokens
	return s.Store.WriteAt(file, p, off)
}

// TestSyncCoversRedirtiedBlock: a block re-written while its first flush
// is in flight (redirty) and then synced must not satisfy the sync with
// the superseded flush — the drain has to wait for the flush that
// carries the re-written bytes.
func TestSyncCoversRedirtiedBlock(t *testing.T) {
	mem := NewMemStore()
	step := &stepStore{Store: mem, tokens: make(chan struct{}, 16)}
	var closeOnce sync.Once
	t.Cleanup(func() { closeOnce.Do(func() { close(step.tokens) }) })
	e := memEnvStore(t, step, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.client(t, "app")

	v1, v2 := pattern(1, 512), pattern(2, 512)
	if err := c.WriteBlock(9, 0, v1); err != nil {
		t.Fatal(err)
	}
	// Let a flusher claim v1's buffer and park awaiting a token, then
	// supersede it: the entry goes redirty with v2's buffer.
	time.Sleep(10 * time.Millisecond)
	if err := c.WriteBlock(9, 0, v2); err != nil {
		t.Fatal(err)
	}
	syncer := e.client(t, "syncer")
	syncDone := make(chan error, 1)
	go func() { syncDone <- syncer.Sync(0) }()

	// Admit exactly the superseded flush. The sync must NOT complete on
	// it — when it does complete, the store must hold v2.
	step.tokens <- struct{}{}
	select {
	case err := <-syncDone:
		if err != nil {
			t.Fatal(err)
		}
		back := make([]byte, 512)
		if _, err := mem.ReadAt(9, back, 0); err != nil || !bytes.Equal(back, v2) {
			t.Fatalf("sync completed on the superseded flush: store holds stale bytes (err=%v)", err)
		}
	case <-time.After(200 * time.Millisecond):
		// Still draining, as it should be; admit the redirty flush.
	}
	closeOnce.Do(func() { close(step.tokens) })
	if err := <-syncDone; err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 512)
	if _, err := mem.ReadAt(9, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, v2) {
		t.Fatal("synced store lost the re-written (redirtied) bytes")
	}
}

// TestSyncTerminatesUnderSustainedWrites: a sync only promises
// durability for writes acknowledged before it, so it must return while
// another client keeps dirtying blocks faster than the (slow) store
// drains them — the drain snapshots the pre-sync staged blocks instead
// of waiting for a global dirty count of zero.
func TestSyncTerminatesUnderSustainedWrites(t *testing.T) {
	slow := &slowStore{Store: NewMemStore(), delay: 2 * time.Millisecond}
	e := memEnvStore(t, slow, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	writer := e.client(t, "writer")
	stop := make(chan struct{})
	done := make(chan struct{})
	page := pattern(3, 512)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writer.WriteBlock(3, uint32(i%64), page); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	c := e.client(t, "syncer")
	for k := 0; k < 3; k++ {
		start := time.Now()
		if err := c.Sync(0); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > 10*time.Second {
			t.Fatalf("sync %d starved by concurrent writes (%v)", k, d)
		}
	}
	close(stop)
	<-done
}

// TestOverloadGoodputWithRetry drives more concurrent writers than a
// deliberately slow, single-worker, write-through server can absorb, so
// the kernel sheds Sends with overload Nacks — and the stubs' backoff
// retry must still land every write exactly once. Goodput is measured at
// two receive-queue depths (the ROADMAP's overload experiment).
func TestOverloadGoodputWithRetry(t *testing.T) {
	for _, depth := range []int{2, 32} {
		depth := depth
		t.Run(fmt.Sprintf("queue=%d", depth), func(t *testing.T) {
			slow := &slowStore{Store: NewMemStore(), delay: 300 * time.Microsecond}
			e := memEnvStore(t, slow, ipc.FaultConfig{}, ipc.NodeConfig{},
				Config{WriteThrough: true, Workers: 1, QueueDepth: 1, ReceiveQueueDepth: depth})
			const clients, writes = 8, 20
			var retries atomic.Int64
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			start := time.Now()
			for g := 0; g < clients; g++ {
				c := e.client(t, fmt.Sprintf("app%d", g))
				c.SetRetry(RetryPolicy{Retries: 10_000, Delay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond},
					func(d time.Duration) { retries.Add(1); time.Sleep(d) })
				file := uint32(100 + g)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < writes; i++ {
						if err := c.WriteBlock(file, uint32(i), pattern(file, 512)); err != nil {
							errs <- fmt.Errorf("file %d write %d: %w", file, i, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			elapsed := time.Since(start)
			st := e.srv.Stats()
			if st.PageWrites != clients*writes {
				t.Fatalf("server executed %d writes, want exactly %d", st.PageWrites, clients*writes)
			}
			nacks := e.serverNode.Stats().NacksSent
			t.Logf("queue depth %d: goodput %.0f writes/s, %d overload retries, %d nacks",
				depth, float64(clients*writes)/elapsed.Seconds(), retries.Load(), nacks)
			if depth == 2 && retries.Load() == 0 {
				t.Log("note: no overload shedding this run; goodput comparison is vacuous")
			}
		})
	}
}

// fileGatedStore blocks WriteAt for one file only; every other file's
// writes pass (and are counted), so tests can park flushers inside one
// file's backlog while another file stays serviceable.
type fileGatedStore struct {
	Store
	gatedFile uint32
	gate      chan struct{}
	openOnce  sync.Once
	passed    atomic.Int64 // writes to non-gated files
}

func newFileGatedStore(inner Store, file uint32) *fileGatedStore {
	return &fileGatedStore{Store: inner, gatedFile: file, gate: make(chan struct{})}
}

func (g *fileGatedStore) open() { g.openOnce.Do(func() { close(g.gate) }) }

func (g *fileGatedStore) WriteAt(file uint32, p []byte, off int64) error {
	if file == g.gatedFile {
		<-g.gate
	} else {
		g.passed.Add(1)
	}
	return g.Store.WriteAt(file, p, off)
}

// TestPerFileSync: Sync(file) must drain exactly that file's staged
// blocks and return while another file's backlog has every flusher
// parked inside a stalled store — the per-file drain is self-servicing,
// not queued behind the flusher pool.
func TestPerFileSync(t *testing.T) {
	mem := NewMemStore()
	gated := newFileGatedStore(mem, 8) // file 8's writes stall
	e := memEnvStore(t, gated, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{Flushers: 2})
	t.Cleanup(gated.open)
	c := e.client(t, "app")

	// Stack a backlog on the gated file; the eager flushers will claim
	// it and park inside the store.
	for b := uint32(0); b < 12; b++ {
		if err := c.WriteBlock(8, b, pattern(b, 512)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // let the flushers claim and park
	// One block on an independent file.
	want := pattern(99, 512)
	if err := c.WriteBlock(9, 0, want); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	syncer := e.client(t, "syncer")
	go func() { done <- syncer.Sync(9) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("per-file sync waited on another file's gated backlog")
	}
	back := make([]byte, 512)
	if _, err := mem.ReadAt(9, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, want) {
		t.Fatal("per-file sync returned before the file's bytes were durable")
	}
	// File 8 must still be undrained — the gate never opened.
	if _, err := mem.Size(8); err != ErrNoFile {
		t.Fatalf("gated file leaked to the store (err=%v)", err)
	}

	// Open the gate; a whole-cache sync drains the backlog.
	gated.open()
	if err := syncer.Sync(0); err != nil {
		t.Fatal(err)
	}
	for b := uint32(0); b < 12; b++ {
		if _, err := mem.ReadAt(8, back, int64(b)*512); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pattern(b, 512)) {
			t.Fatalf("gated file block %d lost", b)
		}
	}
}

// TestMaxDirtyAgeTrickle: with scheduled flushing (MaxDirtyAge > 0) a
// lone dirty block under light load is NOT flushed on demand — it waits
// for the age trickle, driven here by a fake clock, which bounds the
// data-loss window without giving up write coalescing.
func TestMaxDirtyAgeTrickle(t *testing.T) {
	mem := NewMemStore()
	gated := newGatedStore(mem)
	gated.open()          // writes pass; the wrapper only counts them
	const age = time.Hour // the ticker never fires on its own in-test
	e := memEnvStore(t, gated, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{MaxDirtyAge: age})
	c := e.client(t, "app")

	base := time.Now()
	e.srv.volumes[DefaultVolume].cache.setNow(func() time.Time { return base })

	want := pattern(5, 512)
	if err := c.WriteBlock(5, 0, want); err != nil {
		t.Fatal(err)
	}
	// Scheduled mode: no budget pressure, no sync, block not aged — the
	// write must still be dirty after giving any eager flusher ample time.
	time.Sleep(30 * time.Millisecond)
	if n := gated.writes.Load(); n != 0 {
		t.Fatalf("scheduled flusher wrote %d times with a young block", n)
	}
	if st := e.srv.Stats(); st.DirtyBlocks != 1 {
		t.Fatalf("block not held dirty: %+v", st)
	}
	// A trickle pass before the block ages is a no-op.
	e.srv.volumes[DefaultVolume].cache.tricklePass()
	if n := gated.writes.Load(); n != 0 {
		t.Fatalf("trickle flushed a young block (%d writes)", n)
	}
	// Age it past MaxDirtyAge: the next pass must flush it.
	e.srv.volumes[DefaultVolume].cache.setNow(func() time.Time { return base.Add(2 * age) })
	e.srv.volumes[DefaultVolume].cache.tricklePass()
	if n := gated.writes.Load(); n != 1 {
		t.Fatalf("aged block not trickled out (writes=%d)", n)
	}
	if st := e.srv.Stats(); st.DirtyBlocks != 0 {
		t.Fatalf("trickled block still dirty: %+v", st)
	}
	back := make([]byte, 512)
	if _, err := mem.ReadAt(5, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, want) {
		t.Fatal("trickled bytes corrupted")
	}
}

// TestScheduledFlushPressureAndSync: scheduled flushing must still (a)
// flush on budget pressure before writers block forever, and (b) honor
// an explicit sync immediately — the age trickle is a bound, not the
// only path to the store.
func TestScheduledFlushPressureAndSync(t *testing.T) {
	mem := NewMemStore()
	e := memEnvStore(t, mem, ipc.FaultConfig{}, ipc.NodeConfig{},
		Config{MaxDirtyAge: time.Hour, DirtyBudget: 4})
	c := e.client(t, "app")

	// 24 blocks through a budget of 4: only pressure-driven claims keep
	// the writer moving (the fake hour means no trickle, no sync yet).
	for b := uint32(0); b < 24; b++ {
		if err := c.WriteBlock(6, b, pattern(b, 512)); err != nil {
			t.Fatalf("write %d stalled under scheduled flushing: %v", b, err)
		}
	}
	// An explicit sync drains the tail without waiting for age.
	if err := c.Sync(6); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 512)
	for b := uint32(0); b < 24; b++ {
		if _, err := mem.ReadAt(6, back, int64(b)*512); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pattern(b, 512)) {
			t.Fatalf("block %d lost under scheduled flushing", b)
		}
	}
}

// TestZeroLengthWriteParity: a zero-length page write must behave
// identically in both modes — it creates/extends the file to the block
// offset and the observed size never transiently grows then vanishes.
func TestZeroLengthWriteParity(t *testing.T) {
	for _, wt := range []bool{false, true} {
		wt := wt
		t.Run(fmt.Sprintf("writethrough=%v", wt), func(t *testing.T) {
			e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{WriteThrough: wt})
			c := e.client(t, "app")
			if err := c.WriteBlock(9, 5, nil); err != nil {
				t.Fatal(err)
			}
			if err := c.Sync(0); err != nil {
				t.Fatal(err)
			}
			if size, err := c.QueryFile(9); err != nil || size != 5*512 {
				t.Fatalf("size=%d err=%v, want %d", size, err, 5*512)
			}
		})
	}
}
