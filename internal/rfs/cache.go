package rfs

import (
	"container/list"
	"sync"
	"sync/atomic"

	"vkernel/internal/bufpool"
)

// blockID names one cached block.
type blockID struct {
	file  uint32
	block uint32
}

// blockCache is the server's in-memory block cache with LRU replacement.
// It caches read data only: writes go through to the store and invalidate
// the affected blocks, so a cached block is an immutable snapshot and may
// be lent to concurrent readers without copying.
//
// Blocks are pooled, reference-counted buffers. The cache holds one
// reference per entry; get hands the caller another, so a block lent to
// an in-flight reply or bulk transfer survives invalidation or eviction —
// the pool cannot recycle it until the borrower's Release — while the
// cache itself drops stale data immediately. That is what makes serving
// straight from cache memory safe with recycled buffers: invalidate never
// frees a lent block, it only severs it from the cache (the borrower
// finishes with the consistent pre-write snapshot, exactly as a reply
// already on the wire would).
//
// A miss is filled outside the lock (the store read may block), which
// opens a race: read old bytes from the store, lose the CPU to a
// write-through + invalidate of the same block, then insert the stale
// bytes — poisoning the cache until the next write. Invalidations
// therefore bump a generation counter (sharded by block id to bound
// space); the miss path snapshots the generation before reading the
// store and inserts only if it is unchanged (put with the gen argument).
type blockCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[blockID]*list.Element
	lru      *list.List // front = most recently used

	gens [256]atomic.Uint64 // invalidation stamps, sharded by block id

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	id  blockID
	buf *bufpool.Buf
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{
		capacity: capacity,
		entries:  make(map[blockID]*list.Element),
		lru:      list.New(),
	}
}

// get returns the cached block with a reference for the caller (Release
// when done), marking it most recently used. Callers must not mutate the
// block's bytes.
func (c *blockCache) get(id blockID) (*bufpool.Buf, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).buf.Retain(), true
}

// contains reports presence without touching recency or hit counters.
func (c *blockCache) contains(id blockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// genOf returns the invalidation-stamp shard for a block id.
func (c *blockCache) genOf(id blockID) *atomic.Uint64 {
	h := (id.file*2654435761 + id.block) * 2654435761
	return &c.gens[h>>24&0xff]
}

// snapshot returns the block's current invalidation stamp; take it before
// reading the store on a miss and pass it to put.
func (c *blockCache) snapshot(id blockID) uint64 { return c.genOf(id).Load() }

// put inserts or refreshes a block, evicting the least recently used
// entry past capacity. The cache takes its own reference on buf; the
// caller keeps (and eventually releases) its own. The insert is skipped
// if the block was invalidated since gen was snapshotted — the data was
// read before a concurrent write and is stale.
func (c *blockCache) put(id blockID, buf *bufpool.Buf, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.genOf(id).Load() != gen {
		return
	}
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		e.buf.Release()
		e.buf = buf.Retain()
		c.lru.MoveToFront(el)
		return
	}
	c.entries[id] = c.lru.PushFront(&cacheEntry{id: id, buf: buf.Retain()})
	if c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		e := back.Value.(*cacheEntry)
		delete(c.entries, e.id)
		e.buf.Release()
	}
}

// invalidate drops a block (after a write-through made it stale) and
// stamps the invalidation so in-flight miss fills cannot resurrect it.
// Borrowers of the block are unaffected: only the cache's reference is
// dropped.
func (c *blockCache) invalidate(id blockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.genOf(id).Add(1)
	if el, ok := c.entries[id]; ok {
		c.lru.Remove(el)
		delete(c.entries, id)
		el.Value.(*cacheEntry).buf.Release()
	}
}

// invalidateFile drops every cached block of a file (after a create or
// truncate made the whole file stale).
func (c *blockCache) invalidateFile(file uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.id.file == file {
			c.lru.Remove(el)
			delete(c.entries, e.id)
			e.buf.Release()
		}
		el = next
	}
	// Blocks of the file may also be mid-fill from the old contents
	// without being cached yet; bump every shard so those inserts drop.
	for i := range c.gens {
		c.gens[i].Add(1)
	}
}

// clear returns every cached block to the pool (server shutdown).
func (c *blockCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*cacheEntry).buf.Release()
	}
	c.lru.Init()
	c.entries = make(map[blockID]*list.Element)
}

func (c *blockCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
