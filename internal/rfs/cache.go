package rfs

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/obs"
)

// errCacheClosed reports a stage attempted after close; the server
// quiesces its workers before closing the cache, so reaching it means a
// lifecycle bug, not a runtime condition.
var errCacheClosed = errors.New("rfs: block cache closed")

// errStaleSpare reports that the spare old-block image a stage was
// handed predates a concurrent write or truncate of the same block; the
// caller must refetch and retry, or acknowledged bytes could be
// reverted.
var errStaleSpare = errors.New("rfs: stale spare image")

// blockID names one cached block.
type blockID struct {
	file  uint32
	block uint32
}

// Block states. A clean block is an immutable snapshot of store contents
// and may be evicted freely. A dirty block is newer than the store and is
// pinned in the cache until a flusher writes it back (write-behind, §6.2's
// server-side buffering). A flushing block has been claimed by a flusher;
// a write that lands while the flush is in flight swaps in a fresh buffer
// and marks the entry redirty, so the per-block write-back order is always
// oldest-first and the store converges on the newest bytes.
const (
	stateClean = iota
	stateDirty
	stateFlushing
)

// blockCache is the server's in-memory block cache with LRU replacement
// and (optionally) write-behind dirty-block tracking.
//
// Blocks are pooled, reference-counted buffers. The cache holds one
// reference per entry; get hands the caller another, so a block lent to
// an in-flight reply or bulk transfer survives invalidation, eviction or
// a staged overwrite — the pool cannot recycle it until the borrower's
// Release — while the cache itself moves on immediately. Every cached
// buffer is immutable while reachable by readers: a write never mutates
// an entry's bytes in place, it stages a freshly filled buffer and swaps
// it in under the lock (copy-on-write), so concurrent readers keep a
// consistent pre-write snapshot exactly as a reply already on the wire
// would.
//
// A miss is filled outside the lock (the store read may block), which
// opens a race: read old bytes from the store, lose the CPU to a write
// of the same block, then insert the stale bytes — poisoning the cache
// until the next write. Invalidations AND staged writes therefore bump a
// generation counter (sharded by block id to bound space); the miss path
// snapshots the generation before reading the store and inserts only if
// it is unchanged (put with the gen argument). That is what keeps an
// invalidate or read-miss from resurrecting pre-flush bytes: any store
// read that began before the newest staged write is discarded on insert.
type blockCache struct {
	mu        sync.Mutex
	cond      *sync.Cond // flusher work, budget headroom, drain progress
	capacity  int
	blockSize int
	budget    int // max non-clean blocks before stage applies backpressure
	maxRun    int // max blocks coalesced into one flush write
	entries   map[blockID]*list.Element
	lru       *list.List // front = most recently used

	// Write-behind state, guarded by mu. dirty holds the staged blocks no
	// flusher has claimed yet; dirtyCount counts every non-clean entry
	// (dirty + flushing), the quantity the budget bounds; fileDirty is
	// the same count per file. staged tracks each file's write
	// high-water mark so size queries and bounds checks see unflushed
	// extensions; once a file has no non-clean blocks the store covers
	// the mark and the entry is pruned (the maps stay proportional to
	// in-flight work, not to every file id ever written).
	dirty      map[blockID]*cacheEntry
	dirtyCount int
	fileDirty  map[uint32]int
	staged     map[uint32]int64
	closed     bool
	// flushErrByFile holds the first write-back error per file since that
	// file's last drain. Per-file, not a single sticky error: a per-file
	// sync must report — and clear — only its own file's failures, or a
	// sync of a healthy file would steal (and erase) the failing file's
	// error and the failing file's next sync would report success for
	// lost bytes.
	flushErrByFile map[uint32]error
	write          func(file uint32, off int64, p []byte) error
	flushWG        sync.WaitGroup

	// Flush scheduling. With maxDirtyAge == 0 flushers are eager: they
	// claim dirty blocks the moment they appear. A positive maxDirtyAge
	// holds dirty blocks back for coalescing until (a) the dirty count
	// reaches half the budget, (b) a drain (sync/close) is waiting —
	// drainWaiters counts those — or (c) the trickler finds blocks dirty
	// longer than maxDirtyAge, which bounds the data-loss window under
	// light load. now is the trickle's clock (tests fake it to age blocks
	// without sleeping).
	maxDirtyAge  time.Duration
	drainWaiters int
	now          func() time.Time
	trickleDone  chan struct{}

	gens [256]atomic.Uint64 // invalidation stamps, sharded by block id

	// ring, when set (the server wires its registry's trace ring in),
	// receives a span event per flush run that writes back a traced
	// block — the asynchronous tail of a traced write's timeline. Nil
	// (standalone cache tests) disables flush tracing.
	ring *obs.TraceRing

	hits          atomic.Int64
	misses        atomic.Int64
	flushRuns     atomic.Int64
	flushedBlocks atomic.Int64
	flushErrs     atomic.Int64
}

type cacheEntry struct {
	id      blockID
	buf     *bufpool.Buf
	end     int // valid bytes: in-file extent (clean), flush extent (dirty)
	state   int
	redirty bool // staged again while its flush was in flight
	flushes int  // completed write-backs; lets a drain spot "flushed since"
	// trace is the last staging writer's trace id (0 = untraced); the
	// flusher that writes the entry back logs the flush under it, so a
	// traced write's timeline covers its asynchronous write-back too.
	trace uint32
	// dirtiedAt is when the entry's current unflushed bytes entered the
	// cache (maintained only under scheduled flushing, maxDirtyAge > 0).
	dirtiedAt time.Time
}

// flushItem is one claimed block of a flush run: the entry plus a
// retained snapshot of the buffer and extent being written, so completion
// can tell whether the entry was re-staged or invalidated meanwhile.
type flushItem struct {
	e     *cacheEntry
	buf   *bufpool.Buf
	end   int
	trace uint32
}

// newBlockCache builds the cache. write is the store write-back hook for
// the flushers; flushers == 0 disables write-behind entirely (stage must
// not be called) — the write-through server runs the cache that way.
func newBlockCache(capacity, blockSize, budget, flushers int, maxDirtyAge time.Duration, write func(file uint32, off int64, p []byte) error) *blockCache {
	c := &blockCache{
		capacity:       capacity,
		blockSize:      blockSize,
		budget:         budget,
		maxRun:         64 * 1024 / blockSize, // one flush write covers ≤ 64 KB (a pooled staging class)
		entries:        make(map[blockID]*list.Element),
		lru:            list.New(),
		dirty:          make(map[blockID]*cacheEntry),
		fileDirty:      make(map[uint32]int),
		staged:         make(map[uint32]int64),
		flushErrByFile: make(map[uint32]error),
		write:          write,
		maxDirtyAge:    maxDirtyAge,
		now:            time.Now,
	}
	c.cond = sync.NewCond(&c.mu)
	if flushers == 0 {
		c.maxDirtyAge = 0 // write-through: nothing is ever dirty
	}
	for i := 0; i < flushers; i++ {
		c.flushWG.Add(1)
		go c.flusher()
	}
	if c.maxDirtyAge > 0 {
		c.trickleDone = make(chan struct{})
		c.flushWG.Add(1)
		go c.trickler()
	}
	return c
}

// setNow substitutes the scheduling clock (tests age blocks without
// sleeping).
func (c *blockCache) setNow(f func() time.Time) {
	c.mu.Lock()
	c.now = f
	c.mu.Unlock()
}

// get returns the cached block with a reference for the caller (Release
// when done), marking it most recently used. Callers must not mutate the
// block's bytes.
func (c *blockCache) get(id blockID) (*bufpool.Buf, bool) {
	b, _, ok := c.getEnd(id)
	return b, ok
}

// getEnd is get plus the block's valid-byte extent (the in-file bytes for
// clean blocks, the staged write extent for dirty ones).
func (c *blockCache) getEnd(id blockID) (*bufpool.Buf, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		c.misses.Add(1)
		return nil, 0, false
	}
	c.hits.Add(1)
	c.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.buf.Retain(), e.end, true
}

// contains reports presence without touching recency or hit counters.
func (c *blockCache) contains(id blockID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// genOf returns the invalidation-stamp shard for a block id.
func (c *blockCache) genOf(id blockID) *atomic.Uint64 {
	h := (id.file*2654435761 + id.block) * 2654435761
	return &c.gens[h>>24&0xff]
}

// snapshot returns the block's current invalidation stamp; take it before
// reading the store on a miss and pass it to put.
func (c *blockCache) snapshot(id blockID) uint64 { return c.genOf(id).Load() }

// stagedSize returns the file's unflushed write high-water mark (0 when
// nothing is staged).
func (c *blockCache) stagedSize(file uint32) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.staged[file]
}

// dirtyBlocks returns the current number of non-clean blocks.
func (c *blockCache) dirtyBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirtyCount
}

// put inserts or refreshes a clean block read from the store (end = its
// in-file byte count), evicting the least recently used clean entry past
// capacity. The cache takes its own reference on buf; the caller keeps
// (and eventually releases) its own. The insert is skipped if the block
// was invalidated or staged since gen was snapshotted — the data was read
// before a concurrent write and is stale.
func (c *blockCache) put(id blockID, buf *bufpool.Buf, gen uint64, end int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.genOf(id).Load() != gen {
		return
	}
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		if e.state != stateClean {
			return // never clobber staged bytes with store bytes
		}
		e.buf.Release()
		e.buf = buf.Retain()
		e.end = end
		c.lru.MoveToFront(el)
		return
	}
	c.entries[id] = c.lru.PushFront(&cacheEntry{id: id, buf: buf.Retain(), end: end})
	c.evictExcessLocked()
}

// stage installs buf as the block's newest contents for write-behind: the
// payload occupies buf.Data[payStart:payEnd], and stage completes the
// image around it under the lock — head and tail bytes come from the
// current cache entry when present (which may itself be dirty: staged
// writes merge in order), else from spare (a pre-fetched store image of
// spareEnd in-file bytes, nil when the caller knows none is needed), else
// zeros. The entry is marked dirty and pinned until a flusher writes
// buf.Data[:end] back, where end covers both the payload and whatever
// older valid bytes the image preserves. The caller keeps its reference
// on buf (the cache retains its own) and must not touch buf.Data after
// stage returns — the buffer now backs concurrent readers.
//
// spareGen is the block's generation snapshotted BEFORE the spare image
// was fetched; if the generation has moved and the entry is gone (a
// concurrent write was staged, flushed and evicted in the meantime),
// stage refuses with errStaleSpare rather than resurrect the pre-write
// image — the caller refetches and retries.
//
// stage blocks while the dirty budget is exhausted — that is the
// write-behind backpressure: writers run ahead of the store by at most
// budget blocks, then throttle to flush speed.
func (c *blockCache) stage(id blockID, buf *bufpool.Buf, payStart, payEnd int, spare []byte, spareEnd int, spareGen uint64, trace uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.closed && c.budget > 0 && c.dirtyCount >= c.budget {
		// Only an already-dirty block may be re-staged without growing
		// dirtyCount, but distinguishing it here costs a map lookup per
		// wait loop for a rare case; blocking uniformly keeps the bound.
		if el, ok := c.entries[id]; ok && el.Value.(*cacheEntry).state != stateClean {
			break // re-staging an accounted block never exceeds the budget
		}
		c.cond.Wait()
	}
	if c.closed {
		return errCacheClosed
	}

	// Complete the image around the payload from the freshest older bytes.
	var old []byte
	oldEnd := 0
	if el, ok := c.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		old, oldEnd = e.buf.Data, e.end
	} else if payStart > 0 || payEnd < len(buf.Data) {
		// The payload does not cover the block and there is no live
		// entry to merge with: the caller-provided image (spare, or
		// "nothing": zeros) fills the gaps, but only if it is still
		// current — a concurrent write staged, flushed and evicted since
		// the caller snapshotted would otherwise be reverted.
		if c.genOf(id).Load() != spareGen {
			return errStaleSpare
		}
		old, oldEnd = spare, spareEnd
	}
	c.genOf(id).Add(1)
	end := payEnd
	if oldEnd > end {
		end = oldEnd
	}
	fillAround(buf.Data, payStart, payEnd, old, oldEnd)

	if el, ok := c.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		e.buf.Release()
		e.buf = buf.Retain()
		e.end = end
		e.trace = trace
		switch e.state {
		case stateClean:
			e.state = stateDirty
			c.dirty[id] = e
			c.addNonCleanLocked(id.file)
			c.stampDirtiedLocked(e)
		case stateDirty:
			// already queued (the flusher will pick up the newer buffer);
			// dirtiedAt keeps the age of the oldest unflushed write
		case stateFlushing:
			e.redirty = true
			c.stampDirtiedLocked(e) // the superseding bytes' age starts now
		}
		c.lru.MoveToFront(el)
	} else {
		e := &cacheEntry{id: id, buf: buf.Retain(), end: end, state: stateDirty, trace: trace}
		c.stampDirtiedLocked(e)
		c.entries[id] = c.lru.PushFront(e)
		c.dirty[id] = e
		c.addNonCleanLocked(id.file)
		c.evictExcessLocked()
	}
	if hw := int64(id.block)*int64(c.blockSize) + int64(end); hw > c.staged[id.file] {
		c.staged[id.file] = hw
	}
	c.cond.Broadcast()
	return nil
}

// fillAround completes a staged block image: bytes outside
// [payStart:payEnd) come from old (valid to oldEnd) where available and
// zeros elsewhere — including the tail past the valid extent, which
// readers receive too (getBlock's contract is a zero-padded full block)
// — so a pooled buffer never leaks a previous tenant's bytes into the
// cache or the store.
func fillAround(dst []byte, payStart, payEnd int, old []byte, oldEnd int) {
	if payStart > 0 {
		n := 0
		if oldEnd > 0 {
			h := payStart
			if oldEnd < h {
				h = oldEnd
			}
			n = copy(dst[:payStart], old[:h])
		}
		for i := n; i < payStart; i++ {
			dst[i] = 0
		}
	}
	if oldEnd > payEnd {
		copy(dst[payEnd:oldEnd], old[payEnd:oldEnd])
	}
	valid := payEnd
	if oldEnd > valid {
		valid = oldEnd
	}
	for i := valid; i < len(dst); i++ {
		dst[i] = 0
	}
}

// evictExcessLocked evicts least-recently-used clean entries until the
// cache is back within capacity. Dirty and flushing blocks are never
// evicted — dropping one would lose acknowledged writes — so under a
// write burst the cache may transiently hold capacity + budget blocks.
func (c *blockCache) evictExcessLocked() {
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.capacity; {
		prev := el.Prev()
		if e := el.Value.(*cacheEntry); e.state == stateClean {
			c.lru.Remove(el)
			delete(c.entries, e.id)
			e.buf.Release()
		}
		el = prev
	}
}

// invalidate drops a block (a write-through or truncate made it stale)
// and stamps the invalidation so in-flight miss fills cannot resurrect
// it. Borrowers of the block are unaffected: only the cache's reference
// is dropped. A staged-but-unflushed block is discarded outright — the
// caller is declaring the store's (about-to-be) contents authoritative.
func (c *blockCache) invalidate(id blockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.genOf(id).Add(1)
	if el, ok := c.entries[id]; ok {
		c.removeLocked(el)
	}
}

// addNonCleanLocked accounts one block entering the dirty/flushing
// world; caller holds c.mu.
func (c *blockCache) addNonCleanLocked(file uint32) {
	c.dirtyCount++
	c.fileDirty[file]++
}

// dropNonCleanLocked accounts one block settling back to clean (or being
// discarded); when it was the file's last non-clean block, the store
// size now covers the staged high-water mark and the per-file tracking
// is pruned. Caller holds c.mu.
func (c *blockCache) dropNonCleanLocked(file uint32) {
	c.dirtyCount--
	if n := c.fileDirty[file] - 1; n > 0 {
		c.fileDirty[file] = n
	} else {
		delete(c.fileDirty, file)
		delete(c.staged, file)
	}
}

// removeLocked drops an entry and settles its write-behind accounting.
// A flushing entry's dirtyCount is left to its flusher's completion,
// which detects the removal and writes the orphaned bytes off.
func (c *blockCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.id)
	if e.state == stateDirty {
		delete(c.dirty, e.id)
		c.dropNonCleanLocked(e.id.file)
		c.cond.Broadcast()
	}
	e.buf.Release()
}

// truncate drops every cached block of a file — including staged-but-
// unflushed ones: the truncate supersedes the pending writes — and then
// runs create (the store truncation) under the cache lock. Blocks of the
// file already claimed by a flusher are waited out first, so the store
// write of a pre-truncate block is strictly ordered before the
// truncation and can never silently regrow the file afterwards. Holding
// the lock across create stalls the cache for the duration of one store
// call, which a rare administrative operation can afford; what it buys
// is that no stage or claim can slip between the drain and the
// truncation.
func (c *blockCache) truncate(file uint32, create func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		inflight := false
		for el := c.lru.Front(); el != nil; {
			next := el.Next()
			if e := el.Value.(*cacheEntry); e.id.file == file {
				if e.state == stateFlushing {
					inflight = true
				} else {
					c.removeLocked(el)
				}
			}
			el = next
		}
		if !inflight {
			break
		}
		c.cond.Wait()
	}
	delete(c.staged, file)
	// Blocks of the file may also be mid-fill from the old contents
	// without being cached yet; bump every shard so those inserts drop.
	for i := range c.gens {
		c.gens[i].Add(1)
	}
	return create()
}

// stampDirtiedLocked records when an entry's current unflushed bytes
// arrived; only scheduled flushing reads the stamp, so eager mode skips
// the clock call on the write hot path. Caller holds c.mu.
func (c *blockCache) stampDirtiedLocked(e *cacheEntry) {
	if c.maxDirtyAge > 0 {
		e.dirtiedAt = c.now()
	}
}

// claimableLocked reports whether a flusher should claim work now. Eager
// mode (maxDirtyAge == 0) claims any dirty block immediately; scheduled
// mode holds blocks for coalescing until a drain waits, the dirty count
// reaches half the budget, or the cache is closing. Caller holds c.mu.
func (c *blockCache) claimableLocked() bool {
	if len(c.dirty) == 0 {
		return false
	}
	if c.maxDirtyAge == 0 || c.closed || c.drainWaiters > 0 {
		return true
	}
	return 2*c.dirtyCount >= c.budget
}

// flusher is one write-behind worker: it claims runs of consecutive dirty
// blocks of one file and writes each run back with a single store write.
func (c *blockCache) flusher() {
	defer c.flushWG.Done()
	for {
		c.mu.Lock()
		for !c.closed && !c.claimableLocked() {
			c.cond.Wait()
		}
		if !c.claimableLocked() {
			// Closed with nothing left to drain.
			c.mu.Unlock()
			return
		}
		file, start, items := c.claimRunLocked()
		c.mu.Unlock()
		c.flushRun(file, start, items)
	}
}

// trickler is the age pass of scheduled flushing: on a timer it forces
// out blocks dirty longer than maxDirtyAge, so light write loads that
// never build budget pressure still reach the store within a bounded
// window.
func (c *blockCache) trickler() {
	defer c.flushWG.Done()
	interval := c.maxDirtyAge / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.trickleDone:
			return
		case <-t.C:
			c.tricklePass()
		}
	}
}

// tricklePass flushes every block that has been dirty longer than
// maxDirtyAge (runs extend to adjacent dirty blocks — coalescing is
// preserved). Exposed to tests as the deterministic trickle entry point,
// driven by the fake clock installed with setNow.
func (c *blockCache) tricklePass() {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		cutoff := c.now().Add(-c.maxDirtyAge)
		var seed *cacheEntry
		for _, e := range c.dirty {
			if !e.dirtiedAt.After(cutoff) {
				seed = e
				break
			}
		}
		if seed == nil {
			c.mu.Unlock()
			return
		}
		file, start, items := c.claimRunFromLocked(seed)
		c.mu.Unlock()
		c.flushRun(file, start, items)
	}
}

// claimRunLocked picks any dirty block and claims its run. Caller holds
// c.mu.
func (c *blockCache) claimRunLocked() (file uint32, start uint32, items []flushItem) {
	var seed *cacheEntry
	for _, e := range c.dirty {
		seed = e
		break
	}
	return c.claimRunFromLocked(seed)
}

// claimRunFromLocked extends seed into the maximal run of consecutive
// dirty blocks of the same file (capped at maxRun, and a partially valid
// block can only end a run). Every claimed entry moves to stateFlushing
// with its buffer retained, so the run's bytes stay alive and no other
// flusher can claim them. Caller holds c.mu.
func (c *blockCache) claimRunFromLocked(seed *cacheEntry) (file uint32, start uint32, items []flushItem) {
	file = seed.id.file
	// Walk back to the run's start: every block before the seed becomes
	// an interior block of the run, so it must be fully valid.
	first := seed.id.block
	for steps := 1; steps < c.maxRun && first > 0; steps++ {
		prev, ok := c.dirty[blockID{file: file, block: first - 1}]
		if !ok || prev.end != c.blockSize {
			break
		}
		first--
	}
	// Collect forward; a partially valid block can only end the run.
	items = make([]flushItem, 0, c.maxRun)
	for blk := first; len(items) < c.maxRun; blk++ {
		e, ok := c.dirty[blockID{file: file, block: blk}]
		if !ok {
			break
		}
		e.state = stateFlushing
		delete(c.dirty, e.id)
		items = append(items, flushItem{e: e, buf: e.buf.Retain(), end: e.end, trace: e.trace})
		if e.end != c.blockSize {
			break
		}
	}
	return file, first, items
}

// flushRun writes one claimed run back to the store as a single
// contiguous write, then settles each block: back to clean normally, back
// to dirty if it was re-staged while the flush was in flight, or written
// off if it was invalidated.
func (c *blockCache) flushRun(file uint32, start uint32, items []flushItem) {
	last := items[len(items)-1]
	total := (len(items)-1)*c.blockSize + last.end
	// A traced block in the run makes the whole run's write-back part of
	// that trace's timeline; only then is the clock read at all.
	var traced uint32
	if c.ring != nil {
		for _, it := range items {
			if it.trace != 0 {
				traced = it.trace
				break
			}
		}
	}
	var t0 time.Time
	if traced != 0 {
		t0 = time.Now()
	}
	var err error
	if total > 0 {
		staging := bufpool.Get(total)
		for i, it := range items {
			copy(staging.Data[i*c.blockSize:], it.buf.Data[:it.end])
		}
		err = c.write(file, int64(start)*int64(c.blockSize), staging.Data)
		staging.Release()
	}
	if traced != 0 {
		c.ring.Record(traced, "rfs.flush", uint64(file)<<32|uint64(len(items)), time.Since(t0))
	}
	c.flushRuns.Add(1)
	c.flushedBlocks.Add(int64(len(items)))
	if err != nil {
		c.flushErrs.Add(1)
	}

	c.mu.Lock()
	for _, it := range items {
		e := it.e
		e.flushes++
		if el, ok := c.entries[e.id]; !ok || el.Value.(*cacheEntry) != e {
			// Invalidated (or superseded) while flushing; its accounting
			// was deferred to us.
			c.dropNonCleanLocked(e.id.file)
		} else if e.redirty {
			e.redirty = false
			e.state = stateDirty
			c.dirty[e.id] = e
		} else {
			// On a write error the block still goes clean — retrying
			// forever would wedge the budget; the error is sticky until
			// the next Flush reports it and FlushErrors counts it.
			e.state = stateClean
			c.dropNonCleanLocked(e.id.file)
		}
		it.buf.Release()
	}
	if err != nil && c.flushErrByFile[file] == nil {
		c.flushErrByFile[file] = err
	}
	c.evictExcessLocked()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// flushAll blocks until every block staged before the call has been
// written back (or written off, or discarded by a truncate), returning —
// and clearing — the first flush error since the previous drain. Blocks
// staged while the drain runs do NOT extend it: a sync promises
// durability for the writes acknowledged before it, so a drain
// terminates even while other clients keep writing. The server's
// Flush/OpSync and Close call this; with write-behind disabled it
// returns immediately.
func (c *blockCache) flushAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainWaiters++
	c.cond.Broadcast() // scheduled flushers claim while a drain waits
	defer func() { c.drainWaiters-- }()
	for _, sn := range c.drainSnapshotLocked(0) {
		for {
			el, ok := c.entries[sn.e.id]
			gone := !ok || el.Value.(*cacheEntry) != sn.e
			if gone || sn.e.state == stateClean || sn.e.flushes >= sn.need {
				break // written back since the snapshot, or discarded
			}
			c.cond.Wait()
		}
	}
	var err error
	for _, e := range c.flushErrByFile {
		err = e
		break
	}
	c.flushErrByFile = make(map[uint32]error)
	return err
}

// drainSnap is one entry a drain waits on: need is the flush count at
// which the snapshot-time bytes are on the store.
type drainSnap struct {
	e    *cacheEntry
	need int
}

// drainSnapshotLocked collects the non-clean entries a drain must wait
// for — all of them, or only one file's (file != 0). Blocks staged after
// the snapshot never extend the drain: a sync promises durability for
// the writes acknowledged before it, so it terminates even under
// sustained writes from other clients. Caller holds c.mu.
func (c *blockCache) drainSnapshotLocked(file uint32) []drainSnap {
	snaps := make([]drainSnap, 0, c.dirtyCount)
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.state == stateClean || (file != 0 && e.id.file != file) {
			continue
		}
		need := e.flushes + 1
		if e.state == stateFlushing && e.redirty {
			// The in-flight flush carries a superseded buffer; the bytes
			// acknowledged before this drain are in the entry's current
			// buffer, which only the NEXT flush writes.
			need++
		}
		snaps = append(snaps, drainSnap{e, need})
	}
	return snaps
}

// flushFile drains one file's staged blocks (OpSync with a file id): the
// per-file sync of a multi-tenant server. It is self-servicing — while a
// snapshot block is still unclaimed it claims and flushes the run
// itself, so a per-file sync never queues behind flushers parked inside
// another file's slow store writes; only blocks already claimed by a
// concurrent flush are waited out. It returns — and clears — only this
// file's sticky flush error; other files' failures stay recorded for
// their own syncs.
func (c *blockCache) flushFile(file uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drainWaiters++
	c.cond.Broadcast()
	defer func() { c.drainWaiters-- }()
	for _, sn := range c.drainSnapshotLocked(file) {
		for {
			el, ok := c.entries[sn.e.id]
			gone := !ok || el.Value.(*cacheEntry) != sn.e
			if gone || sn.e.state == stateClean || sn.e.flushes >= sn.need {
				break
			}
			if sn.e.state == stateDirty {
				f, start, items := c.claimRunFromLocked(sn.e)
				c.mu.Unlock()
				c.flushRun(f, start, items)
				c.mu.Lock()
				continue
			}
			c.cond.Wait()
		}
	}
	err := c.flushErrByFile[file]
	delete(c.flushErrByFile, file)
	return err
}

// close drains staged writes, stops the flushers and returns every cached
// block to the pool (server shutdown).
func (c *blockCache) close() {
	_ = c.flushAll()
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	if c.trickleDone != nil {
		close(c.trickleDone)
	}
	c.flushWG.Wait()
	c.mu.Lock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*cacheEntry).buf.Release()
	}
	c.lru.Init()
	c.entries = make(map[blockID]*list.Element)
	c.mu.Unlock()
}

func (c *blockCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
