package rfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"vkernel/internal/bufpool"
	"vkernel/internal/ipc"
)

// env is one server node + one client node with an rfs server running.
type env struct {
	serverNode *ipc.Node
	clientNode *ipc.Node
	srv        *Server
	store      Store
}

// leakCheck registers a cleanup — running after the scenario's own
// teardown — that asserts every pooled buffer the scenario took was
// returned: outstanding buffers must drain to zero once the nodes, mesh
// and server have closed. Stragglers (blocked senders releasing their
// frames just after Close returns) get a grace period.
func leakCheck(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := bufpool.Outstanding()
			if n == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("bufpool leak: %d buffers still outstanding after teardown", n)
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// memEnv builds the pair on an in-memory mesh.
func memEnv(t testing.TB, faults ipc.FaultConfig, nodeCfg ipc.NodeConfig, cfg Config) *env {
	return memEnvStore(t, NewMemStore(), faults, nodeCfg, cfg)
}

// memEnvStore is memEnv over a caller-provided store (fault-injecting
// store wrappers, write-gating, …).
func memEnvStore(t testing.TB, store Store, faults ipc.FaultConfig, nodeCfg ipc.NodeConfig, cfg Config) *env {
	t.Helper()
	leakCheck(t)
	mesh := ipc.NewMemNetwork(7, faults)
	serverNode := ipc.NewNode(1, mesh.Transport(1), nodeCfg)
	clientNode := ipc.NewNode(2, mesh.Transport(2), nodeCfg)
	srv, err := Start(serverNode, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = clientNode.Close()
		_ = serverNode.Close()
		srv.Close()
		mesh.Close()
	})
	return &env{serverNode: serverNode, clientNode: clientNode, srv: srv, store: store}
}

// udpEnv builds the pair on loopback UDP sockets.
func udpEnv(t testing.TB, cfg Config) *env {
	return udpEnvStore(t, NewMemStore(), cfg)
}

// udpEnvStore is udpEnv over a caller-provided store.
func udpEnvStore(t testing.TB, store Store, cfg Config) *env {
	t.Helper()
	leakCheck(t)
	trS, err := ipc.NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trC, err := ipc.NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trS.AddPeer(2, trC.Addr())
	trC.AddPeer(1, trS.Addr())
	serverNode := ipc.NewNode(1, trS, ipc.NodeConfig{})
	clientNode := ipc.NewNode(2, trC, ipc.NodeConfig{})
	srv, err := Start(serverNode, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = clientNode.Close()
		_ = serverNode.Close()
		srv.Close()
	})
	return &env{serverNode: serverNode, clientNode: clientNode, srv: srv, store: store}
}

// client attaches a fresh process on the client node and binds stubs.
func (e *env) client(t testing.TB, name string) *Client {
	t.Helper()
	p, err := e.clientNode.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.clientNode.Detach(p) })
	return NewClient(p, e.srv.Pid())
}

// pattern fills a deterministic, file-distinct byte pattern.
func pattern(file uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(int(file)*31 + i*7)
	}
	return out
}

func TestPageReadWrite(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.client(t, "app")

	page := pattern(3, 512)
	if err := c.WriteBlock(3, 7, page); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	n, err := c.ReadBlock(3, 7, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 512 || !bytes.Equal(got, page) {
		t.Fatalf("page corrupted: n=%d", n)
	}

	// Partial-page read.
	small := make([]byte, 64)
	if n, err = c.ReadBlock(3, 7, small); err != nil || n != 64 {
		t.Fatalf("partial read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(small, page[:64]) {
		t.Fatal("partial read corrupted")
	}

	// The write extended the file to cover block 7.
	size, err := c.QueryFile(3)
	if err != nil {
		t.Fatal(err)
	}
	if size != 8*512 {
		t.Fatalf("size = %d, want %d", size, 8*512)
	}

	st := e.srv.Stats()
	if st.PageReads != 2 || st.PageWrites != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReadMissingFile(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.client(t, "app")
	if _, err := c.ReadBlock(99, 0, make([]byte, 512)); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	if _, err := c.QueryFile(99); err == nil {
		t.Fatal("query of missing file succeeded")
	}
}

func TestCreateAndQuery(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.client(t, "app")
	if err := c.CreateFile(5, 4096); err != nil {
		t.Fatal(err)
	}
	size, err := c.QueryFile(5)
	if err != nil {
		t.Fatal(err)
	}
	if size != 4096 {
		t.Fatalf("size = %d", size)
	}
	// Fresh file reads as zeros.
	buf := make([]byte, 512)
	if _, err := c.ReadBlock(5, 0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh file not zeroed")
		}
	}
}

func TestLargeWriteThenRead(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.client(t, "app")

	const size = 100_000 // many transfer units, partial tail block
	data := pattern(9, size)
	if err := c.WriteLarge(9, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	n, err := c.ReadLarge(9, 0, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != size || !bytes.Equal(got, data) {
		t.Fatalf("large read corrupted: n=%d", n)
	}

	// Offset read across block boundaries.
	part := make([]byte, 1000)
	if n, err = c.ReadLarge(9, 513, part); err != nil || n != 1000 {
		t.Fatalf("offset read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(part, data[513:1513]) {
		t.Fatal("offset read corrupted")
	}

	// Read past EOF clamps to the file size.
	tail := make([]byte, 4096)
	if n, err = c.ReadLarge(9, size-100, tail); err != nil || n != 100 {
		t.Fatalf("tail read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(tail[:100], data[size-100:]) {
		t.Fatal("tail read corrupted")
	}
}

func TestWriteAtOffsetAndCacheInvalidation(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	c := e.client(t, "app")

	base := pattern(4, 8192)
	if err := c.WriteLarge(4, 0, base); err != nil {
		t.Fatal(err)
	}
	// Pull everything through the cache.
	warm := make([]byte, 8192)
	if _, err := c.ReadLarge(4, 0, warm); err != nil {
		t.Fatal(err)
	}
	// Overwrite a span that straddles blocks, then re-read: the cache must
	// not serve stale data.
	patch := pattern(77, 1500)
	if err := c.WriteLarge(4, 700, patch); err != nil {
		t.Fatal(err)
	}
	copy(base[700:], patch)
	got := make([]byte, 8192)
	if _, err := c.ReadLarge(4, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("stale cache data after overlapping write")
	}

	// Same for a single-page write.
	page := pattern(88, 512)
	if err := c.WriteBlock(4, 2, page); err != nil {
		t.Fatal(err)
	}
	copy(base[2*512:], page)
	if _, err := c.ReadLarge(4, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("stale cache data after page write")
	}
}

func TestLoadProgram(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{ReadAhead: true})
	c := e.client(t, "shell")
	const size = 65_536
	image := pattern(12, size)
	if err := c.WriteLarge(12, 0, image); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadProgram(12, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, image) {
		t.Fatal("program image corrupted")
	}
	if st := e.srv.Stats(); st.LargeReads != 1 || st.PageReads != 1 || st.Queries != 1 {
		t.Fatalf("load sequence stats: %+v", st)
	}
}

// TestConcurrentClients drives 8 independent clients through mixed
// page/large traffic on distinct files at once; every byte must survive.
func TestConcurrentClients(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		c := e.client(t, fmt.Sprintf("app%d", i))
		file := uint32(100 + i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := pattern(file, 20_000)
			if err := c.WriteLarge(file, 0, data); err != nil {
				errs <- fmt.Errorf("file %d write: %w", file, err)
				return
			}
			for round := 0; round < 10; round++ {
				page := make([]byte, 512)
				if _, err := c.ReadBlock(file, uint32(round), page); err != nil {
					errs <- fmt.Errorf("file %d page read: %w", file, err)
					return
				}
				if !bytes.Equal(page, data[round*512:(round+1)*512]) {
					errs <- fmt.Errorf("file %d page %d corrupted", file, round)
					return
				}
			}
			got := make([]byte, len(data))
			if _, err := c.ReadLarge(file, 0, got); err != nil {
				errs <- fmt.Errorf("file %d large read: %w", file, err)
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("file %d large read corrupted", file)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentClientsSharedFile has 8 clients hammer the same file's
// pages read-only; the block cache must serve them all correctly.
func TestConcurrentClientsSharedFile(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{ReadAhead: true})
	seed := e.client(t, "seeder")
	data := pattern(55, 32*512)
	if err := seed.WriteLarge(55, 0, data); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		c := e.client(t, fmt.Sprintf("reader%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			page := make([]byte, 512)
			for b := uint32(0); b < 32; b++ {
				if _, err := c.ReadBlock(55, b, page); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(page, data[b*512:(b+1)*512]) {
					errs <- fmt.Errorf("block %d corrupted", b)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := e.srv.Stats(); st.CacheHits == 0 {
		t.Fatalf("no cache hits across shared reads: %+v", st)
	}
}

func TestUDPPageAndLargeOps(t *testing.T) {
	e := udpEnv(t, Config{})
	c := e.client(t, "app")

	page := pattern(1, 512)
	if err := c.WriteBlock(1, 0, page); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if _, err := c.ReadBlock(1, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page corrupted over UDP")
	}

	const size = 64 * 1024
	image := pattern(2, size)
	if err := c.WriteLarge(2, 0, image); err != nil {
		t.Fatal(err)
	}
	large := make([]byte, size)
	if n, err := c.ReadLarge(2, 0, large); err != nil || n != size {
		t.Fatalf("large read over UDP: n=%d err=%v", n, err)
	}
	if !bytes.Equal(large, image) {
		t.Fatal("large read corrupted over UDP")
	}
}

// TestUDPDiscover resolves the server through the broadcast name service
// over real sockets.
func TestUDPDiscover(t *testing.T) {
	e := udpEnv(t, Config{})
	p, err := e.clientNode.Attach("app")
	if err != nil {
		t.Fatal(err)
	}
	defer e.clientNode.Detach(p)
	c, err := Discover(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Server() != e.srv.Pid() {
		t.Fatalf("resolved %v, want %v", c.Server(), e.srv.Pid())
	}
}

// TestUDPConcurrentClients is the acceptance bar: ≥4 concurrent clients
// over loopback UDP, page and streamed reads both correct.
func TestUDPConcurrentClients(t *testing.T) {
	e := udpEnv(t, Config{})
	seed := e.client(t, "seeder")
	const size = 48 * 1024
	image := pattern(30, size)
	if err := seed.WriteLarge(30, 0, image); err != nil {
		t.Fatal(err)
	}
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		c := e.client(t, fmt.Sprintf("app%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			page := make([]byte, 512)
			if _, err := c.ReadBlock(30, 3, page); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(page, image[3*512:4*512]) {
				errs <- fmt.Errorf("page corrupted")
				return
			}
			got := make([]byte, size)
			if n, err := c.ReadLarge(30, 0, got); err != nil || n != size {
				errs <- fmt.Errorf("large read: n=%d err=%v", n, err)
				return
			}
			if !bytes.Equal(got, image) {
				errs <- fmt.Errorf("large read corrupted")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFileStore runs the protocol against the durable, directory-backed
// store and checks the data survives a store reopen.
func TestFileStore(t *testing.T) {
	leakCheck(t)
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mesh := ipc.NewMemNetwork(7, ipc.FaultConfig{})
	serverNode := ipc.NewNode(1, mesh.Transport(1), ipc.NodeConfig{})
	clientNode := ipc.NewNode(2, mesh.Transport(2), ipc.NodeConfig{})
	srv, err := Start(serverNode, store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := clientNode.Attach("app")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(p, srv.Pid())

	data := pattern(6, 10_000)
	if err := c.WriteLarge(6, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadLarge(6, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file-backed large read corrupted")
	}

	_ = clientNode.Close()
	_ = serverNode.Close()
	srv.Close()
	mesh.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the bytes must still be there.
	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	size, err := store2.Size(6)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("reopened size = %d", size)
	}
	back := make([]byte, len(data))
	if _, err := store2.ReadAt(6, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("data lost across store reopen")
	}
}

// TestReadAheadWarmsCache: sequential page reads with read-ahead on must
// prefetch ahead of the reader.
func TestReadAheadWarmsCache(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{ReadAhead: true})
	c := e.client(t, "app")
	data := pattern(2, 64*512)
	// Seed the store directly: a client write would stage the blocks in
	// the write-behind cache and leave the reads below nothing to miss.
	if err := e.store.WriteAt(2, data, 0); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 512)
	for b := uint32(0); b < 64; b++ {
		if _, err := c.ReadBlock(2, b, page); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for e.srv.Stats().Prefetches == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := e.srv.Stats(); st.Prefetches == 0 {
		t.Fatalf("read-ahead never prefetched: %+v", st)
	}
}

// TestConcurrentReadWriteSameFile overlaps readers and writers on one
// file. Written under the race detector's eye: MemStore must lock its
// copies, and the cache's generation stamps must keep a racing miss-fill
// from resurrecting pre-write bytes. Each block is written with a
// self-identifying pattern, so any read must observe some complete write
// of that block — torn or stale mixes fail the check.
func TestConcurrentReadWriteSameFile(t *testing.T) {
	e := memEnv(t, ipc.FaultConfig{}, ipc.NodeConfig{}, Config{CacheBlocks: 8})
	seed := e.client(t, "seeder")
	const blocks = 16
	for b := uint32(0); b < blocks; b++ {
		if err := seed.WriteBlock(60, b, versionedPage(b, 0)); err != nil {
			t.Fatal(err)
		}
	}
	const writers, readers, rounds = 2, 4, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		c := e.client(t, fmt.Sprintf("writer%d", w))
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				b := uint32((w*rounds + r) % blocks)
				if err := c.WriteBlock(60, b, versionedPage(b, uint32(r))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		c := e.client(t, fmt.Sprintf("reader%d", rd))
		wg.Add(1)
		go func() {
			defer wg.Done()
			page := make([]byte, 512)
			for r := 0; r < rounds; r++ {
				b := uint32(r % blocks)
				if _, err := c.ReadBlock(60, b, page); err != nil {
					errs <- err
					return
				}
				if err := checkVersionedPage(b, page); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// versionedPage builds a 512-byte page whose every 4-byte word encodes
// (block, version), so a mix of two writes is detectable.
func versionedPage(block, version uint32) []byte {
	page := make([]byte, 512)
	for i := 0; i+4 <= len(page); i += 4 {
		v := block<<16 | version
		page[i] = byte(v >> 24)
		page[i+1] = byte(v >> 16)
		page[i+2] = byte(v >> 8)
		page[i+3] = byte(v)
	}
	return page
}

func checkVersionedPage(block uint32, page []byte) error {
	var first uint32
	for i := 0; i+4 <= len(page); i += 4 {
		v := uint32(page[i])<<24 | uint32(page[i+1])<<16 | uint32(page[i+2])<<8 | uint32(page[i+3])
		if i == 0 {
			first = v
			if v>>16 != block {
				return fmt.Errorf("block %d read back block %d's data", block, v>>16)
			}
			continue
		}
		if v != first {
			return fmt.Errorf("block %d torn: word 0 = %#x, word %d = %#x", block, first, i/4, v)
		}
	}
	return nil
}
