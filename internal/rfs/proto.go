// Package rfs is the real networked V file server: the Verex-style I/O
// protocol of §3.4/§6, served over the runnable IPC runtime
// (vkernel/internal/ipc) instead of the discrete-event simulation that
// internal/fsrv drives.
//
// The fast paths match the paper's diskless-workstation workload:
//
//   - A page read is one Send/Reply exchange — the client grants write
//     access to its page buffer and the server answers with
//     ReplyWithSegment, so the page travels in the reply packet.
//   - A page write is also one exchange — the data rides inline with the
//     Send packet (§3.4's read-segment prefix); any remainder beyond the
//     inline allowance is pulled with MoveFrom.
//   - Reads larger than a page (program loading, §6.3) are streamed with
//     MoveTo in TransferUnit chunks; large writes are pulled with
//     MoveFrom.
//
// The server owns a byte-addressed block store (in-memory or file-backed)
// behind an LRU block cache with optional read-ahead, and handles
// requests on a bounded worker pool so independent clients proceed in
// parallel (the node's sharded locking keeps their exchanges from
// serializing).
package rfs

import (
	"errors"

	"vkernel/internal/ipc"
)

// LogicalFileServer is the well-known logical id the server registers
// under (the same id internal/core uses for the simulated file server).
// In a sharded cluster every server registers it, so a broadcast lookup
// enumerates the cluster (DiscoverAll) while per-volume routing goes
// through LogicalVolumeBase.
const LogicalFileServer uint32 = 1

// DefaultVolume is the volume id legacy (pre-sharding) clients address:
// requests whose reserved volume word is zero land here, so a server
// started with Start is wire-compatible with old clients.
const DefaultVolume uint32 = 0

// LogicalVolumeBase maps volume ids into the logical name space: the
// server hosting volume v registers LogicalVolumeBase+v with network-wide
// scope. This is how servers advertise the volume set they own — the
// name service doubles as the cluster's routing table, and rfs.Router
// resolves a volume with one broadcast lookup of its logical name.
const LogicalVolumeBase uint32 = 0x1000

// Request opcodes (message word 1).
const (
	OpReadBlock  uint32 = 1 // page-level read: data in the reply packet
	OpWriteBlock uint32 = 2 // page-level write: data inline with the Send
	OpReadLarge  uint32 = 3 // multi-block read streamed via MoveTo
	OpWriteLarge uint32 = 4 // multi-block write pulled via MoveFrom
	OpQueryFile  uint32 = 5 // file size lookup
	OpCreateFile uint32 = 6 // create (or truncate) a file
	OpSync       uint32 = 7 // drain write-behind blocks to the store (word 2: file id, 0 = whole cache)

	// Client-cache consistency protocol (§6.2 experiment). A caching
	// client registers per file, naming the callback process its node
	// runs for invalidations; on any write to the file the server Sends
	// OpInvalidate to every other registered client's callback process
	// BEFORE acknowledging the write, so a post-ack read on any client
	// never observes the cache's pre-write bytes. Registrations carry a
	// bounded lease and every file a version counter, so a client whose
	// callbacks are lost (dead callback process, dropped registration)
	// serves stale bytes for at most one lease: a cache hit past the
	// lease forces a re-registration, and a version mismatch on the
	// renewal purges the file's cached blocks.
	OpRegisterCache uint32 = 8  // word 2: file id, word 3: callback pid → reply word 2: version, word 3: lease ms
	OpReleaseCache  uint32 = 9  // word 2: file id, word 3: callback pid
	OpInvalidate    uint32 = 10 // server→client callback: word 2: file, word 3: first block, word 4: count, word 5: version, word 6: volume

	// OpQueryVolumes asks a server for the volume set it owns (word 4
	// bounds the reply bytes; the ids arrive as big-endian uint32s in the
	// granted segment, reply word 2 = count). Volume-agnostic: any server
	// answers regardless of the request's volume word. DiscoverAll plus
	// one OpQueryVolumes per responder yields the cluster map.
	OpQueryVolumes uint32 = 11

	// Volume replication protocol. A volume's primary streams every
	// acked mutation to its read replicas as a sequenced record stream:
	// the per-volume sequence counter extends the registry's per-file
	// version counters to a total order over the volume's writes.
	// Control ops (join/pull/files/heartbeat/query) address the primary
	// server process and carry the volume in word 5 as usual; the data
	// ops (OpReplicate/OpRepCreate) address the replica's per-volume
	// apply process — the volume is implied by the destination pid, which
	// frees word 5 for the record sequence number.

	// OpRepJoin enrolls a replica with the primary: word 2 = replica id,
	// word 3 = the replica's last applied sequence, word 4 = segment
	// length (8: the replica's apply pid and server pid as big-endian
	// uint32s). The reply (see stampRepJoin) tells the replica whether it
	// was accepted in-sync (pushed), must pull the gap, or needs a full
	// snapshot resync.
	OpRepJoin uint32 = 12
	// OpRepPull is replica-driven catch-up: word 2 = replica id, word 3 =
	// first wanted sequence, word 4 = grant length. The primary MoveTo-
	// streams encoded records (encodeRepRecord) into the grant and the
	// reply reports bytes, record count and the primary's current
	// sequence (stampRepPull). StatusRepSnapshot means the log no longer
	// reaches back that far.
	OpRepPull uint32 = 13
	// OpRepFiles enumerates the primary's files for a snapshot resync:
	// word 4 = grant length; the reply segment carries (file id uint32,
	// size uint64) pairs, reply word 2 = entry count, word 3 = the
	// snapshot sequence the enumeration is consistent with.
	OpRepFiles uint32 = 14
	// OpRepHeartbeat is the replica's lease renewal on the primary:
	// word 2 = replica id, word 3 = last applied sequence. The reply
	// (stampRepHeartbeat) carries the primary's sequence, the current
	// promotion candidate (lowest in-sync replica id) and whether the
	// primary still counts the sender as in-sync.
	OpRepHeartbeat uint32 = 15
	// OpQueryReplicas asks the volume's primary for the live read set:
	// the reply segment holds server pids as big-endian uint32s (primary
	// first, then in-sync replicas), reply word 2 = count. The Router
	// spreads reads over this set.
	OpQueryReplicas uint32 = 16

	// OpReplicate pushes one write record to a replica's apply process:
	// word 2 = file, word 3 = byte offset, word 4 = count, word 5 =
	// sequence; the data rides inline with the Send, any remainder pulled
	// with MoveFrom (the page-write pattern). The reply carries the
	// replica's last applied sequence in word 2.
	OpReplicate uint32 = 17
	// OpRepCreate pushes a create/truncate record: word 2 = file,
	// word 3 = size, word 5 = sequence.
	OpRepCreate uint32 = 18

	// OpQueryStats scrapes the server's metrics registry over V IPC:
	// word 4 bounds the reply bytes; the serialized snapshot
	// (obs.Registry.Serialize — counters, gauges, histogram summaries and
	// recent trace events in the obs text wire format) is MoveTo-streamed
	// into the granted segment. Volume-agnostic like OpQueryVolumes: any
	// server answers for its whole registry, so DiscoverAll plus one
	// OpQueryStats per responder is a full-cluster scrape (cmd/vstat).
	// The reply carries the streamed byte count in word 2 and the full
	// snapshot size in word 3, so a scraper can detect a grant too small
	// for the whole snapshot (the stream is cut at a line boundary).
	OpQueryStats uint32 = 19
)

// InvalidateAll as an OpInvalidate block count names the whole file
// (create/truncate, or a registration being revoked).
const InvalidateAll = ^uint32(0)

// Reply status codes (reply word 1).
const (
	StatusOK uint32 = iota
	StatusBadRequest
	StatusNoFile
	StatusIOError
	// StatusNoVolume reports that the server does not host the request's
	// volume — the signal that makes a routed client drop its cached
	// route and re-discover (the volume moved, or the route was stale).
	// Replicas answer every mutating op with it (writes pin to the
	// primary), and a demoted ex-primary answers replication control ops
	// with it, so the existing reroute machinery covers failover too.
	StatusNoVolume
	// StatusRepSnapshot tells a joining or pulling replica that the
	// primary's catch-up log no longer reaches its last applied
	// sequence: it must resync from a full snapshot (OpRepFiles + large
	// reads) before pulling again.
	StatusRepSnapshot
	// StatusRepGap is a replica's refusal of an out-of-order push: the
	// record's sequence is not the next one it expects. The primary
	// drops the connection; the replica rejoins and pulls the gap.
	StatusRepGap
)

// Errors returned by the client stubs.
var (
	ErrBadStatus = errors.New("rfs: server returned error status")
	ErrNoServer  = errors.New("rfs: no file server registered")
	// ErrNoVolume means no reachable server hosts the volume (or, for an
	// unrouted client, the bound server does not). Routed clients surface
	// it only after their bounded re-discovery attempts are exhausted —
	// it is retryable once the volume comes back.
	ErrNoVolume = errors.New("rfs: no server hosts the volume")
)

// Message layout. Requests use:
//
//	word 1: opcode
//	word 2: file id
//	word 3: block number (page ops), byte offset (large ops) or size
//	        (create)
//	word 4: byte count
//	word 5: volume id (previously reserved and always zero, so the
//	        sharded protocol stays wire-compatible: legacy requests
//	        address DefaultVolume)
//
// The data buffer itself is granted through the message's segment
// descriptor. Replies use word 1 = status, word 2 = count (bytes
// read/written, or the file size for query). Write replies additionally
// carry the file's post-write cache version in word 3 with word 4 = 1
// (see proto: OpRegisterCache) when the file is version-tracked, so a
// caching writer can keep its own version current without a callback.
// The OpInvalidate callback (a server→client request) already uses word
// 5 for the version, so it carries its volume in word 6 — callbacks
// grant no segment, leaving the descriptor words free.

// buildRequest assembles a request message addressed to a volume.
func buildRequest(vol, op, file, blockOrOff, count uint32) ipc.Message {
	var m ipc.Message
	m.SetWord(1, op)
	m.SetWord(2, file)
	m.SetWord(3, blockOrOff)
	m.SetWord(4, count)
	m.SetWord(5, vol)
	return m
}

// parseRequest decodes a request message.
func parseRequest(m *ipc.Message) (op, file, blockOrOff, count uint32) {
	return m.Word(1), m.Word(2), m.Word(3), m.Word(4)
}

// reqVolume returns the request's volume id (reserved word 5).
func reqVolume(m *ipc.Message) uint32 { return m.Word(5) }

// buildReply assembles a reply message.
func buildReply(status, count uint32) ipc.Message {
	var m ipc.Message
	m.SetWord(1, status)
	m.SetWord(2, count)
	return m
}

// parseReply decodes a reply message.
func parseReply(m *ipc.Message) (status, count uint32) {
	return m.Word(1), m.Word(2)
}

// buildInvalidate assembles an OpInvalidate callback. Callbacks reuse
// the request layout but word 5 carries the file's post-write version,
// so the volume rides in word 6 — callbacks grant no segment, leaving
// the descriptor words free.
func buildInvalidate(vol, file, first, count, version uint32) ipc.Message {
	m := buildRequest(0, OpInvalidate, file, first, count)
	m.SetWord(5, version)
	m.SetWord(6, vol)
	return m
}

// parseInvalidate decodes the callback-specific words of an
// OpInvalidate message (the op/file/block/count words go through
// parseRequest as usual).
func parseInvalidate(m *ipc.Message) (version, vol uint32) {
	return m.Word(5), m.Word(6)
}

// stampRegisterLease records the registration lease (milliseconds) in
// an OpRegisterCache reply; word 2 already carries the version.
func stampRegisterLease(m *ipc.Message, leaseMs uint32) { m.SetWord(3, leaseMs) }

// registerLease reads the lease (milliseconds) from an OpRegisterCache
// reply.
func registerLease(m *ipc.Message) uint32 { return m.Word(3) }

// stampWriteVersion marks a write reply with the file's post-write
// cache version: word 3 is the version, word 4 = 1 flags that the file
// is version-tracked.
func stampWriteVersion(m *ipc.Message, version uint32) {
	m.SetWord(3, version)
	m.SetWord(4, 1)
}

// writeVersion reads a write reply's post-write version; ok reports
// whether the reply carried one (the file is version-tracked).
func writeVersion(m *ipc.Message) (version uint32, ok bool) {
	if m.Word(4) == 0 {
		return 0, false
	}
	return m.Word(3), true
}

// OpRepJoin reply flags (word 3).
const (
	// repJoinPush: the replica is enrolled in-sync (or near-sync); the
	// primary pushes records from lastApplied+1 on.
	repJoinPush uint32 = 1 << iota
	// repJoinPull: the replica is enrolled but behind; it must pull the
	// gap (OpRepPull) and rejoin once caught up.
	repJoinPull
)

// stampRepJoin finishes an OpRepJoin reply: word 2 = the primary's
// current sequence, word 3 = the repJoin decision flags.
func stampRepJoin(m *ipc.Message, seq, flags uint32) {
	m.SetWord(2, seq)
	m.SetWord(3, flags)
}

// repJoinReply reads an OpRepJoin reply's sequence and decision flags.
func repJoinReply(m *ipc.Message) (seq, flags uint32) {
	return m.Word(2), m.Word(3)
}

// stampRepPull finishes an OpRepPull reply: word 2 = streamed bytes,
// word 3 = record count, word 4 = the primary's current sequence (so
// the replica knows when it has drained the gap).
func stampRepPull(m *ipc.Message, bytes, records, seq uint32) {
	m.SetWord(2, bytes)
	m.SetWord(3, records)
	m.SetWord(4, seq)
}

// repPullReply reads an OpRepPull reply.
func repPullReply(m *ipc.Message) (bytes, records, seq uint32) {
	return m.Word(2), m.Word(3), m.Word(4)
}

// stampStatsReply finishes an OpQueryStats reply: word 2 = streamed
// bytes, word 3 = the full snapshot size (larger than word 2 when the
// grant could not hold the whole snapshot).
func stampStatsReply(m *ipc.Message, streamed, total uint32) {
	m.SetWord(2, streamed)
	m.SetWord(3, total)
}

// statsReply reads an OpQueryStats reply.
func statsReply(m *ipc.Message) (streamed, total uint32) {
	return m.Word(2), m.Word(3)
}

// stampRepFiles finishes an OpRepFiles reply: word 2 = entry count,
// word 3 = the snapshot sequence the enumeration is consistent with.
func stampRepFiles(m *ipc.Message, entries, seq uint32) {
	m.SetWord(2, entries)
	m.SetWord(3, seq)
}

// repFilesReply reads an OpRepFiles reply.
func repFilesReply(m *ipc.Message) (entries, seq uint32) {
	return m.Word(2), m.Word(3)
}

// OpRepHeartbeat reply flags (word 4).
const (
	// repHBInSync: the primary counts the sender among the in-sync read
	// set (it may serve reads).
	repHBInSync uint32 = 1 << iota
	// repHBUnknown: the primary has no connection for the sender's
	// replica id (dropped, or the primary restarted) — rejoin.
	repHBUnknown
)

// stampRepHeartbeat finishes an OpRepHeartbeat reply: word 2 = the
// primary's sequence, word 3 = the promotion candidate replica id
// (lowest in-sync id; 0 when there is none), word 4 = flags.
func stampRepHeartbeat(m *ipc.Message, seq, candidate, flags uint32) {
	m.SetWord(2, seq)
	m.SetWord(3, candidate)
	m.SetWord(4, flags)
}

// repHeartbeatReply reads an OpRepHeartbeat reply.
func repHeartbeatReply(m *ipc.Message) (seq, candidate, flags uint32) {
	return m.Word(2), m.Word(3), m.Word(4)
}

// buildReplicate assembles an OpReplicate/OpRepCreate push addressed to
// a replica's apply process. The volume is implied by the destination,
// so word 5 carries the record sequence.
func buildReplicate(op, file, offOrSize, count, seq uint32) ipc.Message {
	m := buildRequest(0, op, file, offOrSize, count)
	m.SetWord(5, seq)
	return m
}

// replicateSeq reads the sequence word of an OpReplicate/OpRepCreate
// push.
func replicateSeq(m *ipc.Message) uint32 { return m.Word(5) }

// Replication record kinds (the catch-up log's and pull stream's wire
// encoding; see encodeRepRecord).
const (
	repKindWrite  = 1 // off = byte offset, data follows
	repKindCreate = 2 // off = file size, no data
)

// repRecordHeader is the encoded record header size: kind (1 byte) plus
// file, off, len, seq and trace as big-endian uint32s. The trace word
// carries the originating client's 24-bit trace id (0 = untraced)
// through the catch-up log and pull stream, so a traced write's span
// timeline extends onto replicas that applied it by pull as well as by
// push.
const repRecordHeader = 1 + 5*4

// repFileEntry is one OpRepFiles entry: file id (uint32) + size (uint64).
const repFileEntry = 4 + 8
