package rfs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Head-to-head benchmarks for the §6.2 question: does a client-side
// block cache pay for itself on the real runtime, or does the paper's
// "server-memory caching over fast IPC is enough" hold?
//
//   - CCacheWarmRead: a warm working set read repeatedly — the client
//     cache's best case. "off" is the plain stub client (every read is a
//     network exchange against the server's block cache); "on" serves
//     hits from local memory.
//   - CCacheSharedWrite: a write-heavy shared-file mix — the client
//     cache's worst case: every write pays an invalidation callback
//     round to every other registered client before it is acknowledged.
//
// Run: make bench-ccache

// pageClient is the slice of the client API the comparison drives; both
// *Client and *CachingClient implement it.
type pageClient interface {
	ReadBlock(file, block uint32, dst []byte) (int, error)
	WriteBlock(file, block uint32, data []byte) error
}

// runPage is the ccache twin of run: clients goroutines loop op over a
// shared iteration budget; with cached set, each goroutine drives a
// CachingClient (with its callback process), else a plain Client.
func runPage(b *testing.B, e *env, clients int, cached bool, bytesPer int,
	warm func(c pageClient) error,
	op func(c pageClient, g, i int, scratch []byte) error) {
	per := b.N/clients + 1
	if bytesPer > 0 {
		b.SetBytes(int64(bytesPer))
	}
	b.ReportAllocs()
	cs := make([]pageClient, clients)
	for g := 0; g < clients; g++ {
		if cached {
			cs[g] = e.cachingClient(b, fmt.Sprintf("bench%d", g), CacheClientConfig{})
		} else {
			cs[g] = e.client(b, fmt.Sprintf("bench%d", g))
		}
		if warm != nil {
			if err := warm(cs[g]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		g := g
		scratch := make([]byte, 512)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := op(cs[g], g, i, scratch); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := float64(per * clients)
	b.ReportMetric(ops/elapsed.Seconds(), "ops/s")
}

var ccacheModes = []struct {
	name   string
	cached bool
}{
	{"off", false},
	{"on", true},
}

// BenchmarkCCacheWarmRead: repeated page reads of a warm 32 KB working
// set on a shared file, client cache on vs. off, 1/4/16 clients, mem and
// udp. ns/op is the warm-read latency; with the cache on, hits never
// leave the client.
func BenchmarkCCacheWarmRead(b *testing.B) {
	const warmBlocks = 64
	for _, flavor := range []string{"mem", "udp"} {
		for _, mode := range ccacheModes {
			for _, clients := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/clients=%d", flavor, mode.name, clients), func(b *testing.B) {
					e := benchEnv(b, flavor)
					warm := func(c pageClient) error {
						buf := make([]byte, 512)
						for blk := uint32(0); blk < warmBlocks; blk++ {
							if _, err := c.ReadBlock(benchFile, blk, buf); err != nil {
								return err
							}
						}
						return nil
					}
					runPage(b, e, clients, mode.cached, 512, warm,
						func(c pageClient, _, i int, scratch []byte) error {
							_, err := c.ReadBlock(benchFile, uint32(i%warmBlocks), scratch)
							return err
						})
				})
			}
		}
	}
}

// BenchmarkCCacheSharedWrite: the counter-case — a 1-write-in-4 mix on
// one shared file all clients have registered. Every write stalls on an
// invalidation callback to each other client, so past one client the
// cached configuration should LOSE to the plain stubs; the margin is the
// price of client-cache consistency on this runtime.
func BenchmarkCCacheSharedWrite(b *testing.B) {
	const hotBlocks = 16
	for _, flavor := range []string{"mem", "udp"} {
		for _, mode := range ccacheModes {
			for _, clients := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/clients=%d", flavor, mode.name, clients), func(b *testing.B) {
					e := benchEnv(b, flavor)
					page := pattern(3, 512)
					warm := func(c pageClient) error {
						buf := make([]byte, 512)
						for blk := uint32(0); blk < hotBlocks; blk++ {
							if _, err := c.ReadBlock(benchFile, blk, buf); err != nil {
								return err
							}
						}
						return nil
					}
					runPage(b, e, clients, mode.cached, 512, warm,
						func(c pageClient, g, i int, scratch []byte) error {
							blk := uint32(i % hotBlocks)
							if i%4 == 0 {
								return c.WriteBlock(benchFile, blk, page)
							}
							_, err := c.ReadBlock(benchFile, blk, scratch)
							return err
						})
				})
			}
		}
	}
}
