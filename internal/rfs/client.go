package rfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/vproto"
)

// RetryPolicy tunes the client stubs' reaction to ipc.ErrOverloaded —
// the kernel's receive-queue backpressure Nack, which promises the
// exchange never executed and is safe to retry. Retries back off
// exponentially (Delay, 2·Delay, 4·Delay … capped at MaxDelay), each
// sleep jittered over the upper half of its nominal value so a herd of
// shedding clients — sixteen of them rerouting off one dead primary —
// thins out instead of retrying in lockstep.
type RetryPolicy struct {
	// Retries bounds the retry attempts after the first Send; 0 turns
	// the policy off (ErrOverloaded surfaces to the caller immediately).
	Retries int
	// Delay is the first backoff sleep.
	Delay time.Duration
	// MaxDelay caps the doubling.
	MaxDelay time.Duration
	// Reroutes bounds failover attempts for a routed client: how many
	// times one operation may drop its cached route and re-resolve after
	// ipc.ErrTimeout, ipc.ErrNoProcess or a StatusNoVolume reply (the
	// volume moved, or its server died and restarted). 0 turns failover
	// off; unrouted (fixed-pid) clients ignore it.
	Reroutes int
	// NoJitter restores the deterministic backoff schedule (each sleep
	// exactly the capped power of two) for tests that assert on it.
	NoJitter bool
}

// jitter spreads one backoff sleep over [d/2, d]. The attempt counts,
// doubling and cap stay deterministic — only the slept duration varies —
// and the sleep hook still receives the final value, so tests that
// substitute a recording no-op remain schedule-deterministic (or set
// NoJitter to pin the durations too).
func (p RetryPolicy) jitter(d time.Duration) time.Duration {
	if p.NoJitter || d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(d-half)+1))
}

// DefaultRetryPolicy is the stubs' out-of-the-box overload behavior:
// enough patience to ride out transient queue spikes without hiding a
// persistently saturated server.
var DefaultRetryPolicy = RetryPolicy{Retries: 8, Delay: 200 * time.Microsecond, MaxDelay: 10 * time.Millisecond, Reroutes: 2}

// Client provides the stub routines a diskless workstation's programs use
// for remote file access (§3.4): each call is one V message exchange with
// the segment grants the I/O protocol prescribes. A Client wraps one V
// process and is not safe for concurrent use — give each concurrent
// client its own process and Client (as the kernel does).
//
// A client is bound to one volume. The plain constructors fix the server
// pid (and DefaultVolume, matching the pre-sharding protocol);
// NewVolumeClient instead resolves the serving pid through a Router per
// operation, which is what makes a volume's clients survive the volume
// moving to another server.
type Client struct {
	p      *ipc.Proc
	server ipc.Pid
	vol    uint32
	router *Router
	// lastPid is the server the previous routed op used; a change means
	// the volume moved and fires onReroute.
	lastPid ipc.Pid
	// onReroute, when set (CachingClient), observes server changes so
	// layered state bound to the old server (cache contents, cache
	// registrations, version baselines) can be discarded.
	onReroute func(ipc.Pid)
	// spreadReads load-balances read ops over the volume's read set
	// (primary + in-sync replicas) via Router.ResolveRead; writes still
	// pin to the primary. readOp marks the current op as spreadable and
	// lastTarget the pid the current exchange went to (so a failed read
	// can evict exactly the dead member from the read set).
	spreadReads bool
	readOp      bool
	lastTarget  ipc.Pid
	retry       RetryPolicy
	// trace, when nonzero, stamps every outgoing request with a 24-bit
	// trace id (SetTrace): the server records spans for the request and
	// everything it fans out (flushes, replication pushes, invalidation
	// callbacks) under that id.
	trace uint32
	// sleep is the backoff hook; tests substitute a recording no-op so
	// retry schedules stay deterministic and instantaneous.
	sleep func(time.Duration)
	// scratch is the reusable segment descriptor for the I/O stubs: a
	// Client is single-threaded with at most one exchange in flight, so
	// one descriptor serves every op without a per-call allocation (the
	// pointer escapes into the kernel's pending-exchange state).
	scratch ipc.Segment
}

// segment points the client's scratch descriptor at data and returns it.
func (c *Client) segment(data []byte, access byte) *ipc.Segment {
	c.scratch = ipc.Segment{Data: data, Access: access}
	return &c.scratch
}

// NewClient binds stubs for the calling process to the given server pid
// and DefaultVolume.
func NewClient(p *ipc.Proc, server ipc.Pid) *Client {
	return &Client{p: p, server: server, vol: DefaultVolume, retry: DefaultRetryPolicy, sleep: time.Sleep}
}

// NewVolumeClient binds stubs for the calling process to one volume,
// resolving the server that hosts it through the router. Operations
// re-resolve and retry (bounded by RetryPolicy.Reroutes) when the route
// goes stale.
func NewVolumeClient(p *ipc.Proc, router *Router, vol uint32) *Client {
	return &Client{p: p, vol: vol, router: router, retry: DefaultRetryPolicy, sleep: time.Sleep}
}

// Discover resolves a file server via the broadcast name service and
// returns a client bound to it (first responder wins; in a sharded
// cluster that is an arbitrary server's DefaultVolume — use DiscoverAll
// or a Router for volume-aware binding).
func Discover(p *ipc.Proc) (*Client, error) {
	pid := p.GetPid(LogicalFileServer, ipc.ScopeBoth)
	if pid == vproto.Nil {
		return nil, ErrNoServer
	}
	return NewClient(p, pid), nil
}

// DiscoverAll enumerates every file server answering within the bounded
// window (0 → the node's default GetPid patience): the cluster's member
// list, where Discover stops at the first responder. Under loss the
// window's repeated broadcast rounds re-solicit responders whose replies
// were dropped.
func DiscoverAll(p *ipc.Proc, window time.Duration) ([]ipc.Pid, error) {
	pids := p.GetPidAll(LogicalFileServer, ipc.ScopeBoth, window)
	if len(pids) == 0 {
		return nil, ErrNoServer
	}
	return pids, nil
}

// ClusterMap enumerates the cluster (DiscoverAll) and asks each server
// for the volume set it owns, returning server pid → sorted volume ids.
func ClusterMap(p *ipc.Proc, window time.Duration) (map[ipc.Pid][]uint32, error) {
	servers, err := DiscoverAll(p, window)
	if err != nil {
		return nil, err
	}
	m := make(map[ipc.Pid][]uint32, len(servers))
	for _, pid := range servers {
		vols, err := NewClient(p, pid).QueryVolumes()
		if err != nil {
			// A server that died between discovery and the query is not
			// part of the map; the survivors still are.
			continue
		}
		m[pid] = vols
	}
	if len(m) == 0 {
		return nil, ErrNoServer
	}
	return m, nil
}

// SetRetry replaces the overload retry policy (and, when sleep is
// non-nil, the backoff sleep hook — the deterministic test entry point).
func (c *Client) SetRetry(p RetryPolicy, sleep func(time.Duration)) {
	c.retry = p
	if sleep != nil {
		c.sleep = sleep
	}
}

// SpreadReads toggles read fan-out for a routed client: reads go to the
// volume's primary AND its in-sync replicas, round-robin, which is how
// a read-heavy workload scales with the replica count. Writes (and
// everything else) still pin to the primary. A replica answers only
// while in-sync — it then holds every acked write — so spread reads
// observe write-behind state exactly as primary reads do. Do not
// combine with CachingClient: its registration protocol lives on the
// primary. No-op for unrouted clients.
func (c *Client) SpreadReads(on bool) { c.spreadReads = on }

// Server returns the bound (fixed-pid) or last-routed server pid.
func (c *Client) Server() ipc.Pid {
	if c.router != nil {
		return c.lastPid
	}
	return c.server
}

// Volume returns the volume the client addresses.
func (c *Client) Volume() uint32 { return c.vol }

// SetTrace makes every subsequent request carry the given 24-bit trace
// id (0 restores untraced operation). Use obs.NewTraceID for fresh ids.
func (c *Client) SetTrace(id uint32) { c.trace = id & vproto.TraceMask }

// request assembles a request message addressed to the client's volume.
func (c *Client) request(op, file, blockOrOff, count uint32) ipc.Message {
	m := buildRequest(c.vol, op, file, blockOrOff, count)
	if c.trace != 0 {
		m.SetTrace(c.trace)
	}
	return m
}

// target resolves the pid this operation goes to. For a routed client a
// change of serving pid (the volume moved) fires the onReroute hook
// before any exchange reaches the new server.
func (c *Client) target() (ipc.Pid, error) {
	if c.router == nil {
		c.lastTarget = c.server
		return c.server, nil
	}
	if c.spreadReads && c.readOp {
		pid, err := c.router.ResolveRead(c.vol)
		if err != nil {
			return vproto.Nil, err
		}
		// Spread reads bypass the onReroute hook on purpose: rotating
		// over the read set is not the volume moving.
		c.lastTarget = pid
		return pid, nil
	}
	pid, err := c.router.Resolve(c.vol)
	if err != nil {
		return vproto.Nil, err
	}
	if c.lastPid != vproto.Nil && pid != c.lastPid && c.onReroute != nil {
		c.onReroute(pid)
	}
	c.lastPid = pid
	c.lastTarget = pid
	return pid, nil
}

// exchange runs one Send with the overload retry policy — ErrOverloaded
// means the kernel shed the message before delivery, so the identical
// exchange is re-sent after a capped exponential backoff — plus, for
// routed clients, bounded failover: ErrTimeout (server unreachable,
// retransmissions exhausted) or ErrNoProcess (server restarted under a
// new pid) drops the cached route and re-resolves. Failover makes the
// exchange at-least-once rather than exactly-once: a timed-out write may
// have executed before the re-sent copy does, which the idempotent page
// and range writes of this protocol tolerate.
func (c *Client) exchange(m *ipc.Message, seg *ipc.Segment) error {
	orig := *m
	delay := c.retry.Delay
	attempt, reroutes := 0, 0
	for {
		pid, err := c.target()
		if err != nil {
			return err
		}
		err = c.p.Send(m, pid, seg)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ipc.ErrOverloaded) && attempt < c.retry.Retries:
			attempt++
			c.sleep(c.retry.jitter(delay))
			if delay *= 2; delay > c.retry.MaxDelay {
				delay = c.retry.MaxDelay
			}
		case c.router != nil && reroutes < c.retry.Reroutes &&
			(errors.Is(err, ipc.ErrTimeout) || errors.Is(err, ipc.ErrNoProcess)):
			reroutes++
			c.router.Invalidate(c.vol)
			if c.spreadReads && c.readOp {
				c.router.InvalidateRead(c.vol, pid)
			}
		default:
			return err
		}
		*m = orig
	}
}

// exchangeOp is exchange plus the common status check: a non-OK reply
// becomes an ErrBadStatus (or ErrNoVolume) error. A StatusNoVolume reply
// to a routed client means the cached route pointed at a server that no
// longer hosts the volume — the route is dropped and the operation
// re-resolved, bounded like exchange's failover. The reply message stays
// in *m for callers that read its extra words (counts, versions, lease).
func (c *Client) exchangeOp(m *ipc.Message, seg *ipc.Segment) error {
	orig := *m
	for reroutes := 0; ; reroutes++ {
		if err := c.exchange(m, seg); err != nil {
			return err
		}
		status, _ := parseReply(m)
		switch {
		case status == StatusOK:
			return nil
		case status == StatusNoVolume:
			if c.router != nil && reroutes < c.retry.Reroutes {
				if c.spreadReads && c.readOp {
					// A replica that stopped serving (fell out of sync, or
					// is mid-promotion): evict it and retry the survivors.
					c.router.InvalidateRead(c.vol, c.lastTarget)
				}
				c.router.Invalidate(c.vol)
				*m = orig
				continue
			}
			return fmt.Errorf("%w: volume %d", ErrNoVolume, c.vol)
		default:
			return fmt.Errorf("%w: status %d", ErrBadStatus, status)
		}
	}
}

// ReadBlock reads up to len(dst) bytes of the given file block into dst:
// one Send granting write access to dst, one reply packet carrying the
// page (§3.4). It returns the byte count the server sent.
func (c *Client) ReadBlock(file, block uint32, dst []byte) (int, error) {
	m := c.request(OpReadBlock, file, block, uint32(len(dst)))
	c.readOp = true
	err := c.exchangeOp(&m, c.segment(dst, ipc.SegWrite))
	c.readOp = false
	if err != nil {
		return 0, err
	}
	_, n := parseReply(&m)
	return int(n), nil
}

// WriteBlock writes data as the given file block: one Send carrying the
// data inline (§3.4), one reply. With a write-behind server the reply
// acknowledges the staged block, not the store write; Sync forces the
// write-back.
func (c *Client) WriteBlock(file, block uint32, data []byte) error {
	m := c.request(OpWriteBlock, file, block, uint32(len(data)))
	return c.exchangeOp(&m, c.segment(data, ipc.SegRead))
}

// ReadLarge reads up to len(dst) bytes starting at byte offset off into
// dst. The server streams the data with MoveTo in transfer-unit chunks
// (§6.3); the count returned is how many bytes the file held.
func (c *Client) ReadLarge(file, off uint32, dst []byte) (int, error) {
	m := c.request(OpReadLarge, file, off, uint32(len(dst)))
	c.readOp = true
	err := c.exchangeOp(&m, c.segment(dst, ipc.SegWrite))
	c.readOp = false
	if err != nil {
		return 0, err
	}
	_, n := parseReply(&m)
	return int(n), nil
}

// WriteLarge writes data to the file at byte offset off; the server pulls
// it with scatter MoveFrom in transfer-unit chunks.
func (c *Client) WriteLarge(file, off uint32, data []byte) error {
	m := c.request(OpWriteLarge, file, off, uint32(len(data)))
	return c.exchangeOp(&m, c.segment(data, ipc.SegRead))
}

// QueryFile returns a file's size in bytes (staged write-behind
// extensions included).
func (c *Client) QueryFile(file uint32) (int, error) {
	m := c.request(OpQueryFile, file, 0, 0)
	c.readOp = true
	err := c.exchangeOp(&m, nil)
	c.readOp = false
	if err != nil {
		return 0, err
	}
	_, n := parseReply(&m)
	return int(n), nil
}

// CreateFile creates (or truncates) a file of the given size.
func (c *Client) CreateFile(file uint32, size uint32) error {
	m := c.request(OpCreateFile, file, size, 0)
	return c.exchangeOp(&m, nil)
}

// QueryVolumes asks the server for the volume set it hosts (volume-
// agnostic — any server answers; one reply packet bounds the set). With
// DiscoverAll this yields the cluster map: which server owns which
// volumes.
func (c *Client) QueryVolumes() ([]uint32, error) {
	buf := make([]byte, vproto.MaxData)
	m := c.request(OpQueryVolumes, 0, 0, uint32(len(buf)))
	if err := c.exchangeOp(&m, c.segment(buf, ipc.SegWrite)); err != nil {
		return nil, err
	}
	_, n := parseReply(&m)
	if int(n)*4 > len(buf) {
		return nil, fmt.Errorf("%w: volume count %d", ErrBadStatus, n)
	}
	vols := make([]uint32, n)
	for i := range vols {
		vols[i] = binary.BigEndian.Uint32(buf[i*4:])
	}
	return vols, nil
}

// QueryStats scrapes the server's metrics registry over V IPC: the
// server streams its serialized snapshot (the obs text wire format —
// parse with obs.ParseSnapshot) into dst with MoveTo. It returns the
// bytes streamed and the full snapshot size; streamed < total means dst
// was too small and the snapshot was cut at a line boundary. Like
// QueryVolumes the op is volume-agnostic: any server answers for its
// whole node.
func (c *Client) QueryStats(dst []byte) (streamed, total int, err error) {
	m := c.request(OpQueryStats, 0, 0, uint32(len(dst)))
	c.readOp = true
	err = c.exchangeOp(&m, c.segment(dst, ipc.SegWrite))
	c.readOp = false
	if err != nil {
		return 0, 0, err
	}
	st, tot := statsReply(&m)
	if int(st) > len(dst) {
		return 0, 0, fmt.Errorf("%w: streamed %d into %d-byte grant", ErrBadStatus, st, len(dst))
	}
	return int(st), int(tot), nil
}

// Sync asks the server to drain its write-behind blocks to the backing
// store (OpSync) — the durability point for acknowledged writes. A
// nonzero file id drains only that file's staged blocks (per-file sync:
// it does not wait on other files' backlogs); zero drains the whole
// cache.
func (c *Client) Sync(file uint32) error {
	m := c.request(OpSync, file, 0, 0)
	return c.exchangeOp(&m, nil)
}

// LoadProgram performs the §6.3 command-interpreter load sequence: one
// page read for the program header, a size query, then one large read
// streaming the code and data.
func (c *Client) LoadProgram(file uint32, headerSize int) ([]byte, error) {
	hdr := make([]byte, headerSize)
	if _, err := c.ReadBlock(file, 0, hdr); err != nil {
		return nil, err
	}
	size, err := c.QueryFile(file)
	if err != nil {
		return nil, err
	}
	image := make([]byte, size)
	n, err := c.ReadLarge(file, 0, image)
	if err != nil {
		return nil, err
	}
	return image[:n], nil
}
