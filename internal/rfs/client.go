package rfs

import (
	"errors"
	"fmt"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/vproto"
)

// RetryPolicy tunes the client stubs' reaction to ipc.ErrOverloaded —
// the kernel's receive-queue backpressure Nack, which promises the
// exchange never executed and is safe to retry. Retries back off
// exponentially (deterministically, no jitter: Delay, 2·Delay, 4·Delay …
// capped at MaxDelay) so a herd of shedding clients thins out instead of
// hammering the queue in lockstep.
type RetryPolicy struct {
	// Retries bounds the retry attempts after the first Send; 0 turns
	// the policy off (ErrOverloaded surfaces to the caller immediately).
	Retries int
	// Delay is the first backoff sleep.
	Delay time.Duration
	// MaxDelay caps the doubling.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the stubs' out-of-the-box overload behavior:
// enough patience to ride out transient queue spikes without hiding a
// persistently saturated server.
var DefaultRetryPolicy = RetryPolicy{Retries: 8, Delay: 200 * time.Microsecond, MaxDelay: 10 * time.Millisecond}

// Client provides the stub routines a diskless workstation's programs use
// for remote file access (§3.4): each call is one V message exchange with
// the segment grants the I/O protocol prescribes. A Client wraps one V
// process and is not safe for concurrent use — give each concurrent
// client its own process and Client (as the kernel does).
type Client struct {
	p      *ipc.Proc
	server ipc.Pid
	retry  RetryPolicy
	// sleep is the backoff hook; tests substitute a recording no-op so
	// retry schedules stay deterministic and instantaneous.
	sleep func(time.Duration)
}

// NewClient binds stubs for the calling process to the given server pid.
func NewClient(p *ipc.Proc, server ipc.Pid) *Client {
	return &Client{p: p, server: server, retry: DefaultRetryPolicy, sleep: time.Sleep}
}

// Discover resolves the file server via the broadcast name service and
// returns a client bound to it.
func Discover(p *ipc.Proc) (*Client, error) {
	pid := p.GetPid(LogicalFileServer, ipc.ScopeBoth)
	if pid == vproto.Nil {
		return nil, ErrNoServer
	}
	return NewClient(p, pid), nil
}

// SetRetry replaces the overload retry policy (and, when sleep is
// non-nil, the backoff sleep hook — the deterministic test entry point).
func (c *Client) SetRetry(p RetryPolicy, sleep func(time.Duration)) {
	c.retry = p
	if sleep != nil {
		c.sleep = sleep
	}
}

// Server returns the bound server pid.
func (c *Client) Server() ipc.Pid { return c.server }

// exchange runs one Send with the overload retry policy: ErrOverloaded
// means the kernel shed the message before delivery, so the identical
// exchange is re-sent after a capped exponential backoff.
func (c *Client) exchange(m *ipc.Message, seg *ipc.Segment) error {
	delay := c.retry.Delay
	for attempt := 0; ; attempt++ {
		err := c.p.Send(m, c.server, seg)
		if !errors.Is(err, ipc.ErrOverloaded) || attempt >= c.retry.Retries {
			return err
		}
		c.sleep(delay)
		if delay *= 2; delay > c.retry.MaxDelay {
			delay = c.retry.MaxDelay
		}
	}
}

// exchangeOp is exchange plus the common status check: a non-OK reply
// becomes an ErrBadStatus error. The reply message stays in *m for
// callers that read its extra words (counts, versions, lease).
func (c *Client) exchangeOp(m *ipc.Message, seg *ipc.Segment) error {
	if err := c.exchange(m, seg); err != nil {
		return err
	}
	if status, _ := parseReply(m); status != StatusOK {
		return fmt.Errorf("%w: status %d", ErrBadStatus, status)
	}
	return nil
}

// ReadBlock reads up to len(dst) bytes of the given file block into dst:
// one Send granting write access to dst, one reply packet carrying the
// page (§3.4). It returns the byte count the server sent.
func (c *Client) ReadBlock(file, block uint32, dst []byte) (int, error) {
	m := buildRequest(OpReadBlock, file, block, uint32(len(dst)))
	if err := c.exchangeOp(&m, &ipc.Segment{Data: dst, Access: ipc.SegWrite}); err != nil {
		return 0, err
	}
	_, n := parseReply(&m)
	return int(n), nil
}

// WriteBlock writes data as the given file block: one Send carrying the
// data inline (§3.4), one reply. With a write-behind server the reply
// acknowledges the staged block, not the store write; Sync forces the
// write-back.
func (c *Client) WriteBlock(file, block uint32, data []byte) error {
	m := buildRequest(OpWriteBlock, file, block, uint32(len(data)))
	return c.exchangeOp(&m, &ipc.Segment{Data: data, Access: ipc.SegRead})
}

// ReadLarge reads up to len(dst) bytes starting at byte offset off into
// dst. The server streams the data with MoveTo in transfer-unit chunks
// (§6.3); the count returned is how many bytes the file held.
func (c *Client) ReadLarge(file, off uint32, dst []byte) (int, error) {
	m := buildRequest(OpReadLarge, file, off, uint32(len(dst)))
	if err := c.exchangeOp(&m, &ipc.Segment{Data: dst, Access: ipc.SegWrite}); err != nil {
		return 0, err
	}
	_, n := parseReply(&m)
	return int(n), nil
}

// WriteLarge writes data to the file at byte offset off; the server pulls
// it with scatter MoveFrom in transfer-unit chunks.
func (c *Client) WriteLarge(file, off uint32, data []byte) error {
	m := buildRequest(OpWriteLarge, file, off, uint32(len(data)))
	return c.exchangeOp(&m, &ipc.Segment{Data: data, Access: ipc.SegRead})
}

// QueryFile returns a file's size in bytes (staged write-behind
// extensions included).
func (c *Client) QueryFile(file uint32) (int, error) {
	m := buildRequest(OpQueryFile, file, 0, 0)
	if err := c.exchangeOp(&m, nil); err != nil {
		return 0, err
	}
	_, n := parseReply(&m)
	return int(n), nil
}

// CreateFile creates (or truncates) a file of the given size.
func (c *Client) CreateFile(file uint32, size uint32) error {
	m := buildRequest(OpCreateFile, file, size, 0)
	return c.exchangeOp(&m, nil)
}

// Sync asks the server to drain its write-behind blocks to the backing
// store (OpSync) — the durability point for acknowledged writes. A
// nonzero file id drains only that file's staged blocks (per-file sync:
// it does not wait on other files' backlogs); zero drains the whole
// cache.
func (c *Client) Sync(file uint32) error {
	m := buildRequest(OpSync, file, 0, 0)
	return c.exchangeOp(&m, nil)
}

// LoadProgram performs the §6.3 command-interpreter load sequence: one
// page read for the program header, a size query, then one large read
// streaming the code and data.
func (c *Client) LoadProgram(file uint32, headerSize int) ([]byte, error) {
	hdr := make([]byte, headerSize)
	if _, err := c.ReadBlock(file, 0, hdr); err != nil {
		return nil, err
	}
	size, err := c.QueryFile(file)
	if err != nil {
		return nil, err
	}
	image := make([]byte, size)
	n, err := c.ReadLarge(file, 0, image)
	if err != nil {
		return nil, err
	}
	return image[:n], nil
}
