package rfs

import (
	"fmt"
	"net"
	"sync"

	"vkernel/internal/ipc"
	"vkernel/internal/obs"
)

// ClusterConfig describes a sharded rfs deployment for tests and
// benchmarks: K server nodes, each hosting a disjoint slice of the
// volume set, on either an in-memory mesh or loopback UDP sockets.
type ClusterConfig struct {
	// Shards is the server-node count (0 → 1).
	Shards int
	// Volumes is the full volume set, assigned round-robin across the
	// shards (volume i goes to server i mod Shards). Nil → one volume
	// per shard, ids 1..Shards.
	Volumes []uint32
	// Replicas gives every volume that many read replicas, replica r of
	// volume i hosted on server (i+r) mod Shards with its own store from
	// NewStore — so killing the primary's shard leaves r live copies.
	// Capped at Shards-1 (a replica on the primary's own shard would die
	// with it). 0 keeps the pre-replication single-copy layout.
	Replicas int
	// UDP selects loopback UDP sockets instead of the in-memory mesh.
	UDP bool
	// Seed seeds the in-memory mesh's fault rng (0 → 7); Faults is its
	// fault plan. Both are ignored over UDP.
	Seed   int64
	Faults ipc.FaultConfig
	// Node configures every node (servers and clients) in the cluster.
	Node ipc.NodeConfig
	// Server configures every rfs server.
	Server Config
	// NewStore builds the backing store for one volume (nil → MemStore).
	// Stores belong to the volume, not the server process: Kill/Restart
	// reuses them, so volume data survives a server crash the way a disk
	// survives a host reboot.
	NewStore func(vol uint32) Store
}

// ClusterServer is one shard: a node plus the rfs server on it. After
// Kill, Node and Srv are nil until Restart brings the shard back on the
// same host (and, over UDP, the same socket address).
type ClusterServer struct {
	Index int
	Host  ipc.LogicalHost
	Specs []VolumeSpec

	Node *ipc.Node
	Srv  *Server

	addr *net.UDPAddr      // UDP listen address, rebound on Restart
	utr  *ipc.UDPTransport // live UDP transport, for peer wiring; nil when dead or on mesh
}

// Cluster is the multi-server fixture: StartCluster boots the shards,
// ClientNode adds client nodes wired into the same network, and
// Kill/Restart crash and recover individual shards for failover tests.
type Cluster struct {
	cfg  ClusterConfig
	Mesh *ipc.MemNetwork // nil over UDP

	Servers []*ClusterServer
	Volumes []uint32

	mu       sync.Mutex
	nextHost ipc.LogicalHost
	clients  []*ipc.Node
}

// StartCluster boots cfg.Shards server nodes on hosts 1..K and starts
// an rfs server on each with its round-robin share of the volumes.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Volumes == nil {
		for i := 0; i < cfg.Shards; i++ {
			cfg.Volumes = append(cfg.Volumes, uint32(i+1))
		}
	}
	if cfg.NewStore == nil {
		cfg.NewStore = func(uint32) Store { return NewMemStore() }
	}
	c := &Cluster{cfg: cfg, Volumes: cfg.Volumes, nextHost: 100}
	if !cfg.UDP {
		seed := cfg.Seed
		if seed == 0 {
			seed = 7
		}
		c.Mesh = ipc.NewMemNetwork(seed, cfg.Faults)
	}
	replicas := cfg.Replicas
	if replicas > cfg.Shards-1 {
		replicas = cfg.Shards - 1
	}
	for i := 0; i < cfg.Shards; i++ {
		cs := &ClusterServer{Index: i, Host: ipc.LogicalHost(i + 1)}
		for j, vol := range cfg.Volumes {
			if j%cfg.Shards == i {
				cs.Specs = append(cs.Specs, VolumeSpec{ID: vol, Store: cfg.NewStore(vol), Replicas: replicas})
			}
			// Replica r of volume j lands r shards past its primary.
			for r := 1; r <= replicas; r++ {
				if (j+r)%cfg.Shards == i {
					cs.Specs = append(cs.Specs, VolumeSpec{
						ID:        vol,
						Store:     cfg.NewStore(vol),
						Role:      RoleReplica,
						ReplicaID: uint32(r),
					})
				}
			}
		}
		c.Servers = append(c.Servers, cs)
		if err := c.boot(cs); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// boot builds the shard's transport and node and starts its server.
// Every boot gets a fresh per-shard registry (labelled shard<i>) shared
// by the transport, node and server, so one OpQueryStats scrape of the
// shard covers net.*, ipc.* and rfs.* together — and a Restart starts
// its counters from zero, like any rebooted host would.
func (c *Cluster) boot(cs *ClusterServer) error {
	reg := obs.New()
	reg.SetNode(fmt.Sprintf("shard%d", cs.Index))
	nodeCfg := c.cfg.Node
	nodeCfg.Metrics = reg
	srvCfg := c.cfg.Server
	srvCfg.Metrics = reg
	var tr ipc.Transport
	if c.cfg.UDP {
		listen := "127.0.0.1:0"
		if cs.addr != nil { // Restart: rebind the crashed server's address
			listen = cs.addr.String()
		}
		utr, err := ipc.NewUDPTransportConfig(listen, ipc.UDPConfig{Metrics: reg})
		if err != nil {
			return fmt.Errorf("rfs: cluster shard %d: %w", cs.Index, err)
		}
		cs.addr = utr.Addr()
		cs.utr = utr
		// Cross-wire this shard with every other live shard, both ways:
		// UDP transports learn peers from inbound datagrams, but the
		// first server-to-server broadcast (a replica's GetPid for its
		// primary, a rejoin probe) needs an explicit peer entry to leave
		// the node at all.
		for _, other := range c.Servers {
			if other == cs || other.utr == nil {
				continue
			}
			utr.AddPeer(other.Host, other.addr)
			other.utr.AddPeer(cs.Host, cs.addr)
		}
		tr = utr
	} else {
		tr = c.Mesh.Transport(cs.Host)
	}
	cs.Node = ipc.NewNode(cs.Host, tr, nodeCfg)
	srv, err := StartVolumes(cs.Node, cs.Specs, srvCfg)
	if err != nil {
		_ = cs.Node.Close()
		cs.Node = nil
		cs.utr = nil
		return fmt.Errorf("rfs: cluster shard %d: %w", cs.Index, err)
	}
	cs.Srv = srv
	return nil
}

// ClientNode adds a client node to the cluster's network. Over UDP the
// node gets every shard's address as a peer; shard addresses survive
// Restart, so clients made before a crash keep working after recovery.
// The node is closed by Cluster.Close.
func (c *Cluster) ClientNode() (*ipc.Node, error) {
	c.mu.Lock()
	host := c.nextHost
	c.nextHost++
	c.mu.Unlock()
	var tr ipc.Transport
	if c.cfg.UDP {
		utr, err := ipc.NewUDPTransport("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		for _, cs := range c.Servers {
			utr.AddPeer(cs.Host, cs.addr)
		}
		tr = utr
	} else {
		tr = c.Mesh.Transport(host)
	}
	node := ipc.NewNode(host, tr, c.cfg.Node)
	c.mu.Lock()
	c.clients = append(c.clients, node)
	c.mu.Unlock()
	return node, nil
}

// Kill crashes shard i: the server and its node close, in-flight and
// future requests to its volumes time out, but the volume stores keep
// their data for Restart. Safe to call on an already-dead shard.
func (c *Cluster) Kill(i int) {
	cs := c.Servers[i]
	if cs.Srv != nil {
		cs.Srv.Close()
		cs.Srv = nil
	}
	if cs.Node != nil {
		_ = cs.Node.Close()
		cs.Node = nil
	}
	cs.utr = nil
}

// Restart brings a killed shard back on the same host with the same
// volume stores. The revived server re-registers its volume names, so
// routed clients re-resolve to it on their next retry. Primary-role
// specs come back with Rejoin set: if a replica promoted while the
// shard was down, the restarted server demotes itself to a replica of
// the new primary instead of split-braining the volume.
func (c *Cluster) Restart(i int) error {
	cs := c.Servers[i]
	if cs.Srv != nil {
		return fmt.Errorf("rfs: cluster shard %d still running", i)
	}
	for j := range cs.Specs {
		if cs.Specs[j].Role == RolePrimary && cs.Specs[j].Replicas > 0 {
			cs.Specs[j].Rejoin = true
		}
	}
	return c.boot(cs)
}

// Close tears the whole cluster down: client nodes, every live shard,
// every volume store, and the mesh.
func (c *Cluster) Close() {
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, n := range clients {
		_ = n.Close()
	}
	for i, cs := range c.Servers {
		c.Kill(i)
		for _, spec := range cs.Specs {
			_ = spec.Store.Close()
		}
	}
	if c.Mesh != nil {
		c.Mesh.Close()
	}
}
