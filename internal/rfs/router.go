package rfs

import (
	"fmt"
	"sync"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/vproto"
)

// Router resolves volumes to the server currently hosting them and
// caches the routes. Resolution is one broadcast name lookup of the
// volume's logical name (LogicalVolumeBase+vol) — the name service is
// the cluster's routing table, and whichever server advertises the name
// owns the volume.
//
// Routes go stale when a volume's server dies or the volume moves; the
// routed Client drops the route (Invalidate) on ErrTimeout,
// ErrNoProcess or a StatusNoVolume reply and the next operation
// re-resolves — failover without any client configuration. A Router is
// safe for concurrent use and is meant to be shared by all clients on a
// node.
type Router struct {
	node *ipc.Node
	p    *ipc.Proc

	mu     sync.Mutex
	routes map[uint32]ipc.Pid
}

// NewRouter attaches a lookup process on node and returns an empty
// router. Close releases the process.
func NewRouter(node *ipc.Node) (*Router, error) {
	p, err := node.Attach("rfs-router")
	if err != nil {
		return nil, err
	}
	return &Router{node: node, p: p, routes: make(map[uint32]ipc.Pid)}, nil
}

// Close detaches the router's lookup process.
func (r *Router) Close() { r.node.Detach(r.p) }

// Resolve returns the pid of the server hosting vol, from the route
// cache or via a broadcast lookup. A volume nobody advertises within the
// lookup's bounded patience resolves to ErrNoVolume — retryable once a
// server hosting it comes (back) up.
func (r *Router) Resolve(vol uint32) (ipc.Pid, error) {
	r.mu.Lock()
	pid, ok := r.routes[vol]
	r.mu.Unlock()
	if ok {
		return pid, nil
	}
	pid = r.p.GetPid(LogicalVolumeBase+vol, ipc.ScopeBoth)
	if pid == vproto.Nil {
		return vproto.Nil, fmt.Errorf("%w: volume %d", ErrNoVolume, vol)
	}
	r.mu.Lock()
	r.routes[vol] = pid
	r.mu.Unlock()
	return pid, nil
}

// Invalidate drops the cached route for vol (the server stopped
// answering or disowned the volume); the next Resolve re-discovers.
func (r *Router) Invalidate(vol uint32) {
	r.mu.Lock()
	delete(r.routes, vol)
	r.mu.Unlock()
}

// Refresh rebuilds the route cache from a fresh cluster map: every
// reachable server is enumerated (DiscoverAll over the given window) and
// asked for its volume set. Cached routes for volumes no longer
// advertised are dropped. Resolve fills routes lazily one volume at a
// time; Refresh is the eager batch alternative for tools that want the
// whole table at once.
func (r *Router) Refresh(window time.Duration) (map[ipc.Pid][]uint32, error) {
	cm, err := ClusterMap(r.p, window)
	if err != nil {
		return nil, err
	}
	routes := make(map[uint32]ipc.Pid)
	for pid, vols := range cm {
		for _, vol := range vols {
			routes[vol] = pid
		}
	}
	r.mu.Lock()
	r.routes = routes
	r.mu.Unlock()
	return cm, nil
}

// Routes returns a snapshot of the cached volume → server table.
func (r *Router) Routes() map[uint32]ipc.Pid {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint32]ipc.Pid, len(r.routes))
	for vol, pid := range r.routes {
		out[vol] = pid
	}
	return out
}
