package rfs

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"vkernel/internal/ipc"
	"vkernel/internal/vproto"
)

// Router resolves volumes to the server currently hosting them and
// caches the routes. Resolution is one broadcast name lookup of the
// volume's logical name (LogicalVolumeBase+vol) — the name service is
// the cluster's routing table, and whichever server advertises the name
// owns the volume.
//
// Routes go stale when a volume's server dies or the volume moves; the
// routed Client drops the route (Invalidate) on ErrTimeout,
// ErrNoProcess or a StatusNoVolume reply and the next operation
// re-resolves — failover without any client configuration. A Router is
// safe for concurrent use and is meant to be shared by all clients on a
// node.
type Router struct {
	node *ipc.Node
	p    *ipc.Proc

	mu     sync.Mutex
	routes map[uint32]ipc.Pid

	// Read-set state: per volume, the primary-reported fan-out set
	// (primary first, then in-sync replicas) that ResolveRead round-
	// robins over, refreshed when its TTL lapses. sendMu serializes the
	// OpQueryReplicas exchanges on p — GetPid is safe concurrently, a
	// Send exchange is not.
	readMu  sync.Mutex
	reads   map[uint32]*readSet
	readTTL time.Duration
	sendMu  sync.Mutex
}

// readSet is one volume's cached read fan-out set.
type readSet struct {
	pids    []ipc.Pid
	next    int
	expires time.Time
}

// defaultReadSetTTL bounds how long ResolveRead trusts a cached read
// set; it is also the bound on reads reaching a replica the primary has
// since dropped from the in-sync set.
const defaultReadSetTTL = 500 * time.Millisecond

// NewRouter attaches a lookup process on node and returns an empty
// router. Close releases the process.
func NewRouter(node *ipc.Node) (*Router, error) {
	p, err := node.Attach("rfs-router")
	if err != nil {
		return nil, err
	}
	return &Router{
		node:    node,
		p:       p,
		routes:  make(map[uint32]ipc.Pid),
		reads:   make(map[uint32]*readSet),
		readTTL: defaultReadSetTTL,
	}, nil
}

// SetReadSetTTL replaces the read-set refresh interval (tests and
// benchmarks tighten it).
func (r *Router) SetReadSetTTL(d time.Duration) {
	r.readMu.Lock()
	r.readTTL = d
	r.readMu.Unlock()
}

// Close detaches the router's lookup process.
func (r *Router) Close() { r.node.Detach(r.p) }

// Resolve returns the pid of the server hosting vol, from the route
// cache or via a broadcast lookup. A volume nobody advertises within the
// lookup's bounded patience resolves to ErrNoVolume — retryable once a
// server hosting it comes (back) up.
func (r *Router) Resolve(vol uint32) (ipc.Pid, error) {
	r.mu.Lock()
	pid, ok := r.routes[vol]
	r.mu.Unlock()
	if ok {
		return pid, nil
	}
	pid = r.p.GetPid(LogicalVolumeBase+vol, ipc.ScopeBoth)
	if pid == vproto.Nil {
		return vproto.Nil, fmt.Errorf("%w: volume %d", ErrNoVolume, vol)
	}
	r.mu.Lock()
	r.routes[vol] = pid
	r.mu.Unlock()
	return pid, nil
}

// Invalidate drops the cached route for vol (the server stopped
// answering or disowned the volume); the next Resolve re-discovers.
// The volume's read set is left alone: its members are evicted
// individually (InvalidateRead) as reads against them fail, so one dead
// primary does not stop the surviving replicas from serving reads while
// failover runs.
func (r *Router) Invalidate(vol uint32) {
	r.mu.Lock()
	delete(r.routes, vol)
	r.mu.Unlock()
}

// ResolveRead returns the next server to read vol from, round-robining
// over the volume's live read set: the primary plus every replica it
// counts in-sync. The set comes from the primary (OpQueryReplicas) and
// is refreshed on a TTL; writes must keep using Resolve — they pin to
// the primary.
func (r *Router) ResolveRead(vol uint32) (ipc.Pid, error) {
	r.readMu.Lock()
	if rs := r.reads[vol]; rs != nil && len(rs.pids) > 0 && time.Now().Before(rs.expires) {
		pid := rs.pids[rs.next%len(rs.pids)]
		rs.next++
		r.readMu.Unlock()
		return pid, nil
	}
	r.readMu.Unlock()
	primary, err := r.Resolve(vol)
	if err != nil {
		return vproto.Nil, err
	}
	pids := r.queryReadSet(vol, primary)
	r.readMu.Lock()
	rs := r.reads[vol]
	if rs == nil {
		rs = &readSet{}
		r.reads[vol] = rs
	}
	rs.pids = pids
	rs.expires = time.Now().Add(r.readTTL)
	pid := rs.pids[rs.next%len(rs.pids)]
	rs.next++
	r.readMu.Unlock()
	return pid, nil
}

// InvalidateRead drops one server from vol's cached read set (a read
// against it failed — a dead or no-longer-serving replica); reads fall
// back to the remaining members until the next TTL refresh. Dropping
// the last member discards the set.
func (r *Router) InvalidateRead(vol uint32, pid ipc.Pid) {
	r.readMu.Lock()
	defer r.readMu.Unlock()
	rs := r.reads[vol]
	if rs == nil {
		return
	}
	kept := rs.pids[:0]
	for _, p := range rs.pids {
		if p != pid {
			kept = append(kept, p)
		}
	}
	rs.pids = kept
	if len(rs.pids) == 0 {
		delete(r.reads, vol)
	}
}

// queryReadSet asks the volume's primary for the read fan-out set; any
// failure degrades to the primary alone (always a correct read target).
func (r *Router) queryReadSet(vol uint32, primary ipc.Pid) []ipc.Pid {
	buf := make([]byte, vproto.MaxData)
	m := buildRequest(vol, OpQueryReplicas, 0, 0, uint32(len(buf)))
	seg := ipc.Segment{Data: buf, Access: ipc.SegWrite}
	r.sendMu.Lock()
	err := r.p.Send(&m, primary, &seg)
	r.sendMu.Unlock()
	if err != nil {
		return []ipc.Pid{primary}
	}
	status, count := parseReply(&m)
	if status != StatusOK || count == 0 || int(count)*4 > len(buf) {
		return []ipc.Pid{primary}
	}
	pids := make([]ipc.Pid, 0, count)
	for i := uint32(0); i < count; i++ {
		pids = append(pids, ipc.Pid(binary.BigEndian.Uint32(buf[i*4:])))
	}
	return pids
}

// Refresh rebuilds the route cache from a fresh cluster map: every
// reachable server is enumerated (DiscoverAll over the given window) and
// asked for its volume set. Cached routes for volumes no longer
// advertised are dropped. Resolve fills routes lazily one volume at a
// time; Refresh is the eager batch alternative for tools that want the
// whole table at once.
func (r *Router) Refresh(window time.Duration) (map[ipc.Pid][]uint32, error) {
	cm, err := ClusterMap(r.p, window)
	if err != nil {
		return nil, err
	}
	routes := make(map[uint32]ipc.Pid)
	for pid, vols := range cm {
		for _, vol := range vols {
			routes[vol] = pid
		}
	}
	r.mu.Lock()
	r.routes = routes
	r.mu.Unlock()
	return cm, nil
}

// Routes returns a snapshot of the cached volume → server table.
func (r *Router) Routes() map[uint32]ipc.Pid {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint32]ipc.Pid, len(r.routes))
	for vol, pid := range r.routes {
		out[vol] = pid
	}
	return out
}
