// Word layout of the kernel-originated messages in the simulated
// kernel: the same name-lookup and data-move layouts the runnable
// kernel (internal/ipc) uses, kept in one place so every raw word
// index lives in a proto.go file (the wireword analyzer enforces
// this).
package core

const (
	// KindGetPid / KindGetPidReply: word 1 names the logical id being
	// resolved; the reply adds the holder's pid in word 2.
	wordNameID  = 1
	wordNamePid = 2

	// KindMoveToData / KindMoveFromReq: word 1 carries the transfer's
	// base address in the target process's space; fragment offsets in
	// the packet header are applied relative to it.
	wordMoveBase = 1
)
