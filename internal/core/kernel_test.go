package core

import (
	"bytes"
	"testing"

	"vkernel/internal/cost"
	"vkernel/internal/ether"
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

func prof8() cost.Profile  { return cost.MC68000(8, cost.Iface3Mb) }
func prof10() cost.Profile { return cost.MC68000(10, cost.Iface3Mb) }

func twoStations(t *testing.T, cfg Config) (*Cluster, *Kernel, *Kernel) {
	t.Helper()
	c := NewCluster(1, ether.Ethernet3Mb())
	ka := c.AddWorkstation("a", prof8(), cfg)
	kb := c.AddWorkstation("b", prof8(), cfg)
	return c, ka, kb
}

func mustRun(t *testing.T, c *Cluster) {
	t.Helper()
	c.Eng.MaxSteps = 50_000_000
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSendReceiveReply(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	var serverPid Pid
	var got uint32
	server := k.Spawn("server", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		got = msg.Word(1)
		var reply Message
		reply.SetWord(1, got*2)
		if err := p.Reply(&reply, src); err != nil {
			t.Error(err)
		}
	})
	serverPid = server.Pid()
	var replied uint32
	k.Spawn("client", func(p *Process) {
		var msg Message
		msg.SetWord(1, 21)
		if err := p.Send(&msg, serverPid); err != nil {
			t.Error(err)
			return
		}
		replied = msg.Word(1)
	})
	mustRun(t, c)
	if got != 21 || replied != 42 {
		t.Fatalf("got=%d replied=%d", got, replied)
	}
}

func TestLocalSendBlocksUntilReply(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	var sendDone, replyAt sim.Time
	server := k.Spawn("server", func(p *Process) {
		_, src, _ := p.Receive()
		p.Delay(5 * sim.Millisecond)
		replyAt = p.GetTime()
		var m Message
		_ = p.Reply(&m, src)
	})
	k.Spawn("client", func(p *Process) {
		var m Message
		_ = p.Send(&m, server.Pid())
		sendDone = p.GetTime()
	})
	mustRun(t, c)
	if sendDone < replyAt {
		t.Fatalf("send returned at %v before reply at %v", sendDone, replyAt)
	}
	if sendDone < 5*sim.Millisecond {
		t.Fatalf("send returned too early: %v", sendDone)
	}
}

func TestLocalFCFSQueueing(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	var order []uint32
	server := k.Spawn("server", func(p *Process) {
		for i := 0; i < 3; i++ {
			msg, src, err := p.Receive()
			if err != nil {
				t.Error(err)
				return
			}
			order = append(order, msg.Word(1))
			var m Message
			_ = p.Reply(&m, src)
		}
	})
	// Spawn three clients that send in a staggered but known order.
	for i := uint32(1); i <= 3; i++ {
		i := i
		k.Spawn("client", func(p *Process) {
			p.Delay(sim.Time(i) * sim.Millisecond)
			var m Message
			m.SetWord(1, i)
			_ = p.Send(&m, server.Pid())
		})
	}
	mustRun(t, c)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSendToMissingProcess(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	var err error
	k.Spawn("client", func(p *Process) {
		var m Message
		err = p.Send(&m, vproto.MakePid(k.Host(), 999))
	})
	mustRun(t, c)
	if err != ErrNoProcess {
		t.Fatalf("err = %v", err)
	}
}

func TestSendToSelfDeadlock(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	var err error
	k.Spawn("p", func(p *Process) {
		var m Message
		err = p.Send(&m, p.Pid())
	})
	mustRun(t, c)
	if err != ErrDeadlock {
		t.Fatalf("err = %v", err)
	}
}

func TestReplyWithoutReceiveFails(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	other := k.Spawn("other", func(p *Process) { p.Delay(10 * sim.Millisecond) })
	var err error
	k.Spawn("replier", func(p *Process) {
		var m Message
		err = p.Reply(&m, other.Pid())
	})
	mustRun(t, c)
	if err != ErrNotAwaitingReply {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteSendReceiveReply(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	server := kb.Spawn("server", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		var reply Message
		reply.SetWord(1, msg.Word(1)+1)
		if err := p.Reply(&reply, src); err != nil {
			t.Error(err)
		}
	})
	var got uint32
	ka.Spawn("client", func(p *Process) {
		var m Message
		m.SetWord(1, 99)
		if err := p.Send(&m, server.Pid()); err != nil {
			t.Error(err)
			return
		}
		got = m.Word(1)
	})
	mustRun(t, c)
	if got != 100 {
		t.Fatalf("got = %d", got)
	}
	if ka.Stats().RemoteSends != 1 || kb.Stats().RemoteReplies != 1 {
		t.Fatalf("stats: %+v / %+v", ka.Stats(), kb.Stats())
	}
}

func TestRemoteSendToMissingProcessNacks(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	var err error
	ka.Spawn("client", func(p *Process) {
		var m Message
		err = p.Send(&m, vproto.MakePid(kb.Host(), 777))
	})
	mustRun(t, c)
	if err != ErrNoProcess {
		t.Fatalf("err = %v", err)
	}
	if kb.Stats().NacksSent != 1 {
		t.Fatalf("stats: %+v", kb.Stats())
	}
}

func TestRemoteSendToMissingHostTimesOut(t *testing.T) {
	c, ka, _ := twoStations(t, Config{})
	var err error
	var elapsed sim.Time
	ka.Spawn("client", func(p *Process) {
		var m Message
		start := p.GetTime()
		err = p.Send(&m, vproto.MakePid(55, 1))
		elapsed = p.GetTime() - start
	})
	mustRun(t, c)
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	// 1 original + 5 retries at 100 ms.
	if elapsed < 500*sim.Millisecond {
		t.Fatalf("gave up too fast: %v", elapsed)
	}
	if ka.Stats().Retransmits != 5 {
		t.Fatalf("retransmits = %d", ka.Stats().Retransmits)
	}
}

func TestRemoteExchangeSurvivesPacketLoss(t *testing.T) {
	cfg := ether.Ethernet3Mb()
	cfg.DropRate = 0.2
	c := NewCluster(7, cfg)
	ka := c.AddWorkstation("a", prof8(), Config{})
	kb := c.AddWorkstation("b", prof8(), Config{})
	const n = 40
	var received, completed int
	server := kb.Spawn("server", func(p *Process) {
		for {
			msg, src, err := p.Receive()
			if err != nil {
				return
			}
			received++
			var reply Message
			reply.SetWord(1, msg.Word(1)*10)
			_ = p.Reply(&reply, src)
		}
	})
	ka.Spawn("client", func(p *Process) {
		for i := uint32(1); i <= n; i++ {
			var m Message
			m.SetWord(1, i)
			if err := p.Send(&m, server.Pid()); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if m.Word(1) != i*10 {
				t.Errorf("reply %d = %d", i, m.Word(1))
				return
			}
			completed++
		}
	})
	c.Eng.MaxSteps = 50_000_000
	c.Eng.Schedule(200*sim.Second, "stop", func() { c.Eng.Stop() })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != n {
		t.Fatalf("completed %d/%d exchanges", completed, n)
	}
	// At-least-once delivery with duplicate filtering: the server must see
	// each message exactly once even though packets were lost.
	if received != n {
		t.Fatalf("server received %d messages, want exactly %d", received, n)
	}
}

func TestPageReadWithSegments(t *testing.T) {
	// A page read: Send with a write-access segment grant;
	// server replies with ReplyWithSegment carrying the page.
	c, ka, kb := twoStations(t, Config{})
	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(i * 7)
	}
	server := kb.Spawn("fs", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		start, size, access, ok := msg.Segment()
		if !ok || access&vproto.SegFlagWrite == 0 || size != 512 {
			t.Errorf("bad segment: %v %v %v %v", start, size, access, ok)
		}
		var reply Message
		if err := p.ReplyWithSegment(&reply, src, start, page); err != nil {
			t.Error(err)
		}
	})
	var got []byte
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(512)
		var m Message
		m.SetSegment(buf, 512, vproto.SegFlagWrite)
		if err := p.Send(&m, server.Pid()); err != nil {
			t.Error(err)
			return
		}
		got = p.ReadSpace(buf, 512)
	})
	mustRun(t, c)
	if !bytes.Equal(got, page) {
		t.Fatal("page data corrupted in transit")
	}
}

func TestPageWriteWithInlineSegment(t *testing.T) {
	// A page write: Send with a read-access segment; the first part of the
	// segment travels inside the Send packet and ReceiveWithSegment picks
	// it up — a single two-packet exchange (§3.4).
	c, ka, kb := twoStations(t, Config{})
	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(255 - i%251)
	}
	var stored []byte
	server := kb.Spawn("fs", func(p *Process) {
		buf := p.Alloc(1024)
		_, src, count, err := p.ReceiveWithSegment(buf, 1024)
		if err != nil {
			t.Error(err)
			return
		}
		stored = p.ReadSpace(buf, count)
		var reply Message
		_ = p.Reply(&reply, src)
	})
	ka.Spawn("client", func(p *Process) {
		addr := p.Alloc(512)
		p.WriteSpace(addr, page)
		var m Message
		m.SetSegment(addr, 512, vproto.SegFlagRead)
		if err := p.Send(&m, server.Pid()); err != nil {
			t.Error(err)
		}
	})
	mustRun(t, c)
	if !bytes.Equal(stored, page) {
		t.Fatalf("stored %d bytes, corrupted or short", len(stored))
	}
	// The whole write must have been two packets: one Send (with inline
	// data) and one Reply.
	if got := c.Net.Stats().Frames; got != 2 {
		t.Fatalf("page write used %d packets, want 2", got)
	}
}

func TestMoveToTransfersDataRemote(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	const size = 10_000 // multiple packets
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 131)
	}
	server := kb.Spawn("server", func(p *Process) {
		src := p.Alloc(size)
		p.WriteSpace(src, data)
		msg, from, err := p.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		start, _, _, _ := msg.Segment()
		if err := p.MoveTo(from, start, src, size); err != nil {
			t.Error(err)
			return
		}
		var reply Message
		_ = p.Reply(&reply, from)
	})
	var got []byte
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(size)
		var m Message
		m.SetSegment(buf, size, vproto.SegFlagWrite)
		if err := p.Send(&m, server.Pid()); err != nil {
			t.Error(err)
			return
		}
		got = p.ReadSpace(buf, size)
	})
	mustRun(t, c)
	if !bytes.Equal(got, data) {
		t.Fatal("MoveTo corrupted data")
	}
}

func TestMoveFromTransfersDataRemote(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	const size = 5_000
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 97)
	}
	var got []byte
	server := kb.Spawn("server", func(p *Process) {
		buf := p.Alloc(size)
		msg, from, err := p.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		start, _, _, _ := msg.Segment()
		if err := p.MoveFrom(from, buf, start, size); err != nil {
			t.Error(err)
			return
		}
		got = p.ReadSpace(buf, size)
		var reply Message
		_ = p.Reply(&reply, from)
	})
	ka.Spawn("client", func(p *Process) {
		src := p.Alloc(size)
		p.WriteSpace(src, data)
		var m Message
		m.SetSegment(src, size, vproto.SegFlagRead)
		if err := p.Send(&m, server.Pid()); err != nil {
			t.Error(err)
		}
	})
	mustRun(t, c)
	if !bytes.Equal(got, data) {
		t.Fatal("MoveFrom corrupted data")
	}
}

func TestMoveSurvivesPacketLoss(t *testing.T) {
	cfg := ether.Ethernet3Mb()
	cfg.DropRate = 0.05
	c := NewCluster(13, cfg)
	ka := c.AddWorkstation("a", prof8(), Config{})
	kb := c.AddWorkstation("b", prof8(), Config{})
	const size = 20_000
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 251)
	}
	server := kb.Spawn("server", func(p *Process) {
		src := p.Alloc(size)
		p.WriteSpace(src, data)
		msg, from, err := p.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		start, _, _, _ := msg.Segment()
		if err := p.MoveTo(from, start, src, size); err != nil {
			t.Error(err)
			return
		}
		var reply Message
		_ = p.Reply(&reply, from)
	})
	var got []byte
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(size)
		var m Message
		m.SetSegment(buf, size, vproto.SegFlagWrite)
		if err := p.Send(&m, server.Pid()); err != nil {
			t.Error(err)
			return
		}
		got = p.ReadSpace(buf, size)
	})
	c.Eng.MaxSteps = 50_000_000
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("MoveTo under loss corrupted data")
	}
}

func TestMoveToWithoutGrantFails(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	server := kb.Spawn("server", func(p *Process) {
		_, from, err := p.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		src := p.Alloc(128)
		if err := p.MoveTo(from, 0, src, 128); err != ErrNoAccess {
			t.Errorf("MoveTo err = %v, want ErrNoAccess", err)
		}
		var reply Message
		_ = p.Reply(&reply, from)
	})
	ka.Spawn("client", func(p *Process) {
		var m Message // no segment grant
		_ = p.Send(&m, server.Pid())
	})
	mustRun(t, c)
}

func TestMoveToOutsideGrantFails(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	server := kb.Spawn("server", func(p *Process) {
		msg, from, err := p.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		start, _, _, _ := msg.Segment()
		src := p.Alloc(1024)
		// Write past the end of the 512-byte grant.
		if err := p.MoveTo(from, start+256, src, 512); err != ErrBadAddress {
			t.Errorf("MoveTo err = %v, want ErrBadAddress", err)
		}
		var reply Message
		_ = p.Reply(&reply, from)
	})
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(512)
		var m Message
		m.SetSegment(buf, 512, vproto.SegFlagWrite)
		_ = p.Send(&m, server.Pid())
	})
	mustRun(t, c)
}

func TestGetPidBroadcastResolution(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	fs := kb.Spawn("fs", func(p *Process) {
		p.SetPid(LogicalFileServer, p.Pid(), ScopeBoth)
		_, src, err := p.Receive()
		if err != nil {
			return
		}
		var m Message
		_ = p.Reply(&m, src)
	})
	var resolved Pid
	ka.Spawn("client", func(p *Process) {
		p.Delay(sim.Millisecond) // let the server register
		resolved = p.GetPid(LogicalFileServer, ScopeBoth)
		if resolved != vproto.Nil {
			var m Message
			_ = p.Send(&m, resolved)
		}
	})
	mustRun(t, c)
	if resolved != fs.Pid() {
		t.Fatalf("resolved %v, want %v", resolved, fs.Pid())
	}
	if ka.Stats().GetPidBroadcasts == 0 {
		t.Fatal("lookup did not use broadcast")
	}
}

func TestGetPidLocalScope(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	k.Spawn("p", func(p *Process) {
		p.SetPid(7, p.Pid(), ScopeLocal)
		if got := p.GetPid(7, ScopeLocal); got != p.Pid() {
			t.Errorf("local lookup = %v", got)
		}
	})
	mustRun(t, c)
}

func TestGetPidUnknownTimesOut(t *testing.T) {
	c, ka, _ := twoStations(t, Config{})
	var got Pid = 1
	ka.Spawn("client", func(p *Process) {
		got = p.GetPid(0xDEAD, ScopeBoth)
	})
	mustRun(t, c)
	if got != vproto.Nil {
		t.Fatalf("lookup of unknown id = %v", got)
	}
}

func TestDestroyReleasesBlockedSenders(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	server := k.Spawn("server", func(p *Process) {
		p.Delay(50 * sim.Millisecond) // never receives
	})
	var err error
	k.Spawn("client", func(p *Process) {
		var m Message
		err = p.Send(&m, server.Pid())
	})
	c.Eng.Schedule(10*sim.Millisecond, "kill", func() {
		if derr := k.Destroy(server.Pid()); derr != nil {
			t.Error(derr)
		}
	})
	mustRun(t, c)
	if err != ErrNoProcess {
		t.Fatalf("sender err = %v", err)
	}
}

func TestAlienExhaustionRecovers(t *testing.T) {
	// More concurrent remote clients than alien descriptors: the kernel
	// sends reply-pending packets, clients retry, everyone completes.
	c := NewCluster(3, ether.Ethernet3Mb())
	kb := c.AddWorkstation("server", prof8(), Config{AlienDescriptors: 2})
	serverK := kb
	done := 0
	server := serverK.Spawn("fs", func(p *Process) {
		for {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			p.Delay(2 * sim.Millisecond) // hold aliens long enough to clash
			var m Message
			_ = p.Reply(&m, src)
		}
	})
	const clients = 5
	for i := 0; i < clients; i++ {
		kc := c.AddWorkstation("c", prof8(), Config{})
		kc.Spawn("client", func(p *Process) {
			var m Message
			if err := p.Send(&m, server.Pid()); err != nil {
				t.Errorf("client send: %v", err)
				return
			}
			done++
		})
	}
	c.Eng.MaxSteps = 50_000_000
	c.Eng.Schedule(30*sim.Second, "stop", func() { c.Eng.Stop() })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if done != clients {
		t.Fatalf("completed %d/%d", done, clients)
	}
}

func TestDiscoveredHostMapping(t *testing.T) {
	// 10 Mb configuration: logical hosts resolve via broadcast + learning.
	c := NewCluster(5, ether.Ethernet10Mb())
	cfg := Config{DiscoveredMapping: true}
	ka := c.AddWorkstation("a", cost.MC68000(8, cost.Iface10Mb), cfg)
	kb := c.AddWorkstation("b", cost.MC68000(8, cost.Iface10Mb), cfg)
	server := kb.Spawn("server", func(p *Process) {
		for i := 0; i < 2; i++ {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			var m Message
			_ = p.Reply(&m, src)
		}
	})
	ok := 0
	ka.Spawn("client", func(p *Process) {
		for i := 0; i < 2; i++ {
			var m Message
			if err := p.Send(&m, server.Pid()); err != nil {
				t.Error(err)
				return
			}
			ok++
		}
	})
	mustRun(t, c)
	if ok != 2 {
		t.Fatalf("exchanges = %d", ok)
	}
	// The first exchange was broadcast; the second must have been unicast
	// via the learned mapping.
	if got := c.Net.Stats().Broadcasts; got != 1 {
		t.Fatalf("broadcasts = %d, want 1 (learned mapping after first)", got)
	}
}
