package core

import (
	"fmt"

	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// State is a process descriptor state.
type State int

// Process states. Aliens move SendQueued → AwaitingReply → AlienCached.
const (
	StateRunning State = iota
	StateReceiveBlocked
	StateSendQueued    // Send executed, message not yet received
	StateAwaitingReply // message received, waiting for Reply
	StateAlienCached   // alien retained only for duplicate filtering / reply cache
	StateDead
)

var stateNames = [...]string{
	"running", "receive-blocked", "send-queued", "awaiting-reply", "alien-cached", "dead",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// parkResult is the value delivered to a parked process task.
type parkResult struct {
	sender *Process // for receivers: the sender whose message was delivered
	pid    Pid      // for GetPid waiters: the resolved pid
	err    error
}

// Process is a V kernel process descriptor. Remote senders are represented
// by alien process descriptors, which reuse this struct ("a standard kernel
// process descriptor", §3.2) but never execute.
type Process struct {
	k     *Kernel
	pid   Pid
	name  string
	task  *sim.Task
	state State

	// queue holds senders (local processes and aliens) in FCFS order.
	queue    []*Process
	queuedOn *Process // the receiver whose queue this process sits on

	// msg is the in-transit message: for a blocked sender, the sent
	// message (the segment descriptor in it stays authoritative for
	// MoveTo/MoveFrom validation); for an alien, the saved remote message.
	msg      Message
	awaiting Pid // pid this process awaits a reply from

	space    []byte
	allocPtr uint32

	// Receive-side bookkeeping while blocked in Receive.
	wantSeg    bool
	recvSegPtr uint32
	recvSegMax int

	// Sender-side bookkeeping while blocked in a remote Send.
	pendingSeq uint32

	// Alien fields.
	alien      bool
	alienSeq   uint32 // sequence number of the message the alien carries
	alienData  []byte // inline segment prefix carried with the Send packet
	replyPkt   *vproto.Packet
	forwardPkt *vproto.Packet // set when the message was forwarded onwards
	lru        int64
}

// Pid returns the process identifier.
func (p *Process) Pid() Pid { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// State returns the descriptor state (primarily for tests and diagnostics).
func (p *Process) State() State { return p.state }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// --- Address space helpers -------------------------------------------------

// Alloc reserves n bytes of the process address space and returns the
// start address. It panics when the space is exhausted (a configuration
// error in a simulation scenario).
func (p *Process) Alloc(n int) uint32 {
	if int(p.allocPtr)+n > len(p.space) {
		panic(fmt.Sprintf("vkernel: %s/%s address space exhausted", p.k.name, p.name))
	}
	a := p.allocPtr
	p.allocPtr += uint32(n)
	return a
}

// WriteSpace copies data into the process address space at addr.
func (p *Process) WriteSpace(addr uint32, data []byte) {
	copy(p.space[addr:], data)
}

// ReadSpace returns a copy of n bytes of the address space at addr.
func (p *Process) ReadSpace(addr uint32, n int) []byte {
	out := make([]byte, n)
	copy(out, p.space[addr:])
	return out
}

// Space returns the raw address space slice (for zero-copy access by
// co-resident device code; simulation only).
func (p *Process) Space() []byte { return p.space }

// removeFromQueue detaches the process from the receive queue it sits on.
func (p *Process) removeFromQueue() {
	rcv := p.queuedOn
	if rcv == nil {
		return
	}
	for i, q := range rcv.queue {
		if q == p {
			rcv.queue = append(rcv.queue[:i], rcv.queue[i+1:]...)
			break
		}
	}
	p.queuedOn = nil
}

// checkSpan reports whether [addr, addr+n) lies within the space.
func (p *Process) checkSpan(addr uint32, n uint32) bool {
	end := uint64(addr) + uint64(n)
	return end <= uint64(len(p.space))
}

// grantedSpan validates that the message msg grants access bits covering
// [addr, addr+n).
func grantedSpan(msg *Message, addr, n uint32, access byte) error {
	start, size, got, ok := msg.Segment()
	if !ok || got&access != access {
		return ErrNoAccess
	}
	if addr < start || uint64(addr)+uint64(n) > uint64(start)+uint64(size) {
		return ErrBadAddress
	}
	return nil
}

// --- Trivial kernel operations ----------------------------------------------

// GetTime returns the kernel-maintained time (§5.2's trivial operation).
func (p *Process) GetTime() sim.Time {
	p.k.cpu.Charge(p.task, p.k.prof.KernelOp, "gettime")
	return p.k.eng.Now()
}

// Delay suspends the process for d of virtual time without consuming
// processor time (modelling a device wait or timer). The timer starts
// immediately; the trap's processor cost is accounted for but overlaps the
// wait, so pending interrupt-level work proceeds under the timer.
func (p *Process) Delay(d sim.Time) {
	p.k.cpu.Run(p.k.prof.KernelOp, "delay", nil)
	p.task.Sleep(d)
}

// Compute occupies the processor on behalf of the process for d
// (application-level work).
func (p *Process) Compute(d sim.Time) {
	p.k.cpu.Charge(p.task, d, "compute")
}

// Await runs setup with a completion callback and suspends the process
// until that callback fires (from a later event — e.g. a device completion
// interrupt). It lets device models (disks) block a process without
// exposing the kernel's internal park/unpark protocol.
func (p *Process) Await(setup func(done func())) {
	setup(func() { p.task.Unpark(parkResult{}) })
	p.park("await")
}

// --- Send -------------------------------------------------------------------

// Send sends the 32-byte message to pid and blocks until the receiver
// replies; the reply overwrites *msg (§2.1). The message's segment
// descriptor, if any, governs what the receiver may access with
// MoveTo/MoveFrom or receive inline.
func (p *Process) Send(msg *Message, dst Pid) error {
	if dst == p.pid {
		return ErrDeadlock
	}
	if dst.Host() != p.k.host {
		return p.k.nonLocalSend(p, msg, dst)
	}
	k := p.k
	k.stats.LocalSends++
	k.cpu.Charge(p.task, k.prof.LocalSend, "send")
	rcv, ok := k.procs[dst]
	if !ok {
		return ErrNoProcess
	}
	p.msg = *msg
	p.awaiting = dst
	if rcv.state == StateReceiveBlocked {
		p.state = StateAwaitingReply
		rcv.state = StateRunning
		rcv.task.Unpark(parkResult{sender: p})
	} else {
		p.state = StateSendQueued
		p.queuedOn = rcv
		rcv.queue = append(rcv.queue, p)
	}
	res := p.park("send")
	if res.err != nil {
		return res.err
	}
	*msg = p.msg // reply overwrote the message area
	return nil
}

// park blocks the process task and normalizes the resume value.
func (p *Process) park(why string) parkResult {
	v := p.task.Park(why)
	res, ok := v.(parkResult)
	if !ok {
		panic(fmt.Sprintf("vkernel: %s resumed with %T", p.name, v))
	}
	return res
}

// --- Receive ----------------------------------------------------------------

// Receive blocks until a message arrives and returns it with the sender's
// pid. Messages are queued in FCFS order (§2.1).
func (p *Process) Receive() (Message, Pid, error) {
	msg, src, _, err := p.receive(false, 0, 0)
	return msg, src, err
}

// ReceiveWithSegment is Receive, but if the arriving message specifies a
// read-access segment, up to segMax bytes of it are transferred into the
// receiver's space at segPtr; count reports how many (§2.1).
func (p *Process) ReceiveWithSegment(segPtr uint32, segMax int) (Message, Pid, int, error) {
	return p.receive(true, segPtr, segMax)
}

func (p *Process) receive(wantSeg bool, segPtr uint32, segMax int) (Message, Pid, int, error) {
	k := p.k
	k.stats.Receives++
	k.cpu.Charge(p.task, k.prof.LocalReceive, "receive")
	var s *Process
	for len(p.queue) > 0 && p.queue[0].state == StateDead {
		p.queue[0].queuedOn = nil
		p.queue = p.queue[1:] // drop senders destroyed while queued
	}
	if len(p.queue) > 0 {
		s = p.queue[0]
		p.queue = p.queue[1:]
		s.queuedOn = nil
	} else {
		p.state = StateReceiveBlocked
		p.wantSeg, p.recvSegPtr, p.recvSegMax = wantSeg, segPtr, segMax
		res := p.park("receive")
		p.wantSeg = false
		if res.err != nil {
			return Message{}, vproto.Nil, 0, res.err
		}
		s = res.sender
	}
	s.state = StateAwaitingReply
	s.awaiting = p.pid
	msg := s.msg
	count := 0
	if wantSeg {
		count = p.consumeSegment(s, segPtr, segMax)
	}
	return msg, s.pid, count, nil
}

// consumeSegment implements the segment-receive side of
// ReceiveWithSegment for both local senders (direct copy out of the
// sender's space) and aliens (the inline prefix that travelled with the
// Send packet, §3.4).
func (p *Process) consumeSegment(s *Process, segPtr uint32, segMax int) int {
	k := p.k
	start, size, access, ok := s.msg.Segment()
	if !ok || access&vproto.SegFlagRead == 0 || segMax <= 0 {
		return 0
	}
	if s.alien {
		n := len(s.alienData)
		if n > segMax {
			n = segMax
		}
		if !p.checkSpan(segPtr, uint32(n)) {
			return 0
		}
		copy(p.space[segPtr:], s.alienData[:n])
		k.cpu.Charge(p.task, k.prof.SegmentRxFixed, "seg-rx")
		return n
	}
	n := int(size)
	if n > segMax {
		n = segMax
	}
	if !p.checkSpan(segPtr, uint32(n)) || !s.checkSpan(start, uint32(n)) {
		return 0
	}
	copy(p.space[segPtr:], s.space[start:start+uint32(n)])
	k.cpu.Charge(p.task, k.prof.LocalSegmentFixed+k.prof.LocalCopy(n), "seg-copy")
	return n
}

// --- Reply ------------------------------------------------------------------

// Reply sends the 32-byte reply to pid, which must be awaiting a reply
// from this process; the replier does not block (§2.1).
func (p *Process) Reply(msg *Message, dst Pid) error {
	return p.reply(msg, dst, 0, nil)
}

// ReplyWithSegment replies and also transmits data into the destination
// process's space at destPtr (§2.1). The destination must have granted
// write access covering [destPtr, destPtr+len(data)) in its request
// message. The segment must fit in one packet for remote destinations.
func (p *Process) ReplyWithSegment(msg *Message, dst Pid, destPtr uint32, data []byte) error {
	return p.reply(msg, dst, destPtr, data)
}

func (p *Process) reply(msg *Message, dst Pid, destPtr uint32, data []byte) error {
	k := p.k
	k.stats.Replies++
	var target *Process
	if a, ok := k.aliens[dst]; ok && a.state == StateAwaitingReply {
		target = a
	} else if lp, ok := k.procs[dst]; ok {
		target = lp
	} else {
		k.cpu.Charge(p.task, k.prof.LocalReply, "reply")
		return ErrNoProcess
	}
	if target.state != StateAwaitingReply || target.awaiting != p.pid {
		k.cpu.Charge(p.task, k.prof.LocalReply, "reply")
		return ErrNotAwaitingReply
	}
	if target.alien {
		return k.remoteReply(p, msg, target, destPtr, data)
	}
	// Local reply.
	k.cpu.Charge(p.task, k.prof.LocalReply, "reply")
	if len(data) > 0 {
		if err := grantedSpan(&target.msg, destPtr, uint32(len(data)), vproto.SegFlagWrite); err != nil {
			return err
		}
		if !target.checkSpan(destPtr, uint32(len(data))) {
			return ErrBadAddress
		}
		copy(target.space[destPtr:], data)
		k.cpu.Charge(p.task, k.prof.LocalSegmentFixed+k.prof.LocalCopy(len(data)), "reply-seg")
	}
	target.msg = *msg
	target.state = StateRunning
	target.task.Unpark(parkResult{})
	return nil
}
