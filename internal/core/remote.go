package core

import (
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// remoteSend tracks one outstanding remote Send from this kernel (§3.2).
type remoteSend struct {
	proc    *Process
	dst     Pid
	seq     uint32
	pkt     *vproto.Packet
	retries int
	timer   *sim.Event
}

// nonLocalSend implements Send when the pid fails the locality test: write
// an interkernel packet directly on the network, retransmit on timeout,
// treat the reply as the acknowledgement (§3.2).
func (k *Kernel) nonLocalSend(p *Process, msg *Message, dst Pid) error {
	k.stats.RemoteSends++
	k.cpu.Charge(p.task, k.prof.RemoteSendPrepare, "remote-send")

	pkt := &vproto.Packet{
		Kind: vproto.KindSend,
		Seq:  k.nextSeq(),
		Src:  p.pid,
		Dst:  dst,
		Msg:  *msg,
	}
	// §3.4: transmit the first part of a read-access segment inline.
	if start, size, access, ok := msg.Segment(); ok && access&vproto.SegFlagRead != 0 && k.cfg.InlineSegMax > 0 {
		n := int(size)
		if n > k.cfg.InlineSegMax {
			n = k.cfg.InlineSegMax
		}
		if p.checkSpan(start, uint32(n)) && n > 0 {
			pkt.Data = p.ReadSpace(start, n)
			pkt.Offset = 0
			pkt.Count = uint32(n)
			k.cpu.Charge(p.task, k.prof.SegmentTxFixed, "seg-tx")
		}
	}

	p.msg = *msg
	p.awaiting = dst
	p.state = StateAwaitingReply
	p.pendingSeq = pkt.Seq

	rs := &remoteSend{proc: p, dst: dst, seq: pkt.Seq, pkt: pkt}
	k.pending[pkt.Seq] = rs
	k.transmit(pkt, dst.Host())
	// Blocking the sender, switching away, and segment bookkeeping overlap
	// the packet flight (queued on the CPU after the interface copy).
	if len(pkt.Data) > 0 {
		k.cpu.Run(k.prof.SegmentTxOverlap, "seg-tx-overlap", nil)
	}
	if _, _, access, ok := msg.Segment(); ok && access&vproto.SegFlagWrite != 0 {
		// Pinning the granted destination buffer for a segment-carrying
		// reply happens while this process is blocked.
		k.cpu.Run(k.prof.SegmentRxOverlap, "seg-rx-pin", nil)
	}
	k.cpu.Run(k.prof.RemoteSendOverlap, "remote-send-overlap", nil)
	rs.timer = k.eng.Schedule(k.retransmitDelay(), "retransmit", func() { k.retransmit(rs) })

	res := p.park("remote-send")
	if res.err != nil {
		return res.err
	}
	*msg = p.msg
	return nil
}

// retransmit fires when no reply or reply-pending arrived in time.
func (k *Kernel) retransmit(rs *remoteSend) {
	if k.pending[rs.seq] != rs {
		return // already completed
	}
	rs.retries++
	if rs.retries > k.cfg.Retries {
		delete(k.pending, rs.seq)
		rs.proc.state = StateRunning
		rs.proc.task.Unpark(parkResult{err: ErrTimeout})
		return
	}
	k.stats.Retransmits++
	rs.pkt.Flags |= vproto.FlagRetransmit
	k.cpu.Run(k.prof.RemoteSendPrepare, "retransmit", nil)
	k.transmit(rs.pkt, rs.dst.Host())
	rs.timer = k.eng.Schedule(k.retransmitDelay(), "retransmit", func() { k.retransmit(rs) })
}

// handleSend processes an arriving KindSend packet: filter duplicates via
// the alien table, allocate an alien descriptor, and queue or deliver the
// message to the destination process (§3.2).
func (k *Kernel) handleSend(pkt *vproto.Packet) {
	k.cpu.Run(k.prof.RemoteDeliver, "deliver", func() { k.deliverSend(pkt) })
}

func (k *Kernel) deliverSend(pkt *vproto.Packet) {
	if a, ok := k.aliens[pkt.Src]; ok {
		switch {
		case pkt.Seq == a.alienSeq:
			// Retransmission of the message the alien carries.
			k.stats.DupsFiltered++
			switch {
			case a.replyPkt != nil:
				// Retransmit the cached reply (§3.2).
				k.stats.RemoteReplies++
				k.transmit(a.replyPkt, pkt.Src.Host())
			case a.forwardPkt != nil:
				// The message was forwarded onwards; push the forward
				// down the chain again and keep the origin patient.
				k.transmit(a.forwardPkt, a.awaiting.Host())
				k.sendReplyPending(pkt)
			default:
				k.sendReplyPending(pkt)
			}
			return
		case pkt.Seq-a.alienSeq > 1<<31:
			// Older than the alien's message: stale duplicate.
			k.stats.DupsFiltered++
			return
		default:
			// A newer message from the same sender: the old exchange is
			// finished (the sender would not have moved on otherwise), so
			// reuse the descriptor. If the old message was never consumed
			// (sender timed out and moved on), detach it first.
			switch a.state {
			case StateSendQueued:
				a.removeFromQueue()
				k.initAlien(a, pkt)
			case StateAwaitingReply:
				// The receiver is still processing the old message; orphan
				// the old alien (the eventual Reply will find no target)
				// and start fresh.
				k.releaseAlien(a)
				k.deliverSend(pkt)
			default: // cached
				k.initAlien(a, pkt)
			}
			return
		}
	}
	if len(k.aliens) >= k.cfg.AlienDescriptors {
		if !k.evictAlien() {
			// No descriptor available: discard and tell the sender to
			// wait (§3.2).
			k.stats.AlienExhaustion++
			k.sendReplyPending(pkt)
			return
		}
	}
	a := &Process{
		k:     k,
		pid:   pkt.Src,
		name:  "alien:" + pkt.Src.String(),
		alien: true,
	}
	k.aliens[pkt.Src] = a
	k.initAlien(a, pkt)
}

// initAlien loads a (new or reused) alien descriptor from a Send packet
// and queues it on the destination process.
func (k *Kernel) initAlien(a *Process, pkt *vproto.Packet) {
	k.alienLRU++
	a.lru = k.alienLRU
	a.alienSeq = pkt.Seq
	a.msg = pkt.Msg
	a.alienData = pkt.Data
	a.replyPkt = nil
	a.forwardPkt = nil
	rcv, ok := k.procs[pkt.Dst]
	if !ok {
		k.sendNack(a)
		k.releaseAlien(a)
		return
	}
	if rcv.state == StateReceiveBlocked {
		a.state = StateAwaitingReply // will be finalized by the receiver
		rcv.state = StateRunning
		rcv.task.Unpark(parkResult{sender: a})
		return
	}
	a.state = StateSendQueued
	a.queuedOn = rcv
	rcv.queue = append(rcv.queue, a)
}

// evictAlien reclaims the least recently used cached alien, if any.
func (k *Kernel) evictAlien() bool {
	var victim *Process
	for _, a := range k.aliens {
		if a.state != StateAlienCached {
			continue
		}
		if victim == nil || a.lru < victim.lru {
			victim = a
		}
	}
	if victim == nil {
		return false
	}
	k.releaseAlien(victim)
	return true
}

func (k *Kernel) releaseAlien(a *Process) {
	a.state = StateDead
	delete(k.aliens, a.pid)
}

// sendReplyPending tells the sending kernel to keep waiting (§3.2).
func (k *Kernel) sendReplyPending(pkt *vproto.Packet) {
	k.stats.ReplyPendingsSent++
	k.transmit(&vproto.Packet{
		Kind: vproto.KindReplyPending,
		Seq:  pkt.Seq,
		Src:  pkt.Dst,
		Dst:  pkt.Src,
	}, pkt.Src.Host())
}

// sendNack reports a nonexistent destination process (§3.2).
func (k *Kernel) sendNack(a *Process) {
	k.stats.NacksSent++
	k.transmit(&vproto.Packet{
		Kind: vproto.KindNack,
		Seq:  a.alienSeq,
		Dst:  a.pid,
	}, a.pid.Host())
}

// remoteReply implements Reply / ReplyWithSegment to an alien: transmit
// the reply packet (data appended for ReplyWithSegment, §3.4), cache it in
// the alien for retransmission filtering, and ready nothing locally — the
// replier does not block.
func (k *Kernel) remoteReply(p *Process, msg *Message, a *Process, destPtr uint32, data []byte) error {
	k.stats.RemoteReplies++
	if len(data) > vproto.MaxData {
		k.cpu.Charge(p.task, k.prof.LocalReply, "reply")
		return ErrSegTooBig
	}
	if len(data) > 0 {
		// The destination must have granted write access in its request.
		if err := grantedSpan(&a.msg, destPtr, uint32(len(data)), vproto.SegFlagWrite); err != nil {
			k.cpu.Charge(p.task, k.prof.LocalReply, "reply")
			return err
		}
	}
	k.cpu.Charge(p.task, k.prof.RemoteReplyPrepare, "remote-reply")
	pkt := &vproto.Packet{
		Kind:   vproto.KindReply,
		Seq:    a.alienSeq,
		Src:    p.pid,
		Dst:    a.pid,
		Offset: destPtr,
		Count:  uint32(len(data)),
		Msg:    *msg,
	}
	if len(data) > 0 {
		pkt.Data = append([]byte(nil), data...)
		k.cpu.Charge(p.task, k.prof.SegmentTxFixed, "reply-seg-tx")
	}
	a.replyPkt = pkt
	a.state = StateAlienCached
	k.transmit(pkt, a.pid.Host())
	// With programmed I/O the kernel itself copies the packet into the
	// interface, so Reply returns only once the copy is done.
	k.cpu.Charge(p.task, 0, "reply-sync")
	// Reply caching, segment bookkeeping and timer teardown overlap the
	// packet flight (queued on the CPU after the interface copy).
	if len(data) > 0 {
		k.cpu.Run(k.prof.SegmentTxOverlap, "reply-seg-overlap", nil)
	}
	k.cpu.Run(k.prof.RemoteReplyCleanup, "reply-cleanup", nil)
	return nil
}

// handleReply completes an outstanding remote Send.
func (k *Kernel) handleReply(pkt *vproto.Packet) {
	rs, ok := k.pending[pkt.Seq]
	if !ok || rs.proc.pid != pkt.Dst {
		k.stats.DupsFiltered++ // late duplicate reply
		return
	}
	k.cpu.Run(k.prof.RemoteSendComplete, "send-complete", func() { k.completeSend(rs, pkt) })
}

func (k *Kernel) completeSend(rs *remoteSend, pkt *vproto.Packet) {
	if k.pending[rs.seq] != rs {
		return
	}
	delete(k.pending, rs.seq)
	rs.timer.Cancel()
	p := rs.proc
	p.msg = pkt.Msg
	if len(pkt.Data) > 0 {
		// ReplyWithSegment data: write through the write-access grant made
		// in the original request message.
		if grantedSpan(&rs.pkt.Msg, pkt.Offset, uint32(len(pkt.Data)), vproto.SegFlagWrite) == nil &&
			p.checkSpan(pkt.Offset, uint32(len(pkt.Data))) {
			copy(p.space[pkt.Offset:], pkt.Data)
		}
		// Handling the appended segment delays the sender's release.
		k.cpu.Run(k.prof.SegmentRxFixed, "reply-seg-rx", func() {
			p.state = StateRunning
			p.task.Unpark(parkResult{})
		})
		return
	}
	p.state = StateRunning
	p.task.Unpark(parkResult{})
}

// handleReplyPending resets the retransmission count: the receiver is
// alive but has not replied yet (§3.2).
func (k *Kernel) handleReplyPending(pkt *vproto.Packet) {
	k.stats.ReplyPendingsSeen++
	rs, ok := k.pending[pkt.Seq]
	if !ok {
		return
	}
	k.cpu.Run(k.prof.KernelOp, "reply-pending", nil)
	rs.retries = 0
	rs.timer.Cancel()
	rs.timer = k.eng.Schedule(k.retransmitDelay(), "retransmit", func() { k.retransmit(rs) })
}

// handleNack fails an outstanding Send: the destination does not exist.
func (k *Kernel) handleNack(pkt *vproto.Packet) {
	rs, ok := k.pending[pkt.Seq]
	if !ok || rs.proc.pid != pkt.Dst {
		return
	}
	delete(k.pending, rs.seq)
	rs.timer.Cancel()
	k.cpu.Run(k.prof.KernelOp, "nack", func() {
		rs.proc.state = StateRunning
		rs.proc.task.Unpark(parkResult{err: ErrNoProcess})
	})
}
