package core

import (
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// Bulk data transfer (§3.3). MoveTo streams maximally-sized data packets
// back to back and waits for a single acknowledgement when the transfer is
// complete; MoveFrom sends a request that is acknowledged by the requested
// data packets — "essentially the reverse of MoveTo". Retransmission
// resumes from the last correctly received data packet to avoid repeating
// identical back-to-back failures.

type moveKind int

const (
	moveTo moveKind = iota
	moveFrom
)

// moveOp is an outstanding bulk transfer initiated on this kernel.
type moveOp struct {
	kind    moveKind
	p       *Process
	peer    Pid
	seq     uint32
	local   uint32 // local address: MoveTo source / MoveFrom destination
	remote  uint32 // remote address: MoveTo destination / MoveFrom source
	count   uint32
	got     uint32 // MoveFrom: contiguously received bytes
	retries int
	timer   *sim.Event
}

// moveRx tracks an in-progress inbound MoveTo transfer.
type moveRx struct {
	base     uint32 // destination base address
	count    uint32
	expected uint32
}

// MoveTo copies count bytes from srcAddr in this process's space to
// destAddr in the space of dst, which must be awaiting a reply from this
// process and must have granted write access covering the destination
// range (§2.1).
func (p *Process) MoveTo(dst Pid, destAddr, srcAddr uint32, count uint32) error {
	k := p.k
	k.stats.MoveToOps++
	k.stats.MoveBytes += int64(count)
	if !p.checkSpan(srcAddr, count) {
		k.cpu.Charge(p.task, k.prof.KernelOp, "moveto")
		return ErrBadAddress
	}
	target, alien, err := k.moveTarget(p, dst)
	if err != nil {
		k.cpu.Charge(p.task, k.prof.KernelOp, "moveto")
		return err
	}
	if err := grantedSpan(&target.msg, destAddr, count, vproto.SegFlagWrite); err != nil {
		k.cpu.Charge(p.task, k.prof.KernelOp, "moveto")
		return err
	}
	if count == 0 {
		k.cpu.Charge(p.task, k.prof.KernelOp, "moveto")
		return nil
	}
	if !alien {
		// Local: a direct copy between address spaces, no kernel buffering.
		k.cpu.Charge(p.task, k.prof.LocalMoveFixed+k.prof.LocalCopy(int(count)), "moveto")
		if !target.checkSpan(destAddr, count) {
			return ErrBadAddress
		}
		copy(target.space[destAddr:], p.space[srcAddr:srcAddr+count])
		return nil
	}
	k.cpu.Charge(p.task, k.prof.MoveSetup, "moveto-setup")
	op := &moveOp{kind: moveTo, p: p, peer: dst, seq: k.nextSeq(), local: srcAddr, remote: destAddr, count: count}
	k.moves[op.seq] = op
	k.streamMoveTo(op, 0)
	// Transfer bookkeeping overlaps the wire while we wait for the ack.
	k.cpu.Run(k.prof.MoveMoverOverlap, "moveto-overlap", nil)
	op.timer = k.eng.Schedule(k.retransmitDelay(), "moveto-timeout", func() { k.moveTimeout(op) })
	res := p.park("moveto")
	return res.err
}

// MoveFrom copies count bytes from srcAddr in the space of src — which
// must be awaiting a reply from this process and must have granted read
// access — to destAddr in this process's space (§2.1).
func (p *Process) MoveFrom(src Pid, destAddr, srcAddr uint32, count uint32) error {
	k := p.k
	k.stats.MoveFromOps++
	k.stats.MoveBytes += int64(count)
	if !p.checkSpan(destAddr, count) {
		k.cpu.Charge(p.task, k.prof.KernelOp, "movefrom")
		return ErrBadAddress
	}
	target, alien, err := k.moveTarget(p, src)
	if err != nil {
		k.cpu.Charge(p.task, k.prof.KernelOp, "movefrom")
		return err
	}
	if err := grantedSpan(&target.msg, srcAddr, count, vproto.SegFlagRead); err != nil {
		k.cpu.Charge(p.task, k.prof.KernelOp, "movefrom")
		return err
	}
	if count == 0 {
		k.cpu.Charge(p.task, k.prof.KernelOp, "movefrom")
		return nil
	}
	if !alien {
		k.cpu.Charge(p.task, k.prof.LocalMoveFixed+k.prof.LocalCopy(int(count)), "movefrom")
		if !target.checkSpan(srcAddr, count) {
			return ErrBadAddress
		}
		copy(p.space[destAddr:], target.space[srcAddr:srcAddr+count])
		return nil
	}
	k.cpu.Charge(p.task, k.prof.MoveSetup, "movefrom-setup")
	op := &moveOp{kind: moveFrom, p: p, peer: src, seq: k.nextSeq(), local: destAddr, remote: srcAddr, count: count}
	k.moves[op.seq] = op
	k.sendMoveFromReq(op)
	k.cpu.Run(k.prof.MoveMoverOverlap, "movefrom-overlap", nil)
	op.timer = k.eng.Schedule(k.retransmitDelay(), "movefrom-timeout", func() { k.moveTimeout(op) })
	res := p.park("movefrom")
	return res.err
}

// moveTarget resolves the peer of a bulk transfer: a local process or an
// alien descriptor, in either case required to be awaiting a reply from p.
func (k *Kernel) moveTarget(p *Process, pid Pid) (*Process, bool, error) {
	if a, ok := k.aliens[pid]; ok && a.state == StateAwaitingReply && a.awaiting == p.pid {
		return a, true, nil
	}
	if lp, ok := k.procs[pid]; ok {
		if lp.state != StateAwaitingReply || lp.awaiting != p.pid {
			return nil, false, ErrNotAwaitingReply
		}
		return lp, false, nil
	}
	return nil, false, ErrNoProcess
}

// streamMoveTo transmits data packets back to back starting at offset from
// (resuming there after a partial ack).
func (k *Kernel) streamMoveTo(op *moveOp, from uint32) {
	chunk := uint32(k.cfg.ChunkSize)
	for off := from; off < op.count; off += chunk {
		n := op.count - off
		if n > chunk {
			n = chunk
		}
		pkt := &vproto.Packet{
			Kind:   vproto.KindMoveToData,
			Seq:    op.seq,
			Src:    op.p.pid,
			Dst:    op.peer,
			Offset: off,
			Count:  op.count,
			Data:   op.p.ReadSpace(op.local+off, int(n)),
		}
		pkt.Msg.SetWord(wordMoveBase, op.remote) // destination base address
		if off+n == op.count {
			pkt.Flags |= vproto.FlagLast
		}
		k.cpu.Run(k.prof.MovePerPacket, "moveto-pkt", nil)
		k.transmit(pkt, op.peer.Host())
	}
}

// resendLast retransmits only the final data packet to re-elicit an ack
// carrying the receiver's progress.
func (k *Kernel) resendLast(op *moveOp) {
	chunk := uint32(k.cfg.ChunkSize)
	last := (op.count - 1) / chunk * chunk
	k.streamMoveTo(op, last)
}

func (k *Kernel) sendMoveFromReq(op *moveOp) {
	pkt := &vproto.Packet{
		Kind:   vproto.KindMoveFromReq,
		Seq:    op.seq,
		Src:    op.p.pid,
		Dst:    op.peer,
		Offset: op.got, // resume point
		Count:  op.count,
	}
	pkt.Msg.SetWord(wordMoveBase, op.remote) // source base address
	k.transmit(pkt, op.peer.Host())
}

// moveTimeout drives retransmission for both transfer directions.
func (k *Kernel) moveTimeout(op *moveOp) {
	if k.moves[op.seq] != op {
		return
	}
	op.retries++
	if op.retries > k.cfg.Retries {
		delete(k.moves, op.seq)
		op.p.task.Unpark(parkResult{err: ErrTimeout})
		return
	}
	k.stats.Retransmits++
	switch op.kind {
	case moveTo:
		k.resendLast(op)
	case moveFrom:
		k.sendMoveFromReq(op)
	}
	op.timer = k.eng.Schedule(k.retransmitDelay(), "move-timeout", func() { k.moveTimeout(op) })
}

// handleMoveToData runs on the kernel of the process receiving a MoveTo:
// data goes directly from the packet into the destination address space.
func (k *Kernel) handleMoveToData(pkt *vproto.Packet) {
	proc, ok := k.procs[pkt.Dst]
	if !ok || proc.state != StateAwaitingReply || proc.awaiting != pkt.Src {
		k.stats.BadPackets++
		return
	}
	base := pkt.Msg.Word(wordMoveBase)
	if grantedSpan(&proc.msg, base, pkt.Count, vproto.SegFlagWrite) != nil || !proc.checkSpan(base, pkt.Count) {
		k.stats.BadPackets++
		return
	}
	key := moveKey{src: pkt.Src, seq: pkt.Seq}
	st := k.moveRx[key]
	if st == nil {
		if d, ok := k.moveDone[pkt.Src]; ok && d.seq == pkt.Seq {
			// Transfer already completed; the ack must have been lost.
			if pkt.Flags&vproto.FlagLast != 0 {
				k.sendMoveAck(pkt, d.count, true)
			}
			return
		}
		st = &moveRx{base: base, count: pkt.Count}
		k.moveRx[key] = st
	}
	if pkt.Offset == st.expected {
		k.cpu.Run(k.prof.MoveRxPerPacket, "moveto-rx", nil)
		copy(proc.space[base+pkt.Offset:], pkt.Data)
		st.expected += uint32(len(pkt.Data))
	}
	// Packets beyond the expected offset indicate a gap: drop them; the
	// sender resumes from st.expected when it sees our ack.
	if pkt.Flags&vproto.FlagLast != 0 {
		complete := st.expected >= st.count
		if complete {
			k.moveDone[pkt.Src] = doneTransfer{seq: pkt.Seq, count: st.count}
			delete(k.moveRx, key)
			k.cpu.Run(k.prof.MoveDataDeliver, "moveto-ack", nil)
		}
		k.sendMoveAck(pkt, st.expected, complete)
		if complete {
			// Grantor-side buffer bookkeeping overlaps the ack flight.
			k.cpu.Run(k.prof.MoveGrantorOverlap, "moveto-grantor-overlap", nil)
		}
	}
}

func (k *Kernel) sendMoveAck(pkt *vproto.Packet, received uint32, complete bool) {
	ack := &vproto.Packet{
		Kind:   vproto.KindMoveToAck,
		Seq:    pkt.Seq,
		Src:    pkt.Dst,
		Dst:    pkt.Src,
		Offset: received,
	}
	if complete {
		ack.Flags |= vproto.FlagLast
	}
	k.transmit(ack, pkt.Src.Host())
}

// handleMoveAck completes or resumes an outstanding MoveTo.
func (k *Kernel) handleMoveAck(pkt *vproto.Packet) {
	op, ok := k.moves[pkt.Seq]
	if !ok || op.kind != moveTo {
		return
	}
	if pkt.Flags&vproto.FlagLast != 0 && pkt.Offset >= op.count {
		delete(k.moves, op.seq)
		op.timer.Cancel()
		k.cpu.Run(k.prof.MoveComplete, "moveto-done", func() {
			op.p.task.Unpark(parkResult{})
		})
		return
	}
	// Partial: resume from the last correctly received byte (§3.3).
	op.retries = 0
	op.timer.Cancel()
	k.streamMoveTo(op, pkt.Offset)
	op.timer = k.eng.Schedule(k.retransmitDelay(), "moveto-timeout", func() { k.moveTimeout(op) })
}

// handleMoveFromReq runs on the kernel owning the data: validate the grant
// and stream the requested range back; the data packets are the
// acknowledgement of the request.
func (k *Kernel) handleMoveFromReq(pkt *vproto.Packet) {
	proc, ok := k.procs[pkt.Dst]
	if !ok || proc.state != StateAwaitingReply || proc.awaiting != pkt.Src {
		k.stats.BadPackets++
		return
	}
	base := pkt.Msg.Word(wordMoveBase)
	if grantedSpan(&proc.msg, base, pkt.Count, vproto.SegFlagRead) != nil || !proc.checkSpan(base, pkt.Count) {
		k.stats.BadPackets++
		return
	}
	k.cpu.Run(k.prof.MoveDataDeliver, "movefrom-serve", nil)
	defer k.cpu.Run(k.prof.MoveGrantorOverlap, "movefrom-grantor-overlap", nil)
	chunk := uint32(k.cfg.ChunkSize)
	for off := pkt.Offset; off < pkt.Count; off += chunk {
		n := pkt.Count - off
		if n > chunk {
			n = chunk
		}
		out := &vproto.Packet{
			Kind:   vproto.KindMoveFromData,
			Seq:    pkt.Seq,
			Src:    pkt.Dst,
			Dst:    pkt.Src,
			Offset: off,
			Count:  pkt.Count,
			Data:   proc.ReadSpace(base+off, int(n)),
		}
		if off+n == pkt.Count {
			out.Flags |= vproto.FlagLast
		}
		k.cpu.Run(k.prof.MovePerPacket, "movefrom-pkt", nil)
		k.transmit(out, pkt.Src.Host())
	}
}

// handleMoveFromData accumulates streamed data into the requester's space.
func (k *Kernel) handleMoveFromData(pkt *vproto.Packet) {
	op, ok := k.moves[pkt.Seq]
	if !ok || op.kind != moveFrom {
		return
	}
	if pkt.Offset == op.got {
		k.cpu.Run(k.prof.MoveRxPerPacket, "movefrom-rx", nil)
		copy(op.p.space[op.local+pkt.Offset:], pkt.Data)
		op.got += uint32(len(pkt.Data))
	}
	if op.got >= op.count {
		delete(k.moves, op.seq)
		op.timer.Cancel()
		k.cpu.Run(k.prof.MoveComplete, "movefrom-done", func() {
			op.p.task.Unpark(parkResult{})
		})
		return
	}
	if pkt.Flags&vproto.FlagLast != 0 {
		// The stream ended but we have a gap: re-request immediately from
		// the last correctly received byte.
		op.retries = 0
		op.timer.Cancel()
		k.sendMoveFromReq(op)
		op.timer = k.eng.Schedule(k.retransmitDelay(), "movefrom-timeout", func() { k.moveTimeout(op) })
	}
}
