// Package core implements the distributed V kernel on the simulated
// workstation hardware: small processes communicating by 32-byte messages
// with synchronous Send/Receive/Reply, separate bulk data transfer
// (MoveTo/MoveFrom), the segment extensions (ReceiveWithSegment /
// ReplyWithSegment), and a flat global process naming space with an
// embedded logical-host field (paper §2–§3).
//
// One Kernel runs per simulated workstation. Remote operations are
// implemented directly in the kernel (no process-level network server):
// when a pid fails the locality test, the operation writes an interkernel
// packet straight to the network interface. Reliable message transmission
// is built on the unreliable datagram layer using the reply as the
// acknowledgement, alien process descriptors for duplicate filtering and
// reply caching, reply-pending packets, and bounded retransmission.
package core

import (
	"errors"
	"fmt"

	"vkernel/internal/cost"
	"vkernel/internal/cpu"
	"vkernel/internal/ether"
	"vkernel/internal/nic"
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// Re-exported protocol types, so kernel users need only this package.
type (
	// Pid is a 32-bit globally unique process identifier.
	Pid = vproto.Pid
	// LogicalHost is the host subfield of a Pid.
	LogicalHost = vproto.LogicalHost
	// Message is the fixed 32-byte V message.
	Message = vproto.Message
)

// Kernel operation errors.
var (
	ErrNoProcess        = errors.New("vkernel: no such process")
	ErrTimeout          = errors.New("vkernel: retransmission limit exceeded")
	ErrNotAwaitingReply = errors.New("vkernel: process not awaiting reply from replier")
	ErrBadAddress       = errors.New("vkernel: address outside granted segment")
	ErrNoAccess         = errors.New("vkernel: segment access not granted")
	ErrSegTooBig        = errors.New("vkernel: segment exceeds one packet")
	ErrDeadlock         = errors.New("vkernel: send to self would deadlock")
	ErrDestroyed        = errors.New("vkernel: process destroyed")
)

// Scope selects the visibility of a logical-id registration (§2.1 SetPid).
type Scope int

// Name-service scopes.
const (
	ScopeLocal Scope = 1 << iota
	ScopeRemote
	ScopeBoth Scope = ScopeLocal | ScopeRemote
)

// Well-known logical ids (§2.1 gives fileserver and nameserver as examples).
const (
	LogicalFileServer uint32 = 1
	LogicalNameServer uint32 = 2
)

// Config carries per-kernel tunables. The zero value gets sensible
// defaults from fillDefaults.
type Config struct {
	// AlienDescriptors bounds the alien (remote-sender) descriptor pool.
	AlienDescriptors int
	// RetransmitTimeout is the kernel-level message retransmission period.
	RetransmitTimeout sim.Time
	// Retries is the number of retransmissions before a Send fails (§3.2's N).
	Retries int
	// GetPidTimeout/GetPidRetries bound broadcast name lookups.
	GetPidTimeout sim.Time
	GetPidRetries int
	// ChunkSize is the bulk-transfer packet payload ("maximally-sized
	// packets", §3.3).
	ChunkSize int
	// InlineSegMax bounds the segment prefix carried inside a Send packet
	// (§3.4; at least a file block so a page write is one exchange).
	// Negative disables the inline-segment extension entirely — the
	// original Thoth behaviour, used by the §6.1 ablation.
	InlineSegMax int
	// DiscoveredMapping, when true, resolves logical hosts to network
	// addresses through a table learned from traffic, with broadcast
	// fallback (the 10 Mb configuration, §3.1). When false (default) the
	// network address is derived from the logical-host field directly
	// (the 3 Mb configuration).
	DiscoveredMapping bool
	// SpaceSize is the default process address-space size.
	SpaceSize int
	// NIC configures the network interface model.
	NIC nic.Config

	// Ablations (all off for the calibrated kernel).
	// ViaNetworkServer models relaying remote operations through a
	// process-level network server (§3 item 1: "a factor of four").
	ViaNetworkServer bool
	// IPLayer models wrapping interkernel packets in internet headers
	// (§3 item 2: ~20 % slower exchanges).
	IPLayer bool
}

func (c Config) fillDefaults() Config {
	if c.AlienDescriptors == 0 {
		c.AlienDescriptors = 64
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 100 * sim.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 5
	}
	if c.GetPidTimeout == 0 {
		c.GetPidTimeout = 20 * sim.Millisecond
	}
	if c.GetPidRetries == 0 {
		c.GetPidRetries = 3
	}
	if c.ChunkSize == 0 || c.ChunkSize > vproto.MaxData {
		c.ChunkSize = vproto.MaxData
	}
	switch {
	case c.InlineSegMax < 0:
		c.InlineSegMax = 0
	case c.InlineSegMax == 0 || c.InlineSegMax > vproto.MaxData:
		c.InlineSegMax = vproto.MaxData
	}
	if c.SpaceSize == 0 {
		c.SpaceSize = 256 * 1024
	}
	return c
}

// Stats counts kernel-level activity.
type Stats struct {
	LocalSends        int
	RemoteSends       int
	Receives          int
	Replies           int
	Forwards          int
	RemoteReplies     int
	Retransmits       int
	ReplyPendingsSent int
	ReplyPendingsSeen int
	NacksSent         int
	DupsFiltered      int
	MoveToOps         int
	MoveFromOps       int
	MoveBytes         int64
	GetPidBroadcasts  int
	AlienExhaustion   int
	BadPackets        int
}

type nameEntry struct {
	pid   Pid
	scope Scope
}

// Kernel is the V kernel instance on one workstation.
type Kernel struct {
	eng  *sim.Engine
	name string
	host LogicalHost
	prof cost.Profile
	cfg  Config
	cpu  *cpu.CPU
	nic  *nic.NIC
	net  *ether.Network

	nextLocal uint16
	procs     map[Pid]*Process

	names map[uint32]nameEntry

	seq      uint32
	pending  map[uint32]*remoteSend // outstanding remote Sends by seq
	aliens   map[Pid]*Process       // alien descriptors by remote sender pid
	alienLRU int64
	hostMap  map[LogicalHost]ether.Addr
	moves    map[uint32]*moveOp   // outstanding bulk transfers initiated here
	moveRx   map[moveKey]*moveRx  // in-progress inbound MoveTo transfers
	moveDone map[Pid]doneTransfer // last completed inbound transfer per source
	lookups  map[uint32][]*lookup // outstanding GetPid broadcasts by logical id

	stats Stats
}

type moveKey struct {
	src Pid
	seq uint32
}

type doneTransfer struct {
	seq   uint32
	count uint32
}

// NewKernel boots a kernel on the given network with the given calibration
// profile. The logical host id doubles as the station address under
// DirectMapping.
func NewKernel(eng *sim.Engine, net *ether.Network, name string, host LogicalHost, prof cost.Profile, cfg Config) *Kernel {
	k := &Kernel{
		eng:      eng,
		name:     name,
		host:     host,
		prof:     prof,
		cfg:      cfg.fillDefaults(),
		net:      net,
		procs:    make(map[Pid]*Process),
		names:    make(map[uint32]nameEntry),
		pending:  make(map[uint32]*remoteSend),
		aliens:   make(map[Pid]*Process),
		hostMap:  make(map[LogicalHost]ether.Addr),
		moves:    make(map[uint32]*moveOp),
		moveRx:   make(map[moveKey]*moveRx),
		moveDone: make(map[Pid]doneTransfer),
		lookups:  make(map[uint32][]*lookup),
	}
	k.cpu = cpu.New(eng, name)
	k.nic = nic.New(eng, k.cpu, prof, k.cfg.NIC, net, ether.Addr(host), k.handleFrame)
	return k
}

// Name returns the workstation name.
func (k *Kernel) Name() string { return k.name }

// Host returns the kernel's logical host identifier.
func (k *Kernel) Host() LogicalHost { return k.host }

// CPU exposes the workstation processor (for utilization measurement).
func (k *Kernel) CPU() *cpu.CPU { return k.cpu }

// NIC exposes the network interface (for statistics).
func (k *Kernel) NIC() *nic.NIC { return k.nic }

// Profile returns the kernel's calibration profile.
func (k *Kernel) Profile() cost.Profile { return k.prof }

// Stats returns a copy of the kernel's counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Spawn creates a process and schedules its body. The body runs in a
// simulated task; all kernel primitives must be called from it.
func (k *Kernel) Spawn(name string, body func(p *Process)) *Process {
	k.nextLocal++
	if k.nextLocal == 0 {
		panic("vkernel: local pid space exhausted")
	}
	pid := vproto.MakePid(k.host, k.nextLocal)
	p := &Process{
		k:     k,
		pid:   pid,
		name:  name,
		state: StateRunning,
		space: make([]byte, k.cfg.SpaceSize),
	}
	k.procs[pid] = p
	p.task = k.eng.Spawn(fmt.Sprintf("%s/%s", k.name, name), func(t *sim.Task) {
		body(p)
		p.state = StateDead
		delete(k.procs, pid)
	})
	return p
}

// Lookup returns the local process with the given pid, if any.
func (k *Kernel) Lookup(pid Pid) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// Destroy removes a local process. Any process blocked sending to it is
// released with ErrNoProcess; a parked victim is released with
// ErrDestroyed (its body should return promptly).
func (k *Kernel) Destroy(pid Pid) error {
	p, ok := k.procs[pid]
	if !ok {
		return ErrNoProcess
	}
	delete(k.procs, pid)
	p.state = StateDead
	// Release queued senders.
	for _, s := range p.queue {
		k.failSender(s, ErrNoProcess)
	}
	p.queue = nil
	if p.task != nil && p.task.Parked() {
		p.task.Unpark(parkResult{err: ErrDestroyed})
	}
	return nil
}

// failSender releases a sender (local or alien) with an error.
func (k *Kernel) failSender(s *Process, err error) {
	if s.alien {
		// Remote sender: negative acknowledgement.
		k.sendNack(s)
		k.releaseAlien(s)
		return
	}
	s.state = StateRunning
	s.task.Unpark(parkResult{err: err})
}

// SetPidKernel registers a logical-id → pid mapping outside any process
// context (used at boot by experiment harnesses).
func (k *Kernel) SetPidKernel(logicalID uint32, pid Pid, scope Scope) {
	k.names[logicalID] = nameEntry{pid: pid, scope: scope}
}

// addrForHost maps a logical host to a station address, reporting whether
// the mapping is known. Under DirectMapping the address is derived from
// the host field itself (§3.1: "the top bits of the logical host
// identifier are the physical network address").
func (k *Kernel) addrForHost(h LogicalHost) (ether.Addr, bool) {
	if !k.cfg.DiscoveredMapping {
		return ether.Addr(h), true
	}
	a, ok := k.hostMap[h]
	return a, ok
}

// transmit encodes and sends an interkernel packet, broadcasting when the
// destination host is unknown (§3.1).
func (k *Kernel) transmit(pkt *vproto.Packet, toHost LogicalHost) {
	buf, err := pkt.Encode()
	if err != nil {
		panic("vkernel: " + err.Error())
	}
	dst := ether.BroadcastAddr
	if a, ok := k.addrForHost(toHost); ok {
		dst = a
	}
	if k.cfg.IPLayer {
		// Ablation: internet headers cost processor time at each end and
		// 20 bytes on the wire (carried as a trailer here so the checksum
		// stays over the interkernel packet).
		k.cpu.Run(k.prof.IPPerPacket, "ip:encap", nil)
		wrapped := make([]byte, len(buf)+20)
		copy(wrapped, buf)
		buf = wrapped
	}
	if k.cfg.ViaNetworkServer {
		// Ablation: relay through a process-level network server — extra
		// copying and process switching before the packet reaches the wire.
		k.cpu.Run(k.prof.NetServerRelay, "netserver:relay", nil)
	}
	k.nic.Send(ether.Frame{Dst: dst, Bytes: len(buf) + wireOverhead(k.cfg), Payload: buf})
}

func wireOverhead(cfg Config) int {
	if cfg.IPLayer {
		return 0 // the 20 IP bytes were appended to the payload already
	}
	return 0
}

// broadcast transmits an interkernel packet to every station.
func (k *Kernel) broadcast(pkt *vproto.Packet) {
	buf, err := pkt.Encode()
	if err != nil {
		panic("vkernel: " + err.Error())
	}
	k.nic.Send(ether.Frame{Dst: ether.BroadcastAddr, Bytes: len(buf), Payload: buf})
}

// handleFrame is the NIC receive upcall: decode and dispatch.
func (k *Kernel) handleFrame(f ether.Frame) {
	buf := f.Payload
	if k.cfg.IPLayer {
		if len(buf) < 20 {
			k.stats.BadPackets++
			return
		}
		k.cpu.Run(k.prof.IPPerPacket, "ip:decap", nil)
		buf = buf[:len(buf)-20]
	}
	if k.cfg.ViaNetworkServer {
		k.cpu.Run(k.prof.NetServerRelay, "netserver:relay-rx", nil)
	}
	pkt, err := vproto.Decode(buf)
	if err != nil {
		k.stats.BadPackets++
		return
	}
	// Discover logical-host → station mappings from traffic (§3.1).
	if k.cfg.DiscoveredMapping {
		k.hostMap[pkt.Src.Host()] = f.Src
	}
	k.dispatch(pkt)
}

func (k *Kernel) dispatch(pkt *vproto.Packet) {
	// Packets addressed to a process are only meaningful on the kernel of
	// that process's logical host; a broadcast fallback (unknown host
	// mapping) reaches every station and the others must stay silent.
	switch pkt.Kind {
	case vproto.KindGetPid:
		// Broadcast by design; any kernel may answer.
	default:
		if pkt.Dst.Host() != k.host {
			return
		}
	}
	switch pkt.Kind {
	case vproto.KindSend:
		k.handleSend(pkt)
	case vproto.KindReply:
		k.handleReply(pkt)
	case vproto.KindReplyPending:
		k.handleReplyPending(pkt)
	case vproto.KindNack:
		k.handleNack(pkt)
	case vproto.KindMoveToData:
		k.handleMoveToData(pkt)
	case vproto.KindMoveToAck:
		k.handleMoveAck(pkt)
	case vproto.KindMoveFromReq:
		k.handleMoveFromReq(pkt)
	case vproto.KindMoveFromData:
		k.handleMoveFromData(pkt)
	case vproto.KindGetPid:
		k.handleGetPid(pkt)
	case vproto.KindGetPidReply:
		k.handleGetPidReply(pkt)
	default:
		k.stats.BadPackets++
	}
}

// retransmitDelay returns the retransmission timeout with a small random
// component, modelling timer-tick skew between independent workstation
// clocks (without it, kernels that lose packets to the same collision
// retransmit in lockstep and collide forever).
func (k *Kernel) retransmitDelay() sim.Time {
	t := k.cfg.RetransmitTimeout
	return t + sim.Time(k.eng.Rand().Int63n(int64(t/16+1)))
}

// nextSeq returns a fresh interkernel sequence number.
func (k *Kernel) nextSeq() uint32 {
	k.seq++
	if k.seq == 0 {
		k.seq++
	}
	return k.seq
}
