package core

import (
	"bytes"
	"testing"

	"vkernel/internal/ether"
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// TestForwardLocalToLocal: a dispatcher forwards a client to a worker on
// the same machine; the worker's reply reaches the client directly.
func TestForwardLocalToLocal(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	worker := k.Spawn("worker", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		var reply Message
		reply.SetWord(1, msg.Word(1)*3)
		_ = p.Reply(&reply, src)
	})
	dispatcher := k.Spawn("dispatcher", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.Forward(&msg, src, worker.Pid()); err != nil {
			t.Error(err)
		}
	})
	var got uint32
	k.Spawn("client", func(p *Process) {
		var m Message
		m.SetWord(1, 5)
		if err := p.Send(&m, dispatcher.Pid()); err != nil {
			t.Error(err)
			return
		}
		got = m.Word(1)
	})
	mustRun(t, c)
	if got != 15 {
		t.Fatalf("reply = %d, want 15 (from the worker)", got)
	}
}

// TestForwardRemoteChain: client on host 1 sends to a dispatcher on host
// 2, which forwards to a worker on host 3; the worker's reply crosses the
// network directly back to the client.
func TestForwardRemoteChain(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k1 := c.AddWorkstation("client-ws", prof8(), Config{})
	k2 := c.AddWorkstation("dispatch-ws", prof8(), Config{})
	k3 := c.AddWorkstation("worker-ws", prof8(), Config{})
	worker := k3.Spawn("worker", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		var reply Message
		reply.SetWord(1, msg.Word(1)+100)
		_ = p.Reply(&reply, src)
	})
	dispatcher := k2.Spawn("dispatcher", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.Forward(&msg, src, worker.Pid()); err != nil {
			t.Error(err)
		}
	})
	var got uint32
	k1.Spawn("client", func(p *Process) {
		var m Message
		m.SetWord(1, 7)
		if err := p.Send(&m, dispatcher.Pid()); err != nil {
			t.Error(err)
			return
		}
		got = m.Word(1)
	})
	mustRun(t, c)
	if got != 107 {
		t.Fatalf("reply = %d, want 107", got)
	}
	if k2.Stats().Forwards != 1 {
		t.Fatalf("dispatcher stats: %+v", k2.Stats())
	}
}

// TestForwardLocalSenderToRemote: the sender and dispatcher share a
// machine; the worker is remote. The dispatcher's kernel must stand up the
// full outstanding-send machinery on the sender's behalf.
func TestForwardLocalSenderToRemote(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k1 := c.AddWorkstation("near", prof8(), Config{})
	k2 := c.AddWorkstation("far", prof8(), Config{})
	worker := k2.Spawn("worker", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		var reply Message
		reply.SetWord(1, msg.Word(1)^0xFF)
		_ = p.Reply(&reply, src)
	})
	dispatcher := k1.Spawn("dispatcher", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.Forward(&msg, src, worker.Pid()); err != nil {
			t.Error(err)
		}
	})
	var got uint32
	k1.Spawn("client", func(p *Process) {
		var m Message
		m.SetWord(1, 0x0F)
		if err := p.Send(&m, dispatcher.Pid()); err != nil {
			t.Error(err)
			return
		}
		got = m.Word(1)
	})
	mustRun(t, c)
	if got != 0xF0 {
		t.Fatalf("reply = %#x", got)
	}
}

// TestForwardCarriesSegmentGrant: a forwarded page write still delivers
// its inline data to the final receiver, and MoveTo through the grant
// works for the new destination.
func TestForwardCarriesSegmentGrant(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k1 := c.AddWorkstation("client-ws", prof8(), Config{})
	k2 := c.AddWorkstation("dispatch-ws", prof8(), Config{})
	k3 := c.AddWorkstation("fs-ws", prof8(), Config{})
	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(i * 13)
	}
	var stored []byte
	fs := k3.Spawn("fs", func(p *Process) {
		buf := p.Alloc(1024)
		_, src, n, err := p.ReceiveWithSegment(buf, 1024)
		if err != nil {
			return
		}
		stored = p.ReadSpace(buf, n)
		var reply Message
		_ = p.Reply(&reply, src)
	})
	dispatcher := k2.Spawn("dispatcher", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		if err := p.Forward(&msg, src, fs.Pid()); err != nil {
			t.Error(err)
		}
	})
	k1.Spawn("client", func(p *Process) {
		addr := p.Alloc(512)
		p.WriteSpace(addr, page)
		var m Message
		m.SetSegment(addr, 512, vproto.SegFlagRead)
		if err := p.Send(&m, dispatcher.Pid()); err != nil {
			t.Error(err)
		}
	})
	mustRun(t, c)
	if !bytes.Equal(stored, page) {
		t.Fatalf("forwarded write stored %d bytes, corrupted or short", len(stored))
	}
}

// TestForwardToMissingProcessFailsSender: the sender is released with an
// error and the forwarder learns about it.
func TestForwardToMissingProcessFailsSender(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	var fwdErr error
	dispatcher := k.Spawn("dispatcher", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		fwdErr = p.Forward(&msg, src, vproto.MakePid(k.Host(), 999))
	})
	var sendErr error
	k.Spawn("client", func(p *Process) {
		var m Message
		sendErr = p.Send(&m, dispatcher.Pid())
	})
	mustRun(t, c)
	if fwdErr != ErrNoProcess || sendErr != ErrNoProcess {
		t.Fatalf("fwdErr = %v, sendErr = %v", fwdErr, sendErr)
	}
}

// TestForwardWithoutReceiveFails mirrors Reply's validation.
func TestForwardWithoutReceiveFails(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	k := c.AddWorkstation("w", prof8(), Config{})
	other := k.Spawn("other", func(p *Process) { p.Delay(10 * sim.Millisecond) })
	var err error
	k.Spawn("fwd", func(p *Process) {
		var m Message
		err = p.Forward(&m, other.Pid(), other.Pid())
	})
	mustRun(t, c)
	if err != ErrNotAwaitingReply {
		t.Fatalf("err = %v", err)
	}
}

// TestForwardSurvivesPacketLoss: the forward packet or its reply may be
// lost; origin retransmissions propagate down the chain and the exchange
// still completes exactly once.
func TestForwardSurvivesPacketLoss(t *testing.T) {
	cfg := ether.Ethernet3Mb()
	cfg.DropRate = 0.15
	c := NewCluster(23, cfg)
	kcfg := Config{RetransmitTimeout: 20 * sim.Millisecond, Retries: 50}
	k1 := c.AddWorkstation("client-ws", prof8(), kcfg)
	k2 := c.AddWorkstation("dispatch-ws", prof8(), kcfg)
	k3 := c.AddWorkstation("worker-ws", prof8(), kcfg)
	executions := 0
	worker := k3.Spawn("worker", func(p *Process) {
		for {
			msg, src, err := p.Receive()
			if err != nil {
				return
			}
			executions++
			var reply Message
			reply.SetWord(1, msg.Word(1)+1)
			_ = p.Reply(&reply, src)
		}
	})
	dispatcher := k2.Spawn("dispatcher", func(p *Process) {
		for {
			msg, src, err := p.Receive()
			if err != nil {
				return
			}
			_ = p.Forward(&msg, src, worker.Pid())
		}
	})
	completed := 0
	k1.Spawn("client", func(p *Process) {
		for i := uint32(0); i < 20; i++ {
			var m Message
			m.SetWord(1, i)
			if err := p.Send(&m, dispatcher.Pid()); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if m.Word(1) != i+1 {
				t.Errorf("reply %d = %d", i, m.Word(1))
			}
			completed++
		}
	})
	c.Eng.MaxSteps = 100_000_000
	c.Eng.Schedule(300*sim.Second, "stop", func() { c.Eng.Stop() })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 20 {
		t.Fatalf("completed %d/20", completed)
	}
	if executions != 20 {
		t.Fatalf("worker executed %d times, want exactly 20", executions)
	}
}
