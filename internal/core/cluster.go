package core

import (
	"vkernel/internal/cost"
	"vkernel/internal/ether"
	"vkernel/internal/sim"
)

// Cluster bundles an engine, a network and a set of workstation kernels —
// the common setup for experiments, examples and tests.
type Cluster struct {
	Eng      *sim.Engine
	Net      *ether.Network
	Kernels  []*Kernel
	nextHost LogicalHost
}

// NewCluster creates an engine (seeded for determinism) and an Ethernet
// segment.
func NewCluster(seed int64, netCfg ether.Config) *Cluster {
	eng := sim.NewEngine(seed)
	return &Cluster{
		Eng: eng,
		Net: ether.New(eng, netCfg),
	}
}

// AddWorkstation boots a kernel with the given profile on the next logical
// host id.
func (c *Cluster) AddWorkstation(name string, prof cost.Profile, cfg Config) *Kernel {
	c.nextHost++
	k := NewKernel(c.Eng, c.Net, name, c.nextHost, prof, cfg)
	c.Kernels = append(c.Kernels, k)
	return k
}

// Run drives the simulation to completion (or error).
func (c *Cluster) Run() error { return c.Eng.Run() }

// RunFor drives the simulation for d of virtual time.
func (c *Cluster) RunFor(d sim.Time) error { return c.Eng.RunUntil(c.Eng.Now() + d) }
