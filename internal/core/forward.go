package core

import (
	"vkernel/internal/vproto"
)

// Forward passes a received message to another process as if the original
// sender had sent it there directly: the sender — which must be awaiting a
// reply from this process — becomes awaiting the new destination's reply,
// and that reply returns straight to the sender without passing back
// through the forwarder. Forward is the V kernel manual's multiplexor
// primitive (inherited from Thoth); name servers use it to hand clients
// over to the service they asked for.
//
// The interkernel protocol makes the network case free: the forwarded
// Send packet carries the sender's pid and original sequence number, so
// the destination kernel's Reply packet matches the sender's outstanding
// exchange wherever it is. If the destination does not exist, the sender
// is released with an error (as for a Send to a missing process) and
// Forward reports ErrNoProcess.
func (p *Process) Forward(msg *Message, from, to Pid) error {
	k := p.k
	// Locate the sender and validate it awaits our reply, as Reply does.
	var sender *Process
	if a, ok := k.aliens[from]; ok && a.state == StateAwaitingReply && a.awaiting == p.pid {
		sender = a
	} else if lp, ok := k.procs[from]; ok && lp.state == StateAwaitingReply && lp.awaiting == p.pid {
		sender = lp
	} else {
		k.cpu.Charge(p.task, k.prof.LocalReply, "forward")
		return ErrNotAwaitingReply
	}

	if to.Host() == k.host {
		k.stats.Forwards++
		k.cpu.Charge(p.task, k.prof.LocalSend, "forward")
		rcv, ok := k.procs[to]
		if !ok {
			k.failSender(sender, ErrNoProcess)
			return ErrNoProcess
		}
		sender.msg = *msg
		if rcv.state == StateReceiveBlocked {
			sender.state = StateAwaitingReply
			sender.awaiting = to
			rcv.state = StateRunning
			rcv.task.Unpark(parkResult{sender: sender})
		} else {
			sender.state = StateSendQueued
			sender.awaiting = to
			sender.queuedOn = rcv
			rcv.queue = append(rcv.queue, sender)
		}
		return nil
	}

	// Remote destination.
	k.stats.Forwards++
	k.cpu.Charge(p.task, k.prof.RemoteSendPrepare, "forward-remote")
	if sender.alien {
		// Re-emit the original Send under its original sequence number;
		// the destination kernel replies directly to the origin. Our
		// alien remembers the forward so origin retransmissions propagate
		// down the chain instead of stalling here.
		pkt := &vproto.Packet{
			Kind: vproto.KindSend,
			Seq:  sender.alienSeq,
			Src:  sender.pid,
			Dst:  to,
			Msg:  *msg,
			Data: sender.alienData,
		}
		sender.msg = *msg
		sender.awaiting = to
		sender.forwardPkt = pkt
		k.transmit(pkt, to.Host())
		return nil
	}
	// A local sender forwarded to a remote destination: set up the full
	// outstanding-send machinery on its behalf.
	pkt := &vproto.Packet{
		Kind: vproto.KindSend,
		Seq:  k.nextSeq(),
		Src:  sender.pid,
		Dst:  to,
		Msg:  *msg,
	}
	// Carry the inline prefix of a read-access segment, reading the data
	// from the sender's space through its own grant (§3.4).
	if start, size, access, ok := msg.Segment(); ok && access&vproto.SegFlagRead != 0 && k.cfg.InlineSegMax > 0 {
		n := int(size)
		if n > k.cfg.InlineSegMax {
			n = k.cfg.InlineSegMax
		}
		if n > 0 && sender.checkSpan(start, uint32(n)) {
			pkt.Data = sender.ReadSpace(start, n)
			pkt.Count = uint32(n)
		}
	}
	sender.msg = *msg
	sender.awaiting = to
	sender.pendingSeq = pkt.Seq
	rs := &remoteSend{proc: sender, dst: to, seq: pkt.Seq, pkt: pkt}
	k.pending[pkt.Seq] = rs
	k.transmit(pkt, to.Host())
	rs.timer = k.eng.Schedule(k.retransmitDelay(), "retransmit", func() { k.retransmit(rs) })
	return nil
}
