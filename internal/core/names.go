package core

import (
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// Process naming (§2.1, §3.1). SetPid associates a pid with a well-known
// logical id in a scope; GetPid resolves a logical id, using network
// broadcast when the mapping is not known locally — any kernel knowing the
// mapping may respond.

// lookup is an outstanding broadcast GetPid on this kernel.
type lookup struct {
	p       *Process
	id      uint32
	retries int
	timer   *sim.Event
	done    bool
}

// SetPid associates pid with logicalID in the given scope (§2.1).
func (p *Process) SetPid(logicalID uint32, pid Pid, scope Scope) {
	p.k.cpu.Charge(p.task, p.k.prof.KernelOp, "setpid")
	p.k.names[logicalID] = nameEntry{pid: pid, scope: scope}
}

// GetPid returns the pid associated with logicalID in the given scope, or
// vproto.Nil if the lookup fails. Lookups in ScopeRemote (or ScopeBoth)
// that miss locally are broadcast on the network (§3.1).
func (p *Process) GetPid(logicalID uint32, scope Scope) Pid {
	k := p.k
	k.cpu.Charge(p.task, k.prof.KernelOp, "getpid")
	if e, ok := k.names[logicalID]; ok && e.scope&scope != 0 {
		return e.pid
	}
	if scope&ScopeRemote == 0 {
		return vproto.Nil
	}
	lk := &lookup{p: p, id: logicalID}
	k.lookups[logicalID] = append(k.lookups[logicalID], lk)
	k.broadcastGetPid(lk)
	lk.timer = k.eng.Schedule(k.cfg.GetPidTimeout, "getpid-timeout", func() { k.getPidTimeout(lk) })
	res := p.park("getpid")
	if res.err != nil {
		return vproto.Nil
	}
	return res.pid
}

func (k *Kernel) broadcastGetPid(lk *lookup) {
	k.stats.GetPidBroadcasts++
	pkt := &vproto.Packet{
		Kind:  vproto.KindGetPid,
		Seq:   k.nextSeq(),
		Src:   lk.p.pid,
		Flags: vproto.FlagScopeRemote,
	}
	pkt.Msg.SetWord(wordNameID, lk.id)
	k.broadcast(pkt)
}

// getPidTimeout retries the broadcast a bounded number of times.
func (k *Kernel) getPidTimeout(lk *lookup) {
	if lk.done {
		return
	}
	lk.retries++
	if lk.retries > k.cfg.GetPidRetries {
		k.finishLookup(lk, vproto.Nil, false)
		return
	}
	k.broadcastGetPid(lk)
	lk.timer = k.eng.Schedule(k.cfg.GetPidTimeout, "getpid-timeout", func() { k.getPidTimeout(lk) })
}

// handleGetPid answers a broadcast lookup if this kernel knows a mapping
// registered with remote visibility.
func (k *Kernel) handleGetPid(pkt *vproto.Packet) {
	id := pkt.Msg.Word(wordNameID)
	e, ok := k.names[id]
	if !ok || e.scope&ScopeRemote == 0 {
		return
	}
	k.cpu.Run(k.prof.KernelOp, "getpid-answer", nil)
	out := &vproto.Packet{
		Kind: vproto.KindGetPidReply,
		Seq:  pkt.Seq,
		Dst:  pkt.Src,
	}
	out.Msg.SetWord(wordNameID, id)
	out.Msg.SetWord(wordNamePid, uint32(e.pid))
	k.transmit(out, pkt.Src.Host())
}

// handleGetPidReply completes outstanding lookups for the logical id.
func (k *Kernel) handleGetPidReply(pkt *vproto.Packet) {
	id := pkt.Msg.Word(wordNameID)
	pid := Pid(pkt.Msg.Word(wordNamePid))
	waiters := k.lookups[id]
	if len(waiters) == 0 {
		return
	}
	k.cpu.Run(k.prof.KernelOp, "getpid-reply", nil)
	for _, lk := range waiters {
		k.finishLookup(lk, pid, true)
	}
}

func (k *Kernel) finishLookup(lk *lookup, pid Pid, ok bool) {
	if lk.done {
		return
	}
	lk.done = true
	lk.timer.Cancel()
	// Remove from the waiter list.
	ws := k.lookups[lk.id]
	for i, w := range ws {
		if w == lk {
			k.lookups[lk.id] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(k.lookups[lk.id]) == 0 {
		delete(k.lookups, lk.id)
	}
	if !ok {
		lk.p.task.Unpark(parkResult{err: ErrTimeout})
		return
	}
	lk.p.task.Unpark(parkResult{pid: pid})
}
