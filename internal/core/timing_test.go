package core

import (
	"testing"

	"vkernel/internal/ether"
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// measureSRR runs n remote Send-Receive-Reply exchanges and returns the
// per-exchange elapsed time and client/server processor times, using the
// paper's §5.1 methodology (total / N with busy-time accounting).
func measureSRR(t *testing.T, mhz float64, n int) (elapsed, clientCPU, serverCPU sim.Time) {
	t.Helper()
	c := NewCluster(1, ether.Ethernet3Mb())
	pr := prof8()
	if mhz == 10 {
		pr = prof10()
	}
	ka := c.AddWorkstation("client", pr, Config{})
	kb := c.AddWorkstation("server", pr, Config{})
	server := kb.Spawn("server", func(p *Process) {
		for {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			var m Message
			_ = p.Reply(&m, src)
		}
	})
	var start, end sim.Time
	var cb0, sb0 sim.Time
	ka.Spawn("client", func(p *Process) {
		// Warm up one exchange, then measure.
		var m Message
		_ = p.Send(&m, server.Pid())
		start = p.GetTime()
		cb0, sb0 = ka.CPU().Busy(), kb.CPU().Busy()
		for i := 0; i < n; i++ {
			var msg Message
			if err := p.Send(&msg, server.Pid()); err != nil {
				t.Error(err)
				return
			}
		}
		end = p.GetTime()
	})
	c.Eng.MaxSteps = 100_000_000
	c.Eng.Schedule(100*sim.Second, "stop", func() { c.Eng.Stop() })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	total := end - start
	return total / sim.Time(n), (ka.CPU().Busy() - cb0) / sim.Time(n), (kb.CPU().Busy() - sb0) / sim.Time(n)
}

func within(t *testing.T, what string, got sim.Time, wantMs float64, tolerance float64) {
	t.Helper()
	g := got.Milliseconds()
	if g < wantMs*(1-tolerance) || g > wantMs*(1+tolerance) {
		t.Errorf("%s = %.3f ms, want %.3f ± %.0f%%", what, g, wantMs, tolerance*100)
	} else {
		t.Logf("%s = %.3f ms (paper %.2f)", what, g, wantMs)
	}
}

// Table 5-1 row "Send-Receive-Reply", 8 MHz: remote 3.18 ms elapsed,
// client 1.79 ms, server 2.30 ms processor time.
func TestCalibrationRemoteSRR8MHz(t *testing.T) {
	el, ccpu, scpu := measureSRR(t, 8, 200)
	within(t, "remote SRR elapsed", el, 3.18, 0.05)
	within(t, "client CPU", ccpu, 1.79, 0.08)
	within(t, "server CPU", scpu, 2.30, 0.08)
}

// Table 5-2 row, 10 MHz: 2.54 / 1.44 / 1.79 ms.
func TestCalibrationRemoteSRR10MHz(t *testing.T) {
	el, ccpu, scpu := measureSRR(t, 10, 200)
	within(t, "remote SRR elapsed", el, 2.54, 0.08)
	within(t, "client CPU", ccpu, 1.44, 0.10)
	within(t, "server CPU", scpu, 1.79, 0.08)
}

// Local Send-Receive-Reply: 1.00 ms @ 8 MHz, 0.77 @ 10 MHz (Tables 5-1/5-2).
func TestCalibrationLocalSRR(t *testing.T) {
	for _, tc := range []struct {
		mhz  float64
		want float64
		tol  float64
	}{{8, 1.00, 0.03}, {10, 0.77, 0.06}} {
		c := NewCluster(1, ether.Ethernet3Mb())
		pr := prof8()
		if tc.mhz == 10 {
			pr = prof10()
		}
		k := c.AddWorkstation("w", pr, Config{})
		server := k.Spawn("server", func(p *Process) {
			for {
				_, src, err := p.Receive()
				if err != nil {
					return
				}
				var m Message
				_ = p.Reply(&m, src)
			}
		})
		var per sim.Time
		k.Spawn("client", func(p *Process) {
			var m Message
			_ = p.Send(&m, server.Pid())
			start := p.GetTime()
			const n = 200
			for i := 0; i < n; i++ {
				var msg Message
				_ = p.Send(&msg, server.Pid())
			}
			per = (p.GetTime() - start) / n
		})
		c.Eng.MaxSteps = 100_000_000
		c.Eng.Schedule(10*sim.Second, "stop", func() { c.Eng.Stop() })
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		within(t, "local SRR elapsed", per, tc.want, tc.tol)
	}
}

// Table 5-1 MoveTo/MoveFrom of 1024 bytes: local 1.26 ms, remote ≈9.05 ms
// at 8 MHz.
func TestCalibrationMove1024(t *testing.T) {
	c := NewCluster(1, ether.Ethernet3Mb())
	// The harness holds one request open across the whole measurement
	// loop; use a long kernel timeout so measurement is not perturbed by
	// (correct) retransmissions of that request.
	cfg := Config{RetransmitTimeout: 100 * sim.Second}
	ka := c.AddWorkstation("a", prof8(), cfg)
	kb := c.AddWorkstation("b", prof8(), cfg)
	const n = 100
	var perTo, perFrom sim.Time
	server := kb.Spawn("server", func(p *Process) {
		src := p.Alloc(1024)
		msg, from, err := p.Receive()
		if err != nil {
			return
		}
		start, _, _, _ := msg.Segment()
		t0 := p.GetTime()
		for i := 0; i < n; i++ {
			if err := p.MoveTo(from, start, src, 1024); err != nil {
				t.Error(err)
				return
			}
		}
		perTo = (p.GetTime() - t0) / n
		t0 = p.GetTime()
		for i := 0; i < n; i++ {
			if err := p.MoveFrom(from, src, start, 1024); err != nil {
				t.Error(err)
				return
			}
		}
		perFrom = (p.GetTime() - t0) / n
		var reply Message
		_ = p.Reply(&reply, from)
	})
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(1024)
		var m Message
		m.SetSegment(buf, 1024, vproto.SegFlagRead|vproto.SegFlagWrite)
		if err := p.Send(&m, server.Pid()); err != nil {
			t.Error(err)
		}
	})
	c.Eng.MaxSteps = 100_000_000
	c.Eng.Schedule(100*sim.Second, "stop", func() { c.Eng.Stop() })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, "remote MoveTo 1024", perTo, 9.05, 0.05)
	within(t, "remote MoveFrom 1024", perFrom, 9.03, 0.05)
}

// Table 6-1: 512-byte page read/write between workstations @ 10 MHz:
// remote 5.56 / 5.60 ms, local 1.31 ms.
func TestCalibrationPageAccess(t *testing.T) {
	run := func(remote bool) (read, write sim.Time) {
		c := NewCluster(1, ether.Ethernet3Mb())
		ka := c.AddWorkstation("a", prof10(), Config{})
		kfs := ka
		if remote {
			kfs = c.AddWorkstation("fs", prof10(), Config{})
		}
		page := make([]byte, 512)
		server := kfs.Spawn("fs", func(p *Process) {
			buf := p.Alloc(1024)
			for {
				msg, src, _, err := p.ReceiveWithSegment(buf, 1024)
				if err != nil {
					return
				}
				var reply Message
				if msg.Word(1) == 1 { // read request
					start, _, _, _ := msg.Segment()
					if err := p.ReplyWithSegment(&reply, src, start, page); err != nil {
						t.Error(err)
						return
					}
				} else {
					_ = p.Reply(&reply, src)
				}
			}
		})
		const n = 200
		ka.Spawn("client", func(p *Process) {
			buf := p.Alloc(512)
			// Warm-up.
			var m Message
			m.SetWord(1, 1)
			m.SetSegment(buf, 512, vproto.SegFlagWrite)
			_ = p.Send(&m, server.Pid())
			t0 := p.GetTime()
			for i := 0; i < n; i++ {
				var rm Message
				rm.SetWord(1, 1)
				rm.SetSegment(buf, 512, vproto.SegFlagWrite)
				if err := p.Send(&rm, server.Pid()); err != nil {
					t.Error(err)
					return
				}
			}
			read = (p.GetTime() - t0) / n
			t0 = p.GetTime()
			for i := 0; i < n; i++ {
				var wm Message
				wm.SetWord(1, 2)
				wm.SetSegment(buf, 512, vproto.SegFlagRead)
				if err := p.Send(&wm, server.Pid()); err != nil {
					t.Error(err)
					return
				}
			}
			write = (p.GetTime() - t0) / n
		})
		c.Eng.MaxSteps = 100_000_000
		c.Eng.Schedule(100*sim.Second, "stop", func() { c.Eng.Stop() })
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return read, write
	}
	r, w := run(true)
	within(t, "remote page read", r, 5.56, 0.05)
	within(t, "remote page write", w, 5.60, 0.05)
	lr, lw := run(false)
	within(t, "local page read", lr, 1.31, 0.06)
	within(t, "local page write", lw, 1.31, 0.06)
}
