package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"vkernel/internal/ether"
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// Property: for any assignment of client requests to two servers, every
// exchange completes with the matching reply, and each server sees its
// messages in FCFS order of send time.
func TestExchangeCompletenessProperty(t *testing.T) {
	f := func(assignRaw []bool, seed int64) bool {
		if len(assignRaw) == 0 {
			return true
		}
		if len(assignRaw) > 40 {
			assignRaw = assignRaw[:40]
		}
		c := NewCluster(seed, ether.Ethernet3Mb())
		k := c.AddWorkstation("w", prof8(), Config{})
		mkServer := func() *Process {
			return k.Spawn("srv", func(p *Process) {
				for {
					msg, src, err := p.Receive()
					if err != nil {
						return
					}
					var reply Message
					reply.SetWord(1, msg.Word(1)+7)
					if p.Reply(&reply, src) != nil {
						return
					}
				}
			})
		}
		s0, s1 := mkServer(), mkServer()
		okAll := true
		done := 0
		for i, toS1 := range assignRaw {
			i, toS1 := i, toS1
			k.Spawn("client", func(p *Process) {
				dst := s0.Pid()
				if toS1 {
					dst = s1.Pid()
				}
				var m Message
				m.SetWord(1, uint32(i))
				if err := p.Send(&m, dst); err != nil || m.Word(1) != uint32(i)+7 {
					okAll = false
				}
				done++
			})
		}
		c.Eng.MaxSteps = 10_000_000
		c.Eng.Schedule(10*sim.Second, "stop", func() { c.Eng.Stop() })
		if err := c.Run(); err != nil {
			return false
		}
		return okAll && done == len(assignRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: page reads of any size up to one packet round-trip
// byte-identical data through ReplyWithSegment, under any seed.
func TestPageIntegrityProperty(t *testing.T) {
	f := func(sizeRaw uint16, seed int64) bool {
		size := int(sizeRaw)%vproto.MaxData + 1
		c := NewCluster(seed, ether.Ethernet3Mb())
		ka := c.AddWorkstation("a", prof10(), Config{})
		kb := c.AddWorkstation("b", prof10(), Config{})
		page := make([]byte, size)
		r := seed
		for i := range page {
			r = r*6364136223846793005 + 1442695040888963407
			page[i] = byte(r >> 32)
		}
		server := kb.Spawn("fs", func(p *Process) {
			msg, src, err := p.Receive()
			if err != nil {
				return
			}
			start, _, _, _ := msg.Segment()
			var reply Message
			_ = p.ReplyWithSegment(&reply, src, start, page)
		})
		ok := false
		ka.Spawn("client", func(p *Process) {
			buf := p.Alloc(size)
			var m Message
			m.SetSegment(buf, uint32(size), vproto.SegFlagWrite)
			if err := p.Send(&m, server.Pid()); err != nil {
				return
			}
			ok = bytes.Equal(p.ReadSpace(buf, size), page)
		})
		c.Eng.MaxSteps = 10_000_000
		if err := c.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MoveTo of any size and chunking delivers byte-identical data,
// and the number of data packets is ceil(size/chunk).
func TestMoveChunkingProperty(t *testing.T) {
	f := func(sizeRaw uint16, chunkRaw uint8, seed int64) bool {
		size := uint32(sizeRaw)%20000 + 1
		chunk := int(chunkRaw)%vproto.MaxData + 1
		c := NewCluster(seed, ether.Ethernet3Mb())
		cfg := Config{ChunkSize: chunk, RetransmitTimeout: 100 * sim.Second}
		ka := c.AddWorkstation("a", prof8(), cfg)
		kb := c.AddWorkstation("b", prof8(), cfg)
		data := make([]byte, size)
		r := seed
		for i := range data {
			r = r*25214903917 + 11
			data[i] = byte(r >> 24)
		}
		server := kb.Spawn("srv", func(p *Process) {
			src := p.Alloc(int(size))
			p.WriteSpace(src, data)
			msg, from, err := p.Receive()
			if err != nil {
				return
			}
			start, _, _, _ := msg.Segment()
			if err := p.MoveTo(from, start, src, size); err != nil {
				return
			}
			var reply Message
			_ = p.Reply(&reply, from)
		})
		ok := false
		ka.Spawn("client", func(p *Process) {
			buf := p.Alloc(int(size))
			var m Message
			m.SetSegment(buf, size, vproto.SegFlagWrite)
			if err := p.Send(&m, server.Pid()); err != nil {
				return
			}
			ok = bytes.Equal(p.ReadSpace(buf, int(size)), data)
		})
		c.Eng.MaxSteps = 50_000_000
		if err := c.Run(); err != nil {
			return false
		}
		if !ok {
			return false
		}
		// Packet accounting: request + reply + ack + ceil(size/chunk) data.
		wantData := int((size + uint32(chunk) - 1) / uint32(chunk))
		frames := c.Net.Stats().Frames
		return frames == wantData+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — identical seeds give identical virtual-time
// traces for a mixed workload; different seeds are allowed to differ.
func TestClusterDeterminismProperty(t *testing.T) {
	run := func(seed int64) (sim.Time, Stats) {
		c := NewCluster(seed, ether.Ethernet3Mb())
		ka := c.AddWorkstation("a", prof8(), Config{})
		kb := c.AddWorkstation("b", prof8(), Config{})
		server := echoForever(kb)
		ka.Spawn("client", func(p *Process) {
			for i := 0; i < 20; i++ {
				p.Delay(sim.Time(c.Eng.Rand().Int63n(int64(sim.Millisecond))))
				var m Message
				if err := p.Send(&m, server.Pid()); err != nil {
					return
				}
			}
		})
		c.Eng.MaxSteps = 10_000_000
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Eng.Now(), ka.Stats()
	}
	t1, s1 := run(42)
	t2, s2 := run(42)
	if t1 != t2 || s1 != s2 {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", t1, s1, t2, s2)
	}
}

func echoForever(k *Kernel) *Process {
	return k.Spawn("echo", func(p *Process) {
		for {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			var m Message
			if p.Reply(&m, src) != nil {
				return
			}
		}
	})
}

// Edge cases around segments and grants.

func TestReceiveWithSegmentNoSegmentMessage(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	count := -1
	server := kb.Spawn("srv", func(p *Process) {
		buf := p.Alloc(128)
		_, src, n, err := p.ReceiveWithSegment(buf, 128)
		if err != nil {
			return
		}
		count = n
		var m Message
		_ = p.Reply(&m, src)
	})
	ka.Spawn("client", func(p *Process) {
		var m Message // no segment at all
		_ = p.Send(&m, server.Pid())
	})
	mustRun(t, c)
	if count != 0 {
		t.Fatalf("count = %d, want 0", count)
	}
}

func TestWriteGrantDoesNotLeakDataInline(t *testing.T) {
	// A write-access-only grant must not put segment bytes on the wire
	// with the Send (only read grants are carried inline, §3.4).
	c, ka, kb := twoStations(t, Config{})
	server := kb.Spawn("srv", func(p *Process) {
		buf := p.Alloc(1024)
		_, src, n, err := p.ReceiveWithSegment(buf, 1024)
		if err != nil {
			return
		}
		if n != 0 {
			t.Errorf("write grant delivered %d inline bytes", n)
		}
		var m Message
		_ = p.Reply(&m, src)
	})
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(512)
		var m Message
		m.SetSegment(buf, 512, vproto.SegFlagWrite)
		_ = p.Send(&m, server.Pid())
	})
	mustRun(t, c)
	// The Send packet must be small (no 512-byte payload).
	var maxFrame int64
	if s := c.Net.Stats(); s.Bytes > 0 {
		maxFrame = s.Bytes / int64(s.Frames)
	}
	if maxFrame > 128 {
		t.Fatalf("average frame %d bytes; write grant leaked inline data", maxFrame)
	}
}

func TestReplyWithSegmentOutsideGrantFails(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	var replyErr error
	server := kb.Spawn("srv", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		start, _, _, _ := msg.Segment()
		var reply Message
		replyErr = p.ReplyWithSegment(&reply, src, start+1024, make([]byte, 512))
		_ = p.Reply(&reply, src)
	})
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(512)
		var m Message
		m.SetSegment(buf, 512, vproto.SegFlagWrite)
		_ = p.Send(&m, server.Pid())
	})
	mustRun(t, c)
	if replyErr != ErrBadAddress {
		t.Fatalf("ReplyWithSegment err = %v", replyErr)
	}
}

func TestReplyWithOversizeSegmentFails(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	var replyErr error
	server := kb.Spawn("srv", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		start, _, _, _ := msg.Segment()
		var reply Message
		replyErr = p.ReplyWithSegment(&reply, src, start, make([]byte, vproto.MaxData+1))
		_ = p.Reply(&reply, src)
	})
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(2 * vproto.MaxData)
		var m Message
		m.SetSegment(buf, 2*vproto.MaxData, vproto.SegFlagWrite)
		_ = p.Send(&m, server.Pid())
	})
	mustRun(t, c)
	if replyErr != ErrSegTooBig {
		t.Fatalf("err = %v", replyErr)
	}
}

func TestMoveToZeroBytes(t *testing.T) {
	c, ka, kb := twoStations(t, Config{})
	var moveErr error
	server := kb.Spawn("srv", func(p *Process) {
		msg, src, err := p.Receive()
		if err != nil {
			return
		}
		start, _, _, _ := msg.Segment()
		src2 := p.Alloc(16)
		moveErr = p.MoveTo(src, start, src2, 0)
		var m Message
		_ = p.Reply(&m, src)
	})
	ka.Spawn("client", func(p *Process) {
		buf := p.Alloc(64)
		var m Message
		m.SetSegment(buf, 64, vproto.SegFlagWrite)
		_ = p.Send(&m, server.Pid())
	})
	mustRun(t, c)
	if moveErr != nil {
		t.Fatalf("zero-byte MoveTo: %v", moveErr)
	}
}
