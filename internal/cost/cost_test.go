package cost

import (
	"testing"
	"testing/quick"

	"vkernel/internal/sim"
)

func TestCalibratedProfilesExist(t *testing.T) {
	for _, tc := range []struct {
		mhz   float64
		iface Interface
		name  string
	}{
		{8, Iface3Mb, "SUN-8MHz-3Mb"},
		{10, Iface3Mb, "SUN-10MHz-3Mb"},
		{8, Iface10Mb, "SUN-8MHz-10Mb"},
		{10, Iface10Mb, "SUN-10MHz-10Mb"},
	} {
		p := MC68000(tc.mhz, tc.iface)
		if p.Name != tc.name {
			t.Errorf("profile name = %q, want %q", p.Name, tc.name)
		}
		if p.MHz != tc.mhz {
			t.Errorf("MHz = %v", p.MHz)
		}
	}
}

func TestLocalSRRSumsToTableValue(t *testing.T) {
	p8 := MC68000(8, Iface3Mb)
	if got := p8.LocalSend + p8.LocalReceive + p8.LocalReply; got != sim.Millisecond {
		t.Fatalf("local SRR = %v, want 1 ms (Table 5-1)", got)
	}
}

func TestTxCostMatchesPenaltyDerivation(t *testing.T) {
	p8 := MC68000(8, Iface3Mb)
	// From the §4 derivation: copying a 1024-byte packet costs ~2.06 ms.
	got := p8.TxCost(1024)
	if got < sim.Micros(2050) || got > sim.Micros(2070) {
		t.Fatalf("TxCost(1024) = %v", got)
	}
	if p8.RxCost(777) != p8.TxCost(777) {
		t.Fatal("rx/tx asymmetric")
	}
}

func TestLocalCopyRate(t *testing.T) {
	p8 := MC68000(8, Iface3Mb)
	// 0.9 µs/byte at 8 MHz: 64 KB ≈ 59 ms (Table 6-3's local floor).
	got := p8.LocalCopy(64 * 1024)
	if got < sim.Millis(58.9) || got > sim.Millis(59.1) {
		t.Fatalf("LocalCopy(64K) = %v", got)
	}
}

// Property: kernel costs scale as 8/MHz for any clock rate.
func TestScalingProperty(t *testing.T) {
	base := MC68000(8, Iface3Mb)
	f := func(mhzRaw uint8) bool {
		mhz := 4 + float64(mhzRaw%32) // 4..35 MHz
		if mhz == 8 || mhz == 10 {
			return true // those have bespoke interface calibration
		}
		p := MC68000(mhz, Iface3Mb)
		want := sim.Time(float64(base.LocalSend) * 8 / mhz)
		diff := p.LocalSend - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= sim.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
