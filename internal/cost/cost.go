// Package cost holds the calibrated timing model for the V kernel
// simulation.
//
// # Calibration method
//
// Every constant is expressed in microseconds of MC68000 processor time at
// 8 MHz and scaled by 8/MHz for other clock rates, except the network
// interface constants, which the paper measures separately per processor
// (Table 4-1) and which we therefore calibrate per profile.
//
// Network interface calibration (Table 4-1). The paper reports the 3 Mb
// network penalty as P(n) = .0064·n + .390 ms at 8 MHz and
// P(n) = .0054·n + .251 ms at 10 MHz. The penalty for one packet is
//
//	P(n) = 2·(perByteCopy·n + perPacket) + wire(n) + latency
//
// with wire(n) = n·8/2.94e6 s = 2.721 µs/byte on the 3 Mb Ethernet and
// latency (propagation + interface) = 30 µs. Solving:
//
//	 8 MHz: perByteCopy = (6.4   − 2.721)/2 = 1.8395 µs/B, perPacket = (390−30)/2 = 180 µs
//	10 MHz: perByteCopy = (5.4   − 2.721)/2 = 1.3395 µs/B, perPacket = (251−30)/2 = 110.5 µs
//
// The 8 MHz per-byte figure independently matches the paper's §4 statement
// that copying a 1024-byte packet costs "roughly 1.90 milliseconds in each
// direction" (1024 × 1.8395 µs + 180 µs = 2.06 ms including the per-packet
// setup). The §8 10 Mb interface is "slightly faster": perPacket = 150 µs
// at 8 MHz, same per-byte copy cost (the processor does the copying).
//
// Kernel primitive calibration (Tables 5-1/5-2). With the interface model
// above, a remote Send-Receive-Reply exchanges two 64-byte packets
// (32-byte header + 32-byte message), so the critical path is
//
//	elapsed = c1 + tx(64) + wire(64) + rx(64) + s1 + s2 + tx(64) + wire(64) + rx(64) + c2
//
// where tx = rx = perPacket + 64·perByteCopy = 297.7 µs and
// wire(64) = 174 + 30 = 204 µs at 8 MHz. Matching elapsed = 3.18 ms,
// client CPU = 1.79 ms and server CPU = 2.30 ms (Table 5-1) yields
//
//	c1 (RemoteSendPrepare)  = 300   c2 (RemoteSendComplete) = 300
//	c3 (RemoteSendOverlap)  = 594   — blocking the sender, scheduling, timers;
//	                                  runs while the packet is in flight
//	s1 (RemoteDeliver)      = 500   — parse, alien allocation, ready receiver
//	s2 (RemoteReplyPrepare) = 482
//	s3 (RemoteReplyCleanup) = 722   — reply caching, timer teardown; off-path
//
// giving exactly 3.18 / 1.79 / 2.30 at 8 MHz and 2.46 / 1.35 / 1.76 at
// 10 MHz (paper: 2.54 / 1.44 / 1.79; the ≤ 7 % deviation is because the
// paper's measured per-byte costs do not scale exactly with clock rate).
//
// Local primitives come straight from the tables: local SRR = 1.00 ms at
// 8 MHz splits into Send/Receive/Reply = 350/300/350; GetTime = 70 µs;
// MoveTo/MoveFrom of 1024 bytes local = 1.26 ms = 340 µs fixed + 0.9 µs/B
// (the same 0.9 µs/B reproduces Table 6-3's 59.7 ms local 64 KB read).
// Segment-extension costs (ReceiveWithSegment/ReplyWithSegment handling)
// are fixed against Table 6-1's 512-byte page read: 5.56 ms elapsed at
// 10 MHz leaves 420 µs (at 8 MHz) beyond the plain-SRR kernel costs,
// split 250 tx-side / 170 rx-side.
//
// Bulk transfer (MoveTo/MoveFrom) per-operation and per-packet constants
// are fixed against Table 5-1's 1024-byte MoveTo (9.05 ms remote; the data
// packet is 1056 bytes with header, the completion ack 128 bytes) and
// cross-checked against Table 6-3's program-loading rates (≈192 KB/s at
// large transfer units, sender copy-in serialized with transmission on the
// single-buffered SUN interface).
package cost

import "vkernel/internal/sim"

// Interface selects the network interface generation.
type Interface int

const (
	// Iface3Mb is the SUN experimental 3 Mb Ethernet interface.
	Iface3Mb Interface = iota
	// Iface10Mb is the 3COM 10 Mb Ethernet interface ("slightly faster").
	Iface10Mb
)

// Profile is the full calibrated timing model for one workstation
// configuration. All durations are already scaled to the profile's clock
// rate.
type Profile struct {
	Name string
	MHz  float64

	// Network interface (programmed I/O).
	NetCopyPerByte sim.Time // CPU cost to move one byte to/from the interface
	NetPerPacket   sim.Time // fixed CPU cost per packet at each end

	// Trivial kernel operation (GetTime) — minimal trap overhead.
	KernelOp sim.Time

	// Local IPC.
	LocalSend    sim.Time
	LocalReceive sim.Time
	LocalReply   sim.Time

	// Local bulk copy (MoveTo/MoveFrom within one machine).
	LocalMoveFixed   sim.Time
	LocalCopyPerByte sim.Time
	// Local segment handling (ReceiveWithSegment / ReplyWithSegment).
	LocalSegmentFixed sim.Time

	// Remote message exchange.
	RemoteSendPrepare   sim.Time // client, on-path, before transmitting
	RemoteSendComplete  sim.Time // client, on-path, reply packet to unblock
	RemoteSendOverlap   sim.Time // client, off-path while packet in flight
	RemoteDeliver       sim.Time // server, on-path, packet to ready receiver
	RemoteReplyPrepare  sim.Time // server, on-path, Reply to transmission
	RemoteReplyCleanup  sim.Time // server, off-path after reply transmitted
	RemoteReceiveQueued sim.Time // Receive when a message is already queued

	// Segment extension (appended to message packets).
	SegmentTxFixed sim.Time // side transmitting a segment
	SegmentRxFixed sim.Time // side receiving a segment

	// Segment-side processor work that overlaps the wire (CPU accounting
	// only; fixed against Table 6-1's Client/Server processor columns).
	SegmentTxOverlap sim.Time
	SegmentRxOverlap sim.Time

	// Bulk transfer over the network.
	MoveSetup       sim.Time // mover, per operation, before first data packet
	MoveComplete    sim.Time // mover, per operation, processing the ack
	MovePerPacket   sim.Time // mover, per data packet beyond the raw copy (overlaps the wire)
	MoveDataDeliver sim.Time // receiver/source, per operation: validate + ack or serve
	MoveRxPerPacket sim.Time // receiver, per data packet beyond the raw copy
	// Off-path bulk-transfer bookkeeping (buffer management, interrupt
	// tails) that overlaps the wire; fixed against the Table 5-1 Client/
	// Server processor columns for the 1024-byte operations.
	MoveMoverOverlap   sim.Time // side executing MoveTo/MoveFrom, per op
	MoveGrantorOverlap sim.Time // side that granted the segment, per op

	// Ablation knobs (not part of the calibrated V kernel, used by the §3
	// design-claims experiments).
	NetServerRelay sim.Time // per-packet cost of relaying via a process-level network server
	IPPerPacket    sim.Time // per-packet cost of IP header handling (§3 item 2: +20 %)

	// File server processing cost per page request beyond kernel costs
	// (§6.1 cites 2.5 ms at 10 MHz ≈ 3.1 ms at 8 MHz, from LOCUS figures).
	FileServerPage sim.Time
}

// scale returns d microseconds of 8 MHz processor time converted to this
// clock rate.
func scale(us float64, mhz float64) sim.Time {
	return sim.Micros(us * 8.0 / mhz)
}

// MC68000 returns the calibrated profile for a SUN workstation MC68000 at
// the given clock rate with the given network interface. Rates other than
// 8 and 10 MHz use pure 8/MHz scaling of the 8 MHz calibration.
func MC68000(mhz float64, iface Interface) Profile {
	p := Profile{
		MHz: mhz,

		KernelOp: scale(70, mhz),

		LocalSend:    scale(350, mhz),
		LocalReceive: scale(300, mhz),
		LocalReply:   scale(350, mhz),

		LocalMoveFixed:    scale(340, mhz),
		LocalCopyPerByte:  scale(0.9, mhz),
		LocalSegmentFixed: scale(176, mhz),

		RemoteSendPrepare:   scale(300, mhz),
		RemoteSendComplete:  scale(300, mhz),
		RemoteSendOverlap:   scale(594, mhz),
		RemoteDeliver:       scale(500, mhz),
		RemoteReplyPrepare:  scale(482, mhz),
		RemoteReplyCleanup:  scale(422, mhz),
		RemoteReceiveQueued: scale(300, mhz),

		SegmentTxFixed:   scale(250, mhz),
		SegmentRxFixed:   scale(170, mhz),
		SegmentTxOverlap: scale(750, mhz),
		SegmentRxOverlap: scale(400, mhz),

		MoveSetup:       scale(350, mhz),
		MoveComplete:    scale(250, mhz),
		MovePerPacket:   scale(100, mhz),
		MoveDataDeliver: scale(350, mhz),
		MoveRxPerPacket: scale(120, mhz),

		MoveMoverOverlap:   scale(2600, mhz),
		MoveGrantorOverlap: scale(700, mhz),

		NetServerRelay: scale(2375, mhz),
		IPPerPacket:    scale(115, mhz),

		FileServerPage: scale(3100, mhz),
	}
	// Interface constants are calibrated per measured processor where the
	// paper gives figures; other rates scale from 8 MHz.
	switch {
	case iface == Iface3Mb && mhz == 10:
		p.Name = "SUN-10MHz-3Mb"
		// Calibrated from Table 4-1's 64- and 1024-byte rows directly
		// (the paper's own linear fit misses its 64-byte row by 8 %).
		p.NetCopyPerByte = sim.Micros(1.3374)
		p.NetPerPacket = sim.Micros(137.33)
	case iface == Iface3Mb:
		p.Name = "SUN-8MHz-3Mb"
		p.NetCopyPerByte = scale(1.8395, mhz)
		p.NetPerPacket = scale(180, mhz)
	case iface == Iface10Mb && mhz == 10:
		p.Name = "SUN-10MHz-10Mb"
		p.NetCopyPerByte = sim.Micros(1.3374)
		p.NetPerPacket = sim.Micros(114)
	default:
		p.Name = "SUN-8MHz-10Mb"
		p.NetCopyPerByte = scale(1.8395, mhz)
		p.NetPerPacket = scale(150, mhz)
	}
	return p
}

// TxCost returns the CPU time to copy an n-byte packet into the interface
// for transmission (equal to the cost of copying it out on reception).
func (p Profile) TxCost(n int) sim.Time {
	return p.NetPerPacket + sim.Time(n)*p.NetCopyPerByte
}

// RxCost returns the CPU time to copy an n-byte packet out of the interface
// on reception.
func (p Profile) RxCost(n int) sim.Time { return p.TxCost(n) }

// LocalCopy returns the CPU time for an n-byte memory-to-memory copy
// between address spaces on one machine.
func (p Profile) LocalCopy(n int) sim.Time {
	return sim.Time(n) * p.LocalCopyPerByte
}
