package vproto

import (
	"bytes"
	"testing"
)

func samplePacket() *Packet {
	p := &Packet{
		Kind:   KindReply,
		Flags:  FlagLast,
		Seq:    0xDEADBEEF,
		Src:    MakePid(7, 8),
		Dst:    MakePid(9, 10),
		Offset: 1234,
		Count:  512,
		Data:   bytes.Repeat([]byte{0xC3}, 512),
	}
	p.Msg.SetWord(1, 77)
	p.Msg.SetSegment(0, 512, SegFlagWrite)
	return p
}

// TestEncodeIntoMatchesEncode: the allocation-free encoder must produce
// byte-identical frames to the allocating one.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	p := samplePacket()
	want, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, MaxWireSize)
	n, err := p.EncodeInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:n], want) {
		t.Fatal("EncodeInto produced a different frame than Encode")
	}
}

// TestEncodeIntoReusedDirtyBuffer: encoding into a previously used frame
// must fully overwrite the wire image (including the reserved bytes).
func TestEncodeIntoReusedDirtyBuffer(t *testing.T) {
	p := samplePacket()
	want, _ := p.Encode()
	dst := bytes.Repeat([]byte{0xFF}, MaxWireSize)
	n, err := p.EncodeInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:n], want) {
		t.Fatal("dirty reused buffer leaked into the encoded frame")
	}
	if _, err := Decode(dst[:n]); err != nil {
		t.Fatalf("frame encoded into dirty buffer does not decode: %v", err)
	}
}

func TestEncodeIntoShortBuffer(t *testing.T) {
	p := samplePacket()
	if _, err := p.EncodeInto(make([]byte, p.WireSize()-1)); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
	if _, err := (&Packet{Data: make([]byte, MaxData+1)}).EncodeInto(make([]byte, 4096)); err != ErrDataTooBig {
		t.Fatalf("err = %v, want ErrDataTooBig", err)
	}
}

// TestEncodePrefilled: payload placed in the frame first, header written
// around it — must equal the ordinary encoding of the same packet.
func TestEncodePrefilled(t *testing.T) {
	p := samplePacket()
	want, _ := p.Encode()
	dst := make([]byte, MaxWireSize)
	// Gather the payload from two separate sources, as a bulk-transfer
	// packet assembled from cache blocks does.
	copy(dst[HeaderSize+MessageSize:], p.Data[:100])
	copy(dst[HeaderSize+MessageSize+100:], p.Data[100:])
	hdr := *p
	hdr.Data = nil
	n, err := hdr.EncodePrefilled(dst, len(p.Data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst[:n], want) {
		t.Fatal("EncodePrefilled frame differs from Encode")
	}
}

// TestDecodeIntoAliases: DecodeInto must not copy the payload — its Data
// aliases the input frame.
func TestDecodeIntoAliases(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Encode()
	var q Packet
	if err := DecodeInto(&q, buf); err != nil {
		t.Fatal(err)
	}
	if len(q.Data) != len(p.Data) {
		t.Fatalf("data len = %d, want %d", len(q.Data), len(p.Data))
	}
	buf[HeaderSize+MessageSize] ^= 0xFF
	if q.Data[0] == p.Data[0] {
		t.Fatal("DecodeInto copied the payload; it must alias the frame")
	}
}

func TestDecodeRejectsOversizedDataLen(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Encode()
	// Declare more data than MaxData and fix the checksum so only the
	// length check can reject it.
	grown := append(buf, make([]byte, 2048)...)
	const bigLen = MaxData + 512
	grown[24] = byte(bigLen >> 8)
	grown[25] = byte(bigLen & 0xFF)
	grown[28], grown[29], grown[30], grown[31] = 0, 0, 0, 0
	sum := checksum(grown)
	grown[28] = byte(sum >> 24)
	grown[29] = byte(sum >> 16)
	grown[30] = byte(sum >> 8)
	grown[31] = byte(sum)
	if _, err := Decode(grown); err != ErrDataTooBig {
		t.Fatalf("err = %v, want ErrDataTooBig", err)
	}
}
