// Package vproto defines the V interkernel protocol: 32-bit process
// identifiers with an embedded logical-host field (§3.1), 32-byte fixed
// messages with the segment-descriptor conventions of §2.1, and the wire
// format of interkernel packets (§3.2–§3.4). Packets ride directly on the
// data link layer ("raw" Ethernet in the paper, UDP datagrams in this
// library's real runtime); there is no transport layer — the reply message
// doubles as the acknowledgement.
package vproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Pid is a 32-bit globally unique process identifier. The high-order 16
// bits are the logical host identifier; the low-order 16 bits are a locally
// unique identifier (§3.1).
type Pid uint32

// LogicalHost is the logical host subfield of a Pid.
type LogicalHost uint16

// MakePid assembles a Pid from a logical host and a locally unique id.
func MakePid(host LogicalHost, local uint16) Pid {
	return Pid(uint32(host)<<16 | uint32(local))
}

// Host extracts the logical host identifier.
func (p Pid) Host() LogicalHost { return LogicalHost(p >> 16) }

// Local extracts the locally unique identifier.
func (p Pid) Local() uint16 { return uint16(p) }

// Nil is the invalid pid (returned by GetPid for unknown names).
const Nil Pid = 0

func (p Pid) String() string { return fmt.Sprintf("pid(%d.%d)", p.Host(), p.Local()) }

// MessageSize is the fixed size of every V message.
const MessageSize = 32

// Message is the fixed 32-byte V message. By the kernel message format
// conventions, flag bits at the start of the message declare whether the
// sender grants the recipient access to a segment of its address space, and
// the last two words give the segment's start address and length.
type Message [MessageSize]byte

// Message flag bits (stored in byte 0).
const (
	SegFlagPresent = 1 << 0 // a segment is specified
	SegFlagRead    = 1 << 1 // recipient may read the segment
	SegFlagWrite   = 1 << 2 // recipient may write the segment
)

// SetSegment declares a segment in the message: start address and size in
// the sender's address space, with the given access bits (SegFlagRead
// and/or SegFlagWrite).
func (m *Message) SetSegment(start, size uint32, access byte) {
	m[0] |= SegFlagPresent | (access & (SegFlagRead | SegFlagWrite))
	binary.BigEndian.PutUint32(m[24:28], start)
	binary.BigEndian.PutUint32(m[28:32], size)
}

// ClearSegment removes any segment declaration.
func (m *Message) ClearSegment() {
	m[0] &^= SegFlagPresent | SegFlagRead | SegFlagWrite
	binary.BigEndian.PutUint32(m[24:28], 0)
	binary.BigEndian.PutUint32(m[28:32], 0)
}

// Segment returns the declared segment, if any.
func (m *Message) Segment() (start, size uint32, access byte, ok bool) {
	if m[0]&SegFlagPresent == 0 {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint32(m[24:28]),
		binary.BigEndian.Uint32(m[28:32]),
		m[0] & (SegFlagRead | SegFlagWrite),
		true
}

// TraceMask bounds the trace id carried in a message (24 bits).
const TraceMask = 1<<24 - 1

// SetTrace stamps a 24-bit trace id into the message. The id lives in
// bytes 1..3 of word 0 — below the segment flag byte — which every
// sender historically left zero, so zero means "untraced" and traced
// messages are wire-compatible with nodes that have never heard of
// tracing. Replies do not inherit the id automatically: each protocol
// layer that builds a reply or fans a request out (rfs replies,
// replication pushes, invalidation callbacks) re-stamps it explicitly.
func (m *Message) SetTrace(id uint32) {
	m[1] = byte(id >> 16)
	m[2] = byte(id >> 8)
	m[3] = byte(id)
}

// Trace returns the message's 24-bit trace id (0 = untraced).
func (m *Message) Trace() uint32 {
	return uint32(m[1])<<16 | uint32(m[2])<<8 | uint32(m[3])
}

// Word returns the i'th 32-bit word of the message (0..7).
func (m *Message) Word(i int) uint32 {
	return binary.BigEndian.Uint32(m[4*i : 4*i+4])
}

// SetWord sets the i'th 32-bit word of the message (0..7). Word 0 holds the
// flag bits in its top byte; words 6 and 7 hold the segment descriptor.
func (m *Message) SetWord(i int, v uint32) {
	binary.BigEndian.PutUint32(m[4*i:4*i+4], v)
}

// Kind identifies an interkernel packet type.
type Kind uint8

// Interkernel packet kinds.
const (
	KindInvalid      Kind = iota
	KindSend              // remote Send: message (+ optional inline segment prefix)
	KindReply             // remote Reply: message (+ optional inline segment)
	KindReplyPending      // receiver got a retransmission but has not replied yet
	KindNack              // destination process does not exist
	KindMoveToData        // MoveTo data packet
	KindMoveToAck         // single ack when a MoveTo transfer completes
	KindMoveFromReq       // request to stream data back (MoveFrom)
	KindMoveFromData      // MoveFrom data packet
	KindGetPid            // broadcast logical-id lookup
	KindGetPidReply       // response to KindGetPid
)

var kindNames = [...]string{
	"invalid", "send", "reply", "reply-pending", "nack",
	"moveto-data", "moveto-ack", "movefrom-req", "movefrom-data",
	"getpid", "getpid-reply",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Packet flag bits.
const (
	FlagLast        = 1 << 0 // final data packet of a bulk transfer
	FlagRetransmit  = 1 << 1 // kernel-level retransmission
	FlagScopeLocal  = 1 << 2 // name-service scope bits (GetPid/SetPid)
	FlagScopeRemote = 1 << 3
	FlagOverload    = 1 << 4 // on a Nack: receiver shed the message (retryable)
)

// HeaderSize is the wire size of the fixed interkernel header. Every packet
// carries the header plus the 32-byte message area; bulk-data packets carry
// data after the message area.
const HeaderSize = 32

// Version is the interkernel protocol version.
const Version = 1

// Packet is one interkernel packet.
//
// Field use by kind:
//   - Send/Reply: Msg is the V message; Data is an optional inline segment
//     prefix (§3.4), Offset/Count describe which part of the declared
//     segment Data covers.
//   - MoveToData/MoveFromData: Offset is the byte offset within the
//     destination (resp. source) segment, Count the total transfer size,
//     Data the chunk. FlagLast marks the final packet.
//   - MoveToAck: Offset is the number of contiguous bytes received; a
//     non-Last ack asks the mover to resume from Offset.
//   - MoveFromReq: Offset/Count give the requested range of the remote
//     segment.
//   - GetPid: Msg word 1 is the logical id; flags carry the scope.
//     GetPidReply: Msg word 1 logical id, word 2 the pid.
type Packet struct {
	Kind   Kind
	Flags  uint16
	Seq    uint32
	Src    Pid
	Dst    Pid
	Offset uint32
	Count  uint32
	Msg    Message
	Data   []byte
}

// WireSize returns the packet's size on the wire.
func (p *Packet) WireSize() int { return HeaderSize + MessageSize + len(p.Data) }

// MaxData is the most bulk data carried by one interkernel packet
// (a "maximally-sized packet" in §3.3, chosen to fit the experimental
// 3 Mb Ethernet's datagram limit).
const MaxData = 1024

// MaxWireSize is the size of a maximally-sized packet on the wire; every
// valid frame fits in this many bytes, so it is the natural receive-buffer
// size for transports.
const MaxWireSize = HeaderSize + MessageSize + MaxData

// Encoding errors.
var (
	ErrShortPacket = errors.New("vproto: packet too short")
	ErrBadVersion  = errors.New("vproto: bad protocol version")
	ErrBadChecksum = errors.New("vproto: checksum mismatch")
	ErrDataTooBig  = errors.New("vproto: data exceeds MaxData")
	ErrShortBuffer = errors.New("vproto: destination buffer too small")
)

// Encode serializes the packet. Layout (big-endian):
//
//	off 0  kind(1) version(1) flags(2)
//	off 4  seq(4)
//	off 8  src pid(4)
//	off 12 dst pid(4)
//	off 16 offset(4)
//	off 20 count(4)
//	off 24 datalen(2) reserved(2)
//	off 28 checksum(4)
//	off 32 message(32)
//	off 64 data(datalen)
func (p *Packet) Encode() ([]byte, error) {
	if len(p.Data) > MaxData {
		return nil, ErrDataTooBig
	}
	buf := make([]byte, p.WireSize())
	if _, err := p.EncodeInto(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// EncodeInto serializes the packet into dst, which must hold at least
// WireSize bytes, and returns the number of bytes written. It performs no
// allocation, so the hot path can encode straight into pooled frames.
func (p *Packet) EncodeInto(dst []byte) (int, error) {
	if len(p.Data) > MaxData {
		return 0, ErrDataTooBig
	}
	if len(dst) < p.WireSize() {
		return 0, ErrShortBuffer
	}
	copy(dst[HeaderSize+MessageSize:], p.Data)
	return p.EncodePrefilled(dst, len(p.Data))
}

// EncodePrefilled finalizes a frame whose payload bytes are already in
// place at dst[HeaderSize+MessageSize : HeaderSize+MessageSize+dataLen]:
// it writes the header and message around them and computes the checksum
// over the whole frame. p.Data is ignored. This lets gather paths (bulk
// transfers assembling a packet from several cached blocks) copy source
// bytes exactly once — into the wire frame — with no intermediate
// staging buffer.
func (p *Packet) EncodePrefilled(dst []byte, dataLen int) (int, error) {
	if dataLen > MaxData {
		return 0, ErrDataTooBig
	}
	size := HeaderSize + MessageSize + dataLen
	if len(dst) < size {
		return 0, ErrShortBuffer
	}
	buf := dst[:size]
	buf[0] = byte(p.Kind)
	buf[1] = Version
	binary.BigEndian.PutUint16(buf[2:4], p.Flags)
	binary.BigEndian.PutUint32(buf[4:8], p.Seq)
	binary.BigEndian.PutUint32(buf[8:12], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[12:16], uint32(p.Dst))
	binary.BigEndian.PutUint32(buf[16:20], p.Offset)
	binary.BigEndian.PutUint32(buf[20:24], p.Count)
	binary.BigEndian.PutUint16(buf[24:26], uint16(dataLen))
	binary.BigEndian.PutUint16(buf[26:28], 0)
	copy(buf[HeaderSize:], p.Msg[:])
	binary.BigEndian.PutUint32(buf[28:32], checksum(buf))
	return size, nil
}

// Decode parses a packet, verifying version, length and checksum. The
// returned packet owns a private copy of the bulk data; use DecodeInto on
// the hot path to avoid the copy.
func Decode(buf []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodeInto(p, buf); err != nil {
		return nil, err
	}
	if len(p.Data) > 0 {
		p.Data = append([]byte(nil), p.Data...)
	}
	return p, nil
}

// DecodeInto parses buf into p without copying bulk data: p.Data aliases
// buf's payload region. The caller must keep buf alive and unmodified for
// as long as p.Data is referenced — for pooled receive frames that means
// holding a reference (bufpool.Retain) until the last use.
func DecodeInto(p *Packet, buf []byte) error {
	if len(buf) < HeaderSize+MessageSize {
		return ErrShortPacket
	}
	if buf[1] != Version {
		return ErrBadVersion
	}
	want := binary.BigEndian.Uint32(buf[28:32])
	if checksum(buf) != want {
		return ErrBadChecksum
	}
	dataLen := int(binary.BigEndian.Uint16(buf[24:26]))
	if dataLen > MaxData {
		return ErrDataTooBig
	}
	if len(buf) < HeaderSize+MessageSize+dataLen {
		return ErrShortPacket
	}
	p.Kind = Kind(buf[0])
	p.Flags = binary.BigEndian.Uint16(buf[2:4])
	p.Seq = binary.BigEndian.Uint32(buf[4:8])
	p.Src = Pid(binary.BigEndian.Uint32(buf[8:12]))
	p.Dst = Pid(binary.BigEndian.Uint32(buf[12:16]))
	p.Offset = binary.BigEndian.Uint32(buf[16:20])
	p.Count = binary.BigEndian.Uint32(buf[20:24])
	copy(p.Msg[:], buf[HeaderSize:HeaderSize+MessageSize])
	if dataLen > 0 {
		p.Data = buf[HeaderSize+MessageSize : HeaderSize+MessageSize+dataLen]
	} else {
		p.Data = nil
	}
	return nil
}

// checksum folds the packet (minus the checksum field itself) eight
// bytes at a time, rotating the accumulator between words so
// transpositions change the result. It exists to let transports and
// tests detect corruption — any single-byte flip changes its word by a
// nonzero delta, which no rotation can cancel — and it runs an order of
// magnitude faster than a byte-wise loop, which matters because every
// datagram is summed twice (encode and decode) on the hot path.
func checksum(buf []byte) uint32 {
	// The 28 header bytes before the checksum field, then everything
	// after it.
	sum := sumWords(0, buf[:min(28, len(buf))])
	if len(buf) > 32 {
		sum = sumWords(sum, buf[32:])
	}
	return uint32(sum>>32) ^ uint32(sum)
}

// sumWords folds b into sum as big-endian 64-bit words, zero-padding the
// tail.
func sumWords(sum uint64, b []byte) uint64 {
	for len(b) >= 8 {
		sum = bits.RotateLeft64(sum, 13) + binary.BigEndian.Uint64(b)
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		sum = bits.RotateLeft64(sum, 13) + binary.BigEndian.Uint64(tail[:])
	}
	return sum
}
