package vproto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPidFields(t *testing.T) {
	p := MakePid(0x1234, 0x5678)
	if p != Pid(0x12345678) {
		t.Fatalf("MakePid = %#x", uint32(p))
	}
	if p.Host() != 0x1234 || p.Local() != 0x5678 {
		t.Fatalf("fields = %#x %#x", p.Host(), p.Local())
	}
}

func TestPidRoundTripProperty(t *testing.T) {
	f := func(host uint16, local uint16) bool {
		p := MakePid(LogicalHost(host), local)
		return p.Host() == LogicalHost(host) && p.Local() == local
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageSegment(t *testing.T) {
	var m Message
	if _, _, _, ok := m.Segment(); ok {
		t.Fatal("zero message claims a segment")
	}
	m.SetSegment(0x1000, 512, SegFlagRead)
	start, size, access, ok := m.Segment()
	if !ok || start != 0x1000 || size != 512 || access != SegFlagRead {
		t.Fatalf("segment = %v %v %v %v", start, size, access, ok)
	}
	m.ClearSegment()
	if _, _, _, ok := m.Segment(); ok {
		t.Fatal("segment survived ClearSegment")
	}
}

func TestMessageTrace(t *testing.T) {
	var m Message
	if m.Trace() != 0 {
		t.Fatal("zero message claims a trace id")
	}
	// The trace id coexists with segment flags (byte 0) and survives a
	// full round trip; ids are truncated to 24 bits.
	m.SetSegment(0x1000, 512, SegFlagRead)
	m.SetTrace(0xabcdef)
	if m.Trace() != 0xabcdef {
		t.Fatalf("trace = %#x, want 0xabcdef", m.Trace())
	}
	start, size, access, ok := m.Segment()
	if !ok || start != 0x1000 || size != 512 || access != SegFlagRead {
		t.Fatalf("segment clobbered by SetTrace: %v %v %v %v", start, size, access, ok)
	}
	m.SetTrace(0xff000001)
	if m.Trace() != 0x000001 {
		t.Fatalf("trace not truncated to 24 bits: %#x", m.Trace())
	}
	m.SetTrace(0)
	if m.Trace() != 0 {
		t.Fatal("trace id not clearable")
	}
}

func TestMessageWords(t *testing.T) {
	var m Message
	for i := 0; i < 8; i++ {
		m.SetWord(i, uint32(i*7+1))
	}
	for i := 0; i < 8; i++ {
		if m.Word(i) != uint32(i*7+1) {
			t.Fatalf("word %d = %d", i, m.Word(i))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var msg Message
	msg.SetWord(1, 42)
	msg.SetSegment(4096, 512, SegFlagRead|SegFlagWrite)
	in := &Packet{
		Kind:   KindSend,
		Flags:  FlagLast | FlagRetransmit,
		Seq:    7,
		Src:    MakePid(1, 2),
		Dst:    MakePid(3, 4),
		Offset: 100,
		Count:  512,
		Msg:    msg,
		Data:   []byte("hello segment data"),
	}
	buf, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != in.WireSize() {
		t.Fatalf("wire size %d != %d", len(buf), in.WireSize())
	}
	out, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Flags != in.Flags || out.Seq != in.Seq ||
		out.Src != in.Src || out.Dst != in.Dst || out.Offset != in.Offset ||
		out.Count != in.Count || out.Msg != in.Msg || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); err != ErrShortPacket {
		t.Fatalf("short: %v", err)
	}
	p := &Packet{Kind: KindReply}
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf...)
	bad[1] = 99
	if _, err := Decode(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), buf...)
	bad[40] ^= 0xFF // flip a message byte
	if _, err := Decode(bad); err != ErrBadChecksum {
		t.Fatalf("checksum: %v", err)
	}
	if _, err := (&Packet{Data: make([]byte, MaxData+1)}).Encode(); err != ErrDataTooBig {
		t.Fatalf("too big: %v", err)
	}
	// Truncated data region.
	p = &Packet{Kind: KindMoveToData, Data: make([]byte, 100)}
	buf, err = p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The checksum check fires first on truncation only if length bytes
	// survive; force the declared length beyond the buffer.
	if _, err := Decode(buf[:HeaderSize+MessageSize]); err == nil {
		t.Fatal("truncated packet decoded")
	}
}

// Property: Encode/Decode round-trips arbitrary packets.
func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(kind uint8, flags uint16, seq, src, dst, off, count uint32, msgSeed int64, dataLen uint16) bool {
		var msg Message
		r := rand.New(rand.NewSource(msgSeed))
		r.Read(msg[:])
		data := make([]byte, int(dataLen)%MaxData)
		rng.Read(data)
		in := &Packet{
			Kind: Kind(kind % 11), Flags: flags, Seq: seq,
			Src: Pid(src), Dst: Pid(dst), Offset: off, Count: count,
			Msg: msg, Data: data,
		}
		buf, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(buf)
		if err != nil {
			return false
		}
		return out.Kind == in.Kind && out.Flags == in.Flags && out.Seq == in.Seq &&
			out.Src == in.Src && out.Dst == in.Dst && out.Offset == in.Offset &&
			out.Count == in.Count && out.Msg == in.Msg && bytes.Equal(out.Data, in.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption outside the checksum field is
// detected (the checksum is weak but must catch all 1-byte flips).
func TestChecksumDetectsCorruptionProperty(t *testing.T) {
	p := &Packet{Kind: KindSend, Seq: 9, Src: MakePid(1, 1), Dst: MakePid(2, 2), Data: []byte("payload bytes")}
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, flip uint8) bool {
		i := int(pos) % len(buf)
		if i >= 28 && i < 32 {
			return true // corrupting the checksum itself: Decode may or may not fail; skip
		}
		if flip == 0 {
			return true
		}
		bad := append([]byte(nil), buf...)
		bad[i] ^= flip
		if i == 1 { // version byte: may decode as bad version instead
			_, err := Decode(bad)
			return err != nil
		}
		_, err := Decode(bad)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindSend.String() != "send" || KindMoveToAck.String() != "moveto-ack" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}
