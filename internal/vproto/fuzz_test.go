package vproto

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte strings to both decoders: malformed or
// truncated frames must produce an error — never a panic, never a
// Packet whose Data overruns the input — and anything that decodes must
// re-encode to a frame that decodes to the same packet (the wire format
// round-trips).
func FuzzDecode(f *testing.F) {
	// Seed with valid frames across the packet shapes, plus mutations.
	seed := []*Packet{
		{Kind: KindSend, Seq: 1, Src: MakePid(1, 2), Dst: MakePid(3, 4)},
		{Kind: KindReply, Seq: 7, Src: 9, Dst: 10, Offset: 64, Count: 512,
			Data: bytes.Repeat([]byte{0xAB}, 512)},
		{Kind: KindMoveToData, Flags: FlagLast, Seq: 99, Offset: 4096,
			Count: 65536, Data: bytes.Repeat([]byte{0x5A}, MaxData)},
		{Kind: KindGetPid, Flags: FlagScopeRemote, Seq: 3},
	}
	for _, p := range seed {
		p.Msg.SetWord(1, 42)
		buf, err := p.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1]) // truncated
		mut := append([]byte(nil), buf...)
		mut[5] ^= 0x80 // corrupted
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0, Version})

	f.Fuzz(func(t *testing.T, buf []byte) {
		p, err := Decode(buf)
		var q Packet
		errInto := DecodeInto(&q, buf)
		if (err == nil) != (errInto == nil) {
			t.Fatalf("Decode err=%v but DecodeInto err=%v", err, errInto)
		}
		if err != nil {
			return
		}
		if len(p.Data) > len(buf) {
			t.Fatalf("decoded Data longer than input: %d > %d", len(p.Data), len(buf))
		}
		if !bytes.Equal(p.Data, q.Data) || p.Msg != q.Msg || p.Kind != q.Kind ||
			p.Flags != q.Flags || p.Seq != q.Seq || p.Src != q.Src ||
			p.Dst != q.Dst || p.Offset != q.Offset || p.Count != q.Count {
			t.Fatal("Decode and DecodeInto disagree")
		}
		// Round-trip: re-encoding must produce a frame that decodes to the
		// same packet (the input may have carried trailing garbage that
		// checksummed by luck, so compare packets, not bytes).
		re, err := p.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded packet failed: %v", err)
		}
		p2, err := Decode(re)
		if err != nil {
			t.Fatalf("decode of re-encoded packet failed: %v", err)
		}
		if !bytes.Equal(p.Data, p2.Data) || p.Msg != p2.Msg || p.Kind != p2.Kind ||
			p.Flags != p2.Flags || p.Seq != p2.Seq || p.Src != p2.Src ||
			p.Dst != p2.Dst || p.Offset != p2.Offset || p.Count != p2.Count {
			t.Fatal("round trip changed the packet")
		}
	})
}
