package ether

import (
	"testing"

	"vkernel/internal/sim"
)

func TestWireTime(t *testing.T) {
	cfg := Ethernet3Mb()
	// 64 bytes at 2.94 Mb/s = 174.1 µs.
	got := cfg.WireTime(64)
	if got < 174*sim.Microsecond || got > 175*sim.Microsecond {
		t.Fatalf("WireTime(64) = %v", got)
	}
	if Ethernet10Mb().WireTime(1250) != sim.Millisecond {
		t.Fatalf("10 Mb WireTime(1250) = %v", Ethernet10Mb().WireTime(1250))
	}
}

func TestUnicastDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Ethernet3Mb())
	var got []Frame
	net.Attach(1, func(f Frame) { got = append(got, f) })
	p2 := net.Attach(2, func(f Frame) { t.Error("frame delivered to wrong station") })
	var txDone sim.Time
	p2.Transmit(Frame{Dst: 1, Bytes: 64, Payload: []byte("x")}, func() { txDone = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Src != 2 || string(got[0].Payload) != "x" {
		t.Fatalf("got %v", got)
	}
	cfg := net.Config()
	if txDone != cfg.WireTime(64) {
		t.Fatalf("tx buffer freed at %v", txDone)
	}
	// Delivery happens wire time + latency after start.
	if eng.Now() != cfg.WireTime(64)+cfg.Latency {
		t.Fatalf("delivered at %v", eng.Now())
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Ethernet3Mb())
	seen := map[Addr]int{}
	for a := Addr(1); a <= 3; a++ {
		a := a
		net.Attach(a, func(f Frame) { seen[a]++ })
	}
	net.ports[1].Transmit(Frame{Dst: BroadcastAddr, Bytes: 64}, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if seen[1] != 0 || seen[2] != 1 || seen[3] != 1 {
		t.Fatalf("seen = %v", seen)
	}
	if net.Stats().Broadcasts != 1 {
		t.Fatalf("stats: %+v", net.Stats())
	}
}

func TestCarrierSenseDefersSecondFrame(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Ethernet3Mb())
	var deliveries []sim.Time
	net.Attach(1, func(f Frame) { deliveries = append(deliveries, eng.Now()) })
	p2 := net.Attach(2, nil)
	p3 := net.Attach(3, nil)
	p2.handler = func(Frame) {}
	p3.handler = func(Frame) {}
	p2.Transmit(Frame{Dst: 1, Bytes: 1024}, nil)
	// Start the second frame mid-transmission of the first (past the
	// collision window): it must defer, not collide.
	eng.Schedule(500*sim.Microsecond, "second", func() {
		p3.Transmit(Frame{Dst: 1, Bytes: 64}, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	st := net.Stats()
	if st.Collisions != 0 || st.Deferrals == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The deferred frame must start after the first ends.
	firstEnd := net.Config().WireTime(1024)
	if deliveries[1] < firstEnd+net.Config().WireTime(64) {
		t.Fatalf("second delivery too early: %v", deliveries[1])
	}
}

func TestCollisionDetectedAndRetried(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Ethernet3Mb())
	delivered := 0
	net.Attach(1, func(f Frame) { delivered++ })
	p2 := net.Attach(2, nil)
	p3 := net.Attach(3, nil)
	p2.handler = func(Frame) {}
	p3.handler = func(Frame) {}
	// Both start within the slot window: collision, then backoff+retry.
	p2.Transmit(Frame{Dst: 1, Bytes: 64}, nil)
	eng.Schedule(2*sim.Microsecond, "collider", func() {
		p3.Transmit(Frame{Dst: 1, Bytes: 64}, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d, want both after retry", delivered)
	}
	if net.Stats().Collisions == 0 {
		t.Fatal("collision not recorded")
	}
}

func TestHWBugCorruptsInsteadOfRetrying(t *testing.T) {
	cfg := Ethernet3Mb()
	cfg.HWCollisionBug = true
	cfg.BugDeferCorruptProb = 0 // only true window collisions here
	eng := sim.NewEngine(1)
	net := New(eng, cfg)
	// The explicit 0 is replaced by the default in New; force it back.
	net.cfg.BugDeferCorruptProb = 0
	delivered := 0
	net.Attach(1, func(f Frame) { delivered++ })
	p2 := net.Attach(2, nil)
	p3 := net.Attach(3, nil)
	p2.handler = func(Frame) {}
	p3.handler = func(Frame) {}
	p2.Transmit(Frame{Dst: 1, Bytes: 64}, nil)
	eng.Schedule(sim.Microsecond, "collider", func() {
		p3.Transmit(Frame{Dst: 1, Bytes: 64}, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0 (both corrupted)", delivered)
	}
	st := net.Stats()
	if st.UndetectedCollisions == 0 || st.CorruptedDrops != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRandomDrops(t *testing.T) {
	cfg := Ethernet3Mb()
	cfg.DropRate = 1.0
	eng := sim.NewEngine(1)
	net := New(eng, cfg)
	net.Attach(1, func(f Frame) { t.Error("dropped frame delivered") })
	p2 := net.Attach(2, nil)
	p2.handler = func(Frame) {}
	freed := false
	p2.Transmit(Frame{Dst: 1, Bytes: 64}, func() { freed = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !freed {
		t.Fatal("tx buffer not freed for a dropped frame")
	}
	if net.Stats().RandomDrops != 1 {
		t.Fatalf("stats: %+v", net.Stats())
	}
}

func TestFramesToUnknownStationsVanish(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, Ethernet3Mb())
	p1 := net.Attach(1, func(Frame) {})
	p1.Transmit(Frame{Dst: 99, Bytes: 64}, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Stats().Delivered != 0 {
		t.Fatal("delivery to unknown station")
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate attach")
		}
	}()
	eng := sim.NewEngine(1)
	net := New(eng, Ethernet3Mb())
	net.Attach(1, func(Frame) {})
	net.Attach(1, func(Frame) {})
}
