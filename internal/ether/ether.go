// Package ether models a shared-medium Ethernet segment: CSMA/CD with
// carrier sense, deferral, collision detection, binary exponential backoff,
// broadcast, and fault injection — including the undetected-collision
// hardware bug of the paper's experimental 3 Mb Ethernet interfaces (§5.4),
// which turns collisions into silently corrupted (dropped) packets instead
// of detected-and-retried ones.
package ether

import (
	"fmt"

	"vkernel/internal/sim"
)

// Addr is a station address on the segment.
type Addr uint16

// BroadcastAddr is the destination address for broadcast frames.
const BroadcastAddr Addr = 0xFFFF

// Frame is one link-level datagram. Bytes is the total wire size including
// the interkernel header; Payload is the encoded interkernel packet.
type Frame struct {
	Src     Addr
	Dst     Addr
	Bytes   int
	Payload []byte
}

// Broadcast reports whether the frame is addressed to all stations.
func (f Frame) Broadcast() bool { return f.Dst == BroadcastAddr }

// Config describes the physical network.
type Config struct {
	Name     string
	BitRate  float64  // bits per second
	Latency  sim.Time // propagation + interface latency, sender to receiver
	SlotTime sim.Time // collision window: transmissions starting within this window collide
	// MaxPayload is the largest interkernel payload (excluding the 32-byte
	// header) carried in one frame.
	MaxPayload int
	// MaxAttempts bounds link-level retransmissions after collisions.
	MaxAttempts int

	// Fault injection.
	// HWCollisionBug: collisions go undetected; the overlapping frames are
	// delivered corrupted and dropped by the receiver (paper §5.4). The
	// bug manifests at busy→idle transitions, so frames transmitted right
	// after a carrier-sense deferral are corrupted with probability
	// BugDeferCorruptProb (the paper reports roughly one corruption per
	// 2000 packets for its workload; the default reproduces that rate for
	// the §5.4 two-pair experiment).
	HWCollisionBug      bool
	BugDeferCorruptProb float64
	// DropRate is the probability an otherwise-good frame is lost.
	DropRate float64
}

// Ethernet3Mb returns the paper's experimental 3 Mb Ethernet
// (2.94 Mb/s — §4 computes network time at that rate).
func Ethernet3Mb() Config {
	return Config{
		Name:        "3Mb-Ethernet",
		BitRate:     2.94e6,
		Latency:     30 * sim.Microsecond,
		SlotTime:    4 * sim.Microsecond,
		MaxPayload:  1088,
		MaxAttempts: 16,
	}
}

// Ethernet10Mb returns the standard 10 Mb Ethernet of §8.
func Ethernet10Mb() Config {
	return Config{
		Name:        "10Mb-Ethernet",
		BitRate:     10e6,
		Latency:     30 * sim.Microsecond,
		SlotTime:    5 * sim.Microsecond, // ~512 bit times
		MaxPayload:  1440,
		MaxAttempts: 16,
	}
}

// WireTime returns the serialization time for n bytes at the configured
// bit rate.
func (c Config) WireTime(n int) sim.Time {
	return sim.Time(float64(n*8) / c.BitRate * float64(sim.Second))
}

// Stats counts network-level events; read it via Network.Stats.
type Stats struct {
	Frames               int // transmission attempts that completed
	Bytes                int64
	Broadcasts           int
	Collisions           int // collision episodes
	UndetectedCollisions int // collisions hidden by the hardware bug
	CorruptedDrops       int // frames dropped at receivers due to corruption
	RandomDrops          int
	Delivered            int
	Deferrals            int // carrier-sense busy waits
}

// Network is one Ethernet segment.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	ports map[Addr]*Port
	order []Addr // attachment order, for deterministic broadcast delivery
	stats Stats

	// Current transmission state.
	txActive  bool
	txStart   sim.Time
	txEnd     sim.Time
	collided  bool
	inFlight  []*transmission
	busyUntil sim.Time // medium considered busy through this time
}

type transmission struct {
	frame    Frame
	attempts int
	done     func()
	corrupt  bool
}

// Port is one station's attachment to the network.
type Port struct {
	net     *Network
	addr    Addr
	handler func(Frame)
}

// New creates an Ethernet segment on the engine.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 16
	}
	if cfg.HWCollisionBug && cfg.BugDeferCorruptProb == 0 {
		cfg.BugDeferCorruptProb = 0.12
	}
	return &Network{eng: eng, cfg: cfg, ports: make(map[Addr]*Port)}
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats { return n.stats }

// Attach connects a station. The handler is invoked (in an event callback)
// for every frame addressed to addr or broadcast, after the frame's wire
// and latency time. Attaching an address twice panics.
func (n *Network) Attach(addr Addr, handler func(Frame)) *Port {
	if addr == BroadcastAddr {
		panic("ether: cannot attach at the broadcast address")
	}
	if _, dup := n.ports[addr]; dup {
		panic(fmt.Sprintf("ether: duplicate station address %#x", addr))
	}
	p := &Port{net: n, addr: addr, handler: handler}
	n.ports[addr] = p
	n.order = append(n.order, addr)
	return p
}

// Addr returns the port's station address.
func (p *Port) Addr() Addr { return p.addr }

// Transmit sends a frame. done (may be nil) is invoked when the frame has
// left the sending interface — i.e. when the transmit buffer is free for
// the next packet — regardless of whether the frame was ultimately
// delivered.
func (p *Port) Transmit(f Frame, done func()) {
	f.Src = p.addr
	p.net.try(&transmission{frame: f, done: done})
}

func (n *Network) try(tx *transmission) {
	now := n.eng.Now()
	if n.txActive {
		if now-n.txStart <= n.cfg.SlotTime {
			n.collide(tx)
			return
		}
		// Carrier sensed: defer until the medium goes idle, plus a small
		// deterministic-random interframe delay to break ties.
		n.stats.Deferrals++
		if n.cfg.HWCollisionBug && n.eng.Rand().Float64() < n.cfg.BugDeferCorruptProb {
			// The buggy interface mistimes the busy→idle transition: the
			// frame goes out overlapping the tail of the other one, the
			// collision goes undetected, and the frame arrives corrupted.
			n.stats.UndetectedCollisions++
			tx.corrupt = true
		}
		wait := n.busyUntil - now + sim.Time(n.eng.Rand().Int63n(int64(8*sim.Microsecond)))
		n.eng.Schedule(wait, "ether:defer", func() { n.try(tx) })
		return
	}
	n.begin(tx)
}

func (n *Network) begin(tx *transmission) {
	now := n.eng.Now()
	n.txActive = true
	n.txStart = now
	n.collided = false
	n.inFlight = []*transmission{tx}
	dur := n.cfg.WireTime(tx.frame.Bytes)
	n.txEnd = now + dur
	n.busyUntil = n.txEnd
	n.eng.At(n.txEnd, "ether:txdone", func() { n.finish() })
}

// collide handles a new transmission starting inside the collision window
// of the in-flight one.
func (n *Network) collide(tx *transmission) {
	n.stats.Collisions++
	n.inFlight = append(n.inFlight, tx)
	if n.cfg.HWCollisionBug {
		// The interfaces do not detect the collision: all overlapping
		// frames continue to completion and arrive corrupted.
		n.stats.UndetectedCollisions++
		n.collided = true
		for _, t := range n.inFlight {
			t.corrupt = true
		}
		// Extend the busy period to cover the later frame.
		end := n.eng.Now() + n.cfg.WireTime(tx.frame.Bytes)
		if end > n.txEnd {
			prev := n.txEnd
			n.txEnd = end
			n.busyUntil = end
			_ = prev
			n.eng.At(end, "ether:txdone-late", func() {}) // finish() fires at original txEnd; deliveries handled there
		}
		return
	}
	// Detected collision: everyone jams, aborts, and backs off.
	n.collided = true
	colliders := n.inFlight
	n.inFlight = nil
	n.txActive = false
	jamEnd := n.eng.Now() + n.cfg.SlotTime
	if jamEnd > n.busyUntil {
		n.busyUntil = jamEnd
	}
	for _, t := range colliders {
		t.attempts++
		if t.attempts >= n.cfg.MaxAttempts {
			// Excessive collisions: drop; the kernel's own retransmission
			// recovers.
			if t.done != nil {
				cb := t.done
				n.eng.Schedule(0, "ether:abort", cb)
			}
			continue
		}
		k := t.attempts
		if k > 10 {
			k = 10
		}
		backoff := sim.Time(n.eng.Rand().Int63n(int64(k)*2+1)) * n.cfg.SlotTime
		tt := t
		n.eng.Schedule(n.cfg.SlotTime+backoff, "ether:backoff", func() { n.try(tt) })
	}
}

// finish completes the in-flight transmission: frees sender buffers and
// delivers frames (unless corrupted or randomly dropped).
func (n *Network) finish() {
	if !n.txActive {
		return // collision already dismantled this transmission
	}
	txs := n.inFlight
	n.txActive = false
	n.inFlight = nil
	for _, t := range txs {
		n.stats.Frames++
		n.stats.Bytes += int64(t.frame.Bytes)
		if t.frame.Broadcast() {
			n.stats.Broadcasts++
		}
		if t.done != nil {
			cb := t.done
			n.eng.Schedule(0, "ether:free", cb)
		}
		if t.corrupt {
			n.stats.CorruptedDrops++
			continue
		}
		if n.cfg.DropRate > 0 && n.eng.Rand().Float64() < n.cfg.DropRate {
			n.stats.RandomDrops++
			continue
		}
		n.deliver(t.frame)
	}
}

func (n *Network) deliver(f Frame) {
	if f.Broadcast() {
		for _, addr := range n.order {
			if addr == f.Src {
				continue
			}
			pt := n.ports[addr]
			n.eng.Schedule(n.cfg.Latency, "ether:rx-bcast", func() { pt.handler(f) })
			n.stats.Delivered++
		}
		return
	}
	if port, ok := n.ports[f.Dst]; ok {
		n.eng.Schedule(n.cfg.Latency, "ether:rx", func() { port.handler(f) })
		n.stats.Delivered++
	}
	// Frames to unknown stations vanish, as on a real wire.
}

// Utilization returns the fraction of time the medium has been busy up to
// now, assuming the simulation started at time zero.
func (n *Network) Utilization() float64 {
	if n.eng.Now() == 0 {
		return 0
	}
	return float64(n.stats.Bytes*8) / n.cfg.BitRate / n.eng.Now().Seconds()
}
