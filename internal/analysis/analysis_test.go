package analysis_test

import (
	"strings"
	"testing"

	"vkernel/internal/analysis"
	"vkernel/internal/analysis/analysistest"
	"vkernel/internal/analysis/wireword"
)

// TestSuppressions pins the driver's suppression contract: a justified
// //vlint:ignore removes the diagnostic, an unjustified one is itself
// reported and leaves the diagnostic standing.
func TestSuppressions(t *testing.T) {
	prog := analysistest.Load(t, "testdata/src/suppress", "fixture/suppress")
	diags := analysis.Run(prog, []*analysis.Analyzer{wireword.Analyzer})

	var gotWireword, gotMarker int
	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		switch {
		case d.Analyzer == "wireword":
			gotWireword++
			// The surviving finding must be the unjustified one (line 10),
			// not the justified one (line 14).
			if p.Line != 10 {
				t.Errorf("wireword diagnostic at line %d, want 10 (the unjustified site)", p.Line)
			}
		case d.Analyzer == "vlint":
			gotMarker++
			if !strings.Contains(d.Message, "missing a justification") {
				t.Errorf("vlint diagnostic %q, want a missing-justification report", d.Message)
			}
		default:
			t.Errorf("unexpected diagnostic %s: %s", d.Analyzer, d.Message)
		}
	}
	if gotWireword != 1 {
		t.Errorf("got %d wireword diagnostics, want 1 (justified site suppressed, unjustified not)", gotWireword)
	}
	if gotMarker != 1 {
		t.Errorf("got %d vlint marker diagnostics, want 1", gotMarker)
	}
}
