package analysis_test

import (
	"testing"

	"vkernel/internal/analysis"
	"vkernel/internal/analysis/load"
	"vkernel/internal/analysis/suite"
)

// TestRepoClean runs the full vlint suite over the whole module and
// requires a clean bill: every invariant the analyzers encode holds on
// the tree as committed, and any deliberate exception carries a
// justified //vlint:ignore.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	dir, err := load.ModuleDir(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	prog, err := load.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := analysis.Run(prog, suite.Analyzers())
	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		t.Errorf("%s:%d:%d: %s: %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
}
