// Package analysis defines the vlint analyzer interface and driver.
//
// Six PRs of zero-copy buffers, write-behind caching, invalidation
// callbacks, and volume sharding have left the kernel's correctness
// resting on conventions no compiler checks: buffer references must be
// released on every path, sharded mutexes must nest in one order,
// protocol words must be named. Each analyzer in the suite encodes one
// of those conventions as a machine-checked invariant; the driver loads
// the module, runs the suite, and applies `//vlint:ignore` suppressions
// (which must carry a non-empty justification).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"vkernel/internal/analysis/load"
)

// Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass hands an analyzer the whole loaded program. Analyzers that work
// package-at-a-time iterate Packages; global analyzers (lockorder) see
// every package at once so cross-package lock nesting is visible.
type Pass struct {
	Fset     *token.FileSet
	Packages []*load.Package
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// IgnorePrefix introduces a suppression comment:
//
//	//vlint:ignore <analyzer> <justification>
//
// placed on the flagged line or the line above it. The justification is
// mandatory; a suppression without one is itself reported.
const IgnorePrefix = "//vlint:ignore"

type suppression struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// collectSuppressions scans a file's comments for vlint:ignore markers,
// keyed by filename:line for both the comment's own line and the line
// below it (so a suppression comment can sit above the flagged code).
func collectSuppressions(fset *token.FileSet, file *ast.File) map[string][]*suppression {
	out := make(map[string][]*suppression)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, IgnorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			s := &suppression{analyzer: name, reason: strings.TrimSpace(reason), pos: c.Pos()}
			p := fset.Position(c.Pos())
			out[fmt.Sprintf("%s:%d", p.Filename, p.Line)] = append(out[fmt.Sprintf("%s:%d", p.Filename, p.Line)], s)
			out[fmt.Sprintf("%s:%d", p.Filename, p.Line+1)] = append(out[fmt.Sprintf("%s:%d", p.Filename, p.Line+1)], s)
		}
	}
	return out
}

// Run executes every analyzer over the program, drops suppressed
// diagnostics, reports empty-reason suppressions, and returns the
// survivors sorted by position.
func Run(prog *load.Program, analyzers []*Analyzer) []Diagnostic {
	pass := &Pass{Fset: prog.Fset, Packages: prog.Packages}
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(pass) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
	}

	supp := make(map[string][]*suppression)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for k, v := range collectSuppressions(prog.Fset, f) {
				supp[k] = append(supp[k], v...)
			}
		}
	}

	var kept []Diagnostic
	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		suppressed := false
		for _, s := range supp[key] {
			if s.analyzer != d.Analyzer {
				continue
			}
			s.used = true
			if s.reason == "" {
				// An unjustified suppression does not suppress; it is
				// reported below and the diagnostic stands.
				continue
			}
			suppressed = true
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	// Empty-reason suppressions are findings in their own right, used or
	// not — the whole point of the marker is the recorded justification.
	reported := make(map[token.Pos]bool)
	for _, ss := range supp {
		for _, s := range ss {
			if s.reason == "" && !reported[s.pos] {
				reported[s.pos] = true
				kept = append(kept, Diagnostic{
					Pos:      s.pos,
					Analyzer: "vlint",
					Message:  "vlint:ignore suppression is missing a justification",
				})
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := prog.Fset.Position(kept[i].Pos), prog.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}
