// Package suite assembles the production vlint analyzer suite,
// including the repository's declared lock order. cmd/vlint and the
// self-check test both run exactly this configuration.
package suite

import (
	"vkernel/internal/analysis"
	"vkernel/internal/analysis/bufref"
	"vkernel/internal/analysis/lockorder"
	"vkernel/internal/analysis/spawncheck"
	"vkernel/internal/analysis/unlockpath"
	"vkernel/internal/analysis/wireword"
)

// LockOrder is the declared partial nesting order over the kernel's
// lock classes: a class may only be acquired while holding classes
// that appear earlier. Classes are (package.Type.field); acquiring
// against this order is a lockorder diagnostic. The order is derived
// from the real nesting in the tree (dump it with `vlint -lockgraph`):
// tables pin their per-entry locks before releasing the table lock,
// and the caches reach into stores while holding the cache lock — so
// tables and caches come before the entry/store locks they wrap.
var LockOrder = []string{
	// ipc: dispatch-side tables first, then the per-entry locks they
	// pin, then leaf shards.
	"ipc.alienTable.mu",
	"ipc.moveTable.mu",
	"ipc.pendingTable.mu",
	"ipc.pendingSend.io",
	"ipc.moveOp.io",
	"ipc.moveOp.mu",
	"ipc.moveTable.rxMu",
	"ipc.moveRxState.mu",
	"ipc.procShard.mu",
	// rfs: cache above the store it flushes into; registry above the
	// per-entry job state it feeds. (Cache→store nesting goes through
	// the Store interface, which the dynamic-dispatch-blind graph does
	// not see; the declaration still documents and enforces the order
	// for any direct acquisition that appears later.)
	"rfs.blockCache.mu",
	"rfs.cacheRegistry.mu",
	"rfs.FileStore.mu",
	"rfs.MemStore.mu",
	"rfs.DelayStore.mu",
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bufref.Analyzer,
		lockorder.New(LockOrder),
		spawncheck.Analyzer,
		unlockpath.Analyzer,
		wireword.Analyzer,
	}
}
