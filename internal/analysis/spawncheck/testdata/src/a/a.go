// Fixture: goroutines in the kernel's ipc/rfs scope must signal
// completion to someone — a WaitGroup, a channel send, or a close.
// The test loads this package under a vkernel/internal/ipc/... import
// path so it falls inside the analyzer's scope.
package a

import "sync"

type pool struct {
	wg   sync.WaitGroup
	jobs chan int
	done chan struct{}
}

// bare signals nobody: Close cannot wait for it.
func bare(p *pool) {
	go func() { // want "goroutine is not accounted"
		for range p.jobs {
		}
	}()
}

// viaWaitGroup is accounted through wg.Done.
func viaWaitGroup(p *pool) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for range p.jobs {
		}
	}()
}

// viaChannel is accounted through the completion send.
func viaChannel(p *pool) {
	go func() {
		for j := range p.jobs {
			_ = j
		}
		p.done <- struct{}{}
	}()
}

// viaClose is accounted through closing the completion channel.
func viaClose(p *pool) {
	go func() {
		for range p.jobs {
		}
		close(p.done)
	}()
}

func worker(p *pool) {
	defer p.wg.Done()
	for range p.jobs {
	}
}

// viaCallee is accounted inside the named worker it spawns.
func viaCallee(p *pool) {
	p.wg.Add(1)
	go worker(p)
}

func silentWorker(p *pool) {
	for range p.jobs {
	}
}

// viaBadCallee spawns a named worker that signals nobody.
func viaBadCallee(p *pool) {
	go silentWorker(p) // want "goroutine is not accounted"
}

// dynamic spawns a function value the analyzer cannot chase.
func dynamic(fn func()) {
	go fn() // want "dynamic function value"
}
