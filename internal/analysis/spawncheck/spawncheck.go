// Package spawncheck flags unaccounted goroutines in the ipc and rfs
// packages. Every long-lived goroutine in the kernel is supposed to be
// drained at Close — transport workers join a WaitGroup, flushers and
// invalidators belong to pools, pipelined stages hand their result back
// over a channel. A bare `go func(){ ... }()` that signals completion
// to nobody is how callback wedges and shutdown hangs happen: Close
// returns while the stray goroutine still touches freed state.
//
// A goroutine is considered accounted if its body — or a same-module
// function it calls, up to three levels deep — signals completion via
// sync.WaitGroup.Done, a channel send, or a channel close. Anything
// else must either be restructured onto a pool or carry a
// `//vlint:ignore spawncheck <reason>` explaining who owns its
// lifetime.
package spawncheck

import (
	"go/ast"
	"go/types"
	"strings"

	"vkernel/internal/analysis"
	"vkernel/internal/analysis/load"
)

// Analyzer is the spawncheck checker.
var Analyzer = &analysis.Analyzer{
	Name: "spawncheck",
	Doc:  "goroutines in ipc/rfs must be accounted to a pool, WaitGroup, or channel",
	Run:  run,
}

// scopes are the package path prefixes the invariant applies to.
var scopes = []string{"vkernel/internal/ipc", "vkernel/internal/rfs"}

func inScope(path string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// maxCallDepth bounds the search through same-module callees.
const maxCallDepth = 3

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]declSite
}

type declSite struct {
	decl *ast.FuncDecl
	pkg  *load.Package
}

// buildIndex maps every module function object to its declaration, so a
// `go t.worker()` can be chased into worker's body. Object identities
// are shared across source-checked packages, so cross-package calls
// resolve too.
func buildIndex(pass *analysis.Pass) map[*types.Func]declSite {
	idx := make(map[*types.Func]declSite)
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[obj] = declSite{decl: fd, pkg: pkg}
				}
			}
		}
	}
	return idx
}

func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// callee resolves a call expression to a module function declaration.
func (c *checker) callee(info *types.Info, call *ast.CallExpr) (declSite, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return declSite{}, false
	}
	obj, _ := info.Uses[id].(*types.Func)
	if obj == nil {
		return declSite{}, false
	}
	site, ok := c.decls[obj]
	return site, ok
}

// accounted reports whether the body signals completion somewhere: a
// WaitGroup.Done, a channel send, or a close — directly or in a callee.
func (c *checker) accounted(info *types.Info, body ast.Node, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isWaitGroupDone(info, n) {
				found = true
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
					found = true
					return false
				}
			}
			if depth > 0 {
				if site, ok := c.callee(info, n); ok {
					if c.accounted(site.pkg.Info, site.decl.Body, depth-1) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

func run(pass *analysis.Pass) []analysis.Diagnostic {
	c := &checker{pass: pass, decls: buildIndex(pass)}
	var diags []analysis.Diagnostic
	for _, pkg := range pass.Packages {
		if !inScope(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var body ast.Node
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					body = lit.Body
				} else if site, ok := c.callee(pkg.Info, g.Call); ok {
					if c.accounted(site.pkg.Info, site.decl.Body, maxCallDepth-1) {
						return true
					}
					diags = append(diags, analysis.Diagnostic{
						Pos:     g.Pos(),
						Message: "goroutine is not accounted to a WaitGroup, channel, or drained pool; Close cannot wait for it",
					})
					return true
				} else {
					// Unresolvable target (func value): nothing to inspect.
					diags = append(diags, analysis.Diagnostic{
						Pos:     g.Pos(),
						Message: "goroutine target is a dynamic function value; account it to a WaitGroup or channel at the spawn site",
					})
					return true
				}
				if !c.accounted(pkg.Info, body, maxCallDepth) {
					diags = append(diags, analysis.Diagnostic{
						Pos:     g.Pos(),
						Message: "goroutine is not accounted to a WaitGroup, channel, or drained pool; Close cannot wait for it",
					})
				}
				return true
			})
		}
	}
	return diags
}
