package spawncheck_test

import (
	"testing"

	"vkernel/internal/analysis/analysistest"
	"vkernel/internal/analysis/spawncheck"
)

func TestGolden(t *testing.T) {
	// The import path puts the fixture inside the analyzer's ipc scope.
	analysistest.Run(t, spawncheck.Analyzer, "testdata/src/a", "vkernel/internal/ipc/spawnfixture")
}
