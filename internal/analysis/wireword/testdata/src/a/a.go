// Fixture: raw word indices outside proto.go are flagged; named
// constants, proto.go itself, and justified suppressions are not.
package a

import "vkernel/internal/vproto"

const wordFile = 2

func flagged(m *vproto.Message) uint32 {
	m.SetWord(1, 7)  // want "raw word index 1 in SetWord call"
	return m.Word(3) // want "raw word index 3 in Word call"
}

func named(m *vproto.Message) uint32 {
	m.SetWord(wordFile, 7)
	return m.Word(wordFile)
}

func suppressed(m *vproto.Message) {
	m.SetWord(4, 1) //vlint:ignore wireword fixture: demonstrates a justified suppression
}

func bytes(m *vproto.Message, i int) byte {
	m[1] = 0xff // want "raw byte index into a wire message"
	b := m[i]   // want "raw byte index into a wire message"
	return b + byteAt(m, i)
}
