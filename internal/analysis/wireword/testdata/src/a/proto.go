// Raw indices are allowed here: a file named proto.go is a designated
// home of wire-layout knowledge.
package a

import "vkernel/internal/vproto"

func accessor(m *vproto.Message) uint32 { return m.Word(5) }

func byteAt(m *vproto.Message, i int) byte { return m[i] }
