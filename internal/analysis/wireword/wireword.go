// Package wireword flags raw integer indexing into interkernel message
// words. The V protocol gives each of the eight request/reply words a
// meaning — op code in word 1, file in word 2, block or byte offset in
// word 3, count in word 4, volume in word 5, invalidation version and
// volume in words 5/6 — and those meanings must live in one auditable
// place. A call like m.SetWord(5, vol) scattered through a handler is a
// protocol-layout decision hiding in the data path; it must go through
// a named constant or an accessor defined in a file named proto.go or
// vproto.go (the allowlisted homes of wire-layout knowledge).
//
// The same rule applies one level down: subscripting a Message's bytes
// directly (m[1], m[i]) bakes byte-level layout — like the 24-bit trace
// id in bytes 1–3 — into whatever file does it. Byte access goes
// through vproto accessors (Trace/SetTrace, Word/SetWord) or lives in
// the allowlisted proto files.
package wireword

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"

	"vkernel/internal/analysis"
)

const messagePkg = "vkernel/internal/vproto"

// Analyzer is the wireword checker.
var Analyzer = &analysis.Analyzer{
	Name: "wireword",
	Doc:  "protocol words must be indexed through named constants outside proto.go/vproto.go",
	Run:  run,
}

// isMessage reports whether t is vproto.Message (possibly behind a
// pointer or an alias such as ipc.Message).
func isMessage(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == messagePkg && obj.Name() == "Message"
}

func run(pass *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
			if base == "proto.go" || base == "vproto.go" {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if idx, ok := n.(*ast.IndexExpr); ok {
					recv := pkg.Info.Types[idx.X]
					if recv.Type != nil && isMessage(recv.Type) {
						diags = append(diags, analysis.Diagnostic{
							Pos:     idx.Pos(),
							Message: "raw byte index into a wire message: use a vproto accessor or move this to proto.go/vproto.go",
						})
					}
					return true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Word" && sel.Sel.Name != "SetWord") || len(call.Args) == 0 {
					return true
				}
				recv := pkg.Info.Types[sel.X]
				if recv.Type == nil || !isMessage(recv.Type) {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok {
					return true
				}
				diags = append(diags, analysis.Diagnostic{
					Pos: lit.Pos(),
					Message: fmt.Sprintf("raw word index %s in %s call: name this word with a constant or accessor in proto.go/vproto.go",
						lit.Value, sel.Sel.Name),
				})
				return true
			})
		}
	}
	return diags
}
