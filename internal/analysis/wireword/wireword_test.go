package wireword_test

import (
	"testing"

	"vkernel/internal/analysis/analysistest"
	"vkernel/internal/analysis/wireword"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, wireword.Analyzer, "testdata/src/a", "fixture/wireword/a")
}
