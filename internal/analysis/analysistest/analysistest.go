// Package analysistest is the golden-fixture harness for the vlint
// analyzers. A fixture is an ordinary Go package under an analyzer's
// testdata/src directory; lines expected to be flagged carry a
// trailing comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// and the harness fails the test on any diagnostic without a matching
// want (false positive) or any want without a matching diagnostic
// (false negative). Fixtures are type-checked against the real module
// — a bufref fixture imports the real vkernel/internal/bufpool — so
// the tests exercise the same type-identity checks the production run
// does.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"vkernel/internal/analysis"
	"vkernel/internal/analysis/load"
)

// Load type-checks the fixture package in dir (relative to the test's
// working directory) under the import path path. The import path
// matters to path-scoped analyzers: a spawncheck fixture declares
// itself under vkernel/internal/ipc/... to fall inside the invariant's
// scope.
func Load(t *testing.T, dir, path string) *load.Program {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("resolving fixture dir %s: %v", dir, err)
	}
	modDir, err := load.ModuleDir(abs)
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	imp, fset, err := load.NewImporter(modDir)
	if err != nil {
		t.Fatalf("building importer: %v", err)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	pkg, err := imp.Check(path, abs, files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &load.Program{Fset: fset, Packages: []*load.Package{pkg}}
}

// Run loads the fixture and runs the analyzer over it through the full
// driver (so //vlint:ignore suppressions behave exactly as in
// production), then matches diagnostics against the want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, path string) {
	t.Helper()
	prog := Load(t, dir, path)
	diags := analysis.Run(prog, []*analysis.Analyzer{a})
	wants := collectWants(t, prog)

	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", filepath.Base(p.Filename), p.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants parses every `// want "re"` comment in the fixture.
func collectWants(t *testing.T, prog *load.Program) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					p := prog.Fset.Position(c.Pos())
					quoted := quotedRE.FindAllString(text[len("want "):], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: want comment with no quoted pattern", p.Filename, p.Line)
					}
					for _, q := range quoted {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", p.Filename, p.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, pat, err)
						}
						wants = append(wants, &want{file: p.Filename, line: p.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// Fprint is a debugging aid for writing new fixtures: it prints every
// diagnostic the analyzer produces on the fixture.
func Fprint(t *testing.T, a *analysis.Analyzer, dir, path string) {
	t.Helper()
	prog := Load(t, dir, path)
	for _, d := range analysis.Run(prog, []*analysis.Analyzer{a}) {
		p := prog.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s: %s\n", filepath.Base(p.Filename), p.Line, p.Column, d.Analyzer, d.Message)
	}
}
