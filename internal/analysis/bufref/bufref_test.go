package bufref_test

import (
	"testing"

	"vkernel/internal/analysis/analysistest"
	"vkernel/internal/analysis/bufref"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, bufref.Analyzer, "testdata/src/a", "fixture/bufref/a")
}
