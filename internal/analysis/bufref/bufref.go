// Package bufref checks bufpool reference ownership along every path
// of a function. The pool's convention — established in PR 3 and
// load-bearing for every zero-copy path since — is that any call
// returning a *bufpool.Buf (Get, Retain, a cache lookup) hands the
// caller one owned reference, and that reference must be consumed on
// every path out of the function: released, stored into a ref-holding
// structure, sent on a channel, or returned to the caller. A path that
// forgets is a slab leak the runtime Outstanding() check only catches
// if a test happens to drive that path; releasing twice corrupts the
// pool (the runtime panics).
//
// The analyzer runs an abstract interpretation over each function's
// CFG. A local assigned from a Buf-returning call becomes tracked
// (owned). Ownership is conditional when the call also returns an
// error or a comma-ok bool: the buffer is owned only on the err==nil /
// ok branch, and branch edges refine the state (including through `&&`
// chains, `err == SomeErr` comparisons, and tagless switches). A
// var-to-var assignment moves ownership; stores into fields, composite
// literals, append calls, channel sends, and returns consume it;
// capture by a closure or goroutine, or taking the address, escapes it
// (tracking stops — the reference has a new owner the analysis cannot
// see). Passing a tracked buffer as a plain call argument is a borrow:
// callees that retain for themselves do their own Retain.
//
// Reported: paths that reach a return with an owned (or
// possibly-owned) reference, a Release when the reference is already
// definitely released (double release — deferring a Release and then
// releasing again on a branch is the classic shape), and overwriting a
// variable that still owns a reference.
package bufref

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"vkernel/internal/analysis"
	"vkernel/internal/analysis/cfg"
	"vkernel/internal/analysis/load"
)

// Analyzer is the bufref checker.
var Analyzer = &analysis.Analyzer{
	Name: "bufref",
	Doc:  "every owned *bufpool.Buf reference must be consumed on every path",
	Run:  run,
}

const bufPkg = "vkernel/internal/bufpool"

// isBuf reports whether t is *bufpool.Buf.
func isBuf(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == bufPkg && n.Obj().Name() == "Buf"
}

// Abstract ownership bits. A var's state is a set of these (one per
// path shape flowing into the point).
const (
	bitUnowned  uint8 = 1 << iota // no reference held (nil, moved away, consumed)
	bitOwned                      // holds exactly one owned reference
	bitReleased                   // reference definitely released
	bitEscaped                    // ownership visible to code we cannot track
)

type vstate struct {
	bits   uint8
	cond   *types.Var // when set: owned iff cond==nil (error) or cond true (bool)
	condOk bool       // cond is a comma-ok bool rather than an error
}

func (v vstate) hasCond() bool { return v.cond != nil }

func (v vstate) eq(o vstate) bool {
	return v.bits == o.bits && v.cond == o.cond && v.condOk == o.condOk
}

// mayOwn reports whether any path shape still owns the reference.
func (v vstate) mayOwn() bool { return v.bits&bitOwned != 0 || v.hasCond() }

type state map[*types.Var]vstate

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func joinV(a, b vstate) vstate {
	out := vstate{bits: a.bits | b.bits}
	switch {
	case a.cond == b.cond && a.condOk == b.condOk:
		out.cond, out.condOk = a.cond, a.condOk
	case a.cond == nil:
		out.cond, out.condOk = b.cond, b.condOk
	case b.cond == nil:
		out.cond, out.condOk = a.cond, a.condOk
	default:
		// Two different conditional sources met: degrade to maybe-owned.
		out.bits |= bitOwned | bitUnowned
	}
	return out
}

func (s state) join(o state) bool {
	changed := false
	for k, ov := range o {
		sv, ok := s[k]
		if !ok {
			// Absent means "not assigned on this path": unowned.
			sv = vstate{bits: bitUnowned}
		}
		nv := joinV(sv, ov)
		if !ok || !nv.eq(sv) {
			s[k] = nv
			changed = true
		}
	}
	for k, sv := range s {
		if _, ok := o[k]; !ok {
			nv := joinV(sv, vstate{bits: bitUnowned})
			if !nv.eq(sv) {
				s[k] = nv
				changed = true
			}
		}
	}
	return changed
}

// funcAnalysis carries per-function machinery.
type funcAnalysis struct {
	pass    *analysis.Pass
	pkg     *load.Package
	diags   *[]analysis.Diagnostic
	srcPos  map[*types.Var]token.Pos
	seen    map[string]bool
	report  bool
	curPost state // state being mutated by transfer
}

func (a *funcAnalysis) info() *types.Info { return a.pkg.Info }

func (a *funcAnalysis) diag(pos token.Pos, format string, args ...any) {
	if !a.report {
		return
	}
	p := a.pass.Fset.Position(pos)
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, msg)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	*a.diags = append(*a.diags, analysis.Diagnostic{Pos: pos, Message: msg})
}

// localVar resolves an identifier to its variable object if it is a
// plain (non-field) variable.
func (a *funcAnalysis) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := a.info().Uses[id]
	if obj == nil {
		obj = a.info().Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

func (a *funcAnalysis) tracked(e ast.Expr) (*types.Var, bool) {
	v := a.localVar(e)
	if v == nil {
		return nil, false
	}
	_, ok := a.curPost[v]
	return v, ok
}

// bufMethodCall matches x.Release() / x.Retain() on a *Buf receiver
// where x is a plain identifier.
func (a *funcAnalysis) bufMethodCall(call *ast.CallExpr, name string) (*types.Var, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	tv, ok := a.info().Types[sel.X]
	if !ok || tv.Type == nil || !isBuf(tv.Type) {
		return nil, false
	}
	v, ok := a.tracked(sel.X)
	if !ok {
		return nil, false
	}
	return v, true
}

func (a *funcAnalysis) release(v *types.Var, pos token.Pos) {
	st := a.curPost[v]
	if st.bits == bitReleased && !st.hasCond() {
		a.diag(pos, "double release of %s: the reference was already released on every path here", v.Name())
	}
	nb := uint8(0)
	if st.bits&bitUnowned != 0 {
		nb |= bitUnowned
	}
	if st.bits&(bitOwned|bitReleased) != 0 || st.hasCond() {
		nb |= bitReleased
	}
	if st.bits&bitEscaped != 0 {
		nb |= bitEscaped
	}
	if nb == 0 {
		nb = bitReleased
	}
	a.curPost[v] = vstate{bits: nb}
}

func (a *funcAnalysis) consume(v *types.Var) { a.curPost[v] = vstate{bits: bitUnowned} }

func (a *funcAnalysis) escape(v *types.Var) { a.curPost[v] = vstate{bits: bitEscaped} }

func (a *funcAnalysis) retainBare(v *types.Var, pos token.Pos) {
	st := a.curPost[v]
	if st.bits&bitOwned != 0 || st.hasCond() {
		// A second owned reference on one variable: beyond the
		// single-reference domain, stop tracking rather than misreport.
		a.escape(v)
		return
	}
	a.curPost[v] = vstate{bits: bitOwned}
	a.srcPos[v] = pos
}

// source marks v as freshly owned from a call, with optional
// conditional ownership.
func (a *funcAnalysis) source(v *types.Var, pos token.Pos, cond *types.Var, condOk bool) {
	if st, ok := a.curPost[v]; ok && st.mayOwn() {
		a.diag(pos, "overwriting %s while it may still own a reference (acquired at %s)",
			v.Name(), a.pass.Fset.Position(a.srcPos[v]))
	}
	a.curPost[v] = vstate{bits: 0, cond: cond, condOk: condOk}
	if cond == nil {
		a.curPost[v] = vstate{bits: bitOwned}
	}
	a.srcPos[v] = pos
}

// invalidateCond degrades any state conditioned on a variable that is
// being reassigned: the old err/ok value is gone, so conditional
// ownership becomes plain maybe-owned.
func (a *funcAnalysis) invalidateCond(w *types.Var) {
	for k, st := range a.curPost {
		if st.cond == w {
			st.cond = nil
			st.bits |= bitOwned | bitUnowned
			a.curPost[k] = st
		}
	}
}

// kill overwrites a tracked var with an untracked value.
func (a *funcAnalysis) kill(v *types.Var, pos token.Pos) {
	if st, ok := a.curPost[v]; ok {
		if st.mayOwn() {
			a.diag(pos, "overwriting %s while it may still own a reference (acquired at %s)",
				v.Name(), a.pass.Fset.Position(a.srcPos[v]))
		}
		a.curPost[v] = vstate{bits: bitUnowned}
	}
}

// genericScan walks an expression applying the non-positional effects:
// Release/Retain calls, closure captures, address-taking, composite
// literals, and append arguments.
func (a *funcAnalysis) genericScan(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			a.closureCapture(m)
			return false
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if v, ok := a.tracked(m.X); ok {
					a.escape(v)
				}
			}
		case *ast.CompositeLit:
			a.consumeComposite(m)
			return false
		case *ast.CallExpr:
			if v, ok := a.bufMethodCall(m, "Release"); ok {
				a.release(v, m.Pos())
				return false
			}
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range m.Args {
					a.consumeExpr(arg)
				}
				return false
			}
		}
		return true
	})
}

// closureCapture escapes tracked vars used inside a function literal,
// except vars whose only use there is a Release call (the deferred
// cleanup-closure idiom) — those count as released.
func (a *funcAnalysis) closureCapture(lit *ast.FuncLit) {
	released := make(map[*types.Var]token.Pos)
	other := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if v, ok := a.bufMethodCall(call, "Release"); ok {
				released[v] = call.Pos()
				return false
			}
		}
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := a.tracked(id); ok {
				other[v] = true
			}
		}
		return true
	})
	for v := range other {
		a.escape(v)
	}
	for v, pos := range released {
		if !other[v] {
			a.release(v, pos)
		}
	}
}

// consumeComposite consumes tracked vars stored directly into a
// composite literal.
func (a *funcAnalysis) consumeComposite(lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		a.consumeExpr(el)
	}
}

// consumeExpr applies store semantics to an expression whose value is
// kept by someone else (composite element, send, return operand).
func (a *funcAnalysis) consumeExpr(e ast.Expr) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := a.tracked(e); ok {
			a.consume(v)
		}
	case *ast.CompositeLit:
		a.consumeComposite(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			a.consumeExpr(e.X)
			return
		}
		a.genericScan(e)
	case *ast.CallExpr:
		a.callEffects(e)
	default:
		a.genericScan(e)
	}
}

// callEffects processes a call's own effects: argument borrows,
// composite-literal args, closure args, plus Release/Retain receivers.
func (a *funcAnalysis) callEffects(call *ast.CallExpr) {
	if v, ok := a.bufMethodCall(call, "Release"); ok {
		a.release(v, call.Pos())
		return
	}
	a.genericScan(call.Fun)
	isAppend := false
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		isAppend = true
	}
	for _, arg := range call.Args {
		if isAppend {
			a.consumeExpr(arg)
			continue
		}
		switch ast.Unparen(arg).(type) {
		case *ast.Ident:
			// Borrow: callee retains for itself if it keeps the buffer.
		default:
			a.genericScan(arg)
		}
	}
}

// sourceResults inspects a call's result types and marks LHS vars.
func (a *funcAnalysis) assignFromCall(lhs []ast.Expr, call *ast.CallExpr, pos token.Pos) {
	a.callEffects(call)
	tv, ok := a.info().Types[call]
	if !ok || tv.Type == nil {
		return
	}
	var results []types.Type
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			results = append(results, tup.At(i).Type())
		}
	} else {
		results = []types.Type{tv.Type}
	}
	if len(results) != len(lhs) {
		return
	}
	// Locate conditional-ownership companions: an error result, or a
	// bool in a two-result (value, ok) shape.
	var condVar *types.Var
	var condOk bool
	for i, rt := range results {
		if isErrorType(rt) {
			condVar = a.localVar(lhs[i])
			condOk = false
		}
	}
	if condVar == nil && len(results) >= 2 && isBoolType(results[len(results)-1]) {
		condVar = a.localVar(lhs[len(lhs)-1])
		condOk = true
	}
	for _, l := range lhs {
		if v := a.localVar(l); v != nil {
			a.invalidateCond(v)
		}
	}
	for i, rt := range results {
		v := a.localVar(lhs[i])
		if v == nil {
			continue
		}
		if isBuf(rt) {
			a.source(v, pos, condVar, condOk)
		} else {
			a.kill(v, pos)
		}
	}
}

func isErrorType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func (a *funcAnalysis) assign(n *ast.AssignStmt) {
	// Single call RHS: tuple or single-value sources.
	if len(n.Rhs) == 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			allSimple := true
			for _, l := range n.Lhs {
				if _, ok := ast.Unparen(l).(*ast.Ident); !ok {
					allSimple = false
				}
			}
			if allSimple {
				a.assignFromCall(n.Lhs, call, n.Pos())
				return
			}
			// Compound LHS (field/index): the results are stored away.
			a.callEffects(call)
			return
		}
	}
	if len(n.Lhs) != len(n.Rhs) {
		for _, r := range n.Rhs {
			a.genericScan(r)
		}
		return
	}
	for i := range n.Lhs {
		lhs, rhs := ast.Unparen(n.Lhs[i]), ast.Unparen(n.Rhs[i])
		lv := a.localVar(lhs)
		_, lhsIsIdent := lhs.(*ast.Ident)
		switch {
		case lhsIsIdent && lv != nil:
			a.invalidateCond(lv)
			if rv, ok := a.tracked(rhs); ok {
				// Move: the reference changes hands.
				st := a.curPost[rv]
				if st2, ok := a.curPost[lv]; ok && st2.mayOwn() {
					a.diag(n.Pos(), "overwriting %s while it may still own a reference (acquired at %s)",
						lv.Name(), a.pass.Fset.Position(a.srcPos[lv]))
				}
				a.curPost[lv] = st
				a.srcPos[lv] = a.srcPos[rv]
				a.consume(rv)
				continue
			}
			if call, ok := rhs.(*ast.CallExpr); ok {
				a.assignFromCall([]ast.Expr{lhs}, call, n.Pos())
				continue
			}
			a.kill(lv, n.Pos())
			a.genericScan(rhs)
		default:
			// Store into a field, slice, map, or dereference.
			a.consumeExpr(rhs)
		}
	}
}

func (a *funcAnalysis) deferStmt(call *ast.CallExpr) {
	if v, ok := a.bufMethodCall(call, "Release"); ok {
		// Early-debit: the deferred release runs on every exit.
		a.release(v, call.Pos())
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		a.closureCapture(lit)
		return
	}
	a.callEffects(call)
}

func (a *funcAnalysis) escapeAll(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := a.tracked(id); ok {
				a.escape(v)
			}
		}
		return true
	})
}

func (a *funcAnalysis) returnStmt(n *ast.ReturnStmt) {
	for _, r := range n.Results {
		a.consumeExpr(r)
	}
	a.checkLeaks(n.Pos())
}

func (a *funcAnalysis) checkLeaks(pos token.Pos) {
	for v, st := range a.curPost {
		if st.mayOwn() {
			qualifier := ""
			if st.bits&(bitUnowned|bitReleased) != 0 || st.hasCond() {
				qualifier = "on some paths "
			}
			a.diag(pos, "%s may still own a buffer reference %shere (acquired at %s): release, store, or return it on every path",
				v.Name(), qualifier, a.pass.Fset.Position(a.srcPos[v]))
		}
	}
}

// transfer applies one CFG node to curPost.
func (a *funcAnalysis) transfer(node ast.Node) {
	switch n := node.(type) {
	case *ast.AssignStmt:
		a.assign(n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				if len(vs.Values) == 1 {
					if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, nm := range vs.Names {
							lhs[i] = nm
						}
						a.assignFromCall(lhs, call, n.Pos())
						continue
					}
				}
				for _, val := range vs.Values {
					a.genericScan(val)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if v, ok := a.bufMethodCall(call, "Retain"); ok {
				a.retainBare(v, call.Pos())
				return
			}
			a.callEffects(call)
			return
		}
		a.genericScan(n.X)
	case *ast.DeferStmt:
		a.deferStmt(n.Call)
	case *ast.GoStmt:
		a.escapeAll(n)
	case *ast.SendStmt:
		a.consumeExpr(n.Value)
		a.genericScan(n.Chan)
	case *ast.ReturnStmt:
		a.returnStmt(n)
	case *ast.RangeStmt:
		a.genericScan(n.X)
	default:
		a.genericScan(node)
	}
}

// refine applies edge facts to conditional states.
func refine(s state, facts []cfg.Fact, a *funcAnalysis) {
	for _, f := range facts {
		applyFact(s, f.Cond, f.Negated, a)
	}
}

// applyFact decomposes a branch condition into nil-ness / truth facts
// about cond vars and resolves conditional ownership.
func applyFact(s state, cond ast.Expr, negated bool, a *funcAnalysis) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			applyFact(s, c.X, !negated, a)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if !negated {
				applyFact(s, c.X, false, a)
				applyFact(s, c.Y, false, a)
			}
		case token.LOR:
			if negated {
				applyFact(s, c.X, true, a)
				applyFact(s, c.Y, true, a)
			}
		case token.EQL, token.NEQ:
			isNil := func(e ast.Expr) bool {
				id, ok := ast.Unparen(e).(*ast.Ident)
				return ok && id.Name == "nil"
			}
			var operand ast.Expr
			var cmpNil bool
			switch {
			case isNil(c.Y):
				operand, cmpNil = c.X, true
			case isNil(c.X):
				operand, cmpNil = c.Y, true
			default:
				// err == SomeNonNilError: truth implies err != nil.
				operand, cmpNil = c.X, false
			}
			v := a.localVar(operand)
			if v == nil {
				return
			}
			// Determine whether v is nil on this edge, if decidable.
			eq := c.Op == token.EQL
			if negated {
				eq = !eq
			}
			switch {
			case cmpNil && eq: // v == nil holds
				resolveCond(s, v, false)
			case cmpNil && !eq: // v != nil holds
				resolveCond(s, v, true)
			case !cmpNil && eq: // v == X (non-nil) holds ⇒ v non-nil
				resolveCond(s, v, true)
			}
		}
	case *ast.Ident:
		// Bare bool condition: ok / !ok.
		v := a.localVar(c)
		if v == nil {
			return
		}
		resolveBool(s, v, !negated)
	}
}

// resolveCond fixes vars conditioned on error var v: nonNil=true means
// the error is non-nil (buffer not owned).
func resolveCond(s state, errVar *types.Var, nonNil bool) {
	for k, st := range s {
		if st.cond != errVar || st.condOk {
			continue
		}
		st.cond = nil
		if nonNil {
			st.bits |= bitUnowned
		} else {
			st.bits |= bitOwned
		}
		s[k] = st
	}
}

// resolveBool fixes vars conditioned on a comma-ok var.
func resolveBool(s state, okVar *types.Var, truth bool) {
	for k, st := range s {
		if st.cond != okVar || !st.condOk {
			continue
		}
		st.cond = nil
		if truth {
			st.bits |= bitOwned
		} else {
			st.bits |= bitUnowned
		}
		s[k] = st
	}
}

func stateEq(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if ov, ok := b[k]; !ok || !ov.eq(v) {
			return false
		}
	}
	return true
}

func (a *funcAnalysis) checkFunc(body *ast.BlockStmt) {
	g := cfg.New(body)
	in := make(map[*cfg.Block]state)
	in[g.Entry] = state{}
	work := []*cfg.Block{g.Entry}
	onWork := map[*cfg.Block]bool{g.Entry: true}

	runBlock := func(blk *cfg.Block, report bool) state {
		a.report = report
		a.curPost = in[blk].clone()
		for _, node := range blk.Nodes {
			a.transfer(node)
		}
		// Fall-off-the-end exits.
		if report {
			for _, e := range blk.Succs {
				if e.To != g.Exit {
					continue
				}
				last := ast.Node(nil)
				if len(blk.Nodes) > 0 {
					last = blk.Nodes[len(blk.Nodes)-1]
				}
				if _, isRet := last.(*ast.ReturnStmt); !isRet {
					a.checkLeaks(body.End())
				}
			}
		}
		return a.curPost
	}

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		onWork[blk] = false
		out := runBlock(blk, false)
		for _, e := range blk.Succs {
			next := out.clone()
			refine(next, e.Facts, a)
			dst, ok := in[e.To]
			if !ok {
				in[e.To] = next
				dst = next
				if !onWork[e.To] {
					onWork[e.To] = true
					work = append(work, e.To)
				}
				continue
			}
			before := dst.clone()
			if dst.join(next) && !stateEq(before, dst) && !onWork[e.To] {
				onWork[e.To] = true
				work = append(work, e.To)
			}
		}
	}

	// Report pass over converged states.
	for _, blk := range g.Reachable() {
		if _, ok := in[blk]; !ok {
			continue
		}
		runBlock(blk, true)
	}
}

func run(pass *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			a := &funcAnalysis{
				pass:   pass,
				pkg:    pkg,
				diags:  &diags,
				srcPos: make(map[*types.Var]token.Pos),
				seen:   make(map[string]bool),
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						a.checkFunc(n.Body)
					}
				case *ast.FuncLit:
					a.checkFunc(n.Body)
				}
				return true
			})
		}
	}
	return diags
}
