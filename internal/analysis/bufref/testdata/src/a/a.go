// Fixture: a buffer reference must die — released, stored, returned,
// or handed off — on every path out of the function.
package a

import (
	"errors"

	"vkernel/internal/bufpool"
)

var errTooSmall = errors.New("too small")

// leak forgets the reference on the early-return path.
func leak(n int) int {
	b := bufpool.Get(n)
	if n > 4096 {
		return -1 // want "b may still own a buffer reference"
	}
	b.Release()
	return n
}

// doubleRelease releases a reference the deferred Release already owns.
func doubleRelease(n int) {
	b := bufpool.Get(n)
	defer b.Release()
	b.Release() // want "double release of b"
}

// condOwned owns b only when err is nil; both paths are clean.
func condOwned(n int) (*bufpool.Buf, error) {
	b, err := acquire(n)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func acquire(n int) (*bufpool.Buf, error) {
	if n < 0 {
		return nil, errTooSmall
	}
	return bufpool.Get(n), nil
}

type cache struct {
	bufs map[uint32]*bufpool.Buf
}

func (c *cache) get(id uint32) (*bufpool.Buf, bool) {
	b, ok := c.bufs[id]
	return b, ok
}

// commaOk owns b only when ok is true; the miss path is clean.
func commaOk(c *cache, id uint32) int {
	if b, ok := c.get(id); ok {
		n := b.Cap()
		b.Release()
		return n
	}
	return 0
}

// stash transfers ownership into a ref-holding structure.
func stash(c *cache, id uint32, n int) {
	c.bufs[id] = bufpool.Get(n)
}
