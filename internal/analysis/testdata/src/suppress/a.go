// Fixture for the driver's suppression rules: an unjustified
// //vlint:ignore neither suppresses nor passes — the marker itself is
// reported and the diagnostic stands — while a justified one works.
package suppress

import "vkernel/internal/vproto"

func unjustified(m *vproto.Message) {
	//vlint:ignore wireword
	m.SetWord(6, 2)
}

func justified(m *vproto.Message) {
	m.SetWord(6, 2) //vlint:ignore wireword fixture: justification recorded here
}
