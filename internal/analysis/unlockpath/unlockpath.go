// Package unlockpath checks that a function which locks a mutex
// unlocks it on every return path (or defers the unlock). The ipc
// tables and the rfs caches use manual Lock/Unlock sequencing on hot
// paths — handleSend alone releases the alien-table mutex on seven
// branches — and a single early return while holding a shard mutex
// wedges every later request that hashes to the shard.
//
// The check tracks a per-lock-expression depth along the CFG: Lock and
// RLock add one, Unlock and RUnlock subtract one, and a deferred unlock
// subtracts immediately (defers always run before the function's caller
// resumes, so for exit-state purposes the early debit is exact — it
// also keeps the mid-loop "unlock, service, relock under a pending
// defer" idiom in rfs's flushFile at a net depth of zero). A return
// reached with positive depth on any path is reported.
package unlockpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"vkernel/internal/analysis"
	"vkernel/internal/analysis/cfg"
	"vkernel/internal/analysis/load"
)

// Analyzer is the unlockpath checker.
var Analyzer = &analysis.Analyzer{
	Name: "unlockpath",
	Doc:  "a locked mutex must be unlocked on every return path or deferred",
	Run:  run,
}

// maxDepth bounds tracked lock depth so pathological loops terminate;
// keys that escape the bound are ignored rather than misreported.
const maxDepth = 4

type lockOp struct {
	key   string // canonical receiver expression + mode, e.g. "t.mu" / "t.mu(r)"
	delta int
	pos   token.Pos
}

// mutexMethod classifies a selector call as a lock operation on a
// sync.Mutex or sync.RWMutex receiver.
func mutexMethod(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var delta int
	var read bool
	switch sel.Sel.Name {
	case "Lock":
		delta = 1
	case "Unlock":
		delta = -1
	case "RLock":
		delta, read = 1, true
	case "RUnlock":
		delta, read = -1, true
	default:
		return lockOp{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return lockOp{}, false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	name := n.Obj().Name()
	if name != "Mutex" && name != "RWMutex" {
		return lockOp{}, false
	}
	key := types.ExprString(sel.X)
	if read {
		key += "(r)"
	}
	return lockOp{key: key, delta: delta, pos: call.Pos()}, true
}

// opsIn collects lock operations in a node in source order, without
// descending into function literals (their bodies run elsewhere).
// Deferred direct unlocks and deferred closures are included — the
// early-debit model.
func opsIn(info *types.Info, node ast.Node) []lockOp {
	var ops []lockOp
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return inDefer // deferred closure bodies run at exit; others do not run here
			case *ast.GoStmt:
				return false
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.CallExpr:
				if op, ok := mutexMethod(info, m); ok {
					ops = append(ops, op)
				}
			}
			return true
		})
	}
	walk(node, false)
	return ops
}

// depths is the set of possible lock depths for one key at one point.
type depths map[int]bool

func (d depths) clone() depths {
	c := make(depths, len(d))
	for k := range d {
		c[k] = true
	}
	return c
}

type state map[string]depths

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v.clone()
	}
	return c
}

// join unions o into s, reporting whether s changed.
func (s state) join(o state) bool {
	changed := false
	for k, dv := range o {
		dst, ok := s[k]
		if !ok {
			s[k] = dv.clone()
			changed = true
			continue
		}
		for d := range dv {
			if !dst[d] {
				dst[d] = true
				changed = true
			}
		}
	}
	return changed
}

func (s state) apply(op lockOp) {
	d, ok := s[op.key]
	if !ok {
		d = depths{0: true}
		s[op.key] = d
	}
	next := make(depths, len(d))
	for v := range d {
		nv := v + op.delta
		if nv > maxDepth {
			nv = maxDepth
		}
		if nv < -maxDepth {
			nv = -maxDepth
		}
		next[nv] = true
	}
	s[op.key] = next
}

type checker struct {
	pass  *analysis.Pass
	pkg   *load.Package
	diags *[]analysis.Diagnostic
	seen  map[string]bool
}

func (c *checker) checkReturn(s state, pos token.Pos) {
	for key, dv := range s {
		held := false
		for d := range dv {
			if d >= maxDepth {
				held = false // chaotic growth: ignore this key
				break
			}
			if d > 0 {
				held = true
			}
		}
		if !held {
			continue
		}
		p := c.pass.Fset.Position(pos)
		id := fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, key)
		if c.seen[id] {
			continue
		}
		c.seen[id] = true
		*c.diags = append(*c.diags, analysis.Diagnostic{
			Pos:     pos,
			Message: fmt.Sprintf("return path may hold %s: unlock on every path or defer the unlock", trimMode(key)),
		})
	}
}

func trimMode(key string) string {
	if len(key) > 3 && key[len(key)-3:] == "(r)" {
		return key[:len(key)-3] + " (read-locked)"
	}
	return key
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	g := cfg.New(body)
	blocks := g.Reachable()
	in := make(map[*cfg.Block]state)
	in[g.Entry] = state{}
	work := []*cfg.Block{g.Entry}
	onWork := map[*cfg.Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		onWork[blk] = false
		s := in[blk].clone()
		for _, node := range blk.Nodes {
			if ret, ok := node.(*ast.ReturnStmt); ok {
				c.checkReturn(s, ret.Pos())
				continue
			}
			for _, op := range opsIn(c.pkg.Info, node) {
				s.apply(op)
			}
		}
		// Implicit return: the block flows to Exit without a return
		// statement (fall off the end of the function).
		for _, e := range blk.Succs {
			if e.To == g.Exit {
				if len(blk.Nodes) == 0 {
					c.checkReturn(s, body.End())
				} else if _, ok := blk.Nodes[len(blk.Nodes)-1].(*ast.ReturnStmt); !ok {
					c.checkReturn(s, body.End())
				}
			}
			dst, ok := in[e.To]
			if !ok {
				dst = state{}
				in[e.To] = dst
			}
			if dst.join(s) && !onWork[e.To] {
				onWork[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	_ = blocks
}

func run(pass *analysis.Pass) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, pkg := range pass.Packages {
		c := &checker{pass: pass, pkg: pkg, diags: &diags, seen: make(map[string]bool)}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						c.checkFunc(n.Body)
					}
				case *ast.FuncLit:
					c.checkFunc(n.Body)
				}
				return true
			})
		}
	}
	return diags
}
