// Fixture: a locked mutex must be unlocked on every return path, or
// the unlock must be deferred.
package a

import "sync"

type table struct {
	mu sync.Mutex
	n  int
}

// early returns while holding t.mu on the stop path.
func early(t *table, stop bool) int {
	t.mu.Lock()
	if stop {
		return -1 // want "return path may hold t.mu"
	}
	t.mu.Unlock()
	return t.n
}

// deferred covers every path with one defer.
func deferred(t *table, stop bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if stop {
		return -1
	}
	return t.n
}

// relock drops and retakes the lock under a pending defer — the
// mid-loop service idiom — at a net depth of zero.
func relock(t *table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < 3; i++ {
		t.mu.Unlock()
		t.n++
		t.mu.Lock()
	}
}

// readPath leaks a read lock on the stop path.
func readPath(mu *sync.RWMutex, stop bool) {
	mu.RLock()
	if stop {
		return // want "return path may hold mu"
	}
	mu.RUnlock()
}
