package unlockpath_test

import (
	"testing"

	"vkernel/internal/analysis/analysistest"
	"vkernel/internal/analysis/unlockpath"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, unlockpath.Analyzer, "testdata/src/a", "fixture/unlockpath/a")
}
