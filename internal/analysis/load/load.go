// Package load turns Go package patterns into parsed, type-checked
// syntax using only the standard library. It shells out to `go list
// -export -deps -json` for package metadata and compiled export data
// (the same .a files the gc toolchain writes into the build cache), so
// it works in a fully offline build environment with no dependency on
// golang.org/x/tools.
//
// Module packages (those belonging to the main module) are parsed and
// type-checked from source so analyzers get full *ast.File syntax plus
// a populated types.Info. Everything else — the standard library — is
// imported from export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked module package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the result of a Load: every module package matched by the
// patterns (plus module dependencies of those packages), sharing one
// token.FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listedPkg is the subset of `go list -json` output we consume.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Deps       []string
	Module     *struct {
		Path string
		Main bool
	}
}

func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,Deps,Module"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, errb.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Importer resolves import paths to export data recorded by `go list
// -export`, falling back to a per-path `go list` query for paths not in
// the initial listing (fixture packages may import corners of the
// standard library the module itself does not).
type Importer struct {
	dir  string // module directory go list queries run in
	fset *token.FileSet
	gc   types.Importer

	mu      sync.Mutex
	exports map[string]string         // import path -> export file
	local   map[string]*types.Package // source-checked module packages
}

// NewImporter builds an Importer rooted at dir (any directory inside
// the module). The initial export map is seeded from `go list -export
// -deps ./...` so almost every lookup is a cache hit.
func NewImporter(dir string) (*Importer, *token.FileSet, error) {
	pkgs, err := goList(dir, "./...")
	if err != nil {
		return nil, nil, err
	}
	imp := &Importer{
		dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string, len(pkgs)),
		local:   make(map[string]*types.Package),
	}
	for _, p := range pkgs {
		if p.Export != "" {
			imp.exports[p.ImportPath] = p.Export
		}
	}
	imp.gc = importer.ForCompiler(imp.fset, "gc", imp.lookup)
	return imp, imp.fset, nil
}

func (imp *Importer) lookup(path string) (io.ReadCloser, error) {
	imp.mu.Lock()
	file, ok := imp.exports[path]
	imp.mu.Unlock()
	if !ok {
		// Path outside the seeded listing: ask go list for just this one.
		pkgs, err := goList(imp.dir, path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export == "" {
				continue
			}
			imp.mu.Lock()
			imp.exports[p.ImportPath] = p.Export
			if p.ImportPath == path {
				file = p.Export
				ok = true
			}
			imp.mu.Unlock()
		}
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Import implements types.Importer. Module packages that have already
// been type-checked from source are returned directly, so object
// identities are shared across the whole program.
func (imp *Importer) Import(path string) (*types.Package, error) {
	imp.mu.Lock()
	if p, ok := imp.local[path]; ok {
		imp.mu.Unlock()
		return p, nil
	}
	imp.mu.Unlock()
	return imp.gc.Import(path)
}

// setLocal registers a source-checked package for later imports.
func (imp *Importer) setLocal(path string, pkg *types.Package) {
	imp.mu.Lock()
	imp.local[path] = pkg
	imp.mu.Unlock()
}

// Check parses and type-checks one package directory's files as import
// path `path`, using the importer for all dependencies. It is the
// building block both Load and the analysistest fixture harness use.
func (imp *Importer) Check(path, dir string, filenames []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir}
	for _, name := range filenames {
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("load: no Go files for %q in %s", path, dir)
	}
	pkg.Name = pkg.Files[0].Name.Name
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, imp.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	imp.setLocal(path, tpkg)
	return pkg, nil
}

// Load lists the given patterns (relative to dir) and type-checks every
// module package among them and their module dependencies, in
// dependency order.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var mod []listedPkg
	seen := make(map[string]bool)
	for _, p := range listed {
		if p.Standard || p.Module == nil || seen[p.ImportPath] || p.Name == "" {
			continue
		}
		seen[p.ImportPath] = true
		mod = append(mod, p)
	}
	// A package's transitive dep set strictly contains each dependency's,
	// so sorting by |Deps| yields a valid dependency order.
	sort.SliceStable(mod, func(i, j int) bool { return len(mod[i].Deps) < len(mod[j].Deps) })

	imp := &Importer{
		dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string, len(listed)),
		local:   make(map[string]*types.Package),
	}
	for _, p := range listed {
		if p.Export != "" {
			imp.exports[p.ImportPath] = p.Export
		}
	}
	imp.gc = importer.ForCompiler(imp.fset, "gc", imp.lookup)

	prog := &Program{Fset: imp.fset}
	for _, p := range mod {
		pkg, err := imp.Check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// ModuleDir locates the main module root from anywhere inside it.
func ModuleDir(from string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = from
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("load: go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}
