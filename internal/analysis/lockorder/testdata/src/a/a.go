// Fixture: the lock graph must be acyclic and respect the declared
// nesting order (here: a.C.mu, a.D.mu, a.E.mu, a.F.mu).
package a

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// cycleOne and cycleTwo acquire A and B in opposite orders — a
// deadlock waiting for the right interleaving.
func cycleOne(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func cycleTwo(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "lock cycle: a.A.mu → a.B.mu → a.A.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

// inverted acquires C while holding D, against the declared order.
func inverted(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want "acquires a.C.mu while holding a.D.mu"
	c.mu.Unlock()
	d.mu.Unlock()
}

// nested respects the order through a callee: lockF's acquisition is
// visible via the call summary, and E before F matches the order.
func nested(e *E, f *F) {
	e.mu.Lock()
	lockF(f)
	e.mu.Unlock()
}

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}
