package lockorder_test

import (
	"testing"

	"vkernel/internal/analysis/analysistest"
	"vkernel/internal/analysis/lockorder"
)

func TestGolden(t *testing.T) {
	order := []string{"a.C.mu", "a.D.mu", "a.E.mu", "a.F.mu"}
	analysistest.Run(t, lockorder.New(order), "testdata/src/a", "fixture/lockorder/a")
}
