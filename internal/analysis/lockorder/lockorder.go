// Package lockorder builds the static lock graph over the kernel's
// per-subsystem mutexes and checks it for cycles and for acquisitions
// that contradict the declared nesting order.
//
// A lock class is (owning struct type, mutex field) — ipc.alienTable.mu,
// rfs.blockCache.mu — so every instance of a shard shares a class. The
// analyzer tracks the may-held set along each function's CFG; acquiring
// class B while A is held records the edge A→B. Calls to other module
// functions consult a transitive may-acquire summary (computed to
// fixpoint across every loaded package), so handleSend holding the
// alien-table mutex while calling into the proc table records
// alienTable.mu→procShard.mu without any annotation.
//
// Reported: cycles in the graph (distinct classes acquired in both
// orders somewhere in the program), and edges that invert the declared
// partial order. Self-edges (two instances of one class) and calls
// through dynamic function values (e.g. blockCache's write callback)
// are out of scope — the first needs instance identity, the second a
// pointer analysis; both are documented limitations.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vkernel/internal/analysis"
	"vkernel/internal/analysis/cfg"
	"vkernel/internal/analysis/load"
)

// New builds the analyzer with a declared partial order: earlier
// classes must be acquired before later ones whenever both are held.
func New(order []string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "lockorder",
		Doc:  "mutexes must be acquired cycle-free and in the declared nesting order",
		Run: func(pass *analysis.Pass) []analysis.Diagnostic {
			return check(pass, order)
		},
	}
}

// lockRef is one Lock/RLock (acquire=true) or Unlock/RUnlock on a
// classified mutex.
type lockRef struct {
	class   string
	acquire bool
	pos     token.Pos
}

// classOf names the lock class of a mutex selector receiver: the named
// struct type owning the field, qualified by package name.
func classOf(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := info.Types[inner.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	return fmt.Sprintf("%s.%s.%s", n.Obj().Pkg().Name(), n.Obj().Name(), inner.Sel.Name), true
}

// mutexRef classifies a call as a lock operation on a class.
func mutexRef(info *types.Info, call *ast.CallExpr) (lockRef, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockRef{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return lockRef{}, false
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return lockRef{}, false
	}
	if name := n.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return lockRef{}, false
	}
	class, ok := classOf(info, sel)
	if !ok {
		return lockRef{}, false
	}
	return lockRef{class: class, acquire: acquire, pos: call.Pos()}, true
}

// event is either a lock op or a call with a may-acquire summary.
type event struct {
	lock   *lockRef
	callee *types.Func
	pos    token.Pos
}

// eventsIn extracts lock ops and resolvable calls from one CFG node in
// source order. Goroutine bodies and deferred calls are excluded: a
// spawned goroutine acquires on its own stack (no held-while edge), and
// deferred unlocks keep the lock held to function end by design.
func eventsIn(info *types.Info, node ast.Node) []event {
	var evs []event
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt, *ast.FuncLit:
			_ = n
			return false
		case *ast.CallExpr:
			if ref, ok := mutexRef(info, n); ok {
				evs = append(evs, event{lock: &ref, pos: n.Pos()})
				return true
			}
			var id *ast.Ident
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id != nil {
				if fn, ok := info.Uses[id].(*types.Func); ok {
					evs = append(evs, event{callee: fn, pos: n.Pos()})
				}
			}
		}
		return true
	})
	return evs
}

type edge struct{ from, to string }

type grapher struct {
	pass  *analysis.Pass
	sums  map[*types.Func]map[string]bool
	edges map[edge]token.Pos
}

// summaries computes, to fixpoint, the set of lock classes each module
// function may acquire directly or through module callees.
func summaries(pass *analysis.Pass) map[*types.Func]map[string]bool {
	type fn struct {
		obj  *types.Func
		body *ast.BlockStmt
		pkg  *load.Package
	}
	var fns []fn
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					fns = append(fns, fn{obj: obj, body: fd.Body, pkg: pkg})
				}
			}
		}
	}
	sums := make(map[*types.Func]map[string]bool, len(fns))
	for _, f := range fns {
		sums[f.obj] = make(map[string]bool)
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			s := sums[f.obj]
			ast.Inspect(f.body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					if ref, ok := mutexRef(f.pkg.Info, n); ok {
						if ref.acquire && !s[ref.class] {
							s[ref.class] = true
							changed = true
						}
						return true
					}
					var id *ast.Ident
					switch fun := n.Fun.(type) {
					case *ast.Ident:
						id = fun
					case *ast.SelectorExpr:
						id = fun.Sel
					}
					if id != nil {
						if callee, ok := f.pkg.Info.Uses[id].(*types.Func); ok {
							for class := range sums[callee] {
								if !s[class] {
									s[class] = true
									changed = true
								}
							}
						}
					}
				}
				return true
			})
		}
	}
	return sums
}

// heldState maps class -> may-held count.
type heldState map[string]int

func (h heldState) clone() heldState {
	c := make(heldState, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// join takes the per-class max (may-held), reporting change.
func (h heldState) join(o heldState) bool {
	changed := false
	for k, v := range o {
		if v > h[k] {
			h[k] = v
			changed = true
		}
	}
	return changed
}

func (g *grapher) record(from, to string, pos token.Pos) {
	if from == to {
		return
	}
	e := edge{from: from, to: to}
	if _, ok := g.edges[e]; !ok {
		g.edges[e] = pos
	}
}

func (g *grapher) scanFunc(pkg *load.Package, body *ast.BlockStmt) {
	cg := cfg.New(body)
	in := make(map[*cfg.Block]heldState)
	in[cg.Entry] = heldState{}
	work := []*cfg.Block{cg.Entry}
	onWork := map[*cfg.Block]bool{cg.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		onWork[blk] = false
		h := in[blk].clone()
		for _, node := range blk.Nodes {
			for _, ev := range eventsIn(pkg.Info, node) {
				switch {
				case ev.lock != nil && ev.lock.acquire:
					for held, n := range h {
						if n > 0 {
							g.record(held, ev.lock.class, ev.pos)
						}
					}
					if h[ev.lock.class] < 4 {
						h[ev.lock.class]++
					}
				case ev.lock != nil:
					if h[ev.lock.class] > 0 {
						h[ev.lock.class]--
					}
				case ev.callee != nil:
					for class := range g.sums[ev.callee] {
						for held, n := range h {
							if n > 0 {
								g.record(held, class, ev.pos)
							}
						}
					}
				}
			}
		}
		for _, e := range blk.Succs {
			dst, ok := in[e.To]
			if !ok {
				dst = heldState{}
				in[e.To] = dst
			}
			if dst.join(h) && !onWork[e.To] {
				onWork[e.To] = true
				work = append(work, e.To)
			}
		}
	}
}

// Graph computes the full lock-order edge set (exported so cmd/vlint
// can dump it when declaring or revising the order).
func Graph(pass *analysis.Pass) map[string]map[string]token.Pos {
	g := &grapher{pass: pass, sums: summaries(pass), edges: make(map[edge]token.Pos)}
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						g.scanFunc(pkg, n.Body)
					}
				case *ast.FuncLit:
					g.scanFunc(pkg, n.Body)
				}
				return true
			})
		}
	}
	out := make(map[string]map[string]token.Pos)
	for e, pos := range g.edges {
		if out[e.from] == nil {
			out[e.from] = make(map[string]token.Pos)
		}
		out[e.from][e.to] = pos
	}
	return out
}

func check(pass *analysis.Pass, order []string) []analysis.Diagnostic {
	graph := Graph(pass)
	var diags []analysis.Diagnostic

	// Cycle detection: iterative DFS over the class graph.
	nodes := make([]string, 0, len(graph))
	for n := range graph {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	color := make(map[string]int) // 0 white, 1 gray, 2 black
	var stack []string
	var visit func(n string)
	visit = func(n string) {
		color[n] = 1
		stack = append(stack, n)
		tos := make([]string, 0, len(graph[n]))
		for to := range graph[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch color[to] {
			case 0:
				visit(to)
			case 1:
				// Back edge: the cycle is the stack suffix from `to`.
				i := 0
				for j, s := range stack {
					if s == to {
						i = j
						break
					}
				}
				cyc := append(append([]string{}, stack[i:]...), to)
				diags = append(diags, analysis.Diagnostic{
					Pos:     graph[n][to],
					Message: fmt.Sprintf("lock cycle: %s — some execution acquires these classes in both orders", strings.Join(cyc, " → ")),
				})
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = 2
	}
	for _, n := range nodes {
		if color[n] == 0 {
			visit(n)
		}
	}

	// Declared-order violations.
	rank := make(map[string]int, len(order))
	for i, c := range order {
		rank[c] = i + 1
	}
	for from, tos := range graph {
		rf, ok := rank[from]
		if !ok {
			continue
		}
		for to, pos := range tos {
			rt, ok := rank[to]
			if !ok || rf <= rt {
				continue
			}
			diags = append(diags, analysis.Diagnostic{
				Pos: pos,
				Message: fmt.Sprintf("acquires %s while holding %s, against the declared order (%s before %s)",
					to, from, to, from),
			})
		}
	}
	return diags
}
