// Package cfg builds intraprocedural control-flow graphs over function
// bodies, precise enough for the flow-sensitive vlint analyzers
// (bufref, unlockpath, lockorder) without pulling in golang.org/x/tools.
//
// Blocks hold statements (and branch-condition expressions) in
// execution order. Edges out of conditional branches carry Facts — the
// condition and whether it is negated on that edge — so analyzers can
// refine state along `err != nil` / `ok` branches. Terminating calls
// (panic, os.Exit, log.Fatal*, runtime.Goexit) end a block with no
// successors: state on a crashing path is not checked against
// return-path invariants.
package cfg

import (
	"go/ast"
	"go/token"
)

// Fact records a branch condition known on an edge: Cond evaluated
// true (Negated=false) or false (Negated=true).
type Fact struct {
	Cond    ast.Expr
	Negated bool
}

// Edge is a successor link with the facts that hold along it.
type Edge struct {
	To    *Block
	Facts []Fact
}

// Block is a straight-line run of statements.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
}

// Graph is a function body's CFG. Exit is the single synthetic block
// every return statement (and fall-off-the-end) feeds; it holds no
// nodes.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Reachable returns the blocks reachable from Entry, in a stable
// breadth-first order. Detached blocks (unreachable code after returns)
// are excluded, so analyzers never report on dead statements.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	order := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for i := 0; i < len(order); i++ {
		for _, e := range order[i].Succs {
			if !seen[e.To.Index] {
				seen[e.To.Index] = true
				order = append(order, e.To)
			}
		}
	}
	return order
}

type loopTarget struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select break targets
}

type builder struct {
	g            *Graph
	cur          *Block // nil after a terminator (return/branch/panic)
	loops        []*loopTarget
	labeled      map[string]*loopTarget // label -> enclosing loop/switch targets
	gotos        map[string]*Block      // label -> block starting at the label
	pendingLabel string
}

// New builds the CFG for one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:       &Graph{},
		labeled: make(map[string]*loopTarget),
		gotos:   make(map[string]*Block),
	}
	b.g.Exit = b.newBlock()
	b.g.Entry = b.newBlock()
	b.cur = b.g.Entry
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, facts ...Fact) {
	from.Succs = append(from.Succs, Edge{To: to, Facts: facts})
}

// ensure returns the current block, creating a detached one for
// syntactically unreachable code.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) { b.ensure().Nodes = append(b.ensure().Nodes, n) }

// terminates reports whether a statement unconditionally crashes or
// exits the goroutine, ending the path.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && fn.Sel.Name == "Exit":
				return true
			case x.Name == "runtime" && fn.Sel.Name == "Goexit":
				return true
			case x.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"):
				return true
			}
		}
	}
	return false
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	default:
		// Plain statements: assignments, declarations, calls, sends,
		// defers, go statements, inc/dec, empty.
		b.add(s)
		if terminates(s) {
			b.cur = nil
		}
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.pendingLabel = ""
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then, Fact{Cond: s.Cond})
	b.cur = then
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, after)
	}

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els, Fact{Cond: s.Cond, Negated: true})
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	} else {
		b.edge(cond, after, Fact{Cond: s.Cond, Negated: true})
	}
	b.cur = after
}

func (b *builder) pushLoop(t *loopTarget) {
	b.loops = append(b.loops, t)
	if b.pendingLabel != "" {
		b.labeled[b.pendingLabel] = t
		b.pendingLabel = ""
	}
}

func (b *builder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.ensure(), head)
	after := b.newBlock()
	body := b.newBlock()
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.edge(head, body, Fact{Cond: s.Cond})
		b.edge(head, after, Fact{Cond: s.Cond, Negated: true})
	} else {
		b.edge(head, body)
	}
	var post *Block
	continueTo := head
	if s.Post != nil {
		post = b.newBlock()
		continueTo = post
	}
	b.pendingLabel = label
	b.pushLoop(&loopTarget{breakTo: after, continueTo: continueTo})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, continueTo)
	}
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
	}
	b.popLoop()
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.newBlock()
	b.edge(b.ensure(), head)
	// The RangeStmt node itself carries X and the per-iteration Key/Value
	// assignment for analyzers that track them.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.pendingLabel = label
	b.pushLoop(&loopTarget{breakTo: after, continueTo: head})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.popLoop()
	b.cur = after
}

// caseFacts derives edge facts for a tagless-switch case clause.
func caseFacts(tag ast.Expr, exprs []ast.Expr, negated bool) []Fact {
	if tag != nil {
		return nil
	}
	if !negated {
		if len(exprs) == 1 {
			return []Fact{{Cond: exprs[0]}}
		}
		return nil
	}
	facts := make([]Fact, 0, len(exprs))
	for _, e := range exprs {
		facts = append(facts, Fact{Cond: e, Negated: true})
	}
	return facts
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.ensure()
	after := b.newBlock()
	b.pendingLabel = label
	b.pushLoop(&loopTarget{breakTo: after})
	var bodies []*Block
	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
		bodies = append(bodies, b.newBlock())
	}
	var defaultIdx = -1
	var nonDefault []ast.Expr
	for i, c := range clauses {
		if c.List == nil {
			defaultIdx = i
			continue
		}
		nonDefault = append(nonDefault, c.List...)
		b.edge(head, bodies[i], caseFacts(s.Tag, c.List, false)...)
	}
	if defaultIdx >= 0 {
		b.edge(head, bodies[defaultIdx], caseFacts(s.Tag, nonDefault, true)...)
	} else {
		b.edge(head, after, caseFacts(s.Tag, nonDefault, true)...)
	}
	for i, c := range clauses {
		b.cur = bodies[i]
		fell := false
		for _, st := range c.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fell = true
				break
			}
			b.stmt(st)
		}
		if b.cur != nil {
			if fell && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	b.popLoop()
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	head := b.ensure()
	after := b.newBlock()
	b.pendingLabel = label
	b.pushLoop(&loopTarget{breakTo: after})
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		for _, st := range cc.Body {
			b.stmt(st)
		}
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.popLoop()
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.ensure()
	after := b.newBlock()
	b.pendingLabel = label
	b.pushLoop(&loopTarget{breakTo: after})
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
		}
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	// A select with no default blocks until a case fires; no head→after
	// edge either way — every path goes through some case.
	_ = hasDefault
	b.popLoop()
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		var t *loopTarget
		if s.Label != nil {
			t = b.labeled[s.Label.Name]
		} else if len(b.loops) > 0 {
			t = b.loops[len(b.loops)-1]
		}
		if t != nil {
			b.edge(b.cur, t.breakTo)
		}
		b.cur = nil
	case token.CONTINUE:
		var t *loopTarget
		if s.Label != nil {
			t = b.labeled[s.Label.Name]
		} else {
			// Nearest enclosing loop (switch/select targets have no
			// continue destination).
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].continueTo != nil {
					t = b.loops[i]
					break
				}
			}
		}
		if t != nil && t.continueTo != nil {
			b.edge(b.cur, t.continueTo)
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.cur, b.gotoBlock(s.Label.Name))
		}
		b.cur = nil
	}
}

func (b *builder) gotoBlock(label string) *Block {
	if blk, ok := b.gotos[label]; ok {
		return blk
	}
	blk := b.newBlock()
	b.gotos[label] = blk
	return blk
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	blk := b.gotoBlock(s.Label.Name)
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}
