package experiments

import (
	"fmt"

	"vkernel/internal/baseline"
	"vkernel/internal/core"
	"vkernel/internal/cost"
	"vkernel/internal/disk"
	"vkernel/internal/ether"
	"vkernel/internal/fsrv"
	"vkernel/internal/netpenalty"
	"vkernel/internal/nic"
	"vkernel/internal/sim"
	"vkernel/internal/stats"
	"vkernel/internal/vproto"
)

// measureMultiPair runs `pairs` client/server workstation pairs doing
// Send-Receive-Reply flat out on one 3 Mb Ethernet, with small random
// phase jitter so the pairs drift across each other as real workloads do.
// It returns the mean exchange time observed by the first pair.
func measureMultiPair(pairs int, bug bool, exchanges int) (sim.Time, ether.Stats, error) {
	netCfg := ether.Ethernet3Mb()
	netCfg.HWCollisionBug = bug
	c := core.NewCluster(42, netCfg)
	prof := cost.MC68000(8, cost.Iface3Mb)

	type pairResult struct {
		total sim.Time
		n     int
	}
	results := make([]pairResult, pairs)
	done := 0
	for i := 0; i < pairs; i++ {
		i := i
		ks := c.AddWorkstation(fmt.Sprintf("srv%d", i), prof, core.Config{})
		kc := c.AddWorkstation(fmt.Sprintf("cli%d", i), prof, core.Config{})
		server := echoServer(ks)
		kc.Spawn("client", func(p *core.Process) {
			// Stagger pair start-up so independent workloads are not in
			// artificial lockstep.
			p.Delay(sim.Time(i)*1700*sim.Microsecond + sim.Time(c.Eng.Rand().Int63n(int64(sim.Millisecond))))
			var m core.Message
			if err := p.Send(&m, server.Pid()); err != nil {
				return
			}
			opCost := p.Kernel().Profile().KernelOp // the closing GetTime bracket
			for n := 0; n < exchanges; n++ {
				// Phase jitter: a little client computation between
				// exchanges, excluded from the exchange time.
				p.Compute(sim.Time(c.Eng.Rand().Int63n(int64(100 * sim.Microsecond))))
				t0 := p.GetTime()
				var msg core.Message
				if err := p.Send(&msg, server.Pid()); err != nil {
					return
				}
				results[i].total += p.GetTime() - t0 - opCost
				results[i].n++
			}
			done++
			if done == pairs {
				c.Eng.Stop()
			}
		})
	}
	c.Eng.MaxSteps = 500_000_000
	if err := c.Run(); err != nil {
		return 0, ether.Stats{}, err
	}
	if results[0].n == 0 {
		return 0, ether.Stats{}, fmt.Errorf("no exchanges completed")
	}
	return results[0].total / sim.Time(results[0].n), c.Net.Stats(), nil
}

// Sec54 reproduces §5.4: response time with concurrent pairs, with and
// without the 3 Mb interfaces' undetected-collision hardware bug.
func Sec54() (Result, error) {
	t := stats.Table{
		ID:      "Sec 5-4",
		Title:   "Multi-Process Traffic: concurrent SRR pairs, 8 MHz, 3 Mb Ethernet",
		Unit:    "exchange ms; cells are paper/measured where the paper reports a figure",
		Columns: []string{"Exchange", "Net util %", "Collisions", "Corrupted", "Retransmit-driven"},
	}
	one, st1, err := measureMultiPair(1, false, 2000)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("1 pair", stats.PM(3.18, one.Milliseconds()),
		stats.M(utilPct(st1, one, 1)), stats.M(float64(st1.Collisions)), stats.M(float64(st1.CorruptedDrops)), stats.Txt("no"))

	good, st2, err := measureMultiPair(2, false, 2000)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("2 pairs, correct interfaces", stats.M(good.Milliseconds()),
		stats.M(utilPct(st2, good, 2)), stats.M(float64(st2.Collisions)), stats.M(float64(st2.CorruptedDrops)), stats.Txt("no"))

	bad, st3, err := measureMultiPair(2, true, 2000)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("2 pairs, buggy interfaces", stats.PM(3.4, bad.Milliseconds()),
		stats.M(utilPct(st3, bad, 2)), stats.M(float64(st3.Collisions)), stats.M(float64(st3.CorruptedDrops)), stats.Txt("yes"))

	return Result{
		Tables: []stats.Table{t},
		Notes: []string{
			"Paper: one pair loads the net ~13% of 3 Mb; two pairs cause minimal degradation with correct interfaces; the hardware bug turns collisions into corrupted packets, and timeouts+retransmissions push the exchange to 3.4 ms.",
			"Paper: server processor time limits a workstation to ~558 exchanges/s (10 MHz); our measured 10 MHz server CPU gives a consistent bound (see Table 5-2).",
		},
	}, nil
}

func utilPct(st ether.Stats, per sim.Time, pairs int) float64 {
	// Approximate utilization from per-exchange time: each exchange is two
	// 64-byte frames.
	if per <= 0 {
		return 0
	}
	bits := 2.0 * 64 * 8
	return bits / (2.94e6 * per.Seconds()) * float64(pairs) * 100
}

// measureThothWrite measures the pre-extension page write:
// Send-Receive-MoveFrom-Reply with the inline-segment extension disabled.
func measureThothWrite(prof cost.Profile, netCfg ether.Config, iters int) (sim.Time, error) {
	const pageSize = 512
	kcfg := core.Config{InlineSegMax: -1, RetransmitTimeout: 1000 * sim.Second}
	r := newRig(1, netCfg, prof, kcfg, true)
	server := r.server.Spawn("thoth-fs", func(p *core.Process) {
		staging := p.Alloc(pageSize)
		for {
			msg, src, err := p.Receive()
			if err != nil {
				return
			}
			start, _, _, _ := msg.Segment()
			if err := p.MoveFrom(src, staging, start, pageSize); err != nil {
				return
			}
			var reply core.Message
			if err := p.Reply(&reply, src); err != nil {
				return
			}
		}
	})
	var per sim.Time
	var ok bool
	r.client.Spawn("client", func(p *core.Process) {
		buf := p.Alloc(pageSize)
		write := func() error {
			var m core.Message
			m.SetSegment(buf, pageSize, vproto.SegFlagRead)
			return p.Send(&m, server.Pid())
		}
		if err := write(); err != nil {
			return
		}
		t0 := p.GetTime()
		for i := 0; i < iters; i++ {
			if err := write(); err != nil {
				return
			}
		}
		per = (p.GetTime() - t0) / sim.Time(iters)
		ok = true
	})
	if err := r.run(); err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("thoth write did not complete")
	}
	return per, nil
}

// Sec61 reproduces the §6.1 narrative numbers: the segment-extension
// ablation and the comparison against a specialized (WFS/LOCUS-style)
// page protocol's lower bound.
func Sec61() (Result, error) {
	prof := cost.MC68000(10, cost.Iface3Mb)
	netCfg := ether.Ethernet3Mb()
	t := stats.Table{
		ID:      "Sec 6-1",
		Title:   "Page access: segment extension vs Thoth primitives vs specialized protocol (512 B, 10 MHz)",
		Unit:    "times in ms",
		Columns: []string{"Elapsed"},
	}
	read, err := measurePage(prof, netCfg, true, true, 500)
	if err != nil {
		return Result{}, err
	}
	write, err := measurePage(prof, netCfg, true, false, 500)
	if err != nil {
		return Result{}, err
	}
	thoth, err := measureThothWrite(prof, netCfg, 500)
	if err != nil {
		return Result{}, err
	}
	wfs, err := baseline.MeasureWFSPageRead(prof, netCfg, 512, 0, 500)
	if err != nil {
		return Result{}, err
	}
	bound := netpenalty.Analytic(prof, netCfg, 64) + netpenalty.Analytic(prof, netCfg, 576)

	t.AddRow("V page read (ReplyWithSegment)", stats.PM(5.56, read.ms()))
	t.AddRow("V page write (inline segment)", stats.PM(5.60, write.ms()))
	t.AddRow("Thoth-style write (Send-Receive-MoveFrom-Reply)", stats.PM(8.1, thoth.Milliseconds()))
	t.AddRow("WFS-style specialized page read", stats.M(wfs.PerOp.Milliseconds()))
	t.AddRow("network penalty bound (2 packets)", stats.PM(3.89, bound.Milliseconds()))
	t.AddRow("V read overhead over bound", stats.PM(1.5, (read.elapsed-bound).Milliseconds()))

	return Result{
		Tables: []stats.Table{t},
		Notes: []string{
			"Paper: the segment mechanism saves ~2.5-3.5 ms per page operation over the plain Thoth primitives, and V page access is ~1.5 ms above the raw network penalty, leaving little room for specialized protocols.",
		},
	}, nil
}

// Sec62 reproduces the §6.2 streaming analysis.
func Sec62() (Result, error) {
	prof := cost.MC68000(10, cost.Iface3Mb)
	netCfg := ether.Ethernet3Mb()
	t := stats.Table{
		ID:      "Sec 6-2",
		Title:   "Sequential access: V kernel vs streaming protocol (512 B pages, 10 MHz)",
		Unit:    "ms per page",
		Columns: []string{"V kernel", "Streaming", "Streaming gain %"},
	}
	for _, latMs := range []float64{10, 15, 20} {
		lat := sim.Millis(latMs)
		v, err := measureSequential(prof, netCfg, lat, 300)
		if err != nil {
			return Result{}, err
		}
		s, err := baseline.MeasureStreaming(prof, netCfg, baseline.StreamConfig{
			PageSize: 512, DiskLatency: lat, Pages: 300,
		})
		if err != nil {
			return Result{}, err
		}
		gain := 100 * float64(v-s.PerPage) / float64(v)
		t.AddRow(fmt.Sprintf("disk latency %g ms", latMs),
			stats.M(v.Milliseconds()), stats.M(s.PerPage.Milliseconds()), stats.M(gain))
	}

	// Slow reader: 20 ms of application compute between reads (L = 10 ms).
	slowV := 20*sim.Millisecond + 5560*sim.Microsecond
	s, err := baseline.MeasureStreaming(prof, netCfg, baseline.StreamConfig{
		PageSize: 512, DiskLatency: 10 * sim.Millisecond, Consume: 20 * sim.Millisecond, Pages: 300,
	})
	if err != nil {
		return Result{}, err
	}
	gain := 100 * float64(slowV-s.PerPage) / float64(slowV)
	t.AddRow("slow reader (20 ms compute)",
		stats.M(slowV.Milliseconds()), stats.M(s.PerPage.Milliseconds()), stats.M(gain))

	return Result{
		Tables: []stats.Table{t},
		Notes: []string{
			"Paper: streaming cannot improve sequential access by more than ~15% at these latencies, and by ~20% for a slow reader; LOCUS reports 17.18 ms/page at 15 ms latency vs our V kernel figure above.",
		},
	}, nil
}

// capacityPoint is one row of the §7 capacity sweep.
type capacityPoint struct {
	clients    int
	achieved   float64 // requests per second
	pageMean   sim.Time
	pageP90    sim.Time
	loadMean   sim.Time
	serverUtil float64
}

// measureCapacity runs n diskless workstations against one file server for
// the given virtual duration. Each client thinks (exponential, 350 ms
// mean), then issues a page read (90%) or a 64 KB program load (10%).
func measureCapacity(n int, duration sim.Time) (capacityPoint, error) {
	const fileID, progID = 1, 2
	netCfg := ether.Ethernet3Mb()
	c := core.NewCluster(7, netCfg)
	prof := cost.MC68000(10, cost.Iface3Mb)
	ks := c.AddWorkstation("fs", prof, core.Config{})
	d := disk.New(c.Eng, disk.Fixed(512, sim.Millisecond))
	data := make([]byte, 64*1024)
	d.Preload(fileID, data)
	d.Preload(progID, data)
	srv := fsrv.Start(ks, d, fsrv.Config{
		ProcessingCost: sim.Millis(3.5), // §7's LOCUS-derived figure
		TransferUnit:   16 * 1024,
	})
	srv.WarmFile(fileID)
	srv.WarmFile(progID)

	var pageSample, loadSample stats.Sample
	requests := 0
	var mark sim.Time
	for i := 0; i < n; i++ {
		kc := c.AddWorkstation(fmt.Sprintf("ws%d", i), prof, core.Config{})
		kc.Spawn("app", func(p *core.Process) {
			cl := fsrv.NewClient(p, srv.Pid(), 64*1024)
			buf := make([]byte, 512)
			for {
				think := sim.Time(c.Eng.Rand().ExpFloat64() * float64(350*sim.Millisecond))
				p.Delay(think)
				t0 := p.GetTime()
				if c.Eng.Rand().Float64() < 0.9 {
					if _, err := cl.ReadBlock(fileID, uint32(c.Eng.Rand().Intn(128)), buf); err != nil {
						return
					}
					pageSample.Add((p.GetTime() - t0).Milliseconds())
				} else {
					if _, err := cl.ReadLarge(progID, 0, 64*1024); err != nil {
						return
					}
					loadSample.Add((p.GetTime() - t0).Milliseconds())
				}
				requests++
			}
		})
	}
	c.Eng.Schedule(duration, "end", func() {
		mark = c.Eng.Now()
		c.Eng.Stop()
	})
	c.Eng.MaxSteps = 500_000_000
	if err := c.Run(); err != nil {
		return capacityPoint{}, err
	}
	_ = mark
	pt := capacityPoint{
		clients:    n,
		achieved:   float64(requests) / duration.Seconds(),
		pageMean:   sim.Millis(pageSample.Mean()),
		pageP90:    sim.Millis(pageSample.Percentile(0.9)),
		loadMean:   sim.Millis(loadSample.Mean()),
		serverUtil: float64(ks.CPU().Busy()) / float64(duration) * 100,
	}
	return pt, nil
}

// measureExecutionPlacement quantifies §7's transparency claim: because
// all interaction runs through the IPC, a program can execute on the file
// server instead of the workstation with no change but performance. It
// runs a program doing `reads` page reads with `compute` between them,
// placed on either machine, and returns both elapsed times.
func measureExecutionPlacement(reads int, compute sim.Time) (onWorkstation, onServer sim.Time, err error) {
	run := func(remote bool) (sim.Time, error) {
		prof := cost.MC68000(10, cost.Iface3Mb)
		r := newRig(1, ether.Ethernet3Mb(), prof, core.Config{}, true)
		d := disk.New(r.c.Eng, disk.Fixed(512, sim.Millisecond))
		d.Preload(1, make([]byte, 64*1024))
		srv := fsrv.Start(r.server, d, fsrv.Config{})
		srv.WarmFile(1)
		where := r.client
		if !remote {
			where = r.server // execute on the file server machine itself
		}
		var total sim.Time
		var ok bool
		where.Spawn("program", func(p *core.Process) {
			cl := fsrv.NewClient(p, srv.Pid(), 4096)
			buf := make([]byte, 512)
			t0 := p.GetTime()
			for i := 0; i < reads; i++ {
				if _, err := cl.ReadBlock(1, uint32(i%128), buf); err != nil {
					return
				}
				p.Compute(compute)
			}
			total = p.GetTime() - t0
			ok = true
		})
		if err := r.run(); err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("placement run did not complete")
		}
		return total, nil
	}
	if onWorkstation, err = run(true); err != nil {
		return 0, 0, err
	}
	if onServer, err = run(false); err != nil {
		return 0, 0, err
	}
	return onWorkstation, onServer, nil
}

// Sec7 reproduces the §7 file-server capacity analysis as a measured
// sweep over client counts, plus the execution-placement claim.
func Sec7() (Result, error) {
	t := stats.Table{
		ID:      "Sec 7",
		Title:   "File server capacity: diskless workstations per server (10 MHz, 90% page reads / 10% 64 KB loads)",
		Unit:    "response times in ms",
		Columns: []string{"req/s", "page mean", "page p90", "load mean", "server CPU %"},
	}
	for _, n := range []int{1, 5, 10, 15, 20, 30} {
		pt, err := measureCapacity(n, 40*sim.Second)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(fmt.Sprintf("%d workstations", n),
			stats.M(pt.achieved),
			stats.M(pt.pageMean.Milliseconds()),
			stats.M(pt.pageP90.Milliseconds()),
			stats.M(pt.loadMean.Milliseconds()),
			stats.M(pt.serverUtil))
	}
	// §7 placement claim: file-intensive programs win by executing on the
	// file server; compute-bound ones do not care.
	place := stats.Table{
		ID:      "Sec 7 (placement)",
		Title:   "Executing the program on the file server vs the workstation (100 page reads)",
		Unit:    "total ms; the IPC makes placement transparent except for performance",
		Columns: []string{"On workstation", "On file server", "Speedup"},
	}
	for _, row := range []struct {
		label   string
		compute sim.Time
	}{
		{"file-intensive (1 ms compute/read)", sim.Millisecond},
		{"compute-bound (20 ms compute/read)", 20 * sim.Millisecond},
	} {
		ws, fs, err := measureExecutionPlacement(100, row.compute)
		if err != nil {
			return Result{}, err
		}
		place.AddRow(row.label,
			stats.M(ws.Milliseconds()), stats.M(fs.Milliseconds()),
			stats.M(float64(ws)/float64(fs)))
	}

	return Result{
		Tables: []stats.Table{t, place},
		Notes: []string{
			"Paper estimate: ~7 ms server CPU per page request, ~36 ms per average request → ~28 requests/s; ~10 workstations are served satisfactorily, 30+ lead to excessive delays.",
			"Shape check: response times stay flat to the knee, then grow sharply as server CPU saturates.",
			"Placement: §7 argues programs doing a lot of file access should run on the file server — transparent through the IPC except for performance.",
		},
	}, nil
}

// Sec8 reproduces the §8 10 Mb Ethernet preview figures (8 MHz).
func Sec8() (Result, error) {
	prof := cost.MC68000(8, cost.Iface10Mb)
	netCfg := ether.Ethernet10Mb()
	t := stats.Table{
		ID:      "Sec 8",
		Title:   "10 Mb Ethernet preview, 8 MHz processors",
		Unit:    "times in ms; cells are paper/measured",
		Columns: []string{"Elapsed"},
	}
	srr, err := measureSRR(prof, netCfg, core.Config{}, true, 1000)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("remote message exchange", stats.PM(2.71, srr.ms()))
	read, err := measurePage(prof, netCfg, true, true, 500)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("page read (512 B)", stats.PM(5.72, read.ms()))
	load, err := measureProgramLoad(prof, netCfg, true, 16*1024, 10)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("64 KB load, 16 KB units", stats.PM(255, load.ms()))
	return Result{Tables: []stats.Table{t}}, nil
}

// Sec34 quantifies the §3 design claims and the §4 DMA analysis as
// ablations of the calibrated kernel.
func Sec34() (Result, error) {
	prof := cost.MC68000(8, cost.Iface3Mb)
	netCfg := ether.Ethernet3Mb()
	t := stats.Table{
		ID:      "Sec 3/4",
		Title:   "Design ablations, 8 MHz, 3 Mb Ethernet",
		Unit:    "times in ms",
		Columns: []string{"Remote SRR", "Factor vs V"},
	}
	base, err := measureSRR(prof, netCfg, core.Config{}, true, 500)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("V kernel (in-kernel remote ops, raw Ethernet)", stats.PM(3.18, base.ms()), stats.M(1.0))

	relay, err := measureSRR(prof, netCfg, core.Config{ViaNetworkServer: true}, true, 500)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("via process-level network server", stats.PM(4*3.18, relay.ms()),
		stats.M(float64(relay.elapsed)/float64(base.elapsed)))

	ip, err := measureSRR(prof, netCfg, core.Config{IPLayer: true}, true, 500)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("with IP-layer headers", stats.PM(1.2*3.18, ip.ms()),
		stats.M(float64(ip.elapsed)/float64(base.elapsed)))

	dma, err := measureSRR(prof, netCfg, core.Config{NIC: nic.Config{DMA: true}}, true, 500)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("with DMA network interfaces", stats.M(dma.ms()),
		stats.M(float64(dma.elapsed)/float64(base.elapsed)))

	// DMA penalty detail (1024-byte packets).
	pioPen, err := netpenalty.Measure(prof, netCfg, nic.Config{}, 1024, 500)
	if err != nil {
		return Result{}, err
	}
	dmaPen, err := netpenalty.Measure(prof, netCfg, nic.Config{DMA: true}, 1024, 500)
	if err != nil {
		return Result{}, err
	}
	d := stats.Table{
		ID:      "Sec 4 (DMA)",
		Title:   "Programmed I/O vs DMA interface, 1024-byte datagrams, 8 MHz",
		Unit:    "per-packet figures",
		Columns: []string{"Penalty ms", "CPU ms per packet (both ends)"},
	}
	pioCPU := (prof.TxCost(1024) + prof.RxCost(1024)).Milliseconds()
	dmaCPU := (2 * (180*sim.Microsecond + prof.LocalCopy(1024))).Milliseconds()
	d.AddRow("programmed I/O (SUN interface)", stats.M(pioPen.Milliseconds()), stats.M(pioCPU))
	d.AddRow("DMA interface", stats.M(dmaPen.Milliseconds()), stats.M(dmaCPU))

	return Result{
		Tables: []stats.Table{t, d},
		Notes: []string{
			"Paper §3: relaying through a network server process measured a factor-of-four increase; IP headers added ~20%.",
			"Paper §4: a DMA interface would not improve kernel performance — its benefit is offloading the processor, not speed.",
		},
	}, nil
}
