package experiments

import "testing"

// TestRegistrySmoke runs every registered experiment end-to-end and checks
// that each reproduced table stays within the repo's tolerances — the same
// bounds the root-level TestAllExperimentsWithinTolerance enforces: 35 %
// for every published cell, tighter for the flagship tables.
func TestRegistrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take ~2s total")
	}
	tight := map[string]float64{
		"table41": 0.08,
		"table51": 0.06,
		"table61": 0.25,
		"table62": 0.08,
		"sec8":    0.15,
	}
	if len(Registry) == 0 {
		t.Fatal("experiment registry is empty")
	}
	for _, exp := range Registry {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			if _, ok := Find(exp.ID); !ok {
				t.Fatalf("Find(%q) cannot resolve a registered experiment", exp.ID)
			}
			res, err := exp.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", exp.ID)
			}
			limit := 0.35
			if l, ok := tight[exp.ID]; ok {
				limit = l
			}
			for _, tb := range res.Tables {
				if d := tb.MaxDeviation(); d > limit {
					t.Errorf("%s: max deviation %.1f%% exceeds %.0f%%\n%s",
						tb.ID, d*100, limit*100, tb.Render())
				}
			}
		})
	}
}

// TestFindUnknown covers the registry's negative path.
func TestFindUnknown(t *testing.T) {
	if _, ok := Find("no-such-experiment"); ok {
		t.Fatal("Find resolved an unknown id")
	}
}
