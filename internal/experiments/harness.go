package experiments

import (
	"fmt"

	"vkernel/internal/core"
	"vkernel/internal/cost"
	"vkernel/internal/ether"
	"vkernel/internal/sim"
	"vkernel/internal/vproto"
)

// opMeasure is one operation's measurement in the paper's format.
type opMeasure struct {
	elapsed   sim.Time
	clientCPU sim.Time
	serverCPU sim.Time
}

func (m opMeasure) ms() float64 { return m.elapsed.Milliseconds() }

// longTimeout keeps kernel-level retransmission of the harness's
// long-held rendezvous request out of the measurement (see
// core/timing_test.go for the analysis).
var longTimeout = core.Config{RetransmitTimeout: 1000 * sim.Second}

// The harness's toy page-server protocol: message word 1 selects the
// operation the server performs on its page.
const (
	pageWordOp         = 1
	pageOpRead  uint32 = 1
	pageOpWrite uint32 = 2
)

// rig is a two-workstation measurement setup; local rigs reuse one
// workstation for both parties.
type rig struct {
	c      *core.Cluster
	client *core.Kernel
	server *core.Kernel
}

func newRig(seed int64, netCfg ether.Config, prof cost.Profile, kcfg core.Config, remote bool) *rig {
	c := core.NewCluster(seed, netCfg)
	r := &rig{c: c}
	r.client = c.AddWorkstation("client", prof, kcfg)
	if remote {
		r.server = c.AddWorkstation("server", prof, kcfg)
	} else {
		r.server = r.client
	}
	return r
}

// run drives the cluster with a generous step guard.
func (r *rig) run() error {
	r.c.Eng.MaxSteps = 500_000_000
	r.c.Eng.Schedule(3600*sim.Second, "harness-stop", func() { r.c.Eng.Stop() })
	return r.c.Run()
}

// echoServer spawns a Receive/Reply loop and returns its pid.
func echoServer(k *core.Kernel) *core.Process {
	return k.Spawn("echo", func(p *core.Process) {
		for {
			_, src, err := p.Receive()
			if err != nil {
				return
			}
			var m core.Message
			if err := p.Reply(&m, src); err != nil {
				return
			}
		}
	})
}

// measureSRR measures Send-Receive-Reply per the paper's methodology.
func measureSRR(prof cost.Profile, netCfg ether.Config, kcfg core.Config, remote bool, iters int) (opMeasure, error) {
	r := newRig(1, netCfg, prof, kcfg, remote)
	server := echoServer(r.server)
	var out opMeasure
	var measured bool
	r.client.Spawn("client", func(p *core.Process) {
		var m core.Message
		if err := p.Send(&m, server.Pid()); err != nil {
			return
		}
		start := p.GetTime()
		c0, s0 := r.client.CPU().Busy(), r.server.CPU().Busy()
		for i := 0; i < iters; i++ {
			var msg core.Message
			if err := p.Send(&msg, server.Pid()); err != nil {
				return
			}
		}
		out.elapsed = (p.GetTime() - start) / sim.Time(iters)
		out.clientCPU = (r.client.CPU().Busy() - c0) / sim.Time(iters)
		out.serverCPU = (r.server.CPU().Busy() - s0) / sim.Time(iters)
		measured = true
	})
	if err := r.run(); err != nil {
		return out, err
	}
	if !measured {
		return out, fmt.Errorf("srr measurement did not complete")
	}
	return out, nil
}

// measureGetTime measures the trivial kernel operation.
func measureGetTime(prof cost.Profile, netCfg ether.Config, iters int) (sim.Time, error) {
	r := newRig(1, netCfg, prof, core.Config{}, false)
	var per sim.Time
	r.client.Spawn("client", func(p *core.Process) {
		start := p.GetTime()
		for i := 0; i < iters; i++ {
			p.GetTime()
		}
		per = (p.GetTime() - start - 0) / sim.Time(iters)
	})
	if err := r.run(); err != nil {
		return 0, err
	}
	return per, nil
}

// measureMove measures MoveTo or MoveFrom of size bytes; the mover is the
// process that received the rendezvous message (as in the paper's setup).
func measureMove(prof cost.Profile, netCfg ether.Config, remote bool, moveTo bool, size uint32, iters int) (opMeasure, error) {
	r := newRig(1, netCfg, prof, longTimeout, remote)
	var out opMeasure
	var measured bool
	mover := r.server.Spawn("mover", func(p *core.Process) {
		buf := p.Alloc(int(size))
		msg, from, err := p.Receive()
		if err != nil {
			return
		}
		start, _, _, _ := msg.Segment()
		t0 := p.GetTime()
		c0, s0 := r.client.CPU().Busy(), r.server.CPU().Busy()
		for i := 0; i < iters; i++ {
			var err error
			if moveTo {
				err = p.MoveTo(from, start, buf, size)
			} else {
				err = p.MoveFrom(from, buf, start, size)
			}
			if err != nil {
				return
			}
		}
		out.elapsed = (p.GetTime() - t0) / sim.Time(iters)
		out.clientCPU = (r.client.CPU().Busy() - c0) / sim.Time(iters)
		out.serverCPU = (r.server.CPU().Busy() - s0) / sim.Time(iters)
		measured = true
		var reply core.Message
		_ = p.Reply(&reply, from)
	})
	r.client.Spawn("client", func(p *core.Process) {
		buf := p.Alloc(int(size))
		var m core.Message
		m.SetSegment(buf, size, vproto.SegFlagRead|vproto.SegFlagWrite)
		_ = p.Send(&m, mover.Pid())
	})
	if err := r.run(); err != nil {
		return out, err
	}
	if !measured {
		return out, fmt.Errorf("move measurement did not complete")
	}
	return out, nil
}

// pageServer answers the §3.4 I/O-protocol-shaped requests used by the
// page measurements: word 1 = 1 reads a page back with ReplyWithSegment,
// word 1 = 2 accepts an inline page write. interDelay reproduces Table
// 6-2's read-ahead disk latency between reply and next receive.
func pageServer(k *core.Kernel, pageSize int, page []byte, interDelay sim.Time) *core.Process {
	return k.Spawn("pagesrv", func(p *core.Process) {
		staging := p.Alloc(pageSize * 2)
		for {
			msg, src, _, err := p.ReceiveWithSegment(staging, pageSize*2)
			if err != nil {
				return
			}
			var reply core.Message
			if msg.Word(pageWordOp) == pageOpRead {
				start, _, _, _ := msg.Segment()
				if err := p.ReplyWithSegment(&reply, src, start, page); err != nil {
					return
				}
			} else {
				if err := p.Reply(&reply, src); err != nil {
					return
				}
			}
			if interDelay > 0 {
				p.Delay(interDelay)
			}
		}
	})
}

// measurePage measures a 512-byte page read or write.
func measurePage(prof cost.Profile, netCfg ether.Config, remote bool, read bool, iters int) (opMeasure, error) {
	const pageSize = 512
	r := newRig(1, netCfg, prof, core.Config{}, remote)
	page := make([]byte, pageSize)
	server := pageServer(r.server, pageSize, page, 0)
	var out opMeasure
	var measured bool
	r.client.Spawn("client", func(p *core.Process) {
		buf := p.Alloc(pageSize)
		op := func() error {
			var m core.Message
			if read {
				m.SetWord(pageWordOp, pageOpRead)
				m.SetSegment(buf, pageSize, vproto.SegFlagWrite)
			} else {
				m.SetWord(pageWordOp, pageOpWrite)
				m.SetSegment(buf, pageSize, vproto.SegFlagRead)
			}
			return p.Send(&m, server.Pid())
		}
		if err := op(); err != nil {
			return
		}
		t0 := p.GetTime()
		c0, s0 := r.client.CPU().Busy(), r.server.CPU().Busy()
		for i := 0; i < iters; i++ {
			if err := op(); err != nil {
				return
			}
		}
		out.elapsed = (p.GetTime() - t0) / sim.Time(iters)
		out.clientCPU = (r.client.CPU().Busy() - c0) / sim.Time(iters)
		out.serverCPU = (r.server.CPU().Busy() - s0) / sim.Time(iters)
		measured = true
	})
	if err := r.run(); err != nil {
		return out, err
	}
	if !measured {
		return out, fmt.Errorf("page measurement did not complete")
	}
	return out, nil
}

// measureSequential reproduces Table 6-2: the server interposes the disk
// latency between replying to one request and receiving the next; the
// client reads pages flat out.
func measureSequential(prof cost.Profile, netCfg ether.Config, diskLatency sim.Time, iters int) (sim.Time, error) {
	const pageSize = 512
	r := newRig(1, netCfg, prof, core.Config{}, true)
	page := make([]byte, pageSize)
	server := pageServer(r.server, pageSize, page, diskLatency)
	var per sim.Time
	var measured bool
	r.client.Spawn("client", func(p *core.Process) {
		buf := p.Alloc(pageSize)
		read := func() error {
			var m core.Message
			m.SetWord(pageWordOp, pageOpRead)
			m.SetSegment(buf, pageSize, vproto.SegFlagWrite)
			return p.Send(&m, server.Pid())
		}
		for i := 0; i < 3; i++ { // settle into steady state
			if err := read(); err != nil {
				return
			}
		}
		t0 := p.GetTime()
		for i := 0; i < iters; i++ {
			if err := read(); err != nil {
				return
			}
		}
		per = (p.GetTime() - t0) / sim.Time(iters)
		measured = true
	})
	if err := r.run(); err != nil {
		return 0, err
	}
	if !measured {
		return 0, fmt.Errorf("sequential measurement did not complete")
	}
	return per, nil
}
