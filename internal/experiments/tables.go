package experiments

import (
	"fmt"

	"vkernel/internal/core"
	"vkernel/internal/cost"
	"vkernel/internal/disk"
	"vkernel/internal/ether"
	"vkernel/internal/fsrv"
	"vkernel/internal/netpenalty"
	"vkernel/internal/nic"
	"vkernel/internal/sim"
	"vkernel/internal/stats"
)

// Table41 reproduces Table 4-1: the 3 Mb Ethernet network penalty for 8
// and 10 MHz SUN workstations at 64..1024 bytes.
func Table41() (Result, error) {
	rows := []struct {
		bytes           int
		netTime         float64
		paper8, paper10 float64
	}{
		{64, .174, 0.80, 0.65},
		{128, .348, 1.20, 0.96},
		{256, .696, 2.00, 1.62},
		{512, 1.392, 3.65, 3.00},
		{1024, 2.784, 6.95, 5.83},
	}
	netCfg := ether.Ethernet3Mb()
	t := stats.Table{
		ID:      "Table 4-1",
		Title:   "3 Mb Ethernet SUN Network Penalty",
		Unit:    "times in ms; cells are paper/measured",
		Columns: []string{"Network Time", "8 MHz", "10 MHz"},
	}
	for _, row := range rows {
		p8, err := netpenalty.Measure(cost.MC68000(8, cost.Iface3Mb), netCfg, nic.Config{}, row.bytes, 1000)
		if err != nil {
			return Result{}, err
		}
		p10, err := netpenalty.Measure(cost.MC68000(10, cost.Iface3Mb), netCfg, nic.Config{}, row.bytes, 1000)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(fmt.Sprintf("%d bytes", row.bytes),
			stats.M(row.netTime),
			stats.PM(row.paper8, p8.Milliseconds()),
			stats.PM(row.paper10, p10.Milliseconds()))
	}
	return Result{
		Tables: []stats.Table{t},
		Notes: []string{
			"Interface constants are calibrated against this table (see cost package); agreement validates the harness, other tables are predictions.",
		},
	}, nil
}

// paperKernelRow carries the paper's Table 5-1/5-2 values for one row.
type paperKernelRow struct {
	label                                  string
	local, remote, penalty, client, server float64
}

func kernelPerformance(id string, mhz float64, rows []paperKernelRow) (Result, error) {
	prof := cost.MC68000(mhz, cost.Iface3Mb)
	netCfg := ether.Ethernet3Mb()
	t := stats.Table{
		ID:      id,
		Title:   fmt.Sprintf("Kernel Performance: 3 Mb Ethernet, %g MHz processor", mhz),
		Unit:    "times in ms; cells are paper/measured",
		Columns: []string{"Local", "Remote", "Difference", "Penalty", "Client CPU", "Server CPU"},
	}

	// GetTime.
	gt, err := measureGetTime(prof, netCfg, 1000)
	if err != nil {
		return Result{}, err
	}
	t.AddRow("GetTime", stats.PM(rows[0].local, gt.Milliseconds()),
		stats.Blank(), stats.Blank(), stats.Blank(), stats.Blank(), stats.Blank())

	// Send-Receive-Reply.
	srrL, err := measureSRR(prof, netCfg, core.Config{}, false, 1000)
	if err != nil {
		return Result{}, err
	}
	srrR, err := measureSRR(prof, netCfg, core.Config{}, true, 1000)
	if err != nil {
		return Result{}, err
	}
	srrPenalty := 2 * netpenalty.Analytic(prof, netCfg, 64)
	r := rows[1]
	t.AddRow(r.label,
		stats.PM(r.local, srrL.ms()),
		stats.PM(r.remote, srrR.ms()),
		stats.PM(r.remote-r.local, (srrR.elapsed-srrL.elapsed).Milliseconds()),
		stats.PM(r.penalty, srrPenalty.Milliseconds()),
		stats.PM(r.client, srrR.clientCPU.Milliseconds()),
		stats.PM(r.server, srrR.serverCPU.Milliseconds()))

	// MoveFrom / MoveTo 1024 bytes.
	movePenalty := netpenalty.Analytic(prof, netCfg, 1088) + netpenalty.Analytic(prof, netCfg, 64)
	for i, moveTo := range []bool{false, true} {
		r := rows[2+i]
		local, err := measureMove(prof, netCfg, false, moveTo, 1024, 300)
		if err != nil {
			return Result{}, err
		}
		remote, err := measureMove(prof, netCfg, true, moveTo, 1024, 300)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(r.label,
			stats.PM(r.local, local.ms()),
			stats.PM(r.remote, remote.ms()),
			stats.PM(r.remote-r.local, (remote.elapsed-local.elapsed).Milliseconds()),
			stats.PM(r.penalty, movePenalty.Milliseconds()),
			stats.PM(r.client, remote.clientCPU.Milliseconds()),
			stats.PM(r.server, remote.serverCPU.Milliseconds()))
	}
	return Result{
		Tables: []stats.Table{t},
		Notes: []string{
			"Penalty column: our data packets are 1088 bytes on the wire (1024 data + 64 header/message); the paper accounts it as 1024 + a 128-byte ack.",
			"Client/Server CPU columns for Move operations: the paper's own bulk-transfer CPU columns are internally inconsistent across Table 6-3 rows; ours derive from the calibrated cost model.",
		},
	}, nil
}

// Table51 reproduces Table 5-1 (8 MHz).
func Table51() (Result, error) {
	return kernelPerformance("Table 5-1", 8, []paperKernelRow{
		{label: "GetTime", local: 0.07},
		{"Send-Receive-Reply", 1.00, 3.18, 1.60, 1.79, 2.30},
		{"MoveFrom: 1024 bytes", 1.26, 9.03, 8.15, 3.76, 5.69},
		{"MoveTo: 1024 bytes", 1.26, 9.05, 8.15, 3.59, 5.87},
	})
}

// Table52 reproduces Table 5-2 (10 MHz).
func Table52() (Result, error) {
	return kernelPerformance("Table 5-2", 10, []paperKernelRow{
		{label: "GetTime", local: 0.06},
		{"Send-Receive-Reply", 0.77, 2.54, 1.30, 1.44, 1.79},
		{"MoveFrom: 1024 bytes", 0.95, 8.00, 6.77, 3.32, 4.78},
		{"MoveTo: 1024 bytes", 0.95, 8.00, 6.77, 3.17, 4.95},
	})
}

// Table61 reproduces Table 6-1: random page-level access, 512-byte pages,
// 10 MHz processors.
func Table61() (Result, error) {
	prof := cost.MC68000(10, cost.Iface3Mb)
	netCfg := ether.Ethernet3Mb()
	t := stats.Table{
		ID:      "Table 6-1",
		Title:   "Page-Level File Access: 512 byte pages, 10 MHz",
		Unit:    "times in ms; cells are paper/measured",
		Columns: []string{"Local", "Remote", "Difference", "Penalty", "Client CPU", "Server CPU"},
	}
	paper := []struct {
		label                                  string
		read                                   bool
		local, remote, penalty, client, server float64
	}{
		{"page read", true, 1.31, 5.56, 3.89, 2.50, 3.28},
		{"page write", false, 1.31, 5.60, 3.89, 2.58, 3.32},
	}
	penalty := netpenalty.Analytic(prof, netCfg, 64) + netpenalty.Analytic(prof, netCfg, 576)
	for _, r := range paper {
		local, err := measurePage(prof, netCfg, false, r.read, 500)
		if err != nil {
			return Result{}, err
		}
		remote, err := measurePage(prof, netCfg, true, r.read, 500)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(r.label,
			stats.PM(r.local, local.ms()),
			stats.PM(r.remote, remote.ms()),
			stats.PM(r.remote-r.local, (remote.elapsed-local.elapsed).Milliseconds()),
			stats.PM(r.penalty, penalty.Milliseconds()),
			stats.PM(r.client, remote.clientCPU.Milliseconds()),
			stats.PM(r.server, remote.serverCPU.Milliseconds()))
	}
	return Result{Tables: []stats.Table{t}}, nil
}

// Table62 reproduces Table 6-2: sequential access with server read-ahead
// and disk latencies of 10/15/20 ms.
func Table62() (Result, error) {
	prof := cost.MC68000(10, cost.Iface3Mb)
	netCfg := ether.Ethernet3Mb()
	t := stats.Table{
		ID:      "Table 6-2",
		Title:   "Sequential Page-Level Access: 512 byte pages, 10 MHz",
		Unit:    "elapsed ms per page read; cells are paper/measured",
		Columns: []string{"Elapsed per page"},
	}
	for _, row := range []struct {
		latMs float64
		paper float64
	}{{10, 12.02}, {15, 17.13}, {20, 22.22}} {
		per, err := measureSequential(prof, netCfg, sim.Millis(row.latMs), 300)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(fmt.Sprintf("disk latency %g ms", row.latMs), stats.PM(row.paper, per.Milliseconds()))
	}
	return Result{
		Tables: []stats.Table{t},
		Notes: []string{
			"Methodology per §6.2: the disk latency is interposed between the reply to one request and the receipt of the next (read-ahead).",
		},
	}, nil
}

// measureProgramLoad times a 64 KB Read against a warm file server with
// the given transfer unit, returning elapsed plus both CPUs.
func measureProgramLoad(prof cost.Profile, netCfg ether.Config, remote bool, transferUnit int, iters int) (opMeasure, error) {
	const fileID = 1
	const size = 64 * 1024
	r := newRig(1, netCfg, prof, longTimeout, remote)
	d := disk.New(r.c.Eng, disk.Fixed(512, sim.Millisecond))
	img := make([]byte, size)
	for i := range img {
		img[i] = byte(i)
	}
	d.Preload(fileID, img)
	srv := fsrv.Start(r.server, d, fsrv.Config{TransferUnit: transferUnit})
	srv.WarmFile(fileID)
	var out opMeasure
	var measured bool
	r.client.Spawn("loader", func(p *core.Process) {
		cl := fsrv.NewClient(p, srv.Pid(), size)
		if _, err := cl.ReadLarge(fileID, 0, size); err != nil {
			return
		}
		t0 := p.GetTime()
		c0, s0 := r.client.CPU().Busy(), r.server.CPU().Busy()
		for i := 0; i < iters; i++ {
			if _, err := cl.ReadLarge(fileID, 0, size); err != nil {
				return
			}
		}
		out.elapsed = (p.GetTime() - t0) / sim.Time(iters)
		out.clientCPU = (r.client.CPU().Busy() - c0) / sim.Time(iters)
		out.serverCPU = (r.server.CPU().Busy() - s0) / sim.Time(iters)
		measured = true
	})
	if err := r.run(); err != nil {
		return out, err
	}
	if !measured {
		return out, fmt.Errorf("program load measurement did not complete")
	}
	return out, nil
}

// Table63 reproduces Table 6-3: a 64-kilobyte Read at transfer units of
// 1..64 KB, local and remote, on 8 MHz workstations.
func Table63() (Result, error) {
	prof := cost.MC68000(8, cost.Iface3Mb)
	netCfg := ether.Ethernet3Mb()
	t := stats.Table{
		ID:      "Table 6-3",
		Title:   "Program Loading: 64 kilobyte Read, 8 MHz",
		Unit:    "times in ms; cells are paper/measured",
		Columns: []string{"Local", "Remote", "Difference", "Client CPU", "Server CPU", "Rate KB/s"},
	}
	rows := []struct {
		unit                          int
		local, remote, client, server float64
	}{
		{1 * 1024, 71.7, 518.3, 207.1, 297.9},
		{4 * 1024, 62.5, 368.4, 176.1, 225.2},
		{16 * 1024, 60.2, 344.6, 170.0, 216.9},
		{64 * 1024, 59.7, 335.4, 168.1, 212.7},
	}
	for _, row := range rows {
		local, err := measureProgramLoad(prof, netCfg, false, row.unit, 10)
		if err != nil {
			return Result{}, err
		}
		remote, err := measureProgramLoad(prof, netCfg, true, row.unit, 10)
		if err != nil {
			return Result{}, err
		}
		rate := 64.0 / remote.elapsed.Seconds() // KB per second
		t.AddRow(fmt.Sprintf("%d Kb unit", row.unit/1024),
			stats.PM(row.local, local.ms()),
			stats.PM(row.remote, remote.ms()),
			stats.PM(row.remote-row.local, (remote.elapsed-local.elapsed).Milliseconds()),
			stats.PM(row.client, remote.clientCPU.Milliseconds()),
			stats.PM(row.server, remote.serverCPU.Milliseconds()),
			stats.M(rate))
	}
	return Result{
		Tables: []stats.Table{t},
		Notes: []string{
			"Paper: large-unit loading runs at about 192 KB/s, within 12% of the raw write-packets-to-interface rate.",
			"The paper's client/server CPU columns for this table are internally inconsistent (no single per-op/per-packet split fits all four rows); our columns come from the calibrated model.",
		},
	}, nil
}
