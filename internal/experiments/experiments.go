// Package experiments contains one runner per table and numeric section of
// the paper's evaluation. Each runner builds a fresh deterministic
// simulation, reproduces the paper's measurement methodology (§5.1: N
// iterations, elapsed/N, busywork-style processor accounting) and returns
// paper-vs-measured tables.
package experiments

import "vkernel/internal/stats"

// Result is an experiment's output.
type Result struct {
	Tables []stats.Table
	Notes  []string
}

// Experiment couples an id from DESIGN.md's index with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() (Result, error)
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"table41", "3 Mb Ethernet SUN network penalty (Table 4-1)", Table41},
	{"table51", "Kernel performance, 8 MHz processor (Table 5-1)", Table51},
	{"table52", "Kernel performance, 10 MHz processor (Table 5-2)", Table52},
	{"sec54", "Multi-process traffic and the collision-detect bug (§5.4)", Sec54},
	{"table61", "Random page-level file access, 512-byte pages (Table 6-1)", Table61},
	{"table62", "Sequential page-level access vs disk latency (Table 6-2)", Table62},
	{"table63", "Program loading: 64 KB read vs transfer unit (Table 6-3)", Table63},
	{"sec61", "Segment ablation and the specialized-protocol bound (§6.1)", Sec61},
	{"sec62", "Streaming protocol comparison (§6.2)", Sec62},
	{"sec7", "File server capacity (§7)", Sec7},
	{"sec8", "10 Mb Ethernet preview (§8)", Sec8},
	{"sec34", "Design ablations: network server, IP layering, DMA (§3, §4)", Sec34},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
