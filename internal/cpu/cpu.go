// Package cpu models a workstation processor for the V kernel simulation.
//
// The model is a single serially-used resource: every piece of kernel,
// interrupt, or user work occupies the processor for a duration and work
// requests are served in FIFO order (the 68000 in the paper has no caches
// and interrupt handlers are short, so FIFO is an adequate approximation).
// The processor accumulates total busy time, which reproduces the paper's
// §5.1 "busywork process" measurement methodology: processor time per
// operation = busy time / N, and elapsed - busy = the time the busywork
// process would have received.
package cpu

import "vkernel/internal/sim"

// CPU is one workstation processor.
type CPU struct {
	eng  *sim.Engine
	name string
	// busyUntil is the time at which all currently accepted work completes.
	busyUntil sim.Time
	// busy is the total accumulated busy time.
	busy sim.Time
	// marks supports interval accounting (BusySince).
	lastMarkBusy sim.Time
}

// New returns a CPU attached to the engine.
func New(eng *sim.Engine, name string) *CPU {
	return &CPU{eng: eng, name: name}
}

// Name returns the CPU's name (typically the workstation name).
func (c *CPU) Name() string { return c.name }

// Busy returns the total accumulated busy time.
func (c *CPU) Busy() sim.Time { return c.busy }

// Mark records the current busy counter; a later BusySinceMark returns the
// busy time accumulated since. Used by experiment harnesses to measure the
// processor time of a phase, as the paper does with its busywork process.
func (c *CPU) Mark() { c.lastMarkBusy = c.busy }

// BusySinceMark returns busy time accumulated since the last Mark.
func (c *CPU) BusySinceMark() sim.Time { return c.busy - c.lastMarkBusy }

// IdleAt reports the earliest time at or after the current instant when the
// CPU has no accepted work left.
func (c *CPU) IdleAt() sim.Time {
	if c.busyUntil < c.eng.Now() {
		return c.eng.Now()
	}
	return c.busyUntil
}

// Run occupies the processor for duration d starting as soon as all
// previously accepted work is done, then invokes fn (fn may be nil). It
// returns the completion time. Zero-duration work runs at the earliest
// instant the CPU is free.
func (c *CPU) Run(d sim.Time, what string, fn func()) sim.Time {
	if d < 0 {
		d = 0
	}
	start := c.IdleAt()
	end := start + d
	c.busyUntil = end
	c.busy += d
	if fn != nil {
		c.eng.At(end, "cpu:"+what, fn)
	}
	return end
}

// Charge occupies the processor for d on behalf of the calling task and
// suspends the task until the work completes. It is the task-context
// equivalent of Run.
func (c *CPU) Charge(t *sim.Task, d sim.Time, what string) {
	if d <= 0 && c.busyUntil <= c.eng.Now() {
		return
	}
	c.Run(d, what, func() { t.Unpark(nil) })
	t.Park("cpu:" + what)
}
