package cpu

import (
	"testing"
	"testing/quick"

	"vkernel/internal/sim"
)

func TestRunSerializesFIFO(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, "test")
	var order []int
	var t1, t2 sim.Time
	c.Run(100*sim.Microsecond, "a", func() { order = append(order, 1); t1 = eng.Now() })
	c.Run(50*sim.Microsecond, "b", func() { order = append(order, 2); t2 = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if t1 != 100*sim.Microsecond || t2 != 150*sim.Microsecond {
		t.Fatalf("completion times %v %v", t1, t2)
	}
	if c.Busy() != 150*sim.Microsecond {
		t.Fatalf("busy = %v", c.Busy())
	}
}

func TestRunAfterIdleGap(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, "test")
	c.Run(10*sim.Microsecond, "a", nil)
	var done sim.Time
	eng.Schedule(100*sim.Microsecond, "later", func() {
		c.Run(10*sim.Microsecond, "b", func() { done = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Work submitted at t=100 on an idle CPU completes at t=110 — the
	// idle gap must not be charged.
	if done != 110*sim.Microsecond {
		t.Fatalf("done = %v", done)
	}
	if c.Busy() != 20*sim.Microsecond {
		t.Fatalf("busy = %v", c.Busy())
	}
}

func TestChargeBlocksTask(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, "test")
	var after sim.Time
	eng.Spawn("task", func(tk *sim.Task) {
		c.Charge(tk, 500*sim.Microsecond, "work")
		after = eng.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 500*sim.Microsecond {
		t.Fatalf("task resumed at %v", after)
	}
}

func TestChargeZeroOnIdleCPUReturnsImmediately(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, "test")
	ran := false
	eng.Spawn("task", func(tk *sim.Task) {
		c.Charge(tk, 0, "noop")
		if eng.Now() != 0 {
			t.Errorf("zero charge advanced time to %v", eng.Now())
		}
		ran = true
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
}

func TestMarkAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, "test")
	c.Run(30*sim.Microsecond, "a", nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	c.Mark()
	c.Run(70*sim.Microsecond, "b", nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.BusySinceMark(); got != 70*sim.Microsecond {
		t.Fatalf("BusySinceMark = %v", got)
	}
}

// Property: total busy time equals the sum of all submitted durations,
// and the final completion time is at least that sum (work conservation,
// no overlap on a single CPU).
func TestWorkConservationProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		eng := sim.NewEngine(7)
		c := New(eng, "p")
		var sum sim.Time
		for _, d := range durs {
			dt := sim.Time(d) * sim.Microsecond
			sum += dt
			c.Run(dt, "w", nil)
		}
		if err := eng.Run(); err != nil {
			return false
		}
		return c.Busy() == sum && c.IdleAt() >= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
