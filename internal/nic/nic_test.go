package nic

import (
	"testing"

	"vkernel/internal/cost"
	"vkernel/internal/cpu"
	"vkernel/internal/ether"
	"vkernel/internal/sim"
)

func rig(t *testing.T, cfg Config) (*sim.Engine, *ether.Network, *cpu.CPU, *cpu.CPU, *NIC, *NIC, *[]sim.Time) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := ether.New(eng, ether.Ethernet3Mb())
	cpuA := cpu.New(eng, "a")
	cpuB := cpu.New(eng, "b")
	prof := cost.MC68000(8, cost.Iface3Mb)
	arrivals := &[]sim.Time{}
	var na, nb *NIC
	na = New(eng, cpuA, prof, cfg, net, 1, func(f ether.Frame) {})
	nb = New(eng, cpuB, prof, cfg, net, 2, func(f ether.Frame) {
		*arrivals = append(*arrivals, eng.Now())
	})
	return eng, net, cpuA, cpuB, na, nb, arrivals
}

func TestSingleFrameCosts(t *testing.T) {
	eng, net, cpuA, cpuB, na, _, arrivals := rig(t, Config{})
	prof := cost.MC68000(8, cost.Iface3Mb)
	na.Send(ether.Frame{Dst: 2, Bytes: 64})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := prof.TxCost(64) + net.Config().WireTime(64) + net.Config().Latency + prof.RxCost(64)
	if len(*arrivals) != 1 || (*arrivals)[0] != want {
		t.Fatalf("arrival at %v, want %v", *arrivals, want)
	}
	if cpuA.Busy() != prof.TxCost(64) || cpuB.Busy() != prof.RxCost(64) {
		t.Fatalf("cpu busy %v / %v", cpuA.Busy(), cpuB.Busy())
	}
}

// TestSingleTxBufferSerializes verifies the §6.3-critical behaviour: with
// one transmit buffer, the copy-in of packet k+1 waits for packet k's
// transmission, so back-to-back throughput is copy + wire per packet.
func TestSingleTxBufferSerializes(t *testing.T) {
	eng, net, _, _, na, _, arrivals := rig(t, Config{TxBuffers: 1})
	prof := cost.MC68000(8, cost.Iface3Mb)
	const n = 4
	for i := 0; i < n; i++ {
		na.Send(ether.Frame{Dst: 2, Bytes: 1088})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*arrivals) != n {
		t.Fatalf("arrived %d", len(*arrivals))
	}
	period := (*arrivals)[n-1] - (*arrivals)[n-2]
	want := prof.TxCost(1088) + net.Config().WireTime(1088)
	if period < want-sim.Microsecond || period > want+20*sim.Microsecond {
		t.Fatalf("steady-state period %v, want ~%v", period, want)
	}
	if na.Stats().TxQueued != n-1 {
		t.Fatalf("queued = %d", na.Stats().TxQueued)
	}
}

// TestDoubleBufferingOverlaps shows the ablation: with two buffers the
// wire becomes the bottleneck.
func TestDoubleBufferingOverlaps(t *testing.T) {
	eng, net, _, _, na, _, arrivals := rig(t, Config{TxBuffers: 2})
	const n = 4
	for i := 0; i < n; i++ {
		na.Send(ether.Frame{Dst: 2, Bytes: 1088})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	period := (*arrivals)[n-1] - (*arrivals)[n-2]
	wire := net.Config().WireTime(1088)
	// With overlap the period approaches wire time (+ small deferral
	// jitter from carrier sensing).
	if period > wire+40*sim.Microsecond {
		t.Fatalf("double-buffered period %v, want ~wire %v", period, wire)
	}
}

func TestDMAReducesCPUButNotLatency(t *testing.T) {
	engP, _, cpuAP, cpuBP, naP, _, arrP := rig(t, Config{})
	naP.Send(ether.Frame{Dst: 2, Bytes: 1024})
	if err := engP.Run(); err != nil {
		t.Fatal(err)
	}
	engD, _, cpuAD, cpuBD, naD, _, arrD := rig(t, Config{DMA: true})
	naD.Send(ether.Frame{Dst: 2, Bytes: 1024})
	if err := engD.Run(); err != nil {
		t.Fatal(err)
	}
	if (*arrD)[0] <= (*arrP)[0] {
		t.Fatalf("DMA delivery %v not slower than PIO %v (paper: no elapsed gain)", (*arrD)[0], (*arrP)[0])
	}
	if cpuAD.Busy() >= cpuAP.Busy() || cpuBD.Busy() >= cpuBP.Busy() {
		t.Fatalf("DMA cpu %v/%v not less than PIO %v/%v",
			cpuAD.Busy(), cpuBD.Busy(), cpuAP.Busy(), cpuBP.Busy())
	}
}
